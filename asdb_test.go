package asdb

import (
	"math"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the package doc's
// quick start does: register a stream, learn a field from raw observations,
// run a probability-threshold query, and read back accuracy information.
func TestFacadeEndToEnd(t *testing.T) {
	eng, err := NewEngine(Config{Method: AccuracyAnalytical})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema("traffic",
		Column{Name: "road_id"},
		Column{Name: "delay", Probabilistic: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	// Example 3's raw observations.
	field, err := Learn(GaussianLearner{}, NewSample([]float64{71, 56, 82, 74, 69, 77, 65, 78, 59, 80}))
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.Compile("SELECT road_id, delay FROM traffic WHERE PROB(delay > 60) >= 0.5")
	if err != nil {
		t.Fatal(err)
	}
	tup, err := eng.NewTuple("traffic", []Field{Det(19), field})
	if err != nil {
		t.Fatal(err)
	}
	results, err := q.Push(tup)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	info := results[0].Fields["delay"]
	if info == nil {
		t.Fatal("missing accuracy info for delay")
	}
	// Example 3's 90% mean interval: [65.97, 76.23].
	if math.Abs(info.Mean.Lo-65.97) > 0.02 || math.Abs(info.Mean.Hi-76.23) > 0.02 {
		t.Errorf("mean interval = %v, want ≈[65.97, 76.23]", info.Mean)
	}
}

// TestFacadeSignificance exercises the coupled-test surface through the
// facade aliases.
func TestFacadeSignificance(t *testing.T) {
	s, err := StatsFromSample(NewSample([]float64{82, 86, 105, 110, 119}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := CoupledMTest(s, OpGreater, 97, 0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res != TestUnsure {
		t.Errorf("X (n=5) coupled mTest = %v, want UNSURE", res)
	}
	ok, err := PTest(0.6, 100, OpGreater, 0.5, 0.05)
	if err != nil || !ok {
		t.Errorf("PTest(Y) = %v, %v; want true", ok, err)
	}
}

// TestFacadeAccuracyPrimitives spot-checks the re-exported Lemma functions.
func TestFacadeAccuracyPrimitives(t *testing.T) {
	iv, err := TupleProbInterval(0.6, 20, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Lo-0.42) > 0.005 || math.Abs(iv.Hi-0.78) > 0.005 {
		t.Errorf("Example 5 interval = %v", iv)
	}
	n, err := DFSampleSize(15, 10, 20)
	if err != nil || n != 10 {
		t.Errorf("DFSampleSize = %d, %v", n, err)
	}
}
