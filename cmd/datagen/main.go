// Command datagen writes the reproduction's datasets to CSV so they can be
// inspected or consumed by other tooling:
//
//   - cartel mode emits raw road-delay observations in the Figure 1 row
//     shape (segment id, length, time, delay, speed limit);
//   - synth mode emits iid samples of the paper's five synthetic
//     distributions, one column per distribution.
//
// Usage:
//
//	datagen -mode cartel [-segments 300] [-rows 10000] [-seed 42] [-o cartel.csv]
//	datagen -mode synth  [-rows 10000] [-seed 42] [-o synth.csv]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/cartel"
	"repro/internal/dist"
	"repro/internal/synthgen"
)

func main() {
	mode := flag.String("mode", "cartel", "dataset: cartel | synth")
	segments := flag.Int("segments", 300, "road-network size (cartel)")
	rows := flag.Int("rows", 10000, "rows to generate")
	seed := flag.Uint64("seed", 42, "RNG seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	switch *mode {
	case "cartel":
		net, err := cartel.NewNetwork(*segments, *seed)
		if err != nil {
			fatal(err)
		}
		obs, err := net.ObserveWindow(*rows, 120)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "segment_id,length_m,time_sec,delay_sec,speed_limit")
		for _, o := range obs {
			fmt.Fprintf(w, "%d,%.1f,%d,%.2f,%.0f\n",
				o.SegmentID, o.Length, o.TimeSec, o.Delay, o.SpeedLimit)
		}
	case "synth":
		rng := dist.NewRand(*seed)
		names := synthgen.Names()
		samples := make([][]float64, len(names))
		for i, n := range names {
			s, err := synthgen.Sample(n, *rows, rng)
			if err != nil {
				fatal(err)
			}
			samples[i] = s.Observations()
		}
		for i, n := range names {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprint(w, n)
		}
		fmt.Fprintln(w)
		for r := 0; r < *rows; r++ {
			for i := range names {
				if i > 0 {
					fmt.Fprint(w, ",")
				}
				fmt.Fprintf(w, "%.6g", samples[i][r])
			}
			fmt.Fprintln(w)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
