// Command asdb is a local REPL over an embedded accuracy-aware uncertain
// stream database — no server needed. It accepts the same STREAM / QUERY /
// INSERT / LOAD / STATS / EXPLAIN / CLOSE commands as the network protocol,
// executes them against an in-process engine, and prints results (with
// accuracy information) immediately.
//
// Usage:
//
//	asdb [-level 0.9] [-method analytical] [-seed 1] [-f script.asdb] [-batch]
//	     [-data-dir DIR] [-fsync always|interval|none] [-checkpoint-every N]
//
// With -f, commands are read from the file before the interactive prompt
// starts; -batch exits after the script.
//
// With -data-dir the session is durable: commands are journaled to a
// write-ahead log and the engine is checkpointed, so a later asdb run with
// the same -data-dir (and same engine flags) resumes exactly where this
// one stopped — windows, learned distributions, and RNG states included.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/repl"
)

func main() {
	level := flag.Float64("level", 0.9, "confidence level")
	method := flag.String("method", "analytical", "accuracy method: none | analytical | bootstrap")
	seed := flag.Uint64("seed", 1, "engine RNG seed")
	script := flag.String("f", "", "script file to execute before the prompt")
	batch := flag.Bool("batch", false, "exit after the script (no interactive prompt)")
	workers := flag.Int("workers", 0, "accuracy-kernel parallelism (0 = GOMAXPROCS); results are identical at any setting")
	dataDir := flag.String("data-dir", "", "durability directory (empty = in-memory only)")
	fsyncPolicy := flag.String("fsync", "interval", "WAL fsync policy: always | interval | none")
	ckEvery := flag.Int("checkpoint-every", 1024, "checkpoint after this many journaled commands")
	debugAddr := flag.String("debug-addr", "", "HTTP observability listener (/debug/metrics, /debug/vars, /debug/pprof); empty disables")
	flag.Parse()

	if *debugAddr != "" {
		metrics.Default.PublishExpvar("asdb")
		http.Handle("/debug/metrics", metrics.Default.Handler())
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "asdb: debug listener: %v\n", err)
			}
		}()
	}

	var m core.AccuracyMethod
	switch *method {
	case "none":
		m = core.AccuracyNone
	case "analytical":
		m = core.AccuracyAnalytical
	case "bootstrap":
		m = core.AccuracyBootstrap
	default:
		fmt.Fprintf(os.Stderr, "asdb: unknown method %q\n", *method)
		os.Exit(2)
	}
	r, err := repl.New(core.Config{
		Level: *level, Method: m, Seed: *seed, Workers: *workers,
		DataDir: *dataDir, FsyncPolicy: *fsyncPolicy, CheckpointEvery: *ckEvery,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdb: %v\n", err)
		os.Exit(1)
	}
	// fail flushes durable state before exiting (os.Exit skips defers).
	fail := func(format string, args ...any) {
		if cerr := r.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "asdb: close: %v\n", cerr)
		}
		fmt.Fprintf(os.Stderr, format, args...)
		os.Exit(1)
	}
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fail("asdb: %v\n", err)
		}
		scanner := bufio.NewScanner(f)
		scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		lineNo := 0
		for scanner.Scan() {
			lineNo++
			if err := r.Exec(scanner.Text()); err != nil {
				f.Close()
				fail("asdb: %s:%d: %v\n", *script, lineNo, err)
			}
		}
		f.Close()
	}
	if !*batch {
		fmt.Fprintln(os.Stderr, "asdb — accuracy-aware uncertain stream database (HELP for commands, ctrl-D to exit)")
		in := bufio.NewScanner(os.Stdin)
		in.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for {
			fmt.Fprint(os.Stderr, "asdb> ")
			if !in.Scan() {
				break
			}
			if err := r.Exec(in.Text()); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}
	}
	if err := r.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "asdb: close: %v\n", err)
		os.Exit(1)
	}
}
