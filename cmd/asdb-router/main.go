// Command asdb-router is a thin cluster proxy for the asdb line protocol:
// it consistent-hashes streams across N primaries, co-locates the inputs
// of JOIN queries, fans read commands out to replicas, and retries
// @reqid-tagged ingest lines across a node's failover targets (the
// replicated dedup window keeps those retries exactly-once even when the
// original attempt applied before the link died).
//
// Usage:
//
//	asdb-router [-addr 127.0.0.1:7432] -node primary1[,replica1,replica2] [-node primary2...]
//	            [-retries N] [-retry-base D] [-retry-max D] [-seed N] [-op-timeout D]
//
// During a failover the router follows the epoch automatically: a target
// answering "read-only replica" (not yet promoted) or "fenced: stale
// epoch" (an ex-primary that lost the failover) sends the ingest retry to
// the next failover target after a capped, seeded-jitter backoff.
//
// Each -node names one shard: a primary address followed by optional
// comma-separated replica addresses. Protocol clients connect to the
// router exactly as they would to a single asdbd; DATA lines are relayed
// byte-for-byte from whichever node renders them.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cluster"
)

type nodeFlags []cluster.Node

func (n *nodeFlags) String() string {
	parts := make([]string, len(*n))
	for i, node := range *n {
		parts[i] = strings.Join(append([]string{node.Primary}, node.Replicas...), ",")
	}
	return strings.Join(parts, " ")
}

func (n *nodeFlags) Set(v string) error {
	fields := strings.Split(v, ",")
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
		if fields[i] == "" {
			return fmt.Errorf("empty address in -node %q", v)
		}
	}
	*n = append(*n, cluster.Node{Primary: fields[0], Replicas: fields[1:]})
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7432", "listen address for protocol clients")
	retries := flag.Int("retries", 0, "failover retries for @reqid-tagged ingest (0 = default 3, negative disables)")
	retryBase := flag.Duration("retry-base", 0, "base backoff between ingest retries (0 = default 50ms)")
	retryMax := flag.Duration("retry-max", 0, "backoff cap between ingest retries (0 = default 2s)")
	seed := flag.Uint64("seed", 0, "backoff jitter seed (0 = from the clock)")
	opTimeout := flag.Duration("op-timeout", 0, "per-backend exchange timeout (0 = default 30s)")
	var nodes nodeFlags
	flag.Var(&nodes, "node", "one shard: primary[,replica...]; repeat for more shards")
	flag.Parse()

	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "asdb-router: at least one -node is required")
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "asdb-router: ", log.LstdFlags)
	rt, err := cluster.NewRouter(nodes, logger, cluster.RouterOptions{
		Retries:   *retries,
		RetryBase: *retryBase,
		RetryMax:  *retryMax,
		Seed:      *seed,
		OpTimeout: *opTimeout,
	})
	if err != nil {
		log.Fatalf("asdb-router: %v", err)
	}
	bound, err := rt.Listen(*addr)
	if err != nil {
		log.Fatalf("asdb-router: %v", err)
	}
	logger.Printf("routing %d node(s) on %s", len(nodes), bound)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- rt.Serve() }()
	select {
	case sig := <-sigc:
		logger.Printf("%s: shutting down", sig)
		rt.Close()
		// Serve returns nil once the listener closes under rt.closed.
		if err := <-done; err != nil {
			log.Fatalf("asdb-router: %v", err)
		}
	case err := <-done:
		if err != nil {
			log.Fatalf("asdb-router: %v", err)
		}
	}
}
