// Command asdbd is the accuracy-aware uncertain stream database daemon: it
// hosts one engine and serves the line protocol of repro/internal/server
// over TCP.
//
// Usage:
//
//	asdbd [-addr 127.0.0.1:7433] [-level 0.9] [-method analytical] [-seed 1]
//
// Methods: none, analytical, bootstrap.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "listen address")
	level := flag.Float64("level", 0.9, "confidence level for accuracy intervals")
	method := flag.String("method", "analytical", "accuracy method: none | analytical | bootstrap")
	seed := flag.Uint64("seed", 1, "engine RNG seed")
	dropUnsure := flag.Bool("drop-unsure", false, "drop tuples whose coupled significance test is UNSURE")
	workers := flag.Int("workers", 0, "accuracy-kernel parallelism (0 = GOMAXPROCS); results are identical at any setting")
	flag.Parse()

	var m core.AccuracyMethod
	switch *method {
	case "none":
		m = core.AccuracyNone
	case "analytical":
		m = core.AccuracyAnalytical
	case "bootstrap":
		m = core.AccuracyBootstrap
	default:
		fmt.Fprintf(os.Stderr, "asdbd: unknown method %q\n", *method)
		os.Exit(2)
	}
	eng, err := core.NewEngine(core.Config{
		Level:      *level,
		Method:     m,
		Seed:       *seed,
		DropUnsure: *dropUnsure,
		Workers:    *workers,
	})
	if err != nil {
		log.Fatalf("asdbd: %v", err)
	}
	logger := log.New(os.Stderr, "asdbd: ", log.LstdFlags)
	srv, err := server.New(eng, logger)
	if err != nil {
		log.Fatalf("asdbd: %v", err)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("asdbd: %v", err)
	}
	logger.Printf("listening on %s (method=%s level=%g)", bound, m, *level)
	if err := srv.Serve(); err != nil {
		log.Fatalf("asdbd: %v", err)
	}
}
