// Command asdbd is the accuracy-aware uncertain stream database daemon: it
// hosts one engine and serves the line protocol of repro/internal/server
// over TCP.
//
// Usage:
//
//	asdbd [-addr 127.0.0.1:7433] [-level 0.9] [-method analytical] [-seed 1]
//	      [-data-dir DIR] [-fsync always|interval|none] [-checkpoint-every N]
//	      [-debug-addr 127.0.0.1:7434] [-max-conns N] [-idle-timeout D]
//	      [-drain-timeout D] [-shed] [-shed-target-p99 D]
//	      [-repl-addr 127.0.0.1:7443 | -follow PRIMARY:7443]
//	      [-failover -failover-peers A,B -failover-self A]
//	      [-failover-suspect D] [-failover-probe D]
//	      [-promote-repl-addr ADDR] [-auto-rejoin]
//
// With -repl-addr set (requires -data-dir) the daemon is a replication
// primary: it ships its WAL to followers over that listener. With -follow
// set the daemon is a read-only follower: it syncs from the primary's
// replication listener (snapshot + WAL suffix), applies records through
// the normal recovery paths, and serves ATTACH/SUBSCRIBE/STATS/METRICS
// with results byte-identical to the primary's. A follower with -data-dir
// is durable: it journals the replicated records into its own WAL
// (write-through) and, after a restart, resumes from its recovered LSN
// instead of re-shipping history.
//
// Automatic failover (-failover, follower mode): the daemon probes the
// primary's heartbeat silence and, after its graded suspect window
// (rank 0 on the deterministic successor ladder waits -failover-suspect,
// rank k waits (1+k)×), promotes itself — journal an epoch bump, accept
// writes, and (with -promote-repl-addr) start shipping its own WAL.
// -failover-peers must list every replica's CLIENT address (the same
// value each gives as -failover-self; default -addr), identically on all
// of them: the addresses feed the ladder, are ROLE-probed before a
// lower rank may promote (a higher rank that already won makes this node
// stand down and follow the winner), and partition the promotion epochs
// so concurrent promotions can never journal the same epoch.
// Writes reaching the fenced ex-primary are rejected with the
// "fenced: stale epoch" sentinel that routing clients fail over on.
// With -auto-rejoin, a follower told by the primary that its WAL suffix
// diverged past an epoch change (a revived ex-primary) truncates the
// suffix, re-recovers, and re-follows automatically.
//
// Methods: none, analytical, bootstrap.
//
// With -debug-addr set the daemon serves an HTTP observability listener:
// /debug/metrics (Prometheus text format), /debug/vars (expvar, including
// the metrics registry under "asdb"), and /debug/pprof (net/http/pprof).
// All instrumentation is observation-only — engine results stay
// bit-identical with or without the listener.
//
// With -data-dir set the daemon is durable: every state-changing command
// (STREAM, QUERY, INSERT, CLOSE) is journaled to a write-ahead log under
// DIR/wal and the engine state is checkpointed to DIR/checkpoints every N
// journaled commands. On startup the daemon recovers from the latest valid
// checkpoint plus the WAL suffix; recovery is deterministic, so the
// restarted daemon computes bit-identical results to one that never
// stopped. SIGINT/SIGTERM trigger a graceful shutdown: connections are
// closed, a final checkpoint is written, and the WAL is fsynced.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
)

// liveNode holds the pieces the signal handler and the rejoin supervisor
// both touch; rejoin swaps in a freshly recovered server.
type liveNode struct {
	mu       sync.Mutex
	srv      *server.Server
	ship     *cluster.ShipServer
	follower *cluster.Follower
	fm       *cluster.FailoverManager
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "listen address")
	level := flag.Float64("level", 0.9, "confidence level for accuracy intervals")
	method := flag.String("method", "analytical", "accuracy method: none | analytical | bootstrap")
	seed := flag.Uint64("seed", 1, "engine RNG seed")
	dropUnsure := flag.Bool("drop-unsure", false, "drop tuples whose coupled significance test is UNSURE")
	workers := flag.Int("workers", 0, "accuracy-kernel parallelism (0 = GOMAXPROCS); results are identical at any setting")
	dataDir := flag.String("data-dir", "", "durability directory (empty = in-memory only)")
	fsyncPolicy := flag.String("fsync", "interval", "WAL fsync policy: always | interval | none")
	ckEvery := flag.Int("checkpoint-every", 1024, "checkpoint after this many journaled commands")
	debugAddr := flag.String("debug-addr", "", "HTTP observability listener (/debug/metrics, /debug/vars, /debug/pprof); empty disables")
	maxConns := flag.Int("max-conns", 0, "max concurrent client connections (0 = default 1024, negative = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close connections idle this long (0 = default 5m, negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 0, "graceful-shutdown drain window (0 = default 5s)")
	shed := flag.Bool("shed", false, "enable accuracy-aware load shedding (wider CIs under overload, never dropped tuples)")
	shedTarget := flag.Duration("shed-target-p99", 0, "push-latency p99 the shed controller defends (0 = default 50ms)")
	replAddr := flag.String("repl-addr", "", "WAL-shipping replication listener for followers (requires -data-dir); empty disables")
	follow := flag.String("follow", "", "run as a read-only follower of this primary's -repl-addr; empty disables")
	failover := flag.Bool("failover", false, "follower mode: promote automatically when the primary goes silent")
	failoverSelf := flag.String("failover-self", "", "this replica's client address as listed in -failover-peers (default -addr)")
	failoverPeers := flag.String("failover-peers", "", "comma-separated client addresses of every replica of this shard (including self); must be identical on all replicas")
	failoverSuspect := flag.Duration("failover-suspect", time.Second, "primary silence before the rank-0 successor promotes")
	failoverProbe := flag.Duration("failover-probe", 100*time.Millisecond, "failure-detector probe interval")
	promoteRepl := flag.String("promote-repl-addr", "", "start shipping the WAL on this listener after an automatic promotion (requires -data-dir)")
	autoRejoin := flag.Bool("auto-rejoin", false, "follower mode with -data-dir: on a diverged-suffix verdict, truncate, re-recover and re-follow automatically")
	flag.Parse()

	if *replAddr != "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "asdbd: -repl-addr requires -data-dir (replication ships the WAL)")
		os.Exit(2)
	}
	if *follow != "" && *replAddr != "" {
		fmt.Fprintln(os.Stderr, "asdbd: -follow and -repl-addr are mutually exclusive")
		os.Exit(2)
	}
	if *failover && *follow == "" {
		fmt.Fprintln(os.Stderr, "asdbd: -failover requires -follow (only a follower can promote)")
		os.Exit(2)
	}
	if *promoteRepl != "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "asdbd: -promote-repl-addr requires -data-dir (shipping needs a WAL)")
		os.Exit(2)
	}
	if *autoRejoin && (*follow == "" || *dataDir == "") {
		fmt.Fprintln(os.Stderr, "asdbd: -auto-rejoin requires -follow and -data-dir")
		os.Exit(2)
	}

	var m core.AccuracyMethod
	switch *method {
	case "none":
		m = core.AccuracyNone
	case "analytical":
		m = core.AccuracyAnalytical
	case "bootstrap":
		m = core.AccuracyBootstrap
	default:
		fmt.Fprintf(os.Stderr, "asdbd: unknown method %q\n", *method)
		os.Exit(2)
	}
	cfg := core.Config{
		Level:           *level,
		Method:          m,
		Seed:            *seed,
		DropUnsure:      *dropUnsure,
		Workers:         *workers,
		DataDir:         *dataDir,
		FsyncPolicy:     *fsyncPolicy,
		CheckpointEvery: *ckEvery,
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		log.Fatalf("asdbd: %v", err)
	}
	logger := log.New(os.Stderr, "asdbd: ", log.LstdFlags)
	if *debugAddr != "" {
		// expvar and pprof register themselves on the default mux; the
		// Prometheus page joins them. The listener shares nothing with the
		// engine beyond reading atomic instruments.
		metrics.Default.PublishExpvar("asdb")
		http.Handle("/debug/metrics", metrics.Default.Handler())
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Printf("debug listener: %v", err)
			}
		}()
		logger.Printf("debug listener on http://%s/debug/metrics", *debugAddr)
	}
	srv, err := server.NewDurable(eng, logger)
	if err != nil {
		log.Fatalf("asdbd: %v", err)
	}
	srvOpts := server.Options{
		MaxConns:     *maxConns,
		IdleTimeout:  *idleTimeout,
		DrainTimeout: *drainTimeout,
		ReadOnly:     *follow != "",
		Shed: server.ShedConfig{
			Enabled:   *shed,
			TargetP99: *shedTarget,
		},
	}
	srv.SetOptions(srvOpts)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("asdbd: %v", err)
	}
	node := &liveNode{srv: srv}
	if *replAddr != "" {
		ship, err := cluster.NewShipServer(srv, logger, cluster.ShipOptions{})
		if err != nil {
			log.Fatalf("asdbd: %v", err)
		}
		raddr, err := ship.Listen(*replAddr)
		if err != nil {
			log.Fatalf("asdbd: replication listener: %v", err)
		}
		go func() {
			if err := ship.Serve(); err != nil {
				logger.Printf("replication listener: %v", err)
			}
		}()
		node.ship = ship
		logger.Printf("shipping wal to followers on %s", raddr)
	}
	// startShip boots a ship listener for a just-promoted (or rejoined+
	// promoted) server; promotion makes this node the shard's new primary.
	startShip := func(srv *server.Server) {
		if *promoteRepl == "" {
			return
		}
		ship, err := cluster.NewShipServer(srv, logger, cluster.ShipOptions{})
		if err != nil {
			logger.Printf("promotion: ship server: %v", err)
			return
		}
		raddr, err := ship.Listen(*promoteRepl)
		if err != nil {
			logger.Printf("promotion: replication listener: %v", err)
			return
		}
		go func() {
			if err := ship.Serve(); err != nil {
				logger.Printf("replication listener: %v", err)
			}
		}()
		node.mu.Lock()
		node.ship = ship
		node.mu.Unlock()
		logger.Printf("promotion: shipping wal to followers on %s", raddr)
	}
	startFailover := func(srv *server.Server, f *cluster.Follower) *cluster.FailoverManager {
		if !*failover {
			return nil
		}
		self := *failoverSelf
		if self == "" {
			self = *addr
		}
		var peers []string
		for _, p := range strings.Split(*failoverPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		if len(peers) == 0 {
			peers = []string{self}
		}
		fm := cluster.NewFailoverManager(srv, f, logger, cluster.FailoverOptions{
			Self:         self,
			Primary:      *follow,
			Peers:        peers,
			SuspectAfter: *failoverSuspect,
			ProbeEvery:   *failoverProbe,
			OnPromote:    func(epoch uint64) { startShip(srv) },
		})
		fm.Start()
		logger.Printf("failover: watching %s (rank %d of %d, suspect after %v)",
			*follow, fm.Rank(), len(peers), *failoverSuspect)
		return fm
	}
	swapped := make(chan *server.Server, 1)
	if *follow != "" {
		follower := cluster.NewFollower(srv, *follow, logger, cluster.FollowOptions{})
		if w := srv.WAL(); w != nil {
			follower.SetLastApplied(w.LastLSN()) // durable follower resumes where recovery left it
		}
		follower.Start()
		node.follower = follower
		node.fm = startFailover(srv, follower)
		logger.Printf("following primary %s (read-only)", *follow)
		if *autoRejoin {
			go superviseRejoin(node, cfg, logger, *follow, *addr, srvOpts, startFailover, swapped)
		}
	}
	if *dataDir != "" {
		logger.Printf("listening on %s (method=%s level=%g data-dir=%s fsync=%s)",
			bound, m, *level, *dataDir, *fsyncPolicy)
	} else {
		logger.Printf("listening on %s (method=%s level=%g)", bound, m, *level)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	serving := srv
	go func(s *server.Server) { done <- s.Serve() }(serving)
	for {
		select {
		case sig := <-sigc:
			logger.Printf("%s: shutting down", sig)
			node.mu.Lock()
			ship, follower, fm, cur := node.ship, node.follower, node.fm, node.srv
			node.mu.Unlock()
			if fm != nil {
				fm.Stop()
			}
			if ship != nil {
				ship.Close()
			}
			if follower != nil {
				follower.Close()
			}
			if err := cur.Shutdown(); err != nil {
				log.Fatalf("asdbd: shutdown: %v", err)
			}
			<-done // Serve returns once the listener closes under s.closed.
			return
		case err := <-done:
			if err != nil {
				log.Fatalf("asdbd: %v", err)
			}
			if !*autoRejoin {
				return
			}
			// A nil Serve return with auto-rejoin on means the old server was
			// detached mid-rejoin: wait for the supervisor to hand over the
			// recovered server (nil = rejoin failed; exit).
			next := <-swapped
			if next == nil {
				return
			}
			serving = next
			go func(s *server.Server) { done <- s.Serve() }(serving)
		}
	}
}

// superviseRejoin watches the follower for the diverged-suffix verdict and
// drives the automatic rejoin: truncate the WAL after the last
// epoch-consistent LSN, drop newer checkpoints, re-recover, re-listen, and
// follow again. Other terminal errors are left for the operator.
func superviseRejoin(node *liveNode, cfg core.Config, logger *log.Logger, primaryShip, addr string,
	srvOpts server.Options, startFailover func(*server.Server, *cluster.Follower) *cluster.FailoverManager,
	swapped chan<- *server.Server) {
	for {
		time.Sleep(200 * time.Millisecond)
		node.mu.Lock()
		f, old, fm := node.follower, node.srv, node.fm
		node.mu.Unlock()
		if f == nil {
			return
		}
		err := f.Err()
		if err == nil {
			continue
		}
		var re *cluster.RejoinError
		if !errors.As(err, &re) {
			logger.Printf("rejoin: follower stopped on a non-rejoin error, operator action needed: %v", err)
			return
		}
		logger.Printf("rejoin: %v", re)
		if fm != nil {
			fm.Stop()
		}
		srv, nf, rerr := cluster.Rejoin(old, cfg, re, logger, primaryShip, cluster.FollowOptions{})
		if rerr != nil {
			logger.Printf("rejoin: %v", rerr)
			swapped <- nil
			return
		}
		srvOpts.ReadOnly = true
		srv.SetOptions(srvOpts)
		if _, lerr := srv.Listen(addr); lerr != nil {
			logger.Printf("rejoin: relisten: %v", lerr)
			swapped <- nil
			return
		}
		nf.Start()
		node.mu.Lock()
		node.srv, node.follower = srv, nf
		node.fm = startFailover(srv, nf)
		node.mu.Unlock()
		swapped <- srv
		logger.Printf("rejoin: re-following %s from lsn %d", primaryShip, nf.LastApplied())
	}
}
