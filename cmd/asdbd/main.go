// Command asdbd is the accuracy-aware uncertain stream database daemon: it
// hosts one engine and serves the line protocol of repro/internal/server
// over TCP.
//
// Usage:
//
//	asdbd [-addr 127.0.0.1:7433] [-level 0.9] [-method analytical] [-seed 1]
//	      [-data-dir DIR] [-fsync always|interval|none] [-checkpoint-every N]
//	      [-debug-addr 127.0.0.1:7434] [-max-conns N] [-idle-timeout D]
//	      [-drain-timeout D] [-shed] [-shed-target-p99 D]
//	      [-repl-addr 127.0.0.1:7443 | -follow PRIMARY:7443]
//
// With -repl-addr set (requires -data-dir) the daemon is a replication
// primary: it ships its WAL to followers over that listener. With -follow
// set the daemon is a read-only follower: it syncs from the primary's
// replication listener (snapshot + WAL suffix), applies records through
// the normal recovery paths, and serves ATTACH/SUBSCRIBE/STATS/METRICS
// with results byte-identical to the primary's.
//
// Methods: none, analytical, bootstrap.
//
// With -debug-addr set the daemon serves an HTTP observability listener:
// /debug/metrics (Prometheus text format), /debug/vars (expvar, including
// the metrics registry under "asdb"), and /debug/pprof (net/http/pprof).
// All instrumentation is observation-only — engine results stay
// bit-identical with or without the listener.
//
// With -data-dir set the daemon is durable: every state-changing command
// (STREAM, QUERY, INSERT, CLOSE) is journaled to a write-ahead log under
// DIR/wal and the engine state is checkpointed to DIR/checkpoints every N
// journaled commands. On startup the daemon recovers from the latest valid
// checkpoint plus the WAL suffix; recovery is deterministic, so the
// restarted daemon computes bit-identical results to one that never
// stopped. SIGINT/SIGTERM trigger a graceful shutdown: connections are
// closed, a final checkpoint is written, and the WAL is fsynced.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "listen address")
	level := flag.Float64("level", 0.9, "confidence level for accuracy intervals")
	method := flag.String("method", "analytical", "accuracy method: none | analytical | bootstrap")
	seed := flag.Uint64("seed", 1, "engine RNG seed")
	dropUnsure := flag.Bool("drop-unsure", false, "drop tuples whose coupled significance test is UNSURE")
	workers := flag.Int("workers", 0, "accuracy-kernel parallelism (0 = GOMAXPROCS); results are identical at any setting")
	dataDir := flag.String("data-dir", "", "durability directory (empty = in-memory only)")
	fsyncPolicy := flag.String("fsync", "interval", "WAL fsync policy: always | interval | none")
	ckEvery := flag.Int("checkpoint-every", 1024, "checkpoint after this many journaled commands")
	debugAddr := flag.String("debug-addr", "", "HTTP observability listener (/debug/metrics, /debug/vars, /debug/pprof); empty disables")
	maxConns := flag.Int("max-conns", 0, "max concurrent client connections (0 = default 1024, negative = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close connections idle this long (0 = default 5m, negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 0, "graceful-shutdown drain window (0 = default 5s)")
	shed := flag.Bool("shed", false, "enable accuracy-aware load shedding (wider CIs under overload, never dropped tuples)")
	shedTarget := flag.Duration("shed-target-p99", 0, "push-latency p99 the shed controller defends (0 = default 50ms)")
	replAddr := flag.String("repl-addr", "", "WAL-shipping replication listener for followers (requires -data-dir); empty disables")
	follow := flag.String("follow", "", "run as a read-only follower of this primary's -repl-addr; empty disables")
	flag.Parse()

	if *replAddr != "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "asdbd: -repl-addr requires -data-dir (replication ships the WAL)")
		os.Exit(2)
	}
	if *follow != "" && *replAddr != "" {
		fmt.Fprintln(os.Stderr, "asdbd: -follow and -repl-addr are mutually exclusive")
		os.Exit(2)
	}
	if *follow != "" && *dataDir != "" {
		fmt.Fprintln(os.Stderr, "asdbd: -follow runs in-memory (state arrives from the primary); drop -data-dir")
		os.Exit(2)
	}

	var m core.AccuracyMethod
	switch *method {
	case "none":
		m = core.AccuracyNone
	case "analytical":
		m = core.AccuracyAnalytical
	case "bootstrap":
		m = core.AccuracyBootstrap
	default:
		fmt.Fprintf(os.Stderr, "asdbd: unknown method %q\n", *method)
		os.Exit(2)
	}
	eng, err := core.NewEngine(core.Config{
		Level:           *level,
		Method:          m,
		Seed:            *seed,
		DropUnsure:      *dropUnsure,
		Workers:         *workers,
		DataDir:         *dataDir,
		FsyncPolicy:     *fsyncPolicy,
		CheckpointEvery: *ckEvery,
	})
	if err != nil {
		log.Fatalf("asdbd: %v", err)
	}
	logger := log.New(os.Stderr, "asdbd: ", log.LstdFlags)
	if *debugAddr != "" {
		// expvar and pprof register themselves on the default mux; the
		// Prometheus page joins them. The listener shares nothing with the
		// engine beyond reading atomic instruments.
		metrics.Default.PublishExpvar("asdb")
		http.Handle("/debug/metrics", metrics.Default.Handler())
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Printf("debug listener: %v", err)
			}
		}()
		logger.Printf("debug listener on http://%s/debug/metrics", *debugAddr)
	}
	srv, err := server.NewDurable(eng, logger)
	if err != nil {
		log.Fatalf("asdbd: %v", err)
	}
	srv.SetOptions(server.Options{
		MaxConns:     *maxConns,
		IdleTimeout:  *idleTimeout,
		DrainTimeout: *drainTimeout,
		ReadOnly:     *follow != "",
		Shed: server.ShedConfig{
			Enabled:   *shed,
			TargetP99: *shedTarget,
		},
	})
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("asdbd: %v", err)
	}
	var ship *cluster.ShipServer
	if *replAddr != "" {
		ship, err = cluster.NewShipServer(srv.WAL(), srv.Checkpoints(), logger, cluster.ShipOptions{})
		if err != nil {
			log.Fatalf("asdbd: %v", err)
		}
		raddr, err := ship.Listen(*replAddr)
		if err != nil {
			log.Fatalf("asdbd: replication listener: %v", err)
		}
		go func() {
			if err := ship.Serve(); err != nil {
				logger.Printf("replication listener: %v", err)
			}
		}()
		logger.Printf("shipping wal to followers on %s", raddr)
	}
	var follower *cluster.Follower
	if *follow != "" {
		follower = cluster.NewFollower(srv, *follow, logger, cluster.FollowOptions{})
		follower.Start()
		logger.Printf("following primary %s (read-only)", *follow)
	}
	if *dataDir != "" {
		logger.Printf("listening on %s (method=%s level=%g data-dir=%s fsync=%s)",
			bound, m, *level, *dataDir, *fsyncPolicy)
	} else {
		logger.Printf("listening on %s (method=%s level=%g)", bound, m, *level)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	select {
	case sig := <-sigc:
		logger.Printf("%s: shutting down", sig)
		if ship != nil {
			ship.Close()
		}
		if follower != nil {
			follower.Close()
		}
		if err := srv.Shutdown(); err != nil {
			log.Fatalf("asdbd: shutdown: %v", err)
		}
		<-done // Serve returns nil once the listener closes under s.closed.
	case err := <-done:
		if err != nil {
			log.Fatalf("asdbd: %v", err)
		}
	}
}
