// Command experiments regenerates the paper's evaluation figures
// (Fig 4a–4d, 5a–5h) as aligned text tables and, optionally, CSV files.
//
// Usage:
//
//	experiments [flags] [figure-ids...]
//
//	experiments                 # all figures, full size
//	experiments -quick 4a 5e    # two figures, reduced trial counts
//	experiments -csv out/ all   # also write out/fig<id>.csv
//
// Flags:
//
//	-quick        ~10× fewer trials (CI-friendly)
//	-seed N       RNG seed (default 42)
//	-segments N   simulated road-network size (default 300)
//	-csv DIR      also write fig<id>.csv files into DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced trial counts")
	seed := flag.Uint64("seed", 42, "RNG seed")
	segments := flag.Int("segments", 300, "simulated road-network size")
	csvDir := flag.String("csv", "", "directory for CSV output (created if missing)")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Segments: *segments}
	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = experiments.IDs()
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		fig, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, "fig"+fig.ID+".csv")
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
