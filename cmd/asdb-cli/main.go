// Command asdb-cli is an interactive client for asdbd: it forwards protocol
// lines typed on stdin to the server and prints replies and asynchronous
// DATA results.
//
// Usage:
//
//	asdb-cli [-addr 127.0.0.1:7433]
//
// Example session:
//
//	> STREAM traffic road_id delay:dist
//	OK stream traffic
//	> QUERY q1 SELECT road_id, delay FROM traffic WHERE delay > 50
//	OK query q1
//	> INSERT traffic 19 S(56;38;97)
//	DATA q1 {"fields":{...},"prob":0.66,...}
//	OK inserted results=1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "server address")
	flag.Parse()

	conn, err := net.DialTimeout("tcp", *addr, 5*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdb-cli: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	fmt.Fprintf(os.Stderr, "connected to %s; type protocol commands (QUIT to exit)\n", *addr)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		scanner := bufio.NewScanner(conn)
		scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for scanner.Scan() {
			fmt.Println(scanner.Text())
		}
	}()

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	w := bufio.NewWriter(conn)
	for {
		fmt.Fprint(os.Stderr, "> ")
		if !in.Scan() {
			break
		}
		line := in.Text()
		if line == "" {
			continue
		}
		if _, err := w.WriteString(line + "\n"); err != nil {
			fmt.Fprintf(os.Stderr, "asdb-cli: %v\n", err)
			break
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "asdb-cli: %v\n", err)
			break
		}
		if line == "QUIT" || line == "quit" {
			break
		}
		// Give the reply a moment to land before the next prompt.
		time.Sleep(30 * time.Millisecond)
	}
	conn.Close()
	wg.Wait()
}
