// Command benchjson converts `go test -bench` text output into a small
// JSON record, annotated with the environment the run happened on, so
// benchmark results can be committed and compared across changes.
//
//	go test -bench 'Fig5c' -benchmem . | go run ./cmd/benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the committed JSON document.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	CPU        string   `json:"cpu,omitempty"`
	Notes      string   `json:"notes,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	notes := flag.String("notes", "", "free-form note recorded in the report")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Notes:      *notes,
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if res, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parseLine parses a line like
//
//	BenchmarkFoo-8   1000   1234 ns/op   56 B/op   7 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		}
	}
	return res, res.NsPerOp > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
