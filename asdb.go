// Package asdb is an accuracy-aware uncertain stream database: a Go
// implementation of "Accuracy-Aware Uncertain Stream Databases" (Ge & Liu,
// ICDE 2012).
//
// # Overview
//
// Uncertain stream databases model noisy readings (sensor values, traffic
// delays, experiment measurements) as probability distributions. This
// library additionally tracks how accurate those distributions are: every
// learned distribution retains the sample size it came from, query
// processing propagates de facto sample sizes through expressions, filters,
// and window aggregates (Lemma 3 of the paper), and every query result
// carries confidence intervals for its distribution parameters and for its
// membership probability (Theorem 1). Two accuracy backends are available —
// analytical (Lemmas 1–2: Wald/Wilson bin-height intervals, Student-t/normal
// mean intervals, chi-square variance intervals) and bootstrap (the
// BOOTSTRAP-ACCURACY-INFO algorithm). Decision making over low-accuracy
// data uses significance predicates (mTest, mdTest, pTest) with the
// COUPLED-TESTS algorithm bounding both false positive and false negative
// rates.
//
// # Quick start
//
//	eng, _ := asdb.NewEngine(asdb.Config{Method: asdb.AccuracyAnalytical})
//	schema, _ := asdb.NewSchema("traffic",
//		asdb.Column{Name: "road_id"},
//		asdb.Column{Name: "delay", Probabilistic: true},
//	)
//	eng.RegisterStream(schema)
//
//	// Learn a distribution from raw observations; the sample size rides
//	// along for accuracy tracking.
//	field, _ := asdb.Learn(asdb.GaussianLearner{},
//		asdb.NewSample([]float64{71, 56, 82, 74, 69, 77, 65, 78, 59, 80}))
//
//	q, _ := eng.Compile("SELECT road_id, delay FROM traffic WHERE PROB(delay > 60) >= 0.5")
//	t, _ := eng.NewTuple("traffic", []asdb.Field{asdb.Det(19), field})
//	results, _ := q.Push(t)
//	for _, r := range results {
//		fmt.Println(r.Tuple, r.Fields["delay"].Mean) // value + confidence interval
//	}
//
// The SQL dialect supports arithmetic over distribution-valued columns
// (+, −, ×, /, SQRT, ABS, SQUARE), probability-threshold predicates
// (PROB(x > c) >= τ), significance predicates
// (MTEST(x, '>', c, α₁[, α₂]), MDTEST(x, y, '>', c, α₁[, α₂]),
// PTEST(x > c, τ, α₁[, α₂])), and count-based sliding windows
// (SELECT AVG(x) FROM s WINDOW 1000 ROWS).
//
// The subpackages are exported through this facade; power users can import
// repro/internal/... equivalents directly within this module.
package asdb

import (
	"repro/internal/accuracy"
	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hypothesis"
	"repro/internal/learn"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// --- Engine ---

// Engine is an accuracy-aware uncertain stream database instance.
type Engine = core.Engine

// Config tunes an Engine; the zero value gives 90% analytical-free
// defaults (set Method to enable accuracy computation).
type Config = core.Config

// Query is a compiled continuous query.
type Query = core.Query

// Result is a query output tuple plus its accuracy information.
type Result = core.Result

// QueryStats counts a query's activity.
type QueryStats = core.QueryStats

// AccuracyMethod selects the accuracy backend.
type AccuracyMethod = core.AccuracyMethod

// Accuracy backends.
const (
	// AccuracyNone disables accuracy computation.
	AccuracyNone = core.AccuracyNone
	// AccuracyAnalytical uses the paper's Lemmas 1–2 via Theorem 1.
	AccuracyAnalytical = core.AccuracyAnalytical
	// AccuracyBootstrap uses algorithm BOOTSTRAP-ACCURACY-INFO.
	AccuracyBootstrap = core.AccuracyBootstrap
)

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config) (*Engine, error) { return core.NewEngine(cfg) }

// DefaultConfig returns the engine defaults.
func DefaultConfig() Config { return core.DefaultConfig() }

// --- Streams and tuples ---

// Schema describes a stream's columns.
type Schema = stream.Schema

// Column is one attribute; Probabilistic columns hold distributions.
type Column = stream.Column

// Tuple is one stream element with tuple and attribute uncertainty.
type Tuple = stream.Tuple

// Field is a random-variable-valued field: a distribution plus the sample
// size it was learned from.
type Field = randvar.Field

// NewSchema builds a schema from columns.
func NewSchema(name string, cols ...Column) (*Schema, error) {
	return stream.NewSchema(name, cols...)
}

// NewTuple builds a tuple over a schema with membership probability 1.
func NewTuple(schema *Schema, fields []Field) (*Tuple, error) {
	return stream.NewTuple(schema, fields)
}

// Det returns a deterministic field holding v.
func Det(v float64) Field { return randvar.Det(v) }

// --- Distributions ---

// Distribution is a univariate probability distribution (the value type of
// probabilistic attributes).
type Distribution = dist.Distribution

// Rand is the deterministic random number generator used across the
// library.
type Rand = dist.Rand

// NewRand returns a generator seeded from seed.
func NewRand(seed uint64) *Rand { return dist.NewRand(seed) }

// Distribution constructors (see repro/internal/dist for the full set).
var (
	// NewNormal returns a Gaussian with the given mean and variance.
	NewNormal = dist.NewNormal
	// NewExponential returns an exponential with rate λ.
	NewExponential = dist.NewExponential
	// NewGamma returns a gamma with shape k and scale θ.
	NewGamma = dist.NewGamma
	// NewUniform returns a uniform on [a, b].
	NewUniform = dist.NewUniform
	// NewWeibull returns a Weibull with scale λ and shape k.
	NewWeibull = dist.NewWeibull
	// NewLognormal returns a lognormal with log-mean and log-variance.
	NewLognormal = dist.NewLognormal
	// NewHistogram builds a histogram distribution from edges and
	// probabilities.
	NewHistogram = dist.NewHistogram
	// HistogramFromCounts builds a histogram from raw bucket counts,
	// retaining them for Lemma 1 accuracy.
	HistogramFromCounts = dist.HistogramFromCounts
)

// Histogram is the paper's primary distribution representation.
type Histogram = dist.Histogram

// Point is the degenerate (deterministic) distribution.
type Point = dist.Point

// Beta is the beta distribution — the posterior family for probabilities.
type Beta = dist.Beta

// StudentT is the location-scale Student-t distribution — the sampling
// distribution of a mean behind Lemma 2's small-sample interval.
type StudentT = dist.StudentT

// Posterior/extra-distribution constructors.
var (
	// NewBeta returns a beta distribution with shapes α, β.
	NewBeta = dist.NewBeta
	// NewStudentT returns a location-scale Student-t.
	NewStudentT = dist.NewStudentT
	// BetaPosterior returns Beta(k+1, n−k+1), the uniform-prior posterior
	// of a proportion after k successes in n trials.
	BetaPosterior = dist.BetaPosterior
	// MeanPosterior returns the Student-t sampling distribution of a mean
	// from (ȳ, s, n).
	MeanPosterior = dist.MeanPosterior
)

// --- Learning ---

// Sample is an iid set of observations of one random variable.
type Sample = learn.Sample

// Learner fits a distribution to a sample.
type Learner = learn.Learner

// GaussianLearner fits a normal distribution by maximum likelihood.
type GaussianLearner = learn.GaussianLearner

// EmpiricalLearner returns the sample's empirical distribution.
type EmpiricalLearner = learn.EmpiricalLearner

// KDELearner fits a Gaussian kernel density estimate.
type KDELearner = learn.KDELearner

// NewSample returns a sample over obs (copied).
func NewSample(obs []float64) *Sample { return learn.NewSample(obs) }

// NewHistogramLearner returns an auto-ranging histogram learner.
func NewHistogramLearner(bins int) *learn.HistogramLearner {
	return learn.NewHistogramLearner(bins)
}

// NewHistogramLearnerRange returns a fixed-range histogram learner.
func NewHistogramLearnerRange(bins int, lo, hi float64) *learn.HistogramLearner {
	return learn.NewHistogramLearnerRange(bins, lo, hi)
}

// Learn fits a distribution to a raw sample, retaining the sample size for
// accuracy tracking.
func Learn(l Learner, s *Sample) (Field, error) { return core.LearnField(l, s) }

// LearnOp is the streaming learner: raw (key, value) observations in,
// freshly learned (key, distribution) tuples out, with optional recency
// decay (§VII future work).
type LearnOp = stream.LearnOp

// NewLearnOp builds a streaming learner over the raw input schema.
func NewLearnOp(in *Schema, keyCol, valueCol string, bufferSize int) (*LearnOp, error) {
	return stream.NewLearnOp(in, keyCol, valueCol, bufferSize)
}

// --- Accuracy ---

// Interval is a confidence interval with its confidence level.
type Interval = accuracy.Interval

// AccuracyInfo is the accuracy information of a probabilistic field:
// intervals for mean, variance, and (for histograms) every bin height.
type AccuracyInfo = accuracy.Info

// BinInterval pairs a histogram bucket with its height's interval.
type BinInterval = accuracy.BinInterval

// Analytical accuracy primitives (Lemmas 1–3 of the paper).
var (
	// BinHeightInterval is Lemma 1 for a single histogram bucket.
	BinHeightInterval = accuracy.BinHeightInterval
	// MeanInterval is Lemma 2 eq. (3)/(4).
	MeanInterval = accuracy.MeanInterval
	// VarianceInterval is Lemma 2 eq. (5).
	VarianceInterval = accuracy.VarianceInterval
	// TupleProbInterval treats a tuple probability as a one-bin
	// histogram (Theorem 1).
	TupleProbInterval = accuracy.TupleProbInterval
	// DFSampleSize is Lemma 3: min over the input sample sizes.
	DFSampleSize = accuracy.DFSampleSize
	// AccuracyForDistribution is Theorem 1's analytical path.
	AccuracyForDistribution = accuracy.ForDistribution
	// BootstrapAccuracyInfo is algorithm BOOTSTRAP-ACCURACY-INFO.
	BootstrapAccuracyInfo = bootstrap.AccuracyInfo
	// QuantileInterval is a distribution-free confidence interval for a
	// population quantile (order-statistic method; extension beyond the
	// paper's three statistics).
	QuantileInterval = accuracy.QuantileInterval
	// MedianInterval is QuantileInterval at p = 0.5.
	MedianInterval = accuracy.MedianInterval
)

// --- Online acquisition (§I's online computation) ---

// AcquireRule configures the online-acquisition loop's stopping conditions.
type AcquireRule = core.AcquireRule

// AcquireTest is the optional decision rule inside an AcquireRule.
type AcquireTest = core.AcquireTest

// AcquireResult is the outcome of an Acquire run.
type AcquireResult = core.AcquireResult

// AcquireSource produces fresh observations on demand.
type AcquireSource = core.Source

// StopReason reports why acquisition ended.
type StopReason = core.StopReason

// Acquisition stop reasons.
const (
	// StopWidth: the mean interval reached the target width.
	StopWidth = core.StopWidth
	// StopDecided: the coupled test reached TRUE or FALSE.
	StopDecided = core.StopDecided
	// StopBudget: the observation budget ran out.
	StopBudget = core.StopBudget
)

// Acquire drives a raw-observation source in batches and stops as soon as
// the accuracy suffices — the paper's "stop acquiring raw data/samples"
// use case (§I).
func Acquire(source AcquireSource, rule AcquireRule) (*AcquireResult, error) {
	return core.Acquire(source, rule)
}

// --- Weighted samples (the paper's §VII future work) ---

// WeightedSample carries per-observation weights; accuracy follows the
// effective sample size (Σw)²/Σw².
type WeightedSample = learn.WeightedSample

// Weighted-sample constructors.
var (
	// NewWeightedSample builds a weighted sample from parallel slices.
	NewWeightedSample = learn.NewWeightedSample
	// ExponentialDecay weights observations by exp(−ln2·age/halfLife) —
	// "observations that are obtained more recently can have more
	// weights" (§VII).
	ExponentialDecay = learn.ExponentialDecay
	// WeightedGaussian fits a normal distribution to a weighted sample,
	// returning the effective sample size for accuracy tracking.
	WeightedGaussian = learn.WeightedGaussianLearner
	// WeightedHistogram bins a weighted sample, returning the histogram
	// and effective sample size.
	WeightedHistogram = learn.WeightedHistogramLearner
)

// --- Significance predicates ---

// TestResult is the three-state answer of a coupled significance predicate.
type TestResult = hypothesis.Result

// Three-state results of coupled tests.
const (
	// TestTrue: the original test accepted H1 (false positive rate ≤ α₁).
	TestTrue = hypothesis.True
	// TestFalse: the inverse test accepted (false negative rate ≤ α₂).
	TestFalse = hypothesis.False
	// TestUnsure: no decision at the requested error rates.
	TestUnsure = hypothesis.Unsure
)

// TestOp is the alternative-hypothesis operator of a significance
// predicate.
type TestOp = hypothesis.Op

// Alternative-hypothesis operators.
const (
	// OpLess is "<".
	OpLess = hypothesis.Less
	// OpGreater is ">".
	OpGreater = hypothesis.Greater
	// OpNotEqual is "<>".
	OpNotEqual = hypothesis.NotEqual
)

// TestStats summarizes a probabilistic field for hypothesis testing.
type TestStats = hypothesis.Stats

// Hypothesis-testing entry points (§IV of the paper).
var (
	// MTest is the basic mean test.
	MTest = hypothesis.MTest
	// MDTest is the basic mean difference test (Welch).
	MDTest = hypothesis.MDTest
	// PTest is the basic probability (population proportion) test.
	PTest = hypothesis.PTest
	// CoupledMTest bounds both error rates via COUPLED-TESTS.
	CoupledMTest = hypothesis.CoupledMTest
	// CoupledMDTest is the coupled mean difference test.
	CoupledMDTest = hypothesis.CoupledMDTest
	// CoupledPTest is the coupled probability test.
	CoupledPTest = hypothesis.CoupledPTest
	// StatsFromSample extracts test statistics from a raw sample.
	StatsFromSample = hypothesis.StatsFromSample
	// StatsFromDistribution extracts test statistics from a learned
	// distribution and its (d.f.) sample size.
	StatsFromDistribution = hypothesis.StatsFromDistribution
	// KSTest compares two learned distributions wholesale
	// (Kolmogorov–Smirnov; extension beyond the paper's predicates).
	KSTest = hypothesis.KSTest
	// CoupledKSTest is the three-state form of KSTest.
	CoupledKSTest = hypothesis.CoupledKSTest
	// KSStatistic computes D = sup |F₁ − F₂|.
	KSStatistic = hypothesis.KSStatistic
)
