package asdb_test

import (
	"fmt"
	"log"

	asdb "repro"
)

// Example reproduces the paper's Example 3: ten traffic-delay observations
// yield a learned distribution whose 90% mean interval is [65.97, 76.23].
func Example() {
	raw := []float64{71, 56, 82, 74, 69, 77, 65, 78, 59, 80}
	field, err := asdb.Learn(asdb.GaussianLearner{}, asdb.NewSample(raw))
	if err != nil {
		log.Fatal(err)
	}
	info, err := asdb.AccuracyForDistribution(field.Dist, field.N, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean interval [%.2f, %.2f]\n", info.Mean.Lo, info.Mean.Hi)
	fmt.Printf("variance interval [%.2f, %.2f]\n", info.Variance.Lo, info.Variance.Hi)
	// Output:
	// mean interval [65.97, 76.23]
	// variance interval [41.66, 211.99]
}

// ExampleBinHeightInterval reproduces the paper's Example 2: the second
// bucket (4 of 20 observations) gets the Wald interval 0.2 ± 0.15.
func ExampleBinHeightInterval() {
	iv, err := asdb.BinHeightInterval(0.2, 20, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%.2f, %.2f]\n", iv.Lo, iv.Hi)
	// Output:
	// [0.05, 0.35]
}

// ExampleTupleProbInterval reproduces the paper's Example 5: a tuple
// probability of 0.6 backed by 20 observations carries the 90% interval
// [0.42, 0.78].
func ExampleTupleProbInterval() {
	iv, err := asdb.TupleProbInterval(0.6, 20, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%.2f, %.2f]\n", iv.Lo, iv.Hi)
	// Output:
	// [0.42, 0.78]
}

// ExampleCoupledMTest shows the three-state significance predicate: the
// same question answered from a small and a large sample.
func ExampleCoupledMTest() {
	small := asdb.TestStats{Mean: 100.4, SD: 15.85, N: 5}
	large := asdb.TestStats{Mean: 100.4, SD: 7.7, N: 100}
	r1, err := asdb.CoupledMTest(small, asdb.OpGreater, 97, 0.05, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := asdb.CoupledMTest(large, asdb.OpGreater, 97, 0.05, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("n=5:  ", r1)
	fmt.Println("n=100:", r2)
	// Output:
	// n=5:   UNSURE
	// n=100: TRUE
}

// ExampleEngine_Compile runs a probability-threshold query end to end.
func ExampleEngine_Compile() {
	eng, err := asdb.NewEngine(asdb.Config{Method: asdb.AccuracyAnalytical})
	if err != nil {
		log.Fatal(err)
	}
	schema, err := asdb.NewSchema("traffic",
		asdb.Column{Name: "road_id"},
		asdb.Column{Name: "delay", Probabilistic: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterStream(schema); err != nil {
		log.Fatal(err)
	}
	q, err := eng.Compile("SELECT road_id FROM traffic WHERE delay > 50")
	if err != nil {
		log.Fatal(err)
	}
	delay, err := asdb.NewNormal(60, 100)
	if err != nil {
		log.Fatal(err)
	}
	tup, err := eng.NewTuple("traffic", []asdb.Field{asdb.Det(19), {Dist: delay, N: 20}})
	if err != nil {
		log.Fatal(err)
	}
	results, err := q.Push(tup)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("road %.0f: P(in result) = %.3f, interval [%.2f, %.2f]\n",
			r.Tuple.Fields[0].Dist.Mean(), r.Tuple.Prob, r.TupleProb.Lo, r.TupleProb.Hi)
	}
	// Output:
	// road 19: P(in result) = 0.841, interval [0.67, 0.93]
}

// ExampleDFSampleSize shows Lemma 3 on the paper's Example 4.
func ExampleDFSampleSize() {
	n, err := asdb.DFSampleSize(15, 10) // (A+B)/2 with |A|=15, |B|=10
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(n)
	// Output:
	// 10
}
