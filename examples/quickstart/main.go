// Quickstart: the smallest end-to-end use of the accuracy-aware uncertain
// stream database — learn a distribution from raw observations, run a
// query, and read back the result with its confidence intervals.
package main

import (
	"fmt"
	"log"

	asdb "repro"
)

func main() {
	// An engine with analytical accuracy (Lemmas 1–2 of the paper) at the
	// 90% confidence level.
	eng, err := asdb.NewEngine(asdb.Config{Method: asdb.AccuracyAnalytical, Level: 0.9})
	if err != nil {
		log.Fatal(err)
	}

	// A stream of traffic readings: a deterministic road id and a
	// probabilistic delay.
	schema, err := asdb.NewSchema("traffic",
		asdb.Column{Name: "road_id"},
		asdb.Column{Name: "delay", Probabilistic: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterStream(schema); err != nil {
		log.Fatal(err)
	}

	// Paper Example 3: ten raw delay observations. Learning retains the
	// sample size — that is what makes the system accuracy-aware.
	raw := []float64{71, 56, 82, 74, 69, 77, 65, 78, 59, 80}
	delay, err := asdb.Learn(asdb.GaussianLearner{}, asdb.NewSample(raw))
	if err != nil {
		log.Fatal(err)
	}

	// A possible-world filter: the result tuple's membership probability
	// becomes P(delay > 60), with its own confidence interval.
	q, err := eng.Compile("SELECT road_id, delay FROM traffic WHERE delay > 60")
	if err != nil {
		log.Fatal(err)
	}

	tup, err := eng.NewTuple("traffic", []asdb.Field{asdb.Det(19), delay})
	if err != nil {
		log.Fatal(err)
	}
	results, err := q.Push(tup)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range results {
		fmt.Printf("road %.0f: delay %s\n",
			r.Tuple.Fields[0].Dist.Mean(), r.Tuple.Fields[1].Dist)
		if info := r.Fields["delay"]; info != nil {
			fmt.Printf("  mean delay interval     %v  (paper Example 3: [65.97, 76.23])\n", info.Mean)
			fmt.Printf("  delay variance interval %v\n", info.Variance)
		}
		fmt.Printf("  tuple probability       %.3f", r.Tuple.Prob)
		if r.TupleProb != nil {
			fmt.Printf("  interval %v", *r.TupleProb)
		}
		fmt.Println()
	}
}
