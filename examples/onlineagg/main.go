// Onlineagg: the paper's online-computation use case (§I): "When the
// intervals are sufficiently narrow to make a decision with enough
// confidence, we can stop acquiring raw data/samples, which is a slow or
// expensive process."
//
// A scientific instrument produces expensive measurements one batch at a
// time. asdb.Acquire drives the instrument, re-learning the distribution
// after each batch, and stops at the earliest of: the mean interval
// reaching a target width, the coupled mTest deciding the question at the
// requested error rates, or the measurement budget running out.
package main

import (
	"fmt"
	"log"

	asdb "repro"
)

func main() {
	// The (hidden) ground truth: measurements are N(52, 6²). The
	// question: is the true mean above the safety threshold 50?
	rng := asdb.NewRand(7)
	truth, err := asdb.NewNormal(52, 36)
	if err != nil {
		log.Fatal(err)
	}
	calls := 0
	instrument := func(n int) ([]float64, error) {
		calls++
		out := make([]float64, n)
		for i := range out {
			out[i] = truth.Sample(rng)
		}
		return out, nil
	}

	fmt.Println("question: is E(measurement) > 50?  (truth: mean 52, unknown to the system)")

	// Stop when the coupled test decides at 5%/5% error rates, when the
	// 90% mean interval is narrower than 2.0, or after 400 measurements.
	res, err := asdb.Acquire(instrument, asdb.AcquireRule{
		Level:    0.9,
		MaxWidth: 2.0,
		Test:     &asdb.AcquireTest{Op: asdb.OpGreater, C: 50, Alpha1: 0.05, Alpha2: 0.05},
		Batch:    5,
		MaxN:     400,
	})
	if err != nil {
		log.Fatal(err)
	}

	mean, _ := res.Sample.Mean()
	fmt.Printf("\nstopped: %s after %d measurements (%d instrument calls)\n",
		res.Reason, res.Sample.Size(), calls)
	fmt.Printf("  sample mean     %.2f\n", mean)
	fmt.Printf("  mean interval   %v (width %.2f)\n", res.Mean, res.Mean.Length())
	fmt.Printf("  coupled mTest   %v\n", res.Decision)
	if res.Reason == asdb.StopDecided {
		fmt.Printf("\ndecision %v — acquisition stopped early, saving %d of the budgeted 400 measurements\n",
			res.Decision, 400-res.Sample.Size())
	}

	// Contrast: a pure width-based rule needs many more measurements for
	// the same question.
	res2, err := asdb.Acquire(instrument, asdb.AcquireRule{
		Level:    0.9,
		MaxWidth: 2.0,
		MaxN:     400,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwidth-only rule for comparison: %s after %d measurements (interval %v)\n",
		res2.Reason, res2.Sample.Size(), res2.Mean)
	fmt.Println("the decision rule stops as soon as the *question* is answered, not when the estimate is pretty")
}
