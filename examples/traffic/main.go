// Traffic: the paper's motivating scenario (Example 1 and §V-D) end to end.
//
// A CarTel-style fleet reports road delays; reports per segment vary wildly
// (a side street gets 3, an arterial 50). The system learns per-segment
// delay distributions, answers the introduction's probability-threshold
// query — showing how accuracy-oblivious answers mislead — and then
// compares two candidate routes with a coupled mdTest that reports UNSURE
// instead of guessing when the data cannot support a decision.
package main

import (
	"fmt"
	"log"

	asdb "repro"
	"repro/internal/cartel"
)

func main() {
	const seed = 2026

	// Simulated CarTel network (the real dataset is proprietary; see
	// DESIGN.md §3 for the substitution rationale).
	net, err := cartel.NewNetwork(200, seed)
	if err != nil {
		log.Fatal(err)
	}

	// One reporting window of 1200 probe reports, grouped per segment —
	// the raw rows of the paper's Figure 1.
	obs, err := net.ObserveWindow(1200, 120)
	if err != nil {
		log.Fatal(err)
	}
	groups := cartel.GroupBySegment(obs)
	fmt.Printf("window: %d reports over %d segments\n\n", len(obs), len(groups))

	// The accuracy-aware engine.
	eng, err := asdb.NewEngine(asdb.Config{Method: asdb.AccuracyAnalytical, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	schema, err := asdb.NewSchema("roads",
		asdb.Column{Name: "segment_id"},
		asdb.Column{Name: "delay", Probabilistic: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterStream(schema); err != nil {
		log.Fatal(err)
	}

	// The introduction's query: which roads have delay > 50 with
	// probability at least 2/3? The threshold predicate is
	// accuracy-oblivious — a road with 3 reports decides as confidently
	// as one with 50.
	q, err := eng.Compile("SELECT segment_id, delay FROM roads WHERE PROB(delay > 50) >= 0.667")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("roads matching PROB(delay > 50) >= 2/3, with accuracy information:")
	shown := 0
	for segID, sample := range groups {
		if sample.Size() < 3 {
			continue // too few reports to learn anything
		}
		field, err := asdb.Learn(asdb.GaussianLearner{}, sample)
		if err != nil {
			log.Fatal(err)
		}
		tup, err := eng.NewTuple("roads", []asdb.Field{asdb.Det(float64(segID)), field})
		if err != nil {
			log.Fatal(err)
		}
		results, err := q.Push(tup)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			if shown >= 8 {
				continue
			}
			shown++
			info := r.Fields["delay"]
			fmt.Printf("  segment %3.0f  n=%-3d  mean delay %6.1fs  90%% interval %v\n",
				r.Tuple.Fields[0].Dist.Mean(), info.N, r.Tuple.Fields[1].Dist.Mean(), info.Mean)
		}
	}
	fmt.Printf("(%d shown; wide intervals flag decisions made on few reports)\n\n", shown)

	// Route comparison: two routes with close true mean delays (the hard
	// case of §V-D). A naive mean comparison always answers; the coupled
	// mdTest bounds both error rates and says UNSURE when n is too small.
	pairs, err := net.ClosePairs(1, 20, 0.03)
	if err != nil {
		log.Fatal(err)
	}
	pair := pairs[0]
	fmt.Printf("route A true mean %.1fs vs route B true mean %.1fs (%.1f%% apart)\n",
		pair.FirstMean, pair.SecondMean,
		100*(pair.SecondMean-pair.FirstMean)/pair.FirstMean)

	for _, n := range []int{5, 20, 80, 320} {
		obsA, err := net.ObserveRoute(pair.First, n)
		if err != nil {
			log.Fatal(err)
		}
		obsB, err := net.ObserveRoute(pair.Second, n)
		if err != nil {
			log.Fatal(err)
		}
		sa, err := asdb.StatsFromSample(asdb.NewSample(obsA))
		if err != nil {
			log.Fatal(err)
		}
		sb, err := asdb.StatsFromSample(asdb.NewSample(obsB))
		if err != nil {
			log.Fatal(err)
		}
		// Is B's mean delay greater than A's? (True by construction.)
		res, err := asdb.CoupledMDTest(sb, sa, asdb.OpGreater, 0, 0.05, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		naive := "B"
		if sa.Mean > sb.Mean {
			naive = "A (wrong)"
		}
		fmt.Printf("  n=%-4d mdTest(B > A, α₁=α₂=0.05) = %-7v naive pick: %s\n", n, res, naive)
	}
	fmt.Println("\nthe coupled test answers only when the sample supports it — no silent wrong routing")
}
