// Sensornet: the paper's Examples 8 and 9 — why plain probabilistic
// predicates mislead and how significance predicates fix them.
//
// Two temperature sensors report the same estimated distribution shape, but
// X was learned from 5 readings and Y from 100. A probability-threshold
// query treats them identically; pTest and mTest (run through the SQL
// WHERE clause) admit only the well-supported one.
package main

import (
	"fmt"
	"log"

	asdb "repro"
)

func main() {
	eng, err := asdb.NewEngine(asdb.Config{Method: asdb.AccuracyAnalytical})
	if err != nil {
		log.Fatal(err)
	}
	schema, err := asdb.NewSchema("sensors",
		asdb.Column{Name: "sensor_id"},
		asdb.Column{Name: "temperature", Probabilistic: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterStream(schema); err != nil {
		log.Fatal(err)
	}

	// Example 8's field X: five raw readings. The empirical learner keeps
	// the observed proportions exactly ("distributions learned by the
	// database should be faithful to their raw samples", Example 8).
	xField, err := asdb.Learn(asdb.EmpiricalLearner{},
		asdb.NewSample([]float64{82, 86, 105, 110, 119}))
	if err != nil {
		log.Fatal(err)
	}
	// Field Y: same mean (100.4), but 100 readings — 40 below 100 and 60
	// above, as in the paper.
	yObs := make([]float64, 100)
	for i := 0; i < 40; i++ {
		yObs[i] = 91
	}
	for i := 40; i < 100; i++ {
		yObs[i] = 106.66666666666667
	}
	yField, err := asdb.Learn(asdb.EmpiricalLearner{}, asdb.NewSample(yObs))
	if err != nil {
		log.Fatal(err)
	}

	tupleX, err := eng.NewTuple("sensors", []asdb.Field{asdb.Det(1), xField})
	if err != nil {
		log.Fatal(err)
	}
	tupleY, err := eng.NewTuple("sensors", []asdb.Field{asdb.Det(2), yField})
	if err != nil {
		log.Fatal(err)
	}

	run := func(label, sqlText string) {
		q, err := eng.Compile(sqlText)
		if err != nil {
			log.Fatal(err)
		}
		var passed []float64
		for _, t := range []*asdb.Tuple{tupleX, tupleY} {
			results, err := q.Push(t)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range results {
				passed = append(passed, r.Tuple.Fields[0].Dist.Mean())
			}
		}
		fmt.Printf("%-60s -> sensors %v\n", label, passed)
	}

	fmt.Println("sensor 1: mean 100.4 from n=5     sensor 2: mean 100.4 from n=100")
	fmt.Println()

	// P1 (Example 8): the probability-threshold predicate passes both —
	// it cannot tell 5 readings from 100.
	run("P1: PROB(temperature > 100) >= 0.5",
		"SELECT sensor_id FROM sensors WHERE PROB(temperature > 100) >= 0.5")

	// P2: comparing expectations directly also passes both (possible-world
	// filtering keeps each with probability > 0; shown via mean test
	// instead below).

	// Example 9: pTest with a 5% significance level admits only sensor 2.
	run("pTest(temperature > 100, τ=0.5, α=0.05)",
		"SELECT sensor_id FROM sensors WHERE PTEST(temperature > 100, 0.5, 0.05)")

	// Example 9's mTest: E(temperature) > 97 at 5% significance.
	run("mTest(temperature, '>', 97, α=0.05)",
		"SELECT sensor_id FROM sensors WHERE MTEST(temperature, '>', 97, 0.05)")

	// Coupled tests bound both error rates; UNSURE tuples can be kept and
	// flagged instead of dropped.
	q, err := eng.Compile("SELECT sensor_id FROM sensors WHERE MTEST(temperature, '>', 97, 0.05, 0.05)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, t := range []*asdb.Tuple{tupleX, tupleY} {
		results, err := q.Push(t)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			state := "TRUE"
			if r.Unsure {
				state = "UNSURE (keep collecting readings)"
			}
			fmt.Printf("coupled mTest: sensor %.0f -> %s\n",
				r.Tuple.Fields[0].Dist.Mean(), state)
		}
	}
}
