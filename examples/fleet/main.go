// Fleet: monitoring a vehicle fleet with grouped windows and stream joins.
//
// Two uncertain streams arrive continuously:
//
//	telemetry(vehicle_id, speed)   — speed distributions learned from GPS bursts
//	loads(vehicle_id, weight)      — cargo weight estimates from axle sensors
//
// The example runs three continuous queries at once:
//
//  1. per-vehicle rolling average speed (GROUP BY + count window),
//  2. fleet-wide average over the last 30 seconds (time window),
//  3. an accuracy-aware join: vehicles whose speed is significantly above
//     80 km/h *while* carrying a heavy load — the mTest keeps noisy,
//     under-sampled readings from triggering alerts.
package main

import (
	"fmt"
	"log"

	asdb "repro"
)

func main() {
	eng, err := asdb.NewEngine(asdb.Config{Method: asdb.AccuracyAnalytical, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	telemetry, err := asdb.NewSchema("telemetry",
		asdb.Column{Name: "vehicle_id"},
		asdb.Column{Name: "speed", Probabilistic: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	loads, err := asdb.NewSchema("loads",
		asdb.Column{Name: "vehicle_id"},
		asdb.Column{Name: "weight", Probabilistic: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []*asdb.Schema{telemetry, loads} {
		if err := eng.RegisterStream(s); err != nil {
			log.Fatal(err)
		}
	}

	perVehicle, err := eng.Compile(
		"SELECT vehicle_id, AVG(speed) FROM telemetry GROUP BY vehicle_id WINDOW 3 ROWS")
	if err != nil {
		log.Fatal(err)
	}
	fleetWide, err := eng.Compile(
		"SELECT AVG(speed) AS fleet_speed FROM telemetry WINDOW 30 SECONDS")
	if err != nil {
		log.Fatal(err)
	}
	alerts, err := eng.Compile(
		"SELECT telemetry.speed, loads.weight FROM telemetry JOIN loads ON vehicle_id = vehicle_id " +
			"WHERE MTEST(telemetry.speed, '>', 80, 0.05) AND loads.weight > 900 WINDOW 16 ROWS")
	if err != nil {
		log.Fatal(err)
	}

	rng := asdb.NewRand(3)
	// Per-vehicle true speeds; vehicle 3 speeds and is heavily loaded.
	speeds := map[int]float64{1: 62, 2: 75, 3: 95}
	weights := map[int]float64{1: 400, 2: 950, 3: 1000}

	makeSpeed := func(vid int, n int) *asdb.Tuple {
		truth, err := asdb.NewNormal(speeds[vid], 64)
		if err != nil {
			log.Fatal(err)
		}
		burst := asdb.NewSample(nil)
		for i := 0; i < n; i++ {
			burst.Add(truth.Sample(rng))
		}
		f, err := asdb.Learn(asdb.GaussianLearner{}, burst)
		if err != nil {
			log.Fatal(err)
		}
		t, err := eng.NewTuple("telemetry", []asdb.Field{asdb.Det(float64(vid)), f})
		if err != nil {
			log.Fatal(err)
		}
		return t
	}
	makeLoad := func(vid int) *asdb.Tuple {
		truth, err := asdb.NewNormal(weights[vid], 2500)
		if err != nil {
			log.Fatal(err)
		}
		f := asdb.Field{Dist: truth, N: 12}
		t, err := eng.NewTuple("loads", []asdb.Field{asdb.Det(float64(vid)), f})
		if err != nil {
			log.Fatal(err)
		}
		return t
	}

	fmt.Println("=== per-vehicle rolling averages (GROUP BY, 3-row windows) ===")
	clock := int64(0)
	for round := 0; round < 4; round++ {
		for vid := 1; vid <= 3; vid++ {
			clock += 2
			// Vehicle 1 reports rich bursts (n=30); vehicle 3 sparse (n=4).
			n := 30
			if vid == 3 {
				n = 4
			}
			tup := makeSpeed(vid, n)
			tup.Time = clock
			res, err := perVehicle.Push(tup)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range res {
				info := r.Fields["avg_speed"]
				fmt.Printf("  vehicle %.0f: avg speed %5.1f  90%% interval %v (n=%d)\n",
					r.Tuple.Fields[0].Dist.Mean(), r.Tuple.Fields[1].Dist.Mean(),
					info.Mean, info.N)
			}
			if _, err := fleetWide.Push(tup); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("\n=== fleet-wide 30-second average ===")
	tup := makeSpeed(2, 30)
	tup.Time = clock + 1
	res, err := fleetWide.Push(tup)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Printf("  fleet speed %5.1f  interval %v\n",
			r.Tuple.Fields[0].Dist.Mean(), r.Fields["fleet_speed"].Mean)
	}

	fmt.Println("\n=== speeding-while-loaded alerts (join + mTest) ===")
	for vid := 1; vid <= 3; vid++ {
		if _, err := alerts.Push(makeLoad(vid)); err != nil {
			log.Fatal(err)
		}
	}
	for vid := 1; vid <= 3; vid++ {
		res, err := alerts.Push(makeSpeed(vid, 25))
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range res {
			fmt.Printf("  ALERT: speed %5.1f (interval %v), weight %6.1f, P(match) = %.2f\n",
				r.Tuple.Fields[0].Dist.Mean(), r.Fields["telemetry.speed"].Mean,
				r.Tuple.Fields[1].Dist.Mean(), r.Tuple.Prob)
		}
	}
	st := alerts.Stats()
	fmt.Printf("  (join stats: %d pushes, %d matches, %d alerts, %d dropped)\n",
		st.In, st.Joined, st.Out, st.Dropped)
}
