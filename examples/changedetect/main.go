// Changedetect: streaming distribution-change detection.
//
// Raw delay readings for a road arrive one at a time. A streaming learner
// (asdb.LearnOp) continuously re-learns the road's delay distribution from
// a sliding raw window; a reference snapshot is kept, and each fresh
// distribution is compared against it with the Kolmogorov–Smirnov
// significance test. When an accident shifts the delay profile, the KS test
// raises the alarm — and thanks to the retained sample sizes it does not
// false-alarm on the noisy early estimates.
package main

import (
	"fmt"
	"log"

	asdb "repro"
)

func main() {
	rng := asdb.NewRand(5)
	normal, err := asdb.NewLognormal(3.4, 0.2) // ~30s typical delay
	if err != nil {
		log.Fatal(err)
	}
	jammed, err := asdb.NewLognormal(4.1, 0.3) // accident: ~60s, fatter tail
	if err != nil {
		log.Fatal(err)
	}

	rawSchema, err := asdb.NewSchema("raw",
		asdb.Column{Name: "road_id"},
		asdb.Column{Name: "delay"},
	)
	if err != nil {
		log.Fatal(err)
	}
	learner, err := asdb.NewLearnOp(rawSchema, "road_id", "delay", 60)
	if err != nil {
		log.Fatal(err)
	}
	learner.MinSamples = 10

	var reference asdb.Field
	haveRef := false
	alarmAt := -1

	const accidentAt = 120
	for i := 0; i < 240; i++ {
		src := normal
		if i >= accidentAt {
			src = jammed
		}
		tup, err := asdb.NewTuple(rawSchema, []asdb.Field{
			asdb.Det(19), asdb.Det(src.Sample(rng)),
		})
		if err != nil {
			log.Fatal(err)
		}
		tup.Time = int64(i)
		out, err := learner.Process(tup)
		if err != nil {
			log.Fatal(err)
		}
		for _, learned := range out {
			f := learned.Fields[1]
			if !haveRef {
				// Snapshot the first full-window distribution as the
				// reference profile.
				if f.N >= 60 {
					reference = f
					haveRef = true
					fmt.Printf("t=%3d  reference profile locked: %v (n=%d)\n", i, f.Dist, f.N)
				}
				continue
			}
			reject, d, p, err := asdb.KSTest(reference.Dist, reference.N, f.Dist, f.N, 0.01)
			if err != nil {
				log.Fatal(err)
			}
			if i%30 == 0 {
				fmt.Printf("t=%3d  D=%.3f  p=%.4f  mean=%.1fs\n", i, d, p, f.Dist.Mean())
			}
			if reject && alarmAt < 0 {
				alarmAt = i
				fmt.Printf("t=%3d  *** CHANGE DETECTED *** D=%.3f p=%.5f mean %.1fs (reference %.1fs)\n",
					i, d, p, f.Dist.Mean(), reference.Dist.Mean())
			}
		}
	}
	if alarmAt < 0 {
		fmt.Println("no change detected (unexpected)")
		return
	}
	fmt.Printf("\naccident injected at t=%d, detected at t=%d (lag %d readings)\n",
		accidentAt, alarmAt, alarmAt-accidentAt)
	fmt.Println("no alarms before the accident: sample-size-aware testing suppresses noise")
}
