GO ?= go

.PHONY: tier1 build test vet race bench clean

# tier1 is the gate every change must pass: vet, build, and the full test
# suite under the race detector.
tier1: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the accuracy-kernel benchmarks (the Fig 5(c) throughput
# pipelines and the BOOTSTRAP-ACCURACY-INFO microbench) with allocation
# stats and records the run, plus the environment it ran on, in
# BENCH_1.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig5c|BenchmarkBootstrapAccuracyInfo' \
		-benchmem -count 1 . | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_1.json \
		-notes "Pre-change baseline (same host): Fig5cBootstrap 30045 ns/op, 44581 B/op, 21 allocs/op; BootstrapAccuracyInfo 1124 ns/op, 752 B/op, 5 allocs/op. This container exposes a single CPU (GOMAXPROCS=1), so the parallel speedup of the worker pool is not measurable here; determinism across worker counts is asserted by tests instead (internal/bootstrap/parallel_test.go)."
	rm -f bench.out

clean:
	rm -f bench.out
