GO ?= go

.PHONY: tier1 build test vet race bench bench2 clean

# tier1 is the gate every change must pass: vet, build, and the full test
# suite under the race detector.
tier1: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the accuracy-kernel benchmarks (the Fig 5(c) throughput
# pipelines and the BOOTSTRAP-ACCURACY-INFO microbench) with allocation
# stats and records the run, plus the environment it ran on, in
# BENCH_1.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig5c|BenchmarkBootstrapAccuracyInfo' \
		-benchmem -count 1 . | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_1.json \
		-notes "Pre-change baseline (same host): Fig5cBootstrap 30045 ns/op, 44581 B/op, 21 allocs/op; BootstrapAccuracyInfo 1124 ns/op, 752 B/op, 5 allocs/op. This container exposes a single CPU (GOMAXPROCS=1), so the parallel speedup of the worker pool is not measurable here; determinism across worker counts is asserted by tests instead (internal/bootstrap/parallel_test.go)."
	rm -f bench.out

# bench2 runs the durability benchmarks (WAL append under each fsync
# policy, raw WAL replay, and end-to-end crash-recovery replay through the
# server) and records the run in BENCH_2.json.
bench2:
	$(GO) test -run '^$$' -bench 'BenchmarkWALAppend|BenchmarkWALReplay' \
		-benchmem -count 1 ./internal/wal/ | tee bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkRecoveryReplay' \
		-benchmem -count 1 ./internal/server/ | tee -a bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_2.json \
		-notes "Durability subsystem benchmarks. WAL appends are ~53-byte INSERT payloads; always-fsync pays one fdatasync per append, interval/none amortize it. WALReplay is raw frame scan + CRC32C verification (SetBytes counts framed bytes). RecoveryReplay is full NewDurable boot: open WAL, replay N journaled inserts through a 3-row AVG window query with bootstrap accuracy - engine work, not I/O, dominates."
	rm -f bench.out

clean:
	rm -f bench.out
