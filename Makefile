GO ?= go

.PHONY: tier1 build test vet race bench bench2 bench3 bench4 bench5 bench6 bench7 bench8 bench9 bench10 chaos fuzz sketch-conformance clean

# tier1 is the gate every change must pass: vet, build, and the full test
# suite under the race detector.
tier1: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the accuracy-kernel benchmarks (the Fig 5(c) throughput
# pipelines and the BOOTSTRAP-ACCURACY-INFO microbench) with allocation
# stats and records the run, plus the environment it ran on, in
# BENCH_1.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig5c|BenchmarkBootstrapAccuracyInfo' \
		-benchmem -count 1 . | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_1.json \
		-notes "Pre-change baseline (same host): Fig5cBootstrap 30045 ns/op, 44581 B/op, 21 allocs/op; BootstrapAccuracyInfo 1124 ns/op, 752 B/op, 5 allocs/op. This container exposes a single CPU (GOMAXPROCS=1), so the parallel speedup of the worker pool is not measurable here; determinism across worker counts is asserted by tests instead (internal/bootstrap/parallel_test.go)."
	rm -f bench.out

# bench2 runs the durability benchmarks (WAL append under each fsync
# policy, raw WAL replay, and end-to-end crash-recovery replay through the
# server) and records the run in BENCH_2.json.
bench2:
	$(GO) test -run '^$$' -bench 'BenchmarkWALAppend|BenchmarkWALReplay' \
		-benchmem -count 1 ./internal/wal/ | tee bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkRecoveryReplay' \
		-benchmem -count 1 ./internal/server/ | tee -a bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_2.json \
		-notes "Durability subsystem benchmarks. WAL appends are ~53-byte INSERT payloads; always-fsync pays one fdatasync per append, interval/none amortize it. WALReplay is raw frame scan + CRC32C verification (SetBytes counts framed bytes). RecoveryReplay is full NewDurable boot: open WAL, replay N journaled inserts through a 3-row AVG window query with bootstrap accuracy - engine work, not I/O, dominates."
	rm -f bench.out

# bench3 reruns the accuracy-kernel benchmarks with the observability layer
# in place (quantifying instrumentation overhead against BENCH_1.json) and
# adds the metrics-registry microbenchmarks, recording both in BENCH_3.json.
bench3:
	$(GO) test -run '^$$' -bench 'BenchmarkFig5c|BenchmarkBootstrapAccuracyInfo' \
		-benchmem -count 1 . | tee bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkCounter|BenchmarkGauge|BenchmarkHistogram|BenchmarkRegistrySnapshot' \
		-benchmem -count 1 ./internal/metrics/ | tee -a bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_3.json \
		-notes "Instrumented rerun of the BENCH_1 accuracy-kernel benchmarks plus metrics-registry microbenchmarks. BENCH_1 baseline (same host): Fig5cBootstrap 24000 ns/op, Fig5cAnalytical 17198 ns/op, Fig5cQPOnly 13087 ns/op, BootstrapAccuracyInfo 1196 ns/op. Measured instrumentation overhead is within run-to-run noise (every instrumented series came in at or below baseline: -6.8%..-0.1%), comfortably inside the 5% budget: the observability layer adds one timer pair and a few atomic adds per kernel call and per query push. The registry microbenchmarks bound the per-event cost (counter inc ~6 ns, histogram observe ~21 ns, timer observe ~63 ns, all 0 allocs/op)."
	rm -f bench.out

# bench4 measures multi-client ingest throughput on a durable fsync=always
# server: four concurrent clients on four distinct streams, single-tuple
# INSERTs (the serialized baseline: one round trip + WAL frame + fsync per
# tuple) versus 32-tuple INSERTBATCH frames (batched + sharded path: one
# round trip, one WAL frame, one group-commit fsync per batch). Records the
# run in BENCH_4.json.
bench4:
	$(GO) test -run '^$$' -bench 'BenchmarkMultiClientIngest' \
		-benchmem -count 1 ./internal/server/ | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_4.json \
		-notes "Multi-client durable ingest, 4 clients x 4 streams, fsync=always, each stream feeding an AVG WINDOW 8 ROWS query. ns/op is per tuple end-to-end (client write -> engine push -> WAL commit -> fsync -> OK). Measured on this host: serialized single INSERTs 143598 ns/op vs 32-tuple INSERTBATCH 24649 ns/op - 5.8x throughput, from amortizing the round trip, the WAL frame, and the group-commit fsync over 32 tuples. This container exposes a single CPU (GOMAXPROCS=1), so shard-lock parallelism contributes no additional speedup here; cross-worker determinism and shard-contention behavior are asserted by tests instead (internal/core/race_test.go, internal/server/batch_ingest_test.go)."
	rm -f bench.out

# bench5 measures accuracy-aware load shedding under overload: a bootstrap
# server with an 800-resample budget is driven flat out, with the shed
# controller off vs on (5ms interval, 200us p99 target). Records the run in
# BENCH_5.json.
bench5:
	$(GO) test -run '^$$' -bench 'BenchmarkOverloadShed' \
		-benchmem -count 1 ./internal/server/ | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_5.json \
		-notes "Accuracy-aware load shedding under sustained overload (bootstrap accuracy, 800 resamples/push, controller target p99=200us). Measured on this host: shed=off 571828 ns/op with push p99 2500us (12x past target); shed=on 84189 ns/op with push p99 bounded at 500us and degrade level 3 reached - 6.8x throughput from halving the resample budget per level. Degraded output stays honest: intervals switch to Method bootstrap-shed and widen monotonically with level (TestShedWidensIntervals), no tuple or query is ever dropped, and the level returns to 0 after load stops (TestShedControllerDegradesAndRecovers). Every transition is WAL-journaled so recovery replays the same budget schedule (TestChaosShedLevelJournaled)."
	rm -f bench.out

# bench6 measures the columnar-window + render-once serving path: the Fig
# 5(c) pipeline under both window layouts, the raw window AVG scan at 1000
# and 100k rows, and one-result delivery to 16 subscribers. Records the run
# in BENCH_6.json.
bench6:
	$(GO) test -run '^$$' -bench 'BenchmarkFig5c(QPOnly|Analytical|Bootstrap)' \
		-benchmem -count 1 . | tee bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkWindowScan' \
		-benchmem -count 1 ./internal/stream/ | tee -a bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkFanout16' \
		-benchmem -count 1 ./internal/server/ | tee -a bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_6.json \
		-notes "Columnar window storage + render-once zero-copy serving. Fig5c* run the full learn+push pipeline on the default columnar layout; Fig5c*Row force the legacy row (*Tuple ring) layout on the same pipeline - measured on this host: QPOnly 15237->2852 ns/op (5.3x), Analytical 19456->6977 (2.8x), Bootstrap 24250->12293 (2.0x, vs BENCH_3 baseline Fig5cBootstrap 24000). WindowScan isolates the window-1000/window-100k AVG closed-form scan: row gathers *Tuple fields then sums, col scans two contiguous float64 segments - 10758->2619 ns/op at 1000 (4.1x), 1435636->197712 at 100k (7.3x, the row path's 23 KiB/op of gather allocations drop to a flat 16 B). Fanout16 delivers one query result to 16 subscribers: legacy pays per-recipient json.Marshal(EncodeResult) (108379 ns/op, 50696 B/op, 400 allocs/op), renderonce renders once into a pooled refcounted frame and fans the same bytes out (1725 ns/op, 0 B/op, 0 allocs/op, 63x). Byte-identity of the new render path is pinned by TestRenderMatchesJSON and the golden transcripts (TestGoldenSession vs TestGoldenSessionRowEngine share one golden file)."
	rm -f bench.out

# bench7 measures the replication + cluster-routing serving paths: STATS
# round-trips against the primary vs fanned out across two caught-up
# replicas, and INSERTBATCH ingest across a 1-node vs 4-node sharded
# cluster. Records the run in BENCH_7.json.
bench7:
	$(GO) test -run '^$$' -bench 'BenchmarkReadFanout|BenchmarkRoutedIngest' \
		-benchmem -count 1 ./internal/cluster/ | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_7.json \
		-notes "Replication read fan-out + stream-sharded routed ingest. ReadFanout: 8 concurrent connections doing STATS round-trips against a durable primary vs round-robined across two caught-up in-memory replicas - measured on this host: primary 10455 ns/op vs replicas 9820 ns/op (6% faster), i.e. a replica serves engine reads at parity with the primary (replication adds no read-path overhead), which is the per-node basis for linear read scaling: each added replica contributes one full node of read capacity. RoutedIngest: 4-row INSERTBATCH frames against 1 primary (all writers on one stream/lock) vs 4 rendezvous-sharded primaries (one stream each) - 14187 ns/op vs 16130 ns/op, parity within run-to-run noise. This container exposes a single CPU (GOMAXPROCS=1) and all nodes are processes on the same host, so cross-node parallelism cannot show as wall-clock speedup here; the benchmark pins per-op parity of the replicated/sharded paths, and cross-node correctness (byte-identical DATA at workers 1 vs 8 under chaos, exactly-once routed retries across failover) is asserted by internal/cluster tests instead."
	rm -f bench.out

# bench8 measures the sketch accuracy backend against the exact backends
# through the engine push path: steady-state per-tuple cost on a full,
# emitting window at 1k/100k/1M rows, and the live heap a 1M-tuple window
# pins (retained_bytes/op). Records the run in BENCH_8.json.
bench8:
	$(GO) test -run '^$$' -bench 'BenchmarkSketchPushSteady|BenchmarkExactPushSteady|BenchmarkBootstrapPushSteady' \
		-benchmem -count 1 ./internal/core/ | tee bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkWindowAbsorb1M' \
		-benchmem -benchtime 2x -count 1 ./internal/core/ | tee -a bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_8.json \
		-notes "Sketch accuracy backend (BACKEND SKETCH) vs exact backends through the engine push path. PushSteady is the per-tuple cost on a full, emitting window - measured on this host: the exact closed-form backend rescans O(window) per emission (11939 ns/op at window 1000, 548383 at 100k; bootstrap 27107 at 1000 with the default resample budget), while the sketch backend merges 16 block summaries only on block-seal pushes, so per-tuple cost falls as blocks grow (4757 ns/op at 1000, 767 at 100k, 653 at 1M - a window size the exact backends cannot serve at streaming rates). WindowAbsorb1M ingests 1M tuples from cold: retained_bytes/op (printed in the bench output; the parser keeps ns/op and B/op) is the live heap pinned by the full window after GC - exact columnar 82.1 MB (every row materialized, already past the 64 MiB budget), sketch 0.92 MB (16 Welford/Chan block moment summaries + one K=256 deterministic quantile sketch), an 89x reduction; B/op is dominated by per-tuple construction in both backends. The accuracy side of the trade is pinned by conformance tests rather than benchmarked: sketch mean/variance interval coverage at 90/95/99% matches nominal within binomial 3-sigma over 4000 trials (the moment sketch tracks the exact sample moments), quantile intervals stay conservative under the deterministic rank-error widening, and shard-merged sketches calibrate identically (internal/accuracy/calibration_sketch_test.go, internal/sketch). This container exposes a single CPU (GOMAXPROCS=1); worker-count independence of sketch emission is asserted by tests instead (internal/core/sketch_backend_test.go, internal/server/sketch_crash_test.go, internal/cluster/sketch_replica_test.go)."
	rm -f bench.out

# bench9 measures the multi-query planner: 1000 identical windowed queries
# with shared per-(stream, field, window) state vs the same fleet evaluated
# independently, vs the single-query floor, plus the Fig 5(c) single-query
# parity check. Records the run in BENCH_9.json. The independent baseline
# pays a full O(window) scan per query per tuple (~0.5 s/op at window
# 131072), so it runs a small fixed iteration count.
bench9:
	$(GO) test -run '^$$' -bench 'BenchmarkPlanner(1kShared|SingleQuery)$$' \
		-benchmem -benchtime 50x -count 1 ./internal/core/ | tee bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkPlanner1kIndependent$$' \
		-benchmem -benchtime 3x -count 1 ./internal/core/ | tee -a bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkFig5c(QPOnly|Analytical|Bootstrap)$$' \
		-benchmem -count 1 . | tee -a bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_9.json \
		-notes "Multi-query planner: 1000 identical 'SELECT AVG(val) WINDOW 131072 ROWS' queries through the engine push path, steady state on a full, emitting window. Measured on this host: shared planner state 858620 ns/op per tuple for the whole 1000-query fleet vs 436468 ns/op for a single query - the fleet costs 1.97x one query's learning work (the window push and the closed-form moment scan run once per tuple; each extra member pays only an emission replay of ~420 ns), meeting the within-~2x target. The same fleet with the planner disabled (NoSharedState) pays the full O(window) scan per query per tuple: 546468956 ns/op, so shared state is a 636x speedup at this fan-out. Fig5c re-run confirms no single-query regression from the planner pass: QPOnly 2892 ns/op, Analytical 6894, Bootstrap 12096 vs the BENCH_4 baselines 2852/6977/12293 - parity within ~2% run-to-run noise. Byte-identity of shared-state DATA vs unshared, at workers 1 vs 8, across checkpoint+WAL crash recovery, and on replicas is asserted by tests (internal/core/plan_shared_test.go, internal/server/plan_crash_test.go, internal/cluster/plan_replica_test.go) rather than benchmarked. This container exposes a single CPU (GOMAXPROCS=1)."
	rm -f bench.out

# bench10 measures automatic failover time-to-recovery: from the instant
# the primary dies (heartbeats stop - the start of detection) to the first
# write accepted by the automatically promoted successor, with
# SuspectAfter=50ms and ProbeEvery=2ms. Records the run in BENCH_10.json.
bench10:
	$(GO) test -run '^$$' -bench 'BenchmarkFailoverRecovery' \
		-benchtime 10x -count 1 ./internal/cluster/ | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_10.json \
		-notes "Automatic failover time-to-recovery (detection -> first accepted write). Each iteration boots a fresh durable primary + durable follower pair (fsync=none, same host), kills the primary's server and ship listener, and hammers the follower with INSERTs until one is accepted; the FailoverManager must notice the silence (SuspectAfter=50ms, ProbeEvery=2ms, rank 0), journal the epoch bump, flip writable, and serve the write. Measured on this host: ~61 ms/op - the 50 ms detection window plus ~11 ms of probe quantization, epoch journaling, and the first write round-trip, i.e. recovery cost is dominated by the configured detection window, not by promotion mechanics. Safety properties of the same path (exactly-once retries across failover, stale-epoch fencing of the revived primary, diverged-suffix truncation on rejoin, byte-identical convergence at workers 1 vs 8) are asserted by internal/cluster chaos tests rather than benchmarked. This container exposes a single CPU (GOMAXPROCS=1)."
	rm -f bench.out

# sketch-conformance runs the statistical conformance suites for the sketch
# backend under the race detector: interval-coverage calibration, merge
# property tests, quantile edge cases, and the end-to-end backend tests.
sketch-conformance:
	$(GO) test -race -count 1 ./internal/sketch/
	$(GO) test -race -count 1 -run 'TestSketch|TestQuantile' ./internal/accuracy/
	$(GO) test -race -count 1 -run 'Sketch' ./internal/core/ ./internal/checkpoint/ ./internal/cluster/
	$(GO) test -race -count 1 -run 'TestSketchCrash|TestGoldenSketch|TestParseBackend' ./internal/server/ ./internal/sql/

# chaos replays the seeded deterministic fault schedules (injected fsync
# failures, ENOSPC, torn writes, torn connections, panics) against the full
# server under the race detector.
chaos:
	$(GO) test -race -count 1 -run 'TestChaos|TestMaxConns|TestIdleTimeout|TestConnPanic|TestSlowClient|TestAcceptTransient|TestTornRequest|TestShed|TestSplitReqID|TestDedupWindow|TestClientBackoff' \
		./internal/server/
	$(GO) test -race -count 1 ./internal/fault/
	$(GO) test -race -count 1 -run 'TestFsyncFailureWedges|TestTornWriteRecovers|TestBatchFsyncFailureNoPartialAck' ./internal/wal/
	$(GO) test -race -count 1 -run 'TestSaveFsyncFailureKeepsPrevious|TestSaveENOSPCTornTemp|TestDegradeRoundTrip' ./internal/checkpoint/
	$(GO) test -race -count 1 ./internal/cluster/

# fuzz smoke-runs every native fuzz target (go test -fuzz accepts a single
# target per invocation, so the targets loop). FUZZTIME bounds each target.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/sql/
	$(GO) test -run '^$$' -fuzz '^FuzzParseFieldSpec$$' -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz '^FuzzParseStreamDef$$' -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz '^FuzzProtocolDispatch$$' -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz '^FuzzSketchRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/sketch/
	$(GO) test -run '^$$' -fuzz '^FuzzSketchMerge$$' -fuzztime $(FUZZTIME) ./internal/sketch/

clean:
	rm -f bench.out
