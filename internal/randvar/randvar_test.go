package randvar

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func normField(t *testing.T, mu, s2 float64, n int) Field {
	t.Helper()
	d, err := dist.NewNormal(mu, s2)
	if err != nil {
		t.Fatal(err)
	}
	return Field{Dist: d, N: n}
}

func TestDetField(t *testing.T) {
	f := Det(4.5)
	if !f.IsDet() {
		t.Error("Det field not recognized as deterministic")
	}
	if err := f.Validate(); err != nil {
		t.Error(err)
	}
	if (Field{}).Validate() == nil {
		t.Error("nil distribution: want error")
	}
	if (Field{Dist: dist.Point{V: 1}, N: -1}).Validate() == nil {
		t.Error("negative N: want error")
	}
}

func TestDFSampleSize(t *testing.T) {
	// Example 4: sizes 15 and 10 → 10; deterministic inputs don't count.
	a := normField(t, 0, 1, 15)
	b := normField(t, 0, 1, 10)
	if n := DFSampleSize(a, b); n != 10 {
		t.Errorf("d.f. size = %d, want 10", n)
	}
	if n := DFSampleSize(a, Det(3)); n != 15 {
		t.Errorf("d.f. size with det = %d, want 15", n)
	}
	if n := DFSampleSize(Det(1), Det(2)); n != 0 {
		t.Errorf("all-det d.f. size = %d, want 0", n)
	}
}

func TestApplyAllDeterministic(t *testing.T) {
	e := NewEvaluator(dist.NewRand(1))
	res, err := e.Apply(func(a []float64) (float64, error) {
		return (a[0] + a[1]) / 2, nil
	}, Det(10), Det(20))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Field.IsDet() {
		t.Error("det inputs must give det output")
	}
	approx(t, "det apply", res.Field.Dist.Mean(), 15, 1e-12)
	if res.Values != nil {
		t.Error("det path must not produce a value sequence")
	}
}

func TestApplyMonteCarlo(t *testing.T) {
	e := NewEvaluator(dist.NewRand(42))
	a := normField(t, 10, 4, 15)
	b := normField(t, 20, 9, 10)
	// (A+B)/2 — Example 4's expression.
	res, err := e.Apply(func(v []float64) (float64, error) {
		return (v[0] + v[1]) / 2, nil
	}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Field.N != 10 {
		t.Errorf("output d.f. size = %d, want 10", res.Field.N)
	}
	if len(res.Values) < 900 {
		t.Errorf("value sequence length %d, want ≈1000", len(res.Values))
	}
	approx(t, "MC mean", res.Field.Dist.Mean(), 15, 0.3)
	// Var((A+B)/2) = (4+9)/4 = 3.25.
	approx(t, "MC variance", res.Field.Dist.Variance(), 3.25, 0.8)
}

func TestApplyValidation(t *testing.T) {
	e := NewEvaluator(dist.NewRand(1))
	if _, err := e.Apply(nil, Det(1)); err == nil {
		t.Error("nil func: want error")
	}
	if _, err := e.Apply(func(a []float64) (float64, error) { return 0, nil }); err == nil {
		t.Error("no fields: want error")
	}
	if _, err := e.Apply(func(a []float64) (float64, error) { return 0, nil }, Field{}); err == nil {
		t.Error("invalid field: want error")
	}
	// A function erroring propagates.
	wantErr := errors.New("boom")
	_, err := e.Apply(func(a []float64) (float64, error) { return 0, wantErr }, Det(1), normField(t, 0, 1, 5))
	if !errors.Is(err, wantErr) {
		t.Errorf("got %v, want boom", err)
	}
}

func TestApplySkipsNonFinite(t *testing.T) {
	e := NewEvaluator(dist.NewRand(3))
	a := normField(t, 0, 1, 20)
	res, err := e.Apply(func(v []float64) (float64, error) {
		if v[0] < 0 {
			return math.NaN(), nil // half the draws are dropped
		}
		return v[0], nil
	}, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range res.Values {
		if x < 0 || math.IsNaN(x) {
			t.Fatal("non-finite or dropped value leaked into sequence")
		}
	}
	if len(res.Values) < 300 || len(res.Values) > 700 {
		t.Errorf("kept %d values, want ≈500", len(res.Values))
	}
	// All values dropped → error.
	if _, err := e.Apply(func([]float64) (float64, error) {
		return math.Inf(1), nil
	}, a); err == nil {
		t.Error("all-inf expression: want error")
	}
}

func TestLinearGaussianClosedForm(t *testing.T) {
	a := normField(t, 10, 4, 15)
	b := normField(t, 20, 9, 10)
	// 0.5A + 0.5B + 1.
	f, ok, err := LinearGaussian([]float64{0.5, 0.5}, 1, a, b)
	if err != nil || !ok {
		t.Fatalf("closed form failed: %v, ok=%v", err, ok)
	}
	nd, isNorm := f.Dist.(dist.Normal)
	if !isNorm {
		t.Fatalf("result %T, want Normal", f.Dist)
	}
	approx(t, "closed-form mean", nd.Mu, 16, 1e-12)
	approx(t, "closed-form var", nd.Sigma2, 0.25*4+0.25*9, 1e-12)
	if f.N != 10 {
		t.Errorf("d.f. size = %d, want 10", f.N)
	}
}

func TestLinearGaussianFallsBack(t *testing.T) {
	h, err := dist.HistogramFromCounts([]float64{0, 1, 2}, []int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := LinearGaussian([]float64{1}, 0, Field{Dist: h, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("histogram input must not take the Gaussian closed form")
	}
	if _, _, err := LinearGaussian([]float64{1, 2}, 0, Det(1)); err == nil {
		t.Error("weight/field length mismatch: want error")
	}
}

func TestLinearGaussianDegenerate(t *testing.T) {
	// Points only → point result.
	f, ok, err := LinearGaussian([]float64{2, 3}, 1, Det(1), Det(2))
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if !f.IsDet() {
		t.Error("all-point closed form should be deterministic")
	}
	approx(t, "point result", f.Dist.Mean(), 2*1+3*2+1, 1e-12)
}

func TestBinaryGaussianFastPath(t *testing.T) {
	e := NewEvaluator(dist.NewRand(1))
	a := normField(t, 5, 1, 20)
	b := normField(t, 3, 4, 30)
	res, err := e.Binary(Sub, a, b)
	if err != nil {
		t.Fatal(err)
	}
	nd, ok := res.Field.Dist.(dist.Normal)
	if !ok {
		t.Fatalf("Gaussian A−B should stay Gaussian, got %T", res.Field.Dist)
	}
	approx(t, "A−B mean", nd.Mu, 2, 1e-12)
	approx(t, "A−B var", nd.Sigma2, 5, 1e-12)
	if res.Values != nil {
		t.Error("closed-form path must not emit values")
	}
	if res.Field.N != 20 {
		t.Errorf("d.f. size = %d, want 20", res.Field.N)
	}
}

func TestBinaryMonteCarloOps(t *testing.T) {
	e := NewEvaluator(dist.NewRand(9))
	a := normField(t, 4, 0.25, 20)
	b := normField(t, 2, 0.25, 20)
	cases := []struct {
		op   BinaryOp
		want float64
		tol  float64
	}{
		{Add, 6, 0.1},
		{Sub, 2, 0.1},
		{Mul, 8, 0.3},
		{Div, 2, 0.3},
	}
	for _, c := range cases {
		res, err := e.Binary(c.op, a, b)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		approx(t, "binary "+c.op.String(), res.Field.Dist.Mean(), c.want, c.tol)
	}
	if _, err := e.Binary(BinaryOp(9), a, b); err == nil {
		t.Error("unknown op: want error")
	}
}

func TestDivisionByZeroDraws(t *testing.T) {
	e := NewEvaluator(dist.NewRand(2))
	a := normField(t, 1, 0.01, 20)
	zeroish := Det(0)
	// X / 0 produces only NaN draws → error, not a crash.
	if _, err := e.Binary(Div, a, zeroish); err == nil {
		t.Error("division by exact zero: want error")
	}
}

func TestSqrtAbsAndSquare(t *testing.T) {
	e := NewEvaluator(dist.NewRand(5))
	a := normField(t, 0, 1, 20)
	res, err := e.SqrtAbs(a)
	if err != nil {
		t.Fatal(err)
	}
	// E[sqrt(|Z|)] ≈ 0.822 for standard normal.
	approx(t, "sqrt-abs mean", res.Field.Dist.Mean(), 0.822, 0.1)

	sq, err := e.Square(a)
	if err != nil {
		t.Fatal(err)
	}
	// E[Z²] = 1.
	approx(t, "square mean", sq.Field.Dist.Mean(), 1, 0.15)
}

func TestProbGreater(t *testing.T) {
	f := normField(t, 0, 1, 25)
	p, n, err := ProbGreater(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "P(X>0)", p, 0.5, 1e-12)
	if n != 25 {
		t.Errorf("n = %d, want 25", n)
	}
	if _, _, err := ProbGreater(Field{}, 0); err == nil {
		t.Error("invalid field: want error")
	}
}
