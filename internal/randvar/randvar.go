// Package randvar implements arithmetic over random variables — the
// machinery behind query expressions such as (A+B)/2 or SQRT(ABS(A−B))
// over distribution-valued fields (paper §II-C, §V-C).
//
// A Field couples a probability distribution with the sample size it was
// learned from; the de facto sample size of any derived variable follows
// Lemma 3 (the minimum of the input sizes, with deterministic inputs not
// constraining the minimum).
//
// Two evaluation paths exist, mirroring §III-B's two query-processing
// categories:
//
//   - Closed form: sums/differences/scalings of independent Gaussians stay
//     Gaussian; point values fold arithmetically. Used when every input is
//     exactly representable.
//   - Monte Carlo: the general path. Inputs are sampled, the expression is
//     applied per draw, and the output is both a value sequence (ready for
//     BOOTSTRAP-ACCURACY-INFO) and a histogram distribution learned from
//     it.
package randvar

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/learn"
)

// Field is a random-variable-valued field: a distribution plus the sample
// size behind it. N = 0 marks an exact (deterministic) value that does not
// constrain the d.f. sample size of derived variables.
type Field struct {
	Dist dist.Distribution
	N    int
}

// Det returns a deterministic field holding v.
func Det(v float64) Field {
	return Field{Dist: dist.Point{V: v}, N: 0}
}

// IsDet reports whether the field is an exact value.
func (f Field) IsDet() bool {
	_, ok := f.Dist.(dist.Point)
	return ok && f.N == 0
}

// Validate reports structural problems with the field.
func (f Field) Validate() error {
	if f.Dist == nil {
		return errors.New("randvar: field with nil distribution")
	}
	if f.N < 0 {
		return fmt.Errorf("randvar: negative sample size %d", f.N)
	}
	return nil
}

// DFSampleSize applies Lemma 3 across the fields: the minimum sample size
// among non-deterministic inputs, or 0 when every input is deterministic.
func DFSampleSize(fields ...Field) int {
	n := 0
	for _, f := range fields {
		if f.N == 0 {
			continue
		}
		if n == 0 || f.N < n {
			n = f.N
		}
	}
	return n
}

// DefaultMonteCarloValues is the value-sequence length m the Monte Carlo
// path generates when the caller does not specify one. With typical d.f.
// sample sizes of 10–100, this yields tens of d.f. resamples for
// BOOTSTRAP-ACCURACY-INFO.
const DefaultMonteCarloValues = 1000

// DefaultHistogramBins is the bucket count for result distributions learned
// from Monte Carlo value sequences.
const DefaultHistogramBins = 20

// Evaluator evaluates expressions over fields. It owns an RNG (Monte Carlo
// path) and configuration for the result representation. Not safe for
// concurrent use; give each stream/worker its own.
type Evaluator struct {
	rng *dist.Rand
	// Values is the Monte Carlo sequence length m.
	Values int
	// Bins is the bucket count of learned result histograms.
	Bins int
}

// NewEvaluator returns an evaluator drawing from rng.
func NewEvaluator(rng *dist.Rand) *Evaluator {
	return &Evaluator{rng: rng, Values: DefaultMonteCarloValues, Bins: DefaultHistogramBins}
}

// RNG exposes the evaluator's generator so its state can be checkpointed
// and restored (the durability layer's determinism guarantee depends on
// resuming Monte Carlo streams mid-sequence).
func (e *Evaluator) RNG() *dist.Rand { return e.rng }

// Result is the outcome of evaluating an expression: the output field
// (distribution + d.f. sample size) and, when the Monte Carlo path ran, the
// raw value sequence for bootstrap accuracy.
type Result struct {
	Field Field
	// Values is the Monte Carlo value sequence (nil on the closed-form
	// path). Its length is the m fed to BOOTSTRAP-ACCURACY-INFO.
	Values []float64
}

// Func is a scalar function applied pointwise to one draw of each input.
type Func func(args []float64) (float64, error)

// Apply evaluates y = f(X₁, …, X_d) over the input fields.
//
// If every input is deterministic, f is applied once and the result is
// deterministic. Otherwise the Monte Carlo path draws e.Values joint
// samples (inputs are treated as independent, per Definition 2), applies f
// to each, learns a histogram distribution from the outputs, and returns
// the value sequence alongside. The output d.f. sample size follows
// Lemma 3.
func (e *Evaluator) Apply(f Func, fields ...Field) (Result, error) {
	if f == nil {
		return Result{}, errors.New("randvar: nil function")
	}
	if len(fields) == 0 {
		return Result{}, errors.New("randvar: no input fields")
	}
	args := make([]float64, len(fields))
	allDet := true
	for _, fl := range fields {
		if err := fl.Validate(); err != nil {
			return Result{}, err
		}
		if !fl.IsDet() {
			allDet = false
		}
	}
	if allDet {
		for i, fl := range fields {
			args[i] = fl.Dist.Mean()
		}
		v, err := f(args)
		if err != nil {
			return Result{}, err
		}
		return Result{Field: Det(v)}, nil
	}
	m := e.Values
	if m < 2 {
		m = DefaultMonteCarloValues
	}
	values := make([]float64, 0, m)
	for k := 0; k < m; k++ {
		for i, fl := range fields {
			args[i] = fl.Dist.Sample(e.rng)
		}
		v, err := f(args)
		if err != nil {
			return Result{}, err
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// Domain failures of f (e.g. division by a draw near 0)
			// are skipped rather than poisoning the sequence.
			continue
		}
		values = append(values, v)
	}
	if len(values) < 2 {
		return Result{}, errors.New("randvar: expression produced fewer than 2 finite values")
	}
	outDist, err := learn.NewHistogramLearner(e.Bins).Learn(learn.NewSample(values))
	if err != nil {
		return Result{}, err
	}
	n := DFSampleSize(fields...)
	return Result{
		Field:  Field{Dist: outDist, N: n},
		Values: values,
	}, nil
}

// --- Closed-form Gaussian arithmetic ---

// gaussianOf extracts (μ, σ²) when the field is Gaussian or a point.
func gaussianOf(f Field) (mu, sigma2 float64, ok bool) {
	switch d := f.Dist.(type) {
	case dist.Normal:
		return d.Mu, d.Sigma2, true
	case dist.Point:
		return d.V, 0, true
	}
	return 0, 0, false
}

// LinearGaussian computes Σ wᵢ·Xᵢ + c in closed form when every input is
// Gaussian or deterministic (independent inputs): the result is
// N(Σ wᵢμᵢ + c, Σ wᵢ²σᵢ²). ok is false when any input is not Gaussian, in
// which case the caller should fall back to Apply.
//
// This is the fast path of the paper's throughput experiment: "Since the
// inputs are Gaussians, the query processor can compute the AVG result as a
// Gaussian distribution" (§V-C).
func LinearGaussian(weights []float64, c float64, fields ...Field) (Field, bool, error) {
	if len(weights) != len(fields) {
		return Field{}, false, fmt.Errorf("randvar: %d weights for %d fields", len(weights), len(fields))
	}
	mu, sigma2 := c, 0.0
	for i, f := range fields {
		if err := f.Validate(); err != nil {
			return Field{}, false, err
		}
		m, s2, ok := gaussianOf(f)
		if !ok {
			return Field{}, false, nil
		}
		mu += weights[i] * m
		sigma2 += weights[i] * weights[i] * s2
	}
	return linearGaussianResult(mu, sigma2, fields)
}

// LinearGaussianUniform is LinearGaussian with every weight equal to w —
// the AVG/SUM shape — without materializing a weight vector. The window
// aggregate path calls it once per push with the window as fields, so the
// saved allocation is one slice of window-size floats per tuple.
func LinearGaussianUniform(w, c float64, fields ...Field) (Field, bool, error) {
	mu, sigma2 := c, 0.0
	for _, f := range fields {
		if err := f.Validate(); err != nil {
			return Field{}, false, err
		}
		m, s2, ok := gaussianOf(f)
		if !ok {
			return Field{}, false, nil
		}
		mu += w * m
		sigma2 += w * w * s2
	}
	return linearGaussianResult(mu, sigma2, fields)
}

func linearGaussianResult(mu, sigma2 float64, fields []Field) (Field, bool, error) {
	f, err := GaussianResult(mu, sigma2, DFSampleSize(fields...))
	if err != nil {
		return Field{}, false, err
	}
	return f, true, nil
}

// GaussianResult packages a closed-form Gaussian aggregate (mean mu,
// variance sigma2, d.f. sample size n) into a Field: a Point when the
// variance is zero, a Normal otherwise. Columnar scans that compute mu and
// sigma2 directly from contiguous arrays use this to produce the exact
// field the row path would.
func GaussianResult(mu, sigma2 float64, n int) (Field, error) {
	if sigma2 == 0 {
		return Field{Dist: dist.Point{V: mu}, N: n}, nil
	}
	nd, err := dist.NewNormal(mu, sigma2)
	if err != nil {
		return Field{}, err
	}
	return Field{Dist: nd, N: n}, nil
}

// --- The paper's six random-query operators (§V-C) ---

// BinaryOp names one of the paper's expression operators.
type BinaryOp int

const (
	Add BinaryOp = iota
	Sub
	Mul
	Div
)

func (op BinaryOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	}
	return fmt.Sprintf("BinaryOp(%d)", int(op))
}

// Binary evaluates X op Y. For Add/Sub over Gaussian/point inputs the
// closed form is used; otherwise Monte Carlo.
func (e *Evaluator) Binary(op BinaryOp, x, y Field) (Result, error) {
	switch op {
	case Add, Sub:
		w := 1.0
		if op == Sub {
			w = -1
		}
		if f, ok, err := LinearGaussian([]float64{1, w}, 0, x, y); err != nil {
			return Result{}, err
		} else if ok {
			return Result{Field: f}, nil
		}
	}
	var fn Func
	switch op {
	case Add:
		fn = func(a []float64) (float64, error) { return a[0] + a[1], nil }
	case Sub:
		fn = func(a []float64) (float64, error) { return a[0] - a[1], nil }
	case Mul:
		fn = func(a []float64) (float64, error) { return a[0] * a[1], nil }
	case Div:
		fn = func(a []float64) (float64, error) {
			if a[1] == 0 {
				return math.NaN(), nil // skipped by Apply
			}
			return a[0] / a[1], nil
		}
	default:
		return Result{}, fmt.Errorf("randvar: unknown operator %v", op)
	}
	return e.Apply(fn, x, y)
}

// SqrtAbs evaluates SQRT(ABS(X)), one of the paper's random-query unary
// operators.
func (e *Evaluator) SqrtAbs(x Field) (Result, error) {
	return e.Apply(func(a []float64) (float64, error) {
		return math.Sqrt(math.Abs(a[0])), nil
	}, x)
}

// Square evaluates X², the paper's SQUARE operator.
func (e *Evaluator) Square(x Field) (Result, error) {
	return e.Apply(func(a []float64) (float64, error) {
		return a[0] * a[0], nil
	}, x)
}

// ProbGreater returns P(X > v) for the field's distribution together with
// the field's sample size — the inputs a probability-threshold predicate
// and pTest need.
func ProbGreater(f Field, v float64) (p float64, n int, err error) {
	if err := f.Validate(); err != nil {
		return 0, 0, err
	}
	return 1 - f.Dist.CDF(v), f.N, nil
}
