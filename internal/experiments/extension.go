package experiments

import (
	"math"

	"repro/internal/accuracy"
	"repro/internal/bootstrap"
	"repro/internal/dist"
	"repro/internal/learn"
)

// FigX1 is an extension experiment implementing the paper's §VII future
// work: weighting recent observations more heavily when the underlying
// distribution drifts. A stream's true mean moves linearly while the system
// keeps the last 100 raw observations; the current mean is estimated (a)
// from the plain sample and (b) from an exponentially decayed sample
// (half-life 20 observations), with 90% confidence intervals using n and
// the effective sample size n_eff respectively.
//
// Plotted against the drift per observation: the RMSE of both estimators
// and the coverage of both intervals. Under drift the plain estimator is
// biased (its interval's coverage collapses); the decayed estimator tracks
// the current mean and keeps near-nominal coverage at the price of a wider
// interval (smaller n_eff).
func FigX1(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	rng := dist.NewRand(cfg.Seed + 11)
	const (
		buffer   = 100
		halfLife = 20.0
		noiseSD  = 2.0
	)
	drifts := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4}
	trials := cfg.scale(800, 100)

	var (
		rmsePlain, rmseDecay []float64
		covPlain, covDecay   []float64
	)
	for _, drift := range drifts {
		var sePlain, seDecay float64
		var hitPlain, hitDecay int
		for trial := 0; trial < trials; trial++ {
			obs := make([]float64, buffer)
			ages := make([]float64, buffer)
			for i := 0; i < buffer; i++ {
				age := float64(buffer - 1 - i)
				mu := -age * drift // current mean is 0
				obs[i] = mu + noiseSD*rng.NormFloat64()
				ages[i] = age
			}
			// Plain estimator.
			plain := learn.NewSample(obs)
			pm, err := plain.Mean()
			if err != nil {
				return nil, err
			}
			psd, err := plain.StdDev()
			if err != nil {
				return nil, err
			}
			pIv, err := accuracy.MeanInterval(pm, psd, buffer, 0.9)
			if err != nil {
				return nil, err
			}
			// Decayed estimator with n_eff-based interval.
			ws, err := learn.ExponentialDecay(obs, ages, halfLife)
			if err != nil {
				return nil, err
			}
			wm, err := ws.Mean()
			if err != nil {
				return nil, err
			}
			wsd, err := ws.StdDev()
			if err != nil {
				return nil, err
			}
			wIv, err := accuracy.MeanInterval(wm, wsd, ws.EffectiveSizeInt(), 0.9)
			if err != nil {
				return nil, err
			}
			sePlain += pm * pm // true current mean is 0
			seDecay += wm * wm
			if pIv.Contains(0) {
				hitPlain++
			}
			if wIv.Contains(0) {
				hitDecay++
			}
		}
		rmsePlain = append(rmsePlain, math.Sqrt(sePlain/float64(trials)))
		rmseDecay = append(rmseDecay, math.Sqrt(seDecay/float64(trials)))
		covPlain = append(covPlain, float64(hitPlain)/float64(trials))
		covDecay = append(covDecay, float64(hitDecay)/float64(trials))
	}
	return &Figure{
		ID:     "x1",
		Title:  "EXTENSION (§VII future work): recency-weighted samples under drift",
		XLabel: "drift per observation",
		YLabel: "RMSE of current-mean estimate / 90% interval coverage",
		Series: []Series{
			{Name: "RMSE plain", X: drifts, Y: rmsePlain},
			{Name: "RMSE decayed", X: drifts, Y: rmseDecay},
			{Name: "coverage plain", X: drifts, Y: covPlain},
			{Name: "coverage decayed", X: drifts, Y: covDecay},
		},
		Notes: "buffer 100 obs, half-life 20, σ=2; intervals use n (plain) vs n_eff (decayed); even decayed estimates lag by ≈ drift/λ, so both coverages fall at extreme drift",
	}, nil
}

// FigX2 is the bootstrap-resample-count ablation DESIGN.md calls out: how
// the BOOTSTRAP-ACCURACY-INFO mean-interval length and miss rate vary with
// the d.f. resample count r, at fixed n = 20 on skewed (exponential) data.
// The paper's Example 7 uses r = 20; this figure shows why that is enough:
// lengths stabilize around r ≈ 20 while the cost grows linearly in r.
func FigX2(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	rng := dist.NewRand(cfg.Seed + 12)
	exp, err := dist.NewExponential(1)
	if err != nil {
		return nil, err
	}
	const n = 20
	rs := []int{5, 10, 20, 40, 80}
	trials := cfg.scale(2000, 200)
	var lens, misses, xs []float64
	for _, r := range rs {
		totalLen, missCount := 0.0, 0
		for k := 0; k < trials; k++ {
			info, err := bootstrap.FromDistribution(exp, n, r, 0.9, rng)
			if err != nil {
				return nil, err
			}
			totalLen += info.Mean.Length()
			if !info.Mean.Contains(exp.Mean()) {
				missCount++
			}
		}
		xs = append(xs, float64(r))
		lens = append(lens, totalLen/float64(trials))
		misses = append(misses, float64(missCount)/float64(trials))
	}
	return &Figure{
		ID:     "x2",
		Title:  "ABLATION: bootstrap resample count r (n = 20, exponential data)",
		XLabel: "resamples r",
		YLabel: "mean-interval length / miss rate (90%)",
		Series: []Series{
			{Name: "interval length", X: xs, Y: lens},
			{Name: "miss rate", X: xs, Y: misses},
		},
		Notes: "length grows mildly with r (percentiles of 2r−1 points reach further into the tails); r = 20 (Example 7) already covers at better than nominal",
	}, nil
}

// FigX3 is the Lemma 1 switch-rule ablation: miss rates of the Wald
// interval, the Wilson score interval, and the paper's switched rule
// (Wald when n·p ≥ 4 and n·(1−p) ≥ 4, Wilson otherwise) across bucket
// probabilities at n = 40. Wald collapses at small n·p — the reason the
// paper switches.
func FigX3(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	rng := dist.NewRand(cfg.Seed + 13)
	const n = 40
	ps := []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	trials := cfg.scale(4000, 400)
	var waldMiss, wilsonMiss, switchMiss []float64
	for _, trueP := range ps {
		var mw, mwl, msw int
		for k := 0; k < trials; k++ {
			count := 0
			for j := 0; j < n; j++ {
				if rng.Float64() < trueP {
					count++
				}
			}
			phat := float64(count) / n
			wald, err := accuracy.WaldInterval(phat, n, 0.9)
			if err != nil {
				return nil, err
			}
			wilson, err := accuracy.WilsonInterval(phat, n, 0.9)
			if err != nil {
				return nil, err
			}
			switched, err := accuracy.BinHeightInterval(phat, n, 0.9)
			if err != nil {
				return nil, err
			}
			if !wald.Contains(trueP) {
				mw++
			}
			if !wilson.Contains(trueP) {
				mwl++
			}
			if !switched.Contains(trueP) {
				msw++
			}
		}
		waldMiss = append(waldMiss, float64(mw)/float64(trials))
		wilsonMiss = append(wilsonMiss, float64(mwl)/float64(trials))
		switchMiss = append(switchMiss, float64(msw)/float64(trials))
	}
	return &Figure{
		ID:     "x3",
		Title:  "ABLATION: Wald vs Wilson vs the paper's switch (Lemma 1, n = 40, 90%)",
		XLabel: "true bucket probability p",
		YLabel: "miss rate",
		Series: []Series{
			{Name: "Wald everywhere", X: ps, Y: waldMiss},
			{Name: "Wilson everywhere", X: ps, Y: wilsonMiss},
			{Name: "paper's switch (n·p ≥ 4)", X: ps, Y: switchMiss},
		},
		Notes: "Wald collapses below n·p ≈ 4; the switched rule tracks Wilson there and Wald's simplicity elsewhere",
	}, nil
}
