// Package experiments regenerates every figure of the paper's evaluation
// (§V): Fig 4(a)–(d) for the analytical accuracy methods, and Fig 5(a)–(h)
// for bootstraps, throughput, and significance predicates. Each FigNx
// function returns a Figure holding the same series the paper plots;
// cmd/experiments renders them as aligned text tables and CSV, and
// bench_test.go wraps each in a testing.B benchmark.
//
// Absolute numbers differ from the paper (synthetic CarTel data, different
// hardware) but the shapes the paper argues from are preserved; see
// EXPERIMENTS.md for the paper-vs-measured record.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Config scales the experiments.
type Config struct {
	// Seed drives every random choice; same seed, same figures.
	Seed uint64
	// Quick shrinks trial counts by ~10× for CI and benchmarks.
	Quick bool
	// Segments is the simulated road-network size (default 300).
	Segments int
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Segments == 0 {
		c.Segments = 300
	}
	return c
}

// scale reduces a trial count in Quick mode, keeping at least min.
func (c Config) scale(n, min int) int {
	if !c.Quick {
		return n
	}
	n /= 10
	if n < min {
		n = min
	}
	return n
}

// Series is one plotted line (or bar group) of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	// XLabels replaces numeric X with categorical labels (bar charts).
	XLabels []string
}

// Figure is the regenerated content of one paper figure.
type Figure struct {
	ID     string // e.g. "4a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  string
}

// Render formats the figure as an aligned text table, series as columns.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s\n", f.ID, f.Title)
	if f.Notes != "" {
		fmt.Fprintf(&b, "  (%s)\n", f.Notes)
	}
	if len(f.Series) == 0 {
		return b.String()
	}
	// Header.
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	// Collect x labels from the first series.
	first := f.Series[0]
	rows := len(first.Y)
	table := make([][]string, 0, rows+1)
	table = append(table, cols)
	for i := 0; i < rows; i++ {
		row := make([]string, 0, len(cols))
		switch {
		case first.XLabels != nil:
			row = append(row, first.XLabels[i])
		case first.X != nil:
			row = append(row, trimFloat(first.X[i]))
		default:
			row = append(row, fmt.Sprint(i))
		}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, trimFloat(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		table = append(table, row)
	}
	widths := make([]int, len(cols))
	for _, row := range table {
		for j, cell := range row {
			if len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	for _, row := range table {
		for j, cell := range row {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	first := f.Series[0]
	for i := range first.Y {
		switch {
		case first.XLabels != nil:
			b.WriteString(csvEscape(first.XLabels[i]))
		case first.X != nil:
			b.WriteString(trimFloat(first.X[i]))
		default:
			fmt.Fprint(&b, i)
		}
		for _, s := range f.Series {
			b.WriteByte(',')
			if i < len(s.Y) {
				b.WriteString(trimFloat(s.Y[i]))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// figureFunc builds one figure.
type figureFunc func(Config) (*Figure, error)

// registry maps figure IDs to their builders.
var registry = map[string]figureFunc{
	"4a": Fig4a,
	"4b": Fig4b,
	"4c": Fig4c,
	"4d": Fig4d,
	"5a": Fig5a,
	"5b": Fig5b,
	"5c": Fig5c,
	"5d": Fig5d,
	"5e": Fig5e,
	"5f": Fig5f,
	"5g": Fig5g,
	"5h": Fig5h,
	"x1": FigX1,
	"x2": FigX2,
	"x3": FigX3,
}

// IDs returns all figure IDs in presentation order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run builds the figure with the given ID.
func Run(id string, cfg Config) (*Figure, error) {
	fn, ok := registry[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", id, IDs())
	}
	return fn(cfg.Normalize())
}

// RunAll builds every figure in order.
func RunAll(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, id := range IDs() {
		f, err := Run(id, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure %s: %w", id, err)
		}
		out = append(out, f)
	}
	return out, nil
}
