package experiments

import (
	"math"

	"repro/internal/accuracy"
	"repro/internal/cartel"
	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/synthgen"
)

// fig4SampleSizes is the n sweep of Figures 4(a)–(c).
var fig4SampleSizes = []int{10, 20, 30, 40, 50, 60, 70, 80}

const (
	fig4Level = 0.9 // the paper uses 90% confidence intervals throughout
	fig4Bins  = 5   // histogram buckets for bin-height statistics
)

// segmentStats holds per-trial interval lengths and misses for the three
// statistics of Figures 4(a)–(d).
type segmentStats struct {
	lenBin, lenMean, lenVar    float64
	missBin, missMean, missVar float64
	trials                     float64
}

// measureAccuracy draws `trials` samples of size n from d, computes the
// three analytical 90% intervals (Lemma 1 bin heights over fixed edges,
// Lemma 2 mean and variance), and scores lengths and misses against the
// distribution's exact parameters.
func measureAccuracy(d dist.Distribution, n, trials int, rng *dist.Rand) (segmentStats, error) {
	var out segmentStats
	// Fixed bucket edges spanning the bulk of the distribution so that
	// true bin heights are well defined across trials.
	lo, hi := d.Quantile(0.001), d.Quantile(0.999)
	edges := make([]float64, fig4Bins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(fig4Bins)
	}
	trueBins, err := cartel.TrueBinHeights(d, edges)
	if err != nil {
		return out, err
	}
	trueMean, trueVar := d.Mean(), d.Variance()
	learner := learn.NewHistogramLearnerRange(fig4Bins, lo, hi)
	for k := 0; k < trials; k++ {
		s := learn.NewSample(dist.SampleN(d, n, rng))
		// Bin heights.
		ld, err := learner.Learn(s)
		if err != nil {
			return out, err
		}
		h := ld.(*dist.Histogram)
		bins, err := accuracy.HistogramAccuracy(h, n, fig4Level)
		if err != nil {
			return out, err
		}
		for i, b := range bins {
			out.lenBin += b.Interval.Length() / float64(len(bins))
			if !b.Interval.Contains(trueBins[i]) {
				out.missBin += 1 / float64(len(bins))
			}
		}
		// Mean and variance from the raw sample statistics.
		ybar, err := s.Mean()
		if err != nil {
			return out, err
		}
		sd, err := s.StdDev()
		if err != nil {
			return out, err
		}
		mIv, err := accuracy.MeanInterval(ybar, sd, n, fig4Level)
		if err != nil {
			return out, err
		}
		vIv, err := accuracy.VarianceInterval(sd*sd, n, fig4Level)
		if err != nil {
			return out, err
		}
		out.lenMean += mIv.Length()
		out.lenVar += vIv.Length()
		if !mIv.Contains(trueMean) {
			out.missMean++
		}
		if !vIv.Contains(trueVar) {
			out.missVar++
		}
		out.trials++
	}
	return out, nil
}

// fig4Sweep runs measureAccuracy for every sample size over a set of road
// segments, averaging per n.
func fig4Sweep(cfg Config) (lens map[string][]float64, misses map[string][]float64, err error) {
	net, err := cartel.NewNetwork(cfg.Segments, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	rng := dist.NewRand(cfg.Seed + 1)
	numSegments := cfg.scale(100, 15)
	trials := cfg.scale(20, 3)
	lens = map[string][]float64{"bin": {}, "mean": {}, "var": {}}
	misses = map[string][]float64{"bin": {}, "mean": {}, "var": {}}
	for _, n := range fig4SampleSizes {
		var agg segmentStats
		for segIdx := 0; segIdx < numSegments; segIdx++ {
			seg := net.Segments[segIdx%len(net.Segments)]
			st, err := measureAccuracy(seg.Delay, n, trials, rng)
			if err != nil {
				return nil, nil, err
			}
			agg.lenBin += st.lenBin
			agg.lenMean += st.lenMean
			agg.lenVar += st.lenVar
			agg.missBin += st.missBin
			agg.missMean += st.missMean
			agg.missVar += st.missVar
			agg.trials += st.trials
		}
		lens["bin"] = append(lens["bin"], agg.lenBin/agg.trials)
		lens["mean"] = append(lens["mean"], agg.lenMean/agg.trials)
		lens["var"] = append(lens["var"], agg.lenVar/agg.trials)
		misses["bin"] = append(misses["bin"], agg.missBin/agg.trials)
		misses["mean"] = append(misses["mean"], agg.missMean/agg.trials)
		misses["var"] = append(misses["var"], agg.missVar/agg.trials)
	}
	return lens, misses, nil
}

func fig4Xs() []float64 {
	xs := make([]float64, len(fig4SampleSizes))
	for i, n := range fig4SampleSizes {
		xs[i] = float64(n)
	}
	return xs
}

// Fig4a reproduces Figure 4(a): sample size vs 90% confidence interval
// length of the μ parameter, on simulated road-delay data.
func Fig4a(cfg Config) (*Figure, error) {
	lens, _, err := fig4Sweep(cfg)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "4a",
		Title:  "sample size vs interval length of μ (road-delay data)",
		XLabel: "sample size",
		YLabel: "interval length of μ (seconds)",
		Series: []Series{{Name: "mean interval length", X: fig4Xs(), Y: lens["mean"]}},
		Notes:  "expect ∝ 1/√n decay",
	}, nil
}

// Fig4b reproduces Figure 4(b): sample size vs normalized interval length
// (normalized by the length at n = 10) for bin heights, mean, and variance.
func Fig4b(cfg Config) (*Figure, error) {
	lens, _, err := fig4Sweep(cfg)
	if err != nil {
		return nil, err
	}
	normalize := func(ys []float64) []float64 {
		out := make([]float64, len(ys))
		base := ys[0]
		for i, v := range ys {
			out[i] = v / base
		}
		return out
	}
	xs := fig4Xs()
	return &Figure{
		ID:     "4b",
		Title:  "sample size vs normalized interval length",
		XLabel: "sample size",
		YLabel: "normalized interval length (n=10 ⇒ 1)",
		Series: []Series{
			{Name: "bin heights", X: xs, Y: normalize(lens["bin"])},
			{Name: "mean", X: xs, Y: normalize(lens["mean"])},
			{Name: "variance", X: xs, Y: normalize(lens["var"])},
		},
	}, nil
}

// Fig4c reproduces Figure 4(c): miss rates of the three interval types vs
// sample size. Bin heights should miss least; variance most (the
// analytical variance interval assumes near-normality, which heavy-tailed
// delays violate).
func Fig4c(cfg Config) (*Figure, error) {
	_, misses, err := fig4Sweep(cfg)
	if err != nil {
		return nil, err
	}
	xs := fig4Xs()
	return &Figure{
		ID:     "4c",
		Title:  "miss rates vs sample size (90% intervals, road-delay data)",
		XLabel: "sample size",
		YLabel: "miss rate",
		Series: []Series{
			{Name: "bin heights", X: xs, Y: misses["bin"]},
			{Name: "mean", X: xs, Y: misses["mean"]},
			{Name: "variance", X: xs, Y: misses["var"]},
		},
		Notes: "nominal miss rate is 0.10",
	}, nil
}

// Fig4d reproduces Figure 4(d): average miss rate (over the three
// statistics) for the five synthetic distributions at n = 20.
func Fig4d(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	rng := dist.NewRand(cfg.Seed + 2)
	trials := cfg.scale(2000, 200)
	labels := make([]string, 0, 5)
	ys := make([]float64, 0, 5)
	for _, name := range synthgen.Names() {
		d, err := synthgen.New(name)
		if err != nil {
			return nil, err
		}
		st, err := measureAccuracy(d, 20, trials, rng)
		if err != nil {
			return nil, err
		}
		avgMiss := (st.missBin + st.missMean + st.missVar) / (3 * st.trials)
		labels = append(labels, string(name))
		ys = append(ys, avgMiss)
	}
	return &Figure{
		ID:     "4d",
		Title:  "average miss rate per distribution (n = 20, 90% intervals)",
		XLabel: "distribution",
		YLabel: "miss rate",
		Series: []Series{{Name: "avg miss rate", XLabels: labels, Y: ys}},
		Notes:  "averaged over bin heights, mean, and variance",
	}, nil
}

// theoreticalHalfWidthRatio is used by tests: the expected ratio of mean
// interval lengths between two sample sizes under the 1/√n law.
func theoreticalHalfWidthRatio(n1, n2 int) float64 {
	return math.Sqrt(float64(n2)) / math.Sqrt(float64(n1))
}
