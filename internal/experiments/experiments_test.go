package experiments

import (
	"math"
	"strings"
	"testing"
)

// quickCfg is the reduced configuration used by tests; deterministic seed.
func quickCfg() Config {
	return Config{Quick: true, Seed: 7, Segments: 150}
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"4a", "4b", "4c", "4d", "5a", "5b", "5c", "5d", "5e", "5f", "5g", "5h", "x1", "x2", "x3"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("IDs[%d] = %q, want %q", i, ids[i], id)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("9z", quickCfg()); err == nil {
		t.Error("unknown figure: want error")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Normalize()
	if c.Seed == 0 || c.Segments == 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
	if got := (Config{Quick: true}).scale(100, 3); got != 10 {
		t.Errorf("scale = %d, want 10", got)
	}
	if got := (Config{Quick: true}).scale(20, 5); got != 5 {
		t.Errorf("scale floor = %d, want 5", got)
	}
	if got := (Config{}).scale(100, 3); got != 100 {
		t.Errorf("full scale = %d, want 100", got)
	}
}

// TestFig4aShape checks the headline claim behind Figure 4(a): the mean
// interval length decays roughly like 1/√n.
func TestFig4aShape(t *testing.T) {
	f, err := Fig4a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	ys := f.Series[0].Y
	if len(ys) != len(fig4SampleSizes) {
		t.Fatalf("rows = %d", len(ys))
	}
	// Strictly decreasing within noise; endpoints obey the √ law ±40%.
	if !(ys[0] > ys[len(ys)-1]) {
		t.Fatalf("interval length did not decrease: %v", ys)
	}
	wantRatio := theoreticalHalfWidthRatio(80, 10) // = sqrt(10/80)
	gotRatio := ys[len(ys)-1] / ys[0]
	if gotRatio < wantRatio*0.6 || gotRatio > wantRatio*1.6 {
		t.Errorf("decay ratio %g, want ≈%g", gotRatio, wantRatio)
	}
}

// TestFig4cShape: variance intervals miss most on heavy-tailed delays; bin
// heights stay near the nominal rate.
func TestFig4cShape(t *testing.T) {
	f, err := Fig4c(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	avg := func(ys []float64) float64 {
		s := 0.0
		for _, v := range ys {
			s += v
		}
		return s / float64(len(ys))
	}
	var bin, variance float64
	for _, s := range f.Series {
		switch s.Name {
		case "bin heights":
			bin = avg(s.Y)
		case "variance":
			variance = avg(s.Y)
		}
	}
	if !(variance > bin) {
		t.Errorf("variance miss rate %g not above bin heights %g", variance, bin)
	}
	if bin > 0.2 {
		t.Errorf("bin-height miss rate %g implausibly high", bin)
	}
}

// TestFig4dBounds: all five distributions stay at modest miss rates.
func TestFig4dBounds(t *testing.T) {
	f, err := Fig4d(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	if len(s.Y) != 5 || len(s.XLabels) != 5 {
		t.Fatalf("series = %+v", s)
	}
	for i, v := range s.Y {
		if v < 0 || v > 0.35 {
			t.Errorf("%s miss rate %g out of plausible range", s.XLabels[i], v)
		}
	}
}

// TestFig5aShape: bootstrap means are tighter than analytical; bootstrap
// miss rates stay low.
func TestFig5aShape(t *testing.T) {
	f, err := Fig5a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		ratio, miss := s.Y[0], s.Y[1]
		if s.Name == "mean" && ratio >= 1 {
			t.Errorf("bootstrap mean interval ratio %g, want < 1", ratio)
		}
		if miss > 0.2 {
			t.Errorf("%s bootstrap miss rate %g too high", s.Name, miss)
		}
	}
}

// TestFig5cOrdering: accuracy computation costs throughput; bootstrap costs
// more than analytical.
func TestFig5cOrdering(t *testing.T) {
	f, err := Fig5c(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	y := f.Series[0].Y
	if len(y) != 3 {
		t.Fatalf("series = %v", y)
	}
	qp, an, bo := y[0], y[1], y[2]
	// Bootstrap costs the most; analytical sits between bootstrap and the
	// accuracy-free baseline. Allow a little scheduler noise on the
	// qp-vs-analytical gap, which is small by design.
	if !(bo < an && bo < qp) {
		t.Errorf("bootstrap should be slowest: qp=%g an=%g bo=%g", qp, an, bo)
	}
	if an > qp*1.15 {
		t.Errorf("analytical faster than QP-only beyond noise: qp=%g an=%g", qp, an)
	}
	if bo < qp/20 {
		t.Errorf("bootstrap overhead implausibly large: qp=%g bo=%g", qp, bo)
	}
}

// TestFig5deErrorControl: the single test bounds FP only; coupled tests
// bound both error rates.
func TestFig5deErrorControl(t *testing.T) {
	cfg := quickCfg()
	d, err := Fig5d(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Fig5e(cfg)
	if err != nil {
		t.Fatal(err)
	}
	comparisons := 2.0 * float64(cfg.scale(100, 10))
	perRow := comparisons / 2 // 100 H0-true + 100 H1-true per row
	for _, s := range d.Series {
		if s.Name != "false positives" {
			continue
		}
		for i, v := range s.Y {
			if v > 0.05*perRow+2 {
				t.Errorf("fig5d FP at n=%v: %v exceeds bound", s.X[i], v)
			}
		}
	}
	var fp, fn, unsure []float64
	for _, s := range e.Series {
		switch s.Name {
		case "false positives":
			fp = s.Y
		case "false negatives":
			fn = s.Y
		case "unsure comparisons":
			unsure = s.Y
		}
	}
	for i := range fp {
		if fp[i] > 0.05*perRow+2 || fn[i] > 0.05*perRow+2 {
			t.Errorf("fig5e error bound violated at row %d: fp=%v fn=%v", i, fp[i], fn[i])
		}
	}
	// UNSURE shrinks from the smallest to the largest n (allowing noise).
	if unsure[len(unsure)-1] > unsure[0] {
		t.Errorf("unsure did not shrink: %v", unsure)
	}
}

// TestFig5gPowerIncreasing: power grows with δ for every distribution, and
// uniform dominates at δ = 0.4 (the small-variance effect the paper notes).
func TestFig5gPowerIncreasing(t *testing.T) {
	f, err := Fig5g(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var uniformAt4, normalAt4 float64
	for _, s := range f.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last <= first {
			t.Errorf("%s power did not increase: %v", s.Name, s.Y)
		}
		for i, x := range s.X {
			if x == 0.4 {
				if s.Name == "uniform" {
					uniformAt4 = s.Y[i]
				}
				if s.Name == "normal" {
					normalAt4 = s.Y[i]
				}
			}
		}
	}
	if uniformAt4 <= normalAt4 {
		t.Errorf("uniform power %g should dominate normal %g at δ=0.4", uniformAt4, normalAt4)
	}
}

// TestFig5hDistributionFree: at τ = 0.7 the five curves nearly coincide
// (the proportion statistic is quantile-based).
func TestFig5hDistributionFree(t *testing.T) {
	f, err := Fig5h(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var at7 []float64
	for _, s := range f.Series {
		for i, x := range s.X {
			if x == 0.7 {
				at7 = append(at7, s.Y[i])
			}
		}
	}
	if len(at7) != 5 {
		t.Fatalf("missing τ=0.7 points: %v", at7)
	}
	lo, hi := at7[0], at7[0]
	for _, v := range at7 {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo > 0.25 {
		t.Errorf("power spread %g at τ=0.7 too wide for a distribution-free test: %v", hi-lo, at7)
	}
}

func TestRenderAndCSV(t *testing.T) {
	f := &Figure{
		ID:     "t",
		Title:  "test figure",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a,b", X: []float64{1, 2}, Y: []float64{0.5, 1}},
			{Name: "c", X: []float64{1, 2}, Y: []float64{3}},
		},
		Notes: "note",
	}
	text := f.Render()
	if !strings.Contains(text, "test figure") || !strings.Contains(text, "note") {
		t.Errorf("render: %q", text)
	}
	if !strings.Contains(text, "-") { // short series padded
		t.Errorf("short series not padded: %q", text)
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "x,\"a,b\",c\n") {
		t.Errorf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "1,0.5,3\n") {
		t.Errorf("csv rows: %q", csv)
	}
	// Categorical labels render too.
	f2 := &Figure{ID: "t2", Series: []Series{{Name: "v", XLabels: []string{"one"}, Y: []float64{2}}}}
	if !strings.Contains(f2.Render(), "one") || !strings.Contains(f2.CSV(), "one") {
		t.Error("categorical labels missing")
	}
	// Empty figure renders its header only.
	f3 := &Figure{ID: "t3", Title: "empty"}
	if !strings.Contains(f3.Render(), "empty") || f3.CSV() == "" {
		t.Error("empty figure render failed")
	}
}

// TestRunAllQuick is the end-to-end smoke test: every figure builds without
// error under the quick configuration.
func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	figs, err := RunAll(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 15 {
		t.Fatalf("figures = %d, want 15", len(figs))
	}
	for _, f := range figs {
		if f.Render() == "" || f.CSV() == "" {
			t.Errorf("figure %s rendered empty", f.ID)
		}
	}
}

// TestFigX1DecayUnderDrift: the extension experiment's headline — under
// drift, recency weighting cuts the estimation error and preserves interval
// coverage while the plain interval's coverage collapses.
func TestFigX1DecayUnderDrift(t *testing.T) {
	f, err := FigX1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range f.Series {
		series[s.Name] = s.Y
	}
	// At every non-zero drift the decayed estimator has lower error.
	for i := 1; i < len(series["RMSE plain"]); i++ {
		if series["RMSE decayed"][i] >= series["RMSE plain"][i] {
			t.Errorf("row %d: decayed RMSE %g should beat plain %g",
				i, series["RMSE decayed"][i], series["RMSE plain"][i])
		}
	}
	// At mild drift, plain coverage collapses while decayed retains some.
	if series["coverage plain"][1] > 0.2 {
		t.Errorf("plain coverage %g should collapse at mild drift", series["coverage plain"][1])
	}
	if series["coverage decayed"][1] <= series["coverage plain"][1] {
		t.Errorf("decayed coverage %g should beat plain %g at mild drift",
			series["coverage decayed"][1], series["coverage plain"][1])
	}
	// Without drift the two are comparable and both cover nominally.
	if series["coverage plain"][0] < 0.8 || series["coverage decayed"][0] < 0.8 {
		t.Errorf("no-drift coverage too low: plain %g, decayed %g",
			series["coverage plain"][0], series["coverage decayed"][0])
	}
}

// TestFigX3SwitchRule: Wald misses badly at small n·p; the switched rule
// stays near Wilson's behaviour.
func TestFigX3SwitchRule(t *testing.T) {
	f, err := FigX3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range f.Series {
		series[s.Name] = s.Y
	}
	wald := series["Wald everywhere"]
	wilson := series["Wilson everywhere"]
	switched := series["paper's switch (n·p ≥ 4)"]
	// At p = 0.02 (n·p = 0.8) Wald's miss rate explodes.
	if wald[0] < 0.3 {
		t.Errorf("Wald at tiny n·p missed only %g, expected collapse", wald[0])
	}
	if wilson[0] > 0.15 || switched[0] > 0.15 {
		t.Errorf("Wilson %g / switched %g should stay near nominal at tiny n·p",
			wilson[0], switched[0])
	}
	// At p = 0.4 all three behave.
	last := len(wald) - 1
	for name, ys := range series {
		if ys[last] > 0.16 {
			t.Errorf("%s at p=0.4 misses %g", name, ys[last])
		}
	}
}

// TestFigX2Convergence: the bootstrap interval covers at near-nominal
// rates for every r and the r=20 default is in the stable region.
func TestFigX2Convergence(t *testing.T) {
	f, err := FigX2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var lens, misses []float64
	for _, s := range f.Series {
		switch s.Name {
		case "interval length":
			lens = s.Y
		case "miss rate":
			misses = s.Y
		}
	}
	for i, m := range misses {
		if m > 0.12 {
			t.Errorf("miss rate %g at r=%v exceeds nominal", m, f.Series[0].X[i])
		}
	}
	// Lengths at r=20 and r=80 agree within 30%.
	var l20, l80 float64
	for i, x := range f.Series[0].X {
		if x == 20 {
			l20 = lens[i]
		}
		if x == 80 {
			l80 = lens[i]
		}
	}
	if l20 == 0 || l80 == 0 || l20/l80 < 0.7 || l20/l80 > 1.3 {
		t.Errorf("length not converged: r=20 → %g, r=80 → %g", l20, l80)
	}
}
