package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hypothesis"
	"repro/internal/learn"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// throughputItems is the number of stream items pushed per measurement.
func throughputItems(cfg Config) int { return cfg.scale(20000, 2000) }

// rawItem is one pre-generated stream item: the 20 raw data points the
// query processor learns a Gaussian from (§V-C).
type rawItem struct {
	obs []float64
}

// genThroughputData pre-generates the raw observations so that data
// generation is excluded from the measured time.
func genThroughputData(items int, rng *dist.Rand) []rawItem {
	out := make([]rawItem, items)
	for i := range out {
		// Item-level drift keeps the window aggregate non-trivial.
		mu := 50 + 5*rng.NormFloat64()
		obs := make([]float64, 20)
		for j := range obs {
			obs[j] = mu + 3*rng.NormFloat64()
		}
		out[i] = rawItem{obs: obs}
	}
	return out
}

// sensorEngine builds an engine with the §V-C stream and window-AVG query.
func sensorEngine(method core.AccuracyMethod, window int) (*core.Engine, *core.Query, error) {
	eng, err := core.NewEngine(core.Config{Method: method, Level: 0.9})
	if err != nil {
		return nil, nil, err
	}
	schema, err := stream.NewSchema("sensor", stream.Column{Name: "val", Probabilistic: true})
	if err != nil {
		return nil, nil, err
	}
	if err := eng.RegisterStream(schema); err != nil {
		return nil, nil, err
	}
	q, err := eng.Compile(fmt.Sprintf("SELECT AVG(val) FROM sensor WINDOW %d ROWS", window))
	if err != nil {
		return nil, nil, err
	}
	return eng, q, nil
}

// maxThroughput repeats a measurement and keeps the best run — the paper
// reports *maximum* throughput, and repetition suppresses scheduler noise.
func maxThroughput(reps int, measure func() (float64, error)) (float64, error) {
	best := 0.0
	for i := 0; i < reps; i++ {
		t, err := measure()
		if err != nil {
			return 0, err
		}
		if t > best {
			best = t
		}
	}
	return best, nil
}

// runThroughput measures tuples/second for the sliding-window AVG query:
// per tuple, learn a Gaussian from 20 raw points, push through the window
// aggregate, and (per method) compute accuracy information. onResult lets
// Fig 5(f) layer significance predicates on the emitted aggregates.
func runThroughput(data []rawItem, method core.AccuracyMethod, window int, onResult func(core.Result) error) (float64, error) {
	eng, q, err := sensorEngine(method, window)
	if err != nil {
		return 0, err
	}
	schema, err := eng.Schema("sensor")
	if err != nil {
		return 0, err
	}
	learner := learn.GaussianLearner{}
	// Warm up (fill caches, grow the window) on a prefix before timing.
	warm := len(data) / 10
	for _, item := range data[:warm] {
		f, err := core.LearnField(learner, learn.NewSample(item.obs))
		if err != nil {
			return 0, err
		}
		t, err := stream.NewTuple(schema, []randvar.Field{f})
		if err != nil {
			return 0, err
		}
		if _, err := q.Push(t); err != nil {
			return 0, err
		}
	}
	data = data[warm:]
	start := time.Now()
	for _, item := range data {
		f, err := core.LearnField(learner, learn.NewSample(item.obs))
		if err != nil {
			return 0, err
		}
		t, err := stream.NewTuple(schema, []randvar.Field{f})
		if err != nil {
			return 0, err
		}
		results, err := q.Push(t)
		if err != nil {
			return 0, err
		}
		if onResult != nil {
			for _, r := range results {
				if err := onResult(r); err != nil {
					return 0, err
				}
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return float64(len(data)) / elapsed, nil
}

// Fig5c reproduces Figure 5(c): maximum stream throughput for (1) query
// processing only, (2) QP + analytical accuracy, and (3) QP + bootstrap
// accuracy, on the count-based sliding-window AVG query with window 1000.
func Fig5c(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	rng := dist.NewRand(cfg.Seed + 9)
	data := genThroughputData(throughputItems(cfg), rng)
	window := 1000
	if cfg.Quick {
		window = 200
	}
	labels := []string{"QP only", "analytical", "bootstrap"}
	methods := []core.AccuracyMethod{core.AccuracyNone, core.AccuracyAnalytical, core.AccuracyBootstrap}
	ys := make([]float64, len(methods))
	for i, m := range methods {
		m := m
		tput, err := maxThroughput(3, func() (float64, error) {
			return runThroughput(data, m, window, nil)
		})
		if err != nil {
			return nil, err
		}
		ys[i] = tput
	}
	return &Figure{
		ID:     "5c",
		Title:  "maximum throughput: accuracy computation overhead",
		XLabel: "method",
		YLabel: "throughput (tuples/second)",
		Series: []Series{{Name: "throughput", XLabels: labels, Y: ys}},
		Notes:  "sliding-window AVG, window 1000, Gaussian learned from 20 points/tuple",
	}, nil
}

// Fig5f reproduces Figure 5(f): throughput with significance predicates
// applied to each window aggregate — none, mTest, mdTest (against the
// previous window's mean), and pTest — all with coupled tests at
// α₁ = α₂ = 0.05.
func Fig5f(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	rng := dist.NewRand(cfg.Seed + 10)
	data := genThroughputData(throughputItems(cfg), rng)
	window := 1000
	if cfg.Quick {
		window = 200
	}
	labels := []string{"no pred.", "mTest", "mdTest", "pTest"}
	ys := make([]float64, 4)

	// Case 1: no predicate.
	tput, err := maxThroughput(3, func() (float64, error) {
		return runThroughput(data, core.AccuracyNone, window, nil)
	})
	if err != nil {
		return nil, err
	}
	ys[0] = tput

	statsOf := func(r core.Result) (hypothesis.Stats, error) {
		f := r.Tuple.Fields[0]
		return hypothesis.StatsFromDistribution(f.Dist, f.N)
	}

	// Case 2: mTest — is the window mean greater than 50?
	tput, err = maxThroughput(3, func() (float64, error) {
		return runThroughput(data, core.AccuracyNone, window, func(r core.Result) error {
			s, err := statsOf(r)
			if err != nil {
				return err
			}
			_, err = hypothesis.CoupledMTest(s, hypothesis.Greater, 50, 0.05, 0.05)
			return err
		})
	})
	if err != nil {
		return nil, err
	}
	ys[1] = tput

	// Case 3: mdTest — is the mean greater than in the previous window?
	tput, err = maxThroughput(3, func() (float64, error) {
		var prev *hypothesis.Stats
		return runThroughput(data, core.AccuracyNone, window, func(r core.Result) error {
			s, err := statsOf(r)
			if err != nil {
				return err
			}
			if prev != nil {
				if _, err := hypothesis.CoupledMDTest(s, *prev, hypothesis.Greater, 0, 0.05, 0.05); err != nil {
					return err
				}
			}
			prev = &s
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	ys[2] = tput

	// Case 4: pTest — is P(avg > 50) above 0.8?
	tput, err = maxThroughput(3, func() (float64, error) {
		return runThroughput(data, core.AccuracyNone, window, func(r core.Result) error {
			f := r.Tuple.Fields[0]
			phat := 1 - f.Dist.CDF(50)
			_, err := hypothesis.CoupledPTest(phat, f.N, hypothesis.Greater, 0.8, 0.05, 0.05)
			return err
		})
	})
	if err != nil {
		return nil, err
	}
	ys[3] = tput

	return &Figure{
		ID:     "5f",
		Title:  "throughput with significance predicates",
		XLabel: "method",
		YLabel: "throughput (tuples/second)",
		Series: []Series{{Name: "throughput", XLabels: labels, Y: ys}},
		Notes:  "predicates are plain hypothesis tests on the learned parameters — near-zero overhead",
	}, nil
}
