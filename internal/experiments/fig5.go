package experiments

import (
	"fmt"
	"math"

	"repro/internal/accuracy"
	"repro/internal/bootstrap"
	"repro/internal/cartel"
	"repro/internal/dist"
	"repro/internal/hypothesis"
	"repro/internal/learn"
	"repro/internal/synthgen"
)

// compareCase is one workload item for Fig 5(a)/(b): a way to draw d.f.
// observations of an output random variable with known ground truth.
type compareCase struct {
	// draw returns m iid d.f. observations of the output variable.
	draw func(m int, rng *dist.Rand) ([]float64, error)
	// truth returns the exact (or high-precision Monte Carlo) mean,
	// variance, and bin heights over the given edges.
	trueMean, trueVar float64
	edges             []float64
	trueBins          []float64
}

// newCompareCase precomputes ground truth for an output variable via a
// large reference sample (used when no closed form exists, e.g. sums of
// lognormals or random expression results).
func newCompareCase(draw func(m int, rng *dist.Rand) ([]float64, error), refSize int, rng *dist.Rand) (*compareCase, error) {
	ref, err := draw(refSize, rng)
	if err != nil {
		return nil, err
	}
	s := learn.NewSample(ref)
	mean, err := s.Mean()
	if err != nil {
		return nil, err
	}
	variance, err := s.Variance()
	if err != nil {
		return nil, err
	}
	lo, err := s.Quantile(0.001)
	if err != nil {
		return nil, err
	}
	hi, err := s.Quantile(0.999)
	if err != nil {
		return nil, err
	}
	if hi <= lo {
		hi = lo + 1
	}
	edges := make([]float64, fig4Bins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(fig4Bins)
	}
	trueBins := make([]float64, fig4Bins)
	for _, x := range ref {
		idx := int(float64(fig4Bins) * (x - lo) / (hi - lo))
		if idx < 0 {
			idx = 0
		}
		if idx >= fig4Bins {
			idx = fig4Bins - 1
		}
		trueBins[idx] += 1 / float64(len(ref))
	}
	return &compareCase{
		draw:     draw,
		trueMean: mean,
		trueVar:  variance,
		edges:    edges,
		trueBins: trueBins,
	}, nil
}

// compareMetrics accumulates Fig 5(a)/(b) metrics: per-statistic ratios of
// bootstrap to analytical interval lengths, and bootstrap miss rates.
type compareMetrics struct {
	ratioBin, ratioMean, ratioVar float64
	missBin, missMean, missVar    float64
	trials, binTrials             float64
}

// runCompare executes one trial: draw m = n·r values, learn the result
// histogram, compute analytical (Theorem 1) and bootstrap
// (BOOTSTRAP-ACCURACY-INFO) intervals, and score them.
func (cm *compareMetrics) runCompare(c *compareCase, n, r int, rng *dist.Rand) error {
	values, err := c.draw(n*r, rng)
	if err != nil {
		return err
	}
	// The learned result distribution over fixed edges (so bin heights are
	// comparable with ground truth).
	counts := make([]int, len(c.edges)-1)
	for _, x := range values {
		idx := int(float64(len(counts)) * (x - c.edges[0]) / (c.edges[len(c.edges)-1] - c.edges[0]))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(counts) {
			idx = len(counts) - 1
		}
		counts[idx]++
	}
	hist, err := dist.HistogramFromCounts(c.edges, counts)
	if err != nil {
		return err
	}
	// Analytical path: Theorem 1 with the result distribution's moments.
	an, err := accuracy.ForDistribution(hist, n, fig4Level)
	if err != nil {
		return err
	}
	// Bootstrap path: the value sequence is the algorithm's input.
	bo, err := bootstrap.AccuracyInfo(values, n, fig4Level, hist)
	if err != nil {
		return err
	}
	if an.Mean.Length() > 0 {
		cm.ratioMean += bo.Mean.Length() / an.Mean.Length()
	}
	if an.Variance.Length() > 0 {
		cm.ratioVar += bo.Variance.Length() / an.Variance.Length()
	}
	if !bo.Mean.Contains(c.trueMean) {
		cm.missMean++
	}
	if !bo.Variance.Contains(c.trueVar) {
		cm.missVar++
	}
	for i := range bo.Bins {
		if an.Bins[i].Interval.Length() > 0 {
			cm.ratioBin += bo.Bins[i].Interval.Length() / an.Bins[i].Interval.Length()
			cm.binTrials++
		}
		if !bo.Bins[i].Interval.Contains(c.trueBins[i]) {
			cm.missBin += 1 / float64(len(bo.Bins))
		}
	}
	cm.trials++
	return nil
}

func (cm *compareMetrics) figure(id, title, notes string) *Figure {
	return &Figure{
		ID:     id,
		Title:  title,
		XLabel: "metric",
		YLabel: "value",
		Series: []Series{
			{Name: "bin heights", XLabels: []string{"interval len. ratio", "miss rate"},
				Y: []float64{cm.ratioBin / cm.binTrials, cm.missBin / cm.trials}},
			{Name: "mean", XLabels: []string{"interval len. ratio", "miss rate"},
				Y: []float64{cm.ratioMean / cm.trials, cm.missMean / cm.trials}},
			{Name: "variance", XLabels: []string{"interval len. ratio", "miss rate"},
				Y: []float64{cm.ratioVar / cm.trials, cm.missVar / cm.trials}},
		},
		Notes: notes,
	}
}

// randomExprCase builds one of the paper's random queries (§V-C): a random
// binary operator from {+, −, ×, /} or unary {SQRT∘ABS, SQUARE} over
// random distributions from the given pool.
func randomExprCase(pool []dist.Distribution, ops []string, refSize int, rng *dist.Rand) (*compareCase, error) {
	op := ops[rng.Intn(len(ops))]
	d1 := pool[rng.Intn(len(pool))]
	d2 := pool[rng.Intn(len(pool))]
	draw := func(m int, r *dist.Rand) ([]float64, error) {
		out := make([]float64, 0, m)
		for len(out) < m {
			x := d1.Sample(r)
			y := d2.Sample(r)
			var v float64
			switch op {
			case "+":
				v = x + y
			case "-":
				v = x - y
			case "*":
				v = x * y
			case "/":
				if y == 0 {
					continue
				}
				v = x / y
			case "sqrtabs":
				v = math.Sqrt(math.Abs(x))
			case "square":
				v = x * x
			default:
				return nil, fmt.Errorf("experiments: unknown op %q", op)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			out = append(out, v)
		}
		return out, nil
	}
	return newCompareCase(draw, refSize, rng)
}

// Fig5a reproduces Figure 5(a): bootstrap vs analytical confidence interval
// length ratios, and bootstrap miss rates, averaged over route-delay
// queries on the road network and random expression queries on the five
// synthetic distributions.
func Fig5a(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	rng := dist.NewRand(cfg.Seed + 3)
	net, err := cartel.NewNetwork(cfg.Segments, cfg.Seed)
	if err != nil {
		return nil, err
	}
	const n, r = 20, 20 // d.f. sample size and resample count (Example 7)
	refSize := cfg.scale(200000, 20000)
	numRoutes := cfg.scale(40, 5)
	numExprs := cfg.scale(40, 5)
	trialsPer := cfg.scale(10, 2)

	var cm compareMetrics
	// Route-delay workload: total delay of ~20-segment routes.
	for k := 0; k < numRoutes; k++ {
		route, err := net.RandomRoute(20)
		if err != nil {
			return nil, err
		}
		c, err := newCompareCase(func(m int, _ *dist.Rand) ([]float64, error) {
			return net.ObserveRoute(route, m)
		}, refSize, rng)
		if err != nil {
			return nil, err
		}
		for t := 0; t < trialsPer; t++ {
			if err := cm.runCompare(c, n, r, rng); err != nil {
				return nil, err
			}
		}
	}
	// Random expression workload over the five synthetic distributions.
	all, err := synthgen.All()
	if err != nil {
		return nil, err
	}
	pool := make([]dist.Distribution, 0, len(all))
	for _, name := range synthgen.Names() {
		pool = append(pool, all[name])
	}
	ops := []string{"+", "-", "*", "/", "sqrtabs", "square"}
	for k := 0; k < numExprs; k++ {
		c, err := randomExprCase(pool, ops, refSize, rng)
		if err != nil {
			return nil, err
		}
		for t := 0; t < trialsPer; t++ {
			if err := cm.runCompare(c, n, r, rng); err != nil {
				return nil, err
			}
		}
	}
	return cm.figure("5a",
		"bootstrap vs analytical accuracy (road routes + random queries)",
		"ratio < 1 means bootstrap intervals are shorter; miss rates are for bootstrap intervals at 90%"), nil
}

// Fig5b reproduces Figure 5(b): the same comparison restricted to normal
// inputs and operators {+, −}, where the analytical normality assumption
// holds and the two methods should be closer.
func Fig5b(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	rng := dist.NewRand(cfg.Seed + 4)
	nd, err := dist.NewNormal(1, 1)
	if err != nil {
		return nil, err
	}
	pool := []dist.Distribution{nd}
	ops := []string{"+", "-"}
	const n, r = 20, 20
	refSize := cfg.scale(200000, 20000)
	numExprs := cfg.scale(80, 8)
	trialsPer := cfg.scale(10, 2)
	var cm compareMetrics
	for k := 0; k < numExprs; k++ {
		c, err := randomExprCase(pool, ops, refSize, rng)
		if err != nil {
			return nil, err
		}
		for t := 0; t < trialsPer; t++ {
			if err := cm.runCompare(c, n, r, rng); err != nil {
				return nil, err
			}
		}
	}
	return cm.figure("5b",
		"bootstrap vs analytical accuracy (Gaussian results)",
		"normal inputs, operators {+, −}: the gap between methods narrows"), nil
}

// fig5deSampleSizes is the n sweep of Figures 5(d)/(e).
var fig5deSampleSizes = []int{10, 20, 30, 40, 50, 60, 70, 80}

// mdTestErrors runs the §V-D protocol: for each close-mean route pair, draw
// samples of size n for both routes and test "E(first) > E(second)" under
// two arrangements — H0 true (first has the smaller true mean) and H1 true
// (swapped) — counting false positives, false negatives, UNSURE answers
// (coupled mode only), and the errors of the accuracy-oblivious baseline
// that just compares sample means.
func mdTestErrors(net *cartel.Network, pairs []cartel.RoutePair, n int, coupled bool, rng *dist.Rand) (fp, fn, unsure, baseline int, err error) {
	stats := func(r cartel.Route) (hypothesis.Stats, error) {
		obs, err := net.ObserveRoute(r, n)
		if err != nil {
			return hypothesis.Stats{}, err
		}
		return hypothesis.StatsFromSample(learn.NewSample(obs))
	}
	run := func(x, y hypothesis.Stats) (hypothesis.Result, error) {
		if coupled {
			return hypothesis.CoupledMDTest(x, y, hypothesis.Greater, 0, 0.05, 0.05)
		}
		ok, err := hypothesis.MDTest(x, y, hypothesis.Greater, 0, 0.05)
		if err != nil {
			return hypothesis.Unsure, err
		}
		if ok {
			return hypothesis.True, nil
		}
		return hypothesis.False, nil
	}
	for _, p := range pairs {
		// H0 true: predicate E(first) > E(second) with FirstMean ≤ SecondMean.
		xs, err := stats(p.First)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		ys, err := stats(p.Second)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		res, err := run(xs, ys)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		switch res {
		case hypothesis.True:
			fp++
		case hypothesis.Unsure:
			unsure++
		}
		if xs.Mean > ys.Mean { // baseline: accuracy-oblivious comparison
			baseline++
		}
		// H1 true: swap the pair so the larger-mean route comes first.
		xs2, err := stats(p.Second)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		ys2, err := stats(p.First)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		res, err = run(xs2, ys2)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		switch res {
		case hypothesis.False:
			fn++
		case hypothesis.Unsure:
			unsure++
		}
		if xs2.Mean <= ys2.Mean {
			baseline++
		}
	}
	return fp, fn, unsure, baseline, nil
}

// fig5dePairs builds the §V-D workload: route pairs whose true mean delays
// are intentionally close.
func fig5dePairs(cfg Config) (*cartel.Network, []cartel.RoutePair, error) {
	net, err := cartel.NewNetwork(cfg.Segments, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	numPairs := cfg.scale(100, 10)
	// A relative mean gap of ~8% makes comparisons hard at n ≈ 10 but
	// mostly decidable by n ≈ 80 — the regime Figures 5(d)/(e) plot.
	pairs, err := net.ClosePairs(numPairs, 20, 0.08)
	if err != nil {
		return nil, nil, err
	}
	return net, pairs, nil
}

// Fig5d reproduces Figure 5(d): error counts of a single (uncoupled) mdTest
// vs sample size, alongside the error count of the no-significance baseline.
func Fig5d(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	net, pairs, err := fig5dePairs(cfg)
	if err != nil {
		return nil, err
	}
	rng := dist.NewRand(cfg.Seed + 5)
	var xs, fps, fns, bases []float64
	for _, n := range fig5deSampleSizes {
		fp, fn, _, baseline, err := mdTestErrors(net, pairs, n, false, rng)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		fps = append(fps, float64(fp))
		fns = append(fns, float64(fn))
		bases = append(bases, float64(baseline))
	}
	return &Figure{
		ID:     "5d",
		Title:  "single significance predicate errors vs sample size (mdTest, α = 0.05)",
		XLabel: "sample size",
		YLabel: fmt.Sprintf("count (out of %d comparisons per row)", 2*len(pairs)),
		Series: []Series{
			{Name: "false positives", X: xs, Y: fps},
			{Name: "false negatives", X: xs, Y: fns},
			{Name: "errors without sig. pred.", X: xs, Y: bases},
		},
		Notes: "FP stays below 5%; FN is uncontrolled for a single test",
	}, nil
}

// Fig5e reproduces Figure 5(e): the same workload with COUPLED-TESTS
// (α₁ = α₂ = 0.05) — both error counts bounded, UNSURE shrinking with n.
func Fig5e(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	net, pairs, err := fig5dePairs(cfg)
	if err != nil {
		return nil, err
	}
	rng := dist.NewRand(cfg.Seed + 6)
	var xs, fps, fns, unsures, bases []float64
	for _, n := range fig5deSampleSizes {
		fp, fn, unsure, baseline, err := mdTestErrors(net, pairs, n, true, rng)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		fps = append(fps, float64(fp))
		fns = append(fns, float64(fn))
		unsures = append(unsures, float64(unsure))
		bases = append(bases, float64(baseline))
	}
	return &Figure{
		ID:     "5e",
		Title:  "coupled tests vs sample size (mdTest, α₁ = α₂ = 0.05)",
		XLabel: "sample size",
		YLabel: fmt.Sprintf("count (out of %d comparisons per row)", 2*len(pairs)),
		Series: []Series{
			{Name: "false positives", X: xs, Y: fps},
			{Name: "false negatives", X: xs, Y: fns},
			{Name: "unsure comparisons", X: xs, Y: unsures},
			{Name: "errors without our work", X: xs, Y: bases},
		},
		Notes: "both error rates bounded; UNSURE decreases as n grows",
	}, nil
}

// fig5gDeltas is the δ sweep of Figure 5(g).
var fig5gDeltas = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}

// Fig5g reproduces Figure 5(g): power of COUPLED-TESTS mTest vs δ for the
// five synthetic distributions. The test is mTest(X, '>', (1+δ)μ) with
// n = 20; the decisively correct answer is FALSE, and power is the
// fraction of trials that reach it (the complement of UNSURE, as FP ≤ α₁).
func Fig5g(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	rng := dist.NewRand(cfg.Seed + 7)
	trials := cfg.scale(2000, 200)
	const n = 20
	var series []Series
	for _, name := range synthgen.Names() {
		d, err := synthgen.New(name)
		if err != nil {
			return nil, err
		}
		mu := d.Mean()
		var xs, ys []float64
		for _, delta := range fig5gDeltas {
			c := (1 + delta) * mu
			decided := 0
			for k := 0; k < trials; k++ {
				s, err := hypothesis.StatsFromSample(learn.NewSample(dist.SampleN(d, n, rng)))
				if err != nil {
					return nil, err
				}
				res, err := hypothesis.CoupledMTest(s, hypothesis.Greater, c, 0.05, 0.05)
				if err != nil {
					return nil, err
				}
				if res == hypothesis.False {
					decided++
				}
			}
			xs = append(xs, delta)
			ys = append(ys, float64(decided)/float64(trials))
		}
		series = append(series, Series{Name: string(name), X: xs, Y: ys})
	}
	return &Figure{
		ID:     "5g",
		Title:  "power of coupled mTest vs δ (n = 20, c = (1+δ)·μ)",
		XLabel: "δ",
		YLabel: "power of the test",
		Series: series,
		Notes:  "uniform rises fastest (smallest variance); gamma next",
	}, nil
}

// fig5hTaus is the τ sweep of Figure 5(h).
var fig5hTaus = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

// Fig5h reproduces Figure 5(h): power of coupled pTest vs τ for the five
// distributions, with δ = 0.3 and pred = "X > v" where v is chosen so that
// the true Pr(X > v) = τ(1+δ) (H1 true); power is the fraction of TRUE
// answers. The proportion statistic is quantile-based, so the curves for
// all five distributions should nearly coincide.
func Fig5h(cfg Config) (*Figure, error) {
	cfg = cfg.Normalize()
	rng := dist.NewRand(cfg.Seed + 8)
	trials := cfg.scale(2000, 200)
	const n = 20
	const delta = 0.3
	var series []Series
	for _, name := range synthgen.Names() {
		d, err := synthgen.New(name)
		if err != nil {
			return nil, err
		}
		var xs, ys []float64
		for _, tau := range fig5hTaus {
			target := tau * (1 + delta)
			if target >= 1 {
				continue
			}
			v := d.Quantile(1 - target) // Pr(X > v) = τ(1+δ)
			decided := 0
			for k := 0; k < trials; k++ {
				s := learn.NewSample(dist.SampleN(d, n, rng))
				phat, err := s.Proportion(func(x float64) bool { return x > v })
				if err != nil {
					return nil, err
				}
				res, err := hypothesis.CoupledPTest(phat, n, hypothesis.Greater, tau, 0.05, 0.05)
				if err != nil {
					return nil, err
				}
				if res == hypothesis.True {
					decided++
				}
			}
			xs = append(xs, tau)
			ys = append(ys, float64(decided)/float64(trials))
		}
		series = append(series, Series{Name: string(name), X: xs, Y: ys})
	}
	return &Figure{
		ID:     "5h",
		Title:  "power of coupled pTest vs τ (n = 20, δ = 0.3, true Pr = τ(1+δ))",
		XLabel: "τ",
		YLabel: "power of the test",
		Series: series,
		Notes:  "quantile-based: the five curves nearly coincide",
	}, nil
}
