// Package synthgen generates the paper's synthetic datasets (§V-A),
// replacing its use of the R statistical package: five common distributions
// with the paper's exact parameters — exponential(λ=1), Gamma(k=2, θ=2),
// normal(μ=1, σ²=1), uniform(0, 1), and Weibull(λ=1, k=1).
package synthgen

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/learn"
)

// Name identifies one of the paper's five synthetic distributions.
type Name string

// The five distribution names, in the paper's Figure 4(d) order.
const (
	Exponential Name = "exponential"
	Gamma       Name = "gamma"
	Normal      Name = "normal"
	Uniform     Name = "uniform"
	Weibull     Name = "weibull"
)

// Names returns the five distribution names in presentation order.
func Names() []Name {
	return []Name{Exponential, Gamma, Normal, Uniform, Weibull}
}

// New returns the named distribution with the paper's parameters.
func New(n Name) (dist.Distribution, error) {
	switch n {
	case Exponential:
		return dist.NewExponential(1)
	case Gamma:
		return dist.NewGamma(2, 2)
	case Normal:
		return dist.NewNormal(1, 1)
	case Uniform:
		return dist.NewUniform(0, 1)
	case Weibull:
		return dist.NewWeibull(1, 1)
	}
	return nil, fmt.Errorf("synthgen: unknown distribution %q", n)
}

// All returns all five distributions keyed by name.
func All() (map[Name]dist.Distribution, error) {
	out := make(map[Name]dist.Distribution, 5)
	for _, n := range Names() {
		d, err := New(n)
		if err != nil {
			return nil, err
		}
		out[n] = d
	}
	return out, nil
}

// Sample draws an iid sample of the named distribution.
func Sample(n Name, size int, rng *dist.Rand) (*learn.Sample, error) {
	d, err := New(n)
	if err != nil {
		return nil, err
	}
	if size < 0 {
		return nil, fmt.Errorf("synthgen: negative sample size %d", size)
	}
	return learn.NewSample(dist.SampleN(d, size, rng)), nil
}
