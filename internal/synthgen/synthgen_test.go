package synthgen

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func TestNamesAndAll(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("All() returned %d distributions", len(all))
	}
	for _, n := range names {
		if all[n] == nil {
			t.Errorf("missing %s", n)
		}
	}
}

func TestPaperParameters(t *testing.T) {
	cases := []struct {
		name     Name
		mean, sd float64
	}{
		{Exponential, 1, 1},                 // λ=1
		{Gamma, 4, math.Sqrt(8)},            // k=2, θ=2
		{Normal, 1, 1},                      // μ=1, σ²=1
		{Uniform, 0.5, math.Sqrt(1.0 / 12)}, // [0,1]
		{Weibull, 1, 1},                     // λ=1, k=1 == Exp(1)
	}
	for _, c := range cases {
		d, err := New(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.Mean()-c.mean) > 1e-9 {
			t.Errorf("%s mean = %g, want %g", c.name, d.Mean(), c.mean)
		}
		if math.Abs(math.Sqrt(d.Variance())-c.sd) > 1e-9 {
			t.Errorf("%s sd = %g, want %g", c.name, math.Sqrt(d.Variance()), c.sd)
		}
	}
	if _, err := New("cauchy"); err == nil {
		t.Error("unknown name: want error")
	}
}

func TestSample(t *testing.T) {
	rng := dist.NewRand(5)
	s, err := Sample(Gamma, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 1000 {
		t.Fatalf("size = %d", s.Size())
	}
	mean, _ := s.Mean()
	if math.Abs(mean-4) > 0.5 {
		t.Errorf("gamma sample mean %g, want ≈4", mean)
	}
	if _, err := Sample(Gamma, -1, rng); err == nil {
		t.Error("negative size: want error")
	}
	if _, err := Sample("nope", 10, rng); err == nil {
		t.Error("unknown name: want error")
	}
}
