package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/randvar"
	"repro/internal/stream"
)

func testRow(t *testing.T, mu float64, n int) IngestRow {
	t.Helper()
	row, err := raceRow(1, mu, n)
	if err != nil {
		t.Fatal(err)
	}
	return row
}

func TestIngestBatchBasics(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, err := e.IngestBatch("traffic", nil, nil); err == nil {
		t.Error("empty batch: want error")
	}
	if _, err := e.IngestBatch("nosuch", []IngestRow{testRow(t, 20, 30)}, nil); err == nil {
		t.Error("unknown stream: want error")
	}
	// A malformed row (arity mismatch) aborts before sequencing.
	seq0 := e.Seq()
	bad := IngestRow{Fields: []randvar.Field{randvar.Det(1)}}
	if _, err := e.IngestBatch("traffic", []IngestRow{testRow(t, 20, 30), bad}, nil); err == nil {
		t.Error("malformed row: want error")
	}
	if e.Seq() != seq0 {
		t.Errorf("failed batch consumed sequence numbers: %d -> %d", seq0, e.Seq())
	}
}

// TestIngestBatchCommitAbort: a commit-hook error must leave the engine
// untouched — no sequence numbers consumed, no query pushed.
func TestIngestBatchCommitAbort(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Bind("q", q); err != nil {
		t.Fatal(err)
	}
	seq0 := e.Seq()
	boom := errors.New("journal down")
	_, err = e.IngestBatch("traffic", []IngestRow{testRow(t, 20, 30)}, func() error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the commit error", err)
	}
	if e.Seq() != seq0 {
		t.Errorf("aborted batch consumed sequence numbers: %d -> %d", seq0, e.Seq())
	}
	if st := q.Stats(); st.In != 0 {
		t.Errorf("aborted batch pushed %d tuples", st.In)
	}
}

// TestIngestBatchRouting: results come back keyed and sorted by query id,
// only for queries bound to the target stream, and Unbind stops routing.
func TestIngestBatchRouting(t *testing.T) {
	e := newTestEngine(t, Config{})
	other, err := stream.NewSchema("other", stream.Column{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStream(other); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"b", "a"} { // bind out of order; results must sort
		q, err := e.Compile("SELECT road_id FROM traffic")
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Bind(id, q); err != nil {
			t.Fatal(err)
		}
	}
	qo, err := e.Compile("SELECT x FROM other")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Bind("zother", qo); err != nil {
		t.Fatal(err)
	}
	if err := e.Bind("a", qo); err == nil || !strings.Contains(err.Error(), "already bound") {
		t.Errorf("duplicate bind: got %v", err)
	}

	results, err := e.IngestBatch("traffic", []IngestRow{testRow(t, 20, 30), testRow(t, 25, 30)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].ID != "a" || results[1].ID != "b" {
		t.Fatalf("results = %+v, want queries [a b]", results)
	}
	for _, qr := range results {
		if qr.Err != nil || len(qr.Results) != 2 {
			t.Fatalf("query %s: err=%v results=%d, want 2 clean results", qr.ID, qr.Err, len(qr.Results))
		}
	}
	// Tuples in one batch get consecutive sequence numbers, and each query
	// sees them in arrival order.
	if s0, s1 := results[0].Results[0].Tuple.Seq, results[0].Results[1].Tuple.Seq; s1 != s0+1 {
		t.Errorf("batch seqs = %d,%d, want consecutive", s0, s1)
	}
	if st := e.Bound("zother").Stats(); st.In != 0 {
		t.Errorf("other-stream query saw %d tuples, want 0", st.In)
	}

	if !e.Unbind("b") || e.Unbind("b") {
		t.Error("Unbind: want true then false")
	}
	results, err = e.IngestBatch("traffic", []IngestRow{testRow(t, 30, 30)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != "a" {
		t.Fatalf("after Unbind results = %+v, want only [a]", results)
	}
}

// TestIngestBatchSequencing: a batch consumes exactly one sequence number
// per row, and the commit hook runs exactly once per batch (the
// durability layer relies on both).
func TestIngestBatchSequencing(t *testing.T) {
	e := newTestEngine(t, Config{})
	seq0 := e.Seq()
	commits := 0
	rows := []IngestRow{testRow(t, 20, 30), testRow(t, 21, 30), testRow(t, 22, 30)}
	if _, err := e.IngestBatch("traffic", rows, func() error {
		commits++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if commits != 1 {
		t.Errorf("commit hook ran %d times, want 1", commits)
	}
	if got := e.Seq(); got != seq0+uint64(len(rows)) {
		t.Errorf("seq after batch = %d, want %d + %d rows", got, seq0, len(rows))
	}
}
