package core

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// TestGroupByAggregate: per-group count windows with the group key in the
// select list.
func TestGroupByAggregate(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id, AVG(delay) FROM traffic GROUP BY road_id WINDOW 2 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	// Interleave two groups; each emits once its own window fills.
	var results []Result
	push := func(road, mu float64) {
		res, err := q.Push(trafficTuple(t, e, road, mu, 20, 0, 10))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res...)
	}
	push(1, 10)
	push(2, 100)
	if len(results) != 0 {
		t.Fatalf("no group window is full yet: %v", results)
	}
	push(1, 20) // group 1 full: AVG = 15
	push(2, 200)
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	r1, r2 := results[0], results[1]
	approx(t, "group 1 key", r1.Tuple.Fields[0].Dist.Mean(), 1, 0)
	approx(t, "group 1 AVG", r1.Tuple.Fields[1].Dist.Mean(), 15, 1e-9)
	approx(t, "group 2 key", r2.Tuple.Fields[0].Dist.Mean(), 2, 0)
	approx(t, "group 2 AVG", r2.Tuple.Fields[1].Dist.Mean(), 150, 1e-9)
	// Sliding within a group.
	push(1, 30) // window now {20, 30} → 25
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	approx(t, "group 1 slide", results[2].Tuple.Fields[1].Dist.Mean(), 25, 1e-9)
}

func TestGroupByErrors(t *testing.T) {
	e := newTestEngine(t, Config{})
	bad := []string{
		"SELECT road_id, AVG(delay) FROM traffic GROUP BY ghost WINDOW 2 ROWS",
		"SELECT road_id, AVG(delay) FROM traffic GROUP BY delay WINDOW 2 ROWS",  // probabilistic key
		"SELECT delay2, AVG(delay) FROM traffic GROUP BY road_id WINDOW 2 ROWS", // scalar not the key
		"SELECT road_id FROM traffic GROUP BY road_id",                          // no aggregate
		"SELECT * FROM traffic GROUP BY road_id",                                // star + group
		"SELECT road_id, AVG(delay) FROM traffic GROUP BY road_id",              // no window
	}
	for _, s := range bad {
		if _, err := e.Compile(s); err == nil {
			t.Errorf("Compile(%q): want error", s)
		}
	}
}

// TestTimeWindowAggregate: WINDOW n SECONDS evicts by tuple timestamp and
// emits on every arrival.
func TestTimeWindowAggregate(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT AVG(delay) FROM traffic WINDOW 10 SECONDS")
	if err != nil {
		t.Fatal(err)
	}
	push := func(ts int64, mu float64) []Result {
		tp := trafficTuple(t, e, 1, mu, 20, 0, 10)
		tp.Time = ts
		res, err := q.Push(tp)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r := push(0, 10)
	if len(r) != 1 {
		t.Fatalf("time windows emit on every arrival, got %d", len(r))
	}
	approx(t, "avg of one", r[0].Tuple.Fields[0].Dist.Mean(), 10, 1e-9)
	r = push(5, 20)
	approx(t, "avg of both", r[0].Tuple.Fields[0].Dist.Mean(), 15, 1e-9)
	// t=15: the t=0 tuple (age 15 > 10) is evicted, t=5 remains.
	r = push(15, 40)
	approx(t, "avg after eviction", r[0].Tuple.Fields[0].Dist.Mean(), 30, 1e-9)
	// Out-of-order arrival errors.
	tp := trafficTuple(t, e, 1, 10, 20, 0, 10)
	tp.Time = 1
	if _, err := q.Push(tp); err == nil {
		t.Error("out-of-order tuple: want error")
	}
}

// TestGroupedTimeWindow combines GROUP BY with a time window.
func TestGroupedTimeWindow(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id, COUNT(delay) FROM traffic GROUP BY road_id WINDOW 10 SECONDS")
	if err != nil {
		t.Fatal(err)
	}
	push := func(road float64, ts int64) []Result {
		tp := trafficTuple(t, e, road, 10, 20, 0, 10)
		tp.Time = ts
		res, err := q.Push(tp)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	push(1, 0)
	push(1, 5)
	r := push(1, 8)
	approx(t, "group 1 count", r[0].Tuple.Fields[1].Dist.Mean(), 3, 0)
	// A different group has its own (empty) window.
	r = push(2, 9)
	approx(t, "group 2 count", r[0].Tuple.Fields[1].Dist.Mean(), 1, 0)
	// Old tuples of group 1 expire independently.
	r = push(1, 20)
	approx(t, "group 1 after expiry", r[0].Tuple.Fields[1].Dist.Mean(), 1, 0)
}

// joinEngine builds an engine with two streams for join tests.
func joinEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(Config{Method: AccuracyAnalytical})
	if err != nil {
		t.Fatal(err)
	}
	roads, err := stream.NewSchema("roads",
		stream.Column{Name: "rid"},
		stream.Column{Name: "delay", Probabilistic: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	weather, err := stream.NewSchema("weather",
		stream.Column{Name: "rid"},
		stream.Column{Name: "rain", Probabilistic: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStream(roads); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStream(weather); err != nil {
		t.Fatal(err)
	}
	return e
}

func joinTuple(t *testing.T, e *Engine, streamName string, key, mu float64, n int) *stream.Tuple {
	t.Helper()
	nd, err := dist.NewNormal(mu, 25)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.NewTuple(streamName, []randvar.Field{randvar.Det(key), {Dist: nd, N: n}})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestJoinBasic: tuples match on equal deterministic keys, probabilities
// multiply, and qualified columns are selectable.
func TestJoinBasic(t *testing.T) {
	e := joinEngine(t)
	q, err := e.Compile(
		"SELECT roads.delay, weather.rain FROM roads JOIN weather ON roads.rid = weather.rid WINDOW 16 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	// Push a road tuple first: no match yet.
	res, err := q.Push(joinTuple(t, e, "roads", 7, 60, 20))
	if err != nil || len(res) != 0 {
		t.Fatalf("no match expected: %v, %v", res, err)
	}
	// Matching weather tuple arrives: one joined result.
	res, err = q.Push(joinTuple(t, e, "weather", 7, 3, 30))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	out := res[0].Tuple
	approx(t, "joined delay", out.Fields[0].Dist.Mean(), 60, 1e-9)
	approx(t, "joined rain", out.Fields[1].Dist.Mean(), 3, 1e-9)
	if out.Fields[0].N != 20 || out.Fields[1].N != 30 {
		t.Errorf("sample sizes lost: %d, %d", out.Fields[0].N, out.Fields[1].N)
	}
	// Non-matching key: nothing.
	res, err = q.Push(joinTuple(t, e, "weather", 8, 5, 30))
	if err != nil || len(res) != 0 {
		t.Fatalf("key mismatch: %v, %v", res, err)
	}
	if q.Stats().Joined != 1 {
		t.Errorf("stats = %+v", q.Stats())
	}
}

// TestJoinProbabilityAndWhere: membership probabilities multiply across
// sides and WHERE applies to the combined tuple.
func TestJoinProbabilityAndWhere(t *testing.T) {
	e := joinEngine(t)
	q, err := e.Compile(
		"SELECT roads.delay FROM roads JOIN weather ON rid = rid WHERE weather.rain > 3 WINDOW 8 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	left := joinTuple(t, e, "roads", 1, 60, 20)
	left.Prob = 0.5
	left.ProbN = 10
	if _, err := q.Push(left); err != nil {
		t.Fatal(err)
	}
	right := joinTuple(t, e, "weather", 1, 3, 40) // P(rain > 3) = 0.5
	right.Prob = 0.8
	res, err := q.Push(right)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	// 0.5 (left) × 0.8 (right) × 0.5 (WHERE) = 0.2.
	approx(t, "joined prob", res[0].Tuple.Prob, 0.2, 1e-9)
	// ProbN: min(left 10, rain field 40) = 10.
	if res[0].Tuple.ProbN != 10 {
		t.Errorf("ProbN = %d, want 10", res[0].Tuple.ProbN)
	}
}

// TestJoinExpressionAcrossStreams evaluates an arithmetic expression over
// columns of both sides, checking d.f. propagation (Lemma 3) across the
// join.
func TestJoinExpressionAcrossStreams(t *testing.T) {
	e := joinEngine(t)
	q, err := e.Compile(
		"SELECT (roads.delay + weather.rain) / 2 AS mix FROM roads JOIN weather ON rid = rid")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Push(joinTuple(t, e, "roads", 1, 60, 15)); err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(joinTuple(t, e, "weather", 1, 10, 10))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	f := res[0].Tuple.Fields[0]
	approx(t, "mix mean", f.Dist.Mean(), 35, 1e-9)
	if f.N != 10 {
		t.Errorf("d.f. size = %d, want min(15,10)", f.N)
	}
	if res[0].Fields["mix"] == nil {
		t.Error("missing accuracy on joined expression")
	}
}

// TestJoinWindowEviction: tuples outside the per-side window no longer
// match.
func TestJoinWindowEviction(t *testing.T) {
	e := joinEngine(t)
	q, err := e.Compile(
		"SELECT roads.delay FROM roads JOIN weather ON rid = rid WINDOW 2 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	// Fill the roads window beyond capacity; key 1 is evicted.
	for key := 1.0; key <= 3; key++ {
		if _, err := q.Push(joinTuple(t, e, "roads", key, 60, 20)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := q.Push(joinTuple(t, e, "weather", 1, 5, 20))
	if err != nil || len(res) != 0 {
		t.Fatalf("evicted key should not match: %v, %v", res, err)
	}
	res, err = q.Push(joinTuple(t, e, "weather", 3, 5, 20))
	if err != nil || len(res) != 1 {
		t.Fatalf("in-window key should match: %v, %v", res, err)
	}
}

// TestJoinMultipleMatches: one arrival can join with several retained
// tuples.
func TestJoinMultipleMatches(t *testing.T) {
	e := joinEngine(t)
	q, err := e.Compile("SELECT weather.rain FROM roads JOIN weather ON rid = rid WINDOW 8 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := q.Push(joinTuple(t, e, "roads", 5, 60, 20)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := q.Push(joinTuple(t, e, "weather", 5, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d, want 3", len(res))
	}
}

func TestJoinCompileErrors(t *testing.T) {
	e := joinEngine(t)
	bad := []string{
		"SELECT x FROM roads JOIN nosuch ON rid = rid",
		"SELECT x FROM nosuch JOIN weather ON rid = rid",
		"SELECT roads.delay FROM roads JOIN weather ON ghost = rid",
		"SELECT roads.delay FROM roads JOIN weather ON rid = ghost",
		"SELECT roads.delay FROM roads JOIN weather ON delay = rid",                  // probabilistic key
		"SELECT AVG(roads.delay) FROM roads JOIN weather ON rid = rid WINDOW 4 ROWS", // agg over join
		"SELECT roads.delay FROM roads JOIN weather ON rid = rid WINDOW 4 SECONDS",   // time join
	}
	for _, s := range bad {
		if _, err := e.Compile(s); err == nil {
			t.Errorf("Compile(%q): want error", s)
		}
	}
	// Self-join rejected.
	if _, err := e.Compile("SELECT roads.delay FROM roads JOIN roads ON rid = rid"); err == nil {
		t.Error("self-join: want error")
	}
	// Pushing an unrelated stream into a join errors.
	q, err := e.Compile("SELECT roads.delay FROM roads JOIN weather ON rid = rid")
	if err != nil {
		t.Fatal(err)
	}
	other, _ := stream.NewSchema("other", stream.Column{Name: "x"})
	if err := e.RegisterStream(other); err != nil {
		t.Fatal(err)
	}
	tp, _ := stream.NewTuple(other, []randvar.Field{randvar.Det(1)})
	if _, err := q.Push(tp); err == nil {
		t.Error("unrelated stream: want error")
	}
}

// TestKSTestPredicate: the KSTEST SQL predicate detects distribution
// change between two probabilistic columns.
func TestKSTestPredicate(t *testing.T) {
	e := newTestEngine(t, Config{})
	// delay ~ N(60,100) vs delay2 ~ N(120,100): clearly different.
	q, err := e.Compile("SELECT road_id FROM traffic WHERE KSTEST(delay, delay2, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(trafficTuple(t, e, 1, 60, 80, 120, 80))
	if err != nil || len(res) != 1 {
		t.Fatalf("different distributions: %v, %v", res, err)
	}
	// Same distribution: not significant → dropped.
	res, err = q.Push(trafficTuple(t, e, 2, 60, 80, 60, 80))
	if err != nil || len(res) != 0 {
		t.Fatalf("same distributions: %v, %v", res, err)
	}
	// Coupled form answers FALSE (same, high power) → dropped, and
	// UNSURE (tiny n) → kept with the flag.
	qc, err := e.Compile("SELECT road_id FROM traffic WHERE KSTEST(delay, delay2, 0.2, 0.05, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	res, err = qc.Push(trafficTuple(t, e, 3, 60, 2000, 60, 2000))
	if err != nil || len(res) != 0 {
		t.Fatalf("coupled same: %v, %v", res, err)
	}
	res, err = qc.Push(trafficTuple(t, e, 4, 60, 3, 60, 3))
	if err != nil || len(res) != 1 || !res[0].Unsure {
		t.Fatalf("coupled tiny-n should be UNSURE: %v, %v", res, err)
	}
	// Compile errors.
	bad := []string{
		"SELECT road_id FROM traffic WHERE KSTEST(delay, delay2)",
		"SELECT road_id FROM traffic WHERE KSTEST(delay, delay2, 2)",
		"SELECT road_id FROM traffic WHERE KSTEST(delay, ghost, 0.05)",
		"SELECT road_id FROM traffic WHERE KSTEST(1+1, delay2, 0.05)",
		"SELECT KSTEST(delay, delay2, 0.05) FROM traffic",
	}
	for _, s := range bad {
		if _, err := e.Compile(s); err == nil {
			t.Errorf("Compile(%q): want error", s)
		}
	}
	// Runtime error on missing sample sizes.
	tp := trafficTuple(t, e, 5, 60, 80, 120, 80)
	tp.Fields[1].N = 0
	if _, err := q.Push(tp); err == nil {
		t.Error("KSTEST without sample size: want error")
	}
}

// TestExplain covers the plan renderer across query shapes.
func TestExplain(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyBootstrap})
	cases := []struct {
		sql      string
		contains []string
	}{
		{
			"SELECT road_id, (delay + delay2) / 2 AS avg2 FROM traffic WHERE delay > 50",
			[]string{"source: stream traffic", "filter:", "passthrough", "linear", "bootstrap"},
		},
		{
			"SELECT road_id, AVG(delay) FROM traffic GROUP BY road_id WINDOW 5 ROWS",
			[]string{"grouped by road_id", "count window of 5 rows", "AVG(delay)", "Gaussian closed form"},
		},
		{
			"SELECT AVG(delay) FROM traffic WINDOW 30 SECONDS",
			[]string{"time window of 30 seconds"},
		},
		{
			"SELECT SQRT(ABS(delay)) AS r FROM traffic",
			[]string{"Monte Carlo"},
		},
	}
	for _, c := range cases {
		q, err := e.Compile(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		plan := q.Explain()
		for _, want := range c.contains {
			if !strings.Contains(plan, want) {
				t.Errorf("Explain(%s) missing %q:\n%s", c.sql, want, plan)
			}
		}
	}
	// Join plan.
	je := joinEngine(t)
	q, err := je.Compile("SELECT roads.delay FROM roads JOIN weather ON rid = rid WINDOW 8 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	plan := q.Explain()
	if !strings.Contains(plan, "equi-join roads ⋈ weather") || !strings.Contains(plan, "window 8 rows per side") {
		t.Errorf("join plan:\n%s", plan)
	}
}
