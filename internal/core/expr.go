package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/randvar"
	"repro/internal/sql"
	"repro/internal/stream"
)

// compiledExpr is a scalar expression compiled against a schema: it
// evaluates to one random-variable field per input tuple, propagating d.f.
// sample sizes (Lemma 3) and using the Gaussian closed form when the
// expression is linear and the inputs allow it.
type compiledExpr struct {
	label   string
	cols    []int // referenced column indices, in argument order
	fn      randvar.Func
	linear  []float64 // per-cols weights when the expression is linear
	linOK   bool
	linC    float64
	probCol bool // at least one referenced column is probabilistic
}

// compileScalarExpr compiles expr against schema. Aggregate and predicate
// functions are rejected here; they are handled by the query planner.
func compileScalarExpr(schema *stream.Schema, expr sql.Expr) (*compiledExpr, error) {
	ce := &compiledExpr{label: expr.String()}
	colPos := map[int]int{} // column index -> argument position
	argOf := func(idx int) int {
		if pos, ok := colPos[idx]; ok {
			return pos
		}
		pos := len(ce.cols)
		colPos[idx] = pos
		ce.cols = append(ce.cols, idx)
		return pos
	}
	fn, err := buildScalarFn(schema, expr, argOf)
	if err != nil {
		return nil, err
	}
	ce.fn = fn
	for _, idx := range ce.cols {
		if schema.Columns[idx].Probabilistic {
			ce.probCol = true
		}
	}
	// Linearity detection enables the Gaussian fast path.
	weights, c, ok := linearCombination(schema, expr, argOf)
	if ok {
		ce.linear = make([]float64, len(ce.cols))
		for pos, w := range weights {
			ce.linear[pos] = w
		}
		ce.linC = c
		ce.linOK = true
	}
	return ce, nil
}

// buildScalarFn recursively compiles expr into a function over the argument
// vector. argOf interns column indices into argument positions.
func buildScalarFn(schema *stream.Schema, expr sql.Expr, argOf func(int) int) (randvar.Func, error) {
	switch e := expr.(type) {
	case *sql.NumberLit:
		v := e.Value
		return func([]float64) (float64, error) { return v, nil }, nil
	case *sql.ColumnRef:
		idx, ok := schema.Index(e.Name)
		if !ok {
			return nil, fmt.Errorf("core: unknown column %q in %q", e.Name, schema.Name)
		}
		pos := argOf(idx)
		return func(a []float64) (float64, error) { return a[pos], nil }, nil
	case *sql.UnaryExpr:
		x, err := buildScalarFn(schema, e.X, argOf)
		if err != nil {
			return nil, err
		}
		return func(a []float64) (float64, error) {
			v, err := x(a)
			return -v, err
		}, nil
	case *sql.BinaryExpr:
		l, err := buildScalarFn(schema, e.L, argOf)
		if err != nil {
			return nil, err
		}
		r, err := buildScalarFn(schema, e.R, argOf)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "+":
			return func(a []float64) (float64, error) {
				lv, err := l(a)
				if err != nil {
					return 0, err
				}
				rv, err := r(a)
				return lv + rv, err
			}, nil
		case "-":
			return func(a []float64) (float64, error) {
				lv, err := l(a)
				if err != nil {
					return 0, err
				}
				rv, err := r(a)
				return lv - rv, err
			}, nil
		case "*":
			return func(a []float64) (float64, error) {
				lv, err := l(a)
				if err != nil {
					return 0, err
				}
				rv, err := r(a)
				return lv * rv, err
			}, nil
		case "/":
			return func(a []float64) (float64, error) {
				lv, err := l(a)
				if err != nil {
					return 0, err
				}
				rv, err := r(a)
				if err != nil {
					return 0, err
				}
				if rv == 0 {
					return math.NaN(), nil // dropped by the Monte Carlo loop
				}
				return lv / rv, nil
			}, nil
		}
		return nil, fmt.Errorf("core: unsupported arithmetic operator %q", e.Op)
	case *sql.CallExpr:
		if isAggregate(e.Func) {
			return nil, fmt.Errorf("core: aggregate %s not allowed in a scalar expression", e.Func)
		}
		unary := func(f func(float64) float64) (randvar.Func, error) {
			if len(e.Args) != 1 {
				return nil, fmt.Errorf("core: %s takes 1 argument, got %d", e.Func, len(e.Args))
			}
			x, err := buildScalarFn(schema, e.Args[0], argOf)
			if err != nil {
				return nil, err
			}
			return func(a []float64) (float64, error) {
				v, err := x(a)
				return f(v), err
			}, nil
		}
		switch e.Func {
		case "SQRT":
			return unary(func(v float64) float64 {
				if v < 0 {
					return math.NaN()
				}
				return math.Sqrt(v)
			})
		case "ABS":
			return unary(math.Abs)
		case "SQUARE":
			return unary(func(v float64) float64 { return v * v })
		case "EXP":
			return unary(math.Exp)
		case "LN":
			return unary(func(v float64) float64 {
				if v <= 0 {
					return math.NaN()
				}
				return math.Log(v)
			})
		}
		return nil, fmt.Errorf("core: unknown function %s", e.Func)
	case *sql.StringLit:
		return nil, fmt.Errorf("core: string literal %s in scalar expression", e)
	case *sql.Star:
		return nil, fmt.Errorf("core: '*' not allowed inside an expression")
	}
	return nil, fmt.Errorf("core: %s is not a scalar expression", expr)
}

// linearCombination detects expressions of the form Σ wᵢ·colᵢ + c. It
// returns per-argument-position weights; ok is false for any non-linear
// construct.
func linearCombination(schema *stream.Schema, expr sql.Expr, argOf func(int) int) (map[int]float64, float64, bool) {
	switch e := expr.(type) {
	case *sql.NumberLit:
		return map[int]float64{}, e.Value, true
	case *sql.ColumnRef:
		idx, ok := schema.Index(e.Name)
		if !ok {
			return nil, 0, false
		}
		return map[int]float64{argOf(idx): 1}, 0, true
	case *sql.UnaryExpr:
		w, c, ok := linearCombination(schema, e.X, argOf)
		if !ok {
			return nil, 0, false
		}
		for k := range w {
			w[k] = -w[k]
		}
		return w, -c, true
	case *sql.BinaryExpr:
		lw, lc, lok := linearCombination(schema, e.L, argOf)
		rw, rc, rok := linearCombination(schema, e.R, argOf)
		if !lok || !rok {
			return nil, 0, false
		}
		switch e.Op {
		case "+", "-":
			sign := 1.0
			if e.Op == "-" {
				sign = -1
			}
			for k, v := range rw {
				lw[k] += sign * v
			}
			return lw, lc + sign*rc, true
		case "*":
			// One side must be a pure constant.
			if len(lw) == 0 {
				for k := range rw {
					rw[k] *= lc
				}
				return rw, lc * rc, true
			}
			if len(rw) == 0 {
				for k := range lw {
					lw[k] *= rc
				}
				return lw, lc * rc, true
			}
			return nil, 0, false
		case "/":
			if len(rw) == 0 && rc != 0 {
				for k := range lw {
					lw[k] /= rc
				}
				return lw, lc / rc, true
			}
			return nil, 0, false
		}
		return nil, 0, false
	}
	return nil, 0, false
}

// eval evaluates the compiled expression over one tuple.
func (ce *compiledExpr) eval(ev *randvar.Evaluator, t *stream.Tuple) (randvar.Result, error) {
	if len(ce.cols) == 0 {
		// Constant expression.
		v, err := ce.fn(nil)
		if err != nil {
			return randvar.Result{}, err
		}
		return randvar.Result{Field: randvar.Det(v)}, nil
	}
	fields := make([]randvar.Field, len(ce.cols))
	for i, idx := range ce.cols {
		fields[i] = t.Fields[idx]
	}
	if ce.linOK {
		if f, ok, err := randvar.LinearGaussian(ce.linear, ce.linC, fields...); err != nil {
			return randvar.Result{}, err
		} else if ok {
			return randvar.Result{Field: f}, nil
		}
	}
	return ev.Apply(ce.fn, fields...)
}

// isAggregate reports whether the (upper-cased) function name is a window
// aggregate.
func isAggregate(name string) bool {
	switch name {
	case "AVG", "SUM", "COUNT", "MIN", "MAX":
		return true
	}
	return false
}

// isPredicateFunc reports whether the name is a significance predicate or
// the probability function — boolean-valued calls only legal in WHERE.
func isPredicateFunc(name string) bool {
	switch name {
	case "MTEST", "MDTEST", "PTEST", "KSTEST", "PROB":
		return true
	}
	return false
}

// defaultLabel derives an output column name from a select item.
func defaultLabel(item sql.SelectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(*sql.ColumnRef); ok {
		return c.Name
	}
	if c, ok := item.Expr.(*sql.CallExpr); ok && len(c.Args) == 1 {
		if col, ok := c.Args[0].(*sql.ColumnRef); ok {
			return strings.ToLower(c.Func) + "_" + col.Name
		}
	}
	return fmt.Sprintf("expr%d", pos+1)
}
