package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/randvar"
)

// sharedRow builds one ingest row of the traffic stream, swapping in a
// histogram delay on a stride so aggregates exercise both the Gaussian
// closed form and the Monte Carlo fallback while shared.
func sharedRow(t *testing.T, i int) IngestRow {
	t.Helper()
	road := randvar.Det(float64(i % 3))
	var d1 randvar.Field
	if i%5 == 4 {
		h, err := dist.HistogramFromCounts([]float64{50, 60, 70, 80}, []int{2, 5, 3})
		if err != nil {
			t.Fatal(err)
		}
		d1 = randvar.Field{Dist: h, N: 10}
	} else {
		nd, err := dist.NewNormal(55+float64(i%9), 100)
		if err != nil {
			t.Fatal(err)
		}
		d1 = randvar.Field{Dist: nd, N: 10 + i%4}
	}
	nd2, err := dist.NewNormal(40+float64(i%7), 100)
	if err != nil {
		t.Fatal(err)
	}
	return IngestRow{Fields: []randvar.Field{road, d1, {Dist: nd2, N: 12}}, Time: int64(i)}
}

// bindAll compiles and binds the same statements, in the same order, on an
// engine. Query ids are zero-padded so IngestBatch result order is the
// statement order.
func bindAll(t *testing.T, e *Engine, stmts []string) []*Query {
	t.Helper()
	qs := make([]*Query, len(stmts))
	for i, s := range stmts {
		q, err := e.Compile(s)
		if err != nil {
			t.Fatalf("compile %q: %v", s, err)
		}
		if err := e.Bind(fmt.Sprintf("q%03d", i), q); err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	return qs
}

// ingestBoth pushes the identical batch through two engines and demands
// bit-identical per-query results and errors.
func ingestBoth(t *testing.T, label string, ea, eb *Engine, rows []IngestRow) {
	t.Helper()
	ra, erra := ea.IngestBatch("traffic", rows, nil)
	rb, errb := eb.IngestBatch("traffic", rows, nil)
	if (erra == nil) != (errb == nil) {
		t.Fatalf("%s: batch error mismatch: %v vs %v", label, erra, errb)
	}
	if len(ra) != len(rb) {
		t.Fatalf("%s: %d vs %d query results", label, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatalf("%s: result order diverged: %s vs %s", label, ra[i].ID, rb[i].ID)
		}
		ae, be := "", ""
		if ra[i].Err != nil {
			ae = ra[i].Err.Error()
		}
		if rb[i].Err != nil {
			be = rb[i].Err.Error()
		}
		if ae != be {
			t.Fatalf("%s: query %s error mismatch:\n  a: %s\n  b: %s", label, ra[i].ID, ae, be)
		}
		if !reflect.DeepEqual(ra[i].Results, rb[i].Results) {
			t.Fatalf("%s: query %s results diverged:\n  a: %+v\n  b: %+v",
				label, ra[i].ID, ra[i].Results, rb[i].Results)
		}
	}
}

// sharedWorkload mixes identical queries (one big shared group), a group
// that shares window state but not output plans, Monte Carlo aggregates,
// filtered classes, and an unshareable query.
var sharedWorkload = []string{
	"SELECT AVG(delay) AS a FROM traffic WINDOW 4 ROWS",
	"SELECT AVG(delay) AS a FROM traffic WINDOW 4 ROWS",
	"SELECT AVG(delay) AS a FROM traffic WINDOW 4 ROWS",
	"SELECT AVG(delay) AS a FROM traffic WINDOW 4 ROWS",
	// Same key, different output plan: window shared, emissions per-member.
	"SELECT AVG(delay) AS b, COUNT(road_id) AS c FROM traffic WINDOW 4 ROWS",
	"SELECT SUM(delay2) AS s FROM traffic WINDOW 4 ROWS",
	// Monte Carlo aggregates over the shared materialized columns.
	"SELECT MIN(delay) AS lo, MAX(delay2) AS hi FROM traffic WINDOW 4 ROWS",
	// Filtered equivalence class (closed-form filter, shareable).
	"SELECT AVG(delay) AS a FROM traffic WHERE delay > 50 WINDOW 3 ROWS",
	"SELECT AVG(delay) AS a FROM traffic WHERE delay > 50 WINDOW 3 ROWS",
	// Unshareable: expression comparison may consume per-query randomness.
	"SELECT AVG(delay) AS a FROM traffic WHERE delay > delay2 WINDOW 4 ROWS",
}

// TestSharedStateEquivalence pins the planner's core promise: enabling
// shared per-(stream, filter, window, backend) state changes no output bit
// relative to fully independent queries, across accuracy methods.
func TestSharedStateEquivalence(t *testing.T) {
	for _, m := range []AccuracyMethod{AccuracyNone, AccuracyAnalytical, AccuracyBootstrap} {
		t.Run(m.String(), func(t *testing.T) {
			cfg := Config{Method: m, Seed: 7, MonteCarloValues: 64, BootstrapResamples: 40}
			shared := newTestEngine(t, cfg)
			indep := newTestEngine(t, func() Config { c := cfg; c.NoSharedState = true; return c }())
			bindAll(t, shared, sharedWorkload)
			bindAll(t, indep, sharedWorkload)
			if g := shared.Planner().Groups(); g == 0 {
				t.Fatal("no shared groups formed")
			}
			if indep.Planner() != nil {
				t.Fatal("NoSharedState engine built a planner registry")
			}
			for i := 0; i < 30; i += 3 {
				rows := []IngestRow{sharedRow(t, i), sharedRow(t, i+1), sharedRow(t, i+2)}
				ingestBoth(t, fmt.Sprintf("batch@%d", i), shared, indep, rows)
			}
		})
	}
}

// TestSharedStateWorkersBitIdentical pins worker-count invariance with the
// planner enabled and the RNG-dependent bootstrap backend.
func TestSharedStateWorkersBitIdentical(t *testing.T) {
	cfg := Config{Method: AccuracyBootstrap, Seed: 11, MonteCarloValues: 80, BootstrapResamples: 60}
	one := newTestEngine(t, func() Config { c := cfg; c.Workers = 1; return c }())
	eight := newTestEngine(t, func() Config { c := cfg; c.Workers = 8; return c }())
	bindAll(t, one, sharedWorkload)
	bindAll(t, eight, sharedWorkload)
	for i := 0; i < 24; i += 2 {
		rows := []IngestRow{sharedRow(t, i), sharedRow(t, i+1)}
		ingestBoth(t, fmt.Sprintf("batch@%d", i), one, eight, rows)
	}
}

// TestSharedStatsEquivalence demands STATS counters (in/out/dropped/unsure)
// are indistinguishable between shared and independent runs — the shared
// path replays per-member counters rather than counting once per group.
func TestSharedStatsEquivalence(t *testing.T) {
	cfg := Config{Method: AccuracyAnalytical, Seed: 3, MinProb: 0.05}
	shared := newTestEngine(t, cfg)
	indep := newTestEngine(t, func() Config { c := cfg; c.NoSharedState = true; return c }())
	qa := bindAll(t, shared, sharedWorkload)
	qb := bindAll(t, indep, sharedWorkload)
	for i := 0; i < 20; i++ {
		ingestBoth(t, fmt.Sprintf("row@%d", i), shared, indep, []IngestRow{sharedRow(t, i)})
	}
	for i := range qa {
		if sa, sb := qa[i].Stats(), qb[i].Stats(); sa != sb {
			t.Errorf("query %d stats diverged: shared %+v, independent %+v", i, sa, sb)
		}
	}
}

// TestSharedGroupLifecycle walks registration, group accounting, EXPLAIN
// annotations, and unbind-driven teardown.
func TestSharedGroupLifecycle(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyAnalytical, Seed: 1})
	qs := bindAll(t, e, sharedWorkload)

	// Expected classes: AVG/SUM/COUNT family at window 4 (one group of 6,
	// incl. MIN/MAX member), the filtered pair at window 3, and the
	// unshareable query outside any group.
	if g := e.Planner().Groups(); g != 2 {
		t.Fatalf("Groups() = %d, want 2", g)
	}
	if h, m := e.Planner().Hits(), e.Planner().Misses(); h != 7 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 7/2", h, m)
	}
	if ex := qs[0].Explain(); !strings.Contains(ex, "plan: shared state [stream=traffic rows=4 backend=analytical] — 7 sharer(s)") {
		t.Errorf("sharer Explain missing plan line:\n%s", ex)
	}
	if ex := qs[7].Explain(); !strings.Contains(ex, `filter="delay > 50"`) || !strings.Contains(ex, "2 sharer(s)") {
		t.Errorf("filtered sharer Explain missing filter key:\n%s", ex)
	}
	if ex := qs[9].Explain(); !strings.Contains(ex, "plan: per-query state — filter may consume per-query randomness") {
		t.Errorf("unshareable Explain missing reason:\n%s", ex)
	}

	// Members of one class alias one window buffer.
	if qs[0].window != qs[1].window || qs[0].window != qs[6].window {
		t.Error("same-class members do not alias one window")
	}
	if qs[0].window == qs[7].window {
		t.Error("different classes alias one window")
	}

	// Unbinding all but one member keeps the (solo) group; the last
	// departure releases it.
	for i := 1; i <= 6; i++ {
		if !e.Unbind(fmt.Sprintf("q%03d", i)) {
			t.Fatalf("unbind q%03d failed", i)
		}
	}
	if g := e.Planner().Groups(); g != 2 {
		t.Fatalf("Groups() after partial unbind = %d, want 2", g)
	}
	if !e.Unbind("q000") {
		t.Fatal("unbind q000 failed")
	}
	if g := e.Planner().Groups(); g != 1 {
		t.Fatalf("Groups() after class teardown = %d, want 1", g)
	}
}

// TestSharedCacheInvalidation pins the emission-cache lifecycle invariant:
// within a batch every entry is consumed by every member (window-advance
// invalidation), so caches are empty at every batch boundary — the
// registration points where membership may change.
func TestSharedCacheInvalidation(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyAnalytical, Seed: 2})
	qs := bindAll(t, e, sharedWorkload)
	for i := 0; i < 12; i += 4 {
		rows := make([]IngestRow, 4)
		for j := range rows {
			rows[j] = sharedRow(t, i+j)
		}
		if _, err := e.IngestBatch("traffic", rows, nil); err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			if q.shared != nil && len(q.shared.cache) != 0 {
				t.Fatalf("after batch@%d query %d group cache holds %d entries, want 0",
					i, qi, len(q.shared.cache))
			}
		}
	}
	// Lead/follow accounting: the 7-member group must have computed each
	// sequence once and replayed it 6 times.
	g := qs[0].shared
	if g == nil {
		t.Fatal("query 0 not shared")
	}
	leads, follows := g.leads.Load(), g.follows.Load()
	if leads != 12 || follows != 12*6 {
		t.Fatalf("leads=%d follows=%d, want 12/72", leads, follows)
	}
}

// TestSharedSketchEquivalence covers sketch-backend groups: identical
// aggregate signatures share one sketch ring and fully built emissions.
func TestSharedSketchEquivalence(t *testing.T) {
	stmts := []string{
		"SELECT COUNT(delay) AS c, AVG(delay) AS a FROM traffic WINDOW 64 ROWS BACKEND SKETCH",
		"SELECT COUNT(delay) AS c, AVG(delay) AS a FROM traffic WINDOW 64 ROWS BACKEND SKETCH",
		"SELECT COUNT(delay) AS c, AVG(delay) AS a FROM traffic WINDOW 64 ROWS BACKEND SKETCH",
		// Different signature: separate sketch group under a distinct key.
		"SELECT MIN(delay) AS lo FROM traffic WINDOW 64 ROWS BACKEND SKETCH",
	}
	cfg := Config{Method: AccuracyAnalytical, Seed: 9}
	shared := newTestEngine(t, cfg)
	indep := newTestEngine(t, func() Config { c := cfg; c.NoSharedState = true; return c }())
	qs := bindAll(t, shared, stmts)
	bindAll(t, indep, stmts)
	if qs[0].sketchWin == nil || qs[0].sketchWin != qs[2].sketchWin {
		t.Fatal("sketch members do not alias one ring")
	}
	if qs[0].sketchWin == qs[3].sketchWin {
		t.Fatal("different sketch signatures share a ring")
	}
	for i := 0; i < 160; i += 8 {
		rows := make([]IngestRow, 8)
		for j := range rows {
			rows[j] = sharedRow(t, i+j)
		}
		ingestBoth(t, fmt.Sprintf("batch@%d", i), shared, indep, rows)
	}
}

// TestSharedUnbindMidStream detaches a sharer between batches and checks
// the survivors continue bit-identically to independent queries driven
// through the same unbind.
func TestSharedUnbindMidStream(t *testing.T) {
	cfg := Config{Method: AccuracyAnalytical, Seed: 5}
	shared := newTestEngine(t, cfg)
	indep := newTestEngine(t, func() Config { c := cfg; c.NoSharedState = true; return c }())
	bindAll(t, shared, sharedWorkload)
	bindAll(t, indep, sharedWorkload)
	for i := 0; i < 10; i++ {
		ingestBoth(t, fmt.Sprintf("pre@%d", i), shared, indep, []IngestRow{sharedRow(t, i)})
	}
	shared.Unbind("q001")
	indep.Unbind("q001")
	for i := 10; i < 20; i++ {
		ingestBoth(t, fmt.Sprintf("post@%d", i), shared, indep, []IngestRow{sharedRow(t, i)})
	}
}

// TestSharedThousandQueries is the scale acceptance test: one thousand
// identical-window queries form a single shared-state group and stay
// byte-identical to both an unshared engine and a different worker count.
func TestSharedThousandQueries(t *testing.T) {
	const nq = 1000
	stmts := make([]string, nq)
	for i := range stmts {
		stmts[i] = "SELECT AVG(delay) AS a FROM traffic WINDOW 8 ROWS"
	}
	cfg := Config{Method: AccuracyAnalytical, Seed: 21}
	shared := newTestEngine(t, cfg)
	indep := newTestEngine(t, func() Config { c := cfg; c.NoSharedState = true; return c }())
	w8 := newTestEngine(t, func() Config { c := cfg; c.Workers = 8; return c }())
	bindAll(t, shared, stmts)
	bindAll(t, indep, stmts)
	bindAll(t, w8, stmts)
	if g := shared.Planner().Groups(); g != 1 {
		t.Fatalf("Groups() = %d, want 1", g)
	}
	// All-Gaussian rows keep every engine on the closed form (the Monte
	// Carlo fallback's equivalence is pinned by the smaller tests above;
	// at 1000 independent queries it would dominate the suite's runtime).
	gaussianRow := func(i int) IngestRow {
		nd, err := dist.NewNormal(55+float64(i%9), 100)
		if err != nil {
			t.Fatal(err)
		}
		nd2, err := dist.NewNormal(40+float64(i%7), 100)
		if err != nil {
			t.Fatal(err)
		}
		return IngestRow{Fields: []randvar.Field{
			randvar.Det(float64(i % 3)), {Dist: nd, N: 10 + i%4}, {Dist: nd2, N: 12},
		}, Time: int64(i)}
	}
	for i := 0; i < 24; i += 8 {
		rows := make([]IngestRow, 8)
		for j := range rows {
			rows[j] = gaussianRow(i + j)
		}
		ra, err := shared.IngestBatch("traffic", rows, nil)
		if err != nil {
			t.Fatal(err)
		}
		for name, other := range map[string]*Engine{"independent": indep, "workers=8": w8} {
			rb, err := other.IngestBatch("traffic", rows, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("batch@%d: shared vs %s diverged", i, name)
			}
		}
	}
}

// TestExplainTiming smoke-tests the operator timing surface: enabling via
// the first call, per-stage counters accumulating on subsequent pushes.
func TestExplainTiming(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyAnalytical, Seed: 4})
	qs := bindAll(t, e, []string{
		"SELECT AVG(delay) AS a FROM traffic WHERE delay > 40 WINDOW 2 ROWS",
		"SELECT AVG(delay) AS a FROM traffic WHERE delay > 40 WINDOW 2 ROWS",
	})
	first := qs[0].ExplainTiming()
	if !strings.Contains(first, "collection enabled") {
		t.Errorf("first ExplainTiming missing enablement note:\n%s", first)
	}
	for i := 0; i < 6; i++ {
		if _, err := e.IngestBatch("traffic", []IngestRow{sharedRow(t, i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	out := qs[0].ExplainTiming()
	if strings.Contains(out, "collection enabled") {
		t.Errorf("second ExplainTiming repeats enablement note:\n%s", out)
	}
	for _, stage := range []string{"filter", "window", "aggregate", "accuracy"} {
		if !strings.Contains(out, "stage "+stage) {
			t.Errorf("ExplainTiming missing stage %s:\n%s", stage, out)
		}
	}
	if !strings.Contains(out, "shared group [stream=traffic rows=2 backend=analytical") {
		t.Errorf("ExplainTiming missing shared-group line:\n%s", out)
	}
	snap := qs[0].timing.Snapshot()
	if snap[0].Count == 0 {
		t.Error("filter stage never timed after enablement")
	}
}
