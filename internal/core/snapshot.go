package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// This file is the engine half of the durability subsystem: it exposes the
// complete runtime state of a compiled Query — window contents, per-group
// windows, join windows, RNG states, counters — as plain serializable
// structs, and restores them into a freshly compiled query. The checkpoint
// package handles the on-disk encoding (distributions travel through
// internal/codec); this layer guarantees that a restored query is
// observationally identical to the captured one: every subsequent Push
// draws the same variates and emits the same results bit-for-bit.

// TupleState is the serializable state of one windowed tuple.
type TupleState struct {
	Fields []randvar.Field
	Prob   float64
	ProbN  int
	Seq    uint64
	Time   int64
}

// WindowState is the serializable contents of one sliding window,
// oldest-first.
type WindowState struct {
	Tuples []TupleState
}

// GroupWindowState is the window of one GROUP BY key: exactly one of
// Window (row form) and ColWindow (columnar form) is populated.
type GroupWindowState struct {
	Key       float64
	Window    WindowState
	ColWindow *stream.ColumnWindowState
}

// QueryState is the complete mutable state of a compiled Query. Everything
// else about a query (plan, predicates, output schema) is a pure function
// of its SQL text and the engine configuration, so SQL + QueryState fully
// determine future behavior.
type QueryState struct {
	// Eval is the state of the expression evaluator's Monte Carlo RNG.
	Eval dist.RandState
	// Boot is the state of the bootstrap accuracy sampler's RNG.
	Boot dist.RandState
	// Stats are the query counters.
	Stats QueryStats
	// Window holds the ungrouped aggregate window (row-oriented count- or
	// time-based), nil when the query has none.
	Window *WindowState
	// ColWindow holds the ungrouped aggregate window in columnar form
	// (the default count-window layout); mutually exclusive with Window.
	// Either form restores into either window layout, so checkpoints
	// written by one engine configuration recover under the other.
	ColWindow *stream.ColumnWindowState
	// Groups holds per-key windows of GROUP BY queries, sorted by key.
	Groups []GroupWindowState
	// JoinLeft and JoinRight hold the symmetric join windows.
	JoinLeft  *WindowState
	JoinRight *WindowState
	// Sketch holds the sketch-backend window (BACKEND SKETCH queries);
	// mutually exclusive with the materialized window forms.
	Sketch *sketch.Window
}

// State captures the query's complete mutable state. The returned structs
// reference the query's live tuples and must be consumed (serialized)
// before the query is pushed again.
func (q *Query) State() *QueryState {
	st := &QueryState{
		Eval:  q.ev.RNG().State(),
		Boot:  q.rng.State(),
		Stats: q.stats.snapshot(),
	}
	switch {
	case q.sketchWin != nil:
		st.Sketch = q.sketchWin.Clone()
	case q.window != nil:
		st.ColWindow = q.window.State()
	case q.rowWindow != nil:
		st.Window = windowState(q.rowWindow.Tuples())
	case q.timeWindow != nil:
		st.Window = windowState(q.timeWindow.Tuples())
	}
	if q.groups != nil {
		keys := make([]float64, 0, len(q.groups))
		for k := range q.groups {
			keys = append(keys, k)
		}
		sort.Float64s(keys)
		for _, k := range keys {
			g := q.groups[k]
			gs := GroupWindowState{Key: k}
			switch {
			case g.col != nil:
				gs.ColWindow = g.col.State()
			case g.count != nil:
				gs.Window = *windowState(g.count.Tuples())
			default:
				gs.Window = *windowState(g.time.Tuples())
			}
			st.Groups = append(st.Groups, gs)
		}
	}
	if q.join != nil {
		st.JoinLeft = windowState(q.join.leftWin.Tuples())
		st.JoinRight = windowState(q.join.rightWin.Tuples())
	}
	return st
}

func windowState(tuples []*stream.Tuple) *WindowState {
	ws := &WindowState{Tuples: make([]TupleState, len(tuples))}
	for i, t := range tuples {
		ws.Tuples[i] = TupleState{
			Fields: t.Fields,
			Prob:   t.Prob,
			ProbN:  t.ProbN,
			Seq:    t.Seq,
			Time:   t.Time,
		}
	}
	return ws
}

// SetState restores a state captured with State into a freshly compiled
// query over the same SQL and engine configuration.
func (q *Query) SetState(st *QueryState) error {
	if st == nil {
		return errors.New("core: nil query state")
	}
	if err := q.ev.RNG().SetState(st.Eval); err != nil {
		return fmt.Errorf("core: evaluator RNG: %w", err)
	}
	if err := q.rng.SetState(st.Boot); err != nil {
		return fmt.Errorf("core: bootstrap RNG: %w", err)
	}
	q.stats.restore(st.Stats)
	if st.Sketch != nil {
		if q.sketchWin == nil {
			return errors.New("core: sketch state for a non-sketch query")
		}
		if err := st.Sketch.Validate(); err != nil {
			return fmt.Errorf("core: restoring sketch window: %w", err)
		}
		if st.Sketch.W != q.sketchWin.W || st.Sketch.NCols != q.sketchWin.NCols ||
			st.Sketch.B != q.sketchWin.B || st.Sketch.K != q.sketchWin.K {
			return fmt.Errorf("core: sketch window geometry (w=%d b=%d k=%d cols=%d) does not match plan (w=%d b=%d k=%d cols=%d)",
				st.Sketch.W, st.Sketch.B, st.Sketch.K, st.Sketch.NCols,
				q.sketchWin.W, q.sketchWin.B, q.sketchWin.K, q.sketchWin.NCols)
		}
		q.sketchWin = st.Sketch.Clone()
	}
	if st.Window != nil || st.ColWindow != nil {
		tuples, err := windowTuples(q.in, st.Window, st.ColWindow)
		if err != nil {
			return err
		}
		switch {
		case q.window != nil:
			if err := q.window.RestoreTuples(tuples); err != nil {
				return err
			}
		case q.rowWindow != nil:
			if err := q.rowWindow.RestoreTuples(tuples); err != nil {
				return err
			}
		case q.timeWindow != nil:
			if err := q.timeWindow.RestoreTuples(tuples); err != nil {
				return err
			}
		default:
			return errors.New("core: window state for a query without an ungrouped window")
		}
	}
	if len(st.Groups) > 0 {
		if q.groups == nil {
			return errors.New("core: group state for a query without GROUP BY")
		}
		for _, gs := range st.Groups {
			ws := &gs.Window
			if gs.ColWindow != nil {
				ws = nil
			}
			tuples, err := windowTuples(q.in, ws, gs.ColWindow)
			if err != nil {
				return err
			}
			g := &groupState{}
			switch {
			case q.stmt.Window.Seconds > 0:
				tw, err := stream.NewTimeWindow(q.stmt.Window.Seconds)
				if err != nil {
					return err
				}
				if err := tw.RestoreTuples(tuples); err != nil {
					return err
				}
				g.time = tw
			case q.eng.cfg.RowWindows:
				cw, err := stream.NewCountWindow(q.stmt.Window.Rows)
				if err != nil {
					return err
				}
				if err := cw.RestoreTuples(tuples); err != nil {
					return err
				}
				g.count = cw
			default:
				cw, err := stream.NewColumnWindow(q.in, q.stmt.Window.Rows)
				if err != nil {
					return err
				}
				if err := cw.RestoreTuples(tuples); err != nil {
					return err
				}
				g.col = cw
			}
			q.groups[gs.Key] = g
		}
	}
	if st.JoinLeft != nil || st.JoinRight != nil {
		if q.join == nil {
			return errors.New("core: join state for a non-join query")
		}
		if st.JoinLeft != nil {
			tuples, err := restoreTuples(q.join.leftSchema, st.JoinLeft)
			if err != nil {
				return err
			}
			if err := q.join.leftWin.RestoreTuples(tuples); err != nil {
				return err
			}
		}
		if st.JoinRight != nil {
			tuples, err := restoreTuples(q.join.rightSchema, st.JoinRight)
			if err != nil {
				return err
			}
			if err := q.join.rightWin.RestoreTuples(tuples); err != nil {
				return err
			}
		}
	}
	return nil
}

// windowTuples materializes a captured window — whichever form it was
// stored in — as validated row tuples, the common currency both window
// layouts restore from.
func windowTuples(schema *stream.Schema, ws *WindowState, cs *stream.ColumnWindowState) ([]*stream.Tuple, error) {
	if cs != nil {
		tuples, err := cs.Tuples(schema)
		if err != nil {
			return nil, fmt.Errorf("core: restoring columnar window: %w", err)
		}
		return tuples, nil
	}
	return restoreTuples(schema, ws)
}

// restoreTuples rebuilds window tuples against schema, revalidating each.
func restoreTuples(schema *stream.Schema, ws *WindowState) ([]*stream.Tuple, error) {
	out := make([]*stream.Tuple, len(ws.Tuples))
	for i, ts := range ws.Tuples {
		t := &stream.Tuple{
			Schema: schema,
			Fields: ts.Fields,
			Prob:   ts.Prob,
			ProbN:  ts.ProbN,
			Seq:    ts.Seq,
			Time:   ts.Time,
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("core: restoring window tuple %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// SQL returns the query's statement text as compiled (used by checkpoints
// to recompile the plan on recovery).
func (q *Query) SQL() string { return q.stmt.String() }
