package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// Sharded batched ingest. The ingest hot path no longer serializes on a
// global engine lock: every stream is a shard carrying its own mutex and
// the list of queries it feeds, and IngestBatch holds exactly the shards a
// batch can touch — the target stream plus the partner streams of any join
// query bound to it. Inserts into unrelated streams run concurrently;
// inserts into the same stream (or into streams coupled by a join)
// serialize, which is what keeps every Query single-goroutine and the
// engine bit-identical to the globally locked implementation.
//
// Lock order (outermost first): ctlMu → shard locks in sorted name order →
// seqMu. IngestBatch acquires shard locks by sorted name and revalidates
// its lock group after acquisition (a concurrent Exclusive-holding QUERY
// registration may have bound a new join between computing the group and
// locking it), so acquisition can never deadlock and never runs with a
// stale group.

var (
	mIngestBatches = metrics.Default.Counter("asdb_ingest_batches_total",
		"ingest batches applied (an INSERT is a 1-tuple batch)")
	hIngestRows = metrics.Default.Histogram("asdb_ingest_batch_rows",
		"tuples per ingest batch", batchRowBuckets)
	hShardWait = metrics.Default.Histogram("asdb_ingest_shard_wait_seconds",
		"wall time spent acquiring the shard lock group for one batch",
		metrics.DefBuckets)
	mShardRetries = metrics.Default.Counter("asdb_ingest_shard_lock_retries_total",
		"lock-group acquisitions retried because the group changed while unlocked")
)

var batchRowBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// IngestRow is one tuple of an ingest batch, pre-parse: its field values
// and its event time.
type IngestRow struct {
	Fields []randvar.Field
	Time   int64
}

// QueryResults collects one bound query's outputs for a whole batch, in
// tuple arrival order. Err carries the first push error; pushes after an
// error continue with the remaining tuples (matching single-tuple ingest,
// where one failed push never blocks later tuples), so replaying the same
// batch reproduces the same per-query state.
type QueryResults struct {
	ID      string
	Results []Result
	Err     error
}

// Bind registers a compiled query under id with the shards of its input
// stream(s), so IngestBatch routes matching tuples into it. Bind performs
// no shard locking itself: callers must either hold Exclusive (the server's
// control plane) or be single-threaded with respect to ingest (the REPL).
func (e *Engine) Bind(id string, q *Query) error {
	if q == nil {
		return errors.New("core: nil query")
	}
	if q.eng != e {
		return errors.New("core: query compiled against a different engine")
	}
	names := q.SourceStreams()
	defs := make([]*streamDef, 0, len(names))
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.bound[id]; dup {
		return fmt.Errorf("core: query id %q already bound", id)
	}
	for _, name := range names {
		def, ok := e.streams[name]
		if !ok {
			return fmt.Errorf("core: unknown stream %q", name)
		}
		defs = append(defs, def)
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].name < defs[j].name })
	bq := &boundQuery{id: id, q: q, defs: defs}
	for _, def := range defs {
		i := sort.Search(len(def.queries), func(i int) bool { return def.queries[i].id >= id })
		def.queries = append(def.queries, nil)
		copy(def.queries[i+1:], def.queries[i:])
		def.queries[i] = bq
	}
	e.bound[id] = bq
	// Planner pass at registration: join (or found) the query's
	// shared-state group. Content-equality admission means recovered
	// queries re-merge into shared groups only when their restored windows
	// hold identical contents.
	e.attachShared(q)
	return nil
}

// Unbind removes a bound query from its shards. Same locking contract as
// Bind. It reports whether the id was bound.
func (e *Engine) Unbind(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	bq, ok := e.bound[id]
	if !ok {
		return false
	}
	delete(e.bound, id)
	for _, def := range bq.defs {
		for i, cand := range def.queries {
			if cand == bq {
				def.queries = append(def.queries[:i], def.queries[i+1:]...)
				break
			}
		}
	}
	e.detachShared(bq.q)
	return true
}

// Bound returns the query bound under id, or nil.
func (e *Engine) Bound(id string) *Query {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if bq, ok := e.bound[id]; ok {
		return bq.q
	}
	return nil
}

// Exclusive quiesces the engine: it acquires every shard lock (in sorted
// name order) and returns a release function. While held, no IngestBatch
// can run, making it safe to Bind/Unbind queries, capture checkpoints, or
// mutate query state. Exclusive calls are serialized by ctlMu, so DDL and
// checkpoints never interleave.
func (e *Engine) Exclusive() (release func()) {
	e.ctlMu.Lock()
	e.mu.RLock()
	defs := make([]*streamDef, 0, len(e.streams))
	for _, def := range e.streams {
		defs = append(defs, def)
	}
	e.mu.RUnlock()
	sort.Slice(defs, func(i, j int) bool { return defs[i].name < defs[j].name })
	for _, def := range defs {
		def.mu.Lock()
	}
	return func() {
		for i := len(defs) - 1; i >= 0; i-- {
			defs[i].mu.Unlock()
		}
		e.ctlMu.Unlock()
	}
}

// SourceStreams returns the canonical (lower-cased) names of the query's
// input stream(s) — one for scans, two for joins.
func (q *Query) SourceStreams() []string {
	if q.join != nil {
		return []string{q.join.leftName, q.join.rightName}
	}
	return []string{strings.ToLower(q.in.Name)}
}

// lockGroupOf computes sd's current lock group — sd plus every shard
// reachable through a query bound to sd — sorted by name. One step of
// closure suffices: a query's defs always include all of its own input
// shards, and queries bound to a partner shard but not to sd never see
// tuples of sd. Caller must hold every shard in the group (or be computing
// a candidate group under sd.mu alone).
func lockGroupOf(sd *streamDef) []*streamDef {
	if len(sd.queries) == 0 {
		return []*streamDef{sd}
	}
	set := map[string]*streamDef{sd.name: sd}
	for _, bq := range sd.queries {
		for _, def := range bq.defs {
			set[def.name] = def
		}
	}
	group := make([]*streamDef, 0, len(set))
	for _, def := range set {
		group = append(group, def)
	}
	sort.Slice(group, func(i, j int) bool { return group[i].name < group[j].name })
	return group
}

// coveredBy reports whether every shard in need is present in held (both
// sorted by name).
func coveredBy(need, held []*streamDef) bool {
	i := 0
	for _, def := range need {
		for i < len(held) && held[i].name < def.name {
			i++
		}
		if i == len(held) || held[i] != def {
			return false
		}
	}
	return true
}

// lockGroup acquires sd's lock group. Fast path: sd feeds no join, so sd.mu
// alone covers the batch. Slow path: probe the group under sd.mu, release,
// re-acquire the whole group in sorted order, and revalidate — retrying if
// a concurrent Exclusive-holder changed the bindings in between. Locks are
// only ever awaited while holding lower-ordered names (or nothing), so the
// loop cannot deadlock against other ingests or Exclusive.
func (e *Engine) lockGroup(sd *streamDef) []*streamDef {
	for {
		sd.mu.Lock()
		group := lockGroupOf(sd)
		if len(group) == 1 {
			return group
		}
		sd.mu.Unlock()
		for _, def := range group {
			def.mu.Lock()
		}
		if coveredBy(lockGroupOf(sd), group) {
			return group
		}
		for i := len(group) - 1; i >= 0; i-- {
			group[i].mu.Unlock()
		}
		mShardRetries.Inc()
	}
}

func unlockGroup(group []*streamDef) {
	for i := len(group) - 1; i >= 0; i-- {
		group[i].mu.Unlock()
	}
}

// IngestBatch builds, sequences, and pushes a batch of tuples for one
// stream, returning per-query results keyed and ordered by query id.
//
// The batch is applied atomically with respect to other ingests on the same
// shard group: tuples receive consecutive sequence numbers, and every bound
// query sees the whole batch (query-major: all tuples into the first query
// id, then all into the next), so results and RNG evolution are
// deterministic for a given arrival order of batches.
//
// commit, when non-nil, runs inside the sequencing critical section before
// any sequence number is consumed — the durability layer journals the batch
// there, which makes WAL order provably equal to engine sequence order. A
// commit error aborts the batch with the engine untouched.
func (e *Engine) IngestBatch(streamName string, rows []IngestRow, commit func() error) ([]QueryResults, error) {
	if len(rows) == 0 {
		return nil, errors.New("core: empty ingest batch")
	}
	e.mu.RLock()
	sd, ok := e.streams[keyOf(streamName)]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown stream %q", streamName)
	}

	recovering := e.recovering.Load()
	t0 := time.Now()
	group := e.lockGroup(sd)
	defer unlockGroup(group)
	if !recovering {
		hShardWait.ObserveSince(t0)
		mIngestBatches.Inc()
		hIngestRows.Observe(float64(len(rows)))
	}

	// Build and validate every tuple before consuming sequence numbers or
	// committing, so a malformed row aborts the whole batch cleanly.
	tuples := make([]*stream.Tuple, len(rows))
	for i, row := range rows {
		t, err := stream.NewTuple(sd.schema, row.Fields)
		if err != nil {
			return nil, fmt.Errorf("core: batch row %d: %w", i, err)
		}
		t.Time = row.Time
		tuples[i] = t
	}

	e.seqMu.Lock()
	if commit != nil {
		if err := commit(); err != nil {
			e.seqMu.Unlock()
			return nil, err
		}
	}
	for _, t := range tuples {
		e.seq++
		t.Seq = e.seq
	}
	e.seqMu.Unlock()
	if !recovering {
		mTuples.Add(uint64(len(tuples)))
	}

	out := make([]QueryResults, 0, len(sd.queries))
	for _, bq := range sd.queries {
		qr := QueryResults{ID: bq.id}
		var errs []string
		for _, t := range tuples {
			res, err := bq.q.Push(t)
			if err != nil {
				errs = append(errs, err.Error())
				continue
			}
			qr.Results = append(qr.Results, res...)
		}
		if len(errs) > 0 {
			qr.Err = errors.New(strings.Join(errs, "; "))
		}
		out = append(out, qr)
	}
	// Batch boundary: the query-major loop above has replayed every shared
	// emission into every group member, so group caches are empty again;
	// sweep any straggler so the next batch starts from a clean slate.
	e.sweepShared(sd)
	return out, nil
}
