package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/accuracy"
	"repro/internal/plan"
	"repro/internal/randvar"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// This file is the engine half of the multi-query planner (package plan
// holds the static analysis and the registry). A shared-state group aliases
// every member query's window onto one buffer and runs the per-push
// pipeline once per ingested tuple instead of once per query:
//
//   - the filter (statically RNG-free for shareable queries, see
//     plan.FilterShareable) is evaluated once and its outcome replayed;
//   - the window buffer (ColumnWindow or sketch ring) is pushed once;
//   - aggregate evaluation is fused: all closed-form aggregates any member
//     requests are computed in one scan (LinearUniformMoments), Monte
//     Carlo aggregates get one shared column materialization;
//   - when every member runs the identical output plan under an accuracy
//     backend that consumes no per-query randomness, the fully decorated
//     emission (output tuple, accuracy infos, membership interval) is
//     built once and shared verbatim.
//
// Determinism is the design constraint, not a side effect: every shared
// computation is provably identical to what each member would have
// computed alone (same float summation order, same RNG non-consumption,
// same error values), so DATA output is bit-identical to the unshared
// path at any worker count and across crash recovery. Aggregates that do
// consume the member's Monte Carlo evaluator (MIN/MAX, non-Gaussian
// AVG/SUM) or its bootstrap RNG stay per-member over the shared inputs,
// keeping each member's RNG evolution — and therefore its checkpoints —
// exactly as unshared.
//
// Cache lifecycle: IngestBatch is query-major (all tuples through member
// 1, then member 2, …), so the first member reaching a sequence number
// computes its emission and later members consume it; the entry dies when
// the last member has replayed it, and the window's own advance produces
// the next entry — window-advance-driven invalidation. Group membership
// only changes under the engine's Exclusive/single-threaded registration
// contract, between batches, when the cache is provably empty.

// planProfile is a compiled query's shareability verdict plus the group
// key it would share under.
type planProfile struct {
	plan.Decision
	Key plan.Key
	// Sig is the canonical output-plan signature (label:column:kind per
	// output column): groups whose members all carry the same signature
	// can share fully built emissions, not just window state.
	Sig string
}

// aggSpec identifies one aggregate computation over a shared window.
type aggSpec struct {
	col  int
	kind stream.AggKind
}

// sharedAggVal is one closed-form aggregate computed once per emission;
// err is the raw (unwrapped) error so each member can wrap it with its own
// output label exactly as the unshared path would.
type sharedAggVal struct {
	field randvar.Field
	err   error
}

// sharedResult is a fully built emission shared verbatim by every member
// of a signature-uniform group: the output tuple, the accuracy-info map,
// the infos in emission order (for per-member telemetry replay), and the
// membership-probability interval.
type sharedResult struct {
	tuple     *stream.Tuple
	fields    map[string]*accuracy.Info
	infos     []*accuracy.Info
	tupleProb *accuracy.Interval
}

// sharedEmission caches everything one input sequence number produced for
// the group, for replay by members that reach it later in the batch.
type sharedEmission struct {
	remaining int // members yet to consume the entry

	filtered  bool // a WHERE clause ran
	filterErr error
	outcome   predOutcome

	// Columnar window stage (column groups only).
	full  bool
	count int
	aggs  map[aggSpec]sharedAggVal
	mat   map[int][]randvar.Field

	// Sketch stage (sketch groups only): emit marks a sealed, full window.
	emit bool
	err  error

	// res is the fully shared emission; nil when members must assemble
	// (and decorate) their own results from aggs/mat.
	res *sharedResult
}

// sharedGroup is one live shared-state equivalence class. Exactly one of
// win/sk is set. Membership mutates only under the engine registration
// contract; the atomics exist because EXPLAIN renders sharers and
// hit counters without quiescing ingest.
type sharedGroup struct {
	key     plan.Key
	win     *stream.ColumnWindow
	sk      *sketch.Window
	members []*Query
	// specs refcounts every aggregate any member requests, so one pass
	// computes the union.
	specs map[aggSpec]int
	// uniform is set when every member runs the identical output plan
	// under an accuracy backend free of per-query randomness — the
	// precondition for sharing fully built emissions.
	uniform bool
	cache   map[uint64]*sharedEmission

	sharers        atomic.Int32
	leads, follows atomic.Uint64
}

// planProfile computes the query's shareability profile at compile time.
func (q *Query) planProfileOf() planProfile {
	p := planProfile{Decision: plan.Analyze(q.stmt, q.method.String())}
	if !p.Shareable {
		return p
	}
	if q.window == nil && q.sketchWin == nil {
		// Row-oriented layout (Config.RowWindows) — the legacy window has
		// no content-addressed sharing support.
		p.Decision = plan.Decision{Reason: "engine uses row-oriented windows (Config.RowWindows)"}
		return p
	}
	for _, oc := range q.outPlan {
		if len(p.Sig) > 0 {
			p.Sig += ","
		}
		p.Sig += fmt.Sprintf("%s:%d:%s", oc.agg.label, oc.agg.colIdx, oc.agg.kind)
	}
	filter := ""
	if q.stmt.Where != nil {
		filter = q.stmt.Where.String()
	}
	p.Key = plan.Key{
		Stream:  keyOf(q.in.Name),
		Filter:  filter,
		Rows:    q.stmt.Window.Rows,
		Backend: q.method.String(),
	}
	if q.sketchWin != nil {
		// A sketch window tracks one moment column per aggregate item, so
		// only identical aggregate lists can share one.
		p.Key.Sig = p.Sig
	}
	return p
}

// attachShared joins q to its shared-state group (creating one if needed),
// aliasing q's window onto the group's. Called from Bind under the
// engine's registration contract (Exclusive or single-threaded), so no
// push is in flight and the group cache is empty.
func (e *Engine) attachShared(q *Query) {
	if e.plans == nil || q.shared != nil || !q.prof.Shareable {
		return
	}
	if q.window == nil && q.sketchWin == nil {
		return
	}
	join := func(state any) bool {
		g := state.(*sharedGroup)
		if len(g.cache) != 0 {
			return false
		}
		if g.sk != nil {
			return q.sketchWin != nil && g.sk.Pushes() == q.sketchWin.Pushes()
		}
		return q.window != nil && g.win.SameContents(q.window)
	}
	create := func() any {
		return &sharedGroup{
			key:   q.prof.Key,
			win:   q.window,
			sk:    q.sketchWin,
			specs: make(map[aggSpec]int),
			cache: make(map[uint64]*sharedEmission),
		}
	}
	state, _ := e.plans.Acquire(q.prof.Key, join, create)
	g := state.(*sharedGroup)
	if g.win != nil {
		q.window = g.win
	}
	if g.sk != nil {
		q.sketchWin = g.sk
	}
	g.members = append(g.members, q)
	for _, oc := range q.outPlan {
		g.specs[aggSpec{oc.agg.colIdx, oc.agg.kind}]++
	}
	g.refreshUniform()
	g.sharers.Store(int32(len(g.members)))
	q.shared = g
}

// detachShared removes q from its group on Unbind. The departing query
// keeps the aliased window (it is no longer driven); survivors keep
// ownership, and the last member's departure releases the group.
func (e *Engine) detachShared(q *Query) {
	g := q.shared
	if g == nil {
		return
	}
	q.shared = nil
	for i, m := range g.members {
		if m == q {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	for _, oc := range q.outPlan {
		spec := aggSpec{oc.agg.colIdx, oc.agg.kind}
		if g.specs[spec]--; g.specs[spec] == 0 {
			delete(g.specs, spec)
		}
	}
	clear(g.cache)
	if len(g.members) == 0 {
		e.plans.Release(g.key, g)
		return
	}
	g.refreshUniform()
	g.sharers.Store(int32(len(g.members)))
}

// refreshUniform recomputes whether fully built emissions may be shared:
// every member runs the identical output plan, and the accuracy backend
// consumes no per-query randomness (analytical and none never touch the
// member RNGs; bootstrap draws from each member's own RNG, whose evolution
// must stay exactly as unshared; sketch emissions are deterministic by
// construction and signature-uniform by key).
func (g *sharedGroup) refreshUniform() {
	if len(g.members) == 0 {
		g.uniform = false
		return
	}
	first := g.members[0]
	if first.method == AccuracyBootstrap {
		g.uniform = false
		return
	}
	for _, m := range g.members[1:] {
		if m.prof.Sig != first.prof.Sig {
			g.uniform = false
			return
		}
	}
	g.uniform = true
}

// sweepShared clears any emission-cache stragglers after a batch. In the
// normal query-major flow every entry is consumed by every member within
// the batch, so this is the enforcement point of the invariant (pinned by
// TestSharedCacheInvalidation) rather than a working path.
func (e *Engine) sweepShared(sd *streamDef) {
	for _, bq := range sd.queries {
		if g := bq.q.shared; g != nil && len(g.cache) != 0 {
			clear(g.cache)
		}
	}
}

// pushShared is the push path of a group member: the first member to reach
// a sequence number computes the group emission, later members replay it.
// Solo groups compute and replay in one step without touching the cache,
// so a query that happens to be alone in its class runs at unshared cost.
func (q *Query) pushShared(t *stream.Tuple) ([]Result, error) {
	g := q.shared
	em, ok := g.cache[t.Seq]
	if !ok {
		em = g.compute(q, t)
		if len(g.members) > 1 {
			em.remaining = len(g.members) - 1
			g.cache[t.Seq] = em
		}
		g.leads.Add(1)
	} else {
		if em.remaining--; em.remaining == 0 {
			delete(g.cache, t.Seq)
		}
		g.follows.Add(1)
	}
	return q.replayShared(em, t)
}

// compute runs the shared pipeline once for tuple t on behalf of the whole
// group. q is the member that reached t first; shareable filters ignore
// the evaluator argument, so evaluating with q's is equivalent for every
// member.
func (g *sharedGroup) compute(q *Query, t *stream.Tuple) *sharedEmission {
	em := &sharedEmission{}
	prob, probN := t.Prob, t.ProbN
	if q.where != nil {
		em.filtered = true
		timed := q.timing.Enabled()
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		o, err := q.where(q.ev, t)
		if timed {
			q.timing.Observe(plan.StageFilter, time.Since(t0))
		}
		if err != nil {
			em.filterErr = err
			return em
		}
		em.outcome = o
		if o.Unsure && q.eng.cfg.DropUnsure {
			return em
		}
		prob *= o.Prob
		probN = combineN(probN, o.N)
		if prob == 0 || prob < q.eng.cfg.MinProb {
			return em
		}
	}
	if g.sk != nil {
		g.computeSketch(q, t, em, prob, probN)
		return em
	}

	timed := q.timing.Enabled()
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	g.win.Push(t)
	if timed {
		q.timing.Observe(plan.StageWindow, time.Since(t0))
	}
	if !g.win.Full() {
		return em
	}
	em.full = true
	em.count = g.win.Len()

	if timed {
		t0 = time.Now()
	}
	// Fused aggregate evaluation: every closed-form aggregate any member
	// requests rides one scan; Monte Carlo aggregates get one shared
	// column materialization and stay per-member (replayShared).
	em.aggs = make(map[aggSpec]sharedAggVal, len(g.specs))
	var fused []aggSpec
	var cols []int
	var wts []float64
	for spec := range g.specs {
		switch spec.kind {
		case stream.Count:
			em.aggs[spec] = sharedAggVal{field: randvar.Det(float64(em.count))}
		case stream.Avg, stream.Sum:
			if g.win.ColumnGaussian(spec.col) {
				wt := 1.0
				if spec.kind == stream.Avg {
					wt = 1 / float64(em.count)
				}
				fused = append(fused, spec)
				cols = append(cols, spec.col)
				wts = append(wts, wt)
			} else {
				g.materialize(em, spec.col)
			}
		default: // Min, Max: always Monte Carlo, always per-member.
			g.materialize(em, spec.col)
		}
	}
	if len(fused) > 0 {
		mu, sigma2, n := g.win.LinearUniformMoments(cols, wts)
		for j, spec := range fused {
			f, err := randvar.GaussianResult(mu[j], sigma2[j], n[j])
			em.aggs[spec] = sharedAggVal{field: f, err: err}
		}
	}
	if timed {
		q.timing.Observe(plan.StageAggregate, time.Since(t0))
	}
	if g.uniform {
		g.buildSharedResult(q, em, t, prob, probN)
	}
	return em
}

// materialize snapshots one column of the shared window, oldest-first —
// the common input every member's Monte Carlo aggregate consumes with its
// own evaluator.
func (g *sharedGroup) materialize(em *sharedEmission, col int) {
	if em.mat == nil {
		em.mat = make(map[int][]randvar.Field)
	}
	if _, ok := em.mat[col]; ok {
		return
	}
	em.mat[col] = g.win.AppendColumnFields(nil, col)
}

// buildSharedResult assembles the one emission every member of a
// signature-uniform group returns verbatim. It mirrors the unshared
// assembly + decorate exactly, minus per-member telemetry (replayed at
// consumption). Any error or Monte Carlo dependency abandons the shared
// result; members then assemble their own and reproduce the identical
// outcome (including the identical error) from the cached stage outputs.
func (g *sharedGroup) buildSharedResult(q *Query, em *sharedEmission, t *stream.Tuple, prob float64, probN int) {
	fields := make([]randvar.Field, 0, len(q.outPlan))
	for _, oc := range q.outPlan {
		v, ok := em.aggs[aggSpec{oc.agg.colIdx, oc.agg.kind}]
		if !ok || v.err != nil {
			return
		}
		fields = append(fields, v.field)
	}
	sr := &sharedResult{tuple: &stream.Tuple{
		Schema: q.out,
		Fields: fields,
		Prob:   prob,
		ProbN:  probN,
		Seq:    t.Seq,
		Time:   t.Time,
	}}
	cfg := q.eng.cfg
	if q.method != AccuracyNone {
		timed := q.timing.Enabled()
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		for i, f := range fields {
			if !q.out.Columns[i].Probabilistic || f.N < 2 {
				continue
			}
			info, err := accuracy.ForDistribution(f.Dist, f.N, cfg.Level)
			if err != nil {
				return
			}
			if sr.fields == nil {
				sr.fields = make(map[string]*accuracy.Info)
			}
			sr.fields[q.out.Columns[i].Name] = info
			sr.infos = append(sr.infos, info)
		}
		if prob < 1 && probN >= 1 {
			iv, err := accuracy.TupleProbInterval(prob, probN, cfg.Level)
			if err != nil {
				return
			}
			sr.tupleProb = &iv
		}
		if timed {
			q.timing.Observe(plan.StageAccuracy, time.Since(t0))
		}
	}
	em.res = sr
}

// computeSketch runs the sketch-backend pipeline once for the group,
// mirroring pushSketch minus per-member stats/telemetry. Sketch groups are
// signature-uniform by key, so labels (and therefore wrapped errors) are
// identical across members and the fully built emission is always shared.
func (g *sharedGroup) computeSketch(q *Query, t *stream.Tuple, em *sharedEmission, prob float64, probN int) {
	obs := make([]sketch.Obs, 0, len(q.aggs))
	for _, a := range q.aggs {
		f := t.Fields[a.colIdx]
		obs = append(obs, sketch.Obs{Mean: f.Dist.Mean(), Variance: f.Dist.Variance(), N: f.N})
	}
	sealed, err := g.sk.Push(obs, prob)
	if err != nil {
		em.err = err
		return
	}
	if !sealed || !g.sk.Full() {
		return
	}
	em.emit = true
	cfg := q.eng.cfg
	m := g.sk.Rows()
	sr := &sharedResult{}
	fields := make([]randvar.Field, 0, len(q.aggs))
	for i, a := range q.aggs {
		s, err := g.sk.MergedCol(i)
		if err != nil {
			em.err = fmt.Errorf("core: sketch aggregate %s: %w", a.label, err)
			return
		}
		var f randvar.Field
		var info *accuracy.Info
		switch a.kind {
		case stream.Count:
			f = randvar.Det(float64(m))
		case stream.Min:
			f = randvar.Det(s.Quant.Min)
		case stream.Max:
			f = randvar.Det(s.Quant.Max)
		case stream.Avg, stream.Sum:
			w := 1.0
			mu := s.Mom.Sum()
			if a.kind == stream.Avg {
				w = 1 / float64(m)
				mu = s.Mom.Mean
			}
			f, err = randvar.GaussianResult(mu, s.SumVar*w*w, s.MinN)
			if err != nil {
				em.err = fmt.Errorf("core: sketch aggregate %s: %w", a.label, err)
				return
			}
			if s.MinN >= 2 {
				info, err = q.sketchInfo(&s, f.Dist, w, m)
				if err != nil {
					em.err = fmt.Errorf("core: sketch accuracy %s: %w", a.label, err)
					return
				}
			}
		default:
			em.err = fmt.Errorf("core: sketch aggregate %v not supported", a.kind)
			return
		}
		fields = append(fields, f)
		if info != nil {
			if sr.fields == nil {
				sr.fields = make(map[string]*accuracy.Info)
			}
			sr.fields[a.label] = info
			sr.infos = append(sr.infos, info)
		}
	}
	sr.tuple = &stream.Tuple{
		Schema: q.out,
		Fields: fields,
		Prob:   prob,
		ProbN:  probN,
		Seq:    t.Seq,
		Time:   t.Time,
	}
	if prob < 1 && probN >= 1 {
		iv, err := accuracy.TupleProbInterval(prob, probN, cfg.Level)
		if err != nil {
			em.err = err
			return
		}
		sr.tupleProb = &iv
	}
	em.res = sr
}

// replayShared reproduces one member's view of a cached group emission, in
// the exact order of the unshared pipeline: filter error, UNSURE and
// membership-probability drops (per-member counters), then emission. The
// member either returns the fully shared result (replaying telemetry so
// METRICS snapshots match unshared runs) or assembles its own output from
// the cached stage products, consuming its own evaluator exactly where the
// unshared path would.
func (q *Query) replayShared(em *sharedEmission, t *stream.Tuple) ([]Result, error) {
	if em.filterErr != nil {
		return nil, em.filterErr
	}
	prob, probN := t.Prob, t.ProbN
	unsure := false
	if em.filtered {
		o := em.outcome
		if o.Unsure {
			q.stats.unsure.Add(1)
			if q.eng.cfg.DropUnsure {
				q.stats.dropped.Add(1)
				return nil, nil
			}
			unsure = true
		}
		prob *= o.Prob
		probN = combineN(probN, o.N)
		if prob == 0 || prob < q.eng.cfg.MinProb {
			q.stats.dropped.Add(1)
			return nil, nil
		}
	}
	if q.shared.sk != nil {
		if em.err != nil {
			return nil, em.err
		}
		if !em.emit {
			return nil, nil
		}
		return q.emitShared(em.res, unsure), nil
	}
	if !em.full {
		return nil, nil
	}
	if em.res != nil {
		return q.emitShared(em.res, unsure), nil
	}

	timed := q.timing.Enabled()
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	fields := make([]randvar.Field, 0, len(q.outPlan))
	values := q.valuesBuf[:0]
	for _, oc := range q.outPlan {
		spec := aggSpec{oc.agg.colIdx, oc.agg.kind}
		if v, ok := em.aggs[spec]; ok {
			if v.err != nil {
				return nil, fmt.Errorf("core: aggregate %s: %w", oc.agg.label, v.err)
			}
			fields = append(fields, v.field)
			values = append(values, nil)
			continue
		}
		res, err := stream.Aggregate(q.ev, oc.agg.kind, em.mat[spec.col])
		if err != nil {
			return nil, fmt.Errorf("core: aggregate %s: %w", oc.agg.label, err)
		}
		fields = append(fields, res.Field)
		values = append(values, res.Values)
	}
	q.valuesBuf = values
	if timed {
		q.timing.Observe(plan.StageAggregate, time.Since(t0))
	}
	out := &stream.Tuple{
		Schema: q.out,
		Fields: fields,
		Prob:   prob,
		ProbN:  probN,
		Seq:    t.Seq,
		Time:   t.Time,
	}
	if timed {
		t0 = time.Now()
	}
	res, err := q.decorate(out, values, unsure)
	if timed {
		q.timing.Observe(plan.StageAccuracy, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	q.stats.out.Add(1)
	return []Result{res}, nil
}

// emitShared returns the fully shared emission as this member's result,
// replaying per-member telemetry and counters so STATS/METRICS snapshots
// are indistinguishable from an unshared run.
func (q *Query) emitShared(sr *sharedResult, unsure bool) []Result {
	recovering := q.eng.recovering.Load()
	for _, info := range sr.infos {
		q.telem.observeField(info, recovering)
	}
	if sr.tupleProb != nil {
		q.telem.observeTupleProb(*sr.tupleProb, recovering)
	}
	q.stats.out.Add(1)
	return []Result{{Tuple: sr.tuple, Fields: sr.fields, TupleProb: sr.tupleProb, Unsure: unsure}}
}
