package core

import (
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// TestAccuracyMethodAndConfigAccessors covers the small accessors.
func TestAccuracyMethodAndConfigAccessors(t *testing.T) {
	names := map[AccuracyMethod]string{
		AccuracyNone:       "none",
		AccuracyAnalytical: "analytical",
		AccuracyBootstrap:  "bootstrap",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("String() = %q, want %q", m.String(), want)
		}
	}
	if AccuracyMethod(9).String() == "" {
		t.Error("out-of-range method must still render")
	}
	e := newTestEngine(t, Config{Level: 0.8})
	if e.Config().Level != 0.8 {
		t.Errorf("Config().Level = %v", e.Config().Level)
	}
}

// TestComparisonOperatorsOnDetFields covers every cmpScalar branch via
// deterministic filters.
func TestComparisonOperatorsOnDetFields(t *testing.T) {
	e := newTestEngine(t, Config{})
	cases := []struct {
		where string
		road  float64
		pass  bool
	}{
		{"road_id > 5", 6, true},
		{"road_id > 5", 5, false},
		{"road_id >= 5", 5, true},
		{"road_id < 5", 4, true},
		{"road_id <= 5", 5, true},
		{"road_id <= 5", 6, false},
		{"road_id = 5", 5, true},
		{"road_id = 5", 4, false},
		{"road_id <> 5", 4, true},
		{"road_id <> 5", 5, false},
		// Flipped operand order.
		{"5 < road_id", 6, true},
		{"5 > road_id", 4, true},
		{"5 >= road_id", 5, true},
		{"5 <= road_id", 4, false},
	}
	for _, c := range cases {
		q, err := e.Compile("SELECT road_id FROM traffic WHERE " + c.where)
		if err != nil {
			t.Fatalf("%s: %v", c.where, err)
		}
		res, err := q.Push(trafficTuple(t, e, c.road, 60, 20, 0, 10))
		if err != nil {
			t.Fatalf("%s: %v", c.where, err)
		}
		if (len(res) == 1) != c.pass {
			t.Errorf("%s with road %g: pass=%v, want %v", c.where, c.road, len(res) == 1, c.pass)
		}
	}
}

// TestEqualityOnDiscreteFields covers the point-mass path: P(X = v) is
// nonzero for discrete distributions.
func TestEqualityOnDiscreteFields(t *testing.T) {
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := stream.NewSchema("d", stream.Column{Name: "x", Probabilistic: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	disc, err := dist.NewDiscrete([]float64{1, 2, 3}, []float64{0.2, 0.5, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.NewTuple("d", []randvar.Field{{Dist: disc, N: 10}})
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile("SELECT x FROM d WHERE x = 2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(tp)
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	approx(t, "P(X=2)", res[0].Tuple.Prob, 0.5, 1e-9)

	qne, err := e.Compile("SELECT x FROM d WHERE x <> 2")
	if err != nil {
		t.Fatal(err)
	}
	res, err = qne.Push(tp)
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	approx(t, "P(X<>2)", res[0].Tuple.Prob, 0.5, 1e-9)

	// Continuous equality has zero point mass → dropped.
	qc, err := e.Compile("SELECT x FROM d WHERE x = 2")
	if err != nil {
		t.Fatal(err)
	}
	nd, _ := dist.NewNormal(2, 1)
	tp2, _ := e.NewTuple("d", []randvar.Field{{Dist: nd, N: 10}})
	res, err = qc.Push(tp2)
	if err != nil || len(res) != 0 {
		t.Fatalf("continuous equality: %v, %v", res, err)
	}
}

// TestScalarFunctionsInSelect covers EXP/LN and nested unary minus.
func TestScalarFunctionsInSelect(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT EXP(LN(road_id)) AS same, -(-road_id) AS dbl FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(trafficTuple(t, e, 7, 60, 20, 0, 10))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	approx(t, "exp(ln(x))", res[0].Tuple.Fields[0].Dist.Mean(), 7, 1e-9)
	approx(t, "-(-x)", res[0].Tuple.Fields[1].Dist.Mean(), 7, 1e-9)
	// LN of a non-positive deterministic value produces NaN, which the
	// deterministic path surfaces as an evaluation problem: the result is
	// a Point(NaN) — guard that the engine rejects it cleanly.
	q2, err := e.Compile("SELECT LN(0 - road_id) AS bad FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Push(trafficTuple(t, e, 7, 60, 20, 0, 10)); err == nil {
		t.Log("LN of negative det value accepted as NaN point (documented loose end)")
	}
}

// TestLinearDetectionBranches covers multiplication/division linearity.
func TestLinearDetectionBranches(t *testing.T) {
	e := newTestEngine(t, Config{})
	// 2*delay, delay*2, delay/2 — all linear, Gaussian closed forms.
	q, err := e.Compile("SELECT 2 * delay AS a, delay * 2 AS b, delay / 2 AS c, delay * delay2 AS d FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(trafficTuple(t, e, 1, 60, 20, 10, 20))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	fields := res[0].Tuple.Fields
	approx(t, "2*delay", fields[0].Dist.Mean(), 120, 1e-9)
	approx(t, "delay*2", fields[1].Dist.Mean(), 120, 1e-9)
	approx(t, "delay/2", fields[2].Dist.Mean(), 30, 1e-9)
	// Products of random variables leave the closed form.
	if _, ok := fields[0].Dist.(dist.Normal); !ok {
		t.Errorf("2*delay should stay Gaussian, got %T", fields[0].Dist)
	}
	if _, ok := fields[3].Dist.(dist.Normal); ok {
		t.Error("delay*delay2 must not be Gaussian closed form")
	}
	approx(t, "delay*delay2", fields[3].Dist.Mean(), 600, 30)
}

// TestNegativeConstantArgs covers constValue's unary-minus path.
func TestNegativeConstantArgs(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id FROM traffic WHERE MTEST(delay, '>', -10, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(trafficTuple(t, e, 1, 60, 50, 0, 10))
	if err != nil || len(res) != 1 {
		t.Fatalf("mean 60 > -10 should be significant: %v, %v", res, err)
	}
}

// TestSigPredicateNeedsSampleSize covers fieldStats' error path: a
// significance predicate over a field with no retained sample size fails
// at runtime with a clear error.
func TestSigPredicateNeedsSampleSize(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id FROM traffic WHERE MTEST(delay, '>', 1, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	tp := trafficTuple(t, e, 1, 60, 20, 0, 10)
	tp.Fields[1].N = 0 // strip the sample size
	if _, err := q.Push(tp); err == nil {
		t.Error("significance predicate without sample size: want error")
	}
	// PTEST likewise.
	q2, err := e.Compile("SELECT road_id FROM traffic WHERE PTEST(delay > 50, 0.5, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Push(tp); err == nil {
		t.Error("PTEST without sample size: want error")
	}
}

// TestPossibleWorldInvariants is a property test over the filter pipeline:
// for arbitrary thresholds and field parameters, emitted tuples always have
// a membership probability in (0, 1], a ProbN that is either exact (0) or
// the minimum of the contributing sample sizes, and accuracy intervals that
// contain their point estimates.
func TestPossibleWorldInvariants(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyAnalytical})
	f := func(thrSeed int16, muSeed int16, n1Seed, n2Seed uint8) bool {
		thr := float64(thrSeed) / 100
		mu := 50 + float64(muSeed)/300
		n1 := int(n1Seed%200) + 2
		n2 := int(n2Seed%200) + 2
		q, err := e.Compile("SELECT delay FROM traffic WHERE delay > 50 AND delay2 > " +
			sqlFloat(thr))
		if err != nil {
			t.Fatalf("compile: %v", err)
			return false
		}
		tp := trafficTuple(t, e, 1, mu, n1, mu+thr, n2)
		res, err := q.Push(tp)
		if err != nil {
			t.Fatalf("push: %v", err)
			return false
		}
		for _, r := range res {
			p := r.Tuple.Prob
			if !(p > 0 && p <= 1) {
				t.Errorf("prob %v outside (0,1]", p)
				return false
			}
			want := n1
			if n2 < n1 {
				want = n2
			}
			if r.Tuple.ProbN != want {
				t.Errorf("ProbN %d, want min(%d,%d)", r.Tuple.ProbN, n1, n2)
				return false
			}
			if r.TupleProb != nil && !r.TupleProb.Contains(p) {
				t.Errorf("interval %v misses prob %v", r.TupleProb, p)
				return false
			}
			if info := r.Fields["delay"]; info != nil {
				if !info.Mean.Contains(r.Tuple.Fields[0].Dist.Mean()) {
					t.Error("mean interval misses estimate")
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// sqlFloat renders a float for embedding in test SQL.
func sqlFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 4, 64)
}
