package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// raceTuple builds a traffic tuple without t.Fatal, so it is safe to call
// from spawned goroutines (which may only use t.Error).
func raceTuple(e *Engine, road, mu float64, n int) (*stream.Tuple, error) {
	d1, err := dist.NewNormal(mu, 100)
	if err != nil {
		return nil, err
	}
	d2, err := dist.NewNormal(mu+5, 100)
	if err != nil {
		return nil, err
	}
	return e.NewTuple("traffic", []randvar.Field{
		randvar.Det(road),
		{Dist: d1, N: n},
		{Dist: d2, N: n},
	})
}

// TestEngineConcurrentQueries drives one shared Engine from several
// goroutines under the race detector. The engine's documented contract is
// that stream registration, tuple creation, and query compilation are
// concurrent-safe while each compiled Query is single-goroutine; here every
// goroutine compiles its own bootstrap-method query and pushes its own
// tuples through it, sharing only the engine (and its sequence counter).
func TestEngineConcurrentQueries(t *testing.T) {
	e := newTestEngine(t, Config{
		Method:           AccuracyBootstrap,
		MonteCarloValues: 200,
		Workers:          4, // force the parallel kernel under -race
	})

	goroutines := 4
	if p := runtime.GOMAXPROCS(0); p > goroutines {
		goroutines = p
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// SQRT forces the Monte Carlo path, so every push runs
			// BOOTSTRAP-ACCURACY-INFO on a fresh value sequence.
			q, err := e.Compile("SELECT SQRT(delay) AS s FROM traffic")
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: compile: %v", g, err)
				return
			}
			for i := 0; i < 20; i++ {
				tp, err := raceTuple(e, float64(g), 25+float64(i), 40)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: tuple %d: %v", g, i, err)
					return
				}
				res, err := q.Push(tp)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: push %d: %v", g, i, err)
					return
				}
				for _, r := range res {
					if info := r.Fields["s"]; info == nil {
						errs <- fmt.Errorf("goroutine %d: missing accuracy info for s", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// raceRow builds one ingest row (det key + two normal fields) without
// t.Fatal, so it is safe from spawned goroutines.
func raceRow(key, mu float64, n int) (IngestRow, error) {
	d1, err := dist.NewNormal(mu, 100)
	if err != nil {
		return IngestRow{}, err
	}
	d2, err := dist.NewNormal(mu+5, 100)
	if err != nil {
		return IngestRow{}, err
	}
	return IngestRow{Fields: []randvar.Field{
		randvar.Det(key),
		{Dist: d1, N: n},
		{Dist: d2, N: n},
	}}, nil
}

// TestQueryConcurrentPushStats verifies the documented concurrency of the
// query introspection surface: Stats and Telemetry may be called while the
// query is being pushed (counters are atomics, telemetry rings carry their
// own mutex). Run under -race.
func TestQueryConcurrentPushStats(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyBootstrap, MonteCarloValues: 100})
	q, err := e.Compile("SELECT AVG(delay) FROM traffic WINDOW 4 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Bind("q", q); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = q.Stats()
				_ = q.Telemetry()
			}
		}()
	}
	const pushes = 40
	for i := 0; i < pushes; i++ {
		row, err := raceRow(1, 25+float64(i), 40)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.IngestBatch("traffic", []IngestRow{row}, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	readers.Wait()
	if st := q.Stats(); st.In != pushes {
		t.Fatalf("Stats.In = %d, want %d", st.In, pushes)
	}
}

// TestEngineConcurrentShardedIngest exercises the shard-group locking:
// four streams fed concurrently, each with a per-stream windowed query,
// plus one join query coupling streams r0 and r1 (so their ingests take a
// multi-shard lock group). Per-query input counts must be exact — no
// tuple lost or double-pushed under contention. Run under -race.
func TestEngineConcurrentShardedIngest(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyBootstrap, MonteCarloValues: 50})
	const streams, batches, rows = 4, 8, 4
	for i := 0; i < streams; i++ {
		schema, err := stream.NewSchema(fmt.Sprintf("r%d", i),
			stream.Column{Name: "key"},
			stream.Column{Name: "val", Probabilistic: true},
		)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterStream(schema); err != nil {
			t.Fatal(err)
		}
		q, err := e.Compile(fmt.Sprintf("SELECT AVG(val) FROM r%d WINDOW 6 ROWS", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Bind(fmt.Sprintf("q%d", i), q); err != nil {
			t.Fatal(err)
		}
	}
	join, err := e.Compile("SELECT r0.val FROM r0 JOIN r1 ON key = key WINDOW 6 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Bind("qjoin", join); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]IngestRow, rows)
				for r := range batch {
					d, err := dist.NewNormal(20+float64(b*rows+r), 25)
					if err != nil {
						errs <- err
						return
					}
					batch[r] = IngestRow{Fields: []randvar.Field{
						randvar.Det(float64(r % 3)),
						{Dist: d, N: 30},
					}}
				}
				results, err := e.IngestBatch(fmt.Sprintf("r%d", i), batch, nil)
				if err != nil {
					errs <- fmt.Errorf("stream r%d batch %d: %v", i, b, err)
					return
				}
				for _, qr := range results {
					if qr.Err != nil {
						errs <- fmt.Errorf("stream r%d: query %s: %v", i, qr.ID, qr.Err)
						return
					}
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < streams; i++ {
		if st := e.Bound(fmt.Sprintf("q%d", i)).Stats(); st.In != batches*rows {
			t.Errorf("q%d saw %d tuples, want %d", i, st.In, batches*rows)
		}
	}
	if st := e.Bound("qjoin").Stats(); st.In != 2*batches*rows {
		t.Errorf("join query saw %d tuples, want %d (both r0 and r1)", st.In, 2*batches*rows)
	}
}

// TestEngineConcurrentRegistration hammers schema lookup and tuple creation
// from many goroutines — the engine's shared map under its RWMutex.
func TestEngineConcurrentRegistration(t *testing.T) {
	e := newTestEngine(t, Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := e.Schema("traffic"); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if _, err := raceTuple(e, 1, 20, 30); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
