package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// raceTuple builds a traffic tuple without t.Fatal, so it is safe to call
// from spawned goroutines (which may only use t.Error).
func raceTuple(e *Engine, road, mu float64, n int) (*stream.Tuple, error) {
	d1, err := dist.NewNormal(mu, 100)
	if err != nil {
		return nil, err
	}
	d2, err := dist.NewNormal(mu+5, 100)
	if err != nil {
		return nil, err
	}
	return e.NewTuple("traffic", []randvar.Field{
		randvar.Det(road),
		{Dist: d1, N: n},
		{Dist: d2, N: n},
	})
}

// TestEngineConcurrentQueries drives one shared Engine from several
// goroutines under the race detector. The engine's documented contract is
// that stream registration, tuple creation, and query compilation are
// concurrent-safe while each compiled Query is single-goroutine; here every
// goroutine compiles its own bootstrap-method query and pushes its own
// tuples through it, sharing only the engine (and its sequence counter).
func TestEngineConcurrentQueries(t *testing.T) {
	e := newTestEngine(t, Config{
		Method:           AccuracyBootstrap,
		MonteCarloValues: 200,
		Workers:          4, // force the parallel kernel under -race
	})

	goroutines := 4
	if p := runtime.GOMAXPROCS(0); p > goroutines {
		goroutines = p
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// SQRT forces the Monte Carlo path, so every push runs
			// BOOTSTRAP-ACCURACY-INFO on a fresh value sequence.
			q, err := e.Compile("SELECT SQRT(delay) AS s FROM traffic")
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: compile: %v", g, err)
				return
			}
			for i := 0; i < 20; i++ {
				tp, err := raceTuple(e, float64(g), 25+float64(i), 40)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: tuple %d: %v", g, i, err)
					return
				}
				res, err := q.Push(tp)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: push %d: %v", g, i, err)
					return
				}
				for _, r := range res {
					if info := r.Fields["s"]; info == nil {
						errs <- fmt.Errorf("goroutine %d: missing accuracy info for s", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEngineConcurrentRegistration hammers schema lookup and tuple creation
// from many goroutines — the engine's shared map under its RWMutex.
func TestEngineConcurrentRegistration(t *testing.T) {
	e := newTestEngine(t, Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := e.Schema("traffic"); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if _, err := raceTuple(e, 1, 20, 30); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
