package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// bench8: exact-vs-sketch backend comparison through the real engine push
// path. PushSteady measures the per-tuple cost of a full window emitting
// results (the exact backends rescan O(window) per emission; the sketch
// backend merges 16 block summaries regardless of window size, and only on
// the block-seal pushes). Absorb1M measures the bytes allocated to absorb a
// 1M-tuple window — the memory story behind the ≤64 MiB sketch bound.

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	e, err := NewEngine(Config{Seed: 7, Method: AccuracyAnalytical, Level: 0.9, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	schema, err := stream.NewSchema("bench",
		stream.Column{Name: "k"},
		stream.Column{Name: "val", Probabilistic: true},
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.RegisterStream(schema); err != nil {
		b.Fatal(err)
	}
	return e
}

func benchTuple(b *testing.B, e *Engine, i int) *stream.Tuple {
	d, err := dist.NewNormal(40+float64(i%50), 9)
	if err != nil {
		b.Fatal(err)
	}
	tp, err := e.NewTuple("bench", []randvar.Field{
		randvar.Det(float64(i)),
		{Dist: d, N: 25},
	})
	if err != nil {
		b.Fatal(err)
	}
	return tp
}

func benchQuerySQL(backend string, window int) string {
	sql := fmt.Sprintf("SELECT COUNT(val) AS c, AVG(val) AS a, SUM(val) AS s FROM bench WINDOW %d ROWS", window)
	if backend != "" {
		sql += " BACKEND " + backend
	}
	return sql
}

// benchPushSteady prefills the window (untimed), then measures b.N pushes
// against the full, steadily emitting window.
func benchPushSteady(b *testing.B, backend string, window int) {
	e := benchEngine(b)
	q, err := e.Compile(benchQuerySQL(backend, window))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < window; i++ {
		if _, err := q.Push(benchTuple(b, e, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Push(benchTuple(b, e, window+i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSketchPushSteady(b *testing.B) {
	for _, w := range []int{1_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			benchPushSteady(b, "SKETCH", w)
		})
	}
}

func BenchmarkExactPushSteady(b *testing.B) {
	for _, w := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			benchPushSteady(b, "", w)
		})
	}
}

func BenchmarkBootstrapPushSteady(b *testing.B) {
	b.Run("window=1000", func(b *testing.B) {
		benchPushSteady(b, "BOOTSTRAP", 1_000)
	})
}

// BenchmarkWindowAbsorb1M ingests 1M tuples into a 1M-row window from
// cold. B/op is the total allocation bill (dominated by per-tuple
// construction in both backends); retained_bytes/op is the live heap the
// full window pins after a GC — the number the ≤64 MiB sketch memory bound
// is about: the exact columnar backend materializes every row, the sketch
// keeps 16 block summaries + a polylog quantile sketch. Run with a small
// -benchtime count: one op is a million pushes.
func BenchmarkWindowAbsorb1M(b *testing.B) {
	const n = 1_000_000
	for _, bk := range []struct{ name, backend string }{
		{"backend=sketch", "SKETCH"},
		{"backend=exact", ""},
	} {
		b.Run(bk.name, func(b *testing.B) {
			b.ReportAllocs()
			var retained float64
			for i := 0; i < b.N; i++ {
				// Baseline before the engine exists: the exact backend
				// preallocates its 1M-row columnar ring at compile time, so
				// the window bill must include engine + plan construction.
				var m0, m1 runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&m0)
				e := benchEngine(b)
				q, err := e.Compile(benchQuerySQL(bk.backend, n))
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					if _, err := q.Push(benchTuple(b, e, j)); err != nil {
						b.Fatal(err)
					}
				}
				runtime.GC()
				runtime.ReadMemStats(&m1)
				retained += float64(m1.HeapAlloc) - float64(m0.HeapAlloc)
				runtime.KeepAlive(q)
				runtime.KeepAlive(e)
			}
			b.ReportMetric(retained/float64(b.N), "retained_bytes/op")
		})
	}
}
