package core

import (
	"errors"
	"fmt"

	"repro/internal/accuracy"
	"repro/internal/hypothesis"
	"repro/internal/learn"
)

// This file implements the paper's online-computation use case (§I): "When
// the intervals are sufficiently narrow to make a decision with enough
// confidence, we can stop acquiring raw data/samples, which is a slow or
// expensive process."
//
// Acquire drives a raw-observation source in batches, recomputing accuracy
// information after each batch, and stops at the earliest of: the mean
// interval reaching a target width, a coupled significance test reaching a
// decision, or the observation budget running out.

// AcquireTest is an optional decision rule: stop as soon as the coupled
// mTest "mean Op C" decides at error rates (Alpha1, Alpha2).
type AcquireTest struct {
	Op     hypothesis.Op
	C      float64
	Alpha1 float64
	Alpha2 float64
}

// AcquireRule configures Acquire's stopping conditions. At least one of
// MaxWidth and Test must be set.
type AcquireRule struct {
	// Level is the confidence level of the tracked mean interval
	// (default 0.9).
	Level float64
	// MaxWidth stops acquisition once the mean interval's length is at
	// most MaxWidth (0 disables the rule).
	MaxWidth float64
	// Test stops acquisition once the coupled test decides (nil disables
	// the rule).
	Test *AcquireTest
	// Batch is the number of observations requested per round
	// (default 5).
	Batch int
	// MinN defers stopping decisions until at least MinN observations
	// have arrived (default 5, minimum 2).
	MinN int
	// MaxN is the observation budget (default 1000).
	MaxN int
}

func (r AcquireRule) normalize() (AcquireRule, error) {
	if r.Level == 0 {
		r.Level = 0.9
	}
	if r.Level <= 0 || r.Level >= 1 {
		return r, fmt.Errorf("core: acquire level %v outside (0,1)", r.Level)
	}
	if r.MaxWidth == 0 && r.Test == nil {
		return r, errors.New("core: acquire rule needs MaxWidth or Test")
	}
	if r.MaxWidth < 0 {
		return r, fmt.Errorf("core: MaxWidth %v negative", r.MaxWidth)
	}
	if r.Batch == 0 {
		r.Batch = 5
	}
	if r.Batch < 1 {
		return r, fmt.Errorf("core: Batch %d must be ≥ 1", r.Batch)
	}
	if r.MinN == 0 {
		r.MinN = 5
	}
	if r.MinN < 2 {
		r.MinN = 2
	}
	if r.MaxN == 0 {
		r.MaxN = 1000
	}
	if r.MaxN < r.MinN {
		return r, fmt.Errorf("core: MaxN %d below MinN %d", r.MaxN, r.MinN)
	}
	if r.Test != nil {
		if badAlpha(r.Test.Alpha1) || badAlpha(r.Test.Alpha2) {
			return r, errors.New("core: acquire test significance levels outside (0,1)")
		}
	}
	return r, nil
}

// StopReason reports why acquisition ended.
type StopReason string

// Stop reasons.
const (
	// StopWidth: the mean interval reached the target width.
	StopWidth StopReason = "width"
	// StopDecided: the coupled test reached TRUE or FALSE.
	StopDecided StopReason = "decided"
	// StopBudget: MaxN observations were acquired without another rule
	// firing.
	StopBudget StopReason = "budget"
)

// AcquireResult is the outcome of an Acquire run.
type AcquireResult struct {
	// Sample holds every acquired observation.
	Sample *learn.Sample
	// Mean is the final confidence interval of the mean.
	Mean accuracy.Interval
	// Decision is the final coupled-test answer (Unsure when no Test rule
	// was configured or it never decided).
	Decision hypothesis.Result
	// Reason reports which rule stopped acquisition.
	Reason StopReason
	// Rounds is the number of source calls made.
	Rounds int
}

// Source produces up to n fresh observations of the quantity being
// acquired. Returning fewer than n (or zero) observations is treated as
// exhaustion and stops acquisition with StopBudget.
type Source func(n int) ([]float64, error)

// Acquire runs the online-acquisition loop against source under rule.
func Acquire(source Source, rule AcquireRule) (*AcquireResult, error) {
	if source == nil {
		return nil, errors.New("core: nil acquire source")
	}
	rule, err := rule.normalize()
	if err != nil {
		return nil, err
	}
	res := &AcquireResult{
		Sample:   learn.NewSample(nil),
		Decision: hypothesis.Unsure,
	}
	for {
		want := rule.Batch
		if remaining := rule.MaxN - res.Sample.Size(); remaining < want {
			want = remaining
		}
		if want <= 0 {
			res.Reason = StopBudget
			return res, nil
		}
		obs, err := source(want)
		if err != nil {
			return nil, fmt.Errorf("core: acquire source: %w", err)
		}
		res.Rounds++
		res.Sample.AddAll(obs)
		exhausted := len(obs) < want
		n := res.Sample.Size()
		if n >= rule.MinN && n >= 2 {
			mean, err := res.Sample.Mean()
			if err != nil {
				return nil, err
			}
			sd, err := res.Sample.StdDev()
			if err != nil {
				return nil, err
			}
			iv, err := accuracy.MeanInterval(mean, sd, n, rule.Level)
			if err != nil {
				return nil, err
			}
			res.Mean = iv
			if rule.Test != nil {
				stats := hypothesis.Stats{Mean: mean, SD: sd, N: n}
				decision, err := hypothesis.CoupledMTest(stats, rule.Test.Op, rule.Test.C,
					rule.Test.Alpha1, rule.Test.Alpha2)
				if err != nil {
					return nil, err
				}
				res.Decision = decision
				if decision != hypothesis.Unsure {
					res.Reason = StopDecided
					return res, nil
				}
			}
			if rule.MaxWidth > 0 && iv.Length() <= rule.MaxWidth {
				res.Reason = StopWidth
				return res, nil
			}
		}
		if exhausted {
			res.Reason = StopBudget
			return res, nil
		}
	}
}
