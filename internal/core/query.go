package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/accuracy"
	"repro/internal/bootstrap"
	"repro/internal/dist"
	"repro/internal/plan"
	"repro/internal/randvar"
	"repro/internal/sketch"
	"repro/internal/sql"
	"repro/internal/stream"
)

// Result is one output tuple of a continuous query, decorated with the
// accuracy information the paper proposes (§II-B): per-field confidence
// intervals (mean, variance, bin heights) and an interval for the tuple's
// membership probability.
type Result struct {
	// Tuple is the output tuple (fields carry distributions and d.f.
	// sample sizes).
	Tuple *stream.Tuple
	// Fields maps output column names to their accuracy information;
	// entries exist only for probabilistic fields with a known sample
	// size and only when the engine's accuracy method is not None.
	Fields map[string]*accuracy.Info
	// TupleProb is the confidence interval of the tuple's membership
	// probability (nil when the probability is exact).
	TupleProb *accuracy.Interval
	// Unsure is set when a coupled significance predicate answered
	// UNSURE and the engine is configured to keep such tuples.
	Unsure bool
}

// QueryStats counts a query's activity.
type QueryStats struct {
	In      uint64 // tuples pushed
	Out     uint64 // results emitted
	Dropped uint64 // tuples eliminated by WHERE
	Unsure  uint64 // tuples whose significance predicate was UNSURE
	Joined  uint64 // join matches produced (join queries only)
	Shed    uint64 // accuracy computations run with a reduced resample budget
}

// queryCounters is the live, atomically updated form of QueryStats: pushes
// run under per-shard locks while STATS/METRICS snapshots may race from
// other connections, so the counters must be safe to read concurrently.
type queryCounters struct {
	in      atomic.Uint64
	out     atomic.Uint64
	dropped atomic.Uint64
	unsure  atomic.Uint64
	joined  atomic.Uint64
	shed    atomic.Uint64
}

func (c *queryCounters) snapshot() QueryStats {
	return QueryStats{
		In:      c.in.Load(),
		Out:     c.out.Load(),
		Dropped: c.dropped.Load(),
		Unsure:  c.unsure.Load(),
		Joined:  c.joined.Load(),
		Shed:    c.shed.Load(),
	}
}

func (c *queryCounters) restore(s QueryStats) {
	c.in.Store(s.In)
	c.out.Store(s.Out)
	c.dropped.Store(s.Dropped)
	c.unsure.Store(s.Unsure)
	c.joined.Store(s.Joined)
	c.shed.Store(s.Shed)
}

// queryMode distinguishes the execution strategies.
type queryMode int

const (
	modeScalar queryMode = iota
	modeAggregate
)

// scalarItem is one output column of a scalar query.
type scalarItem struct {
	label string
	// passthrough ≥ 0 selects an input column unchanged; otherwise expr
	// is evaluated.
	passthrough int
	expr        *compiledExpr
}

// aggItem is one output column of an aggregate query.
type aggItem struct {
	label  string
	kind   stream.AggKind
	colIdx int
}

// aggOutCol is one output column of an aggregate query in out-schema order:
// either a passthrough of the GROUP BY key (passthrough >= 0) or an
// aggregate item.
type aggOutCol struct {
	passthrough int
	agg         aggItem
}

// groupState is the window of one GROUP BY key.
type groupState struct {
	col   *stream.ColumnWindow
	count *stream.CountWindow
	time  *stream.TimeWindow
}

// joinState executes a symmetric window equi-join: each side retains a
// count window; an arriving tuple probes the opposite window for equal
// (deterministic) keys and emits one combined tuple per match, with
// membership probabilities multiplied under the possible-world
// independence assumption.
type joinState struct {
	leftName, rightName string
	leftSchema          *stream.Schema
	rightSchema         *stream.Schema
	leftKey, rightKey   int
	leftWin, rightWin   *stream.CountWindow
	combined            *stream.Schema // columns "<stream>.<col>"
}

// Query is a compiled continuous query. Push tuples in; Results come out.
// A Query is not safe for concurrent use.
type Query struct {
	eng   *Engine
	stmt  *sql.SelectStmt
	in    *stream.Schema // combined schema for joins
	out   *stream.Schema
	where compiledPred
	ev    *randvar.Evaluator
	rng   *dist.Rand // bootstrap accuracy sampling

	// method is the accuracy backend this query runs with: the engine
	// default, or the statement's BACKEND override.
	method AccuracyMethod

	mode    queryMode
	scalars []scalarItem
	aggs    []aggItem
	// outPlan maps each aggregate-output column to its source, resolved
	// once at plan time so pushAggregate does no per-push label lookups.
	outPlan []aggOutCol

	// Per-push scratch reused across pushes (a Query is single-goroutine
	// by contract); holds only references consumed within the push.
	winBuf    []*stream.Tuple
	aggInputs []randvar.Field
	valuesBuf [][]float64

	// Aggregate windows: exactly one of window/rowWindow/timeWindow is set
	// for ungrouped aggregates; groups is used with GROUP BY. Count-based
	// windows are columnar (window) by default; rowWindow is the legacy
	// layout behind Config.RowWindows.
	window     *stream.ColumnWindow
	rowWindow  *stream.CountWindow
	timeWindow *stream.TimeWindow
	groupIdx   int // index of the GROUP BY column, -1 when absent
	groups     map[float64]*groupState

	// sketchWin replaces the materialized window under the sketch backend:
	// bounded memory, block-granular slide, one tracked column per
	// aggregate item (q.aggs order). sketchObs is per-push scratch.
	sketchWin *sketch.Window
	sketchObs []sketch.Obs

	join *joinState

	// prof is the compile-time shareability profile; shared is the live
	// shared-state group this query is attached to (nil when unshared).
	// timing collects per-stage wall time once EXPLAIN … TIMING enables it.
	prof   planProfile
	shared *sharedGroup
	timing plan.StageTimer

	stats queryCounters
	telem queryTelemetry
}

// Compile parses and plans a SQL statement against the engine's registered
// streams.
func (e *Engine) Compile(query string) (*Query, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.CompileStmt(stmt)
}

// CompileStmt plans an already-parsed statement.
func (e *Engine) CompileStmt(stmt *sql.SelectStmt) (*Query, error) {
	if stmt == nil {
		return nil, errors.New("core: nil statement")
	}
	q := &Query{
		eng:      e,
		stmt:     stmt,
		rng:      dist.NewRand(e.cfg.Seed ^ 0xabcdef123456789),
		groupIdx: -1,
		method:   e.cfg.Method,
	}
	switch stmt.Backend {
	case "":
	case "ANALYTICAL":
		q.method = AccuracyAnalytical
	case "BOOTSTRAP":
		q.method = AccuracyBootstrap
	case "SKETCH":
		q.method = AccuracySketch
	default:
		return nil, fmt.Errorf("core: unknown accuracy backend %q", stmt.Backend)
	}
	if stmt.Join != nil {
		if err := q.planJoin(); err != nil {
			return nil, err
		}
	} else {
		in, err := e.Schema(stmt.From)
		if err != nil {
			return nil, err
		}
		q.in = in
	}
	if stmt.Where != nil {
		var err error
		q.where, err = compilePredicate(q.in, stmt.Where, e.cfg)
		if err != nil {
			return nil, err
		}
	}
	if err := q.planSelect(); err != nil {
		return nil, err
	}
	if q.method == AccuracySketch && q.sketchWin == nil {
		return nil, errors.New("core: BACKEND SKETCH requires an ungrouped count-windowed aggregate query")
	}
	q.prof = q.planProfileOf()
	// The evaluator is created last so a failed compile consumes no engine
	// sequence number: WAL replay re-runs only the successful statements,
	// and seq (hence every evaluator seed) must evolve identically.
	q.ev = e.newEvaluator()
	if !e.recovering.Load() {
		mCompiled.Inc()
	}
	return q, nil
}

// planJoin resolves both sides and builds the combined qualified schema.
func (q *Query) planJoin() error {
	stmt := q.stmt
	left, err := q.eng.Schema(stmt.From)
	if err != nil {
		return err
	}
	right, err := q.eng.Schema(stmt.Join.Right)
	if err != nil {
		return err
	}
	if strings.EqualFold(left.Name, right.Name) {
		return errors.New("core: self-joins are not supported")
	}
	if stmt.GroupBy != "" {
		return errors.New("core: GROUP BY over a join is not supported")
	}
	lk, err := resolveKey(left, stmt.Join.LeftKey)
	if err != nil {
		return err
	}
	rk, err := resolveKey(right, stmt.Join.RightKey)
	if err != nil {
		return err
	}
	if left.Columns[lk].Probabilistic || right.Columns[rk].Probabilistic {
		return errors.New("core: join keys must be deterministic columns")
	}
	if stmt.Window == nil {
		// Normalize the implicit default into the statement so the
		// effective window survives round trips: EXPLAIN, statement
		// printing, checkpointed SQL, and replicated registrations all
		// show WINDOW n ROWS explicitly instead of an invisible fallback.
		stmt.Window = &sql.WindowSpec{Rows: sql.DefaultJoinWindowRows}
	}
	if stmt.Window.Seconds > 0 {
		return errors.New("core: time-windowed joins are not supported; use WINDOW n ROWS")
	}
	winSize := stmt.Window.Rows
	lw, err := stream.NewCountWindow(winSize)
	if err != nil {
		return err
	}
	rw, err := stream.NewCountWindow(winSize)
	if err != nil {
		return err
	}
	cols := make([]stream.Column, 0, left.Arity()+right.Arity())
	for _, c := range left.Columns {
		cols = append(cols, stream.Column{Name: left.Name + "." + c.Name, Probabilistic: c.Probabilistic})
	}
	for _, c := range right.Columns {
		cols = append(cols, stream.Column{Name: right.Name + "." + c.Name, Probabilistic: c.Probabilistic})
	}
	combined, err := stream.NewSchema(left.Name+"_join_"+right.Name, cols...)
	if err != nil {
		return err
	}
	q.join = &joinState{
		leftName:    strings.ToLower(left.Name),
		rightName:   strings.ToLower(right.Name),
		leftSchema:  left,
		rightSchema: right,
		leftKey:     lk,
		rightKey:    rk,
		leftWin:     lw,
		rightWin:    rw,
		combined:    combined,
	}
	q.in = combined
	return nil
}

// resolveKey resolves a join key column that may be qualified with the
// stream name ("a.k") or bare ("k") against one side's schema.
func resolveKey(schema *stream.Schema, key string) (int, error) {
	name := key
	prefix := strings.ToLower(schema.Name) + "."
	if strings.HasPrefix(strings.ToLower(key), prefix) {
		name = key[len(prefix):]
	}
	idx, ok := schema.Index(name)
	if !ok {
		return 0, fmt.Errorf("core: join key %q not in stream %q", key, schema.Name)
	}
	return idx, nil
}

// planSelect classifies the select list and builds the output schema.
func (q *Query) planSelect() error {
	stmt := q.stmt
	// SELECT * — passthrough of every column.
	if len(stmt.Items) == 1 {
		if _, ok := stmt.Items[0].Expr.(*sql.Star); ok {
			if stmt.Window != nil && q.join == nil {
				return errors.New("core: SELECT * cannot be combined with WINDOW")
			}
			if stmt.GroupBy != "" {
				return errors.New("core: SELECT * cannot be combined with GROUP BY")
			}
			q.mode = modeScalar
			for i, col := range q.in.Columns {
				q.scalars = append(q.scalars, scalarItem{label: col.Name, passthrough: i})
			}
			q.out = q.in
			return nil
		}
	}
	nAgg := 0
	for _, it := range stmt.Items {
		if call, ok := it.Expr.(*sql.CallExpr); ok && isAggregate(call.Func) {
			nAgg++
		}
		if _, ok := it.Expr.(*sql.Star); ok {
			return errors.New("core: '*' must be the only select item")
		}
	}
	if nAgg > 0 {
		return q.planAggregates()
	}
	// Scalar projection.
	if stmt.Window != nil && q.join == nil {
		return errors.New("core: WINDOW requires aggregate select items")
	}
	if stmt.GroupBy != "" {
		return errors.New("core: GROUP BY requires aggregate select items")
	}
	q.mode = modeScalar
	cols := make([]stream.Column, 0, len(stmt.Items))
	for i, it := range stmt.Items {
		label := defaultLabel(it, i)
		if call, ok := it.Expr.(*sql.CallExpr); ok && isPredicateFunc(call.Func) {
			return fmt.Errorf("core: %s is only allowed in WHERE", call.Func)
		}
		if col, ok := it.Expr.(*sql.ColumnRef); ok {
			idx, okc := q.in.Index(col.Name)
			if !okc {
				return fmt.Errorf("core: unknown column %q", col.Name)
			}
			q.scalars = append(q.scalars, scalarItem{label: label, passthrough: idx})
			cols = append(cols, stream.Column{Name: label, Probabilistic: q.in.Columns[idx].Probabilistic})
			continue
		}
		ce, err := compileScalarExpr(q.in, it.Expr)
		if err != nil {
			return err
		}
		q.scalars = append(q.scalars, scalarItem{label: label, passthrough: -1, expr: ce})
		cols = append(cols, stream.Column{Name: label, Probabilistic: ce.probCol})
	}
	out, err := stream.NewSchema(q.in.Name+"_out", cols...)
	if err != nil {
		return err
	}
	q.out = out
	return nil
}

// planAggregates plans aggregate queries: plain, grouped, count- or
// time-windowed.
func (q *Query) planAggregates() error {
	stmt := q.stmt
	if q.join != nil {
		return errors.New("core: aggregates over a join are not supported")
	}
	if stmt.Window == nil {
		return errors.New("core: aggregates require a WINDOW clause")
	}
	q.mode = modeAggregate
	var cols []stream.Column

	// Non-aggregate select items are only legal when they name the GROUP
	// BY column.
	for i, it := range stmt.Items {
		call, isCall := it.Expr.(*sql.CallExpr)
		if isCall && isAggregate(call.Func) {
			kind, err := stream.ParseAggKind(call.Func)
			if err != nil {
				return err
			}
			if len(call.Args) != 1 {
				return fmt.Errorf("core: %s takes 1 argument, got %d", call.Func, len(call.Args))
			}
			idx, err := columnArg(q.in, call.Args[0], call.Func+" argument")
			if err != nil {
				return err
			}
			label := defaultLabel(it, i)
			q.aggs = append(q.aggs, aggItem{label: label, kind: kind, colIdx: idx})
			cols = append(cols, stream.Column{Name: label, Probabilistic: kind != stream.Count})
			continue
		}
		col, isCol := it.Expr.(*sql.ColumnRef)
		if !isCol || stmt.GroupBy == "" || !strings.EqualFold(col.Name, stmt.GroupBy) {
			return errors.New("core: cannot mix aggregates and scalar expressions without GROUP BY on that column")
		}
		idx, ok := q.in.Index(col.Name)
		if !ok {
			return fmt.Errorf("core: unknown column %q", col.Name)
		}
		label := defaultLabel(it, i)
		// Recorded as a passthrough of the group key.
		q.scalars = append(q.scalars, scalarItem{label: label, passthrough: idx})
		cols = append(cols, stream.Column{Name: label, Probabilistic: q.in.Columns[idx].Probabilistic})
	}

	if q.method == AccuracySketch {
		switch {
		case stmt.GroupBy != "":
			return errors.New("core: BACKEND SKETCH does not support GROUP BY")
		case stmt.Window.Seconds > 0:
			return errors.New("core: BACKEND SKETCH requires a count window (WINDOW n ROWS)")
		}
		// Validate the aggregate set at plan time, fail-closed: a sketch
		// query whose aggregates the emission path cannot serve must be
		// rejected at REGISTER — before the statement is WAL-journaled —
		// never at first emission, where replay and replicas would re-hit
		// the same runtime error.
		for _, a := range q.aggs {
			switch a.kind {
			case stream.Avg, stream.Sum, stream.Count, stream.Min, stream.Max:
			default:
				return fmt.Errorf("core: BACKEND SKETCH does not support aggregate %v (supported: AVG, SUM, COUNT, MIN, MAX)", a.kind)
			}
		}
		w, err := sketch.NewWindow(stmt.Window.Rows, q.eng.cfg.SketchBlocks, q.eng.cfg.SketchK, len(q.aggs))
		if err != nil {
			return err
		}
		q.sketchWin = w
	}
	if stmt.GroupBy != "" {
		idx, ok := q.in.Index(stmt.GroupBy)
		if !ok {
			return fmt.Errorf("core: unknown GROUP BY column %q", stmt.GroupBy)
		}
		if q.in.Columns[idx].Probabilistic {
			return fmt.Errorf("core: GROUP BY column %q must be deterministic", stmt.GroupBy)
		}
		q.groupIdx = idx
		q.groups = make(map[float64]*groupState)
	} else if q.sketchWin == nil {
		if len(q.scalars) > 0 {
			return errors.New("core: scalar select items require GROUP BY")
		}
		switch {
		case stmt.Window.Seconds > 0:
			tw, err := stream.NewTimeWindow(stmt.Window.Seconds)
			if err != nil {
				return err
			}
			q.timeWindow = tw
		case q.eng.cfg.RowWindows:
			w, err := stream.NewCountWindow(stmt.Window.Rows)
			if err != nil {
				return err
			}
			q.rowWindow = w
		default:
			w, err := stream.NewColumnWindow(q.in, stmt.Window.Rows)
			if err != nil {
				return err
			}
			q.window = w
		}
	}
	out, err := stream.NewSchema(q.in.Name+"_agg", cols...)
	if err != nil {
		return err
	}
	q.out = out
	// Resolve each output column to its source now, replacing the label
	// maps the push path used to rebuild on every tuple.
	aggByLabel := make(map[string]aggItem, len(q.aggs))
	for _, a := range q.aggs {
		aggByLabel[a.label] = a
	}
	scalarByLabel := make(map[string]scalarItem, len(q.scalars))
	for _, s := range q.scalars {
		scalarByLabel[s.label] = s
	}
	q.outPlan = make([]aggOutCol, 0, len(q.out.Columns))
	for _, col := range q.out.Columns {
		if item, ok := scalarByLabel[col.Name]; ok {
			q.outPlan = append(q.outPlan, aggOutCol{passthrough: item.passthrough})
			continue
		}
		q.outPlan = append(q.outPlan, aggOutCol{passthrough: -1, agg: aggByLabel[col.Name]})
	}
	return nil
}

// OutSchema returns the schema of emitted results.
func (q *Query) OutSchema() *stream.Schema { return q.out }

// Stats returns a snapshot of the query's counters. Safe to call
// concurrently with Push.
func (q *Query) Stats() QueryStats { return q.stats.snapshot() }

// String renders the compiled statement.
func (q *Query) String() string { return q.stmt.String() }

// Push feeds one tuple through the query, returning zero or more results.
// For join queries the tuple may belong to either input stream.
func (q *Query) Push(t *stream.Tuple) ([]Result, error) {
	if t == nil {
		return nil, errors.New("core: nil tuple")
	}
	// WAL replay must not pollute steady-state latency/throughput metrics:
	// replayed pushes count toward the segregated recovery counter only,
	// so a recovered process's snapshot matches a freshly booted one.
	recovering := q.eng.recovering.Load()
	var t0 time.Time
	if recovering {
		mRecoveryPushes.Inc()
	} else {
		t0 = time.Now()
		mPushes.Inc()
	}
	q.stats.in.Add(1)
	var (
		out []Result
		err error
	)
	if q.join != nil {
		out, err = q.pushJoin(t)
	} else if !strings.EqualFold(t.Schema.Name, q.in.Name) || t.Schema.Arity() != q.in.Arity() {
		err = fmt.Errorf("core: tuple of stream %q pushed into query over %q",
			t.Schema.Name, q.in.Name)
	} else {
		out, err = q.pushFiltered(t)
	}
	if !recovering {
		hPush.ObserveSince(t0)
		if err == nil {
			mResults.Add(uint64(len(out)))
		}
	}
	return out, err
}

// pushFiltered applies WHERE and routes to the scalar or aggregate path.
// Members of a shared-state group divert to the planner's shared pipeline,
// which runs filter/window/aggregate once per tuple for the whole group.
func (q *Query) pushFiltered(t *stream.Tuple) ([]Result, error) {
	if q.shared != nil {
		return q.pushShared(t)
	}
	prob, probN := t.Prob, t.ProbN
	unsure := false
	if q.where != nil {
		timed := q.timing.Enabled()
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		o, err := q.where(q.ev, t)
		if timed {
			q.timing.Observe(plan.StageFilter, time.Since(t0))
		}
		if err != nil {
			return nil, err
		}
		if o.Unsure {
			q.stats.unsure.Add(1)
			if q.eng.cfg.DropUnsure {
				q.stats.dropped.Add(1)
				return nil, nil
			}
			unsure = true
		}
		prob *= o.Prob
		probN = combineN(probN, o.N)
		if prob == 0 || prob < q.eng.cfg.MinProb {
			q.stats.dropped.Add(1)
			return nil, nil
		}
	}
	switch q.mode {
	case modeAggregate:
		return q.pushAggregate(t, prob, probN, unsure)
	default:
		return q.pushScalar(t, prob, probN, unsure)
	}
}

// pushJoin inserts the tuple into its side's window, probes the other
// side, and runs every combined match through the filter/select pipeline.
func (q *Query) pushJoin(t *stream.Tuple) ([]Result, error) {
	js := q.join
	name := strings.ToLower(t.Schema.Name)
	var (
		myKey, otherKey int
		otherWin        *stream.CountWindow
		leftSide        bool
	)
	switch name {
	case js.leftName:
		js.leftWin.Push(t)
		myKey, otherKey = js.leftKey, js.rightKey
		otherWin = js.rightWin
		leftSide = true
	case js.rightName:
		js.rightWin.Push(t)
		myKey, otherKey = js.rightKey, js.leftKey
		otherWin = js.leftWin
		leftSide = false
	default:
		return nil, fmt.Errorf("core: tuple of stream %q pushed into join over %q and %q",
			t.Schema.Name, js.leftSchema.Name, js.rightSchema.Name)
	}
	key := t.Fields[myKey].Dist.Mean()
	var out []Result
	var probeErr error
	otherWin.Do(func(ot *stream.Tuple) {
		if probeErr != nil {
			return
		}
		if ot.Fields[otherKey].Dist.Mean() != key {
			return
		}
		var lt, rt *stream.Tuple
		if leftSide {
			lt, rt = t, ot
		} else {
			lt, rt = ot, t
		}
		combined := &stream.Tuple{
			Schema: js.combined,
			Fields: append(append([]randvar.Field(nil), lt.Fields...), rt.Fields...),
			Prob:   lt.Prob * rt.Prob,
			ProbN:  combineN(lt.ProbN, rt.ProbN),
			Seq:    t.Seq,
			Time:   maxInt64(lt.Time, rt.Time),
		}
		q.stats.joined.Add(1)
		results, err := q.pushFiltered(combined)
		if err != nil {
			probeErr = err
			return
		}
		out = append(out, results...)
	})
	if probeErr != nil {
		return nil, probeErr
	}
	return out, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (q *Query) pushScalar(t *stream.Tuple, prob float64, probN int, unsure bool) ([]Result, error) {
	fields := make([]randvar.Field, len(q.scalars))
	// The value-sequence container is consumed by decorate within this
	// push, so it reuses a Query-owned buffer.
	values := q.valuesBuf
	if cap(values) < len(q.scalars) {
		values = make([][]float64, len(q.scalars))
	} else {
		values = values[:len(q.scalars)]
		for i := range values {
			values[i] = nil
		}
	}
	q.valuesBuf = values
	for i, item := range q.scalars {
		if item.passthrough >= 0 {
			fields[i] = t.Fields[item.passthrough]
			continue
		}
		res, err := item.expr.eval(q.ev, t)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %s: %w", item.label, err)
		}
		fields[i] = res.Field
		values[i] = res.Values
	}
	out := &stream.Tuple{
		Schema: q.out,
		Fields: fields,
		Prob:   prob,
		ProbN:  probN,
		Seq:    t.Seq,
		Time:   t.Time,
	}
	res, err := q.decorate(out, values, unsure)
	if err != nil {
		return nil, err
	}
	q.stats.out.Add(1)
	return []Result{res}, nil
}

// windowFor returns the window the tuple belongs to, creating per-group
// windows on demand.
func (q *Query) windowFor(t *stream.Tuple) (*groupState, error) {
	if q.groupIdx < 0 {
		return &groupState{col: q.window, count: q.rowWindow, time: q.timeWindow}, nil
	}
	key := t.Fields[q.groupIdx].Dist.Mean()
	g, ok := q.groups[key]
	if !ok {
		g = &groupState{}
		var err error
		switch {
		case q.stmt.Window.Seconds > 0:
			g.time, err = stream.NewTimeWindow(q.stmt.Window.Seconds)
		case q.eng.cfg.RowWindows:
			g.count, err = stream.NewCountWindow(q.stmt.Window.Rows)
		default:
			g.col, err = stream.NewColumnWindow(q.in, q.stmt.Window.Rows)
		}
		if err != nil {
			return nil, err
		}
		q.groups[key] = g
	}
	return g, nil
}

func (q *Query) pushAggregate(t *stream.Tuple, prob float64, probN int, unsure bool) ([]Result, error) {
	if q.sketchWin != nil {
		return q.pushSketch(t, prob, probN, unsure)
	}
	g, err := q.windowFor(t)
	if err != nil {
		return nil, err
	}
	// The window snapshot and aggregate-input gather reuse Query-owned
	// buffers: stream.Aggregate consumes its inputs within the call, so
	// nothing here outlives the push. Columnar windows skip the gather
	// entirely and scan their column arrays in place.
	timed := q.timing.Enabled()
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	q.winBuf = q.winBuf[:0]
	var colWin *stream.ColumnWindow
	switch {
	case g.time != nil:
		// Time windows emit on every arrival over the live contents.
		if _, err := g.time.Push(t); err != nil {
			return nil, err
		}
		q.winBuf = g.time.AppendTuples(q.winBuf)
	case g.col != nil:
		g.col.Push(t)
		if !g.col.Full() {
			return nil, nil
		}
		colWin = g.col
	default:
		g.count.Push(t)
		if !g.count.Full() {
			return nil, nil
		}
		q.winBuf = g.count.AppendTuples(q.winBuf)
	}
	if timed {
		q.timing.Observe(plan.StageWindow, time.Since(t0))
		t0 = time.Now()
	}
	winTuples := q.winBuf
	fields := make([]randvar.Field, 0, len(q.outPlan))
	values := q.valuesBuf[:0]
	// Output columns appear in out-schema order per the plan resolved in
	// planAggregates.
	for _, oc := range q.outPlan {
		if oc.passthrough >= 0 {
			fields = append(fields, t.Fields[oc.passthrough])
			values = append(values, nil)
			continue
		}
		var res randvar.Result
		var err error
		if colWin != nil {
			res, err = stream.AggregateColumn(q.ev, oc.agg.kind, colWin, oc.agg.colIdx, &q.aggInputs)
		} else {
			inputs := q.aggInputs[:0]
			for _, wt := range winTuples {
				inputs = append(inputs, wt.Fields[oc.agg.colIdx])
			}
			q.aggInputs = inputs
			res, err = stream.Aggregate(q.ev, oc.agg.kind, inputs)
		}
		if err != nil {
			return nil, fmt.Errorf("core: aggregate %s: %w", oc.agg.label, err)
		}
		fields = append(fields, res.Field)
		values = append(values, res.Values)
	}
	q.valuesBuf = values
	if timed {
		q.timing.Observe(plan.StageAggregate, time.Since(t0))
	}
	out := &stream.Tuple{
		Schema: q.out,
		Fields: fields,
		Prob:   prob,
		ProbN:  probN,
		Seq:    t.Seq,
		Time:   t.Time,
	}
	if timed {
		t0 = time.Now()
	}
	res, err := q.decorate(out, values, unsure)
	if timed {
		q.timing.Observe(plan.StageAccuracy, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	q.stats.out.Add(1)
	return []Result{res}, nil
}

// pushSketch is the aggregate push path of the sketch backend: the tuple's
// per-column (mean, variance, N) observations feed the blocked window, and
// sealing a full window's block emits one result whose fields come from the
// merged sketches. The path consumes no RNG, so it is deterministic at any
// worker count and across WAL replays and replicas by construction.
//
// Semantics vs the exact backends, documented in DESIGN.md §13: AVG and SUM
// reproduce the Gaussian closed form over the per-tuple means and variances
// (equal to the analytical backend up to float summation order); COUNT is
// the exact window row count; MIN and MAX are the exact extremes of the
// per-tuple means (value-based, not distribution-based — no Monte Carlo);
// results are emitted once per sealed block rather than once per push.
func (q *Query) pushSketch(t *stream.Tuple, prob float64, probN int, unsure bool) ([]Result, error) {
	obs := q.sketchObs
	if cap(obs) < len(q.aggs) {
		obs = make([]sketch.Obs, 0, len(q.aggs))
	}
	obs = obs[:0]
	for _, a := range q.aggs {
		f := t.Fields[a.colIdx]
		obs = append(obs, sketch.Obs{Mean: f.Dist.Mean(), Variance: f.Dist.Variance(), N: f.N})
	}
	q.sketchObs = obs
	sealed, err := q.sketchWin.Push(obs, prob)
	if err != nil {
		return nil, err
	}
	if !sealed || !q.sketchWin.Full() {
		return nil, nil
	}
	cfg := q.eng.cfg
	recovering := q.eng.recovering.Load()
	m := q.sketchWin.Rows()
	res := Result{Unsure: unsure}
	fields := make([]randvar.Field, 0, len(q.aggs))
	for i, a := range q.aggs {
		s, err := q.sketchWin.MergedCol(i)
		if err != nil {
			return nil, fmt.Errorf("core: sketch aggregate %s: %w", a.label, err)
		}
		var f randvar.Field
		var info *accuracy.Info
		switch a.kind {
		case stream.Count:
			f = randvar.Det(float64(m))
		case stream.Min:
			f = randvar.Det(s.Quant.Min)
		case stream.Max:
			f = randvar.Det(s.Quant.Max)
		case stream.Avg, stream.Sum:
			w := 1.0
			mu := s.Mom.Sum()
			if a.kind == stream.Avg {
				w = 1 / float64(m)
				mu = s.Mom.Mean
			}
			f, err = randvar.GaussianResult(mu, s.SumVar*w*w, s.MinN)
			if err != nil {
				return nil, fmt.Errorf("core: sketch aggregate %s: %w", a.label, err)
			}
			if s.MinN >= 2 {
				info, err = q.sketchInfo(&s, f.Dist, w, m)
				if err != nil {
					return nil, fmt.Errorf("core: sketch accuracy %s: %w", a.label, err)
				}
			}
		default:
			return nil, fmt.Errorf("core: sketch aggregate %v not supported", a.kind)
		}
		fields = append(fields, f)
		if info != nil {
			if res.Fields == nil {
				res.Fields = make(map[string]*accuracy.Info)
			}
			res.Fields[a.label] = info
			q.telem.observeField(info, recovering)
		}
	}
	res.Tuple = &stream.Tuple{
		Schema: q.out,
		Fields: fields,
		Prob:   prob,
		ProbN:  probN,
		Seq:    t.Seq,
		Time:   t.Time,
	}
	if prob < 1 && probN >= 1 {
		iv, err := accuracy.TupleProbInterval(prob, probN, cfg.Level)
		if err != nil {
			return nil, err
		}
		res.TupleProb = &iv
		q.telem.observeTupleProb(iv, recovering)
	}
	q.stats.out.Add(1)
	return []Result{res}, nil
}

// sketchInfo derives one AVG/SUM field's accuracy information from its
// merged column summary: the Theorem 1 analytical intervals on the sketch's
// Gaussian result, with the mean interval widened by the membership
// uncertainty the McGregor–Muthukrishnan moments track (Σp(1−p)x̄² — zero
// when every tuple exists with certainty), plus a distribution-free interval
// for the window median from the quantile sketch, its order-statistic ranks
// widened by the sketch's deterministic rank error bound.
func (q *Query) sketchInfo(s *sketch.ColSummary, d dist.Distribution, w float64, m int) (*accuracy.Info, error) {
	cfg := q.eng.cfg
	info, err := accuracy.ForDistribution(d, s.MinN, cfg.Level)
	if err != nil {
		return nil, err
	}
	half, err := s.Prob.MembershipHalfWidth(w, cfg.Level)
	if err != nil {
		return nil, err
	}
	info.Mean.Lo -= half
	info.Mean.Hi += half
	if m >= 2 {
		med, err := s.Quant.Interval(0.5, cfg.Level)
		if err != nil {
			return nil, err
		}
		info.WindowMedian = &med
	}
	info.Method = "sketch"
	return info, nil
}

// decorate attaches accuracy information per the engine configuration.
// mcValues holds per-field Monte Carlo value sequences when expression
// evaluation produced them (the preferred bootstrap input, §III-B category
// 1).
func (q *Query) decorate(t *stream.Tuple, mcValues [][]float64, unsure bool) (Result, error) {
	res := Result{Tuple: t, Unsure: unsure}
	cfg := q.eng.cfg
	if q.method != AccuracyNone {
		recovering := q.eng.recovering.Load()
		for i, f := range t.Fields {
			if !t.Schema.Columns[i].Probabilistic || f.N < 2 {
				continue
			}
			info, err := q.fieldAccuracy(f, mcValues[i])
			if err != nil {
				return Result{}, fmt.Errorf("core: accuracy for %s: %w", t.Schema.Columns[i].Name, err)
			}
			if res.Fields == nil {
				res.Fields = make(map[string]*accuracy.Info)
			}
			res.Fields[t.Schema.Columns[i].Name] = info
			q.telem.observeField(info, recovering)
		}
		if t.Prob < 1 && t.ProbN >= 1 {
			iv, err := accuracy.TupleProbInterval(t.Prob, t.ProbN, cfg.Level)
			if err != nil {
				return Result{}, err
			}
			res.TupleProb = &iv
			q.telem.observeTupleProb(iv, recovering)
		}
	}
	return res, nil
}

// fieldAccuracy computes one field's accuracy info with the configured
// backend. Under load shedding (engine degrade level > 0) the bootstrap
// backend divides its resample budget by shedDivisor(level): intervals stay
// honest — they widen with the smaller resample count — while each accuracy
// computation gets proportionally cheaper. Shed levels change how many draws
// the category-2 path takes from q.rng, which is why the server journals
// every level transition: replay reproduces the same levels at the same
// records, hence the same RNG evolution.
// minShedResamples floors the shed resample budget. The t-based shed
// interval scales its half-width by the sd of the resample statistics; at
// r=2 that sd has one degree of freedom and varies over orders of
// magnitude, so the reported interval can collapse to a sliver that misses
// the estimate entirely. r=4 (3 d.f.) is the smallest budget whose scale
// estimate is stable enough to mean anything.
const minShedResamples = 4

func (q *Query) fieldAccuracy(f randvar.Field, values []float64) (*accuracy.Info, error) {
	cfg := q.eng.cfg
	switch q.method {
	case AccuracyAnalytical:
		return accuracy.ForDistribution(f.Dist, f.N, cfg.Level)
	case AccuracyBootstrap:
		div := shedDivisor(q.eng.DegradeLevel())
		hist, _ := f.Dist.(*dist.Histogram)
		if len(values) >= 2*f.N {
			// §III-B category 1: the Monte Carlo path already produced a
			// value sequence of r = len(values)/n resamples. Shedding keeps
			// a prefix worth max(2, r/div) resamples — no RNG involved, so
			// the trim is deterministic at any level — and switches to the
			// t-based interval that widens honestly at small r.
			if div > 1 {
				r := len(values) / f.N / div
				if r < minShedResamples {
					r = minShedResamples
				}
				if max := len(values) / f.N; r > max {
					r = max
				}
				values = values[:r*f.N]
				q.noteShed()
				return bootstrap.AccuracyInfoShed(values, f.N, cfg.Level, hist, cfg.Workers)
			}
			return bootstrap.AccuracyInfoWorkers(values, f.N, cfg.Level, hist, cfg.Workers)
		}
		// Category 2: sample from the result distribution.
		if div > 1 {
			resamples := cfg.BootstrapResamples / div
			if resamples < minShedResamples {
				resamples = minShedResamples
			}
			if resamples > cfg.BootstrapResamples {
				resamples = cfg.BootstrapResamples
			}
			q.noteShed()
			return bootstrap.FromDistributionShed(f.Dist, f.N, resamples, cfg.Level, q.rng, cfg.Workers)
		}
		return bootstrap.FromDistributionWorkers(f.Dist, f.N, cfg.BootstrapResamples, cfg.Level, q.rng, cfg.Workers)
	}
	return nil, fmt.Errorf("core: accuracy method %v", q.method)
}

// noteShed counts one accuracy computation run on a reduced budget.
func (q *Query) noteShed() {
	q.stats.shed.Add(1)
	if !q.eng.recovering.Load() {
		mShedEvals.Inc()
	}
}

// Run pushes a batch of tuples and collects all results — a convenience
// wrapper for examples, tests, and the CLI.
func (q *Query) Run(tuples []*stream.Tuple) ([]Result, error) {
	var out []Result
	for _, t := range tuples {
		res, err := q.Push(t)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return out, nil
}
