package core

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// pushBoth feeds the same logical tuple to two engines' queries and demands
// bit-identical results (distribution parameters, accuracy intervals,
// sample sizes, probabilities — everything a client can observe).
func pushBoth(t *testing.T, name string, qa, qb *Query, ta, tb *stream.Tuple) {
	t.Helper()
	ra, ea := qa.Push(ta)
	rb, eb := qb.Push(tb)
	if (ea == nil) != (eb == nil) || (ea != nil && ea.Error() != eb.Error()) {
		t.Fatalf("%s: error mismatch: %v vs %v", name, ea, eb)
	}
	if len(ra) != len(rb) {
		t.Fatalf("%s: %d vs %d results", name, len(ra), len(rb))
	}
	for i := range ra {
		if !reflect.DeepEqual(ra[i], rb[i]) {
			t.Fatalf("%s: result %d differs:\nrow: %+v\ncol: %+v", name, i, ra[i], rb[i])
		}
	}
}

// mixedDelay swaps in a histogram delay on a stride so the aggregate has to
// leave the Gaussian closed form and exercise the Monte Carlo fallback.
func mixedDelay(t *testing.T, e *Engine, i int) *stream.Tuple {
	t.Helper()
	road := float64(i % 3)
	if i%5 == 4 {
		h, err := dist.HistogramFromCounts(
			[]float64{50, 60, 70, 80}, []int{2, 5, 3})
		if err != nil {
			t.Fatal(err)
		}
		d2, err := dist.NewNormal(40+float64(i%7), 100)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := e.NewTuple("traffic", []randvar.Field{
			randvar.Det(road), {Dist: h, N: 10}, {Dist: d2, N: 12},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	return trafficTuple(t, e, road, 55+float64(i%9), 10+i%4, 40+float64(i%7), 12)
}

// TestColumnarRowEquivalence runs the same windowed-aggregate workloads
// through a columnar-window engine and a RowWindows engine and demands
// byte-identical results, for analytical and bootstrap accuracy, for
// ungrouped and grouped plans, at 1 and 8 workers.
func TestColumnarRowEquivalence(t *testing.T) {
	queries := []string{
		"SELECT AVG(delay) AS a, SUM(delay2) AS s, COUNT(road_id) AS c FROM traffic WINDOW 4 ROWS",
		"SELECT MIN(delay) AS lo, MAX(delay) AS hi FROM traffic WINDOW 3 ROWS",
		"SELECT road_id, AVG(delay) FROM traffic GROUP BY road_id WINDOW 2 ROWS",
	}
	for _, m := range []AccuracyMethod{AccuracyAnalytical, AccuracyBootstrap} {
		for _, workers := range []int{1, 8} {
			cfg := Config{Method: m, Seed: 7, Workers: workers, MonteCarloValues: 64, BootstrapResamples: 40}
			name := m.String() + "/workers=" + string(rune('0'+workers))
			t.Run(name, func(t *testing.T) {
				col := newTestEngine(t, cfg)
				rowCfg := cfg
				rowCfg.RowWindows = true
				row := newTestEngine(t, rowCfg)
				for qi, sql := range queries {
					qc, err := col.Compile(sql)
					if err != nil {
						t.Fatal(err)
					}
					qr, err := row.Compile(sql)
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < 25; i++ {
						// Engines assign Seq independently; identical inputs
						// keep them in lockstep.
						pushBoth(t, sql, qr, qc, mixedDelay(t, row, qi*100+i), mixedDelay(t, col, qi*100+i))
					}
				}
			})
		}
	}
}

// TestColumnarWorkersBitIdentical pins that the columnar path itself is
// worker-count-invariant: bootstrap accuracy at 1 worker and 8 workers
// produces identical results (same RNG substream derivation, same
// summation order).
func TestColumnarWorkersBitIdentical(t *testing.T) {
	cfg := Config{Method: AccuracyBootstrap, Seed: 11, MonteCarloValues: 80, BootstrapResamples: 60}
	one := cfg
	one.Workers = 1
	eight := cfg
	eight.Workers = 8
	e1 := newTestEngine(t, one)
	e8 := newTestEngine(t, eight)
	const sql = "SELECT AVG(delay) AS a, MIN(delay2) AS lo FROM traffic WINDOW 5 ROWS"
	q1, err := e1.Compile(sql)
	if err != nil {
		t.Fatal(err)
	}
	q8, err := e8.Compile(sql)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pushBoth(t, sql, q1, q8, mixedDelay(t, e1, i), mixedDelay(t, e8, i))
	}
}
