package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/accuracy"
)

func sketchConfig() Config {
	return Config{Seed: 7, Method: AccuracyAnalytical, Level: 0.9, Workers: 1}
}

const sketchSQL = "SELECT COUNT(delay) AS c, MIN(delay) AS mn, MAX(delay) AS mx, " +
	"AVG(delay) AS av, SUM(delay) AS sm FROM traffic WINDOW 4 ROWS BACKEND SKETCH"

func TestSketchCompileErrors(t *testing.T) {
	e := newTestEngine(t, sketchConfig())
	for _, raw := range []string{
		// Sketch summaries are per-query, not per-group.
		"SELECT road_id, AVG(delay) AS a FROM traffic GROUP BY road_id WINDOW 4 ROWS BACKEND SKETCH",
		// The block ring slides by rows, not wall-clock time.
		"SELECT AVG(delay) AS a FROM traffic WINDOW 10 SECONDS BACKEND SKETCH",
		// Scalar queries have no window to sketch.
		"SELECT delay FROM traffic BACKEND SKETCH",
	} {
		if _, err := e.Compile(raw); err == nil {
			t.Errorf("Compile(%q): want error", raw)
		}
	}
}

func TestSketchBackendSelection(t *testing.T) {
	e := newTestEngine(t, sketchConfig())
	q, err := e.Compile(sketchSQL)
	if err != nil {
		t.Fatal(err)
	}
	exp := q.Explain()
	if !strings.Contains(exp, "accuracy: sketch") || !strings.Contains(exp, "sketch count window of 4 rows") {
		t.Errorf("Explain misses the sketch plan:\n%s", exp)
	}
	// The per-query clause overrides the engine default in both directions.
	q2, err := e.Compile("SELECT AVG(delay) AS a FROM traffic WINDOW 4 ROWS BACKEND BOOTSTRAP")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q2.Explain(), "accuracy: bootstrap") {
		t.Errorf("BACKEND BOOTSTRAP did not override:\n%s", q2.Explain())
	}
	// No clause: the engine default applies and no sketch window is built.
	q3, err := e.Compile("SELECT AVG(delay) AS a FROM traffic WINDOW 4 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(q3.Explain(), "sketch") {
		t.Errorf("default backend grew a sketch plan:\n%s", q3.Explain())
	}
}

// TestSketchAggregateSemantics drives the full sketch push path on a 4-row
// window (single-row blocks, so the covered rows equal the exact sliding
// window) and checks every aggregate against hand-computed values.
func TestSketchAggregateSemantics(t *testing.T) {
	e := newTestEngine(t, sketchConfig())
	q, err := e.Compile(sketchSQL)
	if err != nil {
		t.Fatal(err)
	}
	means := []float64{60, 40, 75, 55, 90, 10}
	var results []Result
	for i, mu := range means {
		res, err := q.Push(trafficTuple(t, e, 1, mu, 10+i, 50, 20))
		if err != nil {
			t.Fatal(err)
		}
		if i < 3 && len(res) != 0 {
			t.Fatalf("push %d: emitted before the window filled", i)
		}
		if i >= 3 && len(res) != 1 {
			t.Fatalf("push %d: %d results, want 1", i, len(res))
		}
		results = append(results, res...)
	}
	// Last emission covers means[2:6] = {75, 55, 90, 10}.
	last := results[len(results)-1]
	window := means[2:]
	wantMean, wantSum := 0.0, 0.0
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, m := range window {
		wantSum += m
		mn, mx = math.Min(mn, m), math.Max(mx, m)
	}
	wantMean = wantSum / 4
	get := func(name string) float64 {
		idx, ok := last.Tuple.Schema.Index(name)
		if !ok {
			t.Fatalf("no column %q", name)
		}
		return last.Tuple.Fields[idx].Dist.Mean()
	}
	approx(t, "count", get("c"), 4, 0)
	approx(t, "min", get("mn"), mn, 0)
	approx(t, "max", get("mx"), mx, 0)
	approx(t, "avg", get("av"), wantMean, 1e-9)
	approx(t, "sum", get("sm"), wantSum, 1e-9)
	// AVG variance is ΣVar/m²: field variances are 100 each (trafficTuple).
	idx, _ := last.Tuple.Schema.Index("av")
	approx(t, "avg variance", last.Tuple.Fields[idx].Dist.Variance(), 400.0/16, 1e-9)
	// Accuracy info: present for AVG and SUM, tagged sketch, with a window
	// median interval bracketing the sample median of the means.
	for _, name := range []string{"av", "sm"} {
		info := last.Fields[name]
		if info == nil {
			t.Fatalf("no accuracy info for %s", name)
		}
		if info.Method != "sketch" {
			t.Errorf("%s method %q", name, info.Method)
		}
		if info.WindowMedian == nil {
			t.Fatalf("%s: no window median interval", name)
		}
		if med := info.WindowMedian; !(med.Lo <= 65 && 65 <= med.Hi) {
			// Sample median of {10, 55, 75, 90} is between 55 and 75.
			t.Errorf("%s window median %+v does not bracket the sample median", name, med)
		}
	}
	if last.Fields["c"] != nil || last.Fields["mn"] != nil {
		t.Error("deterministic aggregates must carry no interval info")
	}
}

// TestSketchMatchesAnalyticalOnCertainStream is the cross-backend fidelity
// check: with single-row blocks and every tuple certain (p = 1), the sketch
// backend's AVG/SUM distributions and mean/variance intervals must agree
// with the analytical backend over the identical window, up to float
// summation order — the membership widening term is exactly zero.
func TestSketchMatchesAnalyticalOnCertainStream(t *testing.T) {
	eS := newTestEngine(t, sketchConfig())
	eA := newTestEngine(t, sketchConfig())
	qS, err := eS.Compile(sketchSQL)
	if err != nil {
		t.Fatal(err)
	}
	qA, err := eA.Compile("SELECT COUNT(delay) AS c, MIN(delay) AS mn, MAX(delay) AS mx, " +
		"AVG(delay) AS av, SUM(delay) AS sm FROM traffic WINDOW 4 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		mu := 50 + 20*math.Sin(float64(i))
		rs, err := qS.Push(trafficTuple(t, eS, 1, mu, 15, 40, 20))
		if err != nil {
			t.Fatal(err)
		}
		ra, err := qA.Push(trafficTuple(t, eA, 1, mu, 15, 40, 20))
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) == 0 {
			continue // sketch window not yet full
		}
		if len(ra) == 0 {
			t.Fatalf("push %d: sketch emitted but analytical did not", i)
		}
		s, a := rs[0], ra[0]
		for _, name := range []string{"av", "sm"} {
			is, ia := s.Tuple.Schema, a.Tuple.Schema
			si, _ := is.Index(name)
			ai, _ := ia.Index(name)
			fs, fa := s.Tuple.Fields[si], a.Tuple.Fields[ai]
			approx(t, name+" mean", fs.Dist.Mean(), fa.Dist.Mean(), 1e-9*math.Abs(fa.Dist.Mean()))
			approx(t, name+" variance", fs.Dist.Variance(), fa.Dist.Variance(), 1e-9*fa.Dist.Variance())
			if fs.N != fa.N {
				t.Errorf("%s: d.f. %d vs %d", name, fs.N, fa.N)
			}
			infoS, infoA := s.Fields[name], a.Fields[name]
			if infoS == nil || infoA == nil {
				t.Fatalf("%s: missing info (sketch %v, analytical %v)", name, infoS != nil, infoA != nil)
			}
			cmpIv := func(what string, a, b accuracy.Interval) {
				t.Helper()
				tol := 1e-9 * math.Max(1, math.Abs(b.Lo)+math.Abs(b.Hi))
				if math.Abs(a.Lo-b.Lo) > tol || math.Abs(a.Hi-b.Hi) > tol {
					t.Errorf("%s %s: sketch %+v vs analytical %+v", name, what, a, b)
				}
			}
			cmpIv("mean interval", infoS.Mean, infoA.Mean)
			cmpIv("variance interval", infoS.Variance, infoA.Variance)
		}
	}
}

// TestSketchDeterministicAcrossWorkers: the sketch path consumes no RNG, so
// worker count cannot influence any emitted bit.
func TestSketchDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		cfg := sketchConfig()
		cfg.Workers = workers
		e := newTestEngine(t, cfg)
		q, err := e.Compile(sketchSQL)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 40; i++ {
			res, err := q.Push(trafficTuple(t, e, 1, 30+float64(i*7%50), 10+i%5, 40, 20))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res {
				for j, f := range r.Tuple.Fields {
					fmt.Fprintf(&b, "%d:%x/%x/%d ", j, f.Dist.Mean(), f.Dist.Variance(), f.N)
				}
				for _, name := range []string{"av", "sm"} {
					if info := r.Fields[name]; info != nil {
						fmt.Fprintf(&b, "%s[%x %x %x %x]", name, info.Mean.Lo, info.Mean.Hi,
							info.WindowMedian.Lo, info.WindowMedian.Hi)
					}
				}
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	if w1, w8 := run(1), run(8); w1 != w8 {
		t.Fatal("sketch results differ between workers=1 and workers=8")
	}
}

// TestSketchSnapshotRoundTrip: capturing mid-window and restoring into a
// fresh compile continues bit-identically — the engine half of checkpoint
// recovery and replica catch-up for sketch queries.
func TestSketchSnapshotRoundTrip(t *testing.T) {
	eA := newTestEngine(t, sketchConfig())
	qA, err := eA.Compile(sketchSQL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := qA.Push(trafficTuple(t, eA, 1, float64(20+i*3), 10, 40, 20)); err != nil {
			t.Fatal(err)
		}
	}
	st := qA.State()
	if st.Sketch == nil {
		t.Fatal("sketch query state has no sketch window")
	}
	if st.Window != nil || st.ColWindow != nil {
		t.Fatal("sketch query state carries a materialized window")
	}
	eB := newTestEngine(t, sketchConfig())
	qB, err := eB.Compile(sketchSQL)
	if err != nil {
		t.Fatal(err)
	}
	if err := qB.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i := 7; i < 20; i++ {
		ra, err := qA.Push(trafficTuple(t, eA, 1, float64(20+i*3), 10, 40, 20))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := qB.Push(trafficTuple(t, eB, 1, float64(20+i*3), 10, 40, 20))
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("push %d: %d vs %d results", i, len(ra), len(rb))
		}
		for j := range ra {
			for k := range ra[j].Tuple.Fields {
				fa, fb := ra[j].Tuple.Fields[k], rb[j].Tuple.Fields[k]
				if fa.Dist.Mean() != fb.Dist.Mean() || fa.Dist.Variance() != fb.Dist.Variance() {
					t.Fatalf("push %d field %d diverged after restore", i, k)
				}
			}
		}
	}
}

func TestSketchSnapshotRejectsMismatch(t *testing.T) {
	e := newTestEngine(t, sketchConfig())
	qSketch, err := e.Compile(sketchSQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qSketch.Push(trafficTuple(t, e, 1, 50, 10, 40, 20)); err != nil {
		t.Fatal(err)
	}
	st := qSketch.State()

	// Sketch state into a non-sketch query.
	qPlain, err := e.Compile("SELECT AVG(delay) AS a FROM traffic WINDOW 4 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	if err := qPlain.SetState(st); err == nil {
		t.Error("sketch state restored into a non-sketch query")
	}

	// Geometry mismatch: same backend, different window size.
	qOther, err := e.Compile("SELECT COUNT(delay) AS c, MIN(delay) AS mn, MAX(delay) AS mx, " +
		"AVG(delay) AS av, SUM(delay) AS sm FROM traffic WINDOW 8 ROWS BACKEND SKETCH")
	if err != nil {
		t.Fatal(err)
	}
	if err := qOther.SetState(st); err == nil {
		t.Error("sketch state restored across mismatched geometry")
	}

	// Corrupted sketch state must be rejected by validation.
	st2 := qSketch.State()
	st2.Sketch.LiveRows++
	qFresh, err := e.Compile(sketchSQL)
	if err != nil {
		t.Fatal(err)
	}
	if err := qFresh.SetState(st2); err == nil {
		t.Error("corrupted sketch state accepted")
	}
}

// TestSketchMembershipWidensIntervals: an uncertain stream (p < 1) must widen
// the sketch mean interval relative to the identical certain stream — the
// honest-interval contract of the probabilistic moments.
func TestSketchMembershipWidensIntervals(t *testing.T) {
	width := func(minProb float64, filter string) float64 {
		cfg := sketchConfig()
		cfg.MinProb = minProb
		e := newTestEngine(t, cfg)
		q, err := e.Compile("SELECT AVG(delay) AS a FROM traffic" + filter + " WINDOW 4 ROWS BACKEND SKETCH")
		if err != nil {
			t.Fatal(err)
		}
		var got float64
		for i := 0; i < 8; i++ {
			res, err := q.Push(trafficTuple(t, e, 1, 60+float64(i), 25, 40, 20))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res {
				if info := r.Fields["a"]; info != nil {
					got = info.Mean.Hi - info.Mean.Lo
				}
			}
		}
		if got == 0 {
			t.Fatal("no interval emitted")
		}
		return got
	}
	certain := width(0, "")
	// The WHERE predicate answers probabilistically, so surviving tuples
	// carry p < 1 and the membership term is positive.
	uncertain := width(0.05, " WHERE delay > 55")
	if uncertain <= certain {
		t.Errorf("membership uncertainty did not widen the interval: certain %g, uncertain %g",
			certain, uncertain)
	}
}
