package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// bench9: the multi-query planner's headline numbers. A production load is
// many continuous queries differing only in labels; with shared
// per-(stream, field, window, backend) state, 1000 identical-window
// queries should cost roughly one query's learning work per tuple (the
// window push and the closed-form moment scan run once; each extra member
// pays only an emission replay), where fully independent queries pay the
// whole O(window) scan per query per tuple.

const (
	planBenchWindow  = 131072
	planBenchQueries = 1000
)

// benchMultiQueryEngine binds nq copies of the same windowed AVG and
// prefills the window so every subsequent push emits.
func benchMultiQueryEngine(b *testing.B, nq int, noShared bool) *Engine {
	b.Helper()
	e, err := NewEngine(Config{Seed: 7, Method: AccuracyAnalytical, Level: 0.9, Workers: 1, NoSharedState: noShared})
	if err != nil {
		b.Fatal(err)
	}
	schema, err := stream.NewSchema("bench",
		stream.Column{Name: "k"},
		stream.Column{Name: "val", Probabilistic: true},
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.RegisterStream(schema); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nq; i++ {
		q, err := e.Compile("SELECT AVG(val) AS a FROM bench WINDOW 131072 ROWS")
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Bind(benchQueryID(i), q); err != nil {
			b.Fatal(err)
		}
	}
	// Prefill in chunks; the windows are not yet full, so this is the
	// cheap phase even for independent queries.
	const chunk = 4096
	rows := make([]IngestRow, chunk)
	for filled := 0; filled < planBenchWindow; filled += chunk {
		for j := range rows {
			rows[j] = benchRow(b, filled+j)
		}
		if _, err := e.IngestBatch("bench", rows, nil); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

func benchQueryID(i int) string {
	return "q" + string([]byte{byte('0' + i/100%10), byte('0' + i/10%10), byte('0' + i%10)})
}

func benchRow(b *testing.B, i int) IngestRow {
	d, err := dist.NewNormal(40+float64(i%50), 9)
	if err != nil {
		b.Fatal(err)
	}
	return IngestRow{Fields: []randvar.Field{randvar.Det(float64(i)), {Dist: d, N: 25}}, Time: int64(i)}
}

func benchSteadyPush(b *testing.B, e *Engine) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.IngestBatch("bench", []IngestRow{benchRow(b, planBenchWindow+i)}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for k := range out {
			if out[k].Err != nil {
				b.Fatal(out[k].Err)
			}
		}
	}
}

// BenchmarkPlanner1kShared: 1000 identical queries, shared state. Target:
// within ~2x of BenchmarkPlannerSingleQuery per tuple.
func BenchmarkPlanner1kShared(b *testing.B) {
	benchSteadyPush(b, benchMultiQueryEngine(b, planBenchQueries, false))
}

// BenchmarkPlanner1kIndependent: the same 1000 queries with the planner
// disabled — every query pays the full window scan per tuple.
func BenchmarkPlanner1kIndependent(b *testing.B) {
	benchSteadyPush(b, benchMultiQueryEngine(b, planBenchQueries, true))
}

// BenchmarkPlannerSingleQuery: the one-query floor the shared fleet is
// measured against.
func BenchmarkPlannerSingleQuery(b *testing.B) {
	benchSteadyPush(b, benchMultiQueryEngine(b, 1, false))
}
