package core

import (
	"fmt"
	"math"

	"repro/internal/hypothesis"
	"repro/internal/randvar"
	"repro/internal/sql"
	"repro/internal/stream"
)

// predOutcome is the evaluation of a WHERE clause against one tuple under
// the possible-world semantics: the probability the predicate holds, the
// d.f. sample size behind that probability (Lemma 3; 0 when exact), and
// whether a significance predicate answered UNSURE.
type predOutcome struct {
	Prob   float64
	N      int
	Unsure bool
}

// compiledPred evaluates a boolean expression against one tuple.
type compiledPred func(ev *randvar.Evaluator, t *stream.Tuple) (predOutcome, error)

// combineN merges d.f. sample sizes per Lemma 3 (0 = exact, does not
// constrain).
func combineN(a, b int) int {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

// compilePredicate compiles a WHERE expression. Atoms on independent
// columns combine under the independence assumption: AND multiplies
// probabilities, OR uses inclusion–exclusion, NOT complements.
func compilePredicate(schema *stream.Schema, expr sql.Expr, cfg Config) (compiledPred, error) {
	switch e := expr.(type) {
	case *sql.LogicalExpr:
		l, err := compilePredicate(schema, e.L, cfg)
		if err != nil {
			return nil, err
		}
		r, err := compilePredicate(schema, e.R, cfg)
		if err != nil {
			return nil, err
		}
		isAnd := e.Op == "AND"
		return func(ev *randvar.Evaluator, t *stream.Tuple) (predOutcome, error) {
			lo, err := l(ev, t)
			if err != nil {
				return predOutcome{}, err
			}
			ro, err := r(ev, t)
			if err != nil {
				return predOutcome{}, err
			}
			out := predOutcome{
				N:      combineN(lo.N, ro.N),
				Unsure: lo.Unsure || ro.Unsure,
			}
			if isAnd {
				out.Prob = lo.Prob * ro.Prob
			} else {
				out.Prob = lo.Prob + ro.Prob - lo.Prob*ro.Prob
			}
			return out, nil
		}, nil
	case *sql.NotExpr:
		x, err := compilePredicate(schema, e.X, cfg)
		if err != nil {
			return nil, err
		}
		return func(ev *randvar.Evaluator, t *stream.Tuple) (predOutcome, error) {
			o, err := x(ev, t)
			if err != nil {
				return predOutcome{}, err
			}
			o.Prob = 1 - o.Prob
			return o, nil
		}, nil
	case *sql.CmpExpr:
		return compileCmpAtom(schema, e)
	case *sql.CallExpr:
		return compilePredicateCall(schema, e, cfg)
	}
	return nil, fmt.Errorf("core: %s is not a boolean predicate", expr)
}

// compileCmpAtom compiles "exprL op exprR". The general strategy evaluates
// D = exprL − exprR as a random variable and returns P(D op 0); when both
// sides are deterministic the comparison is exact.
func compileCmpAtom(schema *stream.Schema, e *sql.CmpExpr) (compiledPred, error) {
	// PROB(...) >= tau and friends: the left side is the PROB call.
	if call, ok := e.L.(*sql.CallExpr); ok && call.Func == "PROB" {
		return compileProbThreshold(schema, call, e.Op, e.R)
	}
	if call, ok := e.R.(*sql.CallExpr); ok && call.Func == "PROB" {
		flipped, err := flipCmp(e.Op)
		if err != nil {
			return nil, err
		}
		return compileProbThreshold(schema, call, flipped, e.L)
	}
	// Fast path: "col op const" (either order) evaluates directly on the
	// field's distribution — no Monte Carlo — preserving point masses of
	// discrete distributions and the paper's CDF-based probability
	// computation.
	if pred, ok, err := compileColConstAtom(schema, e); err != nil {
		return nil, err
	} else if ok {
		return pred, nil
	}
	diff := &sql.BinaryExpr{Op: "-", L: e.L, R: e.R}
	ce, err := compileScalarExpr(schema, diff)
	if err != nil {
		return nil, err
	}
	op := e.Op
	return func(ev *randvar.Evaluator, t *stream.Tuple) (predOutcome, error) {
		res, err := ce.eval(ev, t)
		if err != nil {
			return predOutcome{}, err
		}
		f := res.Field
		if f.IsDet() {
			v := f.Dist.Mean()
			return predOutcome{Prob: boolProb(cmpScalar(v, op))}, nil
		}
		var p float64
		switch op {
		case ">", ">=":
			p = 1 - f.Dist.CDF(0)
		case "<", "<=":
			p = f.Dist.CDF(0)
		case "=":
			p = pointMass(f, 0)
		case "<>":
			p = 1 - pointMass(f, 0)
		default:
			return predOutcome{}, fmt.Errorf("core: unsupported comparison %q", op)
		}
		return predOutcome{Prob: p, N: f.N}, nil
	}, nil
}

// compileColConstAtom handles "col op const" and "const op col" directly
// against the column's distribution. ok is false when the comparison has a
// different shape.
func compileColConstAtom(schema *stream.Schema, e *sql.CmpExpr) (compiledPred, bool, error) {
	col, colOK := e.L.(*sql.ColumnRef)
	op := e.Op
	var constExpr sql.Expr = e.R
	if !colOK {
		if col, colOK = e.R.(*sql.ColumnRef); !colOK {
			return nil, false, nil
		}
		flipped, err := flipCmp(e.Op)
		if err != nil {
			return nil, false, nil // unusual op: fall back to the general path
		}
		op = flipped
		constExpr = e.L
	}
	c, err := constValue(constExpr)
	if err != nil {
		return nil, false, nil // not a constant: general path
	}
	idx, ok := schema.Index(col.Name)
	if !ok {
		return nil, false, fmt.Errorf("core: unknown column %q", col.Name)
	}
	return func(_ *randvar.Evaluator, t *stream.Tuple) (predOutcome, error) {
		f := t.Fields[idx]
		if f.IsDet() {
			return predOutcome{Prob: boolProb(cmpScalar(f.Dist.Mean()-c, op))}, nil
		}
		var p float64
		switch op {
		case ">":
			// CDF(c) includes P(X = c) for discrete distributions, so
			// 1 − CDF(c) is exactly P(X > c).
			p = 1 - f.Dist.CDF(c)
		case ">=":
			p = 1 - f.Dist.CDF(c) + pointMass(f, c)
		case "<":
			p = f.Dist.CDF(c) - pointMass(f, c)
		case "<=":
			p = f.Dist.CDF(c)
		case "=":
			p = pointMass(f, c)
		case "<>":
			p = 1 - pointMass(f, c)
		default:
			return predOutcome{}, fmt.Errorf("core: unsupported comparison %q", op)
		}
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		return predOutcome{Prob: p, N: f.N}, nil
	}, true, nil
}

// cmpScalar applies op to a deterministic difference v (= L − R).
func cmpScalar(v float64, op string) bool {
	switch op {
	case ">":
		return v > 0
	case ">=":
		return v >= 0
	case "<":
		return v < 0
	case "<=":
		return v <= 0
	case "=":
		return v == 0
	case "<>":
		return v != 0
	}
	return false
}

func boolProb(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// pointMass returns P(X = v); nonzero only for distributions with atoms.
func pointMass(f randvar.Field, v float64) float64 {
	type pointProber interface{ Prob(float64) float64 }
	if d, ok := f.Dist.(pointProber); ok {
		return d.Prob(v)
	}
	return 0
}

func flipCmp(op string) (string, error) {
	switch op {
	case ">":
		return "<", nil
	case "<":
		return ">", nil
	case ">=":
		return "<=", nil
	case "<=":
		return ">=", nil
	case "=", "<>":
		return op, nil
	}
	return "", fmt.Errorf("core: unsupported comparison %q", op)
}

// compileProbThreshold compiles PROB(inner) op tau — the paper's
// probability-threshold predicate. The decision is boolean (accuracy
// oblivious, unlike pTest).
func compileProbThreshold(schema *stream.Schema, call *sql.CallExpr, op string, tauExpr sql.Expr) (compiledPred, error) {
	if len(call.Args) != 1 {
		return nil, fmt.Errorf("core: PROB takes 1 argument, got %d", len(call.Args))
	}
	inner, ok := call.Args[0].(*sql.CmpExpr)
	if !ok {
		return nil, fmt.Errorf("core: PROB argument must be a comparison, got %s", call.Args[0])
	}
	innerPred, err := compileCmpAtom(schema, inner)
	if err != nil {
		return nil, err
	}
	tau, err := constValue(tauExpr)
	if err != nil {
		return nil, fmt.Errorf("core: PROB threshold: %w", err)
	}
	if tau < 0 || tau > 1 {
		return nil, fmt.Errorf("core: PROB threshold %v outside [0,1]", tau)
	}
	return func(ev *randvar.Evaluator, t *stream.Tuple) (predOutcome, error) {
		o, err := innerPred(ev, t)
		if err != nil {
			return predOutcome{}, err
		}
		return predOutcome{Prob: boolProb(cmpScalar(o.Prob-tau, op))}, nil
	}, nil
}

// compilePredicateCall compiles the significance predicates MTEST, MDTEST,
// and PTEST. With one significance level the basic (single) test runs; with
// two, algorithm COUPLED-TESTS bounds both error rates, and UNSURE is
// surfaced in the outcome.
func compilePredicateCall(schema *stream.Schema, call *sql.CallExpr, cfg Config) (compiledPred, error) {
	switch call.Func {
	case "PROB":
		return nil, fmt.Errorf("core: PROB(...) must be compared against a threshold, e.g. PROB(x > 5) >= 0.8")
	case "MTEST":
		// MTEST(col, 'op', c, α₁ [, α₂])
		if len(call.Args) != 4 && len(call.Args) != 5 {
			return nil, fmt.Errorf("core: MTEST takes 4 or 5 arguments, got %d", len(call.Args))
		}
		colIdx, err := probColumnArg(schema, call.Args[0], "MTEST field")
		if err != nil {
			return nil, err
		}
		op, err := opArg(call.Args[1])
		if err != nil {
			return nil, err
		}
		c, err := constValue(call.Args[2])
		if err != nil {
			return nil, err
		}
		a1, a2, coupled, err := alphaArgs(call.Args[3:])
		if err != nil {
			return nil, err
		}
		return func(_ *randvar.Evaluator, t *stream.Tuple) (predOutcome, error) {
			f := t.Fields[colIdx]
			stats, err := fieldStats(f)
			if err != nil {
				return predOutcome{}, err
			}
			if coupled {
				res, err := hypothesis.CoupledMTest(stats, op, c, a1, a2)
				return sigOutcome(res), err
			}
			ok, err := hypothesis.MTest(stats, op, c, a1)
			return predOutcome{Prob: boolProb(ok)}, err
		}, nil
	case "MDTEST":
		// MDTEST(colX, colY, 'op', c, α₁ [, α₂])
		if len(call.Args) != 5 && len(call.Args) != 6 {
			return nil, fmt.Errorf("core: MDTEST takes 5 or 6 arguments, got %d", len(call.Args))
		}
		xIdx, err := probColumnArg(schema, call.Args[0], "MDTEST field X")
		if err != nil {
			return nil, err
		}
		yIdx, err := probColumnArg(schema, call.Args[1], "MDTEST field Y")
		if err != nil {
			return nil, err
		}
		op, err := opArg(call.Args[2])
		if err != nil {
			return nil, err
		}
		c, err := constValue(call.Args[3])
		if err != nil {
			return nil, err
		}
		a1, a2, coupled, err := alphaArgs(call.Args[4:])
		if err != nil {
			return nil, err
		}
		return func(_ *randvar.Evaluator, t *stream.Tuple) (predOutcome, error) {
			xs, err := fieldStats(t.Fields[xIdx])
			if err != nil {
				return predOutcome{}, err
			}
			ys, err := fieldStats(t.Fields[yIdx])
			if err != nil {
				return predOutcome{}, err
			}
			if coupled {
				res, err := hypothesis.CoupledMDTest(xs, ys, op, c, a1, a2)
				return sigOutcome(res), err
			}
			ok, err := hypothesis.MDTest(xs, ys, op, c, a1)
			return predOutcome{Prob: boolProb(ok)}, err
		}, nil
	case "KSTEST":
		// KSTEST(colX, colY, α) — are the two distributions different?
		// KSTEST(colX, colY, minEffect, α₁, α₂) — coupled three-state form.
		if len(call.Args) != 3 && len(call.Args) != 5 {
			return nil, fmt.Errorf("core: KSTEST takes 3 or 5 arguments, got %d", len(call.Args))
		}
		xIdx, err := probColumnArg(schema, call.Args[0], "KSTEST field X")
		if err != nil {
			return nil, err
		}
		yIdx, err := probColumnArg(schema, call.Args[1], "KSTEST field Y")
		if err != nil {
			return nil, err
		}
		if len(call.Args) == 3 {
			alpha, err := constValue(call.Args[2])
			if err != nil {
				return nil, err
			}
			if badAlpha(alpha) {
				return nil, fmt.Errorf("core: significance level %v outside (0,1)", alpha)
			}
			return func(_ *randvar.Evaluator, t *stream.Tuple) (predOutcome, error) {
				fx, fy := t.Fields[xIdx], t.Fields[yIdx]
				if fx.N < 2 || fy.N < 2 {
					return predOutcome{}, fmt.Errorf("core: KSTEST needs sampled fields")
				}
				reject, _, _, err := hypothesis.KSTest(fx.Dist, fx.N, fy.Dist, fy.N, alpha)
				return predOutcome{Prob: boolProb(reject)}, err
			}, nil
		}
		minEffect, err := constValue(call.Args[2])
		if err != nil {
			return nil, err
		}
		a1, a2, _, err := alphaArgs(call.Args[3:])
		if err != nil {
			return nil, err
		}
		return func(_ *randvar.Evaluator, t *stream.Tuple) (predOutcome, error) {
			fx, fy := t.Fields[xIdx], t.Fields[yIdx]
			if fx.N < 2 || fy.N < 2 {
				return predOutcome{}, fmt.Errorf("core: KSTEST needs sampled fields")
			}
			res, err := hypothesis.CoupledKSTest(fx.Dist, fx.N, fy.Dist, fy.N, minEffect, a1, a2)
			return sigOutcome(res), err
		}, nil
	case "PTEST":
		// PTEST(pred, τ, α₁ [, α₂]); H1 is Pr[pred] > τ as in §IV-B.
		if len(call.Args) != 3 && len(call.Args) != 4 {
			return nil, fmt.Errorf("core: PTEST takes 3 or 4 arguments, got %d", len(call.Args))
		}
		inner, ok := call.Args[0].(*sql.CmpExpr)
		if !ok {
			return nil, fmt.Errorf("core: PTEST predicate must be a comparison, got %s", call.Args[0])
		}
		// PTEST consumes the inner predicate's d.f. sample size. A
		// probability-threshold comparison yields an exact boolean (N = 0)
		// and a comparison over only deterministic columns yields a point
		// mass (N = 0); either shape would fail on every tuple at emission,
		// so reject both at plan time.
		isProb := func(e sql.Expr) bool {
			c, ok := e.(*sql.CallExpr)
			return ok && c.Func == "PROB"
		}
		if isProb(inner.L) || isProb(inner.R) {
			return nil, fmt.Errorf("core: PTEST predicate %s is a probability-threshold comparison, which carries no sample size; test the comparison directly", inner)
		}
		if !refsProbColumn(schema, inner) {
			return nil, fmt.Errorf("core: PTEST predicate %s references no probabilistic column, so no sample size is available", inner)
		}
		innerPred, err := compileCmpAtom(schema, inner)
		if err != nil {
			return nil, err
		}
		tau, err := constValue(call.Args[1])
		if err != nil {
			return nil, err
		}
		a1, a2, coupled, err := alphaArgs(call.Args[2:])
		if err != nil {
			return nil, err
		}
		return func(ev *randvar.Evaluator, t *stream.Tuple) (predOutcome, error) {
			o, err := innerPred(ev, t)
			if err != nil {
				return predOutcome{}, err
			}
			if o.N < 1 {
				return predOutcome{}, fmt.Errorf("core: PTEST needs a sampled field (no sample size available)")
			}
			if coupled {
				res, err := hypothesis.CoupledPTest(o.Prob, o.N, hypothesis.Greater, tau, a1, a2)
				return sigOutcome(res), err
			}
			ok, err := hypothesis.PTest(o.Prob, o.N, hypothesis.Greater, tau, a1)
			return predOutcome{Prob: boolProb(ok)}, err
		}, nil
	}
	return nil, fmt.Errorf("core: %s is not a boolean predicate", call.Func)
}

func sigOutcome(r hypothesis.Result) predOutcome {
	switch r {
	case hypothesis.True:
		return predOutcome{Prob: 1}
	case hypothesis.False:
		return predOutcome{Prob: 0}
	default:
		// UNSURE: the data cannot support a decision at the requested
		// error rates. The tuple passes through (Prob 1) with the Unsure
		// flag set; the engine drops or keeps it per Config.DropUnsure.
		return predOutcome{Prob: 1, Unsure: true}
	}
}

// fieldStats derives test statistics from a probabilistic field, requiring
// a retained sample size.
func fieldStats(f randvar.Field) (hypothesis.Stats, error) {
	if f.N < 2 {
		return hypothesis.Stats{}, fmt.Errorf("core: significance predicate needs a field with sample size ≥ 2, have %d", f.N)
	}
	return hypothesis.StatsFromDistribution(f.Dist, f.N)
}

// columnArg resolves an argument that must be a column reference.
// probColumnArg resolves a column argument that must be probabilistic. The
// significance tests consume per-field sample statistics (mean, variance,
// sample size) which deterministic columns never carry, so such predicates
// fail on every tuple; rejecting them here moves that deterministic failure
// from first emission to REGISTER time.
func probColumnArg(schema *stream.Schema, e sql.Expr, what string) (int, error) {
	idx, err := columnArg(schema, e, what)
	if err != nil {
		return 0, err
	}
	if !schema.Columns[idx].Probabilistic {
		return 0, fmt.Errorf("core: %s must be a probabilistic column; %q is deterministic",
			what, schema.Columns[idx].Name)
	}
	return idx, nil
}

// refsProbColumn reports whether any column referenced by e is
// probabilistic. Expressions over only deterministic columns evaluate to
// point masses with no sample size, so sample-size-hungry predicates over
// them fail on every tuple — callers reject such shapes at plan time.
func refsProbColumn(schema *stream.Schema, e sql.Expr) bool {
	switch x := e.(type) {
	case *sql.ColumnRef:
		idx, ok := schema.Index(x.Name)
		return ok && schema.Columns[idx].Probabilistic
	case *sql.CmpExpr:
		return refsProbColumn(schema, x.L) || refsProbColumn(schema, x.R)
	case *sql.BinaryExpr:
		return refsProbColumn(schema, x.L) || refsProbColumn(schema, x.R)
	case *sql.LogicalExpr:
		return refsProbColumn(schema, x.L) || refsProbColumn(schema, x.R)
	case *sql.UnaryExpr:
		return refsProbColumn(schema, x.X)
	case *sql.NotExpr:
		return refsProbColumn(schema, x.X)
	case *sql.CallExpr:
		for _, a := range x.Args {
			if refsProbColumn(schema, a) {
				return true
			}
		}
	}
	return false
}

func columnArg(schema *stream.Schema, e sql.Expr, what string) (int, error) {
	col, ok := e.(*sql.ColumnRef)
	if !ok {
		return 0, fmt.Errorf("core: %s must be a column, got %s", what, e)
	}
	idx, ok := schema.Index(col.Name)
	if !ok {
		return 0, fmt.Errorf("core: unknown column %q", col.Name)
	}
	return idx, nil
}

// opArg resolves a quoted operator argument ('<', '>', '<>').
func opArg(e sql.Expr) (hypothesis.Op, error) {
	s, ok := e.(*sql.StringLit)
	if !ok {
		return 0, fmt.Errorf("core: test operator must be a quoted string, got %s", e)
	}
	return hypothesis.ParseOp(s.Value)
}

// constValue resolves a numeric literal argument.
func constValue(e sql.Expr) (float64, error) {
	switch v := e.(type) {
	case *sql.NumberLit:
		return v.Value, nil
	case *sql.UnaryExpr:
		if inner, ok := v.X.(*sql.NumberLit); ok && v.Op == "-" {
			return -inner.Value, nil
		}
	}
	return 0, fmt.Errorf("core: expected a numeric constant, got %s", e)
}

// alphaArgs parses the trailing significance levels: one (single test) or
// two (coupled tests).
func alphaArgs(args []sql.Expr) (a1, a2 float64, coupled bool, err error) {
	a1, err = constValue(args[0])
	if err != nil {
		return 0, 0, false, err
	}
	if badAlpha(a1) {
		return 0, 0, false, fmt.Errorf("core: significance level %v outside (0,1)", a1)
	}
	if len(args) == 2 {
		a2, err = constValue(args[1])
		if err != nil {
			return 0, 0, false, err
		}
		if badAlpha(a2) {
			return 0, 0, false, fmt.Errorf("core: significance level %v outside (0,1)", a2)
		}
		return a1, a2, true, nil
	}
	return a1, 0, false, nil
}

func badAlpha(a float64) bool { return math.IsNaN(a) || a <= 0 || a >= 1 }
