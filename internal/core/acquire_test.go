package core

import (
	"errors"
	"testing"

	"repro/internal/dist"
	"repro/internal/hypothesis"
)

// normalSource draws from a fixed distribution.
func normalSource(mu, sigma2 float64, seed uint64) Source {
	rng := dist.NewRand(seed)
	nd, _ := dist.NewNormal(mu, sigma2)
	return func(n int) ([]float64, error) {
		return dist.SampleN(nd, n, rng), nil
	}
}

func TestAcquireRuleValidation(t *testing.T) {
	src := normalSource(0, 1, 1)
	if _, err := Acquire(nil, AcquireRule{MaxWidth: 1}); err == nil {
		t.Error("nil source: want error")
	}
	bad := []AcquireRule{
		{},                               // no stopping rule
		{MaxWidth: -1},                   // negative width
		{MaxWidth: 1, Level: 2},          // bad level
		{MaxWidth: 1, Batch: -1},         // bad batch
		{MaxWidth: 1, MaxN: 3, MinN: 10}, // budget below MinN
		{Test: &AcquireTest{Op: hypothesis.Greater, C: 0, Alpha1: 0, Alpha2: 0.05}},
	}
	for i, r := range bad {
		if _, err := Acquire(src, r); err == nil {
			t.Errorf("rule %d: want error", i)
		}
	}
}

func TestAcquireStopsOnWidth(t *testing.T) {
	res, err := Acquire(normalSource(52, 36, 7), AcquireRule{
		MaxWidth: 2,
		MaxN:     10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopWidth {
		t.Fatalf("reason = %q, want width", res.Reason)
	}
	if res.Mean.Length() > 2 {
		t.Errorf("final interval %v wider than target", res.Mean)
	}
	// 90% interval width 2 with σ=6 needs n ≈ (1.645·6/1)² ≈ 97.
	n := res.Sample.Size()
	if n < 50 || n > 300 {
		t.Errorf("stopped after %d observations, expected ≈100", n)
	}
	if !res.Mean.Contains(52) {
		t.Logf("interval %v missed the true mean (allowed at 90%%)", res.Mean)
	}
}

func TestAcquireStopsOnDecision(t *testing.T) {
	res, err := Acquire(normalSource(52, 36, 9), AcquireRule{
		Test: &AcquireTest{Op: hypothesis.Greater, C: 50, Alpha1: 0.05, Alpha2: 0.05},
		MaxN: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopDecided || res.Decision != hypothesis.True {
		t.Fatalf("reason %q decision %v, want decided TRUE", res.Reason, res.Decision)
	}
	// The decision should arrive long before a narrow-width rule would.
	if res.Sample.Size() > 400 {
		t.Errorf("decision took %d observations", res.Sample.Size())
	}
	// The opposite hypothesis decides FALSE.
	res, err = Acquire(normalSource(52, 36, 10), AcquireRule{
		Test: &AcquireTest{Op: hypothesis.Greater, C: 54, Alpha1: 0.05, Alpha2: 0.05},
		MaxN: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopDecided || res.Decision != hypothesis.False {
		t.Fatalf("reason %q decision %v, want decided FALSE", res.Reason, res.Decision)
	}
}

func TestAcquireBudget(t *testing.T) {
	// Mean exactly at the threshold: the test can never decide; the
	// budget stops the loop.
	res, err := Acquire(normalSource(50, 36, 11), AcquireRule{
		Test: &AcquireTest{Op: hypothesis.Greater, C: 50, Alpha1: 0.01, Alpha2: 0.01},
		MaxN: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopBudget {
		t.Fatalf("reason = %q, want budget", res.Reason)
	}
	if res.Sample.Size() != 200 {
		t.Errorf("acquired %d, want exactly the 200 budget", res.Sample.Size())
	}
	if res.Decision != hypothesis.Unsure {
		t.Errorf("decision = %v, want UNSURE", res.Decision)
	}
}

func TestAcquireExhaustedSource(t *testing.T) {
	// A source that dries up after 7 observations.
	remaining := 7
	rng := dist.NewRand(3)
	src := func(n int) ([]float64, error) {
		if n > remaining {
			n = remaining
		}
		remaining -= n
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out, nil
	}
	res, err := Acquire(src, AcquireRule{MaxWidth: 0.001, MaxN: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopBudget || res.Sample.Size() != 7 {
		t.Fatalf("reason %q size %d, want budget/7", res.Reason, res.Sample.Size())
	}
}

func TestAcquireSourceError(t *testing.T) {
	boom := errors.New("sensor offline")
	src := func(int) ([]float64, error) { return nil, boom }
	if _, err := Acquire(src, AcquireRule{MaxWidth: 1}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestAcquireMinNDefersDecision(t *testing.T) {
	// With an absurdly wide MaxWidth, the first check would stop
	// immediately; MinN forces at least 50 observations.
	res, err := Acquire(normalSource(0, 1, 13), AcquireRule{
		MaxWidth: 100,
		MinN:     50,
		Batch:    10,
		MaxN:     1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sample.Size() < 50 {
		t.Errorf("stopped at %d before MinN", res.Sample.Size())
	}
	if res.Rounds < 5 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}
