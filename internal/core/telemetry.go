package core

import (
	"math"
	"sync"

	"repro/internal/accuracy"
	"repro/internal/metrics"
)

// Engine-level and query-level observability. Everything in this file is
// observation-only: instruments read values the query pipeline already
// computed and never feed anything back, so the engine stays bit-identical
// with instrumentation present at any worker count.
var (
	mTuples = metrics.Default.Counter("asdb_engine_tuples_total",
		"tuples constructed via Engine.NewTuple")
	mStreams = metrics.Default.Counter("asdb_engine_streams_total",
		"streams registered")
	mCompiled = metrics.Default.Counter("asdb_engine_queries_compiled_total",
		"continuous queries compiled successfully")
	mPushes = metrics.Default.Counter("asdb_query_push_total",
		"tuples pushed into continuous queries")
	mResults = metrics.Default.Counter("asdb_query_results_total",
		"result tuples emitted by continuous queries")
	hPush = metrics.Default.Histogram("asdb_query_push_seconds",
		"wall time of one Query.Push call", metrics.DefBuckets)
	mRecoveryPushes = metrics.Default.Counter("asdb_query_recovery_push_total",
		"tuples replayed into queries during WAL recovery (segregated from asdb_query_push_total)")

	// Global accuracy telemetry: the live distribution of interval widths
	// the engine is reporting, the paper's figure of merit ("the smaller an
	// interval is, the more accurate the query result is").
	hMeanHW = metrics.Default.Histogram("asdb_accuracy_mean_ci_halfwidth",
		"half-widths of reported mean confidence intervals", accuracyWidthBuckets)
	hTupleProbW = metrics.Default.Histogram("asdb_accuracy_tuple_prob_width",
		"widths of reported tuple-probability intervals", probWidthBuckets)
	gLastDF = metrics.Default.Gauge("asdb_accuracy_last_df_n",
		"d.f. sample size of the most recently decorated field")

	// Load-shedding telemetry: the current degradation level and how many
	// accuracy computations ran with a reduced resample budget.
	gDegrade = metrics.Default.Gauge("asdb_degrade_level",
		"current accuracy-degradation (load-shedding) level; 0 = full accuracy")
	mShedEvals = metrics.Default.Counter("asdb_query_shed_evals_total",
		"accuracy computations evaluated with a shed (reduced) resample budget")
)

// accuracyWidthBuckets spans the CI half-widths seen across the paper's
// experiments (sensor readings ~N(µ, 1..16), n from a handful to thousands).
var accuracyWidthBuckets = []float64{0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// probWidthBuckets spans [0, 1] tuple-probability interval widths.
var probWidthBuckets = []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.25, 0.4, 0.6, 0.8, 1}

// telemetryRing is a fixed-size ring of recent observations plus running
// aggregates over everything ever observed. Rings are written during Push
// (under the query's shard lock) and snapshotted by METRICS from arbitrary
// connections, so queryTelemetry guards them with its own mutex.
const telemetryRingSize = 64

type telemetryRing struct {
	buf   [telemetryRingSize]float64
	n     int // filled slots, ≤ telemetryRingSize
	next  int // insertion cursor
	count uint64
	last  float64
	min   float64
	max   float64
	sum   float64 // running sum over all observations
}

func (r *telemetryRing) observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if r.count == 0 || v < r.min {
		r.min = v
	}
	if r.count == 0 || v > r.max {
		r.max = v
	}
	r.count++
	r.last = v
	r.sum += v
	r.buf[r.next] = v
	r.next = (r.next + 1) % telemetryRingSize
	if r.n < telemetryRingSize {
		r.n++
	}
}

// RollingStat summarizes one telemetry series: running aggregates over the
// query's lifetime plus the mean of the most recent window (≤ 64 samples).
type RollingStat struct {
	Count       uint64  `json:"count"`
	Last        float64 `json:"last"`
	Min         float64 `json:"min"`
	Max         float64 `json:"max"`
	Mean        float64 `json:"mean"`
	RollingMean float64 `json:"rolling_mean"`
	Window      int     `json:"window"`
}

func (r *telemetryRing) snapshot() RollingStat {
	s := RollingStat{Count: r.count, Last: r.last, Min: r.min, Max: r.max, Window: r.n}
	if r.count > 0 {
		s.Mean = r.sum / float64(r.count)
	}
	if r.n > 0 {
		var sum float64
		for i := 0; i < r.n; i++ {
			sum += r.buf[i]
		}
		s.RollingMean = sum / float64(r.n)
	}
	return s
}

// queryTelemetry accumulates per-query accuracy telemetry as results are
// decorated. The per-query rings always update — during WAL replay they are
// reconstructing pre-crash state — while the process-global instruments are
// skipped when the engine is recovering.
type queryTelemetry struct {
	mu        sync.Mutex
	fields    uint64 // fields decorated with accuracy info
	tupleProb uint64 // results carrying a tuple-probability interval
	meanHW    telemetryRing
	varWidth  telemetryRing
	probWidth telemetryRing
	lastDF    int
	minDF     int
	maxDF     int
}

func (qt *queryTelemetry) observeField(info *accuracy.Info, recovering bool) {
	qt.mu.Lock()
	qt.fields++
	qt.meanHW.observe(info.Mean.Length() / 2)
	qt.varWidth.observe(info.Variance.Length())
	if qt.fields == 1 || info.N < qt.minDF {
		qt.minDF = info.N
	}
	if info.N > qt.maxDF {
		qt.maxDF = info.N
	}
	qt.lastDF = info.N
	qt.mu.Unlock()
	if !recovering {
		hMeanHW.Observe(info.Mean.Length() / 2)
		gLastDF.Set(int64(info.N))
	}
}

func (qt *queryTelemetry) observeTupleProb(iv accuracy.Interval, recovering bool) {
	qt.mu.Lock()
	qt.tupleProb++
	qt.probWidth.observe(iv.Length())
	qt.mu.Unlock()
	if !recovering {
		hTupleProbW.Observe(iv.Length())
	}
}

// DFStat summarizes the d.f. sample sizes (Definition 2 / Lemma 3) observed
// on decorated fields.
type DFStat struct {
	Last int `json:"last"`
	Min  int `json:"min"`
	Max  int `json:"max"`
}

// Telemetry is a point-in-time snapshot of a query's accuracy telemetry,
// serialized on the METRICS <id> protocol path.
type Telemetry struct {
	// Fields counts output fields decorated with accuracy info.
	Fields uint64 `json:"fields"`
	// TupleProbs counts results that carried a membership-probability
	// interval.
	TupleProbs uint64 `json:"tuple_probs"`
	// MeanCIHalfWidth tracks (Hi−Lo)/2 of the Lemma 2 mean interval.
	MeanCIHalfWidth RollingStat `json:"mean_ci_halfwidth"`
	// VarianceCIWidth tracks Hi−Lo of the Lemma 2 variance interval.
	VarianceCIWidth RollingStat `json:"variance_ci_width"`
	// TupleProbWidth tracks Hi−Lo of the tuple-probability interval.
	TupleProbWidth RollingStat `json:"tuple_prob_width"`
	// DF tracks the d.f. sample sizes behind the intervals.
	DF DFStat `json:"df"`
}

// Telemetry returns a snapshot of the query's accuracy telemetry. Safe to
// call concurrently with Push.
func (q *Query) Telemetry() Telemetry {
	qt := &q.telem
	qt.mu.Lock()
	defer qt.mu.Unlock()
	return Telemetry{
		Fields:          qt.fields,
		TupleProbs:      qt.tupleProb,
		MeanCIHalfWidth: qt.meanHW.snapshot(),
		VarianceCIWidth: qt.varWidth.snapshot(),
		TupleProbWidth:  qt.probWidth.snapshot(),
		DF:              DFStat{Last: qt.lastDF, Min: qt.minDF, Max: qt.maxDF},
	}
}
