// Package core is the accuracy-aware uncertain stream database engine —
// the paper's primary contribution assembled over the substrates:
//
//   - learned distributions retain their sample sizes (package learn),
//   - query processing propagates de facto sample sizes (Lemma 3, package
//     randvar) through expressions, filters, and window aggregates
//     (package stream),
//   - every query result carries accuracy information — confidence
//     intervals on distribution parameters and on tuple membership
//     probabilities — computed analytically (Theorem 1, package accuracy)
//     or via bootstraps (package bootstrap),
//   - significance predicates with coupled tests gate decisions at
//     user-specified error rates (package hypothesis).
//
// The Engine hosts named streams; Compile turns a SQL statement (package
// sql) into a continuous Query that consumes tuples and emits Results.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/plan"
	"repro/internal/randvar"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// AccuracyMethod selects how query-result accuracy information is obtained
// (§II analytical vs §III bootstrap).
type AccuracyMethod int

const (
	// AccuracyNone disables accuracy computation (the accuracy-oblivious
	// baseline; used to measure pure query-processing throughput).
	AccuracyNone AccuracyMethod = iota
	// AccuracyAnalytical uses Lemmas 1–2 via Theorem 1.
	AccuracyAnalytical
	// AccuracyBootstrap uses algorithm BOOTSTRAP-ACCURACY-INFO.
	AccuracyBootstrap
	// AccuracySketch replaces the materialized window with bounded-memory
	// mergeable sketches (package sketch): O(polylog) memory per window,
	// block-granular slide, and honest — wider, but calibrated — intervals
	// derived from the sketch error bounds. Only ungrouped count-windowed
	// aggregates support it; it is usually selected per query via the SQL
	// BACKEND SKETCH clause rather than engine-wide.
	AccuracySketch
)

func (m AccuracyMethod) String() string {
	switch m {
	case AccuracyNone:
		return "none"
	case AccuracyAnalytical:
		return "analytical"
	case AccuracyBootstrap:
		return "bootstrap"
	case AccuracySketch:
		return "sketch"
	}
	return fmt.Sprintf("AccuracyMethod(%d)", int(m))
}

// Config tunes an Engine. The zero value is usable after Normalize.
type Config struct {
	// Level is the confidence level of reported intervals (default 0.9,
	// the level used throughout the paper's experiments).
	Level float64
	// Method selects the accuracy backend (default analytical).
	Method AccuracyMethod
	// Seed seeds the engine's deterministic RNG (default 1).
	Seed uint64
	// MonteCarloValues is the value-sequence length m for Monte Carlo
	// expression evaluation and bootstrap accuracy (default
	// randvar.DefaultMonteCarloValues).
	MonteCarloValues int
	// HistogramBins is the bucket count for learned result histograms
	// (default randvar.DefaultHistogramBins).
	HistogramBins int
	// BootstrapResamples is the d.f. resample count r when the bootstrap
	// backend must draw its own values (default
	// bootstrap.DefaultResamples).
	BootstrapResamples int
	// DropUnsure controls significance predicates: when true (default),
	// tuples whose coupled test returns UNSURE are dropped; when false
	// they are kept and flagged in the Result.
	DropUnsure bool
	// MinProb drops result tuples whose membership probability falls
	// below it (0 keeps everything).
	MinProb float64
	// Workers bounds the parallelism of the accuracy kernel (bootstrap
	// resample statistics and Monte Carlo draws). Default
	// runtime.GOMAXPROCS(0); 1 runs every accuracy loop serially on the
	// query's goroutine. Results are bit-identical for every value — each
	// work item derives its own RNG substream from the query seed
	// (dist.DeriveSeed), so Workers trades only latency, never output.
	Workers int
	// RowWindows forces the legacy row-oriented (*Tuple ring) storage for
	// count-based aggregate windows instead of the columnar layout. The
	// two layouts are bit-identical in every observable output; the flag
	// exists for equivalence tests and before/after benchmarks.
	RowWindows bool
	// DataDir enables the durability layer: a write-ahead log of ingested
	// tuples and DDL/query registrations plus periodic engine checkpoints
	// live under it, and a daemon started over a non-empty DataDir
	// recovers its pre-crash state deterministically. Empty (the default)
	// disables durability.
	DataDir string
	// FsyncPolicy controls when WAL appends reach stable storage:
	// "always" (fsync per record), "interval" (background fsync, default),
	// or "none" (rely on the OS). Only meaningful with DataDir set.
	FsyncPolicy string
	// CheckpointEvery writes an engine checkpoint after that many WAL
	// records (default 1024), bounding recovery replay time. Only
	// meaningful with DataDir set.
	CheckpointEvery int
	// WALSegmentBytes overrides the WAL segment rotation threshold
	// (default 4MiB; see wal.DefaultSegmentBytes). Smaller segments bound
	// how much history a checkpoint retains — replication catch-up tests
	// use tiny segments to force the snapshot path. Only meaningful with
	// DataDir set.
	WALSegmentBytes int64
	// SketchBlocks is the block count of sketch-backend windows (default
	// sketch.DefaultBlocks): the window slides and emits at block
	// granularity, over-covering by at most one block of rows.
	SketchBlocks int
	// SketchK is the per-level quantile-sketch capacity of sketch-backend
	// windows (default sketch.DefaultQuantileK); larger K tightens the
	// deterministic rank error bound at proportional memory cost.
	SketchK int
	// NoSharedState disables the multi-query planner's shared-state
	// registry: every query keeps private window buffers and computes its
	// own aggregates and accuracy information, as if it were the only
	// query on its stream. Output is bit-identical either way — the flag
	// exists for equivalence tests and for benchmarking shared against
	// independent evaluation.
	NoSharedState bool
}

// Normalize fills defaults and validates ranges.
func (c Config) Normalize() (Config, error) {
	if c.Level == 0 {
		c.Level = 0.9
	}
	if c.Level <= 0 || c.Level >= 1 {
		return c, fmt.Errorf("core: confidence level %v outside (0,1)", c.Level)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MonteCarloValues == 0 {
		c.MonteCarloValues = randvar.DefaultMonteCarloValues
	}
	if c.MonteCarloValues < 2 {
		return c, fmt.Errorf("core: MonteCarloValues %d too small", c.MonteCarloValues)
	}
	if c.HistogramBins == 0 {
		c.HistogramBins = randvar.DefaultHistogramBins
	}
	if c.HistogramBins < 1 {
		return c, fmt.Errorf("core: HistogramBins %d too small", c.HistogramBins)
	}
	if c.BootstrapResamples == 0 {
		c.BootstrapResamples = 20 // paper Example 7
	}
	if c.BootstrapResamples < 2 {
		return c, fmt.Errorf("core: BootstrapResamples %d too small", c.BootstrapResamples)
	}
	if c.MinProb < 0 || c.MinProb > 1 {
		return c, fmt.Errorf("core: MinProb %v outside [0,1]", c.MinProb)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		return c, fmt.Errorf("core: Workers %d, need ≥ 1", c.Workers)
	}
	if c.FsyncPolicy == "" {
		c.FsyncPolicy = "interval"
	}
	switch c.FsyncPolicy {
	case "always", "interval", "none":
	default:
		return c, fmt.Errorf("core: FsyncPolicy %q, want always | interval | none", c.FsyncPolicy)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1024
	}
	if c.CheckpointEvery < 1 {
		return c, fmt.Errorf("core: CheckpointEvery %d, need ≥ 1", c.CheckpointEvery)
	}
	if c.SketchBlocks == 0 {
		c.SketchBlocks = sketch.DefaultBlocks
	}
	if c.SketchBlocks < 1 {
		return c, fmt.Errorf("core: SketchBlocks %d, need ≥ 1", c.SketchBlocks)
	}
	if c.SketchK == 0 {
		c.SketchK = sketch.DefaultQuantileK
	}
	if c.SketchK < 8 {
		return c, fmt.Errorf("core: SketchK %d, need ≥ 8", c.SketchK)
	}
	return c, nil
}

// DefaultConfig returns the engine defaults used across the examples and
// experiments.
func DefaultConfig() Config {
	c, _ := Config{}.Normalize()
	return c
}

// Engine is an accuracy-aware uncertain stream database instance.
// Stream registration and query compilation are safe for concurrent use.
// Ingest is sharded per stream: IngestBatch serializes against the target
// stream's shard lock (plus the shards of any join partners), so inserts
// into unrelated streams proceed in parallel while each compiled Query is
// still driven from exactly one goroutine at a time. Driving a Query
// directly via Push remains single-goroutine by contract.
type Engine struct {
	cfg Config

	// mu guards the streams map and the bound-query index. Shard-level
	// state (streamDef.mu, streamDef.queries) has its own locking.
	mu      sync.RWMutex
	streams map[string]*streamDef
	bound   map[string]*boundQuery

	// seqMu guards the engine sequence counter. It is a leaf lock taken
	// after shard locks; IngestBatch also runs its commit hook under it so
	// that journal order provably equals sequence order.
	seqMu sync.Mutex
	seq   uint64

	// ctlMu serializes Exclusive (control-plane quiesce) so two
	// checkpoints or registrations cannot interleave shard acquisition.
	ctlMu sync.Mutex

	// recovering marks WAL replay: steady-state global metrics are
	// suppressed (segregated into recovery counters) so a recovered
	// engine's metric snapshot matches a clean run's.
	recovering atomic.Bool

	// degrade is the accuracy-degradation (load-shedding) level: 0 = full
	// accuracy, higher levels divide resample counts (see shedDivisor).
	// Transitions are journaled by the server and restored from checkpoints,
	// so replayed runs evaluate queries with the same resample counts — and
	// the same RNG consumption — as the live run.
	degrade atomic.Int32

	// plans is the multi-query planner's shared-state registry (nil when
	// Config.NoSharedState). Group membership mutates only under the
	// Bind/Unbind registration contract; see plan_shared.go.
	plans *plan.Registry
}

// MaxDegradeLevel bounds the load-shedding ladder: each level halves the
// bootstrap/Monte Carlo resample budget relative to the previous one.
const MaxDegradeLevel = 3

// shedDivisor returns the resample-count divisor for a degrade level
// (1, 2, 4, 8 for levels 0..3).
func shedDivisor(level int) int {
	if level <= 0 {
		return 1
	}
	if level > MaxDegradeLevel {
		level = MaxDegradeLevel
	}
	return 1 << level
}

// DegradeLevel returns the current accuracy-degradation level (0 = full
// accuracy).
func (e *Engine) DegradeLevel() int { return int(e.degrade.Load()) }

// SetDegradeLevel sets the accuracy-degradation level, clamped to
// [0, MaxDegradeLevel]. Callers that require deterministic recovery must
// order the transition against ingest (the server journals it under an
// exclusive engine lock).
func (e *Engine) SetDegradeLevel(level int) {
	if level < 0 {
		level = 0
	}
	if level > MaxDegradeLevel {
		level = MaxDegradeLevel
	}
	e.degrade.Store(int32(level))
	gDegrade.Set(int64(level))
}

// streamDef is one stream's shard: its schema, its shard lock, and the
// queries fed by it (sorted by id so delivery order is deterministic).
type streamDef struct {
	name    string // canonical (lower-cased) key
	schema  *stream.Schema
	mu      sync.Mutex
	queries []*boundQuery
}

// boundQuery ties a registered query id to its compiled query and the
// shards (input streams) that must be held to push into it.
type boundQuery struct {
	id   string
	q    *Query
	defs []*streamDef // sorted by name, deduplicated
}

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config) (*Engine, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	eng := &Engine{
		cfg:     norm,
		streams: make(map[string]*streamDef),
		bound:   make(map[string]*boundQuery),
	}
	if !norm.NoSharedState {
		eng.plans = plan.NewRegistry()
	}
	return eng, nil
}

// Config returns the engine's normalized configuration.
func (e *Engine) Config() Config { return e.cfg }

// Planner returns the multi-query planner's shared-state registry, nil
// when Config.NoSharedState disabled it. Exposed for EXPLAIN-style
// introspection and tests; group membership is engine-internal.
func (e *Engine) Planner() *plan.Registry { return e.plans }

// RegisterStream declares a stream with the given schema.
func (e *Engine) RegisterStream(schema *stream.Schema) error {
	if schema == nil {
		return errors.New("core: nil schema")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := keyOf(schema.Name)
	if _, dup := e.streams[key]; dup {
		return fmt.Errorf("core: stream %q already registered", schema.Name)
	}
	e.streams[key] = &streamDef{name: key, schema: schema}
	if !e.recovering.Load() {
		mStreams.Inc()
	}
	return nil
}

// Schema returns the schema of a registered stream.
func (e *Engine) Schema(name string) (*stream.Schema, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	def, ok := e.streams[keyOf(name)]
	if !ok {
		return nil, fmt.Errorf("core: unknown stream %q", name)
	}
	return def.schema, nil
}

// Streams returns the registered stream names, sorted.
func (e *Engine) Streams() []string {
	e.mu.RLock()
	out := make([]string, 0, len(e.streams))
	for _, def := range e.streams {
		out = append(out, def.schema.Name)
	}
	e.mu.RUnlock()
	sort.Strings(out)
	return out
}

// NewTuple builds a tuple for a registered stream, assigning it the next
// sequence number.
func (e *Engine) NewTuple(streamName string, fields []randvar.Field) (*stream.Tuple, error) {
	schema, err := e.Schema(streamName)
	if err != nil {
		return nil, err
	}
	t, err := stream.NewTuple(schema, fields)
	if err != nil {
		return nil, err
	}
	e.seqMu.Lock()
	e.seq++
	t.Seq = e.seq
	e.seqMu.Unlock()
	if !e.recovering.Load() {
		mTuples.Inc()
	}
	return t, nil
}

// Seq returns the engine's sequence counter — the number of tuples and
// query evaluators created so far. The durability layer records it in
// checkpoints so a recovered engine continues the exact numbering (and thus
// the exact per-query evaluator seeds) of the pre-crash run.
func (e *Engine) Seq() uint64 {
	e.seqMu.Lock()
	defer e.seqMu.Unlock()
	return e.seq
}

// RestoreSeq forces the sequence counter during crash recovery. Call only
// after every checkpointed query has been recompiled, so that compilation's
// own seq consumption is overwritten by the checkpointed value.
func (e *Engine) RestoreSeq(seq uint64) {
	e.seqMu.Lock()
	e.seq = seq
	e.seqMu.Unlock()
}

// Clear removes every bound query and registered stream and resets the
// sequence counter and degrade level, returning the engine to its
// just-constructed state. The replication layer uses it when a follower
// must fast-forward onto a newer primary snapshot: its current state is a
// strict prefix of the snapshot's, so it is discarded wholesale and
// replaced. Callers must hold Exclusive (no ingest may run) and must
// rebuild any state they still need — Clear keeps nothing.
func (e *Engine) Clear() {
	e.mu.RLock()
	ids := make([]string, 0, len(e.bound))
	for id := range e.bound {
		ids = append(ids, id)
	}
	e.mu.RUnlock()
	sort.Strings(ids)
	for _, id := range ids {
		e.Unbind(id) // detaches shared-state groups properly
	}
	e.mu.Lock()
	e.streams = make(map[string]*streamDef)
	e.mu.Unlock()
	e.seqMu.Lock()
	e.seq = 0
	e.seqMu.Unlock()
	e.degrade.Store(0)
}

// SetRecovering flags (or clears) WAL-replay mode. While set, steady-state
// global metrics are suppressed — replayed pushes count only toward
// recovery-segregated counters — so a recovered process's metric snapshot
// reflects post-recovery activity exactly like a freshly booted one.
// Per-query state (stats, telemetry rings) still updates during replay:
// that state is being reconstructed, not observed.
func (e *Engine) SetRecovering(v bool) { e.recovering.Store(v) }

// Recovering reports whether the engine is replaying its WAL.
func (e *Engine) Recovering() bool { return e.recovering.Load() }

// LearnField turns a raw sample into a probabilistic field using the given
// learner, retaining the sample size for accuracy tracking — the paper's
// transformation of raw records into a single record with a distribution
// (§I, Figure 1).
func LearnField(l learn.Learner, s *learn.Sample) (randvar.Field, error) {
	if l == nil {
		return randvar.Field{}, errors.New("core: nil learner")
	}
	d, err := l.Learn(s)
	if err != nil {
		return randvar.Field{}, err
	}
	return randvar.Field{Dist: d, N: s.Size()}, nil
}

// newEvaluator builds a per-query expression evaluator with an independent
// RNG stream.
func (e *Engine) newEvaluator() *randvar.Evaluator {
	e.seqMu.Lock()
	e.seq++
	seed := e.cfg.Seed + e.seq*0x9e3779b97f4a7c15
	e.seqMu.Unlock()
	ev := randvar.NewEvaluator(dist.NewRand(seed))
	ev.Values = e.cfg.MonteCarloValues
	ev.Bins = e.cfg.HistogramBins
	return ev
}

func keyOf(name string) string {
	b := []byte(name)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
