package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/randvar"
	"repro/internal/stream"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

// newTestEngine builds an engine with a "traffic" stream carrying a
// deterministic road id and a probabilistic delay, mirroring Example 1.
func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := stream.NewSchema("traffic",
		stream.Column{Name: "road_id"},
		stream.Column{Name: "delay", Probabilistic: true},
		stream.Column{Name: "delay2", Probabilistic: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	return e
}

// trafficTuple builds a tuple with normal delay distributions.
func trafficTuple(t *testing.T, e *Engine, road float64, mu1 float64, n1 int, mu2 float64, n2 int) *stream.Tuple {
	t.Helper()
	d1, err := dist.NewNormal(mu1, 100)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := dist.NewNormal(mu2, 100)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.NewTuple("traffic", []randvar.Field{
		randvar.Det(road),
		{Dist: d1, N: n1},
		{Dist: d2, N: n2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestConfigNormalize(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Level != 0.9 || cfg.Method != AccuracyNone {
		// Method zero value is AccuracyNone by design; the engine's
		// default accuracy comes from explicit configuration.
		if cfg.Level != 0.9 {
			t.Errorf("default level = %v", cfg.Level)
		}
	}
	bad := []Config{
		{Level: 1.5},
		{MonteCarloValues: 1},
		{HistogramBins: -1},
		{BootstrapResamples: 1},
		{MinProb: 2},
	}
	for i, c := range bad {
		if _, err := c.Normalize(); err == nil {
			t.Errorf("config %d should fail normalization", i)
		}
	}
}

func TestRegisterAndLookupStreams(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, err := e.Schema("TRAFFIC"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := e.Schema("ghost"); err == nil {
		t.Error("unknown stream: want error")
	}
	schema, _ := stream.NewSchema("traffic", stream.Column{Name: "x"})
	if err := e.RegisterStream(schema); err == nil {
		t.Error("duplicate registration: want error")
	}
	if err := e.RegisterStream(nil); err == nil {
		t.Error("nil schema: want error")
	}
	if got := e.Streams(); len(got) != 1 || got[0] != "traffic" {
		t.Errorf("Streams = %v", got)
	}
}

func TestLearnField(t *testing.T) {
	s := learn.NewSample([]float64{71, 56, 82, 74, 69, 77, 65, 78, 59, 80})
	f, err := LearnField(learn.GaussianLearner{}, s)
	if err != nil {
		t.Fatal(err)
	}
	if f.N != 10 {
		t.Errorf("N = %d, want 10", f.N)
	}
	approx(t, "learned mean", f.Dist.Mean(), 71.1, 1e-9)
	if _, err := LearnField(nil, s); err == nil {
		t.Error("nil learner: want error")
	}
}

func TestCompileErrors(t *testing.T) {
	e := newTestEngine(t, Config{})
	bad := []string{
		"SELECT x FROM nosuch",
		"SELECT ghost FROM traffic",
		"SELECT AVG(delay) FROM traffic",                       // aggregate without window
		"SELECT AVG(delay), delay FROM traffic WINDOW 5 ROWS",  // mixed
		"SELECT delay FROM traffic WINDOW 5 ROWS",              // window without aggregate
		"SELECT AVG(delay, delay2) FROM traffic WINDOW 5 ROWS", // arity
		"SELECT MTEST(delay, '>', 1, 0.05) FROM traffic",       // predicate in select
		"SELECT * FROM traffic WINDOW 5 ROWS",
		"SELECT PROB(delay > 5) FROM traffic",                         // PROB outside comparison
		"SELECT delay FROM traffic WHERE PROB(delay) >= 0.5",          // PROB arg not cmp
		"SELECT delay FROM traffic WHERE PROB(delay > 5) >= 1.5",      // tau range
		"SELECT delay FROM traffic WHERE MTEST(delay, '>', 1)",        // missing alpha
		"SELECT delay FROM traffic WHERE MTEST(delay, '>=', 1, 0.05)", // bad test op
		"SELECT delay FROM traffic WHERE MTEST(1+1, '>', 1, 0.05)",    // non-column field
		"SELECT delay FROM traffic WHERE MTEST(delay, '>', 1, 2)",     // alpha range
		"SELECT delay FROM traffic WHERE MDTEST(delay, delay2, '>', 0, 0.05, 3)",
		"SELECT delay FROM traffic WHERE PTEST(delay, 0.5, 0.05)", // pred not cmp
		"SELECT delay + 'x' FROM traffic",                         // string in arithmetic
		"SELECT NOSUCHFN(delay) FROM traffic",
	}
	for _, qstr := range bad {
		if _, err := e.Compile(qstr); err == nil {
			t.Errorf("Compile(%q): want error", qstr)
		}
	}
}

func TestSelectStarPassthrough(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyAnalytical})
	q, err := e.Compile("SELECT * FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	tp := trafficTuple(t, e, 19, 60, 3, 55, 50)
	res, err := q.Push(tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Tuple.Schema.Arity() != 3 {
		t.Errorf("arity = %d", res[0].Tuple.Schema.Arity())
	}
	// Accuracy attached for probabilistic fields with n ≥ 2.
	if res[0].Fields["delay"] == nil || res[0].Fields["delay2"] == nil {
		t.Fatalf("missing accuracy info: %v", res[0].Fields)
	}
	if res[0].Fields["delay"].N != 3 {
		t.Errorf("delay accuracy n = %d, want 3", res[0].Fields["delay"].N)
	}
}

func TestProjectionAndRename(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id AS rid, delay FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(trafficTuple(t, e, 7, 60, 10, 55, 10))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	out := res[0].Tuple
	if _, ok := out.Schema.Index("rid"); !ok {
		t.Errorf("schema = %v", out.Schema)
	}
	approx(t, "rid", out.Fields[0].Dist.Mean(), 7, 0)
}

func TestExpressionSelectPropagatesDFSize(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyAnalytical})
	// Example 4: (A+B)/2 with sample sizes 15 and 10 → d.f. size 10.
	q, err := e.Compile("SELECT (delay + delay2) / 2 AS avg2 FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(trafficTuple(t, e, 1, 60, 15, 40, 10))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	f := res[0].Tuple.Fields[0]
	if f.N != 10 {
		t.Errorf("d.f. size = %d, want 10 (Lemma 3)", f.N)
	}
	approx(t, "(A+B)/2 mean", f.Dist.Mean(), 50, 1e-9)
	// Gaussian inputs with a linear expression stay Gaussian.
	if _, ok := f.Dist.(dist.Normal); !ok {
		t.Errorf("linear Gaussian expression produced %T", f.Dist)
	}
	info := res[0].Fields["avg2"]
	if info == nil || info.N != 10 {
		t.Fatalf("accuracy info: %+v", info)
	}
}

func TestNonlinearExpressionMonteCarlo(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyBootstrap})
	q, err := e.Compile("SELECT SQRT(ABS(delay - delay2)) AS d FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(trafficTuple(t, e, 1, 60, 20, 40, 20))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	f := res[0].Tuple.Fields[0]
	if f.N != 20 {
		t.Errorf("d.f. size = %d", f.N)
	}
	// sqrt(|N(20,200)|) has mean ≈ sqrt(20) when σ ≪ μ.
	if f.Dist.Mean() < 3 || f.Dist.Mean() > 6 {
		t.Errorf("implausible mean %g", f.Dist.Mean())
	}
	// Bootstrap accuracy came from the Monte Carlo value sequence.
	info := res[0].Fields["d"]
	if info == nil || info.Method != "bootstrap" {
		t.Fatalf("bootstrap info: %+v", info)
	}
}

func TestPossibleWorldFilter(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyAnalytical})
	// Example 5's shape: WHERE delay > c over a learned distribution turns
	// attribute uncertainty into tuple uncertainty with an interval.
	q, err := e.Compile("SELECT road_id FROM traffic WHERE delay > 60")
	if err != nil {
		t.Fatal(err)
	}
	tp := trafficTuple(t, e, 1, 60, 20, 40, 20) // P(delay > 60) = 0.5
	res, err := q.Push(tp)
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	out := res[0]
	approx(t, "tuple prob", out.Tuple.Prob, 0.5, 1e-9)
	if out.Tuple.ProbN != 20 {
		t.Errorf("ProbN = %d, want 20", out.Tuple.ProbN)
	}
	if out.TupleProb == nil {
		t.Fatal("missing tuple probability interval")
	}
	// 90% interval: 0.5 ± 1.645·sqrt(0.25/20) = 0.5 ± 0.184.
	approx(t, "prob interval lo", out.TupleProb.Lo, 0.316, 0.005)
	approx(t, "prob interval hi", out.TupleProb.Hi, 0.684, 0.005)
}

func TestImpossibleFilterDrops(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id FROM traffic WHERE delay > 1e9")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(trafficTuple(t, e, 1, 60, 20, 40, 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("impossible filter emitted %d tuples", len(res))
	}
	if s := q.Stats(); s.Dropped != 1 || s.In != 1 || s.Out != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDeterministicFilter(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id FROM traffic WHERE road_id = 19")
	if err != nil {
		t.Fatal(err)
	}
	keep, err := q.Push(trafficTuple(t, e, 19, 60, 20, 40, 20))
	if err != nil || len(keep) != 1 {
		t.Fatalf("road 19 should pass: %v, %v", keep, err)
	}
	approx(t, "prob unchanged", keep[0].Tuple.Prob, 1, 0)
	drop, err := q.Push(trafficTuple(t, e, 20, 60, 20, 40, 20))
	if err != nil || len(drop) != 0 {
		t.Fatalf("road 20 should drop: %v, %v", drop, err)
	}
}

func TestProbThresholdPredicate(t *testing.T) {
	e := newTestEngine(t, Config{})
	// The introduction's query: both roads pass at τ = 2/3 when
	// P(delay > 50) ≥ 2/3 regardless of sample size.
	q, err := e.Compile("SELECT road_id FROM traffic WHERE PROB(delay > 50) >= 0.66")
	if err != nil {
		t.Fatal(err)
	}
	// N(60,100): P(>50) = 0.841 → passes; prob stays exact 1.
	res, err := q.Push(trafficTuple(t, e, 19, 60, 3, 40, 3))
	if err != nil || len(res) != 1 {
		t.Fatalf("pass case: %v, %v", res, err)
	}
	approx(t, "threshold keeps prob", res[0].Tuple.Prob, 1, 0)
	// N(45,100): P(>50) = 0.309 → drops.
	res, err = q.Push(trafficTuple(t, e, 20, 45, 50, 40, 50))
	if err != nil || len(res) != 0 {
		t.Fatalf("drop case: %v, %v", res, err)
	}
	// Flipped comparison: tau <= PROB(...).
	q2, err := e.Compile("SELECT road_id FROM traffic WHERE 0.66 <= PROB(delay > 50)")
	if err != nil {
		t.Fatal(err)
	}
	res, err = q2.Push(trafficTuple(t, e, 19, 60, 3, 40, 3))
	if err != nil || len(res) != 1 {
		t.Fatalf("flipped threshold: %v, %v", res, err)
	}
}

func TestSignificancePredicateSingle(t *testing.T) {
	e := newTestEngine(t, Config{})
	// Example 9: mTest(delay, '>', 97, 0.05).
	q, err := e.Compile("SELECT road_id FROM traffic WHERE MTEST(delay, '>', 97, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	// Strong evidence: N(110,100) with n=100.
	res, err := q.Push(trafficTuple(t, e, 1, 110, 100, 0, 10))
	if err != nil || len(res) != 1 {
		t.Fatalf("strong evidence: %v, %v", res, err)
	}
	// Weak evidence: same mean but n=3 → t-test fails.
	res, err = q.Push(trafficTuple(t, e, 2, 110, 3, 0, 10))
	if err != nil || len(res) != 0 {
		t.Fatalf("weak evidence should drop: %v, %v", res, err)
	}
}

func TestSignificancePredicateCoupled(t *testing.T) {
	e := newTestEngine(t, Config{}) // DropUnsure defaults false
	q, err := e.Compile("SELECT road_id FROM traffic WHERE MTEST(delay, '>', 97, 0.05, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	// Borderline: small n, mean barely above → UNSURE, kept and flagged.
	res, err := q.Push(trafficTuple(t, e, 1, 98, 5, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !res[0].Unsure {
		t.Fatalf("unsure tuple should be kept and flagged: %v", res)
	}
	if q.Stats().Unsure != 1 {
		t.Errorf("stats = %+v", q.Stats())
	}
	// Strong negative → FALSE → dropped.
	res, err = q.Push(trafficTuple(t, e, 2, 50, 100, 0, 10))
	if err != nil || len(res) != 0 {
		t.Fatalf("false tuple should drop: %v, %v", res, err)
	}
}

func TestDropUnsureConfig(t *testing.T) {
	e := newTestEngine(t, Config{DropUnsure: true})
	q, err := e.Compile("SELECT road_id FROM traffic WHERE MTEST(delay, '>', 97, 0.05, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(trafficTuple(t, e, 1, 98, 5, 0, 10))
	if err != nil || len(res) != 0 {
		t.Fatalf("unsure should drop when configured: %v, %v", res, err)
	}
	s := q.Stats()
	if s.Unsure != 1 || s.Dropped != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMDTestPredicate(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id FROM traffic WHERE MDTEST(delay, delay2, '>', 0, 0.05, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	// delay mean 80 ≫ delay2 mean 40 with good samples → TRUE.
	res, err := q.Push(trafficTuple(t, e, 1, 80, 50, 40, 50))
	if err != nil || len(res) != 1 {
		t.Fatalf("separated means: %v, %v", res, err)
	}
	// Reversed → FALSE → drop.
	res, err = q.Push(trafficTuple(t, e, 2, 40, 50, 80, 50))
	if err != nil || len(res) != 0 {
		t.Fatalf("reversed means: %v, %v", res, err)
	}
}

func TestPTestPredicate(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id FROM traffic WHERE PTEST(delay > 50, 0.5, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	// N(70,100): P(>50) = 0.977 with n=100 → clearly significant.
	res, err := q.Push(trafficTuple(t, e, 1, 70, 100, 0, 10))
	if err != nil || len(res) != 1 {
		t.Fatalf("significant: %v, %v", res, err)
	}
	// Example 8's X: P(>50) ≈ 0.6 with n=5 → not significant.
	res, err = q.Push(trafficTuple(t, e, 2, 52.5, 5, 0, 10))
	if err != nil || len(res) != 0 {
		t.Fatalf("insignificant: %v, %v", res, err)
	}
}

func TestLogicalCombinations(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id FROM traffic WHERE delay > 60 AND delay2 > 40")
	if err != nil {
		t.Fatal(err)
	}
	// P(delay>60) = 0.5, P(delay2>40) = 0.5 → joint 0.25.
	res, err := q.Push(trafficTuple(t, e, 1, 60, 20, 40, 30))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	approx(t, "AND prob", res[0].Tuple.Prob, 0.25, 1e-9)
	if res[0].Tuple.ProbN != 20 {
		t.Errorf("AND ProbN = %d, want min(20,30)", res[0].Tuple.ProbN)
	}

	qOr, err := e.Compile("SELECT road_id FROM traffic WHERE delay > 60 OR delay2 > 40")
	if err != nil {
		t.Fatal(err)
	}
	res, err = qOr.Push(trafficTuple(t, e, 1, 60, 20, 40, 30))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	approx(t, "OR prob", res[0].Tuple.Prob, 0.75, 1e-9)

	qNot, err := e.Compile("SELECT road_id FROM traffic WHERE NOT delay > 60")
	if err != nil {
		t.Fatal(err)
	}
	res, err = qNot.Push(trafficTuple(t, e, 1, 60, 20, 40, 30))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	approx(t, "NOT prob", res[0].Tuple.Prob, 0.5, 1e-9)
}

func TestWindowAggregateQuery(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyAnalytical})
	q, err := e.Compile("SELECT AVG(delay) FROM traffic WINDOW 4 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	var emitted []Result
	for i := 0; i < 6; i++ {
		res, err := q.Push(trafficTuple(t, e, float64(i), 60, 20, 0, 10))
		if err != nil {
			t.Fatal(err)
		}
		emitted = append(emitted, res...)
	}
	if len(emitted) != 3 { // outputs from the 4th tuple on
		t.Fatalf("emitted %d, want 3", len(emitted))
	}
	out := emitted[0]
	nd, ok := out.Tuple.Fields[0].Dist.(dist.Normal)
	if !ok {
		t.Fatalf("AVG of Gaussians = %T", out.Tuple.Fields[0].Dist)
	}
	approx(t, "window AVG mean", nd.Mu, 60, 1e-9)
	approx(t, "window AVG var", nd.Sigma2, 100.0/4, 1e-9)
	info := out.Fields["avg_delay"]
	if info == nil {
		t.Fatalf("missing accuracy on aggregate: %v", out.Fields)
	}
	if info.N != 20 {
		t.Errorf("aggregate accuracy n = %d, want 20", info.N)
	}
}

func TestMultipleAggregates(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT AVG(delay) AS a, SUM(delay2) AS s, COUNT(road_id) AS c FROM traffic WINDOW 2 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	q.Push(trafficTuple(t, e, 1, 10, 20, 5, 20))
	res, err := q.Push(trafficTuple(t, e, 2, 20, 20, 7, 20))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	out := res[0].Tuple
	approx(t, "AVG", out.Fields[0].Dist.Mean(), 15, 1e-9)
	approx(t, "SUM", out.Fields[1].Dist.Mean(), 12, 1e-9)
	approx(t, "COUNT", out.Fields[2].Dist.Mean(), 2, 0)
}

func TestRunBatch(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	batch := []*stream.Tuple{
		trafficTuple(t, e, 1, 60, 20, 40, 20),
		trafficTuple(t, e, 2, 60, 20, 40, 20),
	}
	res, err := q.Run(batch)
	if err != nil || len(res) != 2 {
		t.Fatalf("Run: %v, %v", res, err)
	}
}

func TestPushWrongStream(t *testing.T) {
	e := newTestEngine(t, Config{})
	other, _ := stream.NewSchema("other", stream.Column{Name: "x"})
	if err := e.RegisterStream(other); err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile("SELECT road_id FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := stream.NewTuple(other, []randvar.Field{randvar.Det(1)})
	if _, err := q.Push(tp); err == nil {
		t.Error("wrong stream: want error")
	}
	if _, err := q.Push(nil); err == nil {
		t.Error("nil tuple: want error")
	}
}

func TestQueryStringAndSchema(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT road_id FROM traffic WHERE delay > 50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "SELECT road_id FROM traffic") {
		t.Errorf("String = %q", q.String())
	}
	if q.OutSchema().Arity() != 1 {
		t.Errorf("out schema = %v", q.OutSchema())
	}
}

func TestMinProbConfig(t *testing.T) {
	e := newTestEngine(t, Config{MinProb: 0.4})
	q, err := e.Compile("SELECT road_id FROM traffic WHERE delay > 60")
	if err != nil {
		t.Fatal(err)
	}
	// P = 0.5 ≥ 0.4 → kept.
	res, err := q.Push(trafficTuple(t, e, 1, 60, 20, 0, 10))
	if err != nil || len(res) != 1 {
		t.Fatalf("0.5 ≥ MinProb: %v, %v", res, err)
	}
	// P ≈ 0.16 < 0.4 → dropped.
	res, err = q.Push(trafficTuple(t, e, 2, 50, 20, 0, 10))
	if err != nil || len(res) != 0 {
		t.Fatalf("0.16 < MinProb: %v, %v", res, err)
	}
}

func TestAccuracyNoneSkipsIntervals(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyNone})
	q, err := e.Compile("SELECT delay FROM traffic WHERE delay > 60")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(trafficTuple(t, e, 1, 60, 20, 0, 10))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	if res[0].Fields != nil || res[0].TupleProb != nil {
		t.Errorf("accuracy disabled but info present: %+v", res[0])
	}
}

func TestHistogramFieldBinAccuracy(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyAnalytical})
	schema, _ := stream.NewSchema("hists", stream.Column{Name: "temp", Probabilistic: true})
	if err := e.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	h, err := dist.HistogramFromCounts([]float64{0, 25, 50, 75, 100}, []int{3, 4, 8, 5})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.NewTuple("hists", []randvar.Field{{Dist: h, N: 20}})
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile("SELECT temp FROM hists")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(tp)
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	info := res[0].Fields["temp"]
	if info == nil || len(info.Bins) != 4 {
		t.Fatalf("histogram accuracy: %+v", info)
	}
	// Example 2's second bucket: (0.05, 0.35) at 90%.
	approx(t, "bin 2 lo", info.Bins[1].Interval.Lo, 0.05, 0.005)
	approx(t, "bin 2 hi", info.Bins[1].Interval.Hi, 0.35, 0.005)
}

func TestConstantExpression(t *testing.T) {
	e := newTestEngine(t, Config{})
	q, err := e.Compile("SELECT 2 + 3 * 4 AS k, road_id FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Push(trafficTuple(t, e, 9, 60, 20, 0, 10))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	approx(t, "constant", res[0].Tuple.Fields[0].Dist.Mean(), 14, 0)
}
