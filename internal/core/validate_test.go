package core

import (
	"strings"
	"testing"
)

// TestPlanTimeRejections is the audit of plan-vs-emission validation
// seams: every statement here used to (or would) fail deterministically on
// the first qualifying tuple, after the statement had been accepted — and
// with a durable server, WAL-journaled. All of them must now fail at
// compile (REGISTER) time, before any durability side effect.
func TestPlanTimeRejections(t *testing.T) {
	cases := []struct {
		name    string
		sql     string
		wantErr string
	}{
		{
			"mtest det column",
			"SELECT delay FROM traffic WHERE MTEST(road_id, '>', 1, 0.05)",
			`"road_id" is deterministic`,
		},
		{
			"mdtest det column x",
			"SELECT delay FROM traffic WHERE MDTEST(road_id, delay, '>', 0, 0.05)",
			"MDTEST field X must be a probabilistic column",
		},
		{
			"mdtest det column y",
			"SELECT delay FROM traffic WHERE MDTEST(delay, road_id, '>', 0, 0.05)",
			"MDTEST field Y must be a probabilistic column",
		},
		{
			"kstest det column",
			"SELECT delay FROM traffic WHERE KSTEST(delay, road_id, 0.05)",
			"KSTEST field Y must be a probabilistic column",
		},
		{
			"kstest coupled det column",
			"SELECT delay FROM traffic WHERE KSTEST(road_id, delay, 2, 0.05, 0.1)",
			"KSTEST field X must be a probabilistic column",
		},
		{
			"ptest det predicate",
			"SELECT delay FROM traffic WHERE PTEST(road_id > 1, 0.5, 0.05)",
			"references no probabilistic column",
		},
		{
			"ptest over prob threshold",
			"SELECT delay FROM traffic WHERE PTEST(PROB(delay > 50) >= 0.5, 0.5, 0.05)",
			"carries no sample size",
		},
		{
			"sketch group by",
			"SELECT road_id, AVG(delay) FROM traffic GROUP BY road_id WINDOW 64 ROWS BACKEND SKETCH",
			"does not support GROUP BY",
		},
		{
			"sketch time window",
			"SELECT AVG(delay) FROM traffic WINDOW 10 SECONDS BACKEND SKETCH",
			"requires a count window",
		},
		{
			"bare prob predicate",
			"SELECT delay FROM traffic WHERE PROB(delay > 5)",
			"must be compared against a threshold",
		},
	}
	e := newTestEngine(t, Config{Method: AccuracyAnalytical, Seed: 1})
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := e.Compile(c.sql)
			if err == nil {
				t.Fatalf("%q compiled, want plan-time rejection", c.sql)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("%q: error %q, want substring %q", c.sql, err, c.wantErr)
			}
		})
	}
}

// TestSigPredicateAcceptsProbColumns is the positive control: the same
// predicate shapes over probabilistic columns still compile.
func TestSigPredicateAcceptsProbColumns(t *testing.T) {
	e := newTestEngine(t, Config{Method: AccuracyAnalytical, Seed: 1})
	for _, s := range []string{
		"SELECT delay FROM traffic WHERE MTEST(delay, '>', 1, 0.05)",
		"SELECT delay FROM traffic WHERE MDTEST(delay, delay2, '>', 0, 0.05)",
		"SELECT delay FROM traffic WHERE KSTEST(delay, delay2, 0.05)",
		"SELECT delay FROM traffic WHERE PTEST(delay > 50, 0.5, 0.05)",
		// A mixed-column expression references at least one probabilistic
		// column, so a sample size is available.
		"SELECT delay FROM traffic WHERE PTEST(delay > road_id, 0.5, 0.05)",
	} {
		if _, err := e.Compile(s); err != nil {
			t.Errorf("%q: %v, want accepted", s, err)
		}
	}
}

// TestJoinDefaultWindowRoundTrip pins the fix for the silent 128-row join
// window: omitting WINDOW now normalizes the statement itself, so the
// default is visible in EXPLAIN, survives String() round trips, and
// re-registers identically from a journaled statement.
func TestJoinDefaultWindowRoundTrip(t *testing.T) {
	e := joinEngine(t)
	q, err := e.Compile("SELECT roads.delay FROM roads JOIN weather ON roads.rid = weather.rid")
	if err != nil {
		t.Fatal(err)
	}
	printed := q.SQL()
	if !strings.Contains(printed, "WINDOW 128 ROWS") {
		t.Fatalf("q.SQL() = %q, want explicit WINDOW 128 ROWS", printed)
	}
	if ex := q.Explain(); !strings.Contains(ex, "window 128 rows per side") {
		t.Fatalf("Explain missing effective join window:\n%s", ex)
	}
	// The printed statement must re-compile to the identical plan — this
	// is the WAL/checkpoint round trip in miniature.
	q2, err := e.Compile(printed)
	if err != nil {
		t.Fatalf("re-compile %q: %v", printed, err)
	}
	if q2.SQL() != printed {
		t.Fatalf("round trip changed statement: %q -> %q", printed, q2.SQL())
	}
	if q2.join.leftWin.Cap() != 128 || q.join.leftWin.Cap() != 128 {
		t.Fatalf("effective windows: %d and %d, want 128", q.join.leftWin.Cap(), q2.join.leftWin.Cap())
	}
	// An explicit window is untouched.
	q3, err := e.Compile("SELECT roads.delay FROM roads JOIN weather ON roads.rid = weather.rid WINDOW 16 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	if q3.join.leftWin.Cap() != 16 || !strings.Contains(q3.SQL(), "WINDOW 16 ROWS") {
		t.Fatalf("explicit join window mangled: cap %d, sql %q", q3.join.leftWin.Cap(), q3.SQL())
	}
}
