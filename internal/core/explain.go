package core

import (
	"fmt"
	"strings"

	"repro/internal/stream"
)

// Explain renders a human-readable description of the compiled plan: the
// execution mode, windows, join shape, filter presence, and — central to
// this system — where accuracy information comes from.
func (q *Query) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query: %s\n", q.stmt)
	if q.join != nil {
		fmt.Fprintf(&b, "  join: symmetric window equi-join %s ⋈ %s on key columns %q = %q (window %d rows per side)\n",
			q.join.leftSchema.Name, q.join.rightSchema.Name,
			q.join.leftSchema.Columns[q.join.leftKey].Name,
			q.join.rightSchema.Columns[q.join.rightKey].Name,
			q.join.leftWin.Cap())
	} else {
		fmt.Fprintf(&b, "  source: stream %s\n", q.in.Name)
	}
	if q.where != nil {
		fmt.Fprintf(&b, "  filter: %s (possible-world semantics; membership probability multiplied, d.f. size per Lemma 3)\n",
			q.stmt.Where)
	}
	switch q.mode {
	case modeAggregate:
		var windowDesc string
		switch {
		case q.stmt.Window.Seconds > 0:
			windowDesc = fmt.Sprintf("time window of %d seconds", q.stmt.Window.Seconds)
		default:
			windowDesc = fmt.Sprintf("count window of %d rows", q.stmt.Window.Rows)
		}
		if q.groupIdx >= 0 {
			fmt.Fprintf(&b, "  aggregate: grouped by %s, %s per group\n",
				q.in.Columns[q.groupIdx].Name, windowDesc)
		} else {
			fmt.Fprintf(&b, "  aggregate: %s\n", windowDesc)
		}
		for _, a := range q.aggs {
			fmt.Fprintf(&b, "    %s(%s) AS %s", a.kind, q.in.Columns[a.colIdx].Name, a.label)
			if a.kind == stream.Avg || a.kind == stream.Sum {
				b.WriteString("  [Gaussian closed form when inputs allow]")
			}
			b.WriteByte('\n')
		}
	default:
		fmt.Fprintf(&b, "  project: %d columns\n", len(q.scalars))
		for _, s := range q.scalars {
			if s.passthrough >= 0 {
				fmt.Fprintf(&b, "    %s (passthrough)\n", s.label)
				continue
			}
			path := "Monte Carlo"
			if s.expr.linOK {
				path = "linear: Gaussian closed form when inputs allow, else Monte Carlo"
			}
			fmt.Fprintf(&b, "    %s = %s  [%s]\n", s.label, s.expr.label, path)
		}
	}
	fmt.Fprintf(&b, "  accuracy: %s", q.eng.cfg.Method)
	if q.eng.cfg.Method != AccuracyNone {
		fmt.Fprintf(&b, " at %g%% confidence", q.eng.cfg.Level*100)
		if q.eng.cfg.Method == AccuracyBootstrap {
			fmt.Fprintf(&b, " (value sequences when Monte Carlo ran, else %d d.f. resamples; up to %d workers, deterministic)",
				q.eng.cfg.BootstrapResamples, q.eng.cfg.Workers)
		}
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  output: %s\n", q.out)
	return b.String()
}
