package core

import (
	"fmt"
	"strings"

	"repro/internal/stream"
)

// Explain renders a human-readable description of the compiled plan: the
// execution mode, windows, join shape, filter presence, and — central to
// this system — where accuracy information comes from.
func (q *Query) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query: %s\n", q.stmt)
	if q.join != nil {
		fmt.Fprintf(&b, "  join: symmetric window equi-join %s ⋈ %s on key columns %q = %q (window %d rows per side)\n",
			q.join.leftSchema.Name, q.join.rightSchema.Name,
			q.join.leftSchema.Columns[q.join.leftKey].Name,
			q.join.rightSchema.Columns[q.join.rightKey].Name,
			q.join.leftWin.Cap())
	} else {
		fmt.Fprintf(&b, "  source: stream %s\n", q.in.Name)
	}
	if q.where != nil {
		fmt.Fprintf(&b, "  filter: %s (possible-world semantics; membership probability multiplied, d.f. size per Lemma 3)\n",
			q.stmt.Where)
	}
	switch q.mode {
	case modeAggregate:
		var windowDesc string
		switch {
		case q.sketchWin != nil:
			windowDesc = fmt.Sprintf("sketch count window of %d rows (%d blocks of %d rows, quantile K=%d; block-granular slide, one emission per sealed block)",
				q.sketchWin.W, q.sketchWin.B, q.sketchWin.BlockRows, q.sketchWin.K)
		case q.stmt.Window.Seconds > 0:
			windowDesc = fmt.Sprintf("time window of %d seconds", q.stmt.Window.Seconds)
		default:
			windowDesc = fmt.Sprintf("count window of %d rows", q.stmt.Window.Rows)
		}
		if q.groupIdx >= 0 {
			fmt.Fprintf(&b, "  aggregate: grouped by %s, %s per group\n",
				q.in.Columns[q.groupIdx].Name, windowDesc)
		} else {
			fmt.Fprintf(&b, "  aggregate: %s\n", windowDesc)
		}
		for _, a := range q.aggs {
			fmt.Fprintf(&b, "    %s(%s) AS %s", a.kind, q.in.Columns[a.colIdx].Name, a.label)
			switch {
			case q.sketchWin != nil && (a.kind == stream.Avg || a.kind == stream.Sum):
				b.WriteString("  [Gaussian closed form from merged moment sketches]")
			case q.sketchWin != nil && (a.kind == stream.Min || a.kind == stream.Max):
				b.WriteString("  [exact extreme of per-tuple means]")
			case a.kind == stream.Avg || a.kind == stream.Sum:
				b.WriteString("  [Gaussian closed form when inputs allow]")
			}
			b.WriteByte('\n')
		}
	default:
		fmt.Fprintf(&b, "  project: %d columns\n", len(q.scalars))
		for _, s := range q.scalars {
			if s.passthrough >= 0 {
				fmt.Fprintf(&b, "    %s (passthrough)\n", s.label)
				continue
			}
			path := "Monte Carlo"
			if s.expr.linOK {
				path = "linear: Gaussian closed form when inputs allow, else Monte Carlo"
			}
			fmt.Fprintf(&b, "    %s = %s  [%s]\n", s.label, s.expr.label, path)
		}
	}
	fmt.Fprintf(&b, "  accuracy: %s", q.method)
	if q.method != AccuracyNone {
		fmt.Fprintf(&b, " at %g%% confidence", q.eng.cfg.Level*100)
		if q.method == AccuracyBootstrap {
			fmt.Fprintf(&b, " (value sequences when Monte Carlo ran, else %d d.f. resamples; up to %d workers, deterministic)",
				q.eng.cfg.BootstrapResamples, q.eng.cfg.Workers)
		}
		if q.method == AccuracySketch {
			b.WriteString(" (mergeable bounded-memory summaries; median ranks widened by the deterministic sketch rank-error bound, mean intervals by membership uncertainty)")
		}
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  output: %s\n", q.out)
	return b.String()
}
