package core

import (
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/stream"
)

// Explain renders a human-readable description of the compiled plan: the
// execution mode, windows, join shape, filter presence, and — central to
// this system — where accuracy information comes from.
func (q *Query) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query: %s\n", q.stmt)
	if q.join != nil {
		fmt.Fprintf(&b, "  join: symmetric window equi-join %s ⋈ %s on key columns %q = %q (window %d rows per side)\n",
			q.join.leftSchema.Name, q.join.rightSchema.Name,
			q.join.leftSchema.Columns[q.join.leftKey].Name,
			q.join.rightSchema.Columns[q.join.rightKey].Name,
			q.join.leftWin.Cap())
	} else {
		fmt.Fprintf(&b, "  source: stream %s\n", q.in.Name)
	}
	if q.where != nil {
		fmt.Fprintf(&b, "  filter: %s (possible-world semantics; membership probability multiplied, d.f. size per Lemma 3)\n",
			q.stmt.Where)
	}
	switch q.mode {
	case modeAggregate:
		if q.join == nil {
			switch {
			case q.shared != nil:
				// Only structural facts here: lead/follow counters depend on
				// how much history this node replayed (a replica caught up
				// from a snapshot skips earlier pushes), so they live in
				// ExplainTiming, keeping Explain byte-identical across
				// replicas and crash recovery.
				g := q.shared
				fmt.Fprintf(&b, "  plan: shared state [%s] — %d sharer(s), window+filter+closed-form aggregates computed once per tuple\n",
					g.key, g.sharers.Load())
			case q.prof.Shareable:
				fmt.Fprintf(&b, "  plan: shareable [%s] — not yet bound to a shared-state group\n", q.prof.Key)
			default:
				fmt.Fprintf(&b, "  plan: per-query state — %s\n", q.prof.Reason)
			}
		}
		var windowDesc string
		switch {
		case q.sketchWin != nil:
			windowDesc = fmt.Sprintf("sketch count window of %d rows (%d blocks of %d rows, quantile K=%d; block-granular slide, one emission per sealed block)",
				q.sketchWin.W, q.sketchWin.B, q.sketchWin.BlockRows, q.sketchWin.K)
		case q.stmt.Window.Seconds > 0:
			windowDesc = fmt.Sprintf("time window of %d seconds", q.stmt.Window.Seconds)
		default:
			windowDesc = fmt.Sprintf("count window of %d rows", q.stmt.Window.Rows)
		}
		if q.groupIdx >= 0 {
			fmt.Fprintf(&b, "  aggregate: grouped by %s, %s per group\n",
				q.in.Columns[q.groupIdx].Name, windowDesc)
		} else {
			fmt.Fprintf(&b, "  aggregate: %s\n", windowDesc)
		}
		for _, a := range q.aggs {
			fmt.Fprintf(&b, "    %s(%s) AS %s", a.kind, q.in.Columns[a.colIdx].Name, a.label)
			switch {
			case q.sketchWin != nil && (a.kind == stream.Avg || a.kind == stream.Sum):
				b.WriteString("  [Gaussian closed form from merged moment sketches]")
			case q.sketchWin != nil && (a.kind == stream.Min || a.kind == stream.Max):
				b.WriteString("  [exact extreme of per-tuple means]")
			case a.kind == stream.Avg || a.kind == stream.Sum:
				b.WriteString("  [Gaussian closed form when inputs allow]")
			}
			b.WriteByte('\n')
		}
	default:
		fmt.Fprintf(&b, "  project: %d columns\n", len(q.scalars))
		for _, s := range q.scalars {
			if s.passthrough >= 0 {
				fmt.Fprintf(&b, "    %s (passthrough)\n", s.label)
				continue
			}
			path := "Monte Carlo"
			if s.expr.linOK {
				path = "linear: Gaussian closed form when inputs allow, else Monte Carlo"
			}
			fmt.Fprintf(&b, "    %s = %s  [%s]\n", s.label, s.expr.label, path)
		}
	}
	fmt.Fprintf(&b, "  accuracy: %s", q.method)
	if q.method != AccuracyNone {
		fmt.Fprintf(&b, " at %g%% confidence", q.eng.cfg.Level*100)
		if q.method == AccuracyBootstrap {
			fmt.Fprintf(&b, " (value sequences when Monte Carlo ran, else %d d.f. resamples; up to %d workers, deterministic)",
				q.eng.cfg.BootstrapResamples, q.eng.cfg.Workers)
		}
		if q.method == AccuracySketch {
			b.WriteString(" (mergeable bounded-memory summaries; median ranks widened by the deterministic sketch rank-error bound, mean intervals by membership uncertainty)")
		}
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  output: %s\n", q.out)
	return b.String()
}

// ExplainTiming renders the query's per-stage wall-clock timing, enabling
// collection on first call (so steady-state pushes pay nothing until
// someone asks). Unlike Explain, the output contains wall times and is
// inherently non-deterministic — it is an operator tool, never part of the
// byte-identical DATA/EXPLAIN surface.
func (q *Query) ExplainTiming() string {
	first := !q.timing.Enabled()
	q.timing.Enable()
	var b strings.Builder
	fmt.Fprintf(&b, "Timing: %s\n", q.stmt)
	if first {
		b.WriteString("  collection enabled by this call; counters accumulate from now\n")
	}
	snap := q.timing.Snapshot()
	for s, st := range snap {
		fmt.Fprintf(&b, "  stage %-9s %d timed runs, %d ns total\n", plan.Stage(s), st.Count, st.Nanos)
	}
	if g := q.shared; g != nil {
		fmt.Fprintf(&b, "  shared group [%s]: %d sharers, %d emissions computed, %d replayed from the group cache\n",
			g.key, g.sharers.Load(), g.leads.Load(), g.follows.Load())
	}
	return b.String()
}
