package core

import (
	"testing"
)

// runShedQuery pushes count tuples through a bootstrap aggregate query at a
// fixed degrade level and returns the query plus mean CI half-width
// telemetry.
func runShedQuery(t *testing.T, level, count int) (*Query, float64) {
	t.Helper()
	e := newTestEngine(t, Config{Method: AccuracyBootstrap, Seed: 11, Workers: 1})
	e.SetDegradeLevel(level)
	q, err := e.Compile("SELECT AVG(delay) FROM traffic WINDOW 8 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		tp := trafficTuple(t, e, float64(i), 30, 25, 40, 25)
		if _, err := q.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	return q, q.Telemetry().MeanCIHalfWidth.Mean
}

// TestShedLevelsWidenIntervals checks the honesty contract of load shedding:
// fewer resamples mean wider reported confidence intervals, never silently
// wrong narrow ones, and the Shed stat counts every reduced evaluation.
func TestShedLevelsWidenIntervals(t *testing.T) {
	q0, hw0 := runShedQuery(t, 0, 24)
	if q0.Stats().Shed != 0 {
		t.Fatalf("level 0 shed count = %d, want 0", q0.Stats().Shed)
	}
	q3, hw3 := runShedQuery(t, MaxDegradeLevel, 24)
	if q3.Stats().Shed == 0 {
		t.Fatal("level 3 shed count = 0, want > 0")
	}
	if hw0 <= 0 || hw3 <= 0 {
		t.Fatalf("half-widths must be positive: level0=%g level3=%g", hw0, hw3)
	}
	// The full-budget run averages ~8x the resamples; across 24 evaluations
	// its mean half-width must not exceed the shed run's (sampling noise on
	// one interval is possible, the averaged ordering is not).
	if hw3 < hw0 {
		t.Errorf("shed half-width %g < full-budget half-width %g: shedding must widen intervals", hw3, hw0)
	}
}

// TestShedDeterministicPerLevel checks that two engines at the same level
// produce bit-identical accuracy output — the property the journaled level
// transitions preserve across crash recovery.
func TestShedDeterministicPerLevel(t *testing.T) {
	for _, level := range []int{0, 1, MaxDegradeLevel} {
		_, a := runShedQuery(t, level, 12)
		_, b := runShedQuery(t, level, 12)
		if a != b {
			t.Errorf("level %d: half-width %g vs %g, want bit-identical", level, a, b)
		}
	}
}

// TestShedDivisorClamps checks the ladder arithmetic and level clamping.
func TestShedDivisorClamps(t *testing.T) {
	for _, tc := range []struct{ level, div int }{
		{-1, 1}, {0, 1}, {1, 2}, {2, 4}, {3, 8}, {99, 8},
	} {
		if got := shedDivisor(tc.level); got != tc.div {
			t.Errorf("shedDivisor(%d) = %d, want %d", tc.level, got, tc.div)
		}
	}
	e := newTestEngine(t, Config{})
	e.SetDegradeLevel(99)
	if e.DegradeLevel() != MaxDegradeLevel {
		t.Errorf("SetDegradeLevel(99) → %d, want clamp to %d", e.DegradeLevel(), MaxDegradeLevel)
	}
	e.SetDegradeLevel(-5)
	if e.DegradeLevel() != 0 {
		t.Errorf("SetDegradeLevel(-5) → %d, want 0", e.DegradeLevel())
	}
}
