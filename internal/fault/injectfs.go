package fault

import (
	"os"
	"strings"
	"sync"
)

// Rule is one entry of a fault schedule. A rule matches an operation by Op
// and (optionally) a path substring, skips the first After matching calls,
// then fires — returns Err, optionally after a torn partial write — Count
// times before passing through again (Count 0 fires forever).
//
// Matching is by deterministic per-rule call counters, so a given command
// sequence always hits the same faults at the same operations.
type Rule struct {
	// Op selects the operation class the rule intercepts.
	Op Op
	// Path, when non-empty, restricts the rule to paths containing it
	// (e.g. ".wal", "checkpoints/").
	Path string
	// After skips that many matching calls before the rule starts firing.
	After int
	// Count bounds how many times the rule fires; 0 means every matching
	// call once triggered (a permanent fault).
	Count int
	// AfterBytes arms an OpWrite rule only once the cumulative bytes
	// written through matching calls exceed it — the idiom for "disk full
	// after N bytes".
	AfterBytes int64
	// Err is the injected error; nil defaults to ErrInjected.
	Err error
	// Torn makes an OpWrite rule write the first half of the buffer to the
	// underlying file before failing — a torn write, as crashes and full
	// disks produce.
	Torn bool
}

func (r *Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// ruleState tracks one rule's deterministic trigger counters.
type ruleState struct {
	rule  Rule
	calls int   // matching calls observed
	fired int   // times the rule has fired
	bytes int64 // cumulative matched write bytes
}

// InjectFS wraps an FS with a fault schedule. Safe for concurrent use; the
// schedule's counters advance under one mutex, so the fault sequence is a
// deterministic function of the operation sequence.
type InjectFS struct {
	base FS

	mu       sync.Mutex
	rules    []*ruleState
	injected int
}

// NewInjectFS wraps base (nil means OS) with the given schedule.
func NewInjectFS(base FS, rules ...Rule) *InjectFS {
	if base == nil {
		base = OS
	}
	fs := &InjectFS{base: base}
	for _, r := range rules {
		rc := r
		fs.rules = append(fs.rules, &ruleState{rule: rc})
	}
	return fs
}

// AddRule appends a rule to the schedule at runtime (e.g. "from now on,
// fsync fails").
func (fs *InjectFS) AddRule(r Rule) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rules = append(fs.rules, &ruleState{rule: r})
}

// Clear removes every rule, healing all faults.
func (fs *InjectFS) Clear() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rules = nil
}

// Injected reports how many faults have fired so far.
func (fs *InjectFS) Injected() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.injected
}

// firing is one matched rule occurrence.
type firing struct {
	err  error
	torn bool
}

// check advances the schedule for one operation and returns a firing if a
// rule triggers. n is the byte count for OpWrite (0 otherwise).
func (fs *InjectFS) check(op Op, path string, n int) *firing {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, st := range fs.rules {
		r := &st.rule
		if r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		st.calls++
		st.bytes += int64(n)
		if st.calls <= r.After {
			continue
		}
		if r.AfterBytes > 0 && st.bytes <= r.AfterBytes {
			continue
		}
		if r.Count > 0 && st.fired >= r.Count {
			continue
		}
		st.fired++
		fs.injected++
		return &firing{err: r.err(), torn: r.Torn}
	}
	return nil
}

func (fs *InjectFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f := fs.check(OpOpen, name, 0); f != nil {
		return nil, f.err
	}
	file, err := fs.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: fs, path: name, f: file}, nil
}

func (fs *InjectFS) Open(name string) (File, error) {
	if f := fs.check(OpOpen, name, 0); f != nil {
		return nil, f.err
	}
	file, err := fs.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: fs, path: name, f: file}, nil
}

func (fs *InjectFS) CreateTemp(dir, pattern string) (File, error) {
	if f := fs.check(OpOpen, dir, 0); f != nil {
		return nil, f.err
	}
	file, err := fs.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: fs, path: file.Name(), f: file}, nil
}

func (fs *InjectFS) MkdirAll(path string, perm os.FileMode) error {
	return fs.base.MkdirAll(path, perm)
}

func (fs *InjectFS) ReadDir(name string) ([]os.DirEntry, error) { return fs.base.ReadDir(name) }

func (fs *InjectFS) ReadFile(name string) ([]byte, error) {
	if f := fs.check(OpRead, name, 0); f != nil {
		return nil, f.err
	}
	return fs.base.ReadFile(name)
}

func (fs *InjectFS) Stat(name string) (os.FileInfo, error) { return fs.base.Stat(name) }

func (fs *InjectFS) Truncate(name string, size int64) error {
	if f := fs.check(OpTruncate, name, 0); f != nil {
		return f.err
	}
	return fs.base.Truncate(name, size)
}

func (fs *InjectFS) Rename(oldpath, newpath string) error {
	if f := fs.check(OpRename, newpath, 0); f != nil {
		return f.err
	}
	return fs.base.Rename(oldpath, newpath)
}

func (fs *InjectFS) Remove(name string) error {
	if f := fs.check(OpRemove, name, 0); f != nil {
		return f.err
	}
	return fs.base.Remove(name)
}

// injectFile routes per-handle operations back through the schedule.
type injectFile struct {
	fs   *InjectFS
	path string
	f    File
}

func (f *injectFile) Read(p []byte) (int, error) {
	if fi := f.fs.check(OpRead, f.path, 0); fi != nil {
		return 0, fi.err
	}
	return f.f.Read(p)
}

func (f *injectFile) Write(p []byte) (int, error) {
	if fi := f.fs.check(OpWrite, f.path, len(p)); fi != nil {
		if fi.torn && len(p) > 1 {
			// A torn write: half the frame reaches the disk, then the
			// failure. Recovery must cope with the partial tail.
			n, werr := f.f.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, fi.err
		}
		return 0, fi.err
	}
	return f.f.Write(p)
}

func (f *injectFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

func (f *injectFile) Close() error { return f.f.Close() }

func (f *injectFile) Sync() error {
	if fi := f.fs.check(OpSync, f.path, 0); fi != nil {
		return fi.err
	}
	return f.f.Sync()
}

func (f *injectFile) Name() string { return f.f.Name() }
