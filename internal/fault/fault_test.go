package fault

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestInjectFSFsyncRule(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjectFS(nil, Rule{Op: OpSync, After: 1, Count: 1, Err: ErrFsync})
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1 (skipped by After): %v", err)
	}
	err = f.Sync()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2: got %v, want injected", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync 2: got %v, want EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3 (Count exhausted): %v", err)
	}
	if got := fs.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestInjectFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjectFS(nil, Rule{Op: OpWrite, Count: 1, Torn: true, Err: ErrNoSpace})
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	n, err := f.Write(buf)
	if n != 50 {
		t.Fatalf("torn write wrote %d bytes, want 50", n)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn write: got %v, want ENOSPC", err)
	}
	if n, err := f.Write(buf); n != 100 || err != nil {
		t.Fatalf("healed write: n=%d err=%v", n, err)
	}
	f.Close()
	fi, err := os.Stat(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 150 {
		t.Fatalf("file size %d, want 150 (50 torn + 100 clean)", fi.Size())
	}
}

func TestInjectFSAfterBytes(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjectFS(nil, Rule{Op: OpWrite, AfterBytes: 64, Err: ErrNoSpace})
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 32)
	if _, err := f.Write(buf); err != nil {
		t.Fatalf("write 1 (32 bytes cum): %v", err)
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatalf("write 2 (64 bytes cum, not yet over): %v", err)
	}
	if _, err := f.Write(buf); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 3 (96 bytes cum): got %v, want ENOSPC", err)
	}
	// Permanent once armed (Count 0).
	if _, err := f.Write(buf); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 4: got %v, want ENOSPC", err)
	}
}

func TestInjectFSPathFilter(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjectFS(nil, Rule{Op: OpSync, Path: ".wal", Err: ErrFsync})
	w, err := fs.OpenFile(filepath.Join(dir, "0001.wal"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c, err := fs.OpenFile(filepath.Join(dir, "ckpt.ck"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("wal sync: got %v, want injected", err)
	}
	if err := c.Sync(); err != nil {
		t.Fatalf("checkpoint sync must pass the filter: %v", err)
	}
}

func TestConnDropAfterWriteBytes(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := WrapConn(a, ConnFaults{DropAfterWriteBytes: 10})
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		total := 0
		for {
			n, err := b.Read(buf[total:])
			total += n
			if err != nil {
				break
			}
		}
		done <- buf[:total]
	}()
	n, err := fc.Write([]byte("0123456789abcdef"))
	if n != 10 {
		t.Fatalf("wrote %d bytes before drop, want 10", n)
	}
	if !errors.Is(err, ErrConnDropped) {
		t.Fatalf("got %v, want ErrConnDropped", err)
	}
	if !fc.Dropped() {
		t.Fatal("Dropped() = false after drop")
	}
	if got := string(<-done); got != "0123456789" {
		t.Fatalf("peer saw %q, want the 10-byte torn prefix", got)
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("write after drop: got %v", err)
	}
}

func TestConnChunking(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := WrapConn(a, ConnFaults{ChunkBytes: 3})
	got := make(chan string, 1)
	go func() {
		buf := make([]byte, 64)
		total := 0
		for total < 8 {
			n, err := b.Read(buf[total:])
			total += n
			if err != nil {
				break
			}
		}
		got <- string(buf[:total])
	}()
	if n, err := fc.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("chunked write: n=%d err=%v", n, err)
	}
	if s := <-got; s != "12345678" {
		t.Fatalf("peer saw %q", s)
	}
	fc.Close()
}

func TestProxyRelaysAndDrops(t *testing.T) {
	// Echo server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						c.Write(buf[:n])
					}
					if err != nil {
						c.Close()
						return
					}
				}
			}()
		}
	}()

	// Connection 0 drops after 4 request bytes; connection 1 is clean.
	p, err := NewProxy(ln.Addr().String(), func(i int) ConnFaults {
		if i == 0 {
			return ConnFaults{DropAfterWriteBytes: 4}
		}
		return ConnFaults{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c0, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c0.Write([]byte("abcdefgh")) // over the 4-byte budget → dropped
	buf := make([]byte, 16)
	total := 0
	for {
		n, err := c0.Read(buf[total:])
		total += n
		if err != nil {
			break // proxy killed the pair
		}
	}
	if total > 4 {
		t.Fatalf("dropped conn echoed %d bytes, want ≤ 4", total)
	}

	c1, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	n, err := c1.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("clean conn echo: %q, %v", buf[:n], err)
	}
}
