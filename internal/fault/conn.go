package fault

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrConnDropped reports a connection killed by an injected drop.
var ErrConnDropped = &injectedErr{msg: "fault: injected connection drop", err: io.ErrClosedPipe}

// ConnFaults configures a faulty connection. The zero value injects
// nothing.
type ConnFaults struct {
	// WriteLatency is added before every Write (a slow or congested link).
	WriteLatency time.Duration
	// ChunkBytes caps how many bytes one underlying Write carries; larger
	// buffers are split into several writes (partial-write exercise for
	// peers that assume one Write per message).
	ChunkBytes int
	// DropAfterWriteBytes kills the connection once that many bytes have
	// been written: the remaining allowance of the current buffer is
	// delivered — a mid-message tear — then the connection closes and the
	// write returns ErrConnDropped. 0 disables.
	DropAfterWriteBytes int64
	// DropAfterReadBytes kills the connection once that many bytes have
	// been read. 0 disables.
	DropAfterReadBytes int64
}

// Conn wraps a net.Conn with deterministic fault injection. Byte-count
// triggers are tracked per connection, so a fixed request sequence tears at
// a fixed protocol offset.
type Conn struct {
	net.Conn
	faults  ConnFaults
	written atomic.Int64
	read    atomic.Int64
	dropped atomic.Bool
}

// WrapConn decorates c with the given faults.
func WrapConn(c net.Conn, f ConnFaults) *Conn {
	return &Conn{Conn: c, faults: f}
}

// Dropped reports whether an injected drop has killed the connection.
func (c *Conn) Dropped() bool { return c.dropped.Load() }

func (c *Conn) drop() error {
	c.dropped.Store(true)
	c.Conn.Close()
	return ErrConnDropped
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.dropped.Load() {
		return 0, ErrConnDropped
	}
	if c.faults.WriteLatency > 0 {
		time.Sleep(c.faults.WriteLatency)
	}
	total := 0
	for len(p) > 0 {
		chunk := p
		if c.faults.ChunkBytes > 0 && len(chunk) > c.faults.ChunkBytes {
			chunk = chunk[:c.faults.ChunkBytes]
		}
		if lim := c.faults.DropAfterWriteBytes; lim > 0 {
			remain := lim - c.written.Load()
			if remain <= 0 {
				return total, c.drop()
			}
			if int64(len(chunk)) > remain {
				// Deliver exactly the allowance, tearing mid-message.
				n, _ := c.Conn.Write(chunk[:remain])
				c.written.Add(int64(n))
				total += n
				return total, c.drop()
			}
		}
		n, err := c.Conn.Write(chunk)
		c.written.Add(int64(n))
		total += n
		if err != nil {
			return total, err
		}
		p = p[len(chunk):]
	}
	return total, nil
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.dropped.Load() {
		return 0, ErrConnDropped
	}
	if lim := c.faults.DropAfterReadBytes; lim > 0 {
		remain := lim - c.read.Load()
		if remain <= 0 {
			return 0, c.drop()
		}
		if int64(len(p)) > remain {
			p = p[:remain]
		}
	}
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}

// Proxy is a TCP relay that applies ConnFaults to each proxied connection,
// so a real client/server pair can be exercised against injected network
// faults without modifying either. Faults(i) configures the i-th accepted
// connection (0-based); nil Faults proxies cleanly.
type Proxy struct {
	ln     net.Listener
	target string
	faults func(i int) ConnFaults

	mu     sync.Mutex
	conns  []net.Conn
	next   int
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a relay on a free localhost port toward target.
func NewProxy(target string, faults func(i int) ConnFaults) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fault: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, faults: faults}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops the relay and kills every proxied connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := append([]net.Conn(nil), p.conns...)
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			return
		}
		i := p.next
		p.next++
		p.mu.Unlock()
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		var faulty net.Conn = upstream
		if p.faults != nil {
			faulty = WrapConn(upstream, p.faults(i))
		}
		p.mu.Lock()
		p.conns = append(p.conns, client, upstream)
		p.mu.Unlock()
		p.wg.Add(2)
		// client → (faulty) upstream: injected faults tear requests.
		go p.pipe(faulty, client, upstream)
		// upstream → client: clean, but dies with the pair.
		go p.pipe(client, faulty, upstream)
	}
}

// pipe copies src→dst until error, then kills the pair so the peer sees the
// drop promptly.
func (p *Proxy) pipe(dst io.Writer, src net.Conn, other net.Conn) {
	defer p.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if rerr != nil {
			break
		}
	}
	src.Close()
	other.Close()
	if c, ok := dst.(net.Conn); ok {
		c.Close()
	}
}
