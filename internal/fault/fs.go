package fault

import (
	"io"
	"os"
)

// File is the subset of *os.File the durability subsystem uses.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Name() string
}

// FS abstracts the filesystem operations of internal/wal and
// internal/checkpoint, so tests can interpose faults. OS is the passthrough
// implementation production code uses.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open is os.Open (read-only).
	Open(name string) (File, error)
	// CreateTemp is os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// ReadFile is os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// Stat is os.Stat.
	Stat(name string) (os.FileInfo, error)
	// Truncate is os.Truncate.
	Truncate(name string, size int64) error
	// Rename is os.Rename.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
}

// OS is the passthrough FS over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }
