// Package fault is the deterministic fault-injection harness behind the
// chaos test suite: an injectable filesystem for the durability subsystem
// (internal/wal, internal/checkpoint) and a net.Conn wrapper for the
// serving path.
//
// The design goal is reproducibility. A fault schedule is an explicit list
// of rules — "the 3rd fsync on a .wal file fails", "writes return ENOSPC
// after 4096 bytes", "the connection drops after 100 bytes" — matched by a
// deterministic per-operation counter, never by wall-clock time or
// goroutine scheduling. Replaying the same command sequence against the
// same schedule therefore injects the same faults at the same points, so
// chaos tests can assert bit-identical recovery, at any worker count, after
// arbitrarily nasty injected failures.
//
// Two fault surfaces are provided:
//
//   - FS / File: the filesystem operations the WAL and checkpoint manager
//     perform. OS is the passthrough implementation; NewInjectFS wraps any
//     FS with a Schedule of Rules (fsync failure, ENOSPC, torn/partial
//     writes, per-call triggers).
//   - WrapConn: a net.Conn decorator injecting write latency, bounded
//     write chunking (partial writes), and deterministic mid-message drops.
//     Proxy composes it into a TCP relay, so client/server pairs can be
//     tested against connection faults without touching either side.
//
// Everything here is test infrastructure, but it lives in the main module
// (not _test.go files) so the wal, checkpoint, and server suites — and
// future soak binaries — can share one implementation.
package fault

import (
	"errors"
	"syscall"
)

// ErrInjected is the base error wrapped by every injected failure that
// does not imitate a specific errno, so tests can errors.Is against it.
var ErrInjected = errors.New("fault: injected error")

// ErrNoSpace imitates a full disk. It wraps syscall.ENOSPC so code that
// checks for the errno sees the real thing.
var ErrNoSpace = &injectedErr{msg: "fault: injected ENOSPC", err: syscall.ENOSPC}

// ErrFsync is the canonical injected fsync failure (EIO, the errno real
// disks report when a write-back fails).
var ErrFsync = &injectedErr{msg: "fault: injected fsync failure", err: syscall.EIO}

// injectedErr wraps an errno while still matching ErrInjected.
type injectedErr struct {
	msg string
	err error
}

func (e *injectedErr) Error() string { return e.msg }

func (e *injectedErr) Unwrap() error { return e.err }

// Is makes every injected error match ErrInjected in addition to its errno.
func (e *injectedErr) Is(target error) bool { return target == ErrInjected }

// Op identifies one class of intercepted operation.
type Op int

const (
	// OpWrite is File.Write (and the write half of WriteString paths).
	OpWrite Op = iota
	// OpSync is File.Sync — fsync on a file or directory handle.
	OpSync
	// OpOpen covers FS.Open / FS.OpenFile / FS.CreateTemp.
	OpOpen
	// OpRename is FS.Rename.
	OpRename
	// OpRemove is FS.Remove.
	OpRemove
	// OpTruncate is FS.Truncate.
	OpTruncate
	// OpRead is File.Read.
	OpRead
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpOpen:
		return "open"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpRead:
		return "read"
	}
	return "op?"
}
