package sql

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 1.5e-2 FROM s WHERE x >= 3 AND y <> 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "a", ",", "1.5e-2", "FROM", "s", "WHERE", "x", ">=", "3", "AND", "y", "<>", "it's"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string: want error")
	}
	if _, err := Lex("a # b"); err == nil {
		t.Error("bad character: want error")
	}
	if _, err := Lex("a ! b"); err == nil {
		t.Error("lone '!': want error")
	}
	// != lexes to <>.
	toks, err := Lex("a != b")
	if err != nil || toks[1].Text != "<>" {
		t.Errorf("!=: %v, %v", toks, err)
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt, err := Parse("SELECT Road_ID FROM t WHERE Delay > 50")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.From != "t" || len(stmt.Items) != 1 {
		t.Fatalf("stmt = %+v", stmt)
	}
	col, ok := stmt.Items[0].Expr.(*ColumnRef)
	if !ok || col.Name != "Road_ID" {
		t.Fatalf("item = %v", stmt.Items[0])
	}
	cmp, ok := stmt.Where.(*CmpExpr)
	if !ok || cmp.Op != ">" {
		t.Fatalf("where = %v", stmt.Where)
	}
}

func TestParseStar(t *testing.T) {
	stmt, err := Parse("SELECT * FROM stream")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.Items[0].Expr.(*Star); !ok {
		t.Fatalf("items = %v", stmt.Items)
	}
}

func TestParseExpressionSelect(t *testing.T) {
	// Example 4's query shape.
	stmt, err := Parse("SELECT (A+B)/2 AS halfsum FROM S WHERE C > 80")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].Alias != "halfsum" {
		t.Errorf("alias = %q", stmt.Items[0].Alias)
	}
	bin, ok := stmt.Items[0].Expr.(*BinaryExpr)
	if !ok || bin.Op != "/" {
		t.Fatalf("expr = %v", stmt.Items[0].Expr)
	}
	inner, ok := bin.L.(*BinaryExpr)
	if !ok || inner.Op != "+" {
		t.Fatalf("inner = %v", bin.L)
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(a + (b * c))" {
		t.Errorf("precedence: %s", e)
	}
	e, err = ParseExpr("(a + b) * c")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "((a + b) * c)" {
		t.Errorf("parens: %s", e)
	}
	e, err = ParseExpr("-a + b")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(-a + b)" {
		t.Errorf("unary: %s", e)
	}
	// Negative literal folds.
	e, err = ParseExpr("-3.5")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := e.(*NumberLit); !ok || n.Value != -3.5 {
		t.Errorf("folded literal: %v", e)
	}
}

func TestParseLogical(t *testing.T) {
	e, err := ParseExpr("a > 1 AND b < 2 OR NOT c > 3")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := e.(*LogicalExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %v", e)
	}
	and, ok := or.L.(*LogicalExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("left = %v", or.L)
	}
	if _, ok := or.R.(*NotExpr); !ok {
		t.Fatalf("right = %v", or.R)
	}
}

func TestParseProbThreshold(t *testing.T) {
	// The introduction's "Delay >{2/3} 50".
	stmt, err := Parse("SELECT Road_ID FROM t WHERE PROB(Delay > 50) >= 0.667")
	if err != nil {
		t.Fatal(err)
	}
	cmp, ok := stmt.Where.(*CmpExpr)
	if !ok || cmp.Op != ">=" {
		t.Fatalf("where = %v", stmt.Where)
	}
	call, ok := cmp.L.(*CallExpr)
	if !ok || call.Func != "PROB" || len(call.Args) != 1 {
		t.Fatalf("call = %v", cmp.L)
	}
	if _, ok := call.Args[0].(*CmpExpr); !ok {
		t.Fatalf("prob arg = %v", call.Args[0])
	}
}

func TestParseSignificancePredicates(t *testing.T) {
	// Example 9's predicates.
	stmt, err := Parse("SELECT temperature FROM s WHERE MTEST(temperature, '>', 97, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	call, ok := stmt.Where.(*CallExpr)
	if !ok || call.Func != "MTEST" || len(call.Args) != 4 {
		t.Fatalf("mtest = %v", stmt.Where)
	}
	if s, ok := call.Args[1].(*StringLit); !ok || s.Value != ">" {
		t.Fatalf("op arg = %v", call.Args[1])
	}
	stmt, err = Parse("SELECT x FROM s WHERE PTEST(x > 100, 0.5, 0.05, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	call = stmt.Where.(*CallExpr)
	if call.Func != "PTEST" || len(call.Args) != 4 {
		t.Fatalf("ptest = %v", call)
	}
	stmt, err = Parse("SELECT x FROM s WHERE MDTEST(x, y, '>', 0, 0.05, 0.05)")
	if err != nil {
		t.Fatal(err)
	}
	call = stmt.Where.(*CallExpr)
	if call.Func != "MDTEST" || len(call.Args) != 6 {
		t.Fatalf("mdtest = %v", call)
	}
}

func TestParseWindow(t *testing.T) {
	stmt, err := Parse("SELECT AVG(speed) FROM s WINDOW 1000 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Window == nil || stmt.Window.Rows != 1000 {
		t.Fatalf("window = %+v", stmt.Window)
	}
	call, ok := stmt.Items[0].Expr.(*CallExpr)
	if !ok || call.Func != "AVG" {
		t.Fatalf("item = %v", stmt.Items[0].Expr)
	}
}

func TestParseTrailingSemicolonAndErrors(t *testing.T) {
	if _, err := Parse("SELECT a FROM s;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM s",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM s WHERE",
		"SELECT a FROM s WINDOW x ROWS",
		"SELECT a FROM s WINDOW 0 ROWS",
		"SELECT a FROM s WINDOW 5",
		"SELECT a FROM s extra",
		"SELECT a AS FROM s",
		"SELECT f(a FROM s",
		"UPDATE t SET x = 1",
		"SELECT a FROM select",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): want error", q)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, s := range []string{"", "a +", "(a", "f(", "1 2", "a > > b", "NOT"} {
		if _, err := ParseExpr(s); err == nil {
			t.Errorf("ParseExpr(%q): want error", s)
		}
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT Road_ID FROM t WHERE PROB(Delay > 50) >= 0.667",
		"SELECT (A + B) / 2 AS h FROM S WHERE C > 80 WINDOW 10 ROWS",
		"SELECT SQRT(ABS(a - b)) FROM s",
		"SELECT x FROM s WHERE MTEST(x, '>', 97, 0.05) AND y < 3",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		// Re-parse the rendered form; it must parse and render identically.
		stmt2, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", stmt.String(), err)
		}
		if stmt.String() != stmt2.String() {
			t.Errorf("round trip: %q != %q", stmt.String(), stmt2.String())
		}
	}
}

func TestColumns(t *testing.T) {
	e, err := ParseExpr("(a + b)/2 + SQRT(ABS(a)) + c.d")
	if err != nil {
		t.Fatal(err)
	}
	cols := Columns(e)
	want := []string{"a", "b", "c.d"}
	if len(cols) != len(want) {
		t.Fatalf("columns = %v", cols)
	}
	for i := range want {
		if !strings.EqualFold(cols[i], want[i]) {
			t.Errorf("column %d = %q, want %q", i, cols[i], want[i])
		}
	}
	if got := Columns(nil); got != nil {
		t.Errorf("Columns(nil) = %v", got)
	}
}

func TestWalkCoversAllNodes(t *testing.T) {
	e, err := ParseExpr("NOT (a > 1 AND -b < f(c, 'x') OR a + 2 * 3 <> 4)")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	Walk(e, func(x Expr) {
		switch x.(type) {
		case *NotExpr:
			kinds["not"] = true
		case *LogicalExpr:
			kinds["logical"] = true
		case *CmpExpr:
			kinds["cmp"] = true
		case *UnaryExpr:
			kinds["unary"] = true
		case *BinaryExpr:
			kinds["binary"] = true
		case *CallExpr:
			kinds["call"] = true
		case *ColumnRef:
			kinds["col"] = true
		case *NumberLit:
			kinds["num"] = true
		case *StringLit:
			kinds["str"] = true
		}
	})
	for _, k := range []string{"not", "logical", "cmp", "unary", "binary", "call", "col", "num", "str"} {
		if !kinds[k] {
			t.Errorf("Walk did not visit %s nodes", k)
		}
	}
}

func TestParseGroupBy(t *testing.T) {
	stmt, err := Parse("SELECT road_id, AVG(delay) FROM t GROUP BY road_id WINDOW 10 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.GroupBy != "road_id" {
		t.Errorf("GroupBy = %q", stmt.GroupBy)
	}
	if _, err := Parse("SELECT a FROM t GROUP road_id"); err == nil {
		t.Error("GROUP without BY: want error")
	}
	if _, err := Parse("SELECT a FROM t GROUP BY"); err == nil {
		t.Error("GROUP BY without column: want error")
	}
	if _, err := Parse("SELECT a FROM t GROUP BY select"); err == nil {
		t.Error("GROUP BY keyword: want error")
	}
}

func TestParseTimeWindow(t *testing.T) {
	stmt, err := Parse("SELECT AVG(x) FROM s WINDOW 30 SECONDS")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Window == nil || stmt.Window.Seconds != 30 || stmt.Window.Rows != 0 {
		t.Errorf("window = %+v", stmt.Window)
	}
	if _, err := Parse("SELECT AVG(x) FROM s WINDOW 30 MINUTES"); err == nil {
		t.Error("unknown unit: want error")
	}
}

func TestParseJoin(t *testing.T) {
	stmt, err := Parse("SELECT a.x, b.y FROM a JOIN b ON a.k = b.k WHERE a.x > 5")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Join == nil || stmt.Join.Right != "b" ||
		stmt.Join.LeftKey != "a.k" || stmt.Join.RightKey != "b.k" {
		t.Fatalf("join = %+v", stmt.Join)
	}
	if stmt.Where == nil {
		t.Error("WHERE lost after JOIN")
	}
	bad := []string{
		"SELECT x FROM a JOIN",
		"SELECT x FROM a JOIN b",
		"SELECT x FROM a JOIN b ON",
		"SELECT x FROM a JOIN b ON k",
		"SELECT x FROM a JOIN b ON k = ",
		"SELECT x FROM a JOIN select ON k = k",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): want error", q)
		}
	}
}

func TestExtendedStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT road_id, AVG(delay) AS d FROM t GROUP BY road_id WINDOW 10 ROWS",
		"SELECT AVG(x) FROM s WINDOW 30 SECONDS",
		"SELECT a.x FROM a JOIN b ON a.k = b.k WHERE a.x > 5",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		stmt2, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", stmt.String(), err)
		}
		if stmt.String() != stmt2.String() {
			t.Errorf("round trip: %q != %q", stmt.String(), stmt2.String())
		}
	}
}
