// Package sql implements the query language of the accuracy-aware uncertain
// stream database: a small SQL dialect with the paper's extensions —
// probability-threshold predicates (the introduction's "Delay >{2/3} 50" is
// spelled PROB(Delay > 50) >= 2/3) and the three significance predicates
// MTEST, MDTEST, and PTEST (§IV-B), plus arithmetic expressions over
// distribution-valued columns and count-based sliding windows.
//
// Grammar (informal):
//
//	select   := SELECT items FROM source [WHERE expr] [GROUP BY ident] [WINDOW n (ROWS | SECONDS)]
//	source   := ident [JOIN ident ON ident '=' ident]
//	items    := item {',' item} | '*'
//	item     := expr [AS ident]
//	expr     := or
//	or       := and {OR and}
//	and      := not {AND not}
//	not      := [NOT] cmp
//	cmp      := add [cmpop add]
//	add      := mul {('+'|'-') mul}
//	mul      := unary {('*'|'/') unary}
//	unary    := ['-'] primary
//	primary  := number | string | ident | ident '(' args ')' | '(' expr ')'
//	cmpop    := '>' | '<' | '>=' | '<=' | '=' | '<>'
//
// The package only parses; planning and execution live in internal/core.
package sql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind classifies lexer output.
type TokenKind int

const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or keyword.
	TokIdent
	// TokNumber is a numeric literal.
	TokNumber
	// TokString is a single-quoted string literal.
	TokString
	// TokOp is an operator or punctuation token.
	TokOp
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokOp:
		return "operator"
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is one lexical unit with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// SyntaxError describes a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// Lex tokenizes input. Keywords are returned as TokIdent; the parser
// compares case-insensitively.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			seenDot, seenExp := false, false
			for i < n {
				ch := input[i]
				if isDigit(ch) {
					i++
					continue
				}
				if ch == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (ch == 'e' || ch == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case isIdentStartAt(input, i):
			start := i
			for i < n {
				r, size := utf8.DecodeRuneInString(input[i:])
				if !isIdentPart(r) {
					break
				}
				i += size
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &SyntaxError{Pos: start, Msg: "unterminated string literal"}
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case strings.ContainsRune("+-*/(),;=", rune(c)):
			toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: i})
			i++
		case c == '<':
			start := i
			i++
			if i < n && (input[i] == '=' || input[i] == '>') {
				i++
			}
			toks = append(toks, Token{Kind: TokOp, Text: input[start:i], Pos: start})
		case c == '>':
			start := i
			i++
			if i < n && input[i] == '=' {
				i++
			}
			toks = append(toks, Token{Kind: TokOp, Text: input[start:i], Pos: start})
		case c == '!':
			start := i
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOp, Text: "<>", Pos: start})
				i += 2
			} else {
				return nil, &SyntaxError{Pos: i, Msg: "unexpected '!'"}
			}
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// isIdentStartAt reports whether an identifier begins at byte offset i,
// decoding a full rune (identifiers may be non-ASCII letters).
func isIdentStartAt(s string, i int) bool {
	r, _ := utf8.DecodeRuneInString(s[i:])
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
