package sql

import "testing"

// FuzzParse is a native fuzz target for the statement parser: any input
// must return a statement or an error without panicking, and any statement
// that parses must re-parse from its own rendering.
//
// Run with: go test -fuzz=FuzzParse ./internal/sql
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT Road_ID FROM t WHERE Delay > 50",
		"SELECT (A+B)/2 AS h FROM S WHERE C > 80 WINDOW 10 ROWS",
		"SELECT x FROM s WHERE PROB(x > 5) >= 0.8",
		"SELECT x FROM s WHERE MTEST(x, '>', 97, 0.05, 0.05)",
		"SELECT a.x FROM a JOIN b ON a.k = b.k GROUP BY g WINDOW 5 SECONDS",
		"SELECT SQRT(ABS(a - b)) FROM s",
		"SELECT * FROM s;",
		"SELECT 'it''s' FROM s",
		"SELECT -1.5e-3 FROM s WHERE NOT a <> 2 AND b = 3 OR c <= 4",
		"SELECT 温度 FROM ストリーム",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of valid statement failed to parse:\ninput:    %q\nrendered: %q\nerr: %v",
				input, rendered, err)
		}
		if stmt2.String() != rendered {
			t.Fatalf("rendering not a fixed point:\nfirst:  %q\nsecond: %q", rendered, stmt2.String())
		}
	})
}
