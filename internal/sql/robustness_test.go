package sql

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestLexParseNeverPanics feeds arbitrary strings through the lexer and
// parser; any input must produce a value or an error, never a panic. This
// is the property a network-facing query parser must hold.
func TestLexParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		_, _ = ParseExpr(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseMutatedQueries mutates valid queries at every byte position —
// deletions and substitutions — and requires graceful handling.
func TestParseMutatedQueries(t *testing.T) {
	bases := []string{
		"SELECT (a + b) / 2 AS h FROM s WHERE PROB(c > 80) >= 0.5 WINDOW 10 ROWS",
		"SELECT x FROM s WHERE MTEST(x, '>', 97, 0.05, 0.05)",
		"SELECT a.x FROM a JOIN b ON a.k = b.k GROUP BY g WINDOW 5 SECONDS",
	}
	subs := []byte{'(', ')', '\'', ',', ' ', '>', '0', 'Z', ';', '.'}
	for _, base := range bases {
		for i := range base {
			// Deletion.
			mutated := base[:i] + base[i+1:]
			_, _ = Parse(mutated)
			// Substitutions.
			for _, c := range subs {
				b := []byte(base)
				b[i] = c
				_, _ = Parse(string(b))
			}
		}
	}
}

// TestDeepNestingDoesNotOverflow guards the recursive-descent parser
// against pathological nesting within reasonable input sizes.
func TestDeepNestingDoesNotOverflow(t *testing.T) {
	depth := 2000
	expr := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	if _, err := ParseExpr(expr); err != nil {
		t.Fatalf("deep nesting should parse: %v", err)
	}
	// NOT chains recurse too.
	nots := strings.Repeat("NOT ", 2000) + "a > 1"
	if _, err := ParseExpr(nots); err != nil {
		t.Fatalf("NOT chain should parse: %v", err)
	}
}

// TestLongIdentifiersAndNumbers exercises token-boundary handling.
func TestLongIdentifiersAndNumbers(t *testing.T) {
	longIdent := strings.Repeat("a", 10000)
	stmt, err := Parse("SELECT " + longIdent + " FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if col := stmt.Items[0].Expr.(*ColumnRef); len(col.Name) != 10000 {
		t.Error("long identifier truncated")
	}
	// A 100-digit literal still fits in float64's range.
	if _, err := ParseExpr("1" + strings.Repeat("0", 99)); err != nil {
		t.Fatalf("long number: %v", err)
	}
	// A 400-digit literal overflows float64 and is rejected cleanly.
	if _, err := ParseExpr("1" + strings.Repeat("0", 400)); err == nil {
		t.Fatal("overflowing literal should error")
	}
	// Exponent float forms.
	for _, s := range []string{"1e10", "1E-10", "1.5e+3", ".5", "0.5e2"} {
		e, err := ParseExpr(s)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", s, err)
			continue
		}
		if _, ok := e.(*NumberLit); !ok {
			t.Errorf("ParseExpr(%q) = %T", s, e)
		}
	}
}

// TestUnicodeIdentifiers: the lexer accepts letter categories beyond ASCII.
func TestUnicodeIdentifiers(t *testing.T) {
	stmt, err := Parse("SELECT 温度 FROM ストリーム WHERE 温度 > 30")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.From != "ストリーム" {
		t.Errorf("From = %q", stmt.From)
	}
}
