package sql

import (
	"strings"
	"testing"
)

func TestParseBackendClause(t *testing.T) {
	for raw, want := range map[string]string{
		"SELECT AVG(x) FROM s WINDOW 5 ROWS BACKEND SKETCH":     "SKETCH",
		"select avg(x) from s window 5 rows backend sketch":     "SKETCH",
		"SELECT AVG(x) FROM s WINDOW 5 ROWS BACKEND analytical": "ANALYTICAL",
		"SELECT AVG(x) FROM s WINDOW 5 ROWS BACKEND Bootstrap":  "BOOTSTRAP",
		"SELECT AVG(x) FROM s WINDOW 5 ROWS":                    "",
		"SELECT AVG(x) FROM s WINDOW 10 SECONDS BACKEND SKETCH": "SKETCH",
	} {
		stmt, err := Parse(raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", raw, err)
		}
		if stmt.Backend != want {
			t.Errorf("Parse(%q).Backend = %q, want %q", raw, stmt.Backend, want)
		}
	}
}

func TestParseBackendRoundTrip(t *testing.T) {
	raw := "SELECT AVG(x) AS a FROM s WINDOW 5 ROWS BACKEND SKETCH"
	stmt, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	printed := stmt.String()
	if !strings.Contains(printed, "BACKEND SKETCH") {
		t.Fatalf("String() = %q lost the backend clause", printed)
	}
	again, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", printed, err)
	}
	if again.Backend != "SKETCH" {
		t.Errorf("round trip lost backend: %q", again.Backend)
	}
	if again.String() != printed {
		t.Errorf("String() not a fixed point: %q vs %q", again.String(), printed)
	}
	// No clause: String() must not invent one (golden transcripts depend on
	// unchanged rendering of pre-existing queries).
	plain, err := Parse("SELECT AVG(x) AS a FROM s WINDOW 5 ROWS")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "BACKEND") {
		t.Errorf("String() invented a backend clause: %q", plain.String())
	}
}

func TestParseBackendErrors(t *testing.T) {
	for _, raw := range []string{
		"SELECT AVG(x) FROM s WINDOW 5 ROWS BACKEND",          // missing name
		"SELECT AVG(x) FROM s WINDOW 5 ROWS BACKEND TURBO",    // unknown name
		"SELECT AVG(x) FROM s WINDOW 5 ROWS BACKEND 7",        // not an identifier
		"SELECT AVG(x) FROM s BACKEND SKETCH WINDOW 5 ROWS",   // wrong position
		"SELECT backend FROM s",                               // reserved word as column
	} {
		if _, err := Parse(raw); err == nil {
			t.Errorf("Parse(%q): want error", raw)
		}
	}
}
