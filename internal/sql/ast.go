package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a parsed expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnRef references a stream column by name.
type ColumnRef struct {
	Name string
}

func (*ColumnRef) exprNode()        {}
func (e *ColumnRef) String() string { return e.Name }

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
}

func (*NumberLit) exprNode() {}
func (e *NumberLit) String() string {
	return strconv.FormatFloat(e.Value, 'g', -1, 64)
}

// StringLit is a single-quoted string literal (used for operator arguments
// of significance predicates, e.g. MTEST(x, '>', 97, 0.05)).
type StringLit struct {
	Value string
}

func (*StringLit) exprNode()        {}
func (e *StringLit) String() string { return "'" + strings.ReplaceAll(e.Value, "'", "''") + "'" }

// UnaryExpr is unary negation.
type UnaryExpr struct {
	Op string // "-"
	X  Expr
}

func (*UnaryExpr) exprNode()        {}
func (e *UnaryExpr) String() string { return e.Op + e.X.String() }

// BinaryExpr is an arithmetic expression: +, -, *, /.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) exprNode() {}
func (e *BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// CmpExpr is a comparison: >, <, >=, <=, =, <>.
type CmpExpr struct {
	Op   string
	L, R Expr
}

func (*CmpExpr) exprNode() {}
func (e *CmpExpr) String() string {
	return e.L.String() + " " + e.Op + " " + e.R.String()
}

// LogicalExpr combines boolean expressions with AND/OR.
type LogicalExpr struct {
	Op   string // "AND" or "OR"
	L, R Expr
}

func (*LogicalExpr) exprNode() {}
func (e *LogicalExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// NotExpr negates a boolean expression.
type NotExpr struct {
	X Expr
}

func (*NotExpr) exprNode()        {}
func (e *NotExpr) String() string { return "NOT " + e.X.String() }

// CallExpr is a function call: scalar functions (SQRT, ABS, SQUARE),
// aggregates (AVG, SUM, COUNT, MIN, MAX), the probability function PROB,
// and the significance predicates MTEST, MDTEST, PTEST. The planner
// (internal/core) resolves the name.
type CallExpr struct {
	Func string // upper-cased at parse time
	Args []Expr
}

func (*CallExpr) exprNode() {}
func (e *CallExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Func + "(" + strings.Join(args, ", ") + ")"
}

// Star is the "*" select list.
type Star struct{}

func (*Star) exprNode()        {}
func (e *Star) String() string { return "*" }

// SelectItem is one entry of the select list.
type SelectItem struct {
	Expr  Expr
	Alias string // optional AS alias
}

func (it SelectItem) String() string {
	if it.Alias != "" {
		return it.Expr.String() + " AS " + it.Alias
	}
	return it.Expr.String()
}

// WindowSpec is the sliding window clause: WINDOW n ROWS (count-based) or
// WINDOW n SECONDS (time-based over tuple timestamps). Exactly one of Rows
// and Seconds is set.
type WindowSpec struct {
	Rows    int
	Seconds int64
}

// DefaultJoinWindowRows is the symmetric per-side count window applied to
// join queries that omit a WINDOW clause. The planner normalizes the
// default into the statement at compile time, so EXPLAIN output, statement
// round-trip printing, and checkpointed SQL all show the effective window
// explicitly instead of an invisible fallback.
const DefaultJoinWindowRows = 128

// JoinSpec is the window equi-join clause:
// FROM left JOIN right ON left.key = right.key.
type JoinSpec struct {
	Right    string
	LeftKey  string // column of the left stream (may be qualified)
	RightKey string // column of the right stream (may be qualified)
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Items   []SelectItem
	From    string
	Join    *JoinSpec // nil when absent
	Where   Expr      // nil when absent
	GroupBy string    // empty when absent
	Window  *WindowSpec
	// Backend overrides the engine's accuracy backend for this query:
	// "ANALYTICAL", "BOOTSTRAP", or "SKETCH" (upper-cased at parse time);
	// empty uses the engine default.
	Backend string
}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(s.From)
	if s.Join != nil {
		fmt.Fprintf(&b, " JOIN %s ON %s = %s", s.Join.Right, s.Join.LeftKey, s.Join.RightKey)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if s.GroupBy != "" {
		b.WriteString(" GROUP BY ")
		b.WriteString(s.GroupBy)
	}
	if s.Window != nil {
		if s.Window.Seconds > 0 {
			fmt.Fprintf(&b, " WINDOW %d SECONDS", s.Window.Seconds)
		} else {
			fmt.Fprintf(&b, " WINDOW %d ROWS", s.Window.Rows)
		}
	}
	if s.Backend != "" {
		b.WriteString(" BACKEND ")
		b.WriteString(s.Backend)
	}
	return b.String()
}

// Walk calls fn for expr and every sub-expression, depth-first. It is used
// by the planner to collect column references and validate calls.
func Walk(expr Expr, fn func(Expr)) {
	if expr == nil {
		return
	}
	fn(expr)
	switch e := expr.(type) {
	case *UnaryExpr:
		Walk(e.X, fn)
	case *BinaryExpr:
		Walk(e.L, fn)
		Walk(e.R, fn)
	case *CmpExpr:
		Walk(e.L, fn)
		Walk(e.R, fn)
	case *LogicalExpr:
		Walk(e.L, fn)
		Walk(e.R, fn)
	case *NotExpr:
		Walk(e.X, fn)
	case *CallExpr:
		for _, a := range e.Args {
			Walk(a, fn)
		}
	}
}

// Columns returns the distinct column names referenced by expr, in first
// appearance order.
func Columns(expr Expr) []string {
	var out []string
	seen := map[string]bool{}
	Walk(expr, func(e Expr) {
		if c, ok := e.(*ColumnRef); ok {
			key := strings.ToLower(c.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, c.Name)
			}
		}
	})
	return out
}
