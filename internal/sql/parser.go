package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement (a trailing ';' is allowed).
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokOp && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseExpr parses a standalone expression — used by tools and tests.
func ParseExpr(input string) (Expr, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

// isKeyword reports whether the next token is the given keyword
// (case-insensitive identifier match).
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errorf("expected %s, got %s", kw, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expectOp(op string) error {
	t := p.peek()
	if t.Kind != TokOp || t.Text != op {
		return p.errorf("expected %q, got %s", op, t)
	}
	p.next()
	return nil
}

// reserved keywords cannot be used as bare column references.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "window": true,
	"rows": true, "seconds": true, "as": true, "and": true, "or": true,
	"not": true, "join": true, "on": true, "group": true, "by": true,
	"backend": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	// Select list.
	if p.peek().Kind == TokOp && p.peek().Text == "*" {
		p.next()
		stmt.Items = []SelectItem{{Expr: &Star{}}}
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.isKeyword("AS") {
				p.next()
				t := p.peek()
				if t.Kind != TokIdent || reserved[strings.ToLower(t.Text)] {
					return nil, p.errorf("expected alias name, got %s", t)
				}
				item.Alias = p.next().Text
			}
			stmt.Items = append(stmt.Items, item)
			if p.peek().Kind == TokOp && p.peek().Text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != TokIdent || reserved[strings.ToLower(t.Text)] {
		return nil, p.errorf("expected stream name, got %s", t)
	}
	stmt.From = p.next().Text
	if p.isKeyword("JOIN") {
		p.next()
		t = p.peek()
		if t.Kind != TokIdent || reserved[strings.ToLower(t.Text)] {
			return nil, p.errorf("expected joined stream name, got %s", t)
		}
		join := &JoinSpec{Right: p.next().Text}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		lk := p.peek()
		if lk.Kind != TokIdent || reserved[strings.ToLower(lk.Text)] {
			return nil, p.errorf("expected join key column, got %s", lk)
		}
		join.LeftKey = p.next().Text
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		rk := p.peek()
		if rk.Kind != TokIdent || reserved[strings.ToLower(rk.Text)] {
			return nil, p.errorf("expected join key column, got %s", rk)
		}
		join.RightKey = p.next().Text
		stmt.Join = join
	}
	if p.isKeyword("WHERE") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.isKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		t = p.peek()
		if t.Kind != TokIdent || reserved[strings.ToLower(t.Text)] {
			return nil, p.errorf("expected GROUP BY column, got %s", t)
		}
		stmt.GroupBy = p.next().Text
	}
	if p.isKeyword("WINDOW") {
		p.next()
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errorf("expected window size, got %s", t)
		}
		n, err := strconv.Atoi(p.next().Text)
		if err != nil || n < 1 {
			return nil, p.errorf("invalid window size %q", t.Text)
		}
		switch {
		case p.isKeyword("ROWS"):
			p.next()
			stmt.Window = &WindowSpec{Rows: n}
		case p.isKeyword("SECONDS"):
			p.next()
			stmt.Window = &WindowSpec{Seconds: int64(n)}
		default:
			return nil, p.errorf("expected ROWS or SECONDS, got %s", p.peek())
		}
	}
	if p.isKeyword("BACKEND") {
		p.next()
		t := p.peek()
		if t.Kind != TokIdent {
			return nil, p.errorf("expected backend name, got %s", t)
		}
		name := strings.ToUpper(p.next().Text)
		switch name {
		case "ANALYTICAL", "BOOTSTRAP", "SKETCH":
			stmt.Backend = name
		default:
			return nil, p.errorf("unknown backend %q, want ANALYTICAL, BOOTSTRAP, or SKETCH", name)
		}
	}
	return stmt, nil
}

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &LogicalExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &LogicalExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]bool{">": true, "<": true, ">=": true, "<=": true, "=": true, "<>": true}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokOp && cmpOps[t.Text] {
		op := p.next().Text
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &CmpExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			op := p.next().Text
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/") {
			op := p.next().Text
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokOp && t.Text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of literals immediately.
		if num, ok := x.(*NumberLit); ok {
			return &NumberLit{Value: -num.Value}, nil
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &NumberLit{Value: v}, nil
	case t.Kind == TokString:
		p.next()
		return &StringLit{Value: t.Text}, nil
	case t.Kind == TokIdent:
		if reserved[strings.ToLower(t.Text)] {
			return nil, p.errorf("unexpected keyword %s", t)
		}
		name := p.next().Text
		if p.peek().Kind == TokOp && p.peek().Text == "(" {
			p.next()
			call := &CallExpr{Func: strings.ToUpper(name)}
			if !(p.peek().Kind == TokOp && p.peek().Text == ")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.peek().Kind == TokOp && p.peek().Text == "," {
						p.next()
						continue
					}
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &ColumnRef{Name: name}, nil
	case t.Kind == TokOp && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("unexpected %s", t)
}
