package accuracy

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/learn"
)

// TestLemma3MinRuleAblation validates the design choice DESIGN.md calls
// out: the d.f. sample size of Y = (A+B)/2 must be min(n_A, n_B)
// (Lemma 3). Using the larger input size instead produces intervals that
// are too narrow and under-cover; the min-rule keeps coverage at the
// nominal level.
//
// Setup: A has 200 observations, B only 10. Repeatedly learn both, compute
// the mean interval of (Ā+B̄)/2 with n = min = 10 vs n = max = 200, and
// count misses of the true mean.
func TestLemma3MinRuleAblation(t *testing.T) {
	rng := dist.NewRand(1234)
	a, _ := dist.NewNormal(40, 100)
	b, _ := dist.NewNormal(60, 100)
	trueMean := (a.Mean() + b.Mean()) / 2
	const trials = 3000
	const nA, nB = 200, 10
	missMin, missMax := 0, 0
	for k := 0; k < trials; k++ {
		sa := learn.NewSample(dist.SampleN(a, nA, rng))
		sb := learn.NewSample(dist.SampleN(b, nB, rng))
		ma, _ := sa.Mean()
		mb, _ := sb.Mean()
		est := (ma + mb) / 2
		// The estimator's true standard deviation: the paper's analytical
		// path takes s from the result distribution; here we use the
		// exact sd of (Ā+B̄)/2 scaled back to a per-observation s so that
		// only the n in Lemma 2 differs between the two arms.
		// sd(est) = 0.5·sqrt(σ²/nA + σ²/nB); Lemma 2 divides s by √n, so
		// feeding s = sd(est)·√n reproduces sd(est) for that n.
		sdEst := 0.5 * math.Sqrt(100.0/nA+100.0/nB)
		nMin, err := DFSampleSize(nA, nB)
		if err != nil {
			t.Fatal(err)
		}
		ivMin, err := MeanInterval(est, sdEst*math.Sqrt(float64(nMin)), nMin, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		ivMax, err := MeanInterval(est, sdEst*math.Sqrt(float64(nA)), nA, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if !ivMin.Contains(trueMean) {
			missMin++
		}
		if !ivMax.Contains(trueMean) {
			missMax++
		}
	}
	rateMin := float64(missMin) / trials
	rateMax := float64(missMax) / trials
	// The min-rule keeps the nominal 10% miss rate (the t multiplier for
	// n=10 is wider than z, making it slightly conservative).
	if rateMin > 0.12 {
		t.Errorf("min-rule miss rate %g exceeds nominal", rateMin)
	}
	// The naive max-rule interval uses z_{.05} instead of t_{.05,9}: its
	// multiplier is ~12%% smaller, so it must miss measurably more often.
	if rateMax <= rateMin {
		t.Errorf("max-rule should under-cover: min %g vs max %g", rateMin, rateMax)
	}
}

// TestDFSampleSizeDrivesIntervalWidth demonstrates Lemma 3's practical
// consequence end to end: the same result distribution with a smaller d.f.
// sample size yields a wider (more honest) interval.
func TestDFSampleSizeDrivesIntervalWidth(t *testing.T) {
	nd, _ := dist.NewNormal(50, 25)
	wide, err := ForDistribution(nd, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := ForDistribution(nd, 100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Mean.Length() <= narrow.Mean.Length() {
		t.Errorf("n=10 interval %v should be wider than n=100 %v", wide.Mean, narrow.Mean)
	}
	if wide.Variance.Length() <= narrow.Variance.Length() {
		t.Errorf("n=10 variance interval should be wider")
	}
}
