package accuracy

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/stat"
)

// Statistical calibration of the paper's Lemma 1 and Lemma 2 intervals:
// with a seeded RNG, the empirical coverage over many independent trials
// must match the interval's true coverage probability within a 3σ binomial
// tolerance.
//
// For the proportion intervals (Wald, Wilson) the comparison target is the
// *exact* coverage Σ_k Binom(k; n, p)·1[CI(k/n, n) ∋ p], not the nominal
// level — finite-n proportion coverage oscillates around nominal (the
// classic Brown–Cai–DasGupta sawtooth), so comparing against nominal would
// either flake or need tolerances loose enough to hide real bugs. For the
// Gaussian mean and variance intervals the t and χ² constructions are
// exactly nominal, so nominal is the target.

const calibTrials = 4000

// tol3Sigma is the 3σ binomial standard error of an empirical coverage
// estimate around its true value.
func tol3Sigma(cov float64, trials int) float64 {
	return 3 * math.Sqrt(cov*(1-cov)/float64(trials))
}

// logBinomPMF returns log Pr[K = k] for K ~ Binom(n, p) via log-gamma,
// stable for the n used here.
func logBinomPMF(k, n int, p float64) float64 {
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}
	return lg(float64(n+1)) - lg(float64(k+1)) - lg(float64(n-k+1)) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
}

// exactProportionCoverage sums the binomial pmf over the k whose interval
// contains the true p.
func exactProportionCoverage(t *testing.T, interval func(phat float64, n int, c float64) (Interval, error),
	n int, p, level float64) float64 {
	t.Helper()
	cov := 0.0
	for k := 0; k <= n; k++ {
		iv, err := interval(float64(k)/float64(n), n, level)
		if err != nil {
			t.Fatalf("interval(k=%d/n=%d): %v", k, n, err)
		}
		if iv.Contains(p) {
			cov += math.Exp(logBinomPMF(k, n, p))
		}
	}
	return cov
}

// empiricalProportionCoverage simulates binomial draws and measures how
// often the interval covers p.
func empiricalProportionCoverage(t *testing.T, interval func(phat float64, n int, c float64) (Interval, error),
	rng *dist.Rand, n int, p, level float64) float64 {
	t.Helper()
	hits := 0
	for trial := 0; trial < calibTrials; trial++ {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		iv, err := interval(float64(k)/float64(n), n, level)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if iv.Contains(p) {
			hits++
		}
	}
	return float64(hits) / calibTrials
}

var calibLevels = []float64{0.90, 0.95, 0.99}

// TestWaldCoverage checks the Lemma 1 Wald interval (paper eq. 1) in its
// validity regime n·p ≥ 4, n·(1−p) ≥ 4.
func TestWaldCoverage(t *testing.T) {
	const n, p = 200, 0.3
	rng := dist.NewRand(101)
	for _, level := range calibLevels {
		exact := exactProportionCoverage(t, WaldInterval, n, p, level)
		emp := empiricalProportionCoverage(t, WaldInterval, rng, n, p, level)
		if d := math.Abs(emp - exact); d > tol3Sigma(exact, calibTrials) {
			t.Errorf("Wald level %g: empirical coverage %.4f vs exact %.4f (Δ=%.4f > 3σ=%.4f)",
				level, emp, exact, d, tol3Sigma(exact, calibTrials))
		}
		// The exact coverage itself must sit near nominal in the Wald
		// validity regime (within 2.5 points — eq. 1's own approximation).
		if math.Abs(exact-level) > 0.025 {
			t.Errorf("Wald level %g: exact coverage %.4f strays from nominal", level, exact)
		}
	}
}

// TestWilsonCoverage checks the Lemma 1 Wilson interval (paper eq. 2) in
// the small-count regime that triggers it (n·p = 2 < 4 here), where Wald
// would break down.
func TestWilsonCoverage(t *testing.T) {
	const n, p = 40, 0.05
	rng := dist.NewRand(202)
	for _, level := range calibLevels {
		exact := exactProportionCoverage(t, WilsonInterval, n, p, level)
		emp := empiricalProportionCoverage(t, WilsonInterval, rng, n, p, level)
		if d := math.Abs(emp - exact); d > tol3Sigma(exact, calibTrials) {
			t.Errorf("Wilson level %g: empirical coverage %.4f vs exact %.4f (Δ=%.4f > 3σ=%.4f)",
				level, emp, exact, d, tol3Sigma(exact, calibTrials))
		}
	}
}

// TestBinHeightSwitchMatchesRegime pins the Lemma 1 switch rule: the
// combined BinHeightInterval must agree with Wald when n·p and n·(1−p) are
// both ≥ 4 and with Wilson otherwise.
func TestBinHeightSwitchMatchesRegime(t *testing.T) {
	cases := []struct {
		p    float64
		n    int
		wald bool
	}{
		{0.3, 200, true},
		{0.5, 16, true},
		{0.05, 40, false}, // n·p = 2
		{0.98, 100, false},
	}
	for _, tc := range cases {
		got, err := BinHeightInterval(tc.p, tc.n, 0.95)
		if err != nil {
			t.Fatalf("BinHeightInterval(%v, %d): %v", tc.p, tc.n, err)
		}
		var want Interval
		if tc.wald {
			want, err = WaldInterval(tc.p, tc.n, 0.95)
		} else {
			want, err = WilsonInterval(tc.p, tc.n, 0.95)
		}
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("BinHeightInterval(%v, %d) = %v, want %v branch %v",
				tc.p, tc.n, got, want, map[bool]string{true: "Wald", false: "Wilson"}[tc.wald])
		}
	}
}

// sampleStats returns the sample mean and standard deviation of n Gaussian
// draws.
func sampleStats(rng *dist.Rand, mu, sigma float64, n int) (mean, sd float64) {
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := mu + sigma*rng.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean = sum / float64(n)
	s2 := (sum2 - float64(n)*mean*mean) / float64(n-1)
	if s2 < 0 {
		s2 = 0
	}
	return mean, math.Sqrt(s2)
}

// TestMeanIntervalCalibration checks Lemma 2 eq. (3)/(4) under Gaussian
// sampling: the t construction (n < 30) is exactly nominal; the z
// construction (n ≥ 30) is nominal up to the t-vs-z bias, which at n = 100
// is ~1.3·10⁻³ — far inside the 3σ tolerance.
func TestMeanIntervalCalibration(t *testing.T) {
	const mu, sigma = 5.0, 2.0
	for _, n := range []int{20, 100} {
		rng := dist.NewRand(uint64(303 + n))
		for _, level := range calibLevels {
			hits := 0
			for trial := 0; trial < calibTrials; trial++ {
				mean, sd := sampleStats(rng, mu, sigma, n)
				iv, err := MeanInterval(mean, sd, n, level)
				if err != nil {
					t.Fatalf("n=%d trial %d: %v", n, trial, err)
				}
				if iv.Contains(mu) {
					hits++
				}
			}
			emp := float64(hits) / calibTrials
			if d := math.Abs(emp - level); d > tol3Sigma(level, calibTrials) {
				t.Errorf("mean CI n=%d level %g: coverage %.4f (Δ=%.4f > 3σ=%.4f)",
					n, level, emp, d, tol3Sigma(level, calibTrials))
			}
		}
	}
}

// TestVarianceIntervalCalibration checks Lemma 2 eq. (5): the χ² interval is
// exactly nominal under Gaussian sampling.
func TestVarianceIntervalCalibration(t *testing.T) {
	const mu, sigma = -1.0, 3.0
	const n = 25
	rng := dist.NewRand(404)
	for _, level := range calibLevels {
		hits := 0
		for trial := 0; trial < calibTrials; trial++ {
			_, sd := sampleStats(rng, mu, sigma, n)
			iv, err := VarianceInterval(sd*sd, n, level)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if iv.Contains(sigma * sigma) {
				hits++
			}
		}
		emp := float64(hits) / calibTrials
		if d := math.Abs(emp - level); d > tol3Sigma(level, calibTrials) {
			t.Errorf("variance CI level %g: coverage %.4f (Δ=%.4f > 3σ=%.4f)",
				level, emp, d, tol3Sigma(level, calibTrials))
		}
	}
}

// TestNormCDFConsistency anchors the calibration suite's statistical
// machinery: the z quantiles used by the intervals invert NormCDF.
func TestNormCDFConsistency(t *testing.T) {
	for _, a := range []float64{0.005, 0.025, 0.05} {
		z := stat.ZUpper(a)
		if got := 1 - stat.NormCDF(z); math.Abs(got-a) > 1e-9 {
			t.Errorf("1-NormCDF(ZUpper(%g)) = %g, want %g", a, got, a)
		}
	}
}
