// Package accuracy implements the paper's analytical accuracy methods
// (§II): confidence intervals for the parameters of learned probability
// distributions, and the rules that propagate accuracy from source data to
// query results.
//
//   - Lemma 1: bin-height intervals for histogram distributions, using the
//     normal approximation of the binomial (Wald interval) when n·p ≥ 4 and
//     n·(1−p) ≥ 4, and the Wilson score interval otherwise.
//   - Lemma 2: mean intervals (Student's t for n < 30, normal for n ≥ 30)
//     and variance intervals (chi-square), both with n−1 degrees of freedom.
//   - Definition 2 / Lemma 3: the de facto (d.f.) sample size of an output
//     random variable Y = f(X₁, …, X_d) is min nᵢ.
//   - Theorem 1: applying Lemma 1/2 to a query-result distribution with the
//     d.f. sample size as n yields the result's accuracy information; a
//     result tuple's membership probability is handled as a one-bin
//     histogram.
package accuracy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/stat"
)

// ErrSampleSize reports an operation whose sample size is too small for the
// requested statistic (e.g. a variance interval needs n ≥ 2).
var ErrSampleSize = errors.New("accuracy: sample size too small")

// Interval is a confidence interval [Lo, Hi] holding an estimated parameter
// with probability at least Level (the confidence coefficient, §II-A).
type Interval struct {
	Lo, Hi float64
	Level  float64
}

// Length returns Hi − Lo, the figure of merit throughout the paper's
// experiments ("the smaller an interval is, the more accurate the query
// result is").
func (iv Interval) Length() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies inside the interval; a false result is a
// "miss" in the paper's Fig 4(c)/(d) metric.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Mid returns the interval midpoint.
func (iv Interval) Mid() float64 { return (iv.Lo + iv.Hi) / 2 }

func (iv Interval) String() string {
	return fmt.Sprintf("[%.6g, %.6g]@%g%%", iv.Lo, iv.Hi, iv.Level*100)
}

// Clamp returns the interval intersected with [lo, hi]; bin-height and
// tuple-probability intervals are clamped to [0, 1].
func (iv Interval) Clamp(lo, hi float64) Interval {
	out := iv
	if out.Lo < lo {
		out.Lo = lo
	}
	if out.Hi > hi {
		out.Hi = hi
	}
	if out.Lo > out.Hi { // disjoint: collapse to the nearer bound
		if iv.Hi < lo {
			out.Lo, out.Hi = lo, lo
		} else {
			out.Lo, out.Hi = hi, hi
		}
	}
	return out
}

// BinHeightInterval implements Lemma 1 for a single histogram bucket: a
// level-c confidence interval for the true bucket probability, given the
// observed bucket probability p learned from a sample of size n.
//
// When n·p ≥ 4 and n·(1−p) ≥ 4 the binomial is well approximated by a
// normal and the Wald interval (paper eq. 1) applies; otherwise the Wilson
// score interval (paper eq. 2) is used.
func BinHeightInterval(p float64, n int, c float64) (Interval, error) {
	if n < 1 {
		return Interval{}, fmt.Errorf("%w: bin-height interval needs n ≥ 1, have %d", ErrSampleSize, n)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return Interval{}, fmt.Errorf("accuracy: bucket probability %v outside [0,1]", p)
	}
	if err := stat.CheckLevel(c); err != nil {
		return Interval{}, fmt.Errorf("accuracy: confidence level %v: %w", c, err)
	}
	// The threshold comparison tolerates float rounding: n·(1−p) for, say,
	// p = 0.9, n = 40 evaluates to 3.9999999999999996, and without the
	// slack the two boundaries of the switch rule would behave
	// asymmetrically (n·p = 4 → Wald, n·(1−p) = 4 → Wilson).
	const boundaryTol = 1e-9
	fn := float64(n)
	if fn*p >= 4-boundaryTol && fn*(1-p) >= 4-boundaryTol {
		return WaldInterval(p, n, c)
	}
	return WilsonInterval(p, n, c)
}

// WaldInterval is the normal-approximation proportion interval of the
// paper's eq. (1): p ± z·sqrt(p(1−p)/n). Valid when n·p and n·(1−p) are
// both ≥ 4; exported separately for the switch-rule ablation (FigX3).
func WaldInterval(p float64, n int, c float64) (Interval, error) {
	if err := checkProportionArgs(p, n, c); err != nil {
		return Interval{}, err
	}
	z := stat.ZUpper((1 - c) / 2)
	half := z * math.Sqrt(p*(1-p)/float64(n))
	return clampProportion(p-half, p+half, p, c), nil
}

// WilsonInterval is the Wilson score interval of the paper's eq. (2),
// robust at extreme proportions and tiny counts.
func WilsonInterval(p float64, n int, c float64) (Interval, error) {
	if err := checkProportionArgs(p, n, c); err != nil {
		return Interval{}, err
	}
	z := stat.ZUpper((1 - c) / 2)
	fn := float64(n)
	z2 := z * z
	denom := 1 + z2/fn
	center := p + z2/(2*fn)
	half := z * math.Sqrt(p*(1-p)/fn+z2/(4*fn*fn))
	return clampProportion((center-half)/denom, (center+half)/denom, p, c), nil
}

func checkProportionArgs(p float64, n int, c float64) error {
	if n < 1 {
		return fmt.Errorf("%w: proportion interval needs n ≥ 1, have %d", ErrSampleSize, n)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return fmt.Errorf("accuracy: proportion %v outside [0,1]", p)
	}
	if err := stat.CheckLevel(c); err != nil {
		return fmt.Errorf("accuracy: confidence level %v: %w", c, err)
	}
	return nil
}

// clampProportion keeps the interval inside [0,1] and, against
// floating-point rounding at the extremes, containing its estimate.
func clampProportion(lo, hi, p, c float64) Interval {
	if lo > p {
		lo = p
	}
	if hi < p {
		hi = p
	}
	return Interval{Lo: lo, Hi: hi, Level: c}.Clamp(0, 1)
}

// BinInterval pairs a histogram bucket with the confidence interval of its
// height — one entry of the generalized representation
// {(bᵢ, pᵢ₁, pᵢ₂, cᵢ)} of §II-B.
type BinInterval struct {
	Bucket   int     // bucket index
	Lo, Hi   float64 // bucket value range [Lo, Hi)
	Estimate float64 // observed bin height pᵢ
	Interval Interval
}

// HistogramAccuracy applies Lemma 1 to every bucket of h, learned from a
// sample of size n, at confidence level c. When n is 0 the histogram's own
// retained sample size is used.
func HistogramAccuracy(h *dist.Histogram, n int, c float64) ([]BinInterval, error) {
	if h == nil {
		return nil, errors.New("accuracy: nil histogram")
	}
	if n == 0 {
		n = h.SampleSize()
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: histogram has no sample size; pass n explicitly", ErrSampleSize)
	}
	out := make([]BinInterval, h.NumBuckets())
	for i := range out {
		p := h.BucketProb(i)
		iv, err := BinHeightInterval(p, n, c)
		if err != nil {
			return nil, err
		}
		lo, hi := h.Bucket(i)
		out[i] = BinInterval{Bucket: i, Lo: lo, Hi: hi, Estimate: p, Interval: iv}
	}
	return out, nil
}

// MeanInterval implements Lemma 2 equations (3) and (4): a level-c
// confidence interval for the population mean, from sample mean ybar,
// sample standard deviation s, and sample size n. Student's t with n−1
// degrees of freedom is used when n < 30, the normal approximation when
// n ≥ 30.
func MeanInterval(ybar, s float64, n int, c float64) (Interval, error) {
	if n < 2 {
		return Interval{}, fmt.Errorf("%w: mean interval needs n ≥ 2, have %d", ErrSampleSize, n)
	}
	if s < 0 || math.IsNaN(s) || math.IsNaN(ybar) {
		return Interval{}, fmt.Errorf("accuracy: invalid sample statistics ȳ=%v s=%v", ybar, s)
	}
	if err := stat.CheckLevel(c); err != nil {
		return Interval{}, fmt.Errorf("accuracy: confidence level %v: %w", c, err)
	}
	a := (1 - c) / 2
	var mult float64
	if n < 30 {
		t, err := stat.TUpper(a, float64(n-1))
		if err != nil {
			return Interval{}, err
		}
		mult = t
	} else {
		mult = stat.ZUpper(a)
	}
	half := mult * s / math.Sqrt(float64(n))
	return Interval{Lo: ybar - half, Hi: ybar + half, Level: c}, nil
}

// VarianceInterval implements Lemma 2 equation (5): a level-c confidence
// interval for the population variance from sample variance s2 and sample
// size n, based on the chi-square distribution with n−1 degrees of freedom.
func VarianceInterval(s2 float64, n int, c float64) (Interval, error) {
	if n < 2 {
		return Interval{}, fmt.Errorf("%w: variance interval needs n ≥ 2, have %d", ErrSampleSize, n)
	}
	if s2 < 0 || math.IsNaN(s2) {
		return Interval{}, fmt.Errorf("accuracy: invalid sample variance %v", s2)
	}
	if err := stat.CheckLevel(c); err != nil {
		return Interval{}, fmt.Errorf("accuracy: confidence level %v: %w", c, err)
	}
	df := float64(n - 1)
	// χ² that locates (1−c)/2 to the right (upper) and to the left (lower).
	upper, err := stat.ChiSquareUpper((1-c)/2, df)
	if err != nil {
		return Interval{}, err
	}
	lower, err := stat.ChiSquareUpper((1+c)/2, df)
	if err != nil {
		return Interval{}, err
	}
	return Interval{
		Lo:    df * s2 / upper,
		Hi:    df * s2 / lower,
		Level: c,
	}, nil
}

// TupleProbInterval implements the tuple-probability case of §II-B and
// Theorem 1: the membership probability p of a result tuple is treated as a
// one-bin histogram whose bin probability is p, with n the d.f. sample size
// of the boolean existence variable.
func TupleProbInterval(p float64, n int, c float64) (Interval, error) {
	return BinHeightInterval(p, n, c)
}

// DFSampleSize implements Lemma 3: the de facto sample size of an output
// random variable Y = f(X₁, …, X_d) is the minimum of the input sample
// sizes. It returns an error when no inputs are given or any size is < 1.
func DFSampleSize(sizes ...int) (int, error) {
	if len(sizes) == 0 {
		return 0, errors.New("accuracy: d.f. sample size of zero inputs")
	}
	minSize := sizes[0]
	for _, n := range sizes {
		if n < 1 {
			return 0, fmt.Errorf("%w: input sample size %d", ErrSampleSize, n)
		}
		if n < minSize {
			minSize = n
		}
	}
	return minSize, nil
}

// LogDFSampleCount implements Lemma 4's counting argument: the natural log
// of the number c = Π_{i≥2} nᵢ!/(nᵢ−n)! of distinct d.f. samples of
// Y = f(X₁, …, X_d), where sizes are the input sample sizes (in any order)
// and n = min is the d.f. sample size. The count itself overflows quickly,
// so the log is returned.
func LogDFSampleCount(sizes ...int) (float64, error) {
	n, err := DFSampleSize(sizes...)
	if err != nil {
		return 0, err
	}
	// Identify one input attaining the minimum to play the role of X₁.
	skipped := false
	logC := 0.0
	for _, ni := range sizes {
		if ni == n && !skipped {
			skipped = true
			continue
		}
		// log(nᵢ!/(nᵢ−n)!) = lgamma(nᵢ+1) − lgamma(nᵢ−n+1).
		a, _ := math.Lgamma(float64(ni) + 1)
		b, _ := math.Lgamma(float64(ni-n) + 1)
		logC += a - b
	}
	return logC, nil
}

// Info is the accuracy information attached to a probabilistic field of a
// query result (Fig. 2): intervals for the distribution's mean and
// variance, plus per-bucket bin-height intervals when the distribution is a
// histogram.
type Info struct {
	// N is the (d.f.) sample size the intervals were computed from.
	N int
	// Level is the confidence level of every interval.
	Level float64
	// Mean and Variance are the Lemma 2 intervals.
	Mean, Variance Interval
	// Bins holds the Lemma 1 intervals when the distribution is a
	// histogram; nil otherwise.
	Bins []BinInterval
	// WindowMedian is a distribution-free interval for the median of the
	// window's per-tuple means, populated only by backends that track order
	// statistics (the sketch backend); nil otherwise.
	WindowMedian *Interval
	// Method records how the info was obtained ("analytical", "bootstrap",
	// or "sketch").
	Method string
}

// ForDistribution implements Theorem 1's analytical path: given a result
// field's distribution d and its d.f. sample size n, it computes the
// accuracy information using d's mean and standard deviation as ȳ and s.
// Histograms additionally get per-bucket intervals.
func ForDistribution(d dist.Distribution, n int, c float64) (*Info, error) {
	if d == nil {
		return nil, errors.New("accuracy: nil distribution")
	}
	if n < 2 {
		return nil, fmt.Errorf("%w: accuracy info needs n ≥ 2, have %d", ErrSampleSize, n)
	}
	sd := math.Sqrt(d.Variance())
	mean, err := MeanInterval(d.Mean(), sd, n, c)
	if err != nil {
		return nil, err
	}
	variance, err := VarianceInterval(d.Variance(), n, c)
	if err != nil {
		return nil, err
	}
	info := &Info{N: n, Level: c, Mean: mean, Variance: variance, Method: "analytical"}
	if h, ok := d.(*dist.Histogram); ok {
		bins, err := HistogramAccuracy(h, n, c)
		if err != nil {
			return nil, err
		}
		info.Bins = bins
	}
	return info, nil
}

// ForSample computes accuracy information directly from a raw sample's
// statistics (the Lemma 2 path for source data), with ybar and s the sample
// mean and standard deviation.
func ForSample(ybar, s float64, n int, c float64) (*Info, error) {
	mean, err := MeanInterval(ybar, s, n, c)
	if err != nil {
		return nil, err
	}
	variance, err := VarianceInterval(s*s, n, c)
	if err != nil {
		return nil, err
	}
	return &Info{N: n, Level: c, Mean: mean, Variance: variance, Method: "analytical"}, nil
}

// ProbGreaterInterval estimates an interval for P(X > v) from a histogram
// with bin-height intervals — the §I use case "the user can estimate the
// probability interval that the temperature is greater than 80 degrees".
// Buckets straddling v contribute a prorated share of both bounds.
func ProbGreaterInterval(h *dist.Histogram, bins []BinInterval, v float64) (Interval, error) {
	if h == nil {
		return Interval{}, errors.New("accuracy: nil histogram")
	}
	if len(bins) != h.NumBuckets() {
		return Interval{}, fmt.Errorf("accuracy: %d bin intervals for %d buckets", len(bins), h.NumBuckets())
	}
	lo, hi := 0.0, 0.0
	level := 1.0
	for i := range bins {
		blo, bhi := h.Bucket(i)
		if bhi <= v {
			continue
		}
		frac := 1.0
		if blo < v { // straddling bucket: mass above v under uniform fill
			frac = (bhi - v) / (bhi - blo)
		}
		lo += frac * bins[i].Interval.Lo
		hi += frac * bins[i].Interval.Hi
		if bins[i].Interval.Level < level {
			level = bins[i].Interval.Level
		}
	}
	return Interval{Lo: lo, Hi: hi, Level: level}.Clamp(0, 1), nil
}
