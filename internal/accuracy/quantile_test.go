package accuracy

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
)

func TestBinomialCDF(t *testing.T) {
	// Binomial(4, 0.5): CDF = 1/16, 5/16, 11/16, 15/16, 1.
	want := []float64{1.0 / 16, 5.0 / 16, 11.0 / 16, 15.0 / 16, 1}
	for k, w := range want {
		got, err := binomialCDF(k, 4, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "binomCDF", got, w, 1e-12)
	}
	if v, _ := binomialCDF(-1, 4, 0.5); v != 0 {
		t.Errorf("CDF(-1) = %v", v)
	}
	if v, _ := binomialCDF(4, 4, 0.5); v != 1 {
		t.Errorf("CDF(n) = %v", v)
	}
}

func TestQuantileIntervalValidation(t *testing.T) {
	obs := []float64{1, 2, 3, 4, 5}
	if _, err := QuantileInterval(obs[:1], 0.5, 0.9); err == nil {
		t.Error("n=1: want error")
	}
	for _, p := range []float64{0, 1, -0.5, math.NaN()} {
		if _, err := QuantileInterval(obs, p, 0.9); err == nil {
			t.Errorf("p=%v: want error", p)
		}
	}
	if _, err := QuantileInterval(obs, 0.5, 1.5); err == nil {
		t.Error("c>1: want error")
	}
}

func TestQuantileIntervalBasics(t *testing.T) {
	obs := make([]float64, 100)
	for i := range obs {
		obs[i] = float64(i + 1) // 1..100
	}
	iv, err := MedianInterval(obs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// The interval must bracket the sample median and be reasonably tight.
	if !(iv.Lo <= 50.5 && 50.5 <= iv.Hi) {
		t.Errorf("median interval %v does not bracket 50.5", iv)
	}
	if iv.Length() > 25 {
		t.Errorf("median interval %v too wide for n=100", iv)
	}
	if iv.Level < 0.9 {
		t.Errorf("achieved level %v below requested 0.9", iv.Level)
	}
	// Input must not be mutated.
	if obs[0] != 1 || obs[99] != 100 {
		t.Error("QuantileInterval mutated its input")
	}
	shuffled := []float64{5, 1, 4, 2, 3}
	if _, err := QuantileInterval(shuffled, 0.5, 0.9); err != nil {
		t.Fatal(err)
	}
	if shuffled[0] != 5 {
		t.Error("input order changed")
	}
}

// TestQuantileIntervalCoverage: the empirical coverage of the 90% median
// interval meets its nominal level (it is conservative by construction).
func TestQuantileIntervalCoverage(t *testing.T) {
	rng := dist.NewRand(44)
	exp, _ := dist.NewExponential(1)
	trueMedian := exp.Quantile(0.5)
	const trials = 3000
	misses := 0
	for i := 0; i < trials; i++ {
		obs := dist.SampleN(exp, 25, rng)
		iv, err := MedianInterval(obs, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(trueMedian) {
			misses++
		}
	}
	rate := float64(misses) / trials
	if rate > 0.1 {
		t.Errorf("median interval miss rate %g exceeds nominal 0.10", rate)
	}
}

// TestQuantileIntervalTail: a 95th-percentile interval on skewed data still
// covers, clamped to the sample when the upper tail lacks coverage.
func TestQuantileIntervalTail(t *testing.T) {
	rng := dist.NewRand(45)
	ln, _ := dist.NewLognormal(0, 1)
	trueQ := ln.Quantile(0.95)
	const trials = 1500
	misses := 0
	for i := 0; i < trials; i++ {
		obs := dist.SampleN(ln, 100, rng)
		iv, err := QuantileInterval(obs, 0.95, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(trueQ) {
			misses++
		}
	}
	rate := float64(misses) / trials
	// The upper tail of the interval is clamped at the sample maximum, so
	// allow a modest exceedance of the nominal rate.
	if rate > 0.15 {
		t.Errorf("tail quantile miss rate %g too high", rate)
	}
}

// TestQuantileIntervalShrinksWithN mirrors the 1/√n law for quantiles.
func TestQuantileIntervalShrinksWithN(t *testing.T) {
	rng := dist.NewRand(46)
	nd, _ := dist.NewNormal(0, 1)
	avgLen := func(n int) float64 {
		total := 0.0
		const reps = 200
		for i := 0; i < reps; i++ {
			obs := dist.SampleN(nd, n, rng)
			iv, err := MedianInterval(obs, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			total += iv.Length()
		}
		return total / reps
	}
	l25, l400 := avgLen(25), avgLen(400)
	if l400 >= l25 {
		t.Errorf("interval did not shrink: n=25 → %g, n=400 → %g", l25, l400)
	}
	ratio := l25 / l400
	if ratio < 2.5 || ratio > 6.5 { // √16 = 4 expected
		t.Errorf("shrink ratio %g implausible for 1/√n", ratio)
	}
}

func TestQuantileIntervalEndpointsAreOrderStats(t *testing.T) {
	obs := []float64{9, 3, 7, 1, 5}
	iv, err := QuantileInterval(obs, 0.5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), obs...)
	sort.Float64s(sorted)
	found := func(v float64) bool {
		for _, x := range sorted {
			if x == v {
				return true
			}
		}
		return false
	}
	if !found(iv.Lo) || !found(iv.Hi) {
		t.Errorf("interval %v endpoints are not order statistics of %v", iv, sorted)
	}
}
