package accuracy

import (
	"errors"
	"math"
	"testing"
)

// Edge-case pinning for the distribution-free quantile machinery: degenerate
// sample sizes, degenerate data, extreme quantiles, and the exact-vs-normal
// rank paths that back the sketch windows.

func TestQuantileIntervalDegenerateN(t *testing.T) {
	for _, obs := range [][]float64{nil, {}, {42}} {
		_, err := QuantileInterval(obs, 0.5, 0.9)
		if err == nil {
			t.Fatalf("n=%d: want error", len(obs))
		}
		if !errors.Is(err, ErrSampleSize) {
			t.Errorf("n=%d: error %v is not ErrSampleSize", len(obs), err)
		}
	}
	for _, n := range []int{-1, 0, 1} {
		if _, _, _, err := QuantileRanks(n, 0.5, 0.9); !errors.Is(err, ErrSampleSize) {
			t.Errorf("QuantileRanks(n=%d): error %v is not ErrSampleSize", n, err)
		}
	}
}

// TestQuantileIntervalAllEqual: constant data collapses every quantile
// interval to the single observed point — width zero, still a valid interval
// that trivially covers.
func TestQuantileIntervalAllEqual(t *testing.T) {
	for _, n := range []int{2, 5, 100} {
		obs := make([]float64, n)
		for i := range obs {
			obs[i] = 7.25
		}
		for _, p := range []float64{0.05, 0.5, 0.95} {
			iv, err := QuantileInterval(obs, p, 0.95)
			if err != nil {
				t.Fatalf("n=%d p=%g: %v", n, p, err)
			}
			if iv.Lo != 7.25 || iv.Hi != 7.25 {
				t.Errorf("n=%d p=%g: interval %v, want the degenerate point 7.25", n, p, iv)
			}
			if !iv.Contains(7.25) || iv.Length() != 0 {
				t.Errorf("n=%d p=%g: degenerate interval misbehaves: %v", n, p, iv)
			}
		}
	}
}

// TestQuantileExtremeP: p = 0 and p = 1 are not population quantiles an
// order-statistic interval can bound (the binomial degenerates), so both are
// rejected — callers wanting extremes use the exact sample min/max.
func TestQuantileExtremeP(t *testing.T) {
	obs := []float64{1, 2, 3, 4, 5}
	for _, p := range []float64{0, 1, -0.01, 1.01} {
		if _, err := QuantileInterval(obs, p, 0.9); err == nil {
			t.Errorf("p=%v: want error", p)
		}
		if _, _, _, err := QuantileRanks(5, p, 0.9); err == nil {
			t.Errorf("QuantileRanks p=%v: want error", p)
		}
	}
}

// TestQuantileRanksExactContract: on the exact path, the chosen ranks are the
// tightest with tail mass ≤ (1−c)/2 per side, the achieved confidence is
// P(l ≤ K < u) ≥ c whenever neither side is clamped, and l/u are ordered.
func TestQuantileRanksExactContract(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
		c float64
	}{
		{2, 0.5, 0.9}, {10, 0.5, 0.95}, {100, 0.5, 0.99},
		{100, 0.9, 0.95}, {4096, 0.05, 0.9}, {1000, 0.5, 0.95},
	} {
		l, u, achieved, err := QuantileRanks(tc.n, tc.p, tc.c)
		if err != nil {
			t.Fatalf("QuantileRanks(%d, %g, %g): %v", tc.n, tc.p, tc.c, err)
		}
		if l < 0 || u > tc.n+1 || l >= u {
			t.Fatalf("QuantileRanks(%d, %g, %g) = (%d, %d): malformed ranks", tc.n, tc.p, tc.c, l, u)
		}
		alpha := (1 - tc.c) / 2
		cdf := func(k int) float64 {
			v, err := binomialCDF(k, tc.n, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		if l >= 1 && cdf(l-1) > alpha {
			t.Errorf("n=%d p=%g c=%g: P(K < l=%d) = %g exceeds α=%g", tc.n, tc.p, tc.c, l, cdf(l-1), alpha)
		}
		if l+1 <= tc.n && cdf(l) <= alpha {
			t.Errorf("n=%d p=%g c=%g: l=%d is not maximal", tc.n, tc.p, tc.c, l)
		}
		if u <= tc.n && 1-cdf(u-1) > alpha {
			t.Errorf("n=%d p=%g c=%g: P(K ≥ u=%d) = %g exceeds α=%g", tc.n, tc.p, tc.c, u, 1-cdf(u-1), alpha)
		}
		if u-1 >= 1 && 1-cdf(u-2) <= alpha {
			t.Errorf("n=%d p=%g c=%g: u=%d is not minimal", tc.n, tc.p, tc.c, u)
		}
		if l >= 1 && u <= tc.n {
			if achieved < tc.c {
				t.Errorf("n=%d p=%g c=%g: achieved %g below requested", tc.n, tc.p, tc.c, achieved)
			}
			if want := cdf(u-1) - cdf(l-1); math.Abs(achieved-want) > 1e-9 {
				t.Errorf("n=%d p=%g c=%g: achieved %g, want P(l ≤ K < u) = %g", tc.n, tc.p, tc.c, achieved, want)
			}
		}
	}
}

// TestQuantileRanksApproxCoverage: above the exact-path cutoff the normal
// approximation takes over; its ranks, checked against the exact binomial
// CDF, must still deliver at least the requested coverage — the continuity
// correction plus one-rank margin keep it conservative.
func TestQuantileRanksApproxCoverage(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{
		{4097, 0.5}, {10000, 0.5}, {10000, 0.05}, {100000, 0.9}, {1000000, 0.5},
	} {
		for _, c := range []float64{0.90, 0.95, 0.99} {
			l, u, achieved, err := QuantileRanks(tc.n, tc.p, c)
			if err != nil {
				t.Fatalf("QuantileRanks(%d, %g, %g): %v", tc.n, tc.p, c, err)
			}
			if achieved != c {
				t.Errorf("approx path must report the nominal level, got %g", achieved)
			}
			cov := 1.0
			if l >= 1 {
				v, err := binomialCDF(l-1, tc.n, tc.p)
				if err != nil {
					t.Fatal(err)
				}
				cov -= v
			}
			if u <= tc.n {
				v, err := binomialCDF(u-1, tc.n, tc.p)
				if err != nil {
					t.Fatal(err)
				}
				cov -= 1 - v
			}
			if cov < c {
				t.Errorf("n=%d p=%g c=%g: approx ranks (%d, %d) cover only %g", tc.n, tc.p, c, l, u, cov)
			}
			// Conservative, but not absurdly so: the rank width must stay
			// within a few σ of the exact construction's.
			sd := math.Sqrt(float64(tc.n) * tc.p * (1 - tc.p))
			if width := float64(u - l); width > 2*3.5*sd+4 {
				t.Errorf("n=%d p=%g c=%g: rank width %g too loose (σ=%g)", tc.n, tc.p, c, width, sd)
			}
		}
	}
}

// TestQuantileRanksPathsAgree: just below and above the cutoff the two paths
// must pick nearly identical ranks (the approximation drifts by at most a
// couple of ranks, on top of its deliberate one-rank margins).
func TestQuantileRanksPathsAgree(t *testing.T) {
	const below, above = quantileRanksExactMax, quantileRanksExactMax + 1
	for _, p := range []float64{0.25, 0.5, 0.9} {
		le, ue, _, err := QuantileRanks(below, p, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		la, ua, _, err := QuantileRanks(above, p, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(float64(la - le)); d > 4 {
			t.Errorf("p=%g: lower rank jumps %g across the path cutoff (%d vs %d)", p, d, le, la)
		}
		if d := math.Abs(float64(ua - ue)); d > 4 {
			t.Errorf("p=%g: upper rank jumps %g across the path cutoff (%d vs %d)", p, d, ue, ua)
		}
	}
}
