package accuracy

import "testing"

// Boundary behavior of the Lemma 1 Wald↔Wilson switch rule: the normal
// approximation is used exactly when n·p ≥ 4 AND n·(1−p) ≥ 4, with both
// equalities included. These tests pin the rule at the exact thresholds
// and just inside them, and check the clamped-extremes cases.

func intervalsEqual(a, b Interval) bool {
	return a.Lo == b.Lo && a.Hi == b.Hi && a.Level == b.Level
}

func TestBinHeightSwitchBoundary(t *testing.T) {
	const c = 0.95
	cases := []struct {
		name string
		p    float64
		n    int
		wald bool // expected branch
	}{
		{"np exactly 4", 0.1, 40, true},           // n·p = 4, n·(1−p) = 36
		{"np just below 4", 0.099, 40, false},     // n·p = 3.96
		{"n(1-p) exactly 4", 0.9, 40, true},       // n·(1−p) = 4
		{"n(1-p) just below 4", 0.901, 40, false}, // n·(1−p) = 3.96
		{"both exactly 4", 0.5, 8, true},          // n·p = n·(1−p) = 4
		{"both just below", 0.5, 7, false},        // n·p = 3.5
		{"tiny n", 0.5, 1, false},
		{"extreme p=0", 0, 50, false},             // n·p = 0
		{"extreme p=1", 1, 50, false},             // n·(1−p) = 0
		{"large n extreme p", 0.001, 1000, false}, // n·p = 1
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := BinHeightInterval(tc.p, tc.n, c)
			if err != nil {
				t.Fatalf("BinHeightInterval(%v, %d, %v): %v", tc.p, tc.n, c, err)
			}
			wald, err := WaldInterval(tc.p, tc.n, c)
			if err != nil {
				t.Fatal(err)
			}
			wilson, err := WilsonInterval(tc.p, tc.n, c)
			if err != nil {
				t.Fatal(err)
			}
			want, branch := wilson, "Wilson"
			if tc.wald {
				want, branch = wald, "Wald"
			}
			if !intervalsEqual(got, want) {
				t.Errorf("BinHeightInterval(%v, %d) = [%v,%v], want the %s interval [%v,%v]",
					tc.p, tc.n, got.Lo, got.Hi, branch, want.Lo, want.Hi)
			}
			// Regardless of branch: clamped to [0,1] and containing p.
			if got.Lo < 0 || got.Hi > 1 {
				t.Errorf("interval [%v,%v] escapes [0,1]", got.Lo, got.Hi)
			}
			if tc.p < got.Lo || tc.p > got.Hi {
				t.Errorf("interval [%v,%v] does not contain p=%v", got.Lo, got.Hi, tc.p)
			}
			if got.Level != c {
				t.Errorf("Level = %v, want %v", got.Level, c)
			}
		})
	}
}

// TestBinHeightBoundaryContinuity: at the switch threshold the two
// intervals disagree (they are different formulas), but both must be
// usable — in particular the Wald interval at n·p = 4 keeps a strictly
// positive width and stays inside [0,1] after clamping.
func TestBinHeightBoundaryContinuity(t *testing.T) {
	iv, err := BinHeightInterval(0.1, 40, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Hi <= iv.Lo {
		t.Errorf("degenerate interval [%v,%v] at the Wald boundary", iv.Lo, iv.Hi)
	}
	// Wilson never degenerates at the extremes either: p=1 must yield a
	// non-empty interval with Hi = 1.
	one, err := BinHeightInterval(1, 3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if one.Hi != 1 || one.Lo >= 1 {
		t.Errorf("Wilson at p=1, n=3: [%v,%v], want Hi = 1 > Lo", one.Lo, one.Hi)
	}
	zero, err := BinHeightInterval(0, 3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Lo != 0 || zero.Hi <= 0 {
		t.Errorf("Wilson at p=0, n=3: [%v,%v], want Lo = 0 < Hi", zero.Lo, zero.Hi)
	}
}
