package accuracy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stat"
)

// QuantileInterval returns a distribution-free confidence interval for the
// population p-quantile from raw observations, using order statistics: the
// interval [x₍l₎, x₍u₎] where l and u are chosen so that the binomial
// probability P(l ≤ K < u) ≥ c for K ~ Binomial(n, p) — the classic
// nonparametric quantile interval.
//
// This extends the paper's accuracy information (bin heights, mean,
// variance) with medians and tail quantiles, which matter for
// latency-style attributes; like Lemma 1 it makes no distributional
// assumption. The achieved confidence is at least c (it can exceed c
// because order statistics are discrete) and is returned in the interval's
// Level.
func QuantileInterval(obs []float64, p, c float64) (Interval, error) {
	n := len(obs)
	if n < 2 {
		return Interval{}, fmt.Errorf("%w: quantile interval needs n ≥ 2, have %d", ErrSampleSize, n)
	}
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return Interval{}, fmt.Errorf("accuracy: quantile p=%v outside (0,1)", p)
	}
	if err := stat.CheckLevel(c); err != nil {
		return Interval{}, fmt.Errorf("accuracy: confidence level %v: %w", c, err)
	}
	sorted := append([]float64(nil), obs...)
	sort.Float64s(sorted)
	// Choose l as the largest index with P(K < l) ≤ (1−c)/2 and u as the
	// smallest index with P(K ≥ u) ≤ (1−c)/2, K ~ Binomial(n, p) counting
	// observations below the true quantile.
	alpha := (1 - c) / 2
	l := 0
	for k := 1; k <= n; k++ {
		cdf, err := binomialCDF(k-1, n, p)
		if err != nil {
			return Interval{}, err
		}
		if cdf <= alpha {
			l = k
		} else {
			break
		}
	}
	u := n + 1
	for k := n; k >= 1; k-- {
		cdf, err := binomialCDF(k-1, n, p)
		if err != nil {
			return Interval{}, err
		}
		if 1-cdf <= alpha {
			u = k
		} else {
			break
		}
	}
	// Convert order-statistic ranks (1-based) to slice indices, clamping
	// to the sample range when the requested coverage cannot be met in a
	// tail (small n, extreme p).
	loIdx := l - 1
	if loIdx < 0 {
		loIdx = 0
	}
	if loIdx > n-1 {
		loIdx = n - 1
	}
	hiIdx := u - 1
	if hiIdx > n-1 {
		hiIdx = n - 1
	}
	if hiIdx < loIdx {
		hiIdx = loIdx
	}
	// Achieved confidence: P(l ≤ K < u).
	lowCDF := 0.0
	if l >= 1 {
		v, err := binomialCDF(l-1, n, p)
		if err != nil {
			return Interval{}, err
		}
		lowCDF = v
	}
	highCDF := 1.0
	if u <= n {
		v, err := binomialCDF(u-1, n, p)
		if err != nil {
			return Interval{}, err
		}
		highCDF = v
	}
	achieved := highCDF - lowCDF
	if achieved > 1 {
		achieved = 1
	}
	return Interval{Lo: sorted[loIdx], Hi: sorted[hiIdx], Level: achieved}, nil
}

// MedianInterval is QuantileInterval at p = 0.5.
func MedianInterval(obs []float64, c float64) (Interval, error) {
	return QuantileInterval(obs, 0.5, c)
}

// binomialCDF returns P(K ≤ k) for K ~ Binomial(n, p), via the regularized
// incomplete beta function: P(K ≤ k) = I_{1−p}(n−k, k+1).
func binomialCDF(k, n int, p float64) (float64, error) {
	if k < 0 {
		return 0, nil
	}
	if k >= n {
		return 1, nil
	}
	return stat.BetaInc(float64(n-k), float64(k+1), 1-p)
}
