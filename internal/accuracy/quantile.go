package accuracy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stat"
)

// QuantileInterval returns a distribution-free confidence interval for the
// population p-quantile from raw observations, using order statistics: the
// interval [x₍l₎, x₍u₎] where l and u are chosen so that the binomial
// probability P(l ≤ K < u) ≥ c for K ~ Binomial(n, p) — the classic
// nonparametric quantile interval.
//
// This extends the paper's accuracy information (bin heights, mean,
// variance) with medians and tail quantiles, which matter for
// latency-style attributes; like Lemma 1 it makes no distributional
// assumption. The achieved confidence is at least c (it can exceed c
// because order statistics are discrete) and is returned in the interval's
// Level.
func QuantileInterval(obs []float64, p, c float64) (Interval, error) {
	n := len(obs)
	if n < 2 {
		return Interval{}, fmt.Errorf("%w: quantile interval needs n ≥ 2, have %d", ErrSampleSize, n)
	}
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return Interval{}, fmt.Errorf("accuracy: quantile p=%v outside (0,1)", p)
	}
	if err := stat.CheckLevel(c); err != nil {
		return Interval{}, fmt.Errorf("accuracy: confidence level %v: %w", c, err)
	}
	sorted := append([]float64(nil), obs...)
	sort.Float64s(sorted)
	l, u, achieved, err := QuantileRanks(n, p, c)
	if err != nil {
		return Interval{}, err
	}
	// Convert order-statistic ranks (1-based) to slice indices, clamping
	// to the sample range when the requested coverage cannot be met in a
	// tail (small n, extreme p).
	loIdx := l - 1
	if loIdx < 0 {
		loIdx = 0
	}
	if loIdx > n-1 {
		loIdx = n - 1
	}
	hiIdx := u - 1
	if hiIdx > n-1 {
		hiIdx = n - 1
	}
	if hiIdx < loIdx {
		hiIdx = loIdx
	}
	return Interval{Lo: sorted[loIdx], Hi: sorted[hiIdx], Level: achieved}, nil
}

// quantileRanksExactMax bounds the n for which QuantileRanks evaluates the
// exact binomial CDF; above it the normal approximation (with continuity
// correction and a one-rank conservative margin per side) is used — at
// n > 4096 the binomial σ is large enough that the approximation's rank
// error is far below one, and the exact incomplete-beta evaluation becomes
// the cost center for million-row sketch windows.
const quantileRanksExactMax = 4096

// QuantileRanks chooses the order-statistic ranks (l, u) of the classic
// distribution-free quantile interval: the largest l with P(K < l) ≤ (1−c)/2
// and the smallest u with P(K ≥ u) ≤ (1−c)/2, K ~ Binomial(n, p) counting
// observations below the true p-quantile, so that [x₍l₎, x₍u₎] covers the
// quantile with probability ≥ c. l = 0 or u = n+1 mark a tail where the
// requested coverage cannot be met. The achieved confidence P(l ≤ K < u) is
// returned alongside; it is the value QuantileInterval reports as the
// interval's Level. Exposed so sketch-backed quantile intervals can reuse
// exactly this rank rule and then widen the ranks by their sketch's rank
// error bound.
func QuantileRanks(n int, p, c float64) (l, u int, achieved float64, err error) {
	if n < 2 {
		return 0, 0, 0, fmt.Errorf("%w: quantile ranks need n ≥ 2, have %d", ErrSampleSize, n)
	}
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, 0, 0, fmt.Errorf("accuracy: quantile p=%v outside (0,1)", p)
	}
	if err := stat.CheckLevel(c); err != nil {
		return 0, 0, 0, fmt.Errorf("accuracy: confidence level %v: %w", c, err)
	}
	alpha := (1 - c) / 2
	if n > quantileRanksExactMax {
		// Normal approximation: P(K ≤ m) ≈ Φ((m + ½ − np)/σ).
		z := stat.ZUpper(alpha)
		mean := float64(n) * p
		sd := math.Sqrt(float64(n) * p * (1 - p))
		l = int(math.Floor(mean-0.5-z*sd)) + 1 - 1 // one-rank margin
		u = int(math.Ceil(mean-0.5+z*sd)) + 1 + 1  // one-rank margin
		if l < 0 {
			l = 0
		}
		if u > n+1 {
			u = n + 1
		}
		return l, u, c, nil
	}
	// Exact path: binomialCDF(k−1, n, p) is strictly increasing in k, so
	// both boundary ranks are found by binary search — identical results to
	// a linear scan, O(log n) CDF evaluations.
	cdfAt := func(k int) (float64, error) { return binomialCDF(k-1, n, p) }
	// l = max{k ∈ [1, n] : cdf(k−1) ≤ alpha}, or 0 when none qualifies.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi + 1) / 2
		v, cerr := cdfAt(mid)
		if cerr != nil {
			return 0, 0, 0, cerr
		}
		if v <= alpha {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	l = lo
	// u = min{k ∈ [1, n] : 1 − cdf(k−1) ≤ alpha}, or n+1 when none.
	lo, hi = 1, n+1
	for lo < hi {
		mid := (lo + hi) / 2
		v, cerr := cdfAt(mid)
		if cerr != nil {
			return 0, 0, 0, cerr
		}
		if 1-v <= alpha {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	u = lo
	// Achieved confidence: P(l ≤ K < u).
	lowCDF := 0.0
	if l >= 1 {
		v, cerr := cdfAt(l)
		if cerr != nil {
			return 0, 0, 0, cerr
		}
		lowCDF = v
	}
	highCDF := 1.0
	if u <= n {
		v, cerr := cdfAt(u)
		if cerr != nil {
			return 0, 0, 0, cerr
		}
		highCDF = v
	}
	achieved = highCDF - lowCDF
	if achieved > 1 {
		achieved = 1
	}
	return l, u, achieved, nil
}

// MedianInterval is QuantileInterval at p = 0.5.
func MedianInterval(obs []float64, c float64) (Interval, error) {
	return QuantileInterval(obs, 0.5, c)
}

// binomialCDF returns P(K ≤ k) for K ~ Binomial(n, p), via the regularized
// incomplete beta function: P(K ≤ k) = I_{1−p}(n−k, k+1).
func binomialCDF(k, n int, p float64) (float64, error) {
	if k < 0 {
		return 0, nil
	}
	if k >= n {
		return 1, nil
	}
	return stat.BetaInc(float64(n-k), float64(k+1), 1-p)
}
