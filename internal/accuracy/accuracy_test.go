package accuracy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/learn"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

// TestExample2 reproduces paper Example 2 exactly: n = 20, four buckets with
// counts 3, 4, 8, 5, 90% confidence.
func TestExample2(t *testing.T) {
	h, err := dist.HistogramFromCounts([]float64{0, 25, 50, 75, 100}, []int{3, 4, 8, 5})
	if err != nil {
		t.Fatal(err)
	}
	bins, err := HistogramAccuracy(h, 0, 0.9) // n from retained counts
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ lo, hi float64 }{
		{0.062, 0.322}, // n·p = 3 < 4 → Wilson score (paper eq. 2)
		{0.05, 0.35},   // n·p = 4 → Wald (paper eq. 1)
		{0.22, 0.58},
		{0.09, 0.41},
	}
	for i, w := range want {
		approx(t, "bin lo", bins[i].Interval.Lo, w.lo, 0.005)
		approx(t, "bin hi", bins[i].Interval.Hi, w.hi, 0.005)
	}
}

// TestExample3 reproduces paper Example 3: 10 observations of traffic delay,
// 90% intervals for mean and variance.
func TestExample3(t *testing.T) {
	s := learn.NewSample([]float64{71, 56, 82, 74, 69, 77, 65, 78, 59, 80})
	ybar, _ := s.Mean()
	sd, _ := s.StdDev()
	info, err := ForSample(ybar, sd, s.Size(), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "μ1", info.Mean.Lo, 65.97, 0.01)
	approx(t, "μ2", info.Mean.Hi, 76.23, 0.01)
	approx(t, "σ1²", info.Variance.Lo, 41.66, 0.05)
	approx(t, "σ2²", info.Variance.Hi, 211.99, 0.3)
}

// TestExample5 reproduces paper Example 5: tuple probability 0.6 from a d.f.
// sample of size 20 gives a 90% interval [0.42, 0.78].
func TestExample5(t *testing.T) {
	iv, err := TupleProbInterval(0.6, 20, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "tuple prob lo", iv.Lo, 0.42, 0.005)
	approx(t, "tuple prob hi", iv.Hi, 0.78, 0.005)
}

func TestBinHeightIntervalValidation(t *testing.T) {
	if _, err := BinHeightInterval(0.5, 0, 0.9); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := BinHeightInterval(-0.1, 10, 0.9); err == nil {
		t.Error("p<0: want error")
	}
	if _, err := BinHeightInterval(1.1, 10, 0.9); err == nil {
		t.Error("p>1: want error")
	}
	if _, err := BinHeightInterval(0.5, 10, 0); err == nil {
		t.Error("c=0: want error")
	}
	if _, err := BinHeightInterval(0.5, 10, 1); err == nil {
		t.Error("c=1: want error")
	}
}

func TestBinHeightIntervalClamped(t *testing.T) {
	// Extreme p with small n: Wilson keeps the interval inside [0, 1].
	for _, p := range []float64{0, 0.01, 0.99, 1} {
		iv, err := BinHeightInterval(p, 5, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Lo < 0 || iv.Hi > 1 {
			t.Errorf("interval %v for p=%v leaves [0,1]", iv, p)
		}
		if !iv.Contains(p) {
			t.Errorf("interval %v does not contain the estimate %v", iv, p)
		}
	}
}

func TestWaldWilsonSwitch(t *testing.T) {
	// Exactly at the threshold n·p = 4 the Wald interval applies and is
	// symmetric about p; just below, Wilson applies and is asymmetric.
	wald, err := BinHeightInterval(0.2, 20, 0.9) // n·p = 4
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Wald symmetric", wald.Hi-0.2, 0.2-wald.Lo, 1e-12)
	wilson, err := BinHeightInterval(0.15, 20, 0.9) // n·p = 3
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((wilson.Hi-0.15)-(0.15-wilson.Lo)) < 1e-6 {
		t.Error("Wilson interval unexpectedly symmetric about p")
	}
	// Wilson must also kick in when n(1−p) < 4.
	highP, err := BinHeightInterval(0.9, 20, 0.9) // n(1−p) = 2
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((highP.Hi-0.9)-(0.9-highP.Lo)) < 1e-6 {
		t.Error("expected Wilson (asymmetric) for n(1−p) < 4")
	}
}

func TestIntervalLengthShrinksWithN(t *testing.T) {
	// Lemma 1 remark: length is roughly ∝ 1/√n.
	prev := math.Inf(1)
	for _, n := range []int{10, 20, 40, 80, 160} {
		iv, err := BinHeightInterval(0.4, n, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Length() >= prev {
			t.Errorf("interval length did not shrink at n=%d", n)
		}
		prev = iv.Length()
	}
	// Quantitative: doubling n four times scales length by ~1/4.
	iv10, _ := BinHeightInterval(0.4, 100, 0.9)
	iv1600, _ := BinHeightInterval(0.4, 1600, 0.9)
	approx(t, "1/√n scaling", iv10.Length()/iv1600.Length(), 4, 0.05)
}

func TestMeanIntervalTvsZ(t *testing.T) {
	// At the n = 30 boundary Lemma 2 switches from t to z; the t interval
	// at n = 29 must be wider than the z interval would be.
	ivT, err := MeanInterval(0, 1, 29, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ivZ, err := MeanInterval(0, 1, 30, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize out the 1/√n factor to compare multipliers.
	tMult := ivT.Length() * math.Sqrt(29) / 2
	zMult := ivZ.Length() * math.Sqrt(30) / 2
	if tMult <= zMult {
		t.Errorf("t multiplier %g not wider than z multiplier %g", tMult, zMult)
	}
	approx(t, "z multiplier", zMult, 1.6448536269514722, 1e-9)
}

func TestMeanIntervalValidation(t *testing.T) {
	if _, err := MeanInterval(0, 1, 1, 0.9); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := MeanInterval(0, -1, 10, 0.9); err == nil {
		t.Error("negative s: want error")
	}
	if _, err := MeanInterval(0, 1, 10, 1.5); err == nil {
		t.Error("c>1: want error")
	}
}

func TestVarianceIntervalValidation(t *testing.T) {
	if _, err := VarianceInterval(1, 1, 0.9); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := VarianceInterval(-1, 10, 0.9); err == nil {
		t.Error("negative s²: want error")
	}
}

func TestVarianceIntervalAsymmetry(t *testing.T) {
	// The chi-square interval is asymmetric: the upper bound is farther
	// from s² than the lower bound for small n.
	iv, err := VarianceInterval(10, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !(iv.Lo < 10 && 10 < iv.Hi) {
		t.Fatalf("interval %v does not bracket s²", iv)
	}
	if iv.Hi-10 <= 10-iv.Lo {
		t.Error("chi-square interval should be right-skewed for small n")
	}
}

func TestDFSampleSize(t *testing.T) {
	// Example 4: A, B, C sample sizes 15, 10, 20 → (A+B)/2 has d.f. size 10.
	n, err := DFSampleSize(15, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("d.f. size = %d, want 10", n)
	}
	// The tuple-existence variable depends on C only → 20.
	n, err = DFSampleSize(20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("d.f. size = %d, want 20", n)
	}
	if _, err := DFSampleSize(); err == nil {
		t.Error("no inputs: want error")
	}
	if _, err := DFSampleSize(5, 0); err == nil {
		t.Error("zero input size: want error")
	}
}

func TestLogDFSampleCount(t *testing.T) {
	// Lemma 4 with d=2, n₁=2, n₂=3: c = 3!/1! = 6.
	logC, err := LogDFSampleCount(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "log d.f. count", logC, math.Log(6), 1e-9)
	// Single input: c = 1 (empty product).
	logC, err = LogDFSampleCount(7)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "single input count", logC, 0, 1e-12)
	// Equal sizes n: one plays X₁, the rest contribute n! each.
	logC, err = LogDFSampleCount(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "equal sizes", logC, math.Log(6), 1e-9)
}

func TestForDistributionHistogram(t *testing.T) {
	h, err := dist.HistogramFromCounts([]float64{0, 25, 50, 75, 100}, []int{3, 4, 8, 5})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ForDistribution(h, 20, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Bins) != 4 {
		t.Fatalf("Bins = %d, want 4", len(info.Bins))
	}
	if info.Method != "analytical" || info.N != 20 || info.Level != 0.9 {
		t.Errorf("info metadata wrong: %+v", info)
	}
	if !info.Mean.Contains(h.Mean()) {
		t.Error("mean interval must contain the point estimate")
	}
	if !info.Variance.Contains(h.Variance()) {
		t.Error("variance interval must contain the point estimate")
	}
}

func TestForDistributionNonHistogram(t *testing.T) {
	n, _ := dist.NewNormal(5, 4)
	info, err := ForDistribution(n, 25, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if info.Bins != nil {
		t.Error("non-histogram should have no bin intervals")
	}
	if !info.Mean.Contains(5) || !info.Variance.Contains(4) {
		t.Error("intervals must contain the distribution's parameters")
	}
	if _, err := ForDistribution(nil, 10, 0.9); err == nil {
		t.Error("nil distribution: want error")
	}
	if _, err := ForDistribution(n, 1, 0.9); err == nil {
		t.Error("n=1: want error")
	}
}

// TestMeanIntervalCoverage verifies empirically that the Lemma 2 interval
// covers the true mean at roughly its nominal rate for normal data.
func TestMeanIntervalCoverage(t *testing.T) {
	r := dist.NewRand(123)
	nd, _ := dist.NewNormal(10, 9)
	const trials = 4000
	misses := 0
	for i := 0; i < trials; i++ {
		s := learn.NewSample(dist.SampleN(nd, 20, r))
		ybar, _ := s.Mean()
		sd, _ := s.StdDev()
		iv, err := MeanInterval(ybar, sd, 20, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(10) {
			misses++
		}
	}
	rate := float64(misses) / trials
	// Nominal 10% miss rate; allow Monte Carlo slack.
	if rate < 0.07 || rate > 0.13 {
		t.Errorf("mean interval miss rate %g, want ≈0.10", rate)
	}
}

// TestVarianceIntervalCoverage does the same for the chi-square interval.
func TestVarianceIntervalCoverage(t *testing.T) {
	r := dist.NewRand(321)
	nd, _ := dist.NewNormal(0, 4)
	const trials = 4000
	misses := 0
	for i := 0; i < trials; i++ {
		s := learn.NewSample(dist.SampleN(nd, 20, r))
		v, _ := s.Variance()
		iv, err := VarianceInterval(v, 20, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(4) {
			misses++
		}
	}
	rate := float64(misses) / trials
	if rate < 0.07 || rate > 0.13 {
		t.Errorf("variance interval miss rate %g, want ≈0.10", rate)
	}
}

// TestBinHeightCoverage checks Lemma 1 coverage on a Bernoulli bucket.
func TestBinHeightCoverage(t *testing.T) {
	r := dist.NewRand(77)
	const trueP = 0.3
	const n = 40
	const trials = 4000
	misses := 0
	for i := 0; i < trials; i++ {
		k := 0
		for j := 0; j < n; j++ {
			if r.Float64() < trueP {
				k++
			}
		}
		iv, err := BinHeightInterval(float64(k)/n, n, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(trueP) {
			misses++
		}
	}
	rate := float64(misses) / trials
	// The Wald interval is slightly anti-conservative; allow up to 14%.
	if rate > 0.14 {
		t.Errorf("bin-height miss rate %g, want ≲0.10", rate)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 3, Level: 0.9}
	approx(t, "Length", iv.Length(), 2, 0)
	approx(t, "Mid", iv.Mid(), 2, 0)
	if !iv.Contains(1) || !iv.Contains(3) || iv.Contains(0.99) || iv.Contains(3.01) {
		t.Error("Contains boundary behaviour wrong")
	}
	c := Interval{Lo: -0.5, Hi: 1.5, Level: 0.9}.Clamp(0, 1)
	if c.Lo != 0 || c.Hi != 1 {
		t.Errorf("Clamp = %v", c)
	}
	// Disjoint clamps collapse to the nearer bound.
	c = Interval{Lo: -3, Hi: -2, Level: 0.9}.Clamp(0, 1)
	if c.Lo != 0 || c.Hi != 0 {
		t.Errorf("disjoint Clamp = %v", c)
	}
}

func TestProbGreaterInterval(t *testing.T) {
	h, err := dist.HistogramFromCounts([]float64{0, 25, 50, 75, 100}, []int{3, 4, 8, 5})
	if err != nil {
		t.Fatal(err)
	}
	bins, err := HistogramAccuracy(h, 0, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// P(X > 50): buckets 3 and 4 entirely above.
	iv, err := ProbGreaterInterval(h, bins, 50)
	if err != nil {
		t.Fatal(err)
	}
	wantLo := bins[2].Interval.Lo + bins[3].Interval.Lo
	wantHi := math.Min(1, bins[2].Interval.Hi+bins[3].Interval.Hi)
	approx(t, "P(X>50) lo", iv.Lo, wantLo, 1e-12)
	approx(t, "P(X>50) hi", iv.Hi, wantHi, 1e-12)
	// The point estimate lies inside.
	if !iv.Contains(1 - h.CDF(50)) {
		t.Error("interval misses the point estimate")
	}
	// Straddling threshold: P(X > 62.5) takes half of bucket 3.
	iv2, err := ProbGreaterInterval(h, bins, 62.5)
	if err != nil {
		t.Fatal(err)
	}
	if !(iv2.Lo < iv.Lo && iv2.Hi < iv.Hi) {
		t.Error("raising the threshold must shrink the probability interval")
	}
	// Mismatched bins slice is rejected.
	if _, err := ProbGreaterInterval(h, bins[:2], 50); err == nil {
		t.Error("mismatched bins: want error")
	}
}

func TestBinHeightIntervalProperty(t *testing.T) {
	// For any valid p, n, c: the interval contains p, sits inside [0,1],
	// and higher confidence never shrinks it.
	f := func(pu, cu float64, nSeed uint16) bool {
		p := math.Mod(math.Abs(pu), 1)
		n := int(nSeed%500) + 1
		c1 := math.Mod(math.Abs(cu), 0.5) + 0.4 // [0.4, 0.9)
		c2 := c1 + 0.05                         // strictly higher level
		iv1, err1 := BinHeightInterval(p, n, c1)
		iv2, err2 := BinHeightInterval(p, n, c2)
		if err1 != nil || err2 != nil {
			return false
		}
		return iv1.Contains(p) && iv1.Lo >= 0 && iv1.Hi <= 1 &&
			iv2.Length() >= iv1.Length()-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
