// Sketch-backend calibration: the same empirical-coverage discipline as
// calibration_test.go, applied to intervals derived from the bounded-memory
// summaries in internal/sketch rather than from raw windows. Lives in the
// external test package because sketch imports accuracy.
//
// Targets follow the construction: the moment-sketch mean and variance
// intervals are algebraically the Lemma 2 t/χ² intervals (Welford/Chan track
// the exact sample moments), so their empirical coverage must match nominal
// within the binomial 3σ tolerance. The quantile-sketch interval widens exact
// order-statistic ranks by the sketch's deterministic rank-error bound, so it
// is conservative: coverage must be at least nominal (minus 3σ sampling
// noise), and is additionally checked not to degrade when sketches are merged
// from shards. The probabilistic-moment predictive intervals are CLT
// constructions, nominal up to the normal approximation error.
package accuracy_test

import (
	"math"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dist"
	"repro/internal/sketch"
)

const sketchCalibTrials = 4000

var sketchCalibLevels = []float64{0.90, 0.95, 0.99}

func sketchTol3Sigma(cov float64, trials int) float64 {
	return 3 * math.Sqrt(cov*(1-cov)/float64(trials))
}

// momentsOf builds a moment sketch over n Gaussian draws, optionally split
// into shards whose sketches are merged (shards = 1 is the plain single-pass
// path). Merging is algebraically exact, so both shapes must calibrate
// identically.
func momentsOf(rng *dist.Rand, mu, sigma float64, n, shards int) sketch.Moments {
	var parts []sketch.Moments
	per := n / shards
	for s := 0; s < shards; s++ {
		var m sketch.Moments
		for i := 0; i < per; i++ {
			m.Add(mu + sigma*rng.NormFloat64())
		}
		parts = append(parts, m)
	}
	whole := parts[0]
	for _, p := range parts[1:] {
		whole.Merge(p)
	}
	return whole
}

func TestSketchMeanIntervalCalibration(t *testing.T) {
	const mu, sigma = 5.0, 2.0
	for _, shards := range []int{1, 4} {
		rng := dist.NewRand(uint64(601 + shards))
		for _, level := range sketchCalibLevels {
			hits := 0
			for trial := 0; trial < sketchCalibTrials; trial++ {
				m := momentsOf(rng, mu, sigma, 100, shards)
				iv, err := m.MeanInterval(level)
				if err != nil {
					t.Fatalf("shards=%d trial %d: %v", shards, trial, err)
				}
				if iv.Contains(mu) {
					hits++
				}
			}
			emp := float64(hits) / sketchCalibTrials
			if d := math.Abs(emp - level); d > sketchTol3Sigma(level, sketchCalibTrials) {
				t.Errorf("sketch mean CI shards=%d level %g: coverage %.4f (Δ=%.4f > 3σ=%.4f)",
					shards, level, emp, d, sketchTol3Sigma(level, sketchCalibTrials))
			}
		}
	}
}

func TestSketchVarianceIntervalCalibration(t *testing.T) {
	const mu, sigma = -1.0, 3.0
	for _, shards := range []int{1, 4} {
		rng := dist.NewRand(uint64(611 + shards))
		for _, level := range sketchCalibLevels {
			hits := 0
			for trial := 0; trial < sketchCalibTrials; trial++ {
				m := momentsOf(rng, mu, sigma, 24, shards)
				iv, err := m.VarianceInterval(level)
				if err != nil {
					t.Fatalf("shards=%d trial %d: %v", shards, trial, err)
				}
				if iv.Contains(sigma * sigma) {
					hits++
				}
			}
			emp := float64(hits) / sketchCalibTrials
			if d := math.Abs(emp - level); d > sketchTol3Sigma(level, sketchCalibTrials) {
				t.Errorf("sketch variance CI shards=%d level %g: coverage %.4f (Δ=%.4f > 3σ=%.4f)",
					shards, level, emp, d, sketchTol3Sigma(level, sketchCalibTrials))
			}
		}
	}
}

// TestSketchQuantileIntervalCalibration: the sketch median interval is
// conservative by construction (exact ranks widened by the tracked rank-error
// bound), so its empirical coverage must be ≥ nominal within 3σ sampling
// noise — at every level, both single-pass and merged across shards.
func TestSketchQuantileIntervalCalibration(t *testing.T) {
	exp, _ := dist.NewExponential(1)
	trueMedian := exp.Quantile(0.5)
	const n = 200
	for _, shards := range []int{1, 4} {
		rng := dist.NewRand(uint64(621 + shards))
		for _, level := range sketchCalibLevels {
			hits := 0
			for trial := 0; trial < sketchCalibTrials; trial++ {
				var parts []*sketch.Quantile
				for s := 0; s < shards; s++ {
					q := sketch.NewQuantile(32)
					for i := 0; i < n/shards; i++ {
						if err := q.Add(exp.Sample(rng)); err != nil {
							t.Fatal(err)
						}
					}
					parts = append(parts, q)
				}
				q := parts[0]
				for _, p := range parts[1:] {
					q.Merge(p)
				}
				iv, err := q.Interval(0.5, level)
				if err != nil {
					t.Fatalf("shards=%d trial %d: %v", shards, trial, err)
				}
				if iv.Level < level {
					t.Fatalf("achieved level %g below requested %g", iv.Level, level)
				}
				if iv.Contains(trueMedian) {
					hits++
				}
			}
			emp := float64(hits) / sketchCalibTrials
			if emp < level-sketchTol3Sigma(level, sketchCalibTrials) {
				t.Errorf("sketch median CI shards=%d level %g: coverage %.4f below nominal (tol %.4f)",
					shards, level, emp, sketchTol3Sigma(level, sketchCalibTrials))
			}
		}
	}
}

// TestSketchProbSumIntervalCalibration: the McGregor–Muthukrishnan predictive
// interval for the possible-world sum must cover the realized sum at its
// nominal rate (CLT over ~150 heterogeneous Bernoulli–Gaussian tuples; the
// approximation error at that width is well inside 3σ).
func TestSketchProbSumIntervalCalibration(t *testing.T) {
	rng := dist.NewRand(631)
	const n = 150
	for _, level := range sketchCalibLevels {
		hits := 0
		for trial := 0; trial < sketchCalibTrials; trial++ {
			var pm sketch.ProbMoments
			type tup struct{ x, sd, p float64 }
			tuples := make([]tup, n)
			for i := range tuples {
				tuples[i] = tup{
					x:  rng.Float64()*20 - 10,
					sd: rng.Float64() * 2,
					p:  0.1 + 0.8*rng.Float64(),
				}
				pm.Add(tuples[i].x, tuples[i].sd*tuples[i].sd, tuples[i].p)
			}
			iv, err := pm.SumInterval(level)
			if err != nil {
				t.Fatal(err)
			}
			realized := 0.0
			for _, tp := range tuples {
				if rng.Float64() < tp.p {
					realized += tp.x + tp.sd*rng.NormFloat64()
				}
			}
			if iv.Contains(realized) {
				hits++
			}
		}
		emp := float64(hits) / sketchCalibTrials
		if d := math.Abs(emp - level); d > sketchTol3Sigma(level, sketchCalibTrials)+0.005 {
			t.Errorf("prob sum CI level %g: coverage %.4f (Δ=%.4f beyond 3σ+CLT slack)", level, emp, d)
		}
	}
}

// TestSketchIntervalsMatchExactOnCertainData: cross-backend fidelity at the
// accuracy layer — on a stream of certain tuples the sketch mean/variance
// intervals equal accuracy.MeanInterval/VarianceInterval over the same data
// (same statistics in, same construction), and the sketch median interval
// contains the exact order-statistic interval computed from the raw sample.
func TestSketchIntervalsMatchExactOnCertainData(t *testing.T) {
	rng := dist.NewRand(641)
	const n = 500
	xs := make([]float64, n)
	var m sketch.Moments
	q := sketch.NewQuantile(sketch.DefaultQuantileK)
	for i := range xs {
		xs[i] = rng.NormFloat64()*4 + 20
		m.Add(xs[i])
		if err := q.Add(xs[i]); err != nil {
			t.Fatal(err)
		}
	}
	mean, m2 := 0.0, 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= n
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(m2 / (n - 1))
	for _, level := range sketchCalibLevels {
		exactMean, err := accuracy.MeanInterval(mean, sd, n, level)
		if err != nil {
			t.Fatal(err)
		}
		gotMean, err := m.MeanInterval(level)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotMean.Lo-exactMean.Lo) > 1e-9 || math.Abs(gotMean.Hi-exactMean.Hi) > 1e-9 {
			t.Errorf("level %g: sketch mean interval %v vs exact %v", level, gotMean, exactMean)
		}
		exactMed, err := accuracy.MedianInterval(xs, level)
		if err != nil {
			t.Fatal(err)
		}
		gotMed, err := q.Interval(0.5, level)
		if err != nil {
			t.Fatal(err)
		}
		if gotMed.Lo > exactMed.Lo || gotMed.Hi < exactMed.Hi {
			t.Errorf("level %g: sketch median interval %v narrower than exact %v", level, gotMed, exactMed)
		}
	}
}
