package learn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
)

// WeightedSample implements the paper's stated future work (§VII): "using
// samples of different weights to quantify the accuracy of probability
// distributions ... observations that are obtained more recently can have
// more weights in determining the accuracy information."
//
// Each observation carries a positive weight. Statistics are
// weight-normalized, and the accuracy of anything learned from the sample
// is governed by Kish's effective sample size
//
//	n_eff = (Σ wᵢ)² / Σ wᵢ²,
//
// which equals n for equal weights and shrinks toward 1 as the weights
// concentrate — plugging n_eff into Lemmas 1–2 generalizes the paper's
// accuracy machinery to weighted observations.
type WeightedSample struct {
	obs     []float64
	weights []float64
}

// ErrBadWeight reports a non-positive or non-finite weight.
var ErrBadWeight = errors.New("learn: weights must be positive and finite")

// NewWeightedSample builds a weighted sample; obs and weights must have
// equal length and every weight must be positive.
func NewWeightedSample(obs, weights []float64) (*WeightedSample, error) {
	if len(obs) != len(weights) {
		return nil, fmt.Errorf("learn: %d observations for %d weights", len(obs), len(weights))
	}
	for _, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: %v", ErrBadWeight, w)
		}
	}
	return &WeightedSample{
		obs:     append([]float64(nil), obs...),
		weights: append([]float64(nil), weights...),
	}, nil
}

// Add appends one weighted observation.
func (s *WeightedSample) Add(x, w float64) error {
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("%w: %v", ErrBadWeight, w)
	}
	s.obs = append(s.obs, x)
	s.weights = append(s.weights, w)
	return nil
}

// Size returns the raw number of observations.
func (s *WeightedSample) Size() int { return len(s.obs) }

// Observations returns a copy of the observations.
func (s *WeightedSample) Observations() []float64 {
	return append([]float64(nil), s.obs...)
}

// Weights returns a copy of the weights.
func (s *WeightedSample) Weights() []float64 {
	return append([]float64(nil), s.weights...)
}

// EffectiveSize returns Kish's effective sample size
// n_eff = (Σw)²/Σw² — the n to feed into the accuracy lemmas.
func (s *WeightedSample) EffectiveSize() float64 {
	if len(s.obs) == 0 {
		return 0
	}
	sum, sum2 := 0.0, 0.0
	for _, w := range s.weights {
		sum += w
		sum2 += w * w
	}
	return sum * sum / sum2
}

// EffectiveSizeInt returns the effective size rounded down for APIs that
// take integer sample sizes, floored at 1 when any observation exists.
func (s *WeightedSample) EffectiveSizeInt() int {
	n := int(s.EffectiveSize())
	if n < 1 && len(s.obs) > 0 {
		n = 1
	}
	return n
}

// Mean returns the weighted mean Σwx / Σw.
func (s *WeightedSample) Mean() (float64, error) {
	if len(s.obs) == 0 {
		return 0, ErrEmptySample
	}
	num, den := 0.0, 0.0
	for i, x := range s.obs {
		num += s.weights[i] * x
		den += s.weights[i]
	}
	return num / den, nil
}

// Variance returns the weighted variance with the standard
// frequency-weight bias correction based on the effective sample size:
// Σw(x−x̄)²/Σw · n_eff/(n_eff−1). It requires n_eff > 1.
func (s *WeightedSample) Variance() (float64, error) {
	neff := s.EffectiveSize()
	if neff <= 1 {
		return 0, fmt.Errorf("learn: weighted variance needs effective size > 1, have %.3g", neff)
	}
	mean, err := s.Mean()
	if err != nil {
		return 0, err
	}
	num, den := 0.0, 0.0
	for i, x := range s.obs {
		d := x - mean
		num += s.weights[i] * d * d
		den += s.weights[i]
	}
	return (num / den) * neff / (neff - 1), nil
}

// StdDev returns the weighted standard deviation.
func (s *WeightedSample) StdDev() (float64, error) {
	v, err := s.Variance()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Proportion returns the weighted fraction of observations satisfying
// pred — the weighted analog of Sample.Proportion for pTest.
func (s *WeightedSample) Proportion(pred func(float64) bool) (float64, error) {
	if len(s.obs) == 0 {
		return 0, ErrEmptySample
	}
	num, den := 0.0, 0.0
	for i, x := range s.obs {
		if pred(x) {
			num += s.weights[i]
		}
		den += s.weights[i]
	}
	return num / den, nil
}

// Unweighted returns the observations as a plain Sample, discarding
// weights (useful for comparison in ablations).
func (s *WeightedSample) Unweighted() *Sample { return NewSample(s.obs) }

// ExponentialDecay builds the paper's motivating weighting: observation i
// with age ageᵢ (any non-negative unit — seconds, window slots) gets
// weight exp(−λ·ageᵢ). halfLife sets λ = ln2/halfLife.
func ExponentialDecay(obs, ages []float64, halfLife float64) (*WeightedSample, error) {
	if len(obs) != len(ages) {
		return nil, fmt.Errorf("learn: %d observations for %d ages", len(obs), len(ages))
	}
	if halfLife <= 0 || math.IsNaN(halfLife) {
		return nil, fmt.Errorf("learn: half-life %v must be positive", halfLife)
	}
	lambda := math.Ln2 / halfLife
	weights := make([]float64, len(ages))
	for i, a := range ages {
		if a < 0 || math.IsNaN(a) {
			return nil, fmt.Errorf("learn: negative age %v", a)
		}
		weights[i] = math.Exp(-lambda * a)
	}
	return NewWeightedSample(obs, weights)
}

// WeightedGaussianLearner fits a normal distribution to a weighted sample.
// Learn-style helper returning both the distribution and the effective
// sample size for accuracy tracking.
func WeightedGaussianLearner(s *WeightedSample) (dist.Distribution, int, error) {
	if s == nil || s.Size() == 0 {
		return nil, 0, ErrEmptySample
	}
	mean, err := s.Mean()
	if err != nil {
		return nil, 0, err
	}
	neff := s.EffectiveSizeInt()
	v, err := s.Variance()
	if err != nil {
		// Effective size ≤ 1: degenerate point estimate.
		return dist.Point{V: mean}, neff, nil
	}
	if v == 0 {
		return dist.Point{V: mean}, neff, nil
	}
	nd, err := dist.NewNormal(mean, v)
	if err != nil {
		return nil, 0, err
	}
	return nd, neff, nil
}

// WeightedHistogramLearner bins a weighted sample over [lo, hi) with the
// given number of buckets, returning the histogram (weighted bucket
// probabilities) and the effective sample size. Observations outside the
// range are clamped into the boundary buckets, matching HistogramLearner.
func WeightedHistogramLearner(s *WeightedSample, bins int, lo, hi float64) (*dist.Histogram, int, error) {
	if s == nil || s.Size() == 0 {
		return nil, 0, ErrEmptySample
	}
	if bins < 1 {
		return nil, 0, fmt.Errorf("learn: histogram needs ≥ 1 bin, have %d", bins)
	}
	if !(lo < hi) {
		return nil, 0, fmt.Errorf("learn: histogram range [%v, %v] invalid", lo, hi)
	}
	edges := make([]float64, bins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(bins)
	}
	edges[bins] = hi
	probs := make([]float64, bins)
	w := (hi - lo) / float64(bins)
	total := 0.0
	for i, x := range s.obs {
		idx := int((x - lo) / w)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		probs[idx] += s.weights[i]
		total += s.weights[i]
	}
	for i := range probs {
		probs[i] /= total
	}
	h, err := dist.NewHistogram(edges, probs)
	if err != nil {
		return nil, 0, err
	}
	return h, s.EffectiveSizeInt(), nil
}
