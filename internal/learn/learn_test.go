package learn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

// example3 is the raw sample from paper Example 3.
func example3() *Sample {
	return NewSample([]float64{71, 56, 82, 74, 69, 77, 65, 78, 59, 80})
}

func TestSampleStatsExample3(t *testing.T) {
	s := example3()
	if s.Size() != 10 {
		t.Fatalf("Size = %d", s.Size())
	}
	mean, err := s.Mean()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "mean", mean, 71.1, 1e-12) // paper: ȳ = 71.1
	sd, err := s.StdDev()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "stddev", sd, 8.85, 0.005) // paper: s = 8.85
}

func TestEmptySampleErrors(t *testing.T) {
	s := NewSample(nil)
	if _, err := s.Mean(); err == nil {
		t.Error("Mean on empty: want error")
	}
	if _, err := s.Variance(); err == nil {
		t.Error("Variance on empty: want error")
	}
	if _, err := s.Min(); err == nil {
		t.Error("Min on empty: want error")
	}
	if _, err := s.Max(); err == nil {
		t.Error("Max on empty: want error")
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Error("Quantile on empty: want error")
	}
	if _, err := s.Resample(dist.NewRand(1)); err == nil {
		t.Error("Resample on empty: want error")
	}
	one := NewSample([]float64{5})
	if _, err := one.Variance(); err == nil {
		t.Error("Variance of singleton: want error")
	}
}

func TestAddAndObservations(t *testing.T) {
	s := NewSample([]float64{1, 2})
	s.Add(3)
	s.AddAll([]float64{4, 5})
	if s.Size() != 5 || s.At(4) != 5 {
		t.Fatalf("unexpected sample: %v", s.Observations())
	}
	obs := s.Observations()
	obs[0] = 99
	if s.At(0) == 99 {
		t.Error("Observations did not copy")
	}
}

func TestQuantile(t *testing.T) {
	s := NewSample([]float64{1, 2, 3, 4, 5})
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		got, err := s.Quantile(c.p)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "quantile", got, c.want, 1e-12)
	}
	if _, err := s.Quantile(1.5); err == nil {
		t.Error("p>1: want error")
	}
}

func TestProportion(t *testing.T) {
	// Example 8: 100 observations, 60 above 100.
	obs := make([]float64, 100)
	for i := range obs {
		if i < 60 {
			obs[i] = 120
		} else {
			obs[i] = 80
		}
	}
	s := NewSample(obs)
	p, err := s.Proportion(func(x float64) bool { return x > 100 })
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "proportion", p, 0.6, 1e-12)
}

func TestSubsampleWithoutReplacement(t *testing.T) {
	s := NewSample([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	r := dist.NewRand(4)
	sub, err := s.SubsampleWithoutReplacement(4, r)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 4 {
		t.Fatalf("size = %d", sub.Size())
	}
	seen := map[float64]int{}
	for _, x := range sub.Observations() {
		seen[x]++
		if x < 1 || x > 10 {
			t.Fatalf("value %v not from population", x)
		}
	}
	for v, c := range seen {
		if c > 1 {
			t.Errorf("value %v drawn %d times without replacement", v, c)
		}
	}
	if _, err := s.SubsampleWithoutReplacement(11, r); err == nil {
		t.Error("k > n: want error")
	}
}

func TestResample(t *testing.T) {
	s := example3()
	r := dist.NewRand(9)
	rs, err := s.Resample(r)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Size() != s.Size() {
		t.Fatalf("resample size %d, want %d", rs.Size(), s.Size())
	}
	pop := map[float64]bool{}
	for _, x := range s.Observations() {
		pop[x] = true
	}
	for _, x := range rs.Observations() {
		if !pop[x] {
			t.Fatalf("resample value %v not from population", x)
		}
	}
}

func TestHistogramLearner(t *testing.T) {
	s := NewSample([]float64{0.5, 1.5, 1.6, 2.5, 3.5, 3.6, 3.7, 3.8})
	l := NewHistogramLearnerRange(4, 0, 4)
	d, err := l.Learn(s)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := d.(*dist.Histogram)
	if !ok {
		t.Fatalf("got %T, want *dist.Histogram", d)
	}
	if h.SampleSize() != 8 {
		t.Errorf("SampleSize = %d, want 8", h.SampleSize())
	}
	wantCounts := []int{1, 2, 1, 4}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d", i, h.Counts[i], w)
		}
	}
}

func TestHistogramLearnerAutoRange(t *testing.T) {
	s := example3()
	l := NewHistogramLearner(5)
	d, err := l.Learn(s)
	if err != nil {
		t.Fatal(err)
	}
	h := d.(*dist.Histogram)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("total count %d, want 10", total)
	}
	// Every observation must land inside the support.
	for _, x := range s.Observations() {
		if h.BucketIndex(x) < 0 {
			t.Errorf("observation %v outside learned support", x)
		}
	}
}

func TestHistogramLearnerClampsOutliers(t *testing.T) {
	s := NewSample([]float64{-5, 0.25, 10})
	l := NewHistogramLearnerRange(2, 0, 1)
	d, err := l.Learn(s)
	if err != nil {
		t.Fatal(err)
	}
	h := d.(*dist.Histogram)
	if h.Counts[0] != 2 || h.Counts[1] != 1 {
		t.Errorf("counts = %v, want [2 1]", h.Counts)
	}
}

func TestHistogramLearnerDegenerate(t *testing.T) {
	s := NewSample([]float64{7, 7, 7})
	d, err := NewHistogramLearner(3).Learn(s)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "degenerate hist mean", d.Mean(), 7, 0.5)
	if _, err := NewHistogramLearner(0).Learn(s); err == nil {
		t.Error("0 bins: want error")
	}
	if _, err := NewHistogramLearner(3).Learn(NewSample(nil)); err == nil {
		t.Error("empty sample: want error")
	}
}

func TestGaussianLearner(t *testing.T) {
	s := example3()
	d, err := GaussianLearner{}.Learn(s)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := d.(dist.Normal)
	if !ok {
		t.Fatalf("got %T, want dist.Normal", d)
	}
	approx(t, "learned mean", n.Mu, 71.1, 1e-12)
	approx(t, "learned var", n.Sigma2, 78.3222, 0.01) // s² ≈ 8.85²

	// Constant sample degenerates to a point.
	d, err = GaussianLearner{}.Learn(NewSample([]float64{3, 3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(dist.Point); !ok {
		t.Errorf("constant sample learned %T, want dist.Point", d)
	}
}

func TestEmpiricalLearner(t *testing.T) {
	s := example3()
	d, err := EmpiricalLearner{}.Learn(s)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "empirical mean", d.Mean(), 71.1, 1e-9)
	if _, err := (EmpiricalLearner{}).Learn(NewSample(nil)); err == nil {
		t.Error("empty sample: want error")
	}
}

func TestKDELearner(t *testing.T) {
	s := example3()
	d, err := KDELearner{}.Learn(s)
	if err != nil {
		t.Fatal(err)
	}
	// KDE preserves the sample mean exactly (mixture of kernels centered
	// at observations).
	approx(t, "kde mean", d.Mean(), 71.1, 1e-9)
	// KDE inflates variance by h².
	if d.Variance() <= 70 {
		t.Errorf("kde variance %g implausibly small", d.Variance())
	}
	if _, err := (KDELearner{}).Learn(NewSample(nil)); err == nil {
		t.Error("empty sample: want error")
	}
	// Fixed bandwidth.
	d2, err := KDELearner{Bandwidth: 0.1}.Learn(NewSample([]float64{5}))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "single-point kde mean", d2.Mean(), 5, 1e-12)
}

func TestLearnerNames(t *testing.T) {
	names := map[string]Learner{
		"histogram":    NewHistogramLearner(4),
		"gaussian-mle": GaussianLearner{},
		"empirical":    EmpiricalLearner{},
		"kde":          KDELearner{},
	}
	for want, l := range names {
		if l.Name() != want {
			t.Errorf("Name() = %q, want %q", l.Name(), want)
		}
	}
}

func TestSampleMeanVarianceProperties(t *testing.T) {
	// Shifting a sample by c shifts the mean by c and leaves the variance
	// unchanged.
	f := func(raw []float64, c float64) bool {
		if len(raw) < 2 || math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.Abs(x) > 1e8 {
				return true
			}
		}
		if math.Abs(c) > 1e8 {
			return true
		}
		s1 := NewSample(raw)
		shifted := make([]float64, len(raw))
		for i, x := range raw {
			shifted[i] = x + c
		}
		s2 := NewSample(shifted)
		m1, _ := s1.Mean()
		m2, _ := s2.Mean()
		v1, _ := s1.Variance()
		v2, _ := s2.Variance()
		scale := 1 + math.Abs(m1) + math.Abs(c)
		return math.Abs(m2-(m1+c)) < 1e-7*scale && math.Abs(v2-v1) < 1e-6*(1+v1+scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestResampleIntoMatchesResample checks the buffer-reuse path draws exactly
// the same resample — and therefore exactly the same statistics — as the
// allocating path given identical generator state.
func TestResampleIntoMatchesResample(t *testing.T) {
	s := NewSample([]float64{3.12, 0, 1.57, 19.67, 0.22, 2.20})
	rA := dist.NewRand(77)
	rB := dist.NewRand(77)
	var buf Sample
	for trial := 0; trial < 50; trial++ {
		alloc, err := s.Resample(rA)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ResampleInto(&buf, rB); err != nil {
			t.Fatal(err)
		}
		if buf.Size() != alloc.Size() {
			t.Fatalf("trial %d: sizes %d vs %d", trial, buf.Size(), alloc.Size())
		}
		for i := 0; i < buf.Size(); i++ {
			if buf.At(i) != alloc.At(i) {
				t.Fatalf("trial %d: obs %d = %v, want %v", trial, i, buf.At(i), alloc.At(i))
			}
		}
		mA, _ := alloc.Mean()
		mB, _ := buf.Mean()
		vA, _ := alloc.Variance()
		vB, _ := buf.Variance()
		if mA != mB || vA != vB {
			t.Fatalf("trial %d: statistics diverge: mean %v vs %v, var %v vs %v", trial, mA, mB, vA, vB)
		}
	}
}

// TestResampleIntoReusesBuffer checks no growth happens once the buffer fits.
func TestResampleIntoReusesBuffer(t *testing.T) {
	s := NewSample([]float64{1, 2, 3, 4, 5})
	r := dist.NewRand(3)
	var buf Sample
	if err := s.ResampleInto(&buf, r); err != nil {
		t.Fatal(err)
	}
	first := &buf.obs[0]
	for i := 0; i < 10; i++ {
		if err := s.ResampleInto(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	if &buf.obs[0] != first {
		t.Error("ResampleInto reallocated a buffer that already fit")
	}
}

// TestResampleIntoEmpty checks the error contract.
func TestResampleIntoEmpty(t *testing.T) {
	var empty, dst Sample
	if err := empty.ResampleInto(&dst, dist.NewRand(1)); err != ErrEmptySample {
		t.Errorf("err = %v, want ErrEmptySample", err)
	}
}
