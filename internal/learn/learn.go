// Package learn turns raw observations into probability distributions —
// the first step of the paper's pipeline (§I): "the database system can
// learn the distributions of [an] attribute using machine learning
// techniques, ranging from simple ones such as histograms to complex ones
// such as kernel methods [and] maximum likelihood".
//
// A Sample is an iid set of observations of one random variable
// (Definition 1). Learners consume a Sample and produce a dist.Distribution;
// the sample size is retained because the accuracy of the learned
// distribution (package accuracy) is a function of it.
package learn

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
)

// ErrEmptySample is returned when an operation needs at least one
// observation.
var ErrEmptySample = errors.New("learn: empty sample")

// Sample holds iid observations X₁, …, Xₙ of a random variable
// (Definition 1 in the paper). The zero value is an empty sample.
type Sample struct {
	obs []float64
}

// NewSample returns a sample over obs. The slice is copied; the caller may
// reuse it.
func NewSample(obs []float64) *Sample {
	return &Sample{obs: append([]float64(nil), obs...)}
}

// Add appends one observation.
func (s *Sample) Add(x float64) { s.obs = append(s.obs, x) }

// AddAll appends all observations in xs.
func (s *Sample) AddAll(xs []float64) { s.obs = append(s.obs, xs...) }

// Size returns the number of observations n.
func (s *Sample) Size() int { return len(s.obs) }

// Observations returns a copy of the observations.
func (s *Sample) Observations() []float64 {
	return append([]float64(nil), s.obs...)
}

// At returns the i-th observation.
func (s *Sample) At(i int) float64 { return s.obs[i] }

// Mean returns the sample mean ȳ = (1/n) Σ Xᵢ.
func (s *Sample) Mean() (float64, error) {
	if len(s.obs) == 0 {
		return 0, ErrEmptySample
	}
	sum := 0.0
	for _, x := range s.obs {
		sum += x
	}
	return sum / float64(len(s.obs)), nil
}

// Variance returns the unbiased sample variance
// s² = (1/(n−1)) Σ (Xᵢ − ȳ)²; it requires n ≥ 2.
func (s *Sample) Variance() (float64, error) {
	if len(s.obs) < 2 {
		return 0, fmt.Errorf("learn: variance needs n ≥ 2, have %d", len(s.obs))
	}
	mean, err := s.Mean()
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range s.obs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(s.obs)-1), nil
}

// StdDev returns the sample standard deviation s.
func (s *Sample) StdDev() (float64, error) {
	v, err := s.Variance()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest observation.
func (s *Sample) Min() (float64, error) {
	if len(s.obs) == 0 {
		return 0, ErrEmptySample
	}
	m := s.obs[0]
	for _, x := range s.obs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest observation.
func (s *Sample) Max() (float64, error) {
	if len(s.obs) == 0 {
		return 0, ErrEmptySample
	}
	m := s.obs[0]
	for _, x := range s.obs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the empirical p-quantile (type-7 linear interpolation,
// the R default) for p in [0, 1].
func (s *Sample) Quantile(p float64) (float64, error) {
	if len(s.obs) == 0 {
		return 0, ErrEmptySample
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("learn: quantile p=%v outside [0,1]", p)
	}
	sorted := append([]float64(nil), s.obs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1], nil
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac, nil
}

// Proportion returns the fraction of observations satisfying pred — the
// sample estimate of P(pred(X)), the statistic pTest's population-proportion
// test is built on.
func (s *Sample) Proportion(pred func(float64) bool) (float64, error) {
	if len(s.obs) == 0 {
		return 0, ErrEmptySample
	}
	k := 0
	for _, x := range s.obs {
		if pred(x) {
			k++
		}
	}
	return float64(k) / float64(len(s.obs)), nil
}

// SubsampleWithoutReplacement draws k distinct observations uniformly at
// random, as the paper's Fig 4 experiments do ("pick a sample of a small
// size uniformly at random without replacement from the original large
// sample"). It returns an error if k exceeds the sample size.
func (s *Sample) SubsampleWithoutReplacement(k int, r *dist.Rand) (*Sample, error) {
	if k < 0 || k > len(s.obs) {
		return nil, fmt.Errorf("learn: subsample size %d outside [0, %d]", k, len(s.obs))
	}
	idx := r.Perm(len(s.obs))[:k]
	out := make([]float64, k)
	for i, j := range idx {
		out[i] = s.obs[j]
	}
	return &Sample{obs: out}, nil
}

// Resample draws a bootstrap resample: n observations with replacement
// (§III-A step 1).
func (s *Sample) Resample(r *dist.Rand) (*Sample, error) {
	if len(s.obs) == 0 {
		return nil, ErrEmptySample
	}
	dst := &Sample{}
	if err := s.ResampleInto(dst, r); err != nil {
		return nil, err
	}
	return dst, nil
}

// ResampleInto draws a bootstrap resample into dst, reusing dst's backing
// array when it is large enough. It draws exactly the same observations as
// Resample for the same generator state, so the two paths produce identical
// statistics; the engine's bootstrap hot loop uses this variant to avoid a
// Sample allocation per resample. dst must not alias s.
func (s *Sample) ResampleInto(dst *Sample, r *dist.Rand) error {
	if len(s.obs) == 0 {
		return ErrEmptySample
	}
	n := len(s.obs)
	if cap(dst.obs) < n {
		dst.obs = make([]float64, n)
	} else {
		dst.obs = dst.obs[:n]
	}
	for i := range dst.obs {
		dst.obs[i] = s.obs[r.Intn(n)]
	}
	return nil
}

// --- Learners ---

// Learner turns a sample into a distribution. Implementations must record
// nothing about the sample beyond what their distribution type exposes;
// accuracy tracking needs only the sample size, which callers keep.
type Learner interface {
	// Learn fits a distribution to the sample.
	Learn(s *Sample) (dist.Distribution, error)
	// Name identifies the learner in logs and plans.
	Name() string
}

// HistogramLearner fits an equi-width histogram with Bins buckets spanning
// [Lo, Hi]. When AutoRange is true the range is taken from the sample
// (slightly widened so the max falls inside the last bucket).
type HistogramLearner struct {
	Bins      int
	Lo, Hi    float64
	AutoRange bool
}

// NewHistogramLearner returns an auto-ranging histogram learner with bins
// buckets.
func NewHistogramLearner(bins int) *HistogramLearner {
	return &HistogramLearner{Bins: bins, AutoRange: true}
}

// NewHistogramLearnerRange returns a fixed-range histogram learner.
// Observations outside [lo, hi] are clamped into the boundary buckets, which
// matches how a stream system with a known attribute domain bins readings.
func NewHistogramLearnerRange(bins int, lo, hi float64) *HistogramLearner {
	return &HistogramLearner{Bins: bins, Lo: lo, Hi: hi}
}

func (l *HistogramLearner) Name() string { return "histogram" }

// Learn bins the observations and returns a *dist.Histogram that retains the
// per-bucket counts (so Lemma 1 can compute bin-height intervals).
func (l *HistogramLearner) Learn(s *Sample) (dist.Distribution, error) {
	if s.Size() == 0 {
		return nil, ErrEmptySample
	}
	if l.Bins < 1 {
		return nil, fmt.Errorf("learn: histogram needs ≥ 1 bin, have %d", l.Bins)
	}
	lo, hi := l.Lo, l.Hi
	if l.AutoRange {
		mn, _ := s.Min()
		mx, _ := s.Max()
		lo, hi = mn, mx
		if lo == hi { // all observations identical: widen to a unit bucket
			lo -= 0.5
			hi += 0.5
		} else {
			hi += (hi - lo) * 1e-9 // place the max inside the last bucket
		}
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("learn: histogram range [%v, %v] invalid", lo, hi)
	}
	edges := make([]float64, l.Bins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(l.Bins)
	}
	edges[l.Bins] = hi
	counts := make([]int, l.Bins)
	w := (hi - lo) / float64(l.Bins)
	for _, x := range s.obs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= l.Bins {
			i = l.Bins - 1
		}
		counts[i]++
	}
	return dist.HistogramFromCounts(edges, counts)
}

// GaussianLearner fits a normal distribution by maximum likelihood
// (sample mean, unbiased sample variance) — the learning step of the
// paper's throughput experiment (§V-C: "the query processor learns a
// Gaussian distribution").
type GaussianLearner struct{}

func (GaussianLearner) Name() string { return "gaussian-mle" }

func (GaussianLearner) Learn(s *Sample) (dist.Distribution, error) {
	mean, err := s.Mean()
	if err != nil {
		return nil, err
	}
	v, err := s.Variance()
	if err != nil {
		return nil, err
	}
	if v == 0 {
		// Degenerate sample: all observations equal.
		return dist.Point{V: mean}, nil
	}
	return dist.NewNormal(mean, v)
}

// EmpiricalLearner returns the empirical distribution of the sample (each
// observation with mass 1/n); the non-parametric baseline.
type EmpiricalLearner struct{}

func (EmpiricalLearner) Name() string { return "empirical" }

func (EmpiricalLearner) Learn(s *Sample) (dist.Distribution, error) {
	if s.Size() == 0 {
		return nil, ErrEmptySample
	}
	return dist.Empirical(s.obs)
}

// KDELearner fits a Gaussian kernel density estimate: a mixture of normals
// centered at the observations with Silverman's rule-of-thumb bandwidth.
// This is the paper's "kernel methods" learning option.
type KDELearner struct {
	// Bandwidth overrides Silverman's rule when > 0.
	Bandwidth float64
}

func (KDELearner) Name() string { return "kde" }

func (l KDELearner) Learn(s *Sample) (dist.Distribution, error) {
	n := s.Size()
	if n == 0 {
		return nil, ErrEmptySample
	}
	h := l.Bandwidth
	if h <= 0 {
		if n < 2 {
			h = 1
		} else {
			sd, err := s.StdDev()
			if err != nil {
				return nil, err
			}
			if sd == 0 {
				sd = 1
			}
			h = 1.06 * sd * math.Pow(float64(n), -0.2)
		}
	}
	comps := make([]dist.Distribution, n)
	weights := make([]float64, n)
	for i, x := range s.obs {
		nd, err := dist.NewNormal(x, h*h)
		if err != nil {
			return nil, err
		}
		comps[i] = nd
		weights[i] = 1
	}
	return dist.NewMixture(comps, weights)
}
