package learn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

func TestNewWeightedSampleValidation(t *testing.T) {
	if _, err := NewWeightedSample([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewWeightedSample([]float64{1}, []float64{w}); err == nil {
			t.Errorf("weight %v: want error", w)
		}
	}
	s, err := NewWeightedSample([]float64{1, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(3, 0); err == nil {
		t.Error("Add with zero weight: want error")
	}
	if err := s.Add(3, 1); err != nil || s.Size() != 3 {
		t.Errorf("Add failed: %v, size %d", err, s.Size())
	}
}

func TestEqualWeightsMatchPlainSample(t *testing.T) {
	obs := []float64{71, 56, 82, 74, 69, 77, 65, 78, 59, 80}
	weights := make([]float64, len(obs))
	for i := range weights {
		weights[i] = 3.5 // any equal weight
	}
	ws, err := NewWeightedSample(obs, weights)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewSample(obs)
	wm, _ := ws.Mean()
	pm, _ := plain.Mean()
	approx(t, "weighted mean", wm, pm, 1e-12)
	wv, _ := ws.Variance()
	pv, _ := plain.Variance()
	approx(t, "weighted variance", wv, pv, 1e-9)
	approx(t, "effective size", ws.EffectiveSize(), 10, 1e-9)
	if ws.EffectiveSizeInt() != 10 {
		t.Errorf("EffectiveSizeInt = %d", ws.EffectiveSizeInt())
	}
}

func TestEffectiveSizeShrinksWithSkew(t *testing.T) {
	obs := []float64{1, 2, 3, 4, 5}
	balanced, _ := NewWeightedSample(obs, []float64{1, 1, 1, 1, 1})
	skewed, _ := NewWeightedSample(obs, []float64{100, 1, 1, 1, 1})
	if skewed.EffectiveSize() >= balanced.EffectiveSize() {
		t.Errorf("skewed n_eff %g should be below balanced %g",
			skewed.EffectiveSize(), balanced.EffectiveSize())
	}
	if skewed.EffectiveSize() < 1 {
		t.Errorf("n_eff %g below 1", skewed.EffectiveSize())
	}
	// A single extreme weight drives n_eff toward 1.
	if skewed.EffectiveSize() > 1.2 {
		t.Errorf("n_eff %g should approach 1 with one dominant weight", skewed.EffectiveSize())
	}
}

func TestWeightedMeanPullsTowardHeavyObservations(t *testing.T) {
	s, _ := NewWeightedSample([]float64{0, 10}, []float64{1, 3})
	m, err := s.Mean()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "weighted mean", m, 7.5, 1e-12)
	p, err := s.Proportion(func(x float64) bool { return x > 5 })
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "weighted proportion", p, 0.75, 1e-12)
}

func TestWeightedVarianceNeedsEffectiveSize(t *testing.T) {
	s, _ := NewWeightedSample([]float64{5}, []float64{1})
	if _, err := s.Variance(); err == nil {
		t.Error("n_eff = 1: want error")
	}
	empty := &WeightedSample{}
	if _, err := empty.Mean(); err == nil {
		t.Error("empty: want error")
	}
	if _, err := empty.Proportion(func(float64) bool { return true }); err == nil {
		t.Error("empty proportion: want error")
	}
	if empty.EffectiveSize() != 0 {
		t.Error("empty effective size should be 0")
	}
}

func TestExponentialDecay(t *testing.T) {
	obs := []float64{10, 20, 30}
	ages := []float64{0, 60, 120} // seconds
	s, err := ExponentialDecay(obs, ages, 60)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Weights()
	approx(t, "age 0 weight", w[0], 1, 1e-12)
	approx(t, "age 60 weight", w[1], 0.5, 1e-12) // one half-life
	approx(t, "age 120 weight", w[2], 0.25, 1e-12)
	// Recency weighting pulls the mean toward the newest observation.
	m, _ := s.Mean()
	plainMean := (10.0 + 20 + 30) / 3
	if m >= plainMean {
		t.Errorf("decayed mean %g should be below unweighted %g", m, plainMean)
	}
	if _, err := ExponentialDecay(obs, ages[:2], 60); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := ExponentialDecay(obs, ages, 0); err == nil {
		t.Error("zero half-life: want error")
	}
	if _, err := ExponentialDecay(obs, []float64{0, -1, 2}, 60); err == nil {
		t.Error("negative age: want error")
	}
}

func TestWeightedGaussianLearner(t *testing.T) {
	obs := []float64{71, 56, 82, 74, 69, 77, 65, 78, 59, 80}
	weights := make([]float64, len(obs))
	for i := range weights {
		weights[i] = 1
	}
	ws, _ := NewWeightedSample(obs, weights)
	d, n, err := WeightedGaussianLearner(ws)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("n_eff = %d, want 10", n)
	}
	approx(t, "weighted learn mean", d.Mean(), 71.1, 1e-9)
	// Degenerate: one dominant weight → point.
	one, _ := NewWeightedSample([]float64{5}, []float64{2})
	d, n, err = WeightedGaussianLearner(one)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(dist.Point); !ok || n != 1 {
		t.Errorf("degenerate learn: %T, n=%d", d, n)
	}
	if _, _, err := WeightedGaussianLearner(nil); err == nil {
		t.Error("nil sample: want error")
	}
}

func TestWeightedHistogramLearner(t *testing.T) {
	ws, _ := NewWeightedSample([]float64{1, 1, 9}, []float64{1, 1, 2})
	h, n, err := WeightedHistogramLearner(ws, 2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket [0,5): weight 2 of 4 → 0.5; bucket [5,10): 0.5.
	approx(t, "bucket 0", h.BucketProb(0), 0.5, 1e-12)
	approx(t, "bucket 1", h.BucketProb(1), 0.5, 1e-12)
	if n < 1 || n > 3 {
		t.Errorf("n_eff = %d", n)
	}
	if _, _, err := WeightedHistogramLearner(ws, 0, 0, 10); err == nil {
		t.Error("0 bins: want error")
	}
	if _, _, err := WeightedHistogramLearner(ws, 2, 5, 5); err == nil {
		t.Error("bad range: want error")
	}
	if _, _, err := WeightedHistogramLearner(nil, 2, 0, 10); err == nil {
		t.Error("nil sample: want error")
	}
}

// TestDecayImprovesDriftedEstimates is the future-work ablation: under
// distribution drift, exponentially decayed samples estimate the *current*
// mean better than plain averaging.
func TestDecayImprovesDriftedEstimates(t *testing.T) {
	rng := dist.NewRand(6)
	const n = 200
	trials := 300
	decayBetter := 0
	for trial := 0; trial < trials; trial++ {
		obs := make([]float64, n)
		ages := make([]float64, n)
		for i := 0; i < n; i++ {
			age := float64(n - 1 - i)
			// The true mean drifts from 0 (old) to 10 (now).
			mu := 10 - age*10/float64(n)
			obs[i] = mu + 2*rng.NormFloat64()
			ages[i] = age
		}
		ws, err := ExponentialDecay(obs, ages, 20)
		if err != nil {
			t.Fatal(err)
		}
		wm, _ := ws.Mean()
		pm, _ := ws.Unweighted().Mean()
		if math.Abs(wm-10) < math.Abs(pm-10) {
			decayBetter++
		}
	}
	if decayBetter < trials*9/10 {
		t.Errorf("decay better only %d/%d times under drift", decayBetter, trials)
	}
}

// TestWeightedStatsProperty: scaling all weights by a constant changes
// nothing (weights are relative).
func TestWeightedStatsProperty(t *testing.T) {
	f := func(raw []float64, scaleSeed uint8) bool {
		if len(raw) < 3 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		obs := make([]float64, len(raw))
		weights := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			obs[i] = math.Mod(x, 1000)
			weights[i] = 0.5 + math.Mod(math.Abs(x), 3)
		}
		scale := 0.25 * float64(scaleSeed%16+1)
		s1, err := NewWeightedSample(obs, weights)
		if err != nil {
			return false
		}
		scaled := make([]float64, len(weights))
		for i, w := range weights {
			scaled[i] = w * scale
		}
		s2, err := NewWeightedSample(obs, scaled)
		if err != nil {
			return false
		}
		m1, e1 := s1.Mean()
		m2, e2 := s2.Mean()
		if e1 != nil || e2 != nil {
			return false
		}
		n1, n2 := s1.EffectiveSize(), s2.EffectiveSize()
		return math.Abs(m1-m2) < 1e-9*(1+math.Abs(m1)) &&
			math.Abs(n1-n2) < 1e-9*(1+n1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
