package stream

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/randvar"
)

// Column slot kinds. Point and Normal fields are decomposed into plain
// float64 columns; anything else keeps its (immutable) Distribution.
const (
	slotPoint uint8 = iota
	slotNormal
	slotOther
)

// winColumn is the columnar storage for one schema column: parallel arrays
// indexed by ring slot.
type winColumn struct {
	kind []uint8
	// mean holds Point.V for point slots and Normal.Mu for normal slots;
	// it is meaningless (stale) for other slots.
	mean []float64
	// varr holds Normal.Sigma2 for normal slots and 0 for point slots;
	// meaningless for other slots.
	varr []float64
	// n is the field's d.f. sample size.
	n []int
	// other holds the original Distribution for slots that are neither
	// Point nor Normal; nil everywhere else. Lazily allocated: windows of
	// purely Gaussian data never allocate it.
	other []dist.Distribution
	// numOther counts live other slots, so the Gaussian fast path is a
	// single comparison.
	numOther int
}

// ColumnWindow is a count-based sliding window with columnar (struct-of-
// arrays) storage: per schema column, contiguous kind/mean/variance/n
// arrays, plus per-tuple Prob/ProbN/Seq/Time columns. It is the hot-path
// replacement for CountWindow in aggregate queries (§V-C throughput
// experiment): the Gaussian closed form becomes a branch-free scan over
// two contiguous float64 segments instead of a pointer walk over *Tuple
// graphs.
//
// Push copies field data out of the tuple — the window never retains the
// *Tuple (see the ownership contract in doc.go). Results are bit-identical
// to the row path: the closed-form scan visits slots oldest-first with the
// same summation order as randvar.LinearGaussianUniform, and the fallback
// path materializes fields in the same order the row engine gathers them.
type ColumnWindow struct {
	schema *Schema
	head   int // slot index of the oldest tuple
	count  int
	size   int

	prob  []float64
	probN []int
	seq   []uint64
	time  []int64
	cols  []winColumn
}

// NewColumnWindow returns a columnar window over schema holding the most
// recent size tuples.
func NewColumnWindow(schema *Schema, size int) (*ColumnWindow, error) {
	if schema == nil {
		return nil, fmt.Errorf("stream: column window with nil schema")
	}
	if size < 1 {
		return nil, fmt.Errorf("stream: count window size %d, need ≥ 1", size)
	}
	w := &ColumnWindow{
		schema: schema,
		size:   size,
		prob:   make([]float64, size),
		probN:  make([]int, size),
		seq:    make([]uint64, size),
		time:   make([]int64, size),
		cols:   make([]winColumn, schema.Arity()),
	}
	for i := range w.cols {
		w.cols[i] = winColumn{
			kind: make([]uint8, size),
			mean: make([]float64, size),
			varr: make([]float64, size),
			n:    make([]int, size),
		}
	}
	return w, nil
}

// Schema returns the window's schema.
func (w *ColumnWindow) Schema() *Schema { return w.schema }

// Len returns the number of tuples currently in the window.
func (w *ColumnWindow) Len() int { return w.count }

// Full reports whether the window has reached capacity.
func (w *ColumnWindow) Full() bool { return w.count == w.size }

// Cap returns the window capacity.
func (w *ColumnWindow) Cap() int { return w.size }

// Push adds t, evicting the oldest tuple once the window is full. The
// tuple's field data is copied into the column arrays; the *Tuple itself
// is not retained.
func (w *ColumnWindow) Push(t *Tuple) {
	var slot int
	if w.count < w.size {
		slot = w.head + w.count
		if slot >= w.size {
			slot -= w.size
		}
		w.count++
	} else {
		slot = w.head
		w.head++
		if w.head == w.size {
			w.head = 0
		}
	}
	w.prob[slot] = t.Prob
	w.probN[slot] = t.ProbN
	w.seq[slot] = t.Seq
	w.time[slot] = t.Time
	for c := range w.cols {
		w.cols[c].set(slot, t.Fields[c])
	}
}

// set stores field f into ring slot i, classifying it with the same type
// switch as randvar's gaussianOf so the closed-form applicability matches
// the row path exactly.
func (col *winColumn) set(i int, f randvar.Field) {
	if col.other != nil && col.other[i] != nil {
		col.other[i] = nil
		col.numOther--
	}
	switch d := f.Dist.(type) {
	case dist.Point:
		col.kind[i] = slotPoint
		col.mean[i] = d.V
		col.varr[i] = 0
	case dist.Normal:
		col.kind[i] = slotNormal
		col.mean[i] = d.Mu
		col.varr[i] = d.Sigma2
	default:
		col.kind[i] = slotOther
		col.mean[i] = 0
		col.varr[i] = 0
		if col.other == nil {
			col.other = make([]dist.Distribution, len(col.kind))
		}
		col.other[i] = f.Dist
		col.numOther++
	}
	col.n[i] = f.N
}

// field materializes ring slot i back into a randvar.Field, bit-identical
// to the field that was pushed.
func (col *winColumn) field(i int) randvar.Field {
	switch col.kind[i] {
	case slotPoint:
		return randvar.Field{Dist: dist.Point{V: col.mean[i]}, N: col.n[i]}
	case slotNormal:
		return randvar.Field{Dist: dist.Normal{Mu: col.mean[i], Sigma2: col.varr[i]}, N: col.n[i]}
	default:
		return randvar.Field{Dist: col.other[i], N: col.n[i]}
	}
}

// gaussian reports whether every live slot of the column is Point or
// Normal, i.e. the Avg/Sum closed form applies.
func (col *winColumn) gaussian() bool { return col.numOther == 0 }

// ColumnGaussian reports whether column c currently holds only Gaussian
// (Point/Normal) fields, making the closed-form scan applicable.
func (w *ColumnWindow) ColumnGaussian(c int) bool { return w.cols[c].gaussian() }

// LinearUniform computes Σ wt·Xᵢ over column c in the Gaussian closed form
// (Theorem: a uniform linear combination of independent Gaussians), scanning
// the mean/variance columns oldest-first in the exact summation order of
// randvar.LinearGaussianUniform so results are bit-identical to the row
// path. The caller must have checked ColumnGaussian(c).
func (w *ColumnWindow) LinearUniform(c int, wt float64) (randvar.Field, error) {
	col := &w.cols[c]
	mu, sigma2 := 0.0, 0.0
	n := 0
	scan := func(lo, hi int) {
		mean, varr := col.mean[lo:hi], col.varr[lo:hi]
		for i := range mean {
			mu += wt * mean[i]
			sigma2 += wt * wt * varr[i]
		}
		for _, fn := range col.n[lo:hi] {
			if fn > 0 && (n == 0 || fn < n) {
				n = fn
			}
		}
	}
	if end := w.head + w.count; end <= w.size {
		scan(w.head, end)
	} else {
		scan(w.head, w.size)
		scan(0, end-w.size)
	}
	return randvar.GaussianResult(mu, sigma2, n)
}

// LinearUniformMoments is the fused form of LinearUniform: one pass over
// the live window accumulates the closed-form Gaussian moments of
// Σ wts[j]·X over column cols[j] for every requested aggregate at once.
// Each accumulator sees exactly the slot sequence (and therefore the
// floating-point summation order) of a standalone LinearUniform over its
// column, so the fused scan is bit-identical per aggregate — it only
// shares the walk. Callers must have checked ColumnGaussian for each
// requested column and must turn the moments into fields via
// randvar.GaussianResult(mu[j], sigma2[j], n[j]).
func (w *ColumnWindow) LinearUniformMoments(cols []int, wts []float64) (mu, sigma2 []float64, n []int) {
	mu = make([]float64, len(cols))
	sigma2 = make([]float64, len(cols))
	n = make([]int, len(cols))
	scan := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j, c := range cols {
				col := &w.cols[c]
				mu[j] += wts[j] * col.mean[i]
				sigma2[j] += wts[j] * wts[j] * col.varr[i]
				if fn := col.n[i]; fn > 0 && (n[j] == 0 || fn < n[j]) {
					n[j] = fn
				}
			}
		}
	}
	if end := w.head + w.count; end <= w.size {
		scan(w.head, end)
	} else {
		scan(w.head, w.size)
		scan(0, end-w.size)
	}
	return mu, sigma2, n
}

// SameContents reports whether w and o hold the same tuple sequence: equal
// capacity, equal length, and the same tuple sequence numbers oldest-first.
// Engine sequence numbers identify ingested tuples uniquely, so equal
// sequences imply bit-identical window contents for windows fed from the
// same deterministic engine — the admission test the multi-query planner
// uses before aliasing two queries onto one shared window.
func (w *ColumnWindow) SameContents(o *ColumnWindow) bool {
	if w == nil || o == nil {
		return w == o
	}
	if w.size != o.size || w.count != o.count {
		return false
	}
	for k := 0; k < w.count; k++ {
		i := w.head + k
		if i >= w.size {
			i -= w.size
		}
		j := o.head + k
		if j >= o.size {
			j -= o.size
		}
		if w.seq[i] != o.seq[j] {
			return false
		}
	}
	return true
}

// ExpectedProb returns Σ Prob over the live window (expected count under
// possible-world semantics), oldest-first.
func (w *ColumnWindow) ExpectedProb() float64 {
	total := 0.0
	scan := func(lo, hi int) {
		for _, p := range w.prob[lo:hi] {
			total += p
		}
	}
	if end := w.head + w.count; end <= w.size {
		scan(w.head, end)
	} else {
		scan(w.head, w.size)
		scan(0, end-w.size)
	}
	return total
}

// AppendColumnFields appends column c's fields oldest-first to dst and
// returns the extended slice — the materialization used when an aggregate
// must fall back to the generic (Monte Carlo) path.
func (w *ColumnWindow) AppendColumnFields(dst []randvar.Field, c int) []randvar.Field {
	col := &w.cols[c]
	if end := w.head + w.count; end <= w.size {
		for i := w.head; i < end; i++ {
			dst = append(dst, col.field(i))
		}
	} else {
		for i := w.head; i < w.size; i++ {
			dst = append(dst, col.field(i))
		}
		for i := 0; i < end-w.size; i++ {
			dst = append(dst, col.field(i))
		}
	}
	return dst
}

// Tuples materializes the window contents oldest-first as fresh tuples
// (the compatibility path for snapshots and tests). The returned tuples
// are owned by the caller; non-Gaussian Dist pointers are shared with the
// window but immutable.
func (w *ColumnWindow) Tuples() []*Tuple {
	return w.AppendTuples(nil)
}

// AppendTuples appends materialized window contents oldest-first to dst.
func (w *ColumnWindow) AppendTuples(dst []*Tuple) []*Tuple {
	for i := 0; i < w.count; i++ {
		slot := w.head + i
		if slot >= w.size {
			slot -= w.size
		}
		fields := make([]randvar.Field, len(w.cols))
		for c := range w.cols {
			fields[c] = w.cols[c].field(slot)
		}
		dst = append(dst, &Tuple{
			Schema: w.schema,
			Fields: fields,
			Prob:   w.prob[slot],
			ProbN:  w.probN[slot],
			Seq:    w.seq[slot],
			Time:   w.time[slot],
		})
	}
	return dst
}

// Do calls fn for each materialized tuple oldest-first.
func (w *ColumnWindow) Do(fn func(*Tuple)) {
	for _, t := range w.Tuples() {
		fn(t)
	}
}

// RestoreTuples replaces the window contents with tuples (oldest-first),
// e.g. when a checkpointed window is reloaded during crash recovery. It
// fails if tuples exceed the window capacity. Like CountWindow, the
// restored ring is linearized (head 0), which does not affect any
// observable behavior.
func (w *ColumnWindow) RestoreTuples(tuples []*Tuple) error {
	if len(tuples) > w.size {
		return fmt.Errorf("stream: restoring %d tuples into count window of %d",
			len(tuples), w.size)
	}
	w.reset()
	for _, t := range tuples {
		if len(t.Fields) != len(w.cols) {
			return fmt.Errorf("stream: restoring tuple with %d fields into window of arity %d",
				len(t.Fields), len(w.cols))
		}
		w.Push(t)
	}
	return nil
}

// reset empties the window, releasing retained distributions.
func (w *ColumnWindow) reset() {
	for c := range w.cols {
		col := &w.cols[c]
		if col.other != nil {
			for i := range col.other {
				col.other[i] = nil
			}
		}
		col.numOther = 0
	}
	w.head = 0
	w.count = 0
}

// ColumnWindowState is the serializable, linearized (oldest-first) form of
// a ColumnWindow — the columnar snapshot exchanged with the checkpoint
// layer. All slices have the same length (the live tuple count); Other
// maps slot index → distribution for slots whose Kind is slotOther.
type ColumnWindowState struct {
	Prob  []float64
	ProbN []int
	Seq   []uint64
	Time  []int64
	Cols  []ColumnState
}

// ColumnState is one column of a ColumnWindowState.
type ColumnState struct {
	Kind  []uint8
	Mean  []float64
	Var   []float64
	N     []int
	Other map[int]dist.Distribution
}

// State captures the window contents as a linearized columnar snapshot.
func (w *ColumnWindow) State() *ColumnWindowState {
	st := &ColumnWindowState{
		Prob:  make([]float64, 0, w.count),
		ProbN: make([]int, 0, w.count),
		Seq:   make([]uint64, 0, w.count),
		Time:  make([]int64, 0, w.count),
		Cols:  make([]ColumnState, len(w.cols)),
	}
	for c := range st.Cols {
		st.Cols[c] = ColumnState{
			Kind: make([]uint8, 0, w.count),
			Mean: make([]float64, 0, w.count),
			Var:  make([]float64, 0, w.count),
			N:    make([]int, 0, w.count),
		}
	}
	for i := 0; i < w.count; i++ {
		slot := w.head + i
		if slot >= w.size {
			slot -= w.size
		}
		st.Prob = append(st.Prob, w.prob[slot])
		st.ProbN = append(st.ProbN, w.probN[slot])
		st.Seq = append(st.Seq, w.seq[slot])
		st.Time = append(st.Time, w.time[slot])
		for c := range w.cols {
			col := &w.cols[c]
			cs := &st.Cols[c]
			cs.Kind = append(cs.Kind, col.kind[slot])
			cs.Mean = append(cs.Mean, col.mean[slot])
			cs.Var = append(cs.Var, col.varr[slot])
			cs.N = append(cs.N, col.n[slot])
			if col.kind[slot] == slotOther {
				if cs.Other == nil {
					cs.Other = make(map[int]dist.Distribution)
				}
				cs.Other[i] = col.other[slot]
			}
		}
	}
	return st
}

// Len returns the number of tuples in the snapshot.
func (st *ColumnWindowState) Len() int { return len(st.Prob) }

// Validate checks structural consistency of the snapshot against a window
// of the given arity.
func (st *ColumnWindowState) Validate(arity int) error {
	n := len(st.Prob)
	if len(st.ProbN) != n || len(st.Seq) != n || len(st.Time) != n {
		return fmt.Errorf("stream: columnar snapshot with ragged tuple columns (%d/%d/%d/%d)",
			len(st.Prob), len(st.ProbN), len(st.Seq), len(st.Time))
	}
	if len(st.Cols) != arity {
		return fmt.Errorf("stream: columnar snapshot arity %d, schema wants %d", len(st.Cols), arity)
	}
	for c, cs := range st.Cols {
		if len(cs.Kind) != n || len(cs.Mean) != n || len(cs.Var) != n || len(cs.N) != n {
			return fmt.Errorf("stream: columnar snapshot column %d ragged", c)
		}
		for i, k := range cs.Kind {
			switch k {
			case slotPoint, slotNormal:
			case slotOther:
				if cs.Other[i] == nil {
					return fmt.Errorf("stream: columnar snapshot column %d slot %d missing distribution", c, i)
				}
			default:
				return fmt.Errorf("stream: columnar snapshot column %d slot %d has unknown kind %d", c, i, k)
			}
		}
		for i, p := range st.Prob {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return fmt.Errorf("stream: columnar snapshot tuple %d probability %v outside [0,1]", i, p)
			}
		}
	}
	return nil
}

// Tuples materializes the snapshot as row tuples over schema, validating
// each — the cross-form bridge that lets a columnar checkpoint restore
// into a row-oriented window (and, composed with RestoreTuples, into a
// columnar one).
func (st *ColumnWindowState) Tuples(schema *Schema) ([]*Tuple, error) {
	if err := st.Validate(schema.Arity()); err != nil {
		return nil, err
	}
	out := make([]*Tuple, st.Len())
	for i := range out {
		fields := make([]randvar.Field, len(st.Cols))
		for c, cs := range st.Cols {
			switch cs.Kind[i] {
			case slotPoint:
				fields[c] = randvar.Field{Dist: dist.Point{V: cs.Mean[i]}, N: cs.N[i]}
			case slotNormal:
				fields[c] = randvar.Field{Dist: dist.Normal{Mu: cs.Mean[i], Sigma2: cs.Var[i]}, N: cs.N[i]}
			default:
				fields[c] = randvar.Field{Dist: cs.Other[i], N: cs.N[i]}
			}
		}
		t := &Tuple{
			Schema: schema,
			Fields: fields,
			Prob:   st.Prob[i],
			ProbN:  st.ProbN[i],
			Seq:    st.Seq[i],
			Time:   st.Time[i],
		}
		if err := t.Validate(); err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}
