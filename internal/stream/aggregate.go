package stream

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/randvar"
)

// AggKind names a window aggregate function.
type AggKind int

const (
	// Avg is the mean of the aggregated fields.
	Avg AggKind = iota
	// Sum is the total of the aggregated fields.
	Sum
	// Count is the number of aggregated tuples (deterministic), or the
	// expected count when tuples carry membership probabilities.
	Count
	// Min is the minimum of the aggregated fields.
	Min
	// Max is the maximum of the aggregated fields.
	Max
)

// ParseAggKind converts the SQL spelling of an aggregate into an AggKind.
func ParseAggKind(s string) (AggKind, error) {
	switch s {
	case "AVG", "avg":
		return Avg, nil
	case "SUM", "sum":
		return Sum, nil
	case "COUNT", "count":
		return Count, nil
	case "MIN", "min":
		return Min, nil
	case "MAX", "max":
		return Max, nil
	}
	return 0, fmt.Errorf("stream: unknown aggregate %q", s)
}

func (k AggKind) String() string {
	switch k {
	case Avg:
		return "AVG"
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// Aggregate computes the aggregate of the given distribution-valued fields
// under the independence assumption.
//
// Avg and Sum take the Gaussian closed form when every input is Gaussian or
// deterministic — the paper's fast path ("the query processor can compute
// the AVG result as a Gaussian distribution", §V-C) — and fall back to
// Monte Carlo otherwise. Min and Max always use Monte Carlo. The result's
// d.f. sample size follows Lemma 3.
func Aggregate(e *randvar.Evaluator, kind AggKind, fields []randvar.Field) (randvar.Result, error) {
	if len(fields) == 0 {
		return randvar.Result{}, errors.New("stream: aggregate over zero fields")
	}
	switch kind {
	case Count:
		return randvar.Result{Field: randvar.Det(float64(len(fields)))}, nil
	case Avg, Sum:
		w := 1.0
		if kind == Avg {
			w = 1 / float64(len(fields))
		}
		if f, ok, err := randvar.LinearGaussianUniform(w, 0, fields...); err != nil {
			return randvar.Result{}, err
		} else if ok {
			return randvar.Result{Field: f}, nil
		}
		return e.Apply(func(a []float64) (float64, error) {
			s := 0.0
			for _, v := range a {
				s += v
			}
			return s * w, nil
		}, fields...)
	case Min:
		return e.Apply(func(a []float64) (float64, error) {
			m := a[0]
			for _, v := range a[1:] {
				m = math.Min(m, v)
			}
			return m, nil
		}, fields...)
	case Max:
		return e.Apply(func(a []float64) (float64, error) {
			m := a[0]
			for _, v := range a[1:] {
				m = math.Max(m, v)
			}
			return m, nil
		}, fields...)
	}
	return randvar.Result{}, fmt.Errorf("stream: unknown aggregate %v", kind)
}

// AggregateColumn computes the aggregate of column c of a columnar window,
// scanning the column arrays directly when the Gaussian closed form
// applies. When it does not (a non-Gaussian field is present, or the
// aggregate is Min/Max), the column is materialized into *scratch and the
// computation delegates to Aggregate, so errors, RNG consumption, and
// results are bit-identical to the row path at any worker count.
//
// scratch is a caller-owned reusable buffer (may be nil); the materialized
// fields are consumed within the call.
func AggregateColumn(e *randvar.Evaluator, kind AggKind, w *ColumnWindow, c int, scratch *[]randvar.Field) (randvar.Result, error) {
	m := w.Len()
	if m == 0 {
		return randvar.Result{}, errors.New("stream: aggregate over zero fields")
	}
	switch kind {
	case Count:
		return randvar.Result{Field: randvar.Det(float64(m))}, nil
	case Avg, Sum:
		if w.ColumnGaussian(c) {
			wt := 1.0
			if kind == Avg {
				wt = 1 / float64(m)
			}
			f, err := w.LinearUniform(c, wt)
			if err != nil {
				return randvar.Result{}, err
			}
			return randvar.Result{Field: f}, nil
		}
	}
	var fields []randvar.Field
	if scratch != nil {
		fields = (*scratch)[:0]
	}
	fields = w.AppendColumnFields(fields, c)
	if scratch != nil {
		*scratch = fields
	}
	return Aggregate(e, kind, fields)
}

// ExpectedCount returns the expected number of existing tuples under the
// possible-world semantics: Σ Prob over the tuples.
func ExpectedCount(tuples []*Tuple) float64 {
	total := 0.0
	for _, t := range tuples {
		total += t.Prob
	}
	return total
}

// ColumnFields extracts the named column's field from each tuple, in order.
func ColumnFields(tuples []*Tuple, col string) ([]randvar.Field, error) {
	if len(tuples) == 0 {
		return nil, nil
	}
	idx, ok := tuples[0].Schema.Index(col)
	if !ok {
		return nil, fmt.Errorf("stream: no column %q", col)
	}
	out := make([]randvar.Field, len(tuples))
	for i, t := range tuples {
		out[i] = t.Fields[idx]
	}
	return out, nil
}
