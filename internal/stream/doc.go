// Package stream is the uncertain stream database substrate (§II-A): typed
// schemas, tuples with both tuple uncertainty (a membership probability)
// and attribute uncertainty (distribution-valued fields), sliding windows,
// and composable push-based operators.
//
// Accuracy information flows with the data: every probabilistic field
// carries the sample size its distribution was learned from, and every
// operator derives output sample sizes via Lemma 3, so that the engine
// (package core) can attach confidence intervals to any query result.
//
// # Ownership contract
//
// Windows, columns, and rendered frames pass through several layers that
// reuse buffers aggressively; the rules below say who may retain what, and
// for how long. Violating them does not fail fast — it silently corrupts
// results (typically by aliasing a buffer that a later push overwrites), so
// every rule here is backed by an aliasing test that checks values, not
// lengths.
//
// Tuples:
//
//   - A *Tuple handed to an ingest path (Engine.Ingest, Operator.Push,
//     CountWindow.Push, TimeWindow.Push, ColumnWindow.Push) is owned by the
//     callee from that point on. The caller must not mutate the tuple or
//     its Fields slice afterwards. Callers that need to keep writing must
//     pass t.Clone().
//   - Fields[i].Dist values are immutable by convention: no code in this
//     module ever mutates a distribution after construction, which is what
//     makes Clone's shallow copy of the Dist pointers safe.
//   - CountWindow/TimeWindow retain the *Tuple pointers they were given
//     until eviction. ColumnWindow does NOT retain the tuple: Push copies
//     the per-field scalars (and, for non-Gaussian fields, the immutable
//     Dist pointer) into its column arrays and drops the tuple reference.
//
// Window snapshots:
//
//   - Tuples()/AppendTuples return tuples that the caller may read until
//     the next Push on the same window; after that the contents may have
//     been evicted or (for ColumnWindow materializations) reused. Callers
//     that outlive the next push must deep-copy.
//   - ColumnWindow.Tuples materializes fresh *Tuple values; those are
//     owned by the caller, but their Dist pointers are shared with the
//     window for non-Gaussian fields (safe: immutable).
//   - Column slices returned by internal scans (ColumnWindow's kind/mean/
//     variance arrays) are live ring storage, never handed out across an
//     API boundary; aggregate kernels must finish reading them before
//     returning.
//
// Rendered frames (internal/server):
//
//   - A DATA line is rendered exactly once into a pooled frame and fanned
//     out to every subscriber by reference. The frame is reference-counted:
//     the renderer sets the count to the number of recipients, each
//     recipient (synchronous write, outbox enqueue-then-write, or the
//     slow-client drop path) releases exactly once, and the frame returns
//     to the pool only when the count reaches zero. Nobody may touch
//     frame.buf after their release.
package stream
