package stream

import (
	"errors"
	"fmt"
	"strings"
)

// Column describes one attribute of a stream. Probabilistic columns hold
// distributions; deterministic columns hold exact values (represented as
// point distributions, §II-A: "a single value with probability 1").
type Column struct {
	Name          string
	Probabilistic bool
}

// Schema is an ordered set of named columns.
type Schema struct {
	Name    string
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema, validating non-empty distinct column names.
func NewSchema(name string, cols ...Column) (*Schema, error) {
	if name == "" {
		return nil, errors.New("stream: schema needs a name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("stream: schema %q needs at least one column", name)
	}
	s := &Schema{Name: name, Columns: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("stream: schema %q column %d has empty name", name, i)
		}
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("stream: schema %q has duplicate column %q", name, c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// Index returns the position of the named column (case-insensitive).
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[strings.ToLower(name)]
	return i, ok
}

// Column returns the named column's descriptor.
func (s *Schema) Column(name string) (Column, error) {
	i, ok := s.Index(name)
	if !ok {
		return Column{}, fmt.Errorf("stream: schema %q has no column %q", s.Name, name)
	}
	return s.Columns[i], nil
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// Project returns a new schema consisting of the named columns, in order.
func (s *Schema) Project(name string, cols ...string) (*Schema, error) {
	out := make([]Column, 0, len(cols))
	for _, c := range cols {
		i, ok := s.Index(c)
		if !ok {
			return nil, fmt.Errorf("stream: schema %q has no column %q", s.Name, c)
		}
		out = append(out, s.Columns[i])
	}
	return NewSchema(name, out...)
}

// Extend returns a new schema with an extra column appended.
func (s *Schema) Extend(name string, col Column) (*Schema, error) {
	cols := append(append([]Column(nil), s.Columns...), col)
	return NewSchema(name, cols...)
}

func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		if c.Probabilistic {
			b.WriteString(" DIST")
		}
	}
	b.WriteByte(')')
	return b.String()
}
