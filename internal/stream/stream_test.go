package stream

import (
	"math"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dist"
	"repro/internal/randvar"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("s",
		Column{Name: "id"},
		Column{Name: "speed", Probabilistic: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func speedTuple(t *testing.T, s *Schema, id float64, mu, s2 float64, n int) *Tuple {
	t.Helper()
	nd, err := dist.NewNormal(mu, s2)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := NewTuple(s, []randvar.Field{randvar.Det(id), {Dist: nd, N: n}})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := NewSchema("x"); err == nil {
		t.Error("no columns: want error")
	}
	if _, err := NewSchema("x", Column{Name: "a"}, Column{Name: "A"}); err == nil {
		t.Error("case-insensitive duplicate: want error")
	}
	if _, err := NewSchema("x", Column{Name: ""}); err == nil {
		t.Error("empty column name: want error")
	}
}

func TestSchemaLookups(t *testing.T) {
	s := testSchema(t)
	if i, ok := s.Index("SPEED"); !ok || i != 1 {
		t.Errorf("Index(SPEED) = %d, %v", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index(nope) should fail")
	}
	c, err := s.Column("speed")
	if err != nil || !c.Probabilistic {
		t.Errorf("Column(speed) = %+v, %v", c, err)
	}
	if _, err := s.Column("nope"); err == nil {
		t.Error("Column(nope): want error")
	}
	proj, err := s.Project("p", "speed")
	if err != nil || proj.Arity() != 1 {
		t.Fatalf("Project: %v", err)
	}
	if _, err := s.Project("p", "ghost"); err == nil {
		t.Error("Project(ghost): want error")
	}
	ext, err := s.Extend("e", Column{Name: "extra"})
	if err != nil || ext.Arity() != 3 {
		t.Fatalf("Extend: %v", err)
	}
	if _, err := s.Extend("e", Column{Name: "id"}); err == nil {
		t.Error("Extend duplicate: want error")
	}
	if got := s.String(); got != "s(id, speed DIST)" {
		t.Errorf("String = %q", got)
	}
}

func TestTupleValidation(t *testing.T) {
	s := testSchema(t)
	if _, err := NewTuple(nil, nil); err == nil {
		t.Error("nil schema: want error")
	}
	if _, err := NewTuple(s, []randvar.Field{randvar.Det(1)}); err == nil {
		t.Error("arity mismatch: want error")
	}
	if _, err := NewTuple(s, []randvar.Field{randvar.Det(1), {}}); err == nil {
		t.Error("invalid field: want error")
	}
	tp := speedTuple(t, s, 1, 60, 25, 10)
	if err := tp.Validate(); err != nil {
		t.Error(err)
	}
	tp.Prob = 1.5
	if tp.Validate() == nil {
		t.Error("prob > 1: want error")
	}
	tp.Prob = 0.5
	tp.ProbN = -1
	if tp.Validate() == nil {
		t.Error("negative ProbN: want error")
	}
}

func TestTupleFieldAndClone(t *testing.T) {
	s := testSchema(t)
	tp := speedTuple(t, s, 7, 60, 25, 10)
	f, err := tp.Field("speed")
	if err != nil || f.N != 10 {
		t.Fatalf("Field(speed) = %+v, %v", f, err)
	}
	if _, err := tp.Field("ghost"); err == nil {
		t.Error("Field(ghost): want error")
	}
	c := tp.Clone()
	c.Fields[0] = randvar.Det(99)
	if tp.Fields[0].Dist.Mean() == 99 {
		t.Error("Clone shares field slice")
	}
}

func TestCountWindow(t *testing.T) {
	w, err := NewCountWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCountWindow(0); err == nil {
		t.Error("size 0: want error")
	}
	s := testSchema(t)
	var evicted []*Tuple
	for i := 0; i < 5; i++ {
		tp := speedTuple(t, s, float64(i), 60, 25, 10)
		tp.Seq = uint64(i)
		if old := w.Push(tp); old != nil {
			evicted = append(evicted, old)
		}
	}
	if w.Len() != 3 || !w.Full() || w.Cap() != 3 {
		t.Fatalf("window state: len=%d full=%v", w.Len(), w.Full())
	}
	if len(evicted) != 2 || evicted[0].Seq != 0 || evicted[1].Seq != 1 {
		t.Fatalf("evicted: %v", evicted)
	}
	tuples := w.Tuples()
	for i, want := range []uint64{2, 3, 4} {
		if tuples[i].Seq != want {
			t.Errorf("window[%d].Seq = %d, want %d", i, tuples[i].Seq, want)
		}
	}
	var seen []uint64
	w.Do(func(tp *Tuple) { seen = append(seen, tp.Seq) })
	if len(seen) != 3 || seen[0] != 2 || seen[2] != 4 {
		t.Errorf("Do order: %v", seen)
	}
}

func TestTimeWindow(t *testing.T) {
	w, err := NewTimeWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTimeWindow(0); err == nil {
		t.Error("span 0: want error")
	}
	s := testSchema(t)
	push := func(ts int64) []*Tuple {
		tp := speedTuple(t, s, 0, 60, 25, 10)
		tp.Time = ts
		ev, err := w.Push(tp)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	push(0)
	push(5)
	if ev := push(9); len(ev) != 0 {
		t.Errorf("premature eviction: %v", ev)
	}
	if ev := push(11); len(ev) != 1 || ev[0].Time != 0 {
		t.Errorf("eviction at t=11: %v", ev)
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d, want 3", w.Len())
	}
	// Out-of-order push errors.
	tp := speedTuple(t, s, 0, 60, 25, 10)
	tp.Time = 1
	if _, err := w.Push(tp); err == nil {
		t.Error("out-of-order push: want error")
	}
}

func TestAggregateGaussianFastPath(t *testing.T) {
	e := randvar.NewEvaluator(dist.NewRand(1))
	fields := make([]randvar.Field, 4)
	for i := range fields {
		nd, _ := dist.NewNormal(10, 4)
		fields[i] = randvar.Field{Dist: nd, N: 20}
	}
	res, err := Aggregate(e, Avg, fields)
	if err != nil {
		t.Fatal(err)
	}
	nd, ok := res.Field.Dist.(dist.Normal)
	if !ok {
		t.Fatalf("AVG of Gaussians should be Gaussian, got %T", res.Field.Dist)
	}
	approx(t, "AVG mean", nd.Mu, 10, 1e-12)
	approx(t, "AVG var", nd.Sigma2, 1, 1e-12) // 4·4/16
	if res.Field.N != 20 {
		t.Errorf("d.f. size = %d, want 20", res.Field.N)
	}

	sum, err := Aggregate(e, Sum, fields)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "SUM mean", sum.Field.Dist.Mean(), 40, 1e-12)
	approx(t, "SUM var", sum.Field.Dist.Variance(), 16, 1e-12)
}

func TestAggregateMinMaxCount(t *testing.T) {
	e := randvar.NewEvaluator(dist.NewRand(2))
	u1, _ := dist.NewUniform(0, 1)
	u2, _ := dist.NewUniform(0, 1)
	fields := []randvar.Field{{Dist: u1, N: 10}, {Dist: u2, N: 15}}
	mn, err := Aggregate(e, Min, fields)
	if err != nil {
		t.Fatal(err)
	}
	// E[min(U,U)] = 1/3.
	approx(t, "MIN mean", mn.Field.Dist.Mean(), 1.0/3, 0.05)
	mx, err := Aggregate(e, Max, fields)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "MAX mean", mx.Field.Dist.Mean(), 2.0/3, 0.05)
	cnt, err := Aggregate(e, Count, fields)
	if err != nil {
		t.Fatal(err)
	}
	if !cnt.Field.IsDet() || cnt.Field.Dist.Mean() != 2 {
		t.Errorf("COUNT = %v", cnt.Field)
	}
	if _, err := Aggregate(e, Avg, nil); err == nil {
		t.Error("empty aggregate: want error")
	}
	if _, err := Aggregate(e, AggKind(9), fields); err == nil {
		t.Error("unknown aggregate: want error")
	}
}

func TestParseAggKind(t *testing.T) {
	for s, want := range map[string]AggKind{"AVG": Avg, "sum": Sum, "COUNT": Count, "min": Min, "MAX": Max} {
		got, err := ParseAggKind(s)
		if err != nil || got != want {
			t.Errorf("ParseAggKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAggKind("MEDIAN"); err == nil {
		t.Error("unknown aggregate name: want error")
	}
}

func TestProbFilter(t *testing.T) {
	s := testSchema(t)
	f, err := NewProbFilter(s, "speed", CmpGT, 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Speed ~ N(60, 25): P(>60) = 0.5.
	tp := speedTuple(t, s, 1, 60, 25, 12)
	out, err := f.Process(tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("emitted %d tuples", len(out))
	}
	approx(t, "tuple prob", out[0].Prob, 0.5, 1e-12)
	if out[0].ProbN != 12 {
		t.Errorf("ProbN = %d, want 12 (Lemma 3)", out[0].ProbN)
	}
	// Impossible predicate drops the tuple.
	f2, _ := NewProbFilter(s, "speed", CmpLT, -1e9, 0)
	out, err = f2.Process(tp)
	if err != nil || len(out) != 0 {
		t.Errorf("impossible predicate: %v, %v", out, err)
	}
	// MinProb drops low-probability results.
	f3, _ := NewProbFilter(s, "speed", CmpGT, 75, 0.1) // P ≈ 0.0013
	out, err = f3.Process(tp)
	if err != nil || len(out) != 0 {
		t.Errorf("MinProb cut: %v, %v", out, err)
	}
	// Bad construction.
	if _, err := NewProbFilter(s, "ghost", CmpGT, 0, 0); err == nil {
		t.Error("unknown column: want error")
	}
	if _, err := NewProbFilter(s, "speed", CmpGT, 0, 2); err == nil {
		t.Error("MinProb > 1: want error")
	}
}

func TestProbFilterProbNLemma3(t *testing.T) {
	s := testSchema(t)
	f, _ := NewProbFilter(s, "speed", CmpGT, 55, 0)
	tp := speedTuple(t, s, 1, 60, 25, 30)
	tp.ProbN = 8 // existing tuple uncertainty from an earlier filter
	out, err := f.Process(tp)
	if err != nil || len(out) != 1 {
		t.Fatal(err)
	}
	if out[0].ProbN != 8 {
		t.Errorf("ProbN = %d, want min(8, 30) = 8", out[0].ProbN)
	}
}

func TestThresholdFilter(t *testing.T) {
	s := testSchema(t)
	// The intro's predicate: with probability ≥ 2/3, Delay > 50.
	f, err := NewThresholdFilter(s, "speed", CmpGT, 50, 2.0/3)
	if err != nil {
		t.Fatal(err)
	}
	pass := speedTuple(t, s, 1, 60, 25, 3) // P(>50) ≈ 0.977
	out, err := f.Process(pass)
	if err != nil || len(out) != 1 {
		t.Errorf("should pass: %v, %v", out, err)
	}
	fail := speedTuple(t, s, 2, 48, 25, 50) // P(>50) ≈ 0.34
	out, err = f.Process(fail)
	if err != nil || len(out) != 0 {
		t.Errorf("should fail: %v, %v", out, err)
	}
	if _, err := NewThresholdFilter(s, "speed", CmpGT, 0, 1.5); err == nil {
		t.Error("tau > 1: want error")
	}
	if _, err := NewThresholdFilter(s, "ghost", CmpGT, 0, 0.5); err == nil {
		t.Error("unknown column: want error")
	}
}

func TestFuncFilter(t *testing.T) {
	s := testSchema(t)
	f, err := NewFuncFilter(s, "id>2", func(tp *Tuple) (bool, error) {
		return tp.Fields[0].Dist.Mean() > 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Process(speedTuple(t, s, 5, 60, 25, 10))
	if err != nil || len(out) != 1 {
		t.Errorf("id=5 should pass: %v, %v", out, err)
	}
	out, err = f.Process(speedTuple(t, s, 1, 60, 25, 10))
	if err != nil || len(out) != 0 {
		t.Errorf("id=1 should fail: %v, %v", out, err)
	}
	if _, err := NewFuncFilter(s, "x", nil); err == nil {
		t.Error("nil predicate: want error")
	}
}

func TestProject(t *testing.T) {
	s := testSchema(t)
	p, err := NewProject(s, "speed")
	if err != nil {
		t.Fatal(err)
	}
	tp := speedTuple(t, s, 1, 60, 25, 10)
	tp.Prob = 0.7
	tp.ProbN = 9
	out, err := p.Process(tp)
	if err != nil || len(out) != 1 {
		t.Fatal(err)
	}
	if out[0].Schema.Arity() != 1 || out[0].Prob != 0.7 || out[0].ProbN != 9 {
		t.Errorf("projected tuple: %+v", out[0])
	}
	if _, err := NewProject(s, "ghost"); err == nil {
		t.Error("unknown column: want error")
	}
}

func TestMapOp(t *testing.T) {
	s := testSchema(t)
	e := randvar.NewEvaluator(dist.NewRand(3))
	m, err := NewMapOp(s, "speed2", true, func(tp *Tuple) (randvar.Field, error) {
		res, err := e.Square(tp.Fields[1])
		return res.Field, err
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Process(speedTuple(t, s, 1, 10, 1, 20))
	if err != nil || len(out) != 1 {
		t.Fatal(err)
	}
	if out[0].Schema.Arity() != 3 {
		t.Fatalf("extended arity = %d", out[0].Schema.Arity())
	}
	// E[X²] = μ² + σ² = 101.
	approx(t, "mapped mean", out[0].Fields[2].Dist.Mean(), 101, 3)
	if out[0].Fields[2].N != 20 {
		t.Errorf("mapped N = %d, want 20", out[0].Fields[2].N)
	}
	if _, err := NewMapOp(s, "x", true, nil); err == nil {
		t.Error("nil expr: want error")
	}
}

func TestWindowAggPipeline(t *testing.T) {
	s := testSchema(t)
	e := randvar.NewEvaluator(dist.NewRand(4))
	agg, err := NewWindowAgg(s, Avg, "speed", 3, e)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []*Tuple
	for i := 0; i < 5; i++ {
		out, err := agg.Process(speedTuple(t, s, float64(i), 60, 25, 20))
		if err != nil {
			t.Fatal(err)
		}
		emitted = append(emitted, out...)
	}
	// Window size 3: first output after the 3rd input → 3 outputs.
	if len(emitted) != 3 {
		t.Fatalf("emitted %d aggregates, want 3", len(emitted))
	}
	for _, tp := range emitted {
		nd, ok := tp.Fields[0].Dist.(dist.Normal)
		if !ok {
			t.Fatalf("AVG of Gaussians should stay Gaussian, got %T", tp.Fields[0].Dist)
		}
		approx(t, "window AVG mean", nd.Mu, 60, 1e-9)
		approx(t, "window AVG var", nd.Sigma2, 25.0/3, 1e-9)
	}
	if _, err := NewWindowAgg(s, Avg, "ghost", 3, e); err == nil {
		t.Error("unknown column: want error")
	}
	if _, err := NewWindowAgg(s, Avg, "speed", 0, e); err == nil {
		t.Error("size 0: want error")
	}
	if _, err := NewWindowAgg(s, Avg, "speed", 3, nil); err == nil {
		t.Error("nil evaluator: want error")
	}
}

func TestWindowAggEmitPartial(t *testing.T) {
	s := testSchema(t)
	e := randvar.NewEvaluator(dist.NewRand(4))
	agg, _ := NewWindowAgg(s, Count, "speed", 3, e)
	agg.EmitPartial = true
	out, err := agg.Process(speedTuple(t, s, 0, 60, 25, 20))
	if err != nil || len(out) != 1 {
		t.Fatalf("partial emit: %v, %v", out, err)
	}
	if out[0].Fields[0].Dist.Mean() != 1 {
		t.Errorf("partial COUNT = %v", out[0].Fields[0].Dist.Mean())
	}
}

func TestPipeline(t *testing.T) {
	s := testSchema(t)
	f, _ := NewProbFilter(s, "speed", CmpGT, 60, 0)
	p, _ := NewProject(s, "speed")
	pipe, err := NewPipeline(f, p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pipe.Process(speedTuple(t, s, 1, 60, 25, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Schema.Arity() != 1 {
		t.Fatalf("pipeline output: %v", out)
	}
	approx(t, "pipeline prob", out[0].Prob, 0.5, 1e-12)
	if pipe.OutSchema().Arity() != 1 {
		t.Error("OutSchema should come from the last stage")
	}
	if _, err := NewPipeline(); err == nil {
		t.Error("empty pipeline: want error")
	}
	if _, err := NewPipeline(nil); err == nil {
		t.Error("nil operator: want error")
	}
	// A dropping filter short-circuits.
	f2, _ := NewProbFilter(s, "speed", CmpGT, 1e9, 0)
	pipe2, _ := NewPipeline(f2, p)
	out, err = pipe2.Process(speedTuple(t, s, 1, 60, 25, 10))
	if err != nil || out != nil {
		t.Errorf("dropped tuple: %v, %v", out, err)
	}
}

func TestAttachAccuracy(t *testing.T) {
	s := testSchema(t)
	var got *accuracy.Info
	op, err := NewAttachAccuracy(s, "speed", 0.9, func(_ *Tuple, info *accuracy.Info) {
		got = info
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := op.Process(speedTuple(t, s, 1, 60, 25, 20))
	if err != nil || len(out) != 1 {
		t.Fatal(err)
	}
	if got == nil || got.N != 20 || got.Level != 0.9 {
		t.Fatalf("accuracy info: %+v", got)
	}
	if !got.Mean.Contains(60) {
		t.Error("mean interval should contain the estimate")
	}
	// Fields with no sample size are passed through silently.
	got = nil
	out, err = op.Process(speedTuple(t, s, 1, 60, 25, 0))
	if err != nil || len(out) != 1 || got != nil {
		t.Errorf("no-sample field: %v, %v, info=%v", out, err, got)
	}
	if _, err := NewAttachAccuracy(s, "ghost", 0.9, func(*Tuple, *accuracy.Info) {}); err == nil {
		t.Error("unknown column: want error")
	}
	if _, err := NewAttachAccuracy(s, "speed", 0.9, nil); err == nil {
		t.Error("nil callback: want error")
	}
}

func TestExpectedCountAndColumnFields(t *testing.T) {
	s := testSchema(t)
	a := speedTuple(t, s, 1, 60, 25, 10)
	b := speedTuple(t, s, 2, 70, 25, 10)
	b.Prob = 0.5
	approx(t, "expected count", ExpectedCount([]*Tuple{a, b}), 1.5, 1e-12)
	fields, err := ColumnFields([]*Tuple{a, b}, "speed")
	if err != nil || len(fields) != 2 {
		t.Fatal(err)
	}
	approx(t, "field 1 mean", fields[1].Dist.Mean(), 70, 1e-12)
	if _, err := ColumnFields([]*Tuple{a}, "ghost"); err == nil {
		t.Error("unknown column: want error")
	}
	if f, err := ColumnFields(nil, "speed"); err != nil || f != nil {
		t.Error("empty input should return nil, nil")
	}
}
