package stream

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/randvar"
)

// Tuple is one element of an uncertain stream (§II-A): an ordered list of
// fields — each, in general, a probability distribution with a retained
// sample size — plus a membership probability Prob (tuple uncertainty) and
// the d.f. sample size ProbN behind that probability, so its accuracy can
// be reported per Theorem 1.
type Tuple struct {
	Schema *Schema
	Fields []randvar.Field
	// Prob is the probability the tuple exists in the stream; 1 for
	// source tuples, possibly < 1 in query results.
	Prob float64
	// ProbN is the d.f. sample size behind Prob; 0 means Prob is exact.
	ProbN int
	// Seq is the tuple's sequence number within its stream.
	Seq uint64
	// Time is the event timestamp (logical or unix nanoseconds; the
	// windows only compare values).
	Time int64
}

// NewTuple builds a tuple over schema with membership probability 1,
// validating the field count and each field.
func NewTuple(schema *Schema, fields []randvar.Field) (*Tuple, error) {
	if schema == nil {
		return nil, fmt.Errorf("stream: tuple with nil schema")
	}
	if len(fields) != schema.Arity() {
		return nil, fmt.Errorf("stream: schema %q has %d columns, got %d fields",
			schema.Name, schema.Arity(), len(fields))
	}
	for i, f := range fields {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("stream: field %q: %w", schema.Columns[i].Name, err)
		}
	}
	return &Tuple{
		Schema: schema,
		Fields: append([]randvar.Field(nil), fields...),
		Prob:   1,
	}, nil
}

// Validate checks structural invariants (field arity, probability range).
func (t *Tuple) Validate() error {
	if t.Schema == nil {
		return fmt.Errorf("stream: tuple with nil schema")
	}
	if len(t.Fields) != t.Schema.Arity() {
		return fmt.Errorf("stream: tuple arity %d, schema %q wants %d",
			len(t.Fields), t.Schema.Name, t.Schema.Arity())
	}
	if t.Prob < 0 || t.Prob > 1 || math.IsNaN(t.Prob) {
		return fmt.Errorf("stream: tuple probability %v outside [0,1]", t.Prob)
	}
	if t.ProbN < 0 {
		return fmt.Errorf("stream: tuple ProbN %d negative", t.ProbN)
	}
	for i, f := range t.Fields {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("stream: field %q: %w", t.Schema.Columns[i].Name, err)
		}
	}
	return nil
}

// Field returns the named field.
func (t *Tuple) Field(name string) (randvar.Field, error) {
	i, ok := t.Schema.Index(name)
	if !ok {
		return randvar.Field{}, fmt.Errorf("stream: tuple has no field %q", name)
	}
	return t.Fields[i], nil
}

// Clone returns a deep-enough copy: the field slice is copied (the
// distributions themselves are immutable by convention).
func (t *Tuple) Clone() *Tuple {
	out := *t
	out.Fields = append([]randvar.Field(nil), t.Fields...)
	return &out
}

func (t *Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{", t.Schema.Name)
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%v", t.Schema.Columns[i].Name, f.Dist)
		if f.N > 0 {
			fmt.Fprintf(&b, "(n=%d)", f.N)
		}
	}
	if t.Prob != 1 {
		fmt.Fprintf(&b, " | p=%.4g", t.Prob)
		if t.ProbN > 0 {
			fmt.Fprintf(&b, "(n=%d)", t.ProbN)
		}
	}
	b.WriteByte('}')
	return b.String()
}
