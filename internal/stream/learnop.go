package stream

import (
	"errors"
	"fmt"

	"repro/internal/learn"
	"repro/internal/randvar"
)

// LearnOp is the streaming version of the paper's learning step (§I,
// Figure 1): raw observation tuples (key, value) arrive one at a time; the
// operator keeps a sliding buffer of recent raw values per key and, for
// each arrival, re-learns that key's distribution and emits a learned
// tuple (key, distribution) whose field carries the buffer's sample size.
//
// This is how "the stream database system transforms the three (fifty,
// respectively) raw records of road 19 (20) into a single record with a
// distribution in the Delay field" — continuously.
//
// With HalfLife > 0 the learner weights observations by recency
// (exponential decay over the tuple Time axis, the paper's §VII future
// work) and the emitted sample size is the Kish effective size.
type LearnOp struct {
	// KeyCol and ValueCol name the raw stream's columns.
	KeyCol, ValueCol string
	// BufferSize is the per-key raw window (count-based).
	BufferSize int
	// MinSamples defers emission until a key has at least this many raw
	// observations (default 2).
	MinSamples int
	// Learner fits the distribution (default Gaussian MLE). Ignored when
	// HalfLife > 0 (weighted Gaussian learning is used).
	Learner learn.Learner
	// HalfLife enables recency weighting: an observation's weight halves
	// every HalfLife units of tuple Time. 0 disables weighting.
	HalfLife float64

	keyIdx, valIdx int
	out            *Schema
	buffers        map[float64]*rawBuffer
}

// rawBuffer is one key's sliding raw window.
type rawBuffer struct {
	values []float64
	times  []int64
	head   int
	count  int
}

func newRawBuffer(size int) *rawBuffer {
	return &rawBuffer{values: make([]float64, size), times: make([]int64, size)}
}

func (b *rawBuffer) push(v float64, ts int64) {
	if b.count < len(b.values) {
		idx := (b.head + b.count) % len(b.values)
		b.values[idx] = v
		b.times[idx] = ts
		b.count++
		return
	}
	b.values[b.head] = v
	b.times[b.head] = ts
	b.head = (b.head + 1) % len(b.values)
}

// snapshot returns the buffered values and times oldest-first.
func (b *rawBuffer) snapshot() (vals []float64, times []int64) {
	vals = make([]float64, b.count)
	times = make([]int64, b.count)
	for i := 0; i < b.count; i++ {
		idx := (b.head + i) % len(b.values)
		vals[i] = b.values[idx]
		times[i] = b.times[idx]
	}
	return vals, times
}

// NewLearnOp builds a LearnOp over the raw input schema. The output schema
// has the key column and a probabilistic column named after ValueCol.
func NewLearnOp(in *Schema, keyCol, valueCol string, bufferSize int) (*LearnOp, error) {
	keyIdx, ok := in.Index(keyCol)
	if !ok {
		return nil, fmt.Errorf("stream: learn key column %q not in schema %q", keyCol, in.Name)
	}
	valIdx, ok := in.Index(valueCol)
	if !ok {
		return nil, fmt.Errorf("stream: learn value column %q not in schema %q", valueCol, in.Name)
	}
	if in.Columns[keyIdx].Probabilistic {
		return nil, fmt.Errorf("stream: learn key column %q must be deterministic", keyCol)
	}
	if bufferSize < 2 {
		return nil, fmt.Errorf("stream: learn buffer size %d, need ≥ 2", bufferSize)
	}
	out, err := NewSchema(in.Name+"_learned",
		Column{Name: in.Columns[keyIdx].Name},
		Column{Name: in.Columns[valIdx].Name, Probabilistic: true},
	)
	if err != nil {
		return nil, err
	}
	return &LearnOp{
		KeyCol:     keyCol,
		ValueCol:   valueCol,
		BufferSize: bufferSize,
		MinSamples: 2,
		keyIdx:     keyIdx,
		valIdx:     valIdx,
		out:        out,
		buffers:    make(map[float64]*rawBuffer),
	}, nil
}

func (l *LearnOp) Name() string {
	return fmt.Sprintf("learn(%s by %s, buf=%d)", l.ValueCol, l.KeyCol, l.BufferSize)
}

// OutSchema returns the learned-tuple schema.
func (l *LearnOp) OutSchema() *Schema { return l.out }

// Process buffers the raw observation and emits a freshly learned tuple
// for its key once MinSamples observations are available.
func (l *LearnOp) Process(t *Tuple) ([]*Tuple, error) {
	rawVal := t.Fields[l.valIdx]
	if !rawVal.IsDet() {
		return nil, errors.New("stream: learn input values must be deterministic raw observations")
	}
	key := t.Fields[l.keyIdx].Dist.Mean()
	buf, ok := l.buffers[key]
	if !ok {
		buf = newRawBuffer(l.BufferSize)
		l.buffers[key] = buf
	}
	buf.push(rawVal.Dist.Mean(), t.Time)
	min := l.MinSamples
	if min < 2 {
		min = 2
	}
	if buf.count < min {
		return nil, nil
	}
	vals, times := buf.snapshot()
	var field randvar.Field
	if l.HalfLife > 0 {
		now := t.Time
		ages := make([]float64, len(times))
		for i, ts := range times {
			age := float64(now - ts)
			if age < 0 {
				age = 0
			}
			ages[i] = age
		}
		ws, err := learn.ExponentialDecay(vals, ages, l.HalfLife)
		if err != nil {
			return nil, err
		}
		d, neff, err := learn.WeightedGaussianLearner(ws)
		if err != nil {
			return nil, err
		}
		field = randvar.Field{Dist: d, N: neff}
	} else {
		learner := l.Learner
		if learner == nil {
			learner = learn.GaussianLearner{}
		}
		d, err := learner.Learn(learn.NewSample(vals))
		if err != nil {
			return nil, err
		}
		field = randvar.Field{Dist: d, N: len(vals)}
	}
	out := &Tuple{
		Schema: l.out,
		Fields: []randvar.Field{t.Fields[l.keyIdx], field},
		Prob:   1,
		Seq:    t.Seq,
		Time:   t.Time,
	}
	return []*Tuple{out}, nil
}

// Keys returns the number of keys currently buffered.
func (l *LearnOp) Keys() int { return len(l.buffers) }
