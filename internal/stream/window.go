package stream

import (
	"fmt"
)

// CountWindow is a count-based sliding window of fixed capacity: pushing a
// tuple evicts the oldest once the window is full. It is the window of the
// paper's throughput experiment ("a simple count-based sliding window AVG
// query with a window size of 1000", §V-C).
//
// The implementation is a ring buffer: Push is O(1) and Tuples materializes
// the window in arrival order on demand.
type CountWindow struct {
	buf   []*Tuple
	head  int // index of the oldest tuple
	count int
}

// NewCountWindow returns a window holding the most recent size tuples.
func NewCountWindow(size int) (*CountWindow, error) {
	if size < 1 {
		return nil, fmt.Errorf("stream: count window size %d, need ≥ 1", size)
	}
	return &CountWindow{buf: make([]*Tuple, size)}, nil
}

// Push adds t, returning the evicted tuple (nil while the window is
// filling).
func (w *CountWindow) Push(t *Tuple) *Tuple {
	if w.count < len(w.buf) {
		w.buf[(w.head+w.count)%len(w.buf)] = t
		w.count++
		return nil
	}
	old := w.buf[w.head]
	w.buf[w.head] = t
	w.head = (w.head + 1) % len(w.buf)
	return old
}

// Len returns the number of tuples currently in the window.
func (w *CountWindow) Len() int { return w.count }

// Full reports whether the window has reached capacity.
func (w *CountWindow) Full() bool { return w.count == len(w.buf) }

// Cap returns the window capacity.
func (w *CountWindow) Cap() int { return len(w.buf) }

// Tuples returns the window contents oldest-first.
func (w *CountWindow) Tuples() []*Tuple {
	return w.AppendTuples(nil)
}

// AppendTuples appends the window contents oldest-first to dst and returns
// the extended slice. Passing a reused dst[:0] lets per-push hot paths read
// the window without allocating a fresh slice each time.
func (w *CountWindow) AppendTuples(dst []*Tuple) []*Tuple {
	for i := 0; i < w.count; i++ {
		dst = append(dst, w.buf[(w.head+i)%len(w.buf)])
	}
	return dst
}

// Do calls fn for each tuple oldest-first without allocating.
func (w *CountWindow) Do(fn func(*Tuple)) {
	for i := 0; i < w.count; i++ {
		fn(w.buf[(w.head+i)%len(w.buf)])
	}
}

// RestoreTuples replaces the window contents with tuples (oldest-first),
// e.g. when a checkpointed window is reloaded during crash recovery. It
// fails if tuples exceed the window capacity.
func (w *CountWindow) RestoreTuples(tuples []*Tuple) error {
	if len(tuples) > len(w.buf) {
		return fmt.Errorf("stream: restoring %d tuples into count window of %d",
			len(tuples), len(w.buf))
	}
	for i := range w.buf {
		w.buf[i] = nil
	}
	copy(w.buf, tuples)
	w.head = 0
	w.count = len(tuples)
	return nil
}

// TimeWindow is a time-based sliding window: it retains tuples whose Time
// is within Span of the most recently pushed tuple's Time. Tuples must be
// pushed in non-decreasing Time order.
type TimeWindow struct {
	span int64
	buf  []*Tuple
}

// NewTimeWindow returns a window spanning span time units.
func NewTimeWindow(span int64) (*TimeWindow, error) {
	if span <= 0 {
		return nil, fmt.Errorf("stream: time window span %d, need > 0", span)
	}
	return &TimeWindow{span: span}, nil
}

// Push adds t and returns the tuples evicted because they fell out of the
// span. It returns an error if t is older than the newest tuple already in
// the window (out-of-order arrival).
func (w *TimeWindow) Push(t *Tuple) ([]*Tuple, error) {
	if n := len(w.buf); n > 0 && t.Time < w.buf[n-1].Time {
		return nil, fmt.Errorf("stream: out-of-order tuple: time %d after %d",
			t.Time, w.buf[n-1].Time)
	}
	w.buf = append(w.buf, t)
	// Tuples with age strictly greater than the span are evicted; a tuple
	// exactly span old is still in the window.
	cutoff := t.Time - w.span
	i := 0
	for i < len(w.buf) && w.buf[i].Time < cutoff {
		i++
	}
	if i == 0 {
		return nil, nil
	}
	evicted := append([]*Tuple(nil), w.buf[:i]...)
	w.buf = append(w.buf[:0], w.buf[i:]...)
	return evicted, nil
}

// Len returns the number of tuples currently in the window.
func (w *TimeWindow) Len() int { return len(w.buf) }

// Tuples returns the window contents oldest-first.
func (w *TimeWindow) Tuples() []*Tuple {
	return append([]*Tuple(nil), w.buf...)
}

// AppendTuples appends the window contents oldest-first to dst and returns
// the extended slice.
func (w *TimeWindow) AppendTuples(dst []*Tuple) []*Tuple {
	return append(dst, w.buf...)
}

// RestoreTuples replaces the window contents with tuples (oldest-first, in
// non-decreasing Time order), e.g. when a checkpointed window is reloaded
// during crash recovery. No span-based eviction is applied: the contents
// are restored exactly as captured.
func (w *TimeWindow) RestoreTuples(tuples []*Tuple) error {
	for i := 1; i < len(tuples); i++ {
		if tuples[i].Time < tuples[i-1].Time {
			return fmt.Errorf("stream: restoring out-of-order tuples: time %d after %d",
				tuples[i].Time, tuples[i-1].Time)
		}
	}
	w.buf = append(w.buf[:0], tuples...)
	return nil
}
