package stream

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/randvar"
)

// mixedTuple builds a distinct, fully-identifiable tuple: column 0 carries
// the index as a Point, column 1 cycles through Point/Normal/Histogram so
// the "other" slot recycling is exercised through eviction.
func mixedTuple(t *testing.T, s *Schema, i int) *Tuple {
	t.Helper()
	v := float64(i)
	var f randvar.Field
	switch i % 3 {
	case 0:
		f = randvar.Field{Dist: dist.Point{V: v + 0.5}, N: i % 7}
	case 1:
		nd, err := dist.NewNormal(v, 1+float64(i%5))
		if err != nil {
			t.Fatal(err)
		}
		f = randvar.Field{Dist: nd, N: 10 + i%7}
	default:
		h, err := dist.NewHistogram([]float64{v, v + 1, v + 2}, []float64{0.25, 0.75})
		if err != nil {
			t.Fatal(err)
		}
		f = randvar.Field{Dist: h, N: 0}
	}
	return &Tuple{
		Schema: s,
		Fields: []randvar.Field{randvar.Det(v), f},
		Prob:   1 - 1/(v+2),
		ProbN:  i % 11,
		Seq:    uint64(i + 1),
		Time:   int64(1_700_000_000 + i),
	}
}

func tuplesEqual(a, b *Tuple) bool {
	return a.Prob == b.Prob && a.ProbN == b.ProbN && a.Seq == b.Seq &&
		a.Time == b.Time && reflect.DeepEqual(a.Fields, b.Fields)
}

// TestColumnWindowAliasing pushes 10k+ distinct tuples through a small ring
// and verifies — for every value, at every checkpoint — that the window
// holds exactly the most recent tuples with no aliasing between slots.
func TestColumnWindowAliasing(t *testing.T) {
	s := testSchema(t)
	const size, total = 257, 10_240
	w, err := NewColumnWindow(s, size)
	if err != nil {
		t.Fatal(err)
	}
	pushed := make([]*Tuple, 0, total)
	for i := 0; i < total; i++ {
		tp := mixedTuple(t, s, i)
		pushed = append(pushed, tp)
		w.Push(tp)
		// Check at a stride plus the interesting boundaries; each check
		// verifies every live value.
		if i%997 != 0 && i != size-1 && i != size && i != total-1 {
			continue
		}
		lo := 0
		if i+1 > size {
			lo = i + 1 - size
		}
		got := w.Tuples()
		if len(got) != i+1-lo {
			t.Fatalf("after %d pushes: len = %d, want %d", i+1, len(got), i+1-lo)
		}
		for j, g := range got {
			if want := pushed[lo+j]; !tuplesEqual(g, want) {
				t.Fatalf("after %d pushes: tuple %d = %+v, want %+v", i+1, j, g, want)
			}
		}
	}
	if !w.Full() || w.Len() != size || w.Cap() != size {
		t.Fatalf("Full/Len/Cap = %v/%d/%d", w.Full(), w.Len(), w.Cap())
	}
}

// TestColumnWindowAggregateEquivalence checks AggregateColumn against the
// row path for every aggregate kind, both on the Gaussian fast path and on
// the Monte Carlo fallback, demanding bit-identical results and identical
// RNG consumption.
func TestColumnWindowAggregateEquivalence(t *testing.T) {
	s := testSchema(t)
	for _, gaussianOnly := range []bool{true, false} {
		name := "fallback"
		if gaussianOnly {
			name = "gaussian"
		}
		t.Run(name, func(t *testing.T) {
			const size = 64
			row, err := NewCountWindow(size)
			if err != nil {
				t.Fatal(err)
			}
			col, err := NewColumnWindow(s, size)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < size*2+7; i++ {
				var tp *Tuple
				if gaussianOnly {
					tp = speedTuple(t, s, float64(i), 3+float64(i%9), 0.5+float64(i%4), 10+i%5)
				} else {
					tp = mixedTuple(t, s, i)
				}
				row.Push(tp.Clone())
				col.Push(tp)
			}
			var scratch []randvar.Field
			for _, kind := range []AggKind{Avg, Sum, Count, Min, Max} {
				eRow := randvar.NewEvaluator(dist.NewRand(42))
				eCol := randvar.NewEvaluator(dist.NewRand(42))
				fields, err := ColumnFields(row.Tuples(), "speed")
				if err != nil {
					t.Fatal(err)
				}
				want, werr := Aggregate(eRow, kind, fields)
				got, gerr := AggregateColumn(eCol, kind, col, 1, &scratch)
				if (werr == nil) != (gerr == nil) || (werr != nil && werr.Error() != gerr.Error()) {
					t.Fatalf("%v: error mismatch: row %v, col %v", kind, werr, gerr)
				}
				if werr != nil {
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%v: row %+v, col %+v", kind, want, got)
				}
				if a, b := eRow.RNG().Uint64(), eCol.RNG().Uint64(); a != b {
					t.Errorf("%v: RNG diverged after aggregate (%d vs %d)", kind, a, b)
				}
			}
			// ExpectedProb matches the row-side expected count.
			if want, got := ExpectedCount(row.Tuples()), col.ExpectedProb(); want != got {
				t.Errorf("ExpectedProb = %v, want %v", got, want)
			}
		})
	}
}

// TestColumnWindowStateRoundTrip snapshots a wrapped ring with Other slots
// and checks the linearized state restores bit-identically — directly via
// RestoreTuples and across forms via ColumnWindowState.Tuples — and that
// pushes after restore behave exactly like pushes into the original.
func TestColumnWindowStateRoundTrip(t *testing.T) {
	s := testSchema(t)
	const size = 19
	w, err := NewColumnWindow(s, size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < size*3+5; i++ { // wrapped ring, head != 0
		w.Push(mixedTuple(t, s, i))
	}
	st := w.State()
	if st.Len() != size {
		t.Fatalf("state len = %d, want %d", st.Len(), size)
	}
	if err := st.Validate(s.Arity()); err != nil {
		t.Fatal(err)
	}
	bridged, err := st.Tuples(s)
	if err != nil {
		t.Fatal(err)
	}
	orig := w.Tuples()
	if len(bridged) != len(orig) {
		t.Fatalf("bridged len = %d, want %d", len(bridged), len(orig))
	}
	for i := range orig {
		if !tuplesEqual(bridged[i], orig[i]) {
			t.Fatalf("bridged tuple %d = %+v, want %+v", i, bridged[i], orig[i])
		}
	}
	w2, err := NewColumnWindow(s, size)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.RestoreTuples(bridged); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w2.State(), st) {
		t.Fatal("restored state differs from captured state")
	}
	// Push-after-restore must evolve identically to the original window.
	for i := 0; i < size+3; i++ {
		tp := mixedTuple(t, s, 100_000+i)
		w.Push(tp)
		w2.Push(tp)
	}
	if !reflect.DeepEqual(w.State(), w2.State()) {
		t.Fatal("windows diverged after post-restore pushes")
	}
	// Empty-window round trip.
	empty, err := NewColumnWindow(s, size)
	if err != nil {
		t.Fatal(err)
	}
	est := empty.State()
	if est.Len() != 0 {
		t.Fatalf("empty state len = %d", est.Len())
	}
	if _, err := est.Tuples(s); err != nil {
		t.Fatalf("empty state tuples: %v", err)
	}
}

func TestColumnWindowValidation(t *testing.T) {
	s := testSchema(t)
	if _, err := NewColumnWindow(nil, 4); err == nil {
		t.Error("nil schema: want error")
	}
	if _, err := NewColumnWindow(s, 0); err == nil {
		t.Error("zero size: want error")
	}
	w, err := NewColumnWindow(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	over := make([]*Tuple, 3)
	for i := range over {
		over[i] = mixedTuple(t, s, i)
	}
	if err := w.RestoreTuples(over); err == nil {
		t.Error("over-capacity restore: want error")
	}
	bad := mixedTuple(t, s, 0)
	bad.Fields = bad.Fields[:1]
	if err := w.RestoreTuples([]*Tuple{bad}); err == nil {
		t.Error("arity mismatch restore: want error")
	}
	st := &ColumnWindowState{
		Prob:  []float64{0.5},
		ProbN: []int{0},
		Seq:   []uint64{1},
		Time:  []int64{0},
		Cols: []ColumnState{
			{Kind: []uint8{slotPoint}, Mean: []float64{1}, Var: []float64{0}, N: []int{0}},
			{Kind: []uint8{slotOther}, Mean: []float64{0}, Var: []float64{0}, N: []int{0}},
		},
	}
	if err := st.Validate(2); err == nil {
		t.Error("missing other distribution: want error")
	}
	st.Cols[1].Kind[0] = 99
	if err := st.Validate(2); err == nil {
		t.Error("unknown kind: want error")
	}
	st.Cols[1].Kind[0] = slotPoint
	st.Prob[0] = math.NaN()
	if err := st.Validate(2); err == nil {
		t.Error("NaN prob: want error")
	}
	st.Prob[0] = 0.5
	st.Cols = st.Cols[:1]
	if err := st.Validate(2); err == nil {
		t.Error("arity mismatch: want error")
	}
}

// BenchmarkWindowScan measures the closed-form AVG scan over a full window
// — row gather+LinearGaussianUniform vs the columnar contiguous scan.
func BenchmarkWindowScan(b *testing.B) {
	s, err := NewSchema("s", Column{Name: "v", Probabilistic: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1000, 100_000} {
		tuples := make([]*Tuple, size)
		for i := range tuples {
			nd, err := dist.NewNormal(float64(i%100), 1+float64(i%7))
			if err != nil {
				b.Fatal(err)
			}
			tuples[i] = &Tuple{
				Schema: s,
				Fields: []randvar.Field{{Dist: nd, N: 10 + i%5}},
				Prob:   1,
				Seq:    uint64(i + 1),
			}
		}
		b.Run(fmt.Sprintf("row/%d", size), func(b *testing.B) {
			w, err := NewCountWindow(size)
			if err != nil {
				b.Fatal(err)
			}
			for _, tp := range tuples {
				w.Push(tp)
			}
			e := randvar.NewEvaluator(dist.NewRand(1))
			var fields []randvar.Field
			var scratch []*Tuple
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scratch = w.AppendTuples(scratch[:0])
				fields = fields[:0]
				for _, tp := range scratch {
					fields = append(fields, tp.Fields[0])
				}
				if _, err := Aggregate(e, Avg, fields); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("col/%d", size), func(b *testing.B) {
			w, err := NewColumnWindow(s, size)
			if err != nil {
				b.Fatal(err)
			}
			for _, tp := range tuples {
				w.Push(tp)
			}
			e := randvar.NewEvaluator(dist.NewRand(1))
			var scratch []randvar.Field
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := AggregateColumn(e, Avg, w, 0, &scratch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
