package stream

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/randvar"
)

func rawSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("raw",
		Column{Name: "segment_id"},
		Column{Name: "delay"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rawTuple(t *testing.T, s *Schema, key, val float64, ts int64) *Tuple {
	t.Helper()
	tp, err := NewTuple(s, []randvar.Field{randvar.Det(key), randvar.Det(val)})
	if err != nil {
		t.Fatal(err)
	}
	tp.Time = ts
	return tp
}

func TestNewLearnOpValidation(t *testing.T) {
	s := rawSchema(t)
	if _, err := NewLearnOp(s, "ghost", "delay", 10); err == nil {
		t.Error("bad key column: want error")
	}
	if _, err := NewLearnOp(s, "segment_id", "ghost", 10); err == nil {
		t.Error("bad value column: want error")
	}
	if _, err := NewLearnOp(s, "segment_id", "delay", 1); err == nil {
		t.Error("buffer size 1: want error")
	}
	probSchema, _ := NewSchema("p",
		Column{Name: "k", Probabilistic: true},
		Column{Name: "v"},
	)
	if _, err := NewLearnOp(probSchema, "k", "v", 10); err == nil {
		t.Error("probabilistic key: want error")
	}
}

func TestLearnOpEmitsLearnedTuples(t *testing.T) {
	s := rawSchema(t)
	op, err := NewLearnOp(s, "segment_id", "delay", 10)
	if err != nil {
		t.Fatal(err)
	}
	// First observation: below MinSamples, nothing emitted.
	out, err := op.Process(rawTuple(t, s, 19, 56, 1))
	if err != nil || len(out) != 0 {
		t.Fatalf("first observation: %v, %v", out, err)
	}
	// Second: learning kicks in (paper Figure 1's road 19 shape).
	out, err = op.Process(rawTuple(t, s, 19, 38, 2))
	if err != nil || len(out) != 1 {
		t.Fatalf("second observation: %v, %v", out, err)
	}
	f := out[0].Fields[1]
	if f.N != 2 {
		t.Errorf("learned N = %d, want 2", f.N)
	}
	if math.Abs(f.Dist.Mean()-47) > 1e-9 {
		t.Errorf("learned mean = %g, want 47", f.Dist.Mean())
	}
	// Third observation for road 19 and an interleaved road 20.
	out, err = op.Process(rawTuple(t, s, 19, 97, 3))
	if err != nil || len(out) != 1 || out[0].Fields[1].N != 3 {
		t.Fatalf("third observation: %v, %v", out, err)
	}
	approxStream(t, "road 19 mean", out[0].Fields[1].Dist.Mean(), (56+38+97)/3.0, 1e-9)
	out, err = op.Process(rawTuple(t, s, 20, 72, 4))
	if err != nil || len(out) != 0 {
		t.Fatalf("road 20 first: %v, %v", out, err)
	}
	if op.Keys() != 2 {
		t.Errorf("Keys = %d, want 2", op.Keys())
	}
	// Output schema shape.
	if op.OutSchema().Arity() != 2 || !op.OutSchema().Columns[1].Probabilistic {
		t.Errorf("out schema = %v", op.OutSchema())
	}
}

func approxStream(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g", name, got, want)
	}
}

func TestLearnOpSlidingBuffer(t *testing.T) {
	s := rawSchema(t)
	op, err := NewLearnOp(s, "segment_id", "delay", 3)
	if err != nil {
		t.Fatal(err)
	}
	var last *Tuple
	for i, v := range []float64{10, 20, 30, 40, 50} {
		out, err := op.Process(rawTuple(t, s, 1, v, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 1 {
			last = out[0]
		}
	}
	// Buffer holds {30, 40, 50}: mean 40, N=3.
	if last.Fields[1].N != 3 {
		t.Errorf("N = %d, want 3", last.Fields[1].N)
	}
	approxStream(t, "sliding mean", last.Fields[1].Dist.Mean(), 40, 1e-9)
}

func TestLearnOpRejectsProbabilisticValues(t *testing.T) {
	s, _ := NewSchema("raw2",
		Column{Name: "k"},
		Column{Name: "v", Probabilistic: true},
	)
	op, err := NewLearnOp(s, "k", "v", 5)
	if err != nil {
		t.Fatal(err)
	}
	nd, _ := dist.NewNormal(0, 1)
	tp, _ := NewTuple(s, []randvar.Field{randvar.Det(1), {Dist: nd, N: 5}})
	if _, err := op.Process(tp); err == nil {
		t.Error("probabilistic raw value: want error")
	}
}

func TestLearnOpCustomLearner(t *testing.T) {
	s := rawSchema(t)
	op, err := NewLearnOp(s, "segment_id", "delay", 10)
	if err != nil {
		t.Fatal(err)
	}
	op.Learner = learn.EmpiricalLearner{}
	op.Process(rawTuple(t, s, 1, 5, 1))
	out, err := op.Process(rawTuple(t, s, 1, 7, 2))
	if err != nil || len(out) != 1 {
		t.Fatal(err)
	}
	if _, ok := out[0].Fields[1].Dist.(*dist.Discrete); !ok {
		t.Errorf("custom learner ignored: %T", out[0].Fields[1].Dist)
	}
}

// TestLearnOpDecayTracksDrift: with HalfLife set, the learned mean follows
// a drifting signal more closely and the emitted N is the (smaller)
// effective sample size.
func TestLearnOpDecayTracksDrift(t *testing.T) {
	s := rawSchema(t)
	plain, err := NewLearnOp(s, "segment_id", "delay", 50)
	if err != nil {
		t.Fatal(err)
	}
	decayed, err := NewLearnOp(s, "segment_id", "delay", 50)
	if err != nil {
		t.Fatal(err)
	}
	decayed.HalfLife = 5
	var lastPlain, lastDecayed *Tuple
	// The signal ramps from 0 to 49.
	for i := 0; i < 50; i++ {
		v := float64(i)
		out, err := plain.Process(rawTuple(t, s, 1, v, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 1 {
			lastPlain = out[0]
		}
		out, err = decayed.Process(rawTuple(t, s, 1, v, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 1 {
			lastDecayed = out[0]
		}
	}
	pm := lastPlain.Fields[1].Dist.Mean()   // ≈ 24.5 (all-history mean)
	dm := lastDecayed.Fields[1].Dist.Mean() // pulled toward 49
	if !(dm > pm) {
		t.Errorf("decayed mean %g should exceed plain %g under upward drift", dm, pm)
	}
	if dm < 40 {
		t.Errorf("decayed mean %g should track the recent level ≈ 45+", dm)
	}
	if lastDecayed.Fields[1].N >= lastPlain.Fields[1].N {
		t.Errorf("effective N %d should be below plain N %d",
			lastDecayed.Fields[1].N, lastPlain.Fields[1].N)
	}
}
