package stream

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/accuracy"
	"repro/internal/randvar"
)

// Operator is a push-based stream operator: each input tuple may produce
// zero or more output tuples. Operators are single-stream and not safe for
// concurrent use; the engine runs each continuous query on one goroutine.
type Operator interface {
	// Process consumes one tuple and returns the tuples it emits.
	Process(t *Tuple) ([]*Tuple, error)
	// OutSchema returns the schema of emitted tuples.
	OutSchema() *Schema
	// Name identifies the operator in plans and errors.
	Name() string
}

// Pipeline chains operators: the output of each feeds the next.
type Pipeline struct {
	ops []Operator
}

// NewPipeline builds a pipeline from the given operators (at least one).
func NewPipeline(ops ...Operator) (*Pipeline, error) {
	if len(ops) == 0 {
		return nil, errors.New("stream: empty pipeline")
	}
	for i, op := range ops {
		if op == nil {
			return nil, fmt.Errorf("stream: pipeline operator %d is nil", i)
		}
	}
	return &Pipeline{ops: append([]Operator(nil), ops...)}, nil
}

// Process pushes t through every stage and returns the final outputs.
func (p *Pipeline) Process(t *Tuple) ([]*Tuple, error) {
	batch := []*Tuple{t}
	for _, op := range p.ops {
		var next []*Tuple
		for _, in := range batch {
			out, err := op.Process(in)
			if err != nil {
				return nil, fmt.Errorf("stream: operator %s: %w", op.Name(), err)
			}
			next = append(next, out...)
		}
		if len(next) == 0 {
			return nil, nil
		}
		batch = next
	}
	return batch, nil
}

// OutSchema returns the schema of the final stage.
func (p *Pipeline) OutSchema() *Schema { return p.ops[len(p.ops)-1].OutSchema() }

// Name implements Operator, so pipelines nest.
func (p *Pipeline) Name() string { return "pipeline" }

// --- Filter operators ---

// CmpOp is a scalar comparison inside predicates.
type CmpOp int

const (
	// CmpGT is ">".
	CmpGT CmpOp = iota
	// CmpLT is "<".
	CmpLT
	// CmpGE is ">=".
	CmpGE
	// CmpLE is "<=".
	CmpLE
)

func (c CmpOp) String() string {
	switch c {
	case CmpGT:
		return ">"
	case CmpLT:
		return "<"
	case CmpGE:
		return ">="
	case CmpLE:
		return "<="
	}
	return fmt.Sprintf("CmpOp(%d)", int(c))
}

// predProb returns P(field cmp value) under the field's distribution.
func predProb(f randvar.Field, cmp CmpOp, value float64) float64 {
	switch cmp {
	case CmpGT, CmpGE: // continuous distributions: GT and GE coincide
		return 1 - f.Dist.CDF(value)
	default:
		return f.Dist.CDF(value)
	}
}

// ProbFilter implements the possible-world filter (§II-A): for predicate
// "Col cmp Value", each tuple's membership probability is multiplied by
// P(pred) under the field's distribution, and the d.f. sample size of the
// result probability follows Lemma 3 over the field's sample size and the
// incoming ProbN. Tuples whose resulting probability is 0 are dropped;
// MinProb optionally drops low-probability tuples early.
type ProbFilter struct {
	Col     string
	Cmp     CmpOp
	Value   float64
	MinProb float64 // drop outputs with Prob < MinProb (0 keeps all)
	schema  *Schema
	colIdx  int
}

// NewProbFilter builds a ProbFilter over the given input schema.
func NewProbFilter(in *Schema, col string, cmp CmpOp, value, minProb float64) (*ProbFilter, error) {
	idx, ok := in.Index(col)
	if !ok {
		return nil, fmt.Errorf("stream: filter column %q not in schema %q", col, in.Name)
	}
	if minProb < 0 || minProb > 1 || math.IsNaN(minProb) {
		return nil, fmt.Errorf("stream: MinProb %v outside [0,1]", minProb)
	}
	return &ProbFilter{Col: col, Cmp: cmp, Value: value, MinProb: minProb, schema: in, colIdx: idx}, nil
}

func (f *ProbFilter) Name() string {
	return fmt.Sprintf("prob-filter(%s %s %g)", f.Col, f.Cmp, f.Value)
}
func (f *ProbFilter) OutSchema() *Schema { return f.schema }

func (f *ProbFilter) Process(t *Tuple) ([]*Tuple, error) {
	p := predProb(t.Fields[f.colIdx], f.Cmp, f.Value)
	newProb := t.Prob * p
	if newProb == 0 || newProb < f.MinProb {
		return nil, nil
	}
	out := t.Clone()
	out.Prob = newProb
	// Lemma 3: the existence variable now depends on the filter column
	// too.
	fieldN := t.Fields[f.colIdx].N
	switch {
	case out.ProbN == 0:
		out.ProbN = fieldN
	case fieldN != 0 && fieldN < out.ProbN:
		out.ProbN = fieldN
	}
	return []*Tuple{out}, nil
}

// ThresholdFilter implements the probability-threshold predicate of the
// paper's introduction ("Delay >{2/3} 50"): a tuple passes if and only if
// P(Col cmp Value) ≥ Tau. The decision is boolean, oblivious to accuracy —
// exactly the behaviour significance predicates improve on (§IV).
type ThresholdFilter struct {
	Col    string
	Cmp    CmpOp
	Value  float64
	Tau    float64
	schema *Schema
	colIdx int
}

// NewThresholdFilter builds a ThresholdFilter over the given input schema.
func NewThresholdFilter(in *Schema, col string, cmp CmpOp, value, tau float64) (*ThresholdFilter, error) {
	idx, ok := in.Index(col)
	if !ok {
		return nil, fmt.Errorf("stream: filter column %q not in schema %q", col, in.Name)
	}
	if tau < 0 || tau > 1 || math.IsNaN(tau) {
		return nil, fmt.Errorf("stream: threshold τ=%v outside [0,1]", tau)
	}
	return &ThresholdFilter{Col: col, Cmp: cmp, Value: value, Tau: tau, schema: in, colIdx: idx}, nil
}

func (f *ThresholdFilter) Name() string {
	return fmt.Sprintf("threshold-filter(%s %s{%g} %g)", f.Col, f.Cmp, f.Tau, f.Value)
}
func (f *ThresholdFilter) OutSchema() *Schema { return f.schema }

func (f *ThresholdFilter) Process(t *Tuple) ([]*Tuple, error) {
	if predProb(t.Fields[f.colIdx], f.Cmp, f.Value) >= f.Tau {
		return []*Tuple{t}, nil
	}
	return nil, nil
}

// FuncFilter filters with an arbitrary predicate on the whole tuple; the
// escape hatch for predicates the typed filters do not cover.
type FuncFilter struct {
	Pred   func(*Tuple) (bool, error)
	Label  string
	schema *Schema
}

// NewFuncFilter builds a FuncFilter.
func NewFuncFilter(in *Schema, label string, pred func(*Tuple) (bool, error)) (*FuncFilter, error) {
	if pred == nil {
		return nil, errors.New("stream: nil predicate")
	}
	return &FuncFilter{Pred: pred, Label: label, schema: in}, nil
}

func (f *FuncFilter) Name() string       { return "filter(" + f.Label + ")" }
func (f *FuncFilter) OutSchema() *Schema { return f.schema }

func (f *FuncFilter) Process(t *Tuple) ([]*Tuple, error) {
	ok, err := f.Pred(t)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return []*Tuple{t}, nil
}

// --- Projection and mapping ---

// Project emits tuples restricted to a subset of columns.
type Project struct {
	cols    []string
	indices []int
	out     *Schema
}

// NewProject builds a projection of the named columns.
func NewProject(in *Schema, cols ...string) (*Project, error) {
	out, err := in.Project(in.Name, cols...)
	if err != nil {
		return nil, err
	}
	indices := make([]int, len(cols))
	for i, c := range cols {
		idx, _ := in.Index(c)
		indices[i] = idx
	}
	return &Project{cols: cols, indices: indices, out: out}, nil
}

func (p *Project) Name() string       { return fmt.Sprintf("project%v", p.cols) }
func (p *Project) OutSchema() *Schema { return p.out }

func (p *Project) Process(t *Tuple) ([]*Tuple, error) {
	fields := make([]randvar.Field, len(p.indices))
	for i, idx := range p.indices {
		fields[i] = t.Fields[idx]
	}
	out := &Tuple{Schema: p.out, Fields: fields, Prob: t.Prob, ProbN: t.ProbN, Seq: t.Seq, Time: t.Time}
	return []*Tuple{out}, nil
}

// MapOp appends a computed column. The expression receives the input tuple
// and returns the new field; d.f. sample-size propagation is the
// expression's responsibility (randvar.Evaluator handles it for arithmetic).
type MapOp struct {
	Expr  func(*Tuple) (randvar.Field, error)
	label string
	out   *Schema
}

// NewMapOp builds a MapOp producing column outCol.
func NewMapOp(in *Schema, outCol string, probabilistic bool, expr func(*Tuple) (randvar.Field, error)) (*MapOp, error) {
	if expr == nil {
		return nil, errors.New("stream: nil map expression")
	}
	out, err := in.Extend(in.Name, Column{Name: outCol, Probabilistic: probabilistic})
	if err != nil {
		return nil, err
	}
	return &MapOp{Expr: expr, label: outCol, out: out}, nil
}

func (m *MapOp) Name() string       { return "map(" + m.label + ")" }
func (m *MapOp) OutSchema() *Schema { return m.out }

func (m *MapOp) Process(t *Tuple) ([]*Tuple, error) {
	f, err := m.Expr(t)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	out := t.Clone()
	out.Schema = m.out
	out.Fields = append(out.Fields, f)
	return []*Tuple{out}, nil
}

// --- Window aggregation ---

// WindowAgg maintains a count-based sliding window over one column and
// emits, for every input tuple once the window is full, a tuple holding the
// aggregate of the window contents — the shape of the paper's §V-C
// throughput query.
type WindowAgg struct {
	Kind   AggKind
	Col    string
	window *CountWindow
	eval   *randvar.Evaluator
	out    *Schema
	colIdx int
	// EmitPartial, when true, emits aggregates while the window is still
	// filling (some queries want warm-up output).
	EmitPartial bool
	// lastValues retains the Monte Carlo value sequence of the most
	// recent aggregate for bootstrap accuracy (nil on closed-form paths).
	lastValues []float64
	seq        uint64
}

// NewWindowAgg builds a sliding-window aggregate over column col.
func NewWindowAgg(in *Schema, kind AggKind, col string, size int, eval *randvar.Evaluator) (*WindowAgg, error) {
	idx, ok := in.Index(col)
	if !ok {
		return nil, fmt.Errorf("stream: aggregate column %q not in schema %q", col, in.Name)
	}
	w, err := NewCountWindow(size)
	if err != nil {
		return nil, err
	}
	if eval == nil {
		return nil, errors.New("stream: nil evaluator")
	}
	outName := fmt.Sprintf("%s_%s", kind, col)
	out, err := NewSchema(in.Name+"_agg", Column{Name: outName, Probabilistic: true})
	if err != nil {
		return nil, err
	}
	return &WindowAgg{Kind: kind, Col: col, window: w, eval: eval, out: out, colIdx: idx}, nil
}

func (a *WindowAgg) Name() string {
	return fmt.Sprintf("window-%s(%s, size=%d)", a.Kind, a.Col, a.window.Cap())
}
func (a *WindowAgg) OutSchema() *Schema { return a.out }

// LastValues returns the Monte Carlo value sequence behind the most recent
// emitted aggregate, or nil when the closed form was used.
func (a *WindowAgg) LastValues() []float64 { return a.lastValues }

func (a *WindowAgg) Process(t *Tuple) ([]*Tuple, error) {
	a.window.Push(t)
	if !a.window.Full() && !a.EmitPartial {
		return nil, nil
	}
	fields := make([]randvar.Field, 0, a.window.Len())
	a.window.Do(func(wt *Tuple) {
		fields = append(fields, wt.Fields[a.colIdx])
	})
	res, err := Aggregate(a.eval, a.Kind, fields)
	if err != nil {
		return nil, err
	}
	a.lastValues = res.Values
	a.seq++
	out := &Tuple{
		Schema: a.out,
		Fields: []randvar.Field{res.Field},
		Prob:   1,
		Seq:    a.seq,
		Time:   t.Time,
	}
	return []*Tuple{out}, nil
}

// AttachAccuracy decorates tuples with analytical accuracy information for
// one column, returning the accuracy.Info for each processed tuple via the
// callback; it passes tuples through unchanged. The paper's engine returns
// accuracy info alongside results; this operator is the plumbing.
type AttachAccuracy struct {
	Col    string
	Level  float64
	OnInfo func(*Tuple, *accuracy.Info)
	schema *Schema
	colIdx int
}

// NewAttachAccuracy builds the operator at the given confidence level.
func NewAttachAccuracy(in *Schema, col string, level float64, onInfo func(*Tuple, *accuracy.Info)) (*AttachAccuracy, error) {
	idx, ok := in.Index(col)
	if !ok {
		return nil, fmt.Errorf("stream: accuracy column %q not in schema %q", col, in.Name)
	}
	if onInfo == nil {
		return nil, errors.New("stream: nil accuracy callback")
	}
	return &AttachAccuracy{Col: col, Level: level, OnInfo: onInfo, schema: in, colIdx: idx}, nil
}

func (a *AttachAccuracy) Name() string       { return "accuracy(" + a.Col + ")" }
func (a *AttachAccuracy) OutSchema() *Schema { return a.schema }

func (a *AttachAccuracy) Process(t *Tuple) ([]*Tuple, error) {
	f := t.Fields[a.colIdx]
	if f.N >= 2 {
		info, err := accuracy.ForDistribution(f.Dist, f.N, a.Level)
		if err != nil {
			return nil, err
		}
		a.OnInfo(t, info)
	}
	return []*Tuple{t}, nil
}
