package bootstrap

import (
	"math"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dist"
	"repro/internal/learn"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestPercentileInterval(t *testing.T) {
	vals := make([]float64, 101) // 0..100
	for i := range vals {
		vals[i] = float64(i)
	}
	iv, err := PercentileInterval(vals, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "lo", iv.Lo, 5, 1e-12)
	approx(t, "hi", iv.Hi, 95, 1e-12)
	approx(t, "level", iv.Level, 0.9, 0)

	// Input must not be reordered.
	shuffled := []float64{3, 1, 2}
	if _, err := PercentileInterval(shuffled, 0.5); err != nil {
		t.Fatal(err)
	}
	if shuffled[0] != 3 || shuffled[1] != 1 {
		t.Error("PercentileInterval mutated its input")
	}
}

func TestPercentileIntervalValidation(t *testing.T) {
	if _, err := PercentileInterval([]float64{1}, 0.9); err == nil {
		t.Error("single value: want error")
	}
	if _, err := PercentileInterval([]float64{1, 2}, 0); err == nil {
		t.Error("alpha=0: want error")
	}
	if _, err := PercentileInterval([]float64{1, 2}, 1); err == nil {
		t.Error("alpha=1: want error")
	}
}

// TestAccuracyInfoExample7 mirrors paper Example 7: n = 15, m = 300 gives
// r = 20 resamples, and the 90% interval of the mean comes from the 5th and
// 95th percentiles of the 20 resample means.
func TestAccuracyInfoExample7(t *testing.T) {
	rng := dist.NewRand(42)
	nd, _ := dist.NewNormal(50, 25)
	v := dist.SampleN(nd, 300, rng)
	info, err := AccuracyInfo(v, 15, 0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Method != "bootstrap" || info.N != 15 {
		t.Errorf("metadata wrong: %+v", info)
	}
	if !info.Mean.Contains(50) {
		t.Errorf("mean interval %v misses the true mean (flaky only if the seed is unlucky)", info.Mean)
	}
	if !(info.Mean.Lo < info.Mean.Hi) {
		t.Error("degenerate mean interval")
	}
	if !(info.Variance.Lo < 25 && 25 < info.Variance.Hi) {
		t.Logf("variance interval %v does not bracket 25 (allowed at 90%%)", info.Variance)
	}
}

func TestAccuracyInfoValidation(t *testing.T) {
	v := make([]float64, 100)
	if _, err := AccuracyInfo(v, 1, 0.9, nil); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := AccuracyInfo(v[:5], 4, 0.9, nil); err == nil {
		t.Error("r=1: want error")
	}
}

func TestAccuracyInfoBins(t *testing.T) {
	rng := dist.NewRand(7)
	h, err := dist.HistogramFromCounts([]float64{0, 25, 50, 75, 100}, []int{3, 4, 8, 5})
	if err != nil {
		t.Fatal(err)
	}
	v := dist.SampleN(h, 20*50, rng)
	info, err := AccuracyInfo(v, 20, 0.9, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Bins) != 4 {
		t.Fatalf("bins = %d, want 4", len(info.Bins))
	}
	for i, b := range info.Bins {
		if b.Interval.Lo < 0 || b.Interval.Hi > 1 {
			t.Errorf("bin %d interval %v leaves [0,1]", i, b.Interval)
		}
		if !b.Interval.Contains(h.BucketProb(i)) {
			t.Errorf("bin %d interval %v misses the true height %v",
				i, b.Interval, h.BucketProb(i))
		}
	}
}

// TestBootstrapOnSkewedData reproduces the paper's §V-C finding in
// miniature: for a skewed (exponential) result distribution, the bootstrap
// mean intervals are tighter than the analytical t intervals, and the
// bootstrap intervals stay robust (near-nominal coverage) where the
// analytical normality assumption is violated.
func TestBootstrapOnSkewedData(t *testing.T) {
	rng := dist.NewRand(99)
	exp, _ := dist.NewExponential(1)
	const n = 15
	const trials = 300
	shorterMean, meanMisses, varMisses := 0, 0, 0
	for i := 0; i < trials; i++ {
		info, err := FromDistribution(exp, n, 20, 0.9, rng)
		if err != nil {
			t.Fatal(err)
		}
		av, err := accuracy.ForDistribution(exp, n, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if info.Mean.Length() < av.Mean.Length() {
			shorterMean++
		}
		if !info.Mean.Contains(exp.Mean()) {
			meanMisses++
		}
		if !info.Variance.Contains(exp.Variance()) {
			varMisses++
		}
	}
	if shorterMean < trials*3/4 {
		t.Errorf("bootstrap mean interval shorter only %d/%d times", shorterMean, trials)
	}
	// 90% intervals: nominal miss rate 10%; the d.f. bootstrap mixes many
	// d.f. samples and comes out conservative in practice.
	if meanMisses > trials/10+5 {
		t.Errorf("bootstrap mean interval missed %d/%d times", meanMisses, trials)
	}
	if varMisses > trials/10+5 {
		t.Errorf("bootstrap variance interval missed %d/%d times", varMisses, trials)
	}
}

func TestFromDistributionValidation(t *testing.T) {
	rng := dist.NewRand(1)
	nd, _ := dist.NewNormal(0, 1)
	if _, err := FromDistribution(nil, 10, 20, 0.9, rng); err == nil {
		t.Error("nil distribution: want error")
	}
	if _, err := FromDistribution(nd, 1, 20, 0.9, rng); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := FromDistribution(nd, 10, 1, 0.9, rng); err == nil {
		t.Error("r=1: want error")
	}
}

func TestClassicBootstrap(t *testing.T) {
	// Figure 3's Verizon repair-time sample.
	s := learn.NewSample([]float64{3.12, 0, 1.57, 19.67, 0.22, 2.20})
	rng := dist.NewRand(5)
	boot, err := Classic(s, Mean, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(boot) != 2000 {
		t.Fatalf("len = %d", len(boot))
	}
	// The bootstrap distribution is centered near the original sample mean
	// (4.46 in the paper).
	sum := 0.0
	for _, x := range boot {
		sum += x
	}
	approx(t, "bootstrap center", sum/2000, 4.46, 0.3)
	// Resample means stay within the sample's range.
	for _, x := range boot {
		if x < 0 || x > 19.67 {
			t.Fatalf("impossible resample mean %v", x)
		}
	}
}

func TestClassicIntervalCoverage(t *testing.T) {
	rng := dist.NewRand(31)
	nd, _ := dist.NewNormal(10, 4)
	misses := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		s := learn.NewSample(dist.SampleN(nd, 25, rng))
		iv, err := ClassicInterval(s, Mean, 400, 0.9, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(10) {
			misses++
		}
	}
	rate := float64(misses) / trials
	// Percentile bootstrap is slightly anti-conservative at n=25.
	if rate > 0.18 {
		t.Errorf("bootstrap mean interval miss rate %g, want ≲0.12", rate)
	}
}

func TestClassicValidation(t *testing.T) {
	rng := dist.NewRand(1)
	if _, err := Classic(nil, Mean, 10, rng); err == nil {
		t.Error("nil sample: want error")
	}
	if _, err := Classic(learn.NewSample(nil), Mean, 10, rng); err == nil {
		t.Error("empty sample: want error")
	}
	s := learn.NewSample([]float64{1, 2, 3})
	if _, err := Classic(s, Mean, 0, rng); err == nil {
		t.Error("b=0: want error")
	}
}

func TestProportionAboveStatistic(t *testing.T) {
	s := learn.NewSample([]float64{1, 2, 3, 4})
	stat := ProportionAbove(2.5)
	v, err := stat(s)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "proportion above", v, 0.5, 1e-12)
}

func TestVarianceStatistic(t *testing.T) {
	s := learn.NewSample([]float64{2, 4, 6})
	v, err := Variance(s)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "variance", v, 4, 1e-12)
}

// TestConvergenceWithResamples checks that interval lengths stabilize as the
// resample count r grows (the ablation DESIGN.md calls out).
func TestConvergenceWithResamples(t *testing.T) {
	rng := dist.NewRand(12)
	nd, _ := dist.NewNormal(0, 1)
	const n = 20
	lengthAt := func(r int) float64 {
		total := 0.0
		const reps = 40
		for i := 0; i < reps; i++ {
			info, err := FromDistribution(nd, n, r, 0.9, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += info.Mean.Length()
		}
		return total / reps
	}
	l20, l200 := lengthAt(20), lengthAt(200)
	// Lengths at r=20 and r=200 should agree within ~25%: the interval is a
	// property of the sampling distribution, not of r.
	if math.Abs(l20-l200)/l200 > 0.25 {
		t.Errorf("interval length unstable: r=20 → %g, r=200 → %g", l20, l200)
	}
}
