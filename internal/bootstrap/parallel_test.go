package bootstrap

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dist"
	"repro/internal/learn"
)

// workerCounts are the parallelism levels every determinism test sweeps.
// 1 exercises the inline serial path, 4 forces the goroutine fan-out even
// on a single-core machine, and GOMAXPROCS matches the production default.
func workerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// TestAccuracyInfoWorkersDeterministic asserts that the parallel resample
// kernel is bit-identical at every worker count: same value sequence in,
// byte-for-byte equal accuracy.Info out.
func TestAccuracyInfoWorkersDeterministic(t *testing.T) {
	rng := dist.NewRand(42)
	// Large enough to clear serialCutoff so the parallel path really runs.
	n := 64
	r := 128
	v := make([]float64, n*r)
	for i := range v {
		v[i] = rng.NormFloat64()*3 + 10
	}
	hist, err := learn.NewHistogramLearner(12).Learn(learn.NewSample(v))
	if err != nil {
		t.Fatal(err)
	}
	h := hist.(*dist.Histogram)

	ref, err := AccuracyInfoWorkers(v, n, 0.9, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		got, err := AccuracyInfoWorkers(v, n, 0.9, h, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: accuracy info differs from workers=1\nref: %+v\ngot: %+v", w, ref, got)
		}
	}
}

// TestFromDistributionWorkersDeterministic asserts that Monte Carlo
// sampling from a distribution produces bit-identical accuracy info at
// every worker count under the same seed: each resample draws from its own
// seed-derived substream, so the schedule of goroutines cannot matter.
func TestFromDistributionWorkersDeterministic(t *testing.T) {
	d, err := dist.NewNormal(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	// n*r = 50*100 clears serialCutoff.
	n, r := 50, 100

	ref, err := FromDistributionWorkers(d, n, r, 0.9, dist.NewRand(7), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		got, err := FromDistributionWorkers(d, n, r, 0.9, dist.NewRand(7), w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: accuracy info differs from workers=1\nref: %+v\ngot: %+v", w, ref, got)
		}
	}
}

// TestClassicWorkersDeterministic asserts that the classic bootstrap
// produces the identical statistic sequence at every worker count under
// the same seed.
func TestClassicWorkersDeterministic(t *testing.T) {
	rng := dist.NewRand(3)
	obs := make([]float64, 200)
	for i := range obs {
		obs[i] = rng.Float64() * 100
	}
	s := learn.NewSample(obs)
	mean := func(s *learn.Sample) (float64, error) { return s.Mean() }
	b := 400 // b*n = 80000 clears serialCutoff

	ref, err := ClassicWorkers(s, mean, b, dist.NewRand(11), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		got, err := ClassicWorkers(s, mean, b, dist.NewRand(11), w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: bootstrap statistics differ from workers=1", w)
		}
	}
}

// TestWorkersBelowCutoffStillDeterministic checks the serial-cutoff branch:
// tiny inputs run serially at every worker count, and the result must still
// match, because substream derivation is applied regardless of execution
// strategy.
func TestWorkersBelowCutoffStillDeterministic(t *testing.T) {
	d, err := dist.NewNormal(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FromDistributionWorkers(d, 10, 10, 0.9, dist.NewRand(9), 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromDistributionWorkers(d, 10, 10, 0.9, dist.NewRand(9), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Error("below-cutoff results differ across worker counts")
	}
}

// TestPercentileIntervalRejectsNaN covers the hardening satellite: a NaN in
// the value sequence must produce a clear error, not a silently wrong
// interval from NaN-poisoned sorting.
func TestPercentileIntervalRejectsNaN(t *testing.T) {
	v := []float64{1, 2, math.NaN(), 4}
	if _, err := PercentileInterval(v, 0.9); err == nil {
		t.Error("PercentileInterval accepted NaN input")
	}
}

// TestPercentileEmptyGuard covers the empty-slice guard added to the
// internal percentile helper via the public path: an empty value sequence
// must error, not panic.
func TestPercentileEmptyGuard(t *testing.T) {
	if _, err := PercentileInterval(nil, 0.9); err == nil {
		t.Error("PercentileInterval accepted empty input")
	}
}
