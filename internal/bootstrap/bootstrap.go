// Package bootstrap implements the paper's §III: obtaining accuracy
// information via bootstraps instead of the analytical formulas.
//
// The central algorithm is BOOTSTRAP-ACCURACY-INFO: given a sequence of m
// values of an output random variable Y (produced either by a Monte Carlo
// query path or by sampling the result distribution directly), and Y's de
// facto sample size n, it groups the values into r = ⌊m/n⌋ d.f. resamples,
// computes the statistics of interest (bin heights, sample mean, sample
// variance) within each resample, and reports percentile intervals of each
// statistic over the r resamples (Theorem 2 establishes correctness via
// Lemma 4's concurrent-bootstrap argument).
//
// The package also provides the classic single-sample bootstrap
// (resampling with replacement, §III-A) used to cross-check the d.f.
// variant and to bootstrap source-data samples directly.
//
// # Parallel accuracy kernel
//
// Lemma 4's resamples are independent by construction, so every hot loop
// here — per-resample statistics, classic bootstrap resamples, Monte Carlo
// draws in FromDistribution — runs over internal/parallel with one RNG
// substream per work item (dist.DeriveSeed). Output is bit-identical for
// every worker count, including workers=1, which executes the plain serial
// loop. The *Workers variants take an explicit worker bound (the engine
// passes core.Config.Workers); the original entry points default to
// runtime.GOMAXPROCS(0). Per-resample statistics use single-pass
// Welford accumulation and pooled flat scratch buffers, so the steady-state
// hot path allocates only the returned accuracy.Info.
package bootstrap

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/accuracy"
	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/stat"
)

// Kernel observability: resample/draw volume and kernel wall time. One
// timer pair and a few atomic adds per kernel invocation — observation
// only, far below the per-call work the counters measure.
var (
	mResamples = metrics.Default.Counter("asdb_bootstrap_resamples_total",
		"d.f. resamples processed by BOOTSTRAP-ACCURACY-INFO")
	mValues = metrics.Default.Counter("asdb_bootstrap_values_total",
		"output-variable values scanned by BOOTSTRAP-ACCURACY-INFO")
	mDraws = metrics.Default.Counter("asdb_bootstrap_mc_draws_total",
		"Monte Carlo variates drawn by FromDistribution")
	mClassic = metrics.Default.Counter("asdb_bootstrap_classic_resamples_total",
		"classic (single-sample) bootstrap resamples computed")
	hKernel = metrics.Default.Histogram("asdb_bootstrap_kernel_seconds",
		"wall time of one BOOTSTRAP-ACCURACY-INFO invocation", metrics.DefBuckets)
	hSample = metrics.Default.Histogram("asdb_bootstrap_sample_seconds",
		"wall time of FromDistribution's Monte Carlo sampling phase", metrics.DefBuckets)
)

// ErrTooFewValues reports that the value sequence cannot form enough d.f.
// resamples for percentile intervals to be meaningful.
var ErrTooFewValues = errors.New("bootstrap: too few values for requested resamples")

// DefaultResamples is the resample count the engine aims for when it
// controls m (the paper's Example 7 uses r = 20; convergence benches in
// bench_test.go justify the default).
const DefaultResamples = 40

// serialCutoff is the total number of scalar work units (values scanned or
// variates drawn) below which the parallel loops run serially: under it,
// goroutine dispatch costs more than the loop body. Results are identical
// either way — the cutoff only picks the execution strategy.
const serialCutoff = 4096

// scratchPool recycles the flat float64 scratch buffers of the hot paths
// (resample statistics, sampled value sequences) across calls.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]float64, 0, 1024)
		return &b
	},
}

// getScratch returns a pooled buffer resized to n (contents undefined).
func getScratch(n int) *[]float64 {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	} else {
		*p = (*p)[:n]
	}
	return p
}

func putScratch(p *[]float64) { scratchPool.Put(p) }

// PercentileInterval returns the level-α percentile interval of values:
// the span between the 100·(1−α)/2-th and 100·(1+α)/2-th percentiles
// (lines 12–15 of BOOTSTRAP-ACCURACY-INFO). values is not modified. NaN
// values are rejected: a NaN has no rank, so any percentile over it would
// be meaningless.
func PercentileInterval(values []float64, alpha float64) (accuracy.Interval, error) {
	if len(values) < 2 {
		return accuracy.Interval{}, fmt.Errorf("%w: have %d values, need ≥ 2", ErrTooFewValues, len(values))
	}
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return accuracy.Interval{}, fmt.Errorf("bootstrap: confidence level %v outside (0,1)", alpha)
	}
	for i, x := range values {
		if math.IsNaN(x) {
			return accuracy.Interval{}, fmt.Errorf("bootstrap: NaN at index %d in percentile-interval input", i)
		}
	}
	sorted := append([]float64(nil), values...)
	return percentileIntervalInPlace(sorted, alpha), nil
}

// percentileIntervalInPlace is the hot-path variant: it sorts values in
// place (no copy) and assumes the caller has already validated alpha and
// owns the buffer. AccuracyInfo and Classic route their per-statistic
// interval extraction through it so the public copy-on-call contract of
// PercentileInterval costs nothing on the engine's steady-state path.
func percentileIntervalInPlace(values []float64, alpha float64) accuracy.Interval {
	slices.Sort(values)
	lo := percentile(values, (1-alpha)/2)
	hi := percentile(values, (1+alpha)/2)
	return accuracy.Interval{Lo: lo, Hi: hi, Level: alpha}
}

// percentile returns the p-th quantile of sorted values with linear
// interpolation (type-7). An empty input yields NaN rather than a panic.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// AccuracyInfo is algorithm BOOTSTRAP-ACCURACY-INFO.
//
// v is the sequence of output-variable values from query processing, n the
// d.f. sample size of the output variable (Lemma 3), and alpha the
// confidence level of the intervals. hist optionally supplies histogram
// bucket edges: when non-nil, per-bucket bin-height intervals are computed
// over the resamples exactly as lines 6–8 and 12–14 of the algorithm; when
// nil only mean and variance intervals are produced.
//
// It returns an error when fewer than 2 complete resamples fit in v
// (r = ⌊m/n⌋ < 2); the paper assumes "m is sufficiently large so that the
// confidence intervals ... converge".
//
// Resamples are processed with up to runtime.GOMAXPROCS(0) workers; see
// AccuracyInfoWorkers for an explicit bound. The result does not depend on
// the worker count.
func AccuracyInfo(v []float64, n int, alpha float64, hist *dist.Histogram) (*accuracy.Info, error) {
	return AccuracyInfoWorkers(v, n, alpha, hist, runtime.GOMAXPROCS(0))
}

// AccuracyInfoWorkers is AccuracyInfo with an explicit worker bound
// (workers <= 1 runs the serial loop inline). Per Lemma 4 the r resamples
// are independent, and each one writes only its own output slot, so the
// returned accuracy.Info is bit-identical for every worker count.
func AccuracyInfoWorkers(v []float64, n int, alpha float64, hist *dist.Histogram, workers int) (*accuracy.Info, error) {
	return accuracyInfo(v, n, alpha, hist, workers, false)
}

// AccuracyInfoShed is AccuracyInfoWorkers for a load-shed (reduced) resample
// budget. Percentile intervals over a handful of resamples undercover — the
// empirical 5th/95th percentiles of r points collapse toward the min/max, so
// trimming resamples would silently report narrower intervals. The shed
// variant instead reports t-based prediction intervals over the resample
// statistics, mean ± t((1+α)/2, r−1)·s·√(1+1/r): asymptotically the same
// interval under normality, and honestly wider as r shrinks — degraded
// accuracy shows up in the output instead of hiding in lost coverage.
func AccuracyInfoShed(v []float64, n int, alpha float64, hist *dist.Histogram, workers int) (*accuracy.Info, error) {
	return accuracyInfo(v, n, alpha, hist, workers, true)
}

func accuracyInfo(v []float64, n int, alpha float64, hist *dist.Histogram, workers int, shed bool) (*accuracy.Info, error) {
	if n < 2 {
		return nil, fmt.Errorf("bootstrap: d.f. sample size %d, need ≥ 2", n)
	}
	r := len(v) / n // line 1: number of d.f. resamples
	if r < 2 {
		return nil, fmt.Errorf("%w: m=%d values, n=%d gives r=%d resamples",
			ErrTooFewValues, len(v), n, r)
	}
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("bootstrap: confidence level %v outside (0,1)", alpha)
	}
	if r*n < serialCutoff {
		workers = 1
	}
	mResamples.Add(uint64(r))
	mValues.Add(uint64(r * n))
	defer hKernel.ObserveSince(time.Now())
	buckets := 0
	if hist != nil {
		buckets = hist.NumBuckets()
	}
	// One flat scratch buffer backs every per-resample statistic:
	// [0,n) Welford reciprocals, then [_,r) resample means, [_,r)
	// resample variances, then `buckets` rows of r bin heights each
	// (row k holds bucket k across resamples, contiguous so its
	// percentile interval sorts in place without a gather). Resample i
	// writes column i of each region — disjoint slots, so the parallel
	// loop needs no synchronization.
	scratch := getScratch(n + r*(2+buckets))
	defer putScratch(scratch)
	buf := *scratch
	inv := buf[:n]
	for j := range inv {
		// Welford's update divides by the running count; precomputing
		// the reciprocals turns a loop-carried division into a multiply.
		inv[j] = 1 / float64(j+1)
	}
	means := buf[n : n+r]
	variances := buf[n+r : n+2*r]
	bins := buf[n+2*r:]
	for i := range bins {
		bins[i] = 0
	}
	if workers <= 1 {
		// Direct call: no closure materializes on the serial hot path.
		resampleStats(v, n, r, 0, r, means, variances, bins, inv, hist)
	} else {
		parallel.ForChunks(workers, r, func(lo, hi int) {
			resampleStats(v, n, r, lo, hi, means, variances, bins, inv, hist)
		})
	}
	interval := percentileIntervalInPlace
	method := "bootstrap"
	if shed {
		interval = tPredictionInterval
		method = "bootstrap-shed"
	}
	info := &accuracy.Info{
		N:        n,
		Level:    alpha,
		Mean:     interval(means, alpha),
		Variance: interval(variances, alpha),
		Method:   method,
	}
	if hist != nil {
		info.Bins = make([]accuracy.BinInterval, buckets)
		for k := range info.Bins {
			iv := interval(bins[k*r:(k+1)*r], alpha)
			lo, hi := hist.Bucket(k)
			est := hist.BucketProb(k)
			info.Bins[k] = accuracy.BinInterval{
				Bucket:   k,
				Lo:       lo,
				Hi:       hi,
				Estimate: est,
				Interval: iv.Clamp(0, 1),
			}
		}
	}
	return info, nil
}

// tPredictionInterval is the shed-path interval: a level-α prediction
// interval for a fresh draw of the statistic, centered on the resample mean
// with half-width t((1+α)/2, r−1)·s·√(1+1/r). It needs only the first two
// moments of the resample statistics, so it stays meaningful at resample
// counts far too small for empirical percentiles.
func tPredictionInterval(stats []float64, alpha float64) accuracy.Interval {
	r := len(stats)
	if r < 2 {
		v := 0.0
		if r == 1 {
			v = stats[0]
		}
		return accuracy.Interval{Lo: v, Hi: v, Level: alpha}
	}
	mean := 0.0
	for _, x := range stats {
		mean += x
	}
	mean /= float64(r)
	ss := 0.0
	for _, x := range stats {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(r-1))
	t, err := stat.TQuantile((1+alpha)/2, float64(r-1))
	if err != nil {
		// Unreachable for r ≥ 2 and α ∈ (0,1); degrade to the percentile
		// interval rather than fail the query.
		return percentileIntervalInPlace(stats, alpha)
	}
	hw := t * sd * math.Sqrt(1+1/float64(r))
	return accuracy.Interval{Lo: mean - hw, Hi: mean + hw, Level: alpha}
}

// resampleStats computes the statistics of resamples [lo, hi) — lines 2–11
// of BOOTSTRAP-ACCURACY-INFO. Resample i reads v[i*n:(i+1)*n] and writes
// only means[i], variances[i], and column i of each bucket row in bins, so
// disjoint ranges may run concurrently with no synchronization and the
// output is independent of how [0, r) is partitioned.
//
// Moments use single-pass Welford accumulation in two interleaved blocks
// merged with Chan et al.'s pairwise formula: one sweep over the data (the
// textbook two-pass form reads it twice), the numerical robustness of
// Welford's update, and half the loop-carried latency of a single
// accumulator. inv holds precomputed reciprocals 1/(j+1) so the update
// multiplies instead of divides.
func resampleStats(v []float64, n, r, lo, hi int, means, variances, bins, inv []float64, hist *dist.Histogram) {
	buckets := 0
	if hist != nil {
		buckets = hist.NumBuckets()
	}
	invN := 1 / float64(n)
	for i := lo; i < hi; i++ {
		o := v[i*n : (i+1)*n]
		h := n / 2
		a, b := o[:h], o[h:]
		mA, sA := 0.0, 0.0
		mB, sB := 0.0, 0.0
		for j := range a {
			dA := a[j] - mA
			mA += dA * inv[j]
			sA += dA * (a[j] - mA)
			dB := b[j] - mB
			mB += dB * inv[j]
			sB += dB * (b[j] - mB)
		}
		if len(b) > h { // odd n: fold the leftover element into block B
			x := b[h]
			dB := x - mB
			mB += dB * inv[h]
			sB += dB * (x - mB)
		}
		nA, nB := float64(h), float64(n-h)
		d := mB - mA
		means[i] = mA + d*nB*invN
		variances[i] = (sA + sB + d*d*nA*nB*invN) / float64(n-1)
		if hist != nil {
			for _, x := range o {
				if k := hist.BucketIndex(x); k >= 0 {
					bins[k*r+i]++
				}
			}
			for k := 0; k < buckets; k++ {
				bins[k*r+i] *= invN
			}
		}
	}
}

// FromDistribution covers the paper's second query-processing category
// (§III-B): the query produced a result distribution directly (no Monte
// Carlo value sequence), so we "sample from this distribution and also get
// a sequence of values", then run BOOTSTRAP-ACCURACY-INFO on it. r controls
// the number of d.f. resamples drawn (m = r·n values are sampled).
//
// Sampling and resample statistics run with up to runtime.GOMAXPROCS(0)
// workers; see FromDistributionWorkers.
func FromDistribution(d dist.Distribution, n, r int, alpha float64, rng *dist.Rand) (*accuracy.Info, error) {
	return FromDistributionWorkers(d, n, r, alpha, rng, runtime.GOMAXPROCS(0))
}

// FromDistributionWorkers is FromDistribution with an explicit worker
// bound. Each of the r resamples draws its n variates from its own RNG
// substream derived from one value consumed off rng (dist.DeriveSeed), so
// the value sequence — and hence the returned accuracy.Info — is identical
// for every worker count and every scheduling of the workers.
func FromDistributionWorkers(d dist.Distribution, n, r int, alpha float64, rng *dist.Rand, workers int) (*accuracy.Info, error) {
	return fromDistribution(d, n, r, alpha, rng, workers, false)
}

// FromDistributionShed is FromDistributionWorkers for a load-shed resample
// budget: the reduced r draws proportionally fewer variates, and intervals
// come from the t-based shed path (see AccuracyInfoShed) so they widen
// honestly instead of undercovering.
func FromDistributionShed(d dist.Distribution, n, r int, alpha float64, rng *dist.Rand, workers int) (*accuracy.Info, error) {
	return fromDistribution(d, n, r, alpha, rng, workers, true)
}

func fromDistribution(d dist.Distribution, n, r int, alpha float64, rng *dist.Rand, workers int, shed bool) (*accuracy.Info, error) {
	if d == nil {
		return nil, errors.New("bootstrap: nil distribution")
	}
	if r < 2 {
		return nil, fmt.Errorf("bootstrap: resample count %d, need ≥ 2", r)
	}
	if n < 2 {
		return nil, fmt.Errorf("bootstrap: d.f. sample size %d, need ≥ 2", n)
	}
	root := rng.Uint64()
	scratch := getScratch(n * r)
	defer putScratch(scratch)
	v := *scratch
	sampleWorkers := workers
	if n*r < serialCutoff {
		sampleWorkers = 1
	}
	mDraws.Add(uint64(n * r))
	t0 := time.Now()
	if sampleWorkers <= 1 {
		sampleChunk(d, v, n, root, 0, r)
	} else {
		parallel.ForChunks(sampleWorkers, r, func(lo, hi int) {
			sampleChunk(d, v, n, root, lo, hi)
		})
	}
	hSample.ObserveSince(t0)
	hist, _ := d.(*dist.Histogram)
	return accuracyInfo(v, n, alpha, hist, workers, shed)
}

// sampleChunk draws resamples [lo, hi) of the FromDistribution value
// sequence. Resample i fills v[i*n:(i+1)*n] from RNG substream i of root,
// reusing one generator struct per chunk, so the values depend only on
// (d, root, n) — never on chunking or scheduling.
func sampleChunk(d dist.Distribution, v []float64, n int, root uint64, lo, hi int) {
	var sub dist.Rand
	// Devirtualized fast paths for the two distributions the aggregate hot
	// path emits. Bit-identical to the generic loop: Normal.Sample computes
	// Mu + Sqrt(Sigma2)*NormFloat64 (hoisting the sqrt changes no bits),
	// and Point.Sample returns V without consuming the substream.
	switch dd := d.(type) {
	case dist.Normal:
		mu, sd := dd.Mu, math.Sqrt(dd.Sigma2)
		for i := lo; i < hi; i++ {
			sub.Reseed(dist.DeriveSeed(root, uint64(i)))
			o := v[i*n : (i+1)*n]
			for j := range o {
				o[j] = mu + sd*sub.NormFloat64()
			}
		}
		return
	case dist.Point:
		for i := lo; i < hi; i++ {
			o := v[i*n : (i+1)*n]
			for j := range o {
				o[j] = dd.V
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		sub.Reseed(dist.DeriveSeed(root, uint64(i)))
		o := v[i*n : (i+1)*n]
		for j := range o {
			o[j] = d.Sample(&sub)
		}
	}
}

// Statistic is a function of a sample, e.g. the sample mean (Definition 1:
// "any function T of the sample is called a statistic").
type Statistic func(*learn.Sample) (float64, error)

// Mean is the sample-mean statistic.
func Mean(s *learn.Sample) (float64, error) { return s.Mean() }

// Variance is the unbiased sample-variance statistic.
func Variance(s *learn.Sample) (float64, error) { return s.Variance() }

// ProportionAbove returns the statistic measuring the fraction of
// observations exceeding v.
func ProportionAbove(v float64) Statistic {
	return func(s *learn.Sample) (float64, error) {
		return s.Proportion(func(x float64) bool { return x > v })
	}
}

// Classic performs the textbook single-sample bootstrap (§III-A): b
// resamples with replacement from s, computing stat on each, returning the
// bootstrap distribution of the statistic. Use PercentileInterval on the
// result for a confidence interval.
//
// Resamples run with up to runtime.GOMAXPROCS(0) workers; see
// ClassicWorkers.
func Classic(s *learn.Sample, stat Statistic, b int, rng *dist.Rand) ([]float64, error) {
	return ClassicWorkers(s, stat, b, rng, runtime.GOMAXPROCS(0))
}

// ClassicWorkers is Classic with an explicit worker bound. Resample i draws
// from RNG substream i of one value consumed off rng, so the bootstrap
// distribution is identical for every worker count. stat must be safe for
// concurrent calls on distinct samples (the built-in statistics are pure).
// Each worker reuses one scratch Sample across its whole chunk of
// resamples (learn.Sample.ResampleInto), so the loop does not allocate per
// resample.
func ClassicWorkers(s *learn.Sample, stat Statistic, b int, rng *dist.Rand, workers int) ([]float64, error) {
	if s == nil || s.Size() == 0 {
		return nil, learn.ErrEmptySample
	}
	if b < 1 {
		return nil, fmt.Errorf("bootstrap: resample count %d, need ≥ 1", b)
	}
	root := rng.Uint64()
	if b*s.Size() < serialCutoff {
		workers = 1
	}
	mClassic.Add(uint64(b))
	out := make([]float64, b)
	if workers <= 1 {
		if err := classicChunk(s, stat, root, 0, b, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	var (
		errMu    sync.Mutex
		firstErr error
	)
	parallel.ForChunks(workers, b, func(lo, hi int) {
		if err := classicChunk(s, stat, root, lo, hi, out); err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// classicChunk computes classic-bootstrap resamples [lo, hi): resample i
// draws from RNG substream i of root into a scratch sample reused across
// the whole chunk, then evaluates stat on it into out[i].
func classicChunk(s *learn.Sample, stat Statistic, root uint64, lo, hi int, out []float64) error {
	var (
		scratch learn.Sample
		sub     dist.Rand
	)
	for i := lo; i < hi; i++ {
		sub.Reseed(dist.DeriveSeed(root, uint64(i)))
		if err := s.ResampleInto(&scratch, &sub); err != nil {
			return err
		}
		v, err := stat(&scratch)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// ClassicInterval is a convenience wrapper: bootstrap s with b resamples and
// return the level-alpha percentile interval of stat.
func ClassicInterval(s *learn.Sample, stat Statistic, b int, alpha float64, rng *dist.Rand) (accuracy.Interval, error) {
	boot, err := Classic(s, stat, b, rng)
	if err != nil {
		return accuracy.Interval{}, err
	}
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return accuracy.Interval{}, fmt.Errorf("bootstrap: confidence level %v outside (0,1)", alpha)
	}
	return percentileIntervalInPlace(boot, alpha), nil
}
