// Package bootstrap implements the paper's §III: obtaining accuracy
// information via bootstraps instead of the analytical formulas.
//
// The central algorithm is BOOTSTRAP-ACCURACY-INFO: given a sequence of m
// values of an output random variable Y (produced either by a Monte Carlo
// query path or by sampling the result distribution directly), and Y's de
// facto sample size n, it groups the values into r = ⌊m/n⌋ d.f. resamples,
// computes the statistics of interest (bin heights, sample mean, sample
// variance) within each resample, and reports percentile intervals of each
// statistic over the r resamples (Theorem 2 establishes correctness via
// Lemma 4's concurrent-bootstrap argument).
//
// The package also provides the classic single-sample bootstrap
// (resampling with replacement, §III-A) used to cross-check the d.f.
// variant and to bootstrap source-data samples directly.
package bootstrap

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/accuracy"
	"repro/internal/dist"
	"repro/internal/learn"
)

// ErrTooFewValues reports that the value sequence cannot form enough d.f.
// resamples for percentile intervals to be meaningful.
var ErrTooFewValues = errors.New("bootstrap: too few values for requested resamples")

// DefaultResamples is the resample count the engine aims for when it
// controls m (the paper's Example 7 uses r = 20; convergence benches in
// bench_test.go justify the default).
const DefaultResamples = 40

// PercentileInterval returns the level-α percentile interval of values:
// the span between the 100·(1−α)/2-th and 100·(1+α)/2-th percentiles
// (lines 12–15 of BOOTSTRAP-ACCURACY-INFO). values is not modified.
func PercentileInterval(values []float64, alpha float64) (accuracy.Interval, error) {
	if len(values) < 2 {
		return accuracy.Interval{}, fmt.Errorf("%w: have %d values, need ≥ 2", ErrTooFewValues, len(values))
	}
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return accuracy.Interval{}, fmt.Errorf("bootstrap: confidence level %v outside (0,1)", alpha)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	lo := percentile(sorted, (1-alpha)/2)
	hi := percentile(sorted, (1+alpha)/2)
	return accuracy.Interval{Lo: lo, Hi: hi, Level: alpha}, nil
}

// percentile returns the p-th quantile of sorted values with linear
// interpolation (type-7).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// AccuracyInfo is algorithm BOOTSTRAP-ACCURACY-INFO.
//
// v is the sequence of output-variable values from query processing, n the
// d.f. sample size of the output variable (Lemma 3), and alpha the
// confidence level of the intervals. hist optionally supplies histogram
// bucket edges: when non-nil, per-bucket bin-height intervals are computed
// over the resamples exactly as lines 6–8 and 12–14 of the algorithm; when
// nil only mean and variance intervals are produced.
//
// It returns an error when fewer than 2 complete resamples fit in v
// (r = ⌊m/n⌋ < 2); the paper assumes "m is sufficiently large so that the
// confidence intervals ... converge".
func AccuracyInfo(v []float64, n int, alpha float64, hist *dist.Histogram) (*accuracy.Info, error) {
	if n < 2 {
		return nil, fmt.Errorf("bootstrap: d.f. sample size %d, need ≥ 2", n)
	}
	r := len(v) / n // line 1: number of d.f. resamples
	if r < 2 {
		return nil, fmt.Errorf("%w: m=%d values, n=%d gives r=%d resamples",
			ErrTooFewValues, len(v), n, r)
	}
	var (
		means     = make([]float64, r)
		variances = make([]float64, r)
		binProbs  [][]float64 // [bucket][resample]
	)
	if hist != nil {
		binProbs = make([][]float64, hist.NumBuckets())
		for k := range binProbs {
			binProbs[k] = make([]float64, r)
		}
	}
	for i := 0; i < r; i++ { // lines 2–11: one pass per resample
		o := v[i*n : (i+1)*n]
		sum := 0.0
		for _, x := range o {
			sum += x
		}
		mean := sum / float64(n)
		ss := 0.0
		for _, x := range o {
			d := x - mean
			ss += d * d
		}
		means[i] = mean
		variances[i] = ss / float64(n-1)
		if hist != nil {
			for _, x := range o {
				if k := hist.BucketIndex(x); k >= 0 {
					binProbs[k][i] += 1 / float64(n)
				}
			}
		}
	}
	meanIv, err := PercentileInterval(means, alpha)
	if err != nil {
		return nil, err
	}
	varIv, err := PercentileInterval(variances, alpha)
	if err != nil {
		return nil, err
	}
	info := &accuracy.Info{
		N:        n,
		Level:    alpha,
		Mean:     meanIv,
		Variance: varIv,
		Method:   "bootstrap",
	}
	if hist != nil {
		info.Bins = make([]accuracy.BinInterval, hist.NumBuckets())
		for k := range info.Bins {
			iv, err := PercentileInterval(binProbs[k], alpha)
			if err != nil {
				return nil, err
			}
			lo, hi := hist.Bucket(k)
			est := hist.BucketProb(k)
			info.Bins[k] = accuracy.BinInterval{
				Bucket:   k,
				Lo:       lo,
				Hi:       hi,
				Estimate: est,
				Interval: iv.Clamp(0, 1),
			}
		}
	}
	return info, nil
}

// FromDistribution covers the paper's second query-processing category
// (§III-B): the query produced a result distribution directly (no Monte
// Carlo value sequence), so we "sample from this distribution and also get
// a sequence of values", then run BOOTSTRAP-ACCURACY-INFO on it. r controls
// the number of d.f. resamples drawn (m = r·n values are sampled).
func FromDistribution(d dist.Distribution, n, r int, alpha float64, rng *dist.Rand) (*accuracy.Info, error) {
	if d == nil {
		return nil, errors.New("bootstrap: nil distribution")
	}
	if r < 2 {
		return nil, fmt.Errorf("bootstrap: resample count %d, need ≥ 2", r)
	}
	if n < 2 {
		return nil, fmt.Errorf("bootstrap: d.f. sample size %d, need ≥ 2", n)
	}
	v := dist.SampleN(d, n*r, rng)
	hist, _ := d.(*dist.Histogram)
	return AccuracyInfo(v, n, alpha, hist)
}

// Statistic is a function of a sample, e.g. the sample mean (Definition 1:
// "any function T of the sample is called a statistic").
type Statistic func(*learn.Sample) (float64, error)

// Mean is the sample-mean statistic.
func Mean(s *learn.Sample) (float64, error) { return s.Mean() }

// Variance is the unbiased sample-variance statistic.
func Variance(s *learn.Sample) (float64, error) { return s.Variance() }

// ProportionAbove returns the statistic measuring the fraction of
// observations exceeding v.
func ProportionAbove(v float64) Statistic {
	return func(s *learn.Sample) (float64, error) {
		return s.Proportion(func(x float64) bool { return x > v })
	}
}

// Classic performs the textbook single-sample bootstrap (§III-A): b
// resamples with replacement from s, computing stat on each, returning the
// bootstrap distribution of the statistic. Use PercentileInterval on the
// result for a confidence interval.
func Classic(s *learn.Sample, stat Statistic, b int, rng *dist.Rand) ([]float64, error) {
	if s == nil || s.Size() == 0 {
		return nil, learn.ErrEmptySample
	}
	if b < 1 {
		return nil, fmt.Errorf("bootstrap: resample count %d, need ≥ 1", b)
	}
	out := make([]float64, b)
	for i := range out {
		rs, err := s.Resample(rng)
		if err != nil {
			return nil, err
		}
		v, err := stat(rs)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ClassicInterval is a convenience wrapper: bootstrap s with b resamples and
// return the level-alpha percentile interval of stat.
func ClassicInterval(s *learn.Sample, stat Statistic, b int, alpha float64, rng *dist.Rand) (accuracy.Interval, error) {
	boot, err := Classic(s, stat, b, rng)
	if err != nil {
		return accuracy.Interval{}, err
	}
	return PercentileInterval(boot, alpha)
}
