package wal

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/fault"
)

func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close()

	if _, err := l.Append(RecStream, []byte("ddl")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	payloads := [][]byte{[]byte("b0"), []byte(""), []byte("b2 with spaces"), bytes.Repeat([]byte("y"), 5000)}
	first, last, err := l.AppendBatch(RecInsertBatch, payloads)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if first != 2 || last != 5 {
		t.Fatalf("AppendBatch LSNs = [%d,%d], want [2,5]", first, last)
	}
	if _, err := l.Append(RecInsert, []byte("after")); err != nil {
		t.Fatalf("Append after batch: %v", err)
	}
	recs := collect(t, l, 1)
	if len(recs) != 6 {
		t.Fatalf("replayed %d records, want 6", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d, want contiguous %d", i, r.LSN, i+1)
		}
	}
	for i, p := range payloads {
		r := recs[i+1]
		if r.Type != RecInsertBatch || !bytes.Equal(r.Payload, p) {
			t.Fatalf("batch record %d = {type %d, %q}, want {type %d, %q}",
				i, r.Type, r.Payload, RecInsertBatch, p)
		}
	}
}

func TestAppendBatchEmptyRejected(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()
	if _, _, err := l.AppendBatch(RecInsert, nil); err == nil {
		t.Fatal("AppendBatch(nil) succeeded, want error")
	}
}

func TestAppendBatchRotatesMidBatch(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	payloads := make([][]byte, 20)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("batch-record-%02d", i))
	}
	first, last, err := l.AppendBatch(RecInsertBatch, payloads)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if first != 1 || last != 20 {
		t.Fatalf("LSNs = [%d,%d], want [1,20]", first, last)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(fault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want mid-batch rotation to produce ≥ 3", len(segs))
	}
	l = mustOpen(t, dir, Options{SegmentBytes: 64})
	defer l.Close()
	recs := collect(t, l, 1)
	if len(recs) != 20 {
		t.Fatalf("replayed %d records, want 20", len(recs))
	}
}

// TestAppendBatchSingleFsync proves the group-commit claim directly: a
// whole batch under FsyncAlways costs exactly one fsync (segment rotation
// aside), versus one per record for serial Appends.
func TestAppendBatchSingleFsync(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{Policy: FsyncAlways})
	defer l.Close()

	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("row-%d", i))
	}
	before := mFsyncs.Value()
	if _, _, err := l.AppendBatch(RecInsertBatch, payloads); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if got := mFsyncs.Value() - before; got != 1 {
		t.Fatalf("AppendBatch of %d records issued %d fsyncs, want exactly 1", len(payloads), got)
	}
	if got, want := l.SyncedLSN(), l.LastLSN(); got != want {
		t.Fatalf("SyncedLSN = %d, want %d", got, want)
	}
}

// TestAppendBatchTornTail simulates a crash mid-batch: a valid prefix of
// the batch plus one torn frame on disk. Reopen must truncate the torn
// frame and recover exactly the prefix.
func TestAppendBatchTornTail(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("torn-batch-%d", i))
	}
	if _, _, err := l.AppendBatch(RecInsertBatch, payloads); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the file inside the last frame: drop its final 5 bytes, leaving
	// records 1..7 intact and record 8 torn.
	path := lastSegPath(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	l = mustOpen(t, dir, Options{})
	defer l.Close()
	if l.TruncatedBytes() == 0 {
		t.Fatal("TruncatedBytes = 0, want torn frame dropped")
	}
	recs := collect(t, l, 1)
	if len(recs) != 7 {
		t.Fatalf("recovered %d records, want the 7-record valid prefix", len(recs))
	}
	for i, r := range recs {
		if !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d payload = %q, want %q", i, r.Payload, payloads[i])
		}
	}
	// The log must keep appending cleanly after the truncation.
	lsn, err := l.Append(RecInsert, []byte("next"))
	if err != nil {
		t.Fatalf("Append after torn-batch recovery: %v", err)
	}
	if lsn != 8 {
		t.Fatalf("next lsn = %d, want 8 (torn record's slot reused)", lsn)
	}
}

// TestWaitDurableConcurrent hammers Append from many goroutines under
// FsyncAlways: every append must come back durable (SyncedLSN ≥ its LSN)
// and the log must replay all records. Group-commit coalescing is
// opportunistic, so only correctness is asserted here; the deterministic
// fsync count is covered by TestAppendBatchSingleFsync.
func TestWaitDurableConcurrent(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{Policy: FsyncAlways})
	defer l.Close()

	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := l.Append(RecInsert, []byte(fmt.Sprintf("g%d-%d", g, i)))
				if err != nil {
					errs <- err
					return
				}
				if l.SyncedLSN() < lsn {
					errs <- fmt.Errorf("append returned before lsn %d durable (synced %d)", lsn, l.SyncedLSN())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(collect(t, l, 1)); got != goroutines*per {
		t.Fatalf("replayed %d records, want %d", got, goroutines*per)
	}
}
