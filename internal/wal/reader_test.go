package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// readAvailable drains the reader until it reports a caught-up tail,
// asserting LSN continuity along the way.
func readAvailable(t *testing.T, r *Reader) []Record {
	t.Helper()
	var recs []Record
	for {
		rec, ok, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return recs
		}
		if len(recs) > 0 && rec.LSN != recs[len(recs)-1].LSN+1 {
			t.Fatalf("LSN gap: %d after %d", rec.LSN, recs[len(recs)-1].LSN)
		}
		recs = append(recs, rec)
	}
}

// TestReaderTailsAcrossRotation interleaves appends with reads on a log
// rotating every ~2 records: the reader must follow the live tail through
// every segment boundary without gaps, duplicates, or payload damage.
func TestReaderTailsAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: FsyncNone, SegmentBytes: 128})
	defer l.Close()

	r := l.NewReader(1)
	defer r.Close()

	var got []Record
	for round := 0; round < 10; round++ {
		appendN(t, l, 3, fmt.Sprintf("r%d", round))
		got = append(got, readAvailable(t, r)...)
	}
	segs, err := listSegments(fsOf(l), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments (rotation), got %d", len(segs))
	}
	if len(got) != 30 {
		t.Fatalf("read %d records, want 30", len(got))
	}
	for i, rec := range got {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
		want := fmt.Sprintf("r%d-%d", i/3, i%3)
		if string(rec.Payload) != want {
			t.Fatalf("record %d payload = %q, want %q", i, rec.Payload, want)
		}
	}
	// Caught up: the tail reports no record without error.
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("tail: ok=%v err=%v, want false,nil", ok, err)
	}
}

// TestReaderSeeksIntoLaterSegment starts a reader in the middle of the log
// (inside a later segment) and checks it delivers exactly the suffix.
func TestReaderSeeksIntoLaterSegment(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: FsyncNone, SegmentBytes: 128})
	defer l.Close()
	appendN(t, l, 20, "seek")

	r := l.NewReader(13)
	defer r.Close()
	recs := readAvailable(t, r)
	if len(recs) != 8 {
		t.Fatalf("read %d records from 13, want 8", len(recs))
	}
	if recs[0].LSN != 13 || recs[len(recs)-1].LSN != 20 {
		t.Fatalf("suffix spans %d..%d, want 13..20", recs[0].LSN, recs[len(recs)-1].LSN)
	}
}

// frameBytes builds one valid on-disk frame for the given record.
func frameBytes(lsn uint64, typ RecordType, payload []byte) []byte {
	buf := make([]byte, headerSize+metaSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(metaSize+len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], lsn)
	buf[16] = byte(typ)
	copy(buf[headerSize+metaSize:], payload)
	crc := crc32.Checksum(buf[8:], castagnoli)
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	return buf
}

// TestReaderTornTail writes a partial frame at the tail: the reader must
// report "nothing yet" (not an error, not a bogus record) until the rest of
// the frame lands, then deliver it intact.
func TestReaderTornTail(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: FsyncNone})
	appendN(t, l, 3, "pre")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(dir, nil, 1)
	defer r.Close()
	if got := len(readAvailable(t, r)); got != 3 {
		t.Fatalf("read %d records, want 3", got)
	}

	// Tear: only the first half of record 4 reaches the file.
	frame := frameBytes(4, RecInsert, []byte("torn-record-payload"))
	seg := filepath.Join(dir, segName(1))
	half := len(frame) / 2
	appendFile(t, seg, frame[:half])
	for i := 0; i < 3; i++ {
		if _, ok, err := r.Next(); ok || err != nil {
			t.Fatalf("torn tail attempt %d: ok=%v err=%v, want false,nil", i, ok, err)
		}
	}

	// The rest lands: the reader resumes from its saved offset.
	appendFile(t, seg, frame[half:])
	rec, ok, err := r.Next()
	if err != nil || !ok {
		t.Fatalf("after completion: ok=%v err=%v", ok, err)
	}
	if rec.LSN != 4 || string(rec.Payload) != "torn-record-payload" {
		t.Fatalf("got LSN %d payload %q", rec.LSN, rec.Payload)
	}
}

// TestReaderTruncatedPosition removes the reader's segment via
// post-checkpoint truncation: Next must fail with ErrTruncated so the
// consumer falls back to a snapshot.
func TestReaderTruncatedPosition(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: FsyncNone, SegmentBytes: 128})
	defer l.Close()
	appendN(t, l, 20, "trunc")

	if err := l.TruncateThrough(15); err != nil {
		t.Fatal(err)
	}
	oldest, err := l.OldestLSN()
	if err != nil {
		t.Fatal(err)
	}
	if oldest <= 1 {
		t.Fatalf("truncation removed nothing (oldest=%d)", oldest)
	}

	r := l.NewReader(1)
	defer r.Close()
	if _, _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Next after truncation: %v, want ErrTruncated", err)
	}
	// From the surviving suffix the reader still works.
	r2 := l.NewReader(oldest)
	defer r2.Close()
	recs := readAvailable(t, r2)
	if len(recs) == 0 || recs[0].LSN != oldest || recs[len(recs)-1].LSN != 20 {
		t.Fatalf("suffix read %d records starting %d", len(recs), oldest)
	}
}

// TestPinBlocksTruncation holds a Pin over the whole log and checks
// TruncateThrough keeps every pinned segment until the pin advances past
// it or is released.
func TestPinBlocksTruncation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: FsyncNone, SegmentBytes: 128})
	defer l.Close()
	appendN(t, l, 20, "pin")

	p := l.Pin(1)
	if err := l.TruncateThrough(20); err != nil {
		t.Fatal(err)
	}
	if oldest, _ := l.OldestLSN(); oldest != 1 {
		t.Fatalf("pinned log truncated: oldest=%d, want 1", oldest)
	}

	// Advancing the pin releases only the prefix behind it.
	p.Advance(10)
	if err := l.TruncateThrough(20); err != nil {
		t.Fatal(err)
	}
	oldest, _ := l.OldestLSN()
	if oldest <= 1 || oldest > 10 {
		t.Fatalf("after Advance(10): oldest=%d, want in (1,10]", oldest)
	}

	p.Release()
	if err := l.TruncateThrough(20); err != nil {
		t.Fatal(err)
	}
	if after, _ := l.OldestLSN(); after <= oldest {
		t.Fatalf("release did not unblock truncation: oldest=%d", after)
	}
}

func appendFile(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func fsOf(l *Log) fault.FS { return l.fs }
