package wal

import (
	"bufio"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fault"
)

// ErrTruncated reports that the record a Reader needs was removed by
// post-checkpoint truncation; the consumer must restart from a newer
// snapshot instead of tailing the log.
var ErrTruncated = errors.New("wal: reader position truncated")

// readerBufBytes sizes the Reader's buffered reads.
const readerBufBytes = 64 << 10

// Reader tails a log directory, delivering records in LSN order. It follows
// the live tail across segment rotations: Next returns ok=false when it has
// caught up (or when the next frame is only partially flushed), and a later
// call resumes from the same position once more bytes land. The Reader
// opens its own file handles, so it is safe to use concurrently with the
// appending Log; a single Reader is not safe for concurrent use.
type Reader struct {
	fs  fault.FS
	dir string

	next uint64 // LSN the next successful Next will deliver

	// Validated position: in the segment starting at segFirst, the frame at
	// byte offset off (if fully written) carries LSN pos. pos trails next
	// only while re-seeking after a reopen.
	segFirst uint64
	off      int64
	pos      uint64

	f      fault.File
	br     *bufio.Reader
	closed bool
}

// NewReader returns a Reader positioned at the record with LSN from
// (0 is treated as 1) over the log directory dir. A nil fs uses the real
// filesystem. Construction is lazy: missing or truncated positions are
// reported by Next.
func NewReader(dir string, fs fault.FS, from uint64) *Reader {
	if fs == nil {
		fs = fault.OS
	}
	if from == 0 {
		from = 1
	}
	return &Reader{fs: fs, dir: dir, next: from}
}

// NewReader returns a tailing Reader over this log's directory, positioned
// at the record with LSN from. See the package-level NewReader.
func (l *Log) NewReader(from uint64) *Reader {
	return NewReader(l.dir, l.fs, from)
}

// NextLSN returns the LSN the next successful Next call will deliver.
func (r *Reader) NextLSN() uint64 { return r.next }

// Next returns the next record in LSN order. ok=false with a nil error
// means the reader has caught up with the live tail (including a frame
// that is only partially flushed) — call again later. ErrTruncated means
// the wanted record was removed by checkpoint truncation and tailing
// cannot continue.
func (r *Reader) Next() (rec Record, ok bool, err error) {
	if r.closed {
		return Record{}, false, ErrClosed
	}
	for {
		if r.f == nil {
			ready, err := r.open()
			if err != nil || !ready {
				return Record{}, false, err
			}
		}
		rec, n, ferr := readFrame(r.br, r.pos)
		if ferr == nil {
			r.off += n
			r.pos++
			if rec.LSN >= r.next {
				r.next = rec.LSN + 1
				return rec, true, nil
			}
			continue // still seeking forward to r.next after a reopen
		}
		// EOF or a torn/partial frame: the bufio may have consumed part of
		// it, so drop the handle — the saved (segFirst, off, pos) position
		// lets the next attempt reopen cleanly — and check for a rotation.
		r.dropFile()
		rotated, rerr := r.rotate()
		if rerr != nil {
			return Record{}, false, rerr
		}
		if !rotated {
			return Record{}, false, nil
		}
	}
}

// Close releases the reader's file handle.
func (r *Reader) Close() error {
	r.dropFile()
	r.closed = true
	return nil
}

func (r *Reader) dropFile() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
		r.br = nil
	}
}

// open (re)opens the segment for the current position. It returns
// ready=false when there is nothing to read yet, and ErrTruncated when the
// position has been truncated away.
func (r *Reader) open() (ready bool, err error) {
	// Fast path: resume exactly where the last attempt left off.
	if r.segFirst != 0 {
		f, err := r.fs.Open(segPath(r.dir, r.segFirst))
		if err == nil {
			if _, serr := f.Seek(r.off, io.SeekStart); serr != nil {
				f.Close()
				return false, serr
			}
			r.f = f
			r.br = bufio.NewReaderSize(f, readerBufBytes)
			return true, nil
		}
		if !os.IsNotExist(err) {
			return false, err
		}
		// Segment vanished (truncation): fall through and re-derive.
		r.segFirst, r.off, r.pos = 0, 0, 0
	}
	segs, err := listSegments(r.fs, r.dir)
	if err != nil {
		return false, err
	}
	if len(segs) == 0 {
		return false, nil
	}
	if r.next < segs[0].first {
		return false, ErrTruncated
	}
	// The segment that holds (or will hold) r.next is the last one whose
	// first LSN is ≤ r.next.
	i := sort.Search(len(segs), func(i int) bool { return segs[i].first > r.next }) - 1
	f, err := r.fs.Open(segs[i].path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil // raced a truncation; retry later
		}
		return false, err
	}
	r.f = f
	r.br = bufio.NewReaderSize(f, readerBufBytes)
	r.segFirst = segs[i].first
	r.off = 0
	r.pos = segs[i].first
	return true, nil
}

// rotate switches to the successor segment when the current one has been
// sealed (a segment starting at exactly the next position exists).
func (r *Reader) rotate() (bool, error) {
	if r.pos == 0 {
		return false, nil
	}
	segs, err := listSegments(r.fs, r.dir)
	if err != nil {
		return false, err
	}
	for _, seg := range segs {
		if seg.first == r.pos && seg.first != r.segFirst {
			r.segFirst = r.pos
			r.off = 0
			return true, nil
		}
	}
	return false, nil
}

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, segName(first))
}
