package wal

import (
	"fmt"
	"testing"
)

// benchPayload is sized like a typical journaled INSERT: stream name,
// timestamp, and a handful of distribution field specs.
var benchPayload = []byte("temps 1712000000 N(21.5,2.25,40) N(19.25,1.5,25) 42.0")

func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []FsyncPolicy{FsyncNone, FsyncInterval, FsyncAlways} {
		b.Run(fmt.Sprint(policy), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(benchPayload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(RecInsert, benchPayload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALReplay measures recovery-replay throughput: scanning and
// CRC-checking a multi-segment log and handing each record to a callback.
func BenchmarkWALReplay(b *testing.B) {
	const records = 10000
	dir := b.TempDir()
	l, err := Open(dir, Options{Policy: FsyncNone, SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := l.Append(RecInsert, benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}

	rl, err := Open(dir, Options{Policy: FsyncNone, SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer rl.Close()
	b.SetBytes(int64(records * (headerSize + metaSize + len(benchPayload))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := rl.Replay(1, func(rec Record) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d records, want %d", n, records)
		}
	}
}
