package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
)

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int, prefix string) {
	t.Helper()
	for i := 0; i < n; i++ {
		typ := RecordType(i%4 + 1)
		if _, err := l.Append(typ, []byte(fmt.Sprintf("%s-%d", prefix, i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(from, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay(%d): %v", from, err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close()

	payloads := [][]byte{[]byte("a"), []byte(""), []byte("hello world"), bytes.Repeat([]byte("x"), 10000)}
	types := []RecordType{RecInsert, RecStream, RecQuery, RecClose}
	for i := range payloads {
		lsn, err := l.Append(types[i], payloads[i])
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if want := uint64(i + 1); lsn != want {
			t.Fatalf("lsn = %d, want %d", lsn, want)
		}
	}
	if got := l.LastLSN(); got != 4 {
		t.Fatalf("LastLSN = %d, want 4", got)
	}
	recs := collect(t, l, 1)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Type != types[i] || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d = {%d %d %q}, want {%d %d %q}",
				i, r.LSN, r.Type, r.Payload, i+1, types[i], payloads[i])
		}
	}
	if recs := collect(t, l, 3); len(recs) != 2 || recs[0].LSN != 3 {
		t.Fatalf("Replay(3) = %v, want records 3..4", recs)
	}
	if recs := collect(t, l, 99); len(recs) != 0 {
		t.Fatalf("Replay(99) = %v, want none", recs)
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	opts := Options{SegmentBytes: 64}
	l := mustOpen(t, dir, opts)
	appendN(t, l, 20, "rec")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(fault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce ≥ 3", len(segs))
	}

	l = mustOpen(t, dir, opts)
	defer l.Close()
	if got := l.LastLSN(); got != 20 {
		t.Fatalf("LastLSN after reopen = %d, want 20", got)
	}
	appendN(t, l, 5, "more")
	recs := collect(t, l, 1)
	if len(recs) != 25 {
		t.Fatalf("replayed %d records across segments, want 25", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d, want contiguous %d", i, r.LSN, i+1)
		}
	}
}

// lastSegPath returns the path of the newest segment.
func lastSegPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(fault.OS, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d segments)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

func TestTornTailTruncation(t *testing.T) {
	cases := []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"partial header", func(t *testing.T, path string) {
			appendRaw(t, path, []byte{0x01, 0x02, 0x03})
		}},
		{"header without payload", func(t *testing.T, path string) {
			// Claims 100 payload bytes that never made it to disk.
			appendRaw(t, path, []byte{100, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef})
		}},
		{"bad crc tail", func(t *testing.T, path string) {
			// A structurally complete frame whose CRC doesn't match.
			frame := make([]byte, headerSize+metaSize+3)
			frame[0] = metaSize + 3
			appendRaw(t, path, frame)
		}},
		{"garbage tail", func(t *testing.T, path string) {
			appendRaw(t, path, bytes.Repeat([]byte{0xff}, 50))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{})
			appendN(t, l, 3, "ok")
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			tc.tear(t, lastSegPath(t, dir))

			l = mustOpen(t, dir, Options{})
			defer l.Close()
			if l.TruncatedBytes() == 0 {
				t.Fatal("TruncatedBytes = 0, want the torn tail dropped")
			}
			if got := l.LastLSN(); got != 3 {
				t.Fatalf("LastLSN = %d, want 3 (valid prefix)", got)
			}
			// The log must accept appends cleanly after truncation.
			if lsn, err := l.Append(RecInsert, []byte("after")); err != nil || lsn != 4 {
				t.Fatalf("Append after truncation = (%d, %v), want (4, nil)", lsn, err)
			}
			recs := collect(t, l, 1)
			if len(recs) != 4 || string(recs[3].Payload) != "after" {
				t.Fatalf("replayed %d records, want 4 ending in %q", len(recs), "after")
			}
		})
	}
}

func appendRaw(t *testing.T, path string, data []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// corruptAt flips one byte of the file at offset.
func corruptAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// multiSegLog builds a log with several sealed segments and returns the
// open log plus the sorted segment list (≥ 3 segments).
func multiSegLog(t *testing.T) (*Log, string, []segment) {
	t.Helper()
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	appendN(t, l, 20, "rec")
	segs, err := listSegments(fault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want ≥ 3 segments, got %d", len(segs))
	}
	return l, dir, segs
}

func TestInteriorCorruptionIsErrCorrupt(t *testing.T) {
	t.Run("bad crc in sealed segment", func(t *testing.T) {
		l, _, segs := multiSegLog(t)
		defer l.Close()
		// Flip a payload byte of the first record in the first segment.
		corruptAt(t, segs[0].path, headerSize+metaSize)
		err := l.Replay(1, func(Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Replay = %v, want ErrCorrupt", err)
		}
	})
	t.Run("absurd length in sealed segment", func(t *testing.T) {
		l, _, segs := multiSegLog(t)
		defer l.Close()
		f, err := os.OpenFile(segs[0].path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		err = l.Replay(1, func(Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Replay = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated sealed segment", func(t *testing.T) {
		l, _, segs := multiSegLog(t)
		defer l.Close()
		fi, err := os.Stat(segs[0].path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(segs[0].path, fi.Size()-3); err != nil {
			t.Fatal(err)
		}
		err = l.Replay(1, func(Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Replay = %v, want ErrCorrupt", err)
		}
	})
	t.Run("missing segment", func(t *testing.T) {
		l, _, segs := multiSegLog(t)
		defer l.Close()
		if err := os.Remove(segs[1].path); err != nil {
			t.Fatal(err)
		}
		err := l.Replay(1, func(Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Replay = %v, want ErrCorrupt", err)
		}
	})
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close()
	appendN(t, l, 5, "rec")
	boom := errors.New("boom")
	n := 0
	err := l.Replay(1, func(Record) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Replay = %v, want the callback error", err)
	}
	if n != 3 {
		t.Fatalf("callback ran %d times, want replay to stop at 3", n)
	}
}

func TestTruncateThrough(t *testing.T) {
	l, dir, segs := multiSegLog(t)
	defer l.Close()
	// Checkpoint "covers" everything through the last record of the
	// second-to-last segment.
	ckLSN := segs[len(segs)-1].first - 1
	if err := l.TruncateThrough(ckLSN); err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	remaining, err := listSegments(fault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(remaining) != 1 {
		t.Fatalf("%d segments remain, want 1 (current)", len(remaining))
	}
	// The suffix after the checkpoint must still replay.
	recs := collect(t, l, ckLSN+1)
	if len(recs) == 0 || recs[0].LSN != ckLSN+1 {
		t.Fatalf("suffix replay = %v, want records from %d", recs, ckLSN+1)
	}
	// And appends continue.
	if _, err := l.Append(RecInsert, []byte("post")); err != nil {
		t.Fatalf("Append after truncate: %v", err)
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 1, "rec")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(RecInsert, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync on closed = %v, want ErrClosed", err)
	}
	if err := l.Replay(1, func(Record) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Replay on closed = %v, want ErrClosed", err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close()
	if _, err := l.Append(RecInsert, make([]byte, MaxRecordBytes)); err == nil {
		t.Fatal("Append accepted a record above MaxRecordBytes")
	}
	if _, err := l.Append(RecInsert, []byte("fine")); err != nil {
		t.Fatalf("normal append after rejection: %v", err)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{Policy: policy, SyncInterval: 5 * time.Millisecond})
			appendN(t, l, 10, "rec")
			if policy == FsyncInterval {
				time.Sleep(20 * time.Millisecond) // let the sync loop tick
			}
			if err := l.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l = mustOpen(t, dir, Options{Policy: policy})
			defer l.Close()
			if got := len(collect(t, l, 1)); got != 10 {
				t.Fatalf("replayed %d, want 10", got)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "Interval": FsyncInterval, "NONE": FsyncNone,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted an unknown policy")
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 3, "rec")
	l.Close()
	// Files that are not hex-named segments must not confuse recovery.
	for _, name := range []string{"notes.txt", "zzzz.wal", "0000000000000000.wal"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l = mustOpen(t, dir, Options{})
	defer l.Close()
	if got := len(collect(t, l, 1)); got != 3 {
		t.Fatalf("replayed %d, want 3", got)
	}
}
