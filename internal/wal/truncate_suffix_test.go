package wal

import (
	"fmt"
	"strings"
	"testing"
)

// smallSeg forces frequent rotation so suffix truncation exercises both
// whole-segment removal and mid-segment byte truncation.
const smallSeg = 256

func lastLSNs(recs []Record) string {
	var b strings.Builder
	for i, r := range recs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", r.LSN)
	}
	return b.String()
}

func TestTruncateSuffixMidSegment(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close()
	appendN(t, l, 10, "rec")

	if err := l.TruncateSuffix(7); err != nil {
		t.Fatalf("TruncateSuffix: %v", err)
	}
	if got := l.LastLSN(); got != 7 {
		t.Fatalf("LastLSN = %d, want 7", got)
	}
	recs := collect(t, l, 1)
	if len(recs) != 7 || recs[len(recs)-1].LSN != 7 {
		t.Fatalf("after truncate: lsns = %s, want 1..7", lastLSNs(recs))
	}

	// Appends continue seamlessly at 8 and the log stays replayable.
	lsn, err := l.Append(RecInsert, []byte("after"))
	if err != nil {
		t.Fatalf("Append after truncate: %v", err)
	}
	if lsn != 8 {
		t.Fatalf("post-truncate lsn = %d, want 8", lsn)
	}
	recs = collect(t, l, 1)
	if len(recs) != 8 || string(recs[7].Payload) != "after" {
		t.Fatalf("after re-append: %d records, payload %q", len(recs), recs[len(recs)-1].Payload)
	}
}

func TestTruncateSuffixAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: smallSeg})
	defer l.Close()
	appendN(t, l, 40, "seg") // several rotations

	if err := l.TruncateSuffix(5); err != nil {
		t.Fatalf("TruncateSuffix: %v", err)
	}
	if got := l.LastLSN(); got != 5 {
		t.Fatalf("LastLSN = %d, want 5", got)
	}
	recs := collect(t, l, 1)
	if len(recs) != 5 {
		t.Fatalf("after truncate: lsns = %s, want 1..5", lastLSNs(recs))
	}
	// Reopen from disk: the truncation must be durable and the tail clean.
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{SegmentBytes: smallSeg})
	defer l2.Close()
	if got := l2.LastLSN(); got != 5 {
		t.Fatalf("reopened LastLSN = %d, want 5", got)
	}
	appendN(t, l2, 3, "again")
	recs = collect(t, l2, 1)
	if len(recs) != 8 || recs[7].LSN != 8 {
		t.Fatalf("after reopen+append: lsns = %s, want 1..8", lastLSNs(recs))
	}
}

func TestTruncateSuffixWholeLogAndNoop(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: smallSeg})
	defer l.Close()
	appendN(t, l, 12, "all")

	// Boundary at or past the tail is a no-op.
	if err := l.TruncateSuffix(12); err != nil {
		t.Fatalf("TruncateSuffix(12): %v", err)
	}
	if err := l.TruncateSuffix(99); err != nil {
		t.Fatalf("TruncateSuffix(99): %v", err)
	}
	if got := l.LastLSN(); got != 12 {
		t.Fatalf("LastLSN = %d, want 12", got)
	}

	// Truncating everything restarts the log at after+1.
	if err := l.TruncateSuffix(0); err != nil {
		t.Fatalf("TruncateSuffix(0): %v", err)
	}
	if got := l.LastLSN(); got != 0 {
		t.Fatalf("LastLSN = %d, want 0", got)
	}
	if recs := collect(t, l, 1); len(recs) != 0 {
		t.Fatalf("after full truncate: %d records", len(recs))
	}
	lsn, err := l.Append(RecInsert, []byte("fresh"))
	if err != nil || lsn != 1 {
		t.Fatalf("Append after full truncate: lsn=%d err=%v", lsn, err)
	}
}

func TestTruncateSuffixRefusedWhilePinned(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close()
	appendN(t, l, 4, "pin")
	p := l.Pin(2)
	if err := l.TruncateSuffix(1); err == nil {
		t.Fatal("TruncateSuffix succeeded with an active pin")
	}
	if got := l.Pins(); got != 1 {
		t.Fatalf("Pins = %d, want 1", got)
	}
	p.Release()
	if got := l.Pins(); got != 0 {
		t.Fatalf("Pins after release = %d, want 0", got)
	}
	if err := l.TruncateSuffix(1); err != nil {
		t.Fatalf("TruncateSuffix after release: %v", err)
	}
}

func TestResetJumpsLSNSpace(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: FsyncAlways, SegmentBytes: smallSeg})
	defer l.Close()
	appendN(t, l, 9, "old")

	// A follower restoring a snapshot at LSN 100 resets to 101.
	if err := l.Reset(101); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if got := l.LastLSN(); got != 100 {
		t.Fatalf("LastLSN = %d, want 100", got)
	}
	// Everything below the reset point counts as durable (it lives in the
	// snapshot), so WaitDurable on it returns immediately.
	if err := l.WaitDurable(100); err != nil {
		t.Fatalf("WaitDurable(100): %v", err)
	}
	lsn, err := l.Append(RecInsert, []byte("replicated"))
	if err != nil || lsn != 101 {
		t.Fatalf("Append after reset: lsn=%d err=%v", lsn, err)
	}
	recs := collect(t, l, 1)
	if len(recs) != 1 || recs[0].LSN != 101 {
		t.Fatalf("after reset: lsns = %s, want exactly 101", lastLSNs(recs))
	}
	// Survives reopen.
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{SegmentBytes: smallSeg})
	defer l2.Close()
	if got := l2.LastLSN(); got != 101 {
		t.Fatalf("reopened LastLSN = %d, want 101", got)
	}
}
