// Package wal implements the write-ahead log of the durability subsystem:
// an append-only, CRC32-framed, segment-rotated journal of engine commands
// (tuple inserts, stream DDL, query registrations and closes).
//
// # On-disk format
//
// A log is a directory of segment files named by the LSN of their first
// record:
//
//	0000000000000001.wal
//	00000000000003e9.wal
//	...
//
// Each segment is a sequence of frames:
//
//	+----------+----------+===========================+
//	| len u32  | crc u32  | payload (len bytes)       |
//	+----------+----------+===========================+
//	payload = | lsn u64 | type u8 | data ... |
//
// All integers are little-endian; crc is CRC-32C (Castagnoli) over the
// payload. LSNs start at 1 and increase by exactly 1 per record across
// segment boundaries, so replay can detect missing segments.
//
// # Failure semantics
//
// Open truncates a torn tail: scanning the last segment, the first frame
// that is short, oversized, CRC-corrupt, or LSN-discontinuous ends the
// valid region, and the file is truncated there (a crash mid-append leaves
// at most one partial frame). Corruption anywhere else — an earlier
// segment, or a gap in the LSN sequence — is reported as ErrCorrupt by
// Replay, never a panic: the operator must intervene rather than silently
// losing interior history.
//
// # Fsync policy
//
// FsyncAlways syncs after every append (group-commit durability),
// FsyncInterval syncs from a background goroutine every SyncInterval
// (bounded data loss, default 100ms), FsyncNone leaves syncing to the OS.
// Every append is flushed to the OS immediately regardless of policy; the
// policy only governs fsync.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
)

// WAL observability: append volume, fsync pressure, segment churn, and
// recovery work. All instruments are observation-only and shared across
// every Log in the process.
var (
	mAppends = metrics.Default.Counter("asdb_wal_append_total",
		"records appended to the write-ahead log")
	mAppendBytes = metrics.Default.Counter("asdb_wal_append_bytes_total",
		"framed bytes appended to the write-ahead log")
	hAppend = metrics.Default.Histogram("asdb_wal_append_seconds",
		"wall time of one WAL append (including fsync under the always policy)",
		metrics.DefBuckets)
	mFsyncs = metrics.Default.Counter("asdb_wal_fsync_total",
		"fsync calls issued on WAL segments")
	hFsync = metrics.Default.Histogram("asdb_wal_fsync_seconds",
		"wall time of one WAL segment fsync", metrics.DefBuckets)
	mRotations = metrics.Default.Counter("asdb_wal_rotations_total",
		"WAL segment rotations")
	mReplayed = metrics.Default.Counter("asdb_wal_replay_records_total",
		"records delivered by WAL replay")
	mTornBytes = metrics.Default.Counter("asdb_wal_torn_bytes_total",
		"torn-tail bytes truncated when opening the WAL")
	mSegsDropped = metrics.Default.Counter("asdb_wal_segments_dropped_total",
		"segments removed by post-checkpoint truncation")
	hBatchRecords = metrics.Default.Histogram("asdb_wal_batch_records",
		"records per AppendBatch call", batchRecordBuckets)
	mSyncWaits = metrics.Default.Counter("asdb_wal_sync_wait_total",
		"WaitDurable calls that had to wait for durability")
	mSyncCoalesced = metrics.Default.Counter("asdb_wal_sync_coalesced_total",
		"WaitDurable calls satisfied by an fsync another caller already issued")
	mWedges = metrics.Default.Counter("asdb_wal_wedged_total",
		"WAL logs wedged by an append-path write or fsync failure")
)

var batchRecordBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

const (
	headerSize = 8 // u32 length + u32 crc
	metaSize   = 9 // u64 lsn + u8 type inside the payload

	// MaxRecordBytes bounds a single record; larger length fields are
	// treated as corruption (they would otherwise force huge allocations).
	MaxRecordBytes = 16 << 20

	// DefaultSegmentBytes is the rotation threshold.
	DefaultSegmentBytes = 4 << 20

	// DefaultSyncInterval is the FsyncInterval cadence.
	DefaultSyncInterval = 100 * time.Millisecond

	segSuffix = ".wal"
)

// ErrCorrupt reports an invalid frame (bad CRC, short frame, absurd
// length, or LSN discontinuity) outside the truncatable tail.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrWedged reports an append to a log disabled by an earlier write or
// fsync failure. Once a flush or fsync fails, the segment tail may hold a
// torn frame (or the kernel may have dropped dirty pages), so continuing to
// append — and acknowledge — records would risk acknowledged-then-lost
// writes and mid-file corruption. The log therefore goes append-wedged:
// every later append or sync fails fast with this error (reads and Replay
// still work), and the process must restart to recover from the valid
// prefix.
var ErrWedged = errors.New("wal: log wedged by earlier write failure")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FsyncPolicy selects when appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer.
	FsyncInterval
	// FsyncNone never syncs explicitly.
	FsyncNone
)

// ParseFsyncPolicy parses "always", "interval", or "none".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always | interval | none)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// RecordType tags what a record carries.
type RecordType uint8

const (
	// RecInsert is one ingested tuple (INSERT command payload).
	RecInsert RecordType = 1
	// RecStream is a stream DDL registration (STREAM command payload).
	RecStream RecordType = 2
	// RecQuery is a continuous-query registration ("id sql").
	RecQuery RecordType = 3
	// RecClose is a query deregistration ("id").
	RecClose RecordType = 4
	// RecInsertBatch is one multi-tuple ingest batch (INSERTBATCH command
	// payload). The whole batch lives in a single frame, so a crash
	// mid-append tears the entire batch, never a prefix of it.
	RecInsertBatch RecordType = 5
	// RecShed is an accuracy-degradation level transition (decimal level).
	// Shed transitions are journaled so WAL replay reproduces the exact
	// resample counts — and hence RNG evolution — of the live run.
	RecShed RecordType = 6
	// RecEpoch is a replication-epoch (term) bump, journaled by a promoted
	// follower at the instant it becomes primary (decimal epoch). Because
	// the epoch rides the ordinary WAL it survives crashes, ships to
	// followers through the ordinary replication stream, and marks the
	// exact LSN at which the new epoch's history begins — the boundary a
	// fenced old primary truncates back to when it rejoins.
	RecEpoch RecordType = 7
)

// Record is one journaled command.
type Record struct {
	LSN     uint64
	Type    RecordType
	Payload []byte
}

// Options tunes a Log. The zero value is usable: FsyncAlways policy,
// default segment size and sync interval.
type Options struct {
	Policy       FsyncPolicy
	SyncInterval time.Duration
	SegmentBytes int64
	// FS overrides the filesystem (fault injection in the chaos suite);
	// nil uses the real one.
	FS fault.FS
}

func (o Options) normalize() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FS == nil {
		o.FS = fault.OS
	}
	return o
}

// Log is an append-only write-ahead log. Safe for concurrent use.
//
// Durability under FsyncAlways uses group commit: AppendAsync writes and
// flushes the frame without syncing, and WaitDurable blocks until the
// record is on stable storage — the first waiter in becomes the leader and
// issues one fsync covering every record flushed so far, so concurrent
// committers (and whole AppendBatch calls) share a single fsync instead of
// paying one each. Append is the composition of the two.
type Log struct {
	dir  string
	opts Options
	fs   fault.FS

	mu        sync.Mutex
	f         fault.File
	w         *bufio.Writer
	segFirst  uint64 // LSN of the current segment's first record
	size      int64  // bytes written to the current segment
	nextLSN   uint64
	dirty     bool // bytes flushed to the OS but not fsynced
	closed    bool
	wedged    error // first append-path write/sync failure; nil = healthy
	truncated int64 // torn-tail bytes dropped at Open

	// pins holds the lowest LSN each registered Pin still needs;
	// TruncateThrough never removes a segment holding a pinned record.
	pins   map[int]uint64
	pinSeq int

	// syncMu serializes group-commit leaders; synced is the highest LSN
	// known to be on stable storage (monotonic, readable without locks).
	syncMu sync.Mutex
	synced atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if needed) the log directory, truncates any torn
// tail of the last segment, and positions the log for appending.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.normalize()
	fs := opts.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, fs: fs}
	if len(segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
		l.nextLSN = 1
	} else {
		last := segs[len(segs)-1]
		validLen, lastLSN, _, err := scanSegment(fs, last.path, last.first)
		if err != nil {
			return nil, err
		}
		fi, err := fs.Stat(last.path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if fi.Size() > validLen {
			l.truncated = fi.Size() - validLen
			mTornBytes.Add(uint64(l.truncated))
			if err := fs.Truncate(last.path, validLen); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
		}
		f, err := fs.OpenFile(last.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(validLen, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
		l.w = bufio.NewWriter(f)
		l.segFirst = last.first
		l.size = validLen
		l.nextLSN = lastLSN + 1
	}
	if opts.Policy == FsyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.Sync()
		case <-l.stop:
			return
		}
	}
}

// Append journals one record durably (per the fsync policy) and returns
// its LSN. Equivalent to AppendAsync followed by WaitDurable; independent
// committers calling Append concurrently share fsyncs via group commit.
func (l *Log) Append(typ RecordType, payload []byte) (uint64, error) {
	lsn, err := l.AppendAsync(typ, payload)
	if err != nil {
		return 0, err
	}
	return lsn, l.WaitDurable(lsn)
}

// AppendAsync writes and flushes one record without waiting for it to
// reach stable storage, returning its LSN. Callers needing durability
// (FsyncAlways) must follow with WaitDurable — typically after releasing
// whatever critical section ordered the append, so fsyncs coalesce.
func (l *Log) AppendAsync(typ RecordType, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.wedged != nil {
		return 0, l.wedgedErrLocked()
	}
	defer hAppend.ObserveSince(time.Now())
	if err := l.writeFrameLocked(typ, payload); err != nil {
		return 0, err
	}
	if err := l.w.Flush(); err != nil {
		return 0, l.wedgeLocked(err)
	}
	l.dirty = true
	return l.nextLSN - 1, nil
}

// wedgeLocked records the first append-path failure and disables further
// appends: a failed flush or fsync may have left a torn frame on disk (or
// dropped dirty pages), and appending past it would corrupt the interior of
// the log. Caller holds l.mu.
func (l *Log) wedgeLocked(err error) error {
	if l.wedged == nil {
		l.wedged = err
		mWedges.Inc()
	}
	return fmt.Errorf("wal: %w", err)
}

// wedgedErrLocked reports the standing wedge, wrapping the original cause.
func (l *Log) wedgedErrLocked() error {
	return fmt.Errorf("%w: %v", ErrWedged, l.wedged)
}

// wedgeSurgeryLocked wedges the log after a failure mid-surgery:
// TruncateSuffix and Reset close the active segment before rebuilding the
// tail, so any error past that point leaves the log without a usable file
// handle. Without the wedge, a later append would buffer over the closed
// fd and be acknowledged, only to fail at flush time with a confusing
// error. Unlike wedgeLocked it does not re-wrap (callers already did).
func (l *Log) wedgeSurgeryLocked(err error) error {
	if l.wedged == nil {
		l.wedged = err
		mWedges.Inc()
	}
	return err
}

// Wedged returns the write/sync failure that wedged the log, or nil.
func (l *Log) Wedged() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wedged
}

// AppendBatch journals payloads as consecutive records of one type with a
// single buffered-writer flush and — under FsyncAlways — a single fsync
// for the whole batch. It returns the first and last LSNs assigned.
func (l *Log) AppendBatch(typ RecordType, payloads [][]byte) (first, last uint64, err error) {
	if len(payloads) == 0 {
		return 0, 0, errors.New("wal: empty batch")
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, 0, ErrClosed
	}
	if l.wedged != nil {
		err := l.wedgedErrLocked()
		l.mu.Unlock()
		return 0, 0, err
	}
	t0 := time.Now()
	for _, p := range payloads {
		if err := l.writeFrameLocked(typ, p); err != nil {
			// Flush what was written so the LSN space stays consistent
			// with the file; the failed record consumed no LSN.
			l.w.Flush()
			l.mu.Unlock()
			return 0, 0, err
		}
	}
	if err := l.w.Flush(); err != nil {
		err = l.wedgeLocked(err)
		l.mu.Unlock()
		return 0, 0, err
	}
	l.dirty = true
	last = l.nextLSN - 1
	first = last - uint64(len(payloads)) + 1
	hAppend.ObserveSince(t0)
	hBatchRecords.Observe(float64(len(payloads)))
	l.mu.Unlock()
	return first, last, l.WaitDurable(last)
}

// writeFrameLocked frames and writes one record into the buffered writer,
// rotating segments as needed, and advances size/nextLSN. Caller holds
// l.mu and flushes afterwards.
func (l *Log) writeFrameLocked(typ RecordType, payload []byte) error {
	frameLen := int64(headerSize + metaSize + len(payload))
	if frameLen > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	if l.size > 0 && l.size+frameLen > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	lsn := l.nextLSN
	var hdr [headerSize + metaSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(metaSize+len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	hdr[16] = byte(typ)
	crc := crc32.Update(0, castagnoli, hdr[8:])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	// A bufio write only fails when it triggered a real flush, so bytes may
	// have reached the file mid-frame: wedge.
	if _, err := l.w.Write(hdr[:]); err != nil {
		return l.wedgeLocked(err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return l.wedgeLocked(err)
	}
	l.size += frameLen
	l.nextLSN++
	mAppends.Inc()
	mAppendBytes.Add(uint64(frameLen))
	return nil
}

// WaitDurable blocks until the record at lsn is on stable storage. Under
// FsyncInterval and FsyncNone it returns immediately (callers accepted the
// policy's durability window). Under FsyncAlways the first caller in
// becomes the group-commit leader: it issues one fsync covering everything
// flushed so far, and callers that arrive while it runs are satisfied by
// that same fsync.
func (l *Log) WaitDurable(lsn uint64) error {
	if l.opts.Policy != FsyncAlways {
		return nil
	}
	if l.synced.Load() >= lsn {
		return nil
	}
	mSyncWaits.Inc()
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced.Load() >= lsn {
		mSyncCoalesced.Inc()
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.wedged != nil {
		return l.wedgedErrLocked()
	}
	if err := l.w.Flush(); err != nil {
		return l.wedgeLocked(err)
	}
	if err := l.fsync(); err != nil {
		return l.wedgeLocked(err)
	}
	l.dirty = false
	return nil
}

// fsync syncs the current segment file, recording count and latency and
// advancing the durable watermark to cover every record written so far.
// Caller holds l.mu with the buffered writer flushed.
func (l *Log) fsync() error {
	t0 := time.Now()
	err := l.f.Sync()
	mFsyncs.Inc()
	hFsync.ObserveSince(t0)
	if err == nil {
		l.markSynced(l.nextLSN - 1)
	}
	return err
}

// markSynced raises the durable watermark monotonically.
func (l *Log) markSynced(lsn uint64) {
	for {
		cur := l.synced.Load()
		if cur >= lsn || l.synced.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// SyncedLSN returns the highest LSN known to be on stable storage (only
// maintained meaningfully under FsyncAlways; fsyncs from segment rotation
// and explicit Sync advance it under every policy).
func (l *Log) SyncedLSN() uint64 { return l.synced.Load() }

// rotateLocked finalizes the current segment and starts one at nextLSN.
func (l *Log) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return l.wedgeLocked(err)
	}
	if err := l.fsync(); err != nil {
		return l.wedgeLocked(err)
	}
	mRotations.Inc()
	if err := l.f.Close(); err != nil {
		return l.wedgeLocked(err)
	}
	return l.openSegment(l.nextLSN)
}

// openSegment creates the segment whose first record will be first.
func (l *Log) openSegment(first uint64) error {
	path := filepath.Join(l.dir, segName(first))
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segFirst = first
	l.size = 0
	l.dirty = false
	return syncDir(l.fs, l.dir)
}

// Sync flushes buffered appends and fsyncs the current segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed {
		return ErrClosed
	}
	if l.wedged != nil {
		return l.wedgedErrLocked()
	}
	if err := l.w.Flush(); err != nil {
		return l.wedgeLocked(err)
	}
	if !l.dirty {
		return nil
	}
	if err := l.fsync(); err != nil {
		return l.wedgeLocked(err)
	}
	l.dirty = false
	return nil
}

// Close syncs and closes the log. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.done
	}
	return err
}

// LastLSN returns the LSN of the most recent record (0 when empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// TruncatedBytes reports how many torn-tail bytes Open discarded.
func (l *Log) TruncatedBytes() int64 { return l.truncated }

// Replay calls fn for every record with LSN ≥ from, in order, verifying
// frame integrity and LSN continuity. It returns ErrCorrupt (wrapped with
// detail) on any invalid interior frame or missing segment; an error from
// fn aborts the replay.
func (l *Log) Replay(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// A wedged log already flushed everything up to the failure; the frames
	// on disk are the valid prefix Replay should read.
	if l.wedged == nil {
		if err := l.w.Flush(); err != nil {
			return l.wedgeLocked(err)
		}
	}
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	expect := uint64(0) // next LSN expected; 0 = take from first segment
	for i, seg := range segs {
		if expect != 0 && seg.first != expect {
			return fmt.Errorf("%w: segment %s starts at lsn %d, want %d (missing segment?)",
				ErrCorrupt, filepath.Base(seg.path), seg.first, expect)
		}
		// Skip segments entirely below the replay point (their last
		// record is first(next)-1).
		if i+1 < len(segs) && segs[i+1].first <= from {
			expect = segs[i+1].first
			continue
		}
		last, err := replaySegment(l.fs, seg.path, seg.first, from, func(rec Record) error {
			mReplayed.Inc()
			return fn(rec)
		})
		if err != nil {
			return err
		}
		expect = last + 1
	}
	return nil
}

// Pin protects the log suffix starting at from against TruncateThrough:
// while any pin at p is held, segments holding records with LSN ≥ p stay
// on disk. The replication handshake pins the suffix it is about to ship
// so a concurrent checkpoint cannot open a gap between the snapshot it
// handed out and the WAL records that follow it; the shipping loop then
// advances the pin as records go out so retention stays bounded.
type Pin struct {
	l  *Log
	id int
}

// Pin registers a truncation pin at from and returns it. Release it when
// the protected suffix is no longer needed.
func (l *Log) Pin(from uint64) *Pin {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pins == nil {
		l.pins = make(map[int]uint64)
	}
	l.pinSeq++
	p := &Pin{l: l, id: l.pinSeq}
	l.pins[p.id] = from
	return p
}

// Advance raises the pin point monotonically (lower values are ignored).
func (p *Pin) Advance(from uint64) {
	p.l.mu.Lock()
	if cur, ok := p.l.pins[p.id]; ok && from > cur {
		p.l.pins[p.id] = from
	}
	p.l.mu.Unlock()
}

// Release drops the pin. Safe to call more than once.
func (p *Pin) Release() {
	p.l.mu.Lock()
	delete(p.l.pins, p.id)
	p.l.mu.Unlock()
}

// Pins reports how many truncation pins are currently registered. The
// replication tests use it to assert that abandoned ship handshakes do not
// leak pins (a leaked pin blocks checkpoint pruning forever).
func (l *Log) Pins() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pins)
}

// pinnedFloorLocked clamps a truncation target so every pinned record
// survives. Caller holds l.mu.
func (l *Log) pinnedFloorLocked(lsn uint64) uint64 {
	for _, from := range l.pins {
		if from == 0 {
			return 0
		}
		if from-1 < lsn {
			lsn = from - 1
		}
	}
	return lsn
}

// OldestLSN returns the LSN of the first record still on disk (the first
// segment's first record). With no truncation that is 1 even while the log
// is empty: the initial segment is named for the record it will receive.
func (l *Log) OldestLSN() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return l.segFirst, nil
	}
	return segs[0].first, nil
}

// Policy reports the fsync policy the log was opened with.
func (l *Log) Policy() FsyncPolicy { return l.opts.Policy }

// FS returns the filesystem the log operates on (the injected fault.FS or
// the passthrough one). The cluster rejoin path reuses it for data-dir
// surgery, so fault-injection schedules cover that path too.
func (l *Log) FS() fault.FS { return l.fs }

// TruncateThrough removes segments whose records all have LSN ≤ lsn. The
// current segment is never removed, and segments protected by a Pin are
// kept. Call after a checkpoint at lsn: the remaining suffix is exactly
// what recovery must replay.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	lsn = l.pinnedFloorLocked(lsn)
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		if i+1 >= len(segs) || seg.first == l.segFirst {
			break // never the last/current segment
		}
		if segs[i+1].first-1 > lsn {
			break // segment holds records beyond lsn
		}
		if err := l.fs.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		mSegsDropped.Inc()
	}
	return syncDir(l.fs, l.dir)
}

// TruncateSuffix discards every record with LSN > after, so the next
// append receives LSN after+1. It is the fencing primitive of primary
// rejoin: a deposed primary that diverged past the epoch boundary cuts its
// WAL back to the last epoch-consistent LSN before re-attaching as a
// follower. Whole segments past the boundary are removed and the segment
// containing it is byte-truncated to the frame ending at after. The log
// must have no active pins or tailing readers (the caller shut replication
// down first); truncating with pins held is refused.
func (l *Log) TruncateSuffix(after uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.wedged != nil {
		return l.wedgedErrLocked()
	}
	if len(l.pins) > 0 {
		return fmt.Errorf("wal: truncate suffix with %d active pins", len(l.pins))
	}
	if after >= l.nextLSN-1 {
		return nil // nothing beyond after
	}
	if err := l.w.Flush(); err != nil {
		return l.wedgeLocked(err)
	}
	// From here the active segment handle is closed; every error return
	// below must wedge the log (wedgeSurgeryLocked) so subsequent appends
	// fail fast instead of writing into a buffer over a closed fd.
	if err := l.f.Close(); err != nil {
		return l.wedgeSurgeryLocked(fmt.Errorf("wal: %w", err))
	}
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return l.wedgeSurgeryLocked(err)
	}
	var keep []segment
	for _, seg := range segs {
		if seg.first > after {
			if err := l.fs.Remove(seg.path); err != nil {
				return l.wedgeSurgeryLocked(fmt.Errorf("wal: %w", err))
			}
			mSegsDropped.Inc()
			continue
		}
		keep = append(keep, seg)
	}
	if len(keep) == 0 {
		// The entire history was past the boundary (or the log held nothing
		// below it): restart with a fresh segment at after+1.
		l.nextLSN = after + 1
		if l.synced.Load() > after {
			l.synced.Store(after)
		}
		if err := l.openSegment(after + 1); err != nil {
			return l.wedgeSurgeryLocked(err)
		}
		return nil
	}
	last := keep[len(keep)-1]
	validLen, lastLSN, err := scanThrough(l.fs, last.path, last.first, after)
	if err != nil {
		return l.wedgeSurgeryLocked(err)
	}
	fi, err := l.fs.Stat(last.path)
	if err != nil {
		return l.wedgeSurgeryLocked(fmt.Errorf("wal: %w", err))
	}
	if fi.Size() > validLen {
		if err := l.fs.Truncate(last.path, validLen); err != nil {
			return l.wedgeSurgeryLocked(fmt.Errorf("wal: truncating suffix: %w", err))
		}
	}
	f, err := l.fs.OpenFile(last.path, os.O_WRONLY, 0)
	if err != nil {
		return l.wedgeSurgeryLocked(fmt.Errorf("wal: %w", err))
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return l.wedgeSurgeryLocked(fmt.Errorf("wal: %w", err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return l.wedgeSurgeryLocked(fmt.Errorf("wal: %w", err))
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segFirst = last.first
	l.size = validLen
	l.nextLSN = lastLSN + 1
	l.dirty = false
	if l.synced.Load() > lastLSN {
		l.synced.Store(lastLSN)
	}
	// A syncDir failure also wedges: the removals above may not be durable,
	// and a crash could resurrect a diverged segment in front of recovery.
	if err := syncDir(l.fs, l.dir); err != nil {
		return l.wedgeSurgeryLocked(err)
	}
	return nil
}

// Reset discards the entire log and positions it so the next append
// receives LSN next. A durable follower bootstrapped from a primary
// snapshot at LSN s calls Reset(s+1): the records below s+1 live in the
// snapshot, not in this log, and the replicated suffix it is about to
// journal must line up with the primary's LSN space. Records below next
// are marked durable (they are — in the snapshot). Refused while pins are
// held.
func (l *Log) Reset(next uint64) error {
	if next == 0 {
		return errors.New("wal: reset to lsn 0")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.wedged != nil {
		return l.wedgedErrLocked()
	}
	if len(l.pins) > 0 {
		return fmt.Errorf("wal: reset with %d active pins", len(l.pins))
	}
	if err := l.w.Flush(); err != nil {
		return l.wedgeLocked(err)
	}
	// As in TruncateSuffix: past this close, every error must wedge.
	if err := l.f.Close(); err != nil {
		return l.wedgeSurgeryLocked(fmt.Errorf("wal: %w", err))
	}
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return l.wedgeSurgeryLocked(err)
	}
	for _, seg := range segs {
		if err := l.fs.Remove(seg.path); err != nil {
			return l.wedgeSurgeryLocked(fmt.Errorf("wal: %w", err))
		}
		mSegsDropped.Inc()
	}
	l.nextLSN = next
	l.synced.Store(next - 1)
	if err := l.openSegment(next); err != nil {
		return l.wedgeSurgeryLocked(err)
	}
	return nil
}

type segment struct {
	first uint64
	path  string
}

func segName(first uint64) string {
	return fmt.Sprintf("%016x%s", first, segSuffix)
}

func listSegments(fs fault.FS, dir string) ([]segment, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil || first == 0 {
			continue // foreign file; ignore
		}
		segs = append(segs, segment{first: first, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// scanSegment validates frames sequentially and returns the length of the
// valid prefix and the last valid LSN (first-1 when the segment holds no
// valid record). Invalid tails are expected (torn appends) and simply end
// the scan; only I/O errors are returned.
func scanSegment(fs fault.FS, path string, first uint64) (validLen int64, lastLSN uint64, nrec int, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	lastLSN = first - 1
	for {
		_, frameLen, ferr := readFrame(r, lastLSN+1)
		if ferr != nil {
			return validLen, lastLSN, nrec, nil // torn/corrupt tail ends the valid prefix
		}
		validLen += frameLen
		lastLSN++
		nrec++
	}
}

// scanThrough walks a segment's frames up to and including LSN through,
// returning the byte length of that prefix and its last LSN. A torn or
// corrupt frame before through ends the walk early (like scanSegment): the
// prefix that validated is all the history the segment can vouch for.
func scanThrough(fs fault.FS, path string, first, through uint64) (validLen int64, lastLSN uint64, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	lastLSN = first - 1
	for lastLSN < through {
		_, frameLen, ferr := readFrame(r, lastLSN+1)
		if ferr != nil {
			break
		}
		validLen += frameLen
		lastLSN++
	}
	return validLen, lastLSN, nil
}

// replaySegment reads a fully-valid segment, calling fn for records with
// LSN ≥ from; any invalid frame is ErrCorrupt (Open already truncated the
// legitimate torn tail).
func replaySegment(fs fault.FS, path string, first, from uint64, fn func(Record) error) (lastLSN uint64, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	lastLSN = first - 1
	for {
		rec, _, ferr := readFrame(r, lastLSN+1)
		if ferr == io.EOF {
			return lastLSN, nil
		}
		if ferr != nil {
			return lastLSN, fmt.Errorf("%w: %s at lsn %d: %v",
				ErrCorrupt, filepath.Base(path), lastLSN+1, ferr)
		}
		lastLSN++
		if rec.LSN >= from {
			if err := fn(rec); err != nil {
				return lastLSN, err
			}
		}
	}
}

// readFrame decodes one frame, verifying length sanity, CRC, and that the
// record carries wantLSN. io.EOF means a clean end; any other error means
// the frame is invalid.
func readFrame(r *bufio.Reader, wantLSN uint64) (Record, int64, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, fmt.Errorf("short header: %v", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if length < metaSize || int64(length) > MaxRecordBytes-headerSize {
		return Record{}, 0, fmt.Errorf("bad length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, 0, fmt.Errorf("short frame: %v", err)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return Record{}, 0, errors.New("bad crc")
	}
	lsn := binary.LittleEndian.Uint64(payload[0:8])
	if lsn != wantLSN {
		return Record{}, 0, fmt.Errorf("lsn %d, want %d", lsn, wantLSN)
	}
	return Record{
		LSN:     lsn,
		Type:    RecordType(payload[8]),
		Payload: payload[metaSize:],
	}, int64(headerSize) + int64(length), nil
}

// syncDir fsyncs a directory so renames/creates/removes are durable.
func syncDir(fs fault.FS, dir string) error {
	d, err := fs.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
