package wal

import (
	"errors"
	"syscall"
	"testing"

	"repro/internal/fault"
)

// TestFsyncFailureWedges drives an injected fsync failure through Append and
// checks the contract end to end: the append reports the failure, the log
// wedges (no later append can be acknowledged), and a reopen recovers every
// record acknowledged before the fault — and nothing after it.
func TestFsyncFailureWedges(t *testing.T) {
	dir := t.TempDir()
	ifs := fault.NewInjectFS(nil, fault.Rule{
		Op: fault.OpSync, Path: segSuffix, After: 2, Count: 1, Err: fault.ErrFsync,
	})
	l := mustOpen(t, dir, Options{Policy: FsyncAlways, FS: ifs})

	// Two appends ride on the first two (healthy) fsyncs.
	for i := 0; i < 2; i++ {
		if _, err := l.Append(RecInsert, []byte{byte('a' + i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// The third fsync fails: the append must NOT be acknowledged.
	if _, err := l.Append(RecInsert, []byte("c")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append over failed fsync: got %v, want EIO", err)
	}
	// The log is now wedged even though the schedule healed.
	if _, err := l.Append(RecInsert, []byte("d")); !errors.Is(err, ErrWedged) {
		t.Fatalf("append after wedge: got %v, want ErrWedged", err)
	}
	if l.Wedged() == nil {
		t.Fatal("Wedged() = nil after fsync failure")
	}
	// Replay still works on a wedged log and sees the un-acked record's
	// frame or not — either is fine in-process; what matters is recovery.
	l.Close()

	// Reopen on the pristine filesystem: every acknowledged record must be
	// there; the failed append ("c") was flushed to the OS before the fsync
	// failed, so it may legitimately survive — but nothing past it can.
	l2 := mustOpen(t, dir, Options{Policy: FsyncAlways, FS: nil})
	defer l2.Close()
	recs := collect(t, l2, 1)
	if len(recs) < 2 || len(recs) > 3 {
		t.Fatalf("recovered %d records, want 2 or 3", len(recs))
	}
	if string(recs[0].Payload) != "a" || string(recs[1].Payload) != "b" {
		t.Fatalf("recovered payloads %q %q, want a b", recs[0].Payload, recs[1].Payload)
	}
	// The log must be appendable again after restart.
	if _, err := l2.Append(RecInsert, []byte("e")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestTornWriteRecovers injects an ENOSPC mid-frame (half the frame reaches
// the file) and checks that reopening truncates the torn tail and recovers
// exactly the acknowledged prefix.
func TestTornWriteRecovers(t *testing.T) {
	dir := t.TempDir()
	ifs := fault.NewInjectFS(nil)
	l := mustOpen(t, dir, Options{Policy: FsyncAlways, FS: ifs})

	for i := 0; i < 3; i++ {
		if _, err := l.Append(RecInsert, []byte{byte('a' + i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// From now on writes to the segment tear: disk full.
	ifs.AddRule(fault.Rule{Op: fault.OpWrite, Path: segSuffix, Torn: true, Err: fault.ErrNoSpace})
	// The frame is small enough to sit in bufio until Flush, which tears.
	if _, err := l.Append(RecInsert, []byte("doomed")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk: got %v, want ENOSPC", err)
	}
	if _, err := l.Append(RecInsert, []byte("x")); !errors.Is(err, ErrWedged) {
		t.Fatalf("append after ENOSPC: got %v, want ErrWedged", err)
	}
	l.Close()

	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if l2.TruncatedBytes() == 0 {
		t.Fatal("expected a torn tail to be truncated on reopen")
	}
	recs := collect(t, l2, 1)
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	for i, want := range []string{"a", "b", "c"} {
		if string(recs[i].Payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, recs[i].Payload, want)
		}
	}
	// LSNs continue from the recovered prefix.
	lsn, err := l2.Append(RecInsert, []byte("d"))
	if err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	if lsn != 4 {
		t.Fatalf("post-recovery lsn = %d, want 4", lsn)
	}
}

// TestTruncateSuffixFailureWedges injects a truncate failure into the
// mid-segment path of TruncateSuffix. The surgery has already closed the
// active segment by then, so the only safe outcome is a wedged log: the next
// append must fail fast with ErrWedged instead of being buffered over a
// closed fd and surfacing a confusing error at flush time.
func TestTruncateSuffixFailureWedges(t *testing.T) {
	dir := t.TempDir()
	ifs := fault.NewInjectFS(nil, fault.Rule{
		Op: fault.OpTruncate, Path: segSuffix, Count: 1, Err: fault.ErrFsync,
	})
	l := mustOpen(t, dir, Options{FS: ifs})
	defer l.Close()
	appendN(t, l, 5, "t")

	// Records 1..5 share one segment, so keeping LSN 2 truncates bytes off
	// the active segment — the injected failure fires there.
	if err := l.TruncateSuffix(2); err == nil {
		t.Fatal("TruncateSuffix over injected truncate failure succeeded")
	}
	if _, err := l.Append(RecInsert, []byte("x")); !errors.Is(err, ErrWedged) {
		t.Fatalf("append after failed TruncateSuffix: got %v, want ErrWedged", err)
	}
	if l.Wedged() == nil {
		t.Fatal("Wedged() = nil after failed TruncateSuffix")
	}

	// A reopen on the pristine filesystem recovers the untouched log: the
	// failed surgery never acknowledged a shorter history.
	l.Close()
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if got := len(collect(t, l2, 1)); got != 5 {
		t.Fatalf("recovered %d records after failed truncate, want 5", got)
	}
}

// TestResetFailureWedges does the same for Reset: an injected segment-removal
// failure after the active segment is closed must wedge the log.
func TestResetFailureWedges(t *testing.T) {
	dir := t.TempDir()
	ifs := fault.NewInjectFS(nil, fault.Rule{
		Op: fault.OpRemove, Path: segSuffix, Count: 1, Err: fault.ErrFsync,
	})
	l := mustOpen(t, dir, Options{FS: ifs})
	defer l.Close()
	appendN(t, l, 3, "r")

	if err := l.Reset(10); err == nil {
		t.Fatal("Reset over injected remove failure succeeded")
	}
	if _, err := l.Append(RecInsert, []byte("x")); !errors.Is(err, ErrWedged) {
		t.Fatalf("append after failed Reset: got %v, want ErrWedged", err)
	}
	if l.Wedged() == nil {
		t.Fatal("Wedged() = nil after failed Reset")
	}
}

// TestBatchFsyncFailureNoPartialAck checks AppendBatch against an injected
// fsync failure: the whole batch is unacknowledged, and no later batch can
// sneak past the wedge.
func TestBatchFsyncFailureNoPartialAck(t *testing.T) {
	dir := t.TempDir()
	ifs := fault.NewInjectFS(nil, fault.Rule{
		Op: fault.OpSync, Path: segSuffix, After: 1, Err: fault.ErrFsync,
	})
	l := mustOpen(t, dir, Options{Policy: FsyncAlways, FS: ifs})

	if _, _, err := l.AppendBatch(RecInsertBatch, [][]byte{[]byte("ok1"), []byte("ok2")}); err != nil {
		t.Fatalf("healthy batch: %v", err)
	}
	_, _, err := l.AppendBatch(RecInsertBatch, [][]byte{[]byte("bad1"), []byte("bad2")})
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("batch over failed fsync: got %v, want EIO", err)
	}
	if _, _, err := l.AppendBatch(RecInsertBatch, [][]byte{[]byte("later")}); !errors.Is(err, ErrWedged) {
		t.Fatalf("batch after wedge: got %v, want ErrWedged", err)
	}
	l.Close()

	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	recs := collect(t, l2, 1)
	// The acknowledged batch must be fully present; the failed batch was
	// flushed (not synced) so its survival is legal but not required. The
	// "later" batch must never appear.
	if len(recs) < 2 {
		t.Fatalf("recovered %d records, want >= 2", len(recs))
	}
	for _, rec := range recs {
		if string(rec.Payload) == "later" {
			t.Fatal("wedged batch leaked into the log")
		}
	}
	if string(recs[0].Payload) != "ok1" || string(recs[1].Payload) != "ok2" {
		t.Fatalf("acknowledged batch corrupted: %q %q", recs[0].Payload, recs[1].Payload)
	}
}
