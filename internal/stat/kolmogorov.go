package stat

import "math"

// KolmogorovQ returns Q_KS(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}, the
// asymptotic tail probability of the Kolmogorov statistic: the p-value of
// a two-sample KS test with scaled statistic λ. Q is 1 at λ = 0 and falls
// monotonically to 0.
func KolmogorovQ(lambda float64) float64 {
	if math.IsNaN(lambda) {
		return math.NaN()
	}
	if lambda <= 0 {
		return 1
	}
	// The series alternates and converges extremely fast for λ ≳ 0.3;
	// below that the value is effectively 1.
	const maxTerms = 100
	sum := 0.0
	sign := 1.0
	for k := 1; k <= maxTerms; k++ {
		term := math.Exp(-2 * float64(k) * float64(k) * lambda * lambda)
		sum += sign * term
		if term < 1e-16 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	switch {
	case q < 0:
		return 0
	case q > 1:
		return 1
	}
	return q
}

// KolmogorovLambda applies the small-sample correction of Stephens (as
// popularized by Numerical Recipes): λ = (√n_e + 0.12 + 0.11/√n_e)·D,
// where n_e is the effective sample size and D the KS statistic.
func KolmogorovLambda(d float64, ne float64) float64 {
	if ne <= 0 || d < 0 {
		return 0
	}
	s := math.Sqrt(ne)
	return (s + 0.12 + 0.11/s) * d
}
