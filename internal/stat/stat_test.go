package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{2.5758293035489004, 0.995},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		approx(t, "NormCDF", NormCDF(c.x), c.want, 1e-12)
	}
}

func TestNormQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.05, -1.6448536269514722},
		{0.995, 2.5758293035489004},
		{0.9999, 3.719016485455709},
		{1e-10, -6.361340902404056},
	}
	for _, c := range cases {
		approx(t, "NormQuantile", NormQuantile(c.p), c.want, 1e-9)
	}
}

func TestNormQuantileExtremes(t *testing.T) {
	if got := NormQuantile(0); !math.IsInf(got, -1) {
		t.Errorf("NormQuantile(0) = %g, want -Inf", got)
	}
	if got := NormQuantile(1); !math.IsInf(got, 1) {
		t.Errorf("NormQuantile(1) = %g, want +Inf", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("NormQuantile(-0.1) did not panic")
		}
	}()
	NormQuantile(-0.1)
}

func TestNormRoundTrip(t *testing.T) {
	f := func(u float64) bool {
		p := math.Mod(math.Abs(u), 0.98) + 0.01 // p in [0.01, 0.99]
		x := NormQuantile(p)
		return math.Abs(NormCDF(x)-p) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZUpper(t *testing.T) {
	// Paper Example 2: z_{0.05} = 1.645.
	approx(t, "ZUpper(0.05)", ZUpper(0.05), 1.6448536269514722, 1e-9)
	approx(t, "ZUpper(0.025)", ZUpper(0.025), 1.959963984540054, 1e-9)
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		got, err := GammaP(1, x)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "GammaP(1,x)", got, 1-math.Exp(-x), 1e-12)
	}
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.1, 0.5, 1, 2, 4} {
		got, err := GammaP(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "GammaP(0.5,x)", got, math.Erf(math.Sqrt(x)), 1e-12)
	}
}

func TestGammaPQComplement(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 10, 50} {
		for _, x := range []float64{0.01, 0.5, 1, 3, 10, 60} {
			p, err1 := GammaP(a, x)
			q, err2 := GammaQ(a, x)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			approx(t, "P+Q", p+q, 1, 1e-12)
		}
	}
}

func TestGammaPDomain(t *testing.T) {
	if _, err := GammaP(-1, 1); err == nil {
		t.Error("GammaP(-1,1): want error")
	}
	if _, err := GammaP(1, -1); err == nil {
		t.Error("GammaP(1,-1): want error")
	}
	if _, err := GammaP(math.NaN(), 1); err == nil {
		t.Error("GammaP(NaN,1): want error")
	}
}

func TestBetaIncKnownValues(t *testing.T) {
	// I_x(1, 1) = x.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got, err := BetaInc(1, 1, x)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "BetaInc(1,1,x)", got, x, 1e-12)
	}
	// I_x(2, 2) = x²(3-2x).
	for _, x := range []float64{0.1, 0.3, 0.5, 0.9} {
		got, err := BetaInc(2, 2, x)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "BetaInc(2,2,x)", got, x*x*(3-2*x), 1e-12)
	}
	// Symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
	g1, _ := BetaInc(3.5, 1.2, 0.3)
	g2, _ := BetaInc(1.2, 3.5, 0.7)
	approx(t, "beta symmetry", g1+g2, 1, 1e-12)
}

func TestBetaIncDomain(t *testing.T) {
	for _, c := range []struct{ a, b, x float64 }{
		{0, 1, 0.5}, {1, 0, 0.5}, {1, 1, -0.1}, {1, 1, 1.1}, {math.NaN(), 1, 0.5},
	} {
		if _, err := BetaInc(c.a, c.b, c.x); err == nil {
			t.Errorf("BetaInc(%v,%v,%v): want error", c.a, c.b, c.x)
		}
	}
}

func TestTCDFKnownValues(t *testing.T) {
	// t with 1 d.o.f. is Cauchy: CDF(x) = 1/2 + atan(x)/π.
	for _, x := range []float64{-3, -1, 0, 0.5, 2, 10} {
		got, err := TCDF(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "TCDF(x,1)", got, 0.5+math.Atan(x)/math.Pi, 1e-12)
	}
	// Large df approaches normal.
	got, _ := TCDF(1.96, 1e7)
	approx(t, "TCDF(1.96,1e7)", got, NormCDF(1.96), 1e-6)
}

func TestTQuantileKnownValues(t *testing.T) {
	// Classic t-table values (upper percentile = TUpper).
	cases := []struct {
		a, df, want float64
	}{
		{0.05, 9, 1.8331129326536335}, // paper Example 3: t_{0.05}, 9 d.o.f. = 1.833
		{0.025, 9, 2.2621571627409915},
		{0.05, 19, 1.729132811521367},
		{0.005, 4, 4.604094871415897},
		{0.10, 1, 3.0776835371752527},
	}
	for _, c := range cases {
		got, err := TUpper(c.a, c.df)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "TUpper", got, c.want, 1e-8)
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 9, 29, 100} {
		for _, p := range []float64{0.01, 0.1, 0.3} {
			lo, err1 := TQuantile(p, df)
			hi, err2 := TQuantile(1-p, df)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			approx(t, "t symmetry", lo+hi, 0, 1e-10)
		}
	}
	if q, err := TQuantile(0.5, 7); err != nil || q != 0 {
		t.Errorf("TQuantile(0.5,7) = %v, %v; want 0, nil", q, err)
	}
}

func TestTRoundTrip(t *testing.T) {
	f := func(u float64, dfSeed uint8) bool {
		p := math.Mod(math.Abs(u), 0.98) + 0.01
		df := float64(dfSeed%60) + 1
		x, err := TQuantile(p, df)
		if err != nil {
			return false
		}
		c, err := TCDF(x, df)
		return err == nil && math.Abs(c-p) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// χ² with 2 d.o.f. is Exp(1/2): CDF(x) = 1 - e^{-x/2}.
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		got, err := ChiSquareCDF(x, 2)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "ChiSquareCDF(x,2)", got, 1-math.Exp(-x/2), 1e-12)
	}
}

func TestChiSquareQuantileKnownValues(t *testing.T) {
	// Table values; paper Example 3 uses χ²_{0.05}(9) = 16.919.
	cases := []struct {
		a, df, want float64
	}{
		{0.05, 9, 16.918977604620448},
		{0.95, 9, 3.325112843066815},
		{0.025, 9, 19.02276779864163},
		{0.975, 9, 2.7003894999803584},
		{0.05, 1, 3.841458820694124},
	}
	for _, c := range cases {
		got, err := ChiSquareUpper(c.a, c.df)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "ChiSquareUpper", got, c.want, 1e-7)
	}
}

func TestChiSquareRoundTrip(t *testing.T) {
	f := func(u float64, dfSeed uint8) bool {
		p := math.Mod(math.Abs(u), 0.98) + 0.01
		df := float64(dfSeed%60) + 1
		x, err := ChiSquareQuantile(p, df)
		if err != nil {
			return false
		}
		c, err := ChiSquareCDF(x, df)
		return err == nil && math.Abs(c-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquareQuantileEdges(t *testing.T) {
	if q, err := ChiSquareQuantile(0, 5); err != nil || q != 0 {
		t.Errorf("quantile(0) = %v, %v", q, err)
	}
	if q, err := ChiSquareQuantile(1, 5); err != nil || !math.IsInf(q, 1) {
		t.Errorf("quantile(1) = %v, %v", q, err)
	}
	if _, err := ChiSquareQuantile(0.5, -1); err == nil {
		t.Error("negative df: want error")
	}
}

func TestQuantileMonotone(t *testing.T) {
	ps := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	prevN, prevT, prevC := math.Inf(-1), math.Inf(-1), -1.0
	for _, p := range ps {
		n := NormQuantile(p)
		tv, err := TQuantile(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := ChiSquareQuantile(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		if n <= prevN || tv <= prevT || cv <= prevC {
			t.Fatalf("quantiles not strictly increasing at p=%v", p)
		}
		prevN, prevT, prevC = n, tv, cv
	}
}

func TestCheckProb(t *testing.T) {
	for _, p := range []float64{0.001, 0.5, 0.999} {
		if err := CheckProb(p); err != nil {
			t.Errorf("CheckProb(%v) = %v, want nil", p, err)
		}
	}
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if err := CheckProb(p); err == nil {
			t.Errorf("CheckProb(%v) = nil, want error", p)
		}
	}
}

func TestPDFsIntegrateToCDF(t *testing.T) {
	// Trapezoid-integrate each PDF and compare with the CDF as a sanity
	// check linking the densities to the distribution functions.
	integ := func(pdf func(float64) float64, lo, hi float64, n int) float64 {
		h := (hi - lo) / float64(n)
		sum := (pdf(lo) + pdf(hi)) / 2
		for i := 1; i < n; i++ {
			sum += pdf(lo + float64(i)*h)
		}
		return sum * h
	}
	got := integ(NormPDF, -8, 1.3, 40000)
	approx(t, "∫normPDF", got, NormCDF(1.3), 1e-6)

	df := 11.0
	got = integ(func(x float64) float64 { return TPDF(x, df) }, -60, 0.7, 120000)
	want, _ := TCDF(0.7, df)
	approx(t, "∫tPDF", got, want, 1e-5)

	got = integ(func(x float64) float64 { return ChiSquarePDF(x, df) }, 0, 9, 40000)
	want, _ = ChiSquareCDF(9, df)
	approx(t, "∫chi2PDF", got, want, 1e-6)
}

func TestEdgeBranches(t *testing.T) {
	// ZUpper panics outside (0,1).
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ZUpper(0) did not panic")
			}
		}()
		ZUpper(0)
	}()
	// Gamma boundary values.
	if p, err := GammaP(2, 0); err != nil || p != 0 {
		t.Errorf("GammaP(2,0) = %v, %v", p, err)
	}
	if p, err := GammaP(2, math.Inf(1)); err != nil || p != 1 {
		t.Errorf("GammaP(2,Inf) = %v, %v", p, err)
	}
	if q, err := GammaQ(2, 0); err != nil || q != 1 {
		t.Errorf("GammaQ(2,0) = %v, %v", q, err)
	}
	if q, err := GammaQ(2, math.Inf(1)); err != nil || q != 0 {
		t.Errorf("GammaQ(2,Inf) = %v, %v", q, err)
	}
	if _, err := GammaQ(-1, 1); err == nil {
		t.Error("GammaQ(-1,1): want error")
	}
	// TCDF at infinities and bad df.
	if c, err := TCDF(math.Inf(1), 5); err != nil || c != 1 {
		t.Errorf("TCDF(+Inf) = %v, %v", c, err)
	}
	if c, err := TCDF(math.Inf(-1), 5); err != nil || c != 0 {
		t.Errorf("TCDF(-Inf) = %v, %v", c, err)
	}
	if _, err := TCDF(0, -1); err == nil {
		t.Error("TCDF bad df: want error")
	}
	// TQuantile edges.
	if q, err := TQuantile(0, 5); err != nil || !math.IsInf(q, -1) {
		t.Errorf("TQuantile(0) = %v, %v", q, err)
	}
	if q, err := TQuantile(1, 5); err != nil || !math.IsInf(q, 1) {
		t.Errorf("TQuantile(1) = %v, %v", q, err)
	}
	if _, err := TQuantile(math.NaN(), 5); err == nil {
		t.Error("TQuantile(NaN): want error")
	}
	if _, err := TQuantile(0.5, 0); err == nil {
		t.Error("TQuantile df=0: want error")
	}
	if _, err := TUpper(1.5, 5); err == nil {
		t.Error("TUpper bad level: want error")
	}
	// ChiSquare edges.
	if c, err := ChiSquareCDF(-1, 5); err != nil || c != 0 {
		t.Errorf("ChiSquareCDF(-1) = %v, %v", c, err)
	}
	if _, err := ChiSquareCDF(1, -1); err == nil {
		t.Error("ChiSquareCDF bad df: want error")
	}
	if _, err := ChiSquareUpper(0, 5); err == nil {
		t.Error("ChiSquareUpper bad level: want error")
	}
	if _, err := ChiSquareQuantile(math.NaN(), 5); err == nil {
		t.Error("ChiSquareQuantile(NaN): want error")
	}
	// CheckLevel mirrors CheckProb.
	if err := CheckLevel(0.9); err != nil {
		t.Errorf("CheckLevel(0.9) = %v", err)
	}
	if err := CheckLevel(1); err == nil {
		t.Error("CheckLevel(1): want error")
	}
}

func TestKolmogorovLocal(t *testing.T) {
	// Package-local sanity for the Kolmogorov helpers (the statistical
	// behaviour is tested with the KS test in internal/hypothesis).
	if KolmogorovQ(0) != 1 {
		t.Error("Q(0) != 1")
	}
	if q := KolmogorovQ(5); q > 1e-10 {
		t.Errorf("Q(5) = %g, want ≈0", q)
	}
	if l := KolmogorovLambda(0.2, 100); math.Abs(l-(10+0.12+0.011)*0.2) > 1e-9 {
		t.Errorf("lambda = %g", l)
	}
	if KolmogorovLambda(0.2, 0) != 0 || KolmogorovLambda(-1, 100) != 0 {
		t.Error("degenerate lambda should be 0")
	}
}
