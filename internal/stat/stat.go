// Package stat implements the statistical special functions the rest of the
// system is built on: the regularized incomplete gamma and beta functions,
// and the density, cumulative distribution, and quantile (inverse CDF)
// functions of the standard normal, Student's t, and chi-square
// distributions.
//
// The paper's analytical accuracy methods (Lemmas 1 and 2) need upper
// percentiles of exactly these three distributions:
//
//   - z_{(1-c)/2}    standard normal (bin-height and large-n mean intervals)
//   - t_{(1-c)/2}    Student's t with n-1 d.o.f. (small-n mean intervals)
//   - chi²_{(1±c)/2} chi-square with n-1 d.o.f. (variance intervals)
//
// Everything here is implemented from scratch on top of math.Erf/math.Lgamma
// using standard numerical methods (Wichura AS 241 for the normal quantile,
// Lentz continued fractions for the incomplete gamma/beta), accurate to
// roughly 1e-12 in the central range, which is far beyond what confidence
// intervals on n ≤ 10⁶ samples can resolve.
package stat

import (
	"errors"
	"math"
)

// ErrDomain is returned (or wrapped) by functions asked to evaluate outside
// their mathematical domain, e.g. a probability not in (0, 1).
var ErrDomain = errors.New("stat: argument outside domain")

const (
	// maxIter bounds the continued-fraction and series loops. The
	// fractions converge in a few dozen iterations for all arguments the
	// database produces; 500 leaves a wide margin.
	maxIter = 500
	// eps is the relative convergence target for the iterative methods.
	eps = 1e-14
	// tiny guards Lentz's algorithm against division by zero.
	tiny = 1e-300
)

// --- Standard normal ---

// NormPDF returns the density of the standard normal distribution at x.
func NormPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// NormCDF returns P(Z ≤ x) for a standard normal Z.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormQuantile returns the p-quantile of the standard normal distribution,
// i.e. the x with P(Z ≤ x) = p. It panics if p is outside (0, 1); callers
// that accept user input must validate first (see CheckProb).
//
// The implementation is Wichura's algorithm AS 241 (PPND16), with one
// Halley refinement step; absolute error is below 1e-15 over (1e-300, 1-1e-16).
func NormQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		panic("stat: NormQuantile requires 0 < p < 1")
	}
	q := p - 0.5
	var x float64
	if math.Abs(q) <= 0.425 {
		// Central region: rational approximation in q².
		r := 0.180625 - q*q
		x = q * (((((((2.5090809287301226727e3*r+3.3430575583588128105e4)*r+
			6.7265770927008700853e4)*r+4.5921953931549871457e4)*r+
			1.3731693765509461125e4)*r+1.9715909503065514427e3)*r+
			1.3314166789178437745e2)*r + 3.3871328727963666080e0) /
			(((((((5.2264952788528545610e3*r+2.8729085735721942674e4)*r+
				3.9307895800092710610e4)*r+2.1213794301586595867e4)*r+
				5.3941960214247511077e3)*r+6.8718700749205790830e2)*r+
				4.2313330701600911252e1)*r + 1.0)
	} else {
		// Tail region: rational approximation in sqrt(-log r).
		r := p
		if q > 0 {
			r = 1 - p
		}
		r = math.Sqrt(-math.Log(r))
		if r <= 5 {
			r -= 1.6
			x = (((((((7.74545014278341407640e-4*r+2.27238449892691845833e-2)*r+
				2.41780725177450611770e-1)*r+1.27045825245236838258e0)*r+
				3.64784832476320460504e0)*r+5.76949722146069140550e0)*r+
				4.63033784615654529590e0)*r + 1.42343711074968357734e0) /
				(((((((1.05075007164441684324e-9*r+5.47593808499534494600e-4)*r+
					1.51986665636164571966e-2)*r+1.48103976427480074590e-1)*r+
					6.89767334985100004550e-1)*r+1.67638483018380384940e0)*r+
					2.05319162663775882187e0)*r + 1.0)
		} else {
			r -= 5
			x = (((((((2.01033439929228813265e-7*r+2.71155556874348757815e-5)*r+
				1.24266094738807843860e-3)*r+2.65321895265761230930e-2)*r+
				2.96560571828504891230e-1)*r+1.78482653991729133580e0)*r+
				5.46378491116411436990e0)*r + 6.65790464350110377720e0) /
				(((((((2.04426310338993978564e-15*r+1.42151175831644588870e-7)*r+
					1.84631831751005468180e-5)*r+7.86869131145613259100e-4)*r+
					1.48753612908506148525e-2)*r+1.36929880922735805310e-1)*r+
					5.99832206555887937690e-1)*r + 1.0)
		}
		if q < 0 {
			x = -x
		}
	}
	// One Halley step against the exact CDF tightens the tails.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// ZUpper returns z_a, the upper-a percentile of the standard normal
// distribution: the point with a probability mass above it. Lemma 1 and
// Lemma 2 (eq. 1, 4) use z_{(1-c)/2} for confidence level c.
func ZUpper(a float64) float64 {
	if err := CheckProb(a); err != nil {
		panic(err)
	}
	return NormQuantile(1 - a)
}

// --- Incomplete gamma ---

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a), for a > 0, x ≥ 0.
func GammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	if math.IsInf(x, 1) {
		return 1, nil
	}
	if x < a+1 {
		return gammaPSeries(a, x), nil
	}
	return 1 - gammaQContinuedFraction(a, x), nil
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 − P(a, x).
func GammaQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x == 0 {
		return 1, nil
	}
	if math.IsInf(x, 1) {
		return 0, nil
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x), nil
	}
	return gammaQContinuedFraction(a, x), nil
}

// gammaPSeries evaluates P(a, x) by its power series; converges quickly for
// x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a, x) by the Lentz continued fraction;
// converges quickly for x ≥ a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// --- Incomplete beta ---

// BetaInc returns the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1].
func BetaInc(a, b, x float64) (float64, error) {
	if a <= 0 || b <= 0 || x < 0 || x > 1 ||
		math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	switch x {
	case 0:
		return 0, nil
	case 1:
		return 1, nil
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	// The continued fraction converges fast for x < (a+1)/(a+b+2); use the
	// symmetry I_x(a,b) = 1 − I_{1−x}(b,a) otherwise.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a, nil
	}
	return 1 - front*betaCF(b, a, 1-x)/b, nil
}

// betaCF is the Lentz continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// --- Student's t ---

// TPDF returns the density of Student's t distribution with df degrees of
// freedom at x.
func TPDF(x, df float64) float64 {
	lg1, _ := math.Lgamma((df + 1) / 2)
	lg2, _ := math.Lgamma(df / 2)
	return math.Exp(lg1-lg2) / math.Sqrt(df*math.Pi) *
		math.Pow(1+x*x/df, -(df+1)/2)
}

// TCDF returns P(T ≤ x) for Student's t with df degrees of freedom (df > 0).
func TCDF(x, df float64) (float64, error) {
	if df <= 0 || math.IsNaN(x) || math.IsNaN(df) {
		return 0, ErrDomain
	}
	if math.IsInf(x, 1) {
		return 1, nil
	}
	if math.IsInf(x, -1) {
		return 0, nil
	}
	ib, err := BetaInc(df/2, 0.5, df/(df+x*x))
	if err != nil {
		return 0, err
	}
	if x > 0 {
		return 1 - ib/2, nil
	}
	return ib / 2, nil
}

// TQuantile returns the p-quantile of Student's t with df degrees of freedom.
// It uses the normal quantile as a starting point and refines with Newton
// iterations on the exact CDF, falling back to bisection when Newton leaves
// the bracket.
func TQuantile(p, df float64) (float64, error) {
	if df <= 0 || math.IsNaN(p) {
		return 0, ErrDomain
	}
	if !(p > 0 && p < 1) {
		if p == 0 {
			return math.Inf(-1), nil
		}
		if p == 1 {
			return math.Inf(1), nil
		}
		return 0, ErrDomain
	}
	if p == 0.5 {
		return 0, nil
	}
	// Symmetry: solve in the upper half only.
	if p < 0.5 {
		q, err := TQuantile(1-p, df)
		return -q, err
	}
	// Initial guess: Cornish-Fisher style expansion from the normal quantile.
	z := NormQuantile(p)
	g1 := (z*z*z + z) / 4
	g2 := (5*math.Pow(z, 5) + 16*z*z*z + 3*z) / 96
	x := z + g1/df + g2/(df*df)
	if x < 0 {
		x = z
	}
	// Bracket [lo, hi] with CDF(lo) ≤ p ≤ CDF(hi).
	lo, hi := 0.0, math.Max(2*x, 2.0)
	for i := 0; i < 200; i++ {
		c, err := TCDF(hi, df)
		if err != nil {
			return 0, err
		}
		if c >= p {
			break
		}
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		c, err := TCDF(x, df)
		if err != nil {
			return 0, err
		}
		diff := c - p
		if math.Abs(diff) < 1e-14 {
			return x, nil
		}
		if diff > 0 {
			hi = x
		} else {
			lo = x
		}
		pdf := TPDF(x, df)
		var next float64
		if pdf > 0 {
			next = x - diff/pdf
		}
		if pdf == 0 || next <= lo || next >= hi {
			next = (lo + hi) / 2 // Newton escaped the bracket: bisect.
		}
		if math.Abs(next-x) < 1e-13*(1+math.Abs(x)) {
			return next, nil
		}
		x = next
	}
	return x, nil
}

// TUpper returns t_a with df degrees of freedom: the upper-a percentile used
// by Lemma 2 eq. (3).
func TUpper(a, df float64) (float64, error) {
	if err := CheckProb(a); err != nil {
		return 0, err
	}
	return TQuantile(1-a, df)
}

// --- Chi-square ---

// ChiSquarePDF returns the density of the chi-square distribution with df
// degrees of freedom at x.
func ChiSquarePDF(x, df float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(df / 2)
	return math.Exp((df/2-1)*math.Log(x) - x/2 - df/2*math.Ln2 - lg)
}

// ChiSquareCDF returns P(X ≤ x) for a chi-square X with df degrees of freedom.
func ChiSquareCDF(x, df float64) (float64, error) {
	if df <= 0 || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x <= 0 {
		return 0, nil
	}
	return GammaP(df/2, x/2)
}

// ChiSquareQuantile returns the p-quantile of the chi-square distribution
// with df degrees of freedom: Wilson–Hilferty starting point, then Newton
// with bisection fallback on the exact CDF.
func ChiSquareQuantile(p, df float64) (float64, error) {
	if df <= 0 || math.IsNaN(p) {
		return 0, ErrDomain
	}
	if !(p >= 0 && p <= 1) {
		return 0, ErrDomain
	}
	if p == 0 {
		return 0, nil
	}
	if p == 1 {
		return math.Inf(1), nil
	}
	// Wilson–Hilferty approximation.
	z := NormQuantile(p)
	t := 2.0 / (9 * df)
	x := df * math.Pow(1-t+z*math.Sqrt(t), 3)
	if x <= 0 || math.IsNaN(x) {
		x = df // harmless starting point near the mean
	}
	lo, hi := 0.0, math.Max(4*x, 4*df)
	for i := 0; i < 200; i++ {
		c, err := ChiSquareCDF(hi, df)
		if err != nil {
			return 0, err
		}
		if c >= p {
			break
		}
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		c, err := ChiSquareCDF(x, df)
		if err != nil {
			return 0, err
		}
		diff := c - p
		if math.Abs(diff) < 1e-14 {
			return x, nil
		}
		if diff > 0 {
			hi = x
		} else {
			lo = x
		}
		pdf := ChiSquarePDF(x, df)
		var next float64
		if pdf > 0 {
			next = x - diff/pdf
		}
		if pdf == 0 || next <= lo || next >= hi {
			next = (lo + hi) / 2
		}
		if math.Abs(next-x) < 1e-13*(1+math.Abs(x)) {
			return next, nil
		}
		x = next
	}
	return x, nil
}

// ChiSquareUpper returns the chi-square value with df degrees of freedom that
// locates probability mass a to its right, i.e. χ²_a in Lemma 2 eq. (5).
func ChiSquareUpper(a, df float64) (float64, error) {
	if err := CheckProb(a); err != nil {
		return 0, err
	}
	return ChiSquareQuantile(1-a, df)
}

// CheckProb reports whether p is a valid open-interval probability (0, 1).
func CheckProb(p float64) error {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return ErrDomain
	}
	return nil
}

// CheckLevel reports whether c is a valid confidence level in (0, 1).
func CheckLevel(c float64) error {
	return CheckProb(c)
}
