package hypothesis

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/stat"
)

// This file extends the paper's significance predicates with a
// Kolmogorov–Smirnov test over whole distributions: where mTest compares
// means and pTest compares one probability, ksTest asks whether two learned
// distributions differ *anywhere* — the natural change-detection predicate
// for uncertain streams (e.g. "has this road's delay profile shifted since
// the last window?").
//
// The test statistic is D = sup_x |F₁(x) − F₂(x)| evaluated over a merged
// grid of both distributions' quantiles, with the effective sample size
// n_e = n₁n₂/(n₁+n₂) of the two-sample KS test and the classic asymptotic
// p-value Q_KS((√n_e + 0.12 + 0.11/√n_e)·D). When the fields hold empirical
// or histogram distributions this matches the textbook two-sample test; for
// parametric fits it compares the fitted CDFs, which is the information the
// stream system retained.

// ksGridSize is the number of probe points per distribution when locating
// the supremum.
const ksGridSize = 257

// KSStatistic returns D = sup |F₁ − F₂| over a merged quantile grid.
func KSStatistic(d1, d2 dist.Distribution) (float64, error) {
	if d1 == nil || d2 == nil {
		return 0, errors.New("hypothesis: nil distribution in KS statistic")
	}
	// Probe at both distributions' quantiles so atoms and steep regions
	// of either CDF are represented.
	probes := make([]float64, 0, 2*ksGridSize)
	for i := 1; i < ksGridSize; i++ {
		p := float64(i) / ksGridSize
		probes = append(probes, d1.Quantile(p), d2.Quantile(p))
	}
	sort.Float64s(probes)
	maxD := 0.0
	for _, x := range probes {
		d := math.Abs(d1.CDF(x) - d2.CDF(x))
		if d > maxD {
			maxD = d
		}
		// Evaluate just below x as well: CDF steps (discrete atoms) can
		// have their supremum on the left side of a probe.
		xl := math.Nextafter(x, math.Inf(-1))
		d = math.Abs(d1.CDF(xl) - d2.CDF(xl))
		if d > maxD {
			maxD = d
		}
	}
	return maxD, nil
}

// KSTest reports whether the distributions behind two probabilistic fields
// differ significantly at level alpha: H0 is F₁ = F₂, H1 is F₁ ≠ F₂, and
// n1, n2 are the (d.f.) sample sizes the distributions were learned from.
// It returns the decision along with the statistic and p-value.
func KSTest(d1 dist.Distribution, n1 int, d2 dist.Distribution, n2 int, alpha float64) (reject bool, statistic, pValue float64, err error) {
	if n1 < 2 || n2 < 2 {
		return false, 0, 0, fmt.Errorf("hypothesis: KS test needs both sample sizes ≥ 2, have %d and %d", n1, n2)
	}
	if err := checkAlpha(alpha); err != nil {
		return false, 0, 0, err
	}
	d, err := KSStatistic(d1, d2)
	if err != nil {
		return false, 0, 0, err
	}
	ne := float64(n1) * float64(n2) / float64(n1+n2)
	p := stat.KolmogorovQ(stat.KolmogorovLambda(d, ne))
	return p < alpha, d, p, nil
}

// CoupledKSTest wraps KSTest in a three-state answer analogous to
// COUPLED-TESTS: True when the difference is significant at alpha1, False
// when the data had enough power to see a difference of at least
// minEffect (a D value) and none was found, Unsure otherwise.
//
// The power heuristic: with effective size n_e, differences below
// ~λ*/√n_e are invisible, where λ* solves Q_KS(λ*) = alpha2. If the
// observed D plus that resolution is still below minEffect, the test had
// the power to detect minEffect and answers False.
func CoupledKSTest(d1 dist.Distribution, n1 int, d2 dist.Distribution, n2 int, minEffect, alpha1, alpha2 float64) (Result, error) {
	if minEffect <= 0 || minEffect >= 1 {
		return Unsure, fmt.Errorf("hypothesis: minEffect %v outside (0,1)", minEffect)
	}
	if err := checkAlpha(alpha2); err != nil {
		return Unsure, err
	}
	reject, d, _, err := KSTest(d1, n1, d2, n2, alpha1)
	if err != nil {
		return Unsure, err
	}
	if reject {
		return True, nil
	}
	ne := float64(n1) * float64(n2) / float64(n1+n2)
	// Find λ* with Q_KS(λ*) = alpha2 by bisection (Q is monotone).
	lo, hi := 0.0, 4.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if stat.KolmogorovQ(mid) > alpha2 {
			lo = mid
		} else {
			hi = mid
		}
	}
	resolution := hi / math.Sqrt(ne)
	if d+resolution < minEffect {
		return False, nil
	}
	return Unsure, nil
}
