package hypothesis

import (
	"math"
	"testing"

	"repro/internal/dist"
)

// Power conformance for the §IV significance predicates: seeded Monte
// Carlo rejection rates of mTest, mdTest, and pTest must match the
// analytic power functions within a 3σ binomial tolerance, and the
// COUPLED-TESTS outcome probabilities must decompose into the powers of
// the two component tests (their rejection regions are disjoint, so
// P(True) = power of T₁, P(False) = power of T₂, P(Unsure) = remainder).

const powerTrials = 4000

func powerTol(p float64) float64 {
	return 3 * math.Sqrt(p*(1-p)/float64(powerTrials))
}

// drawStats samples n Gaussian observations and summarizes them for the
// tests.
func drawStats(rng *dist.Rand, mu, sigma float64, n int) Stats {
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := mu + sigma*rng.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	s2 := (sum2 - float64(n)*mean*mean) / float64(n-1)
	if s2 < 0 {
		s2 = 0
	}
	return Stats{Mean: mean, SD: math.Sqrt(s2), N: n}
}

// TestMTestPowerConformance sweeps the true mean across H0 and
// progressively stronger alternatives — the shape of Fig 5(g)'s power
// curves. MTestPower assumes σ known; the empirical test estimates s from
// the sample, so the tolerance adds a small allowance for that extra
// variability.
func TestMTestPowerConformance(t *testing.T) {
	const c, sigma, n, alpha = 10.0, 2.0, 40, 0.05
	rng := dist.NewRand(11)
	for _, mu := range []float64{10.0, 10.3, 10.6, 11.0} {
		analytic, err := MTestPower(mu, sigma, c, n, alpha)
		if err != nil {
			t.Fatal(err)
		}
		rejects := 0
		for trial := 0; trial < powerTrials; trial++ {
			st := drawStats(rng, mu, sigma, n)
			ok, err := MTest(st, Greater, c, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				rejects++
			}
		}
		emp := float64(rejects) / powerTrials
		tol := powerTol(analytic) + 0.015 // estimated-s vs known-σ slack
		if d := math.Abs(emp - analytic); d > tol {
			t.Errorf("mTest power at µ=%g: empirical %.4f vs analytic %.4f (Δ=%.4f > %.4f)",
				mu, emp, analytic, d, tol)
		}
		// Under H0 (µ = c) the rejection rate is the type I error: ≤ α
		// within tolerance.
		if mu == c && emp > alpha+powerTol(alpha) {
			t.Errorf("mTest type I rate %.4f exceeds α=%g", emp, alpha)
		}
	}
}

// TestMDTestPowerConformance checks the Welch mean-difference test against
// MDTestPower with unequal variances and sizes.
func TestMDTestPowerConformance(t *testing.T) {
	const (
		sigmax, nx = 2.0, 50
		sigmay, ny = 3.0, 35
		c, alpha   = 0.0, 0.05
	)
	rng := dist.NewRand(22)
	for _, delta := range []float64{0.0, 0.5, 1.0, 1.8} {
		mux, muy := 5.0+delta, 5.0
		analytic, err := MDTestPower(mux, sigmax, nx, muy, sigmay, ny, c, alpha)
		if err != nil {
			t.Fatal(err)
		}
		rejects := 0
		for trial := 0; trial < powerTrials; trial++ {
			x := drawStats(rng, mux, sigmax, nx)
			y := drawStats(rng, muy, sigmay, ny)
			ok, err := MDTest(x, y, Greater, c, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				rejects++
			}
		}
		emp := float64(rejects) / powerTrials
		tol := powerTol(analytic) + 0.015
		if d := math.Abs(emp - analytic); d > tol {
			t.Errorf("mdTest power at Δµ=%g: empirical %.4f vs analytic %.4f (Δ=%.4f > %.4f)",
				delta, emp, analytic, d, tol)
		}
	}
}

// TestPTestPowerConformance checks the population proportion test against
// PTestPower across true proportions straddling the threshold.
func TestPTestPowerConformance(t *testing.T) {
	const tau, n, alpha = 0.5, 100, 0.05
	rng := dist.NewRand(33)
	for _, p := range []float64{0.5, 0.55, 0.62, 0.7} {
		analytic, err := PTestPower(p, n, tau, alpha)
		if err != nil {
			t.Fatal(err)
		}
		rejects := 0
		for trial := 0; trial < powerTrials; trial++ {
			k := 0
			for i := 0; i < n; i++ {
				if rng.Float64() < p {
					k++
				}
			}
			ok, err := PTest(float64(k)/n, n, Greater, tau, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				rejects++
			}
		}
		emp := float64(rejects) / powerTrials
		// The analytic power uses a continuous normal for the discrete
		// binomial p̂; allow continuity slack on top of 3σ.
		tol := powerTol(analytic) + 0.03
		if d := math.Abs(emp - analytic); d > tol {
			t.Errorf("pTest power at p=%g: empirical %.4f vs analytic %.4f (Δ=%.4f > %.4f)",
				p, emp, analytic, d, tol)
		}
	}
}

// TestCoupledMTestOutcomeProbabilities verifies Theorem 3's decomposition
// for COUPLED-TESTS over mTest: the three outcomes' empirical frequencies
// match P(True) = power of T₁ = (>, α₁), P(False) = power of T₂ = (<, α₂)
// (computed as the mirrored one-sided power), and P(Unsure) = the rest. The
// rejection regions are disjoint (t > crit₁ vs t < −crit₂), so the
// probabilities add to one exactly.
func TestCoupledMTestOutcomeProbabilities(t *testing.T) {
	const c, sigma, n = 10.0, 2.0, 40
	const alpha1, alpha2 = 0.05, 0.10
	rng := dist.NewRand(44)
	for _, mu := range []float64{9.7, 10.0, 10.4} {
		pTrue, err := MTestPower(mu, sigma, c, n, alpha1)
		if err != nil {
			t.Fatal(err)
		}
		// Power of T₂ = mTest(<, α₂): by symmetry of the Gaussian, equal to
		// the (>) power with the roles of µ and c mirrored.
		pFalse, err := MTestPower(2*c-mu, sigma, c, n, alpha2)
		if err != nil {
			t.Fatal(err)
		}
		var gotTrue, gotFalse, gotUnsure int
		for trial := 0; trial < powerTrials; trial++ {
			st := drawStats(rng, mu, sigma, n)
			res, err := CoupledMTest(st, Greater, c, alpha1, alpha2)
			if err != nil {
				t.Fatal(err)
			}
			switch res {
			case True:
				gotTrue++
			case False:
				gotFalse++
			default:
				gotUnsure++
			}
		}
		empTrue := float64(gotTrue) / powerTrials
		empFalse := float64(gotFalse) / powerTrials
		empUnsure := float64(gotUnsure) / powerTrials
		tolT := powerTol(pTrue) + 0.015
		tolF := powerTol(pFalse) + 0.015
		if d := math.Abs(empTrue - pTrue); d > tolT {
			t.Errorf("coupled mTest µ=%g: P(True) %.4f vs analytic %.4f (Δ=%.4f > %.4f)",
				mu, empTrue, pTrue, d, tolT)
		}
		if d := math.Abs(empFalse - pFalse); d > tolF {
			t.Errorf("coupled mTest µ=%g: P(False) %.4f vs analytic %.4f (Δ=%.4f > %.4f)",
				mu, empFalse, pFalse, d, tolF)
		}
		wantUnsure := 1 - pTrue - pFalse
		if d := math.Abs(empUnsure - wantUnsure); d > tolT+tolF {
			t.Errorf("coupled mTest µ=%g: P(Unsure) %.4f vs analytic %.4f", mu, empUnsure, wantUnsure)
		}
		// Theorem 3's error-rate guarantees at the boundary µ = c: reporting
		// True is a false positive (rate ≤ α₁), reporting False a false
		// negative (rate ≤ α₂).
		if mu == c {
			if empTrue > alpha1+powerTol(alpha1)+0.01 {
				t.Errorf("coupled mTest at H0: false positive rate %.4f exceeds α₁=%g", empTrue, alpha1)
			}
			if empFalse > alpha2+powerTol(alpha2)+0.01 {
				t.Errorf("coupled mTest at H0: false negative rate %.4f exceeds α₂=%g", empFalse, alpha2)
			}
		}
	}
}

// TestCoupledPTestOutcomeProbabilities runs the same decomposition for
// COUPLED-TESTS over pTest.
func TestCoupledPTestOutcomeProbabilities(t *testing.T) {
	const tau, n = 0.5, 100
	const alpha1, alpha2 = 0.05, 0.05
	rng := dist.NewRand(55)
	for _, p := range []float64{0.4, 0.5, 0.62} {
		pTrue, err := PTestPower(p, n, tau, alpha1)
		if err != nil {
			t.Fatal(err)
		}
		// T₂ = pTest(<, α₂) rejects when p̂ < τ − z·seH0; by the mirror
		// p ↦ 1−p, τ ↦ 1−τ this is the (>) power at those parameters.
		pFalse, err := PTestPower(1-p, n, 1-tau, alpha2)
		if err != nil {
			t.Fatal(err)
		}
		var gotTrue, gotFalse int
		for trial := 0; trial < powerTrials; trial++ {
			k := 0
			for i := 0; i < n; i++ {
				if rng.Float64() < p {
					k++
				}
			}
			res, err := CoupledPTest(float64(k)/n, n, Greater, tau, alpha1, alpha2)
			if err != nil {
				t.Fatal(err)
			}
			switch res {
			case True:
				gotTrue++
			case False:
				gotFalse++
			}
		}
		empTrue := float64(gotTrue) / powerTrials
		empFalse := float64(gotFalse) / powerTrials
		tolT := powerTol(pTrue) + 0.03 // binomial continuity slack
		tolF := powerTol(pFalse) + 0.03
		if d := math.Abs(empTrue - pTrue); d > tolT {
			t.Errorf("coupled pTest p=%g: P(True) %.4f vs analytic %.4f (Δ=%.4f > %.4f)",
				p, empTrue, pTrue, d, tolT)
		}
		if d := math.Abs(empFalse - pFalse); d > tolF {
			t.Errorf("coupled pTest p=%g: P(False) %.4f vs analytic %.4f (Δ=%.4f > %.4f)",
				p, empFalse, pFalse, d, tolF)
		}
	}
}

// TestPowerFunctionValidation pins the new power helpers' argument
// validation.
func TestPowerFunctionValidation(t *testing.T) {
	if _, err := MDTestPower(0, 1, 1, 0, 1, 10, 0, 0.05); err == nil {
		t.Error("MDTestPower accepted nx < 2")
	}
	if _, err := MDTestPower(0, 0, 10, 0, 1, 10, 0, 0.05); err == nil {
		t.Error("MDTestPower accepted σx = 0")
	}
	if _, err := PTestPower(0, 10, 0.5, 0.05); err == nil {
		t.Error("PTestPower accepted p = 0")
	}
	if _, err := PTestPower(0.5, 10, 0.5, 1.5); err == nil {
		t.Error("PTestPower accepted α > 1")
	}
	// Monotonicity: power grows with effect size and with n.
	p1, _ := PTestPower(0.55, 100, 0.5, 0.05)
	p2, _ := PTestPower(0.65, 100, 0.5, 0.05)
	p3, _ := PTestPower(0.55, 400, 0.5, 0.05)
	if !(p2 > p1) || !(p3 > p1) {
		t.Errorf("PTestPower not monotone: p1=%.4f p2=%.4f p3=%.4f", p1, p2, p3)
	}
	m1, _ := MDTestPower(5.5, 2, 50, 5, 2, 50, 0, 0.05)
	m2, _ := MDTestPower(6.0, 2, 50, 5, 2, 50, 0, 0.05)
	if !(m2 > m1) {
		t.Errorf("MDTestPower not monotone: %v then %v", m1, m2)
	}
}
