package hypothesis

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/stat"
)

func TestKolmogorovQ(t *testing.T) {
	// Boundary behaviour and classic table values.
	if stat.KolmogorovQ(0) != 1 || stat.KolmogorovQ(-1) != 1 {
		t.Error("Q(≤0) must be 1")
	}
	// Q(1.36) ≈ 0.049 (the familiar 5% critical value).
	q := stat.KolmogorovQ(1.36)
	if math.Abs(q-0.049) > 0.003 {
		t.Errorf("Q(1.36) = %g, want ≈0.049", q)
	}
	// Q(1.63) ≈ 0.010.
	q = stat.KolmogorovQ(1.63)
	if math.Abs(q-0.010) > 0.002 {
		t.Errorf("Q(1.63) = %g, want ≈0.010", q)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.2; l < 3; l += 0.2 {
		q := stat.KolmogorovQ(l)
		if q > prev {
			t.Fatalf("Q not monotone at λ=%g", l)
		}
		prev = q
	}
	if !math.IsNaN(stat.KolmogorovQ(math.NaN())) {
		t.Error("Q(NaN) should be NaN")
	}
}

func TestKSStatisticExact(t *testing.T) {
	// Two uniforms offset by half their width: D = 0.5.
	u1, _ := dist.NewUniform(0, 1)
	u2, _ := dist.NewUniform(0.5, 1.5)
	d, err := KSStatistic(u1, u2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 0.01 {
		t.Errorf("D = %g, want 0.5", d)
	}
	// Identical distributions: D = 0.
	d, err = KSStatistic(u1, u1)
	if err != nil || d > 1e-12 {
		t.Errorf("identical D = %g, %v", d, err)
	}
	// Discrete vs itself shifted: supremum at the step.
	d1, _ := dist.NewDiscrete([]float64{0, 1}, []float64{0.5, 0.5})
	d2, _ := dist.NewDiscrete([]float64{0, 1}, []float64{0.1, 0.9})
	d, err = KSStatistic(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.4) > 0.01 {
		t.Errorf("discrete D = %g, want 0.4", d)
	}
	if _, err := KSStatistic(nil, u1); err == nil {
		t.Error("nil distribution: want error")
	}
}

func TestKSTestValidation(t *testing.T) {
	u, _ := dist.NewUniform(0, 1)
	if _, _, _, err := KSTest(u, 1, u, 10, 0.05); err == nil {
		t.Error("n1=1: want error")
	}
	if _, _, _, err := KSTest(u, 10, u, 10, 0); err == nil {
		t.Error("alpha=0: want error")
	}
}

// TestKSTestFalsePositiveRate: empirical distributions of same-source
// samples must rarely be declared different.
func TestKSTestFalsePositiveRate(t *testing.T) {
	rng := dist.NewRand(71)
	nd, _ := dist.NewNormal(0, 1)
	const trials = 600
	const n = 40
	rejects := 0
	for i := 0; i < trials; i++ {
		e1, err := dist.Empirical(dist.SampleN(nd, n, rng))
		if err != nil {
			t.Fatal(err)
		}
		e2, err := dist.Empirical(dist.SampleN(nd, n, rng))
		if err != nil {
			t.Fatal(err)
		}
		reject, _, _, err := KSTest(e1, n, e2, n, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if reject {
			rejects++
		}
	}
	rate := float64(rejects) / trials
	if rate > 0.08 {
		t.Errorf("KS false positive rate %g exceeds 0.05", rate)
	}
}

// TestKSTestPower: clearly different distributions are detected once the
// samples are big enough.
func TestKSTestPower(t *testing.T) {
	rng := dist.NewRand(72)
	a, _ := dist.NewNormal(0, 1)
	b, _ := dist.NewNormal(1, 1)
	const trials = 300
	const n = 60
	detected := 0
	for i := 0; i < trials; i++ {
		e1, _ := dist.Empirical(dist.SampleN(a, n, rng))
		e2, _ := dist.Empirical(dist.SampleN(b, n, rng))
		reject, _, _, err := KSTest(e1, n, e2, n, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if reject {
			detected++
		}
	}
	if rate := float64(detected) / trials; rate < 0.9 {
		t.Errorf("KS power %g too low for a full-σ shift at n=60", rate)
	}
}

func TestCoupledKSTest(t *testing.T) {
	// Clearly different: True.
	a, _ := dist.NewNormal(0, 1)
	b, _ := dist.NewNormal(2, 1)
	res, err := CoupledKSTest(a, 100, b, 100, 0.2, 0.05, 0.05)
	if err != nil || res != True {
		t.Errorf("different dists = %v, %v; want TRUE", res, err)
	}
	// Identical with large samples: the resolution beats minEffect → False.
	res, err = CoupledKSTest(a, 2000, a, 2000, 0.2, 0.05, 0.05)
	if err != nil || res != False {
		t.Errorf("identical big-sample = %v, %v; want FALSE", res, err)
	}
	// Identical with tiny samples: not enough power → Unsure.
	res, err = CoupledKSTest(a, 5, a, 5, 0.05, 0.05, 0.05)
	if err != nil || res != Unsure {
		t.Errorf("identical small-sample = %v, %v; want UNSURE", res, err)
	}
	if _, err := CoupledKSTest(a, 10, b, 10, 0, 0.05, 0.05); err == nil {
		t.Error("minEffect=0: want error")
	}
	if _, err := CoupledKSTest(a, 10, b, 10, 0.2, 0.05, 1); err == nil {
		t.Error("alpha2=1: want error")
	}
}

// TestKSTestOnLearnedHistograms exercises the realistic path: histograms
// learned from raw windows, compared wholesale.
func TestKSTestOnLearnedHistograms(t *testing.T) {
	rng := dist.NewRand(73)
	before, _ := dist.NewLognormal(3, 0.25)
	after, _ := dist.NewLognormal(3.4, 0.25) // delay profile shifted up
	learner := learn.NewHistogramLearner(12)
	const n = 80
	h1, err := learner.Learn(learn.NewSample(dist.SampleN(before, n, rng)))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := learner.Learn(learn.NewSample(dist.SampleN(after, n, rng)))
	if err != nil {
		t.Fatal(err)
	}
	reject, d, p, err := KSTest(h1, n, h2, n, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !reject {
		t.Errorf("shifted delay profile undetected: D=%g p=%g", d, p)
	}
}
