// Package hypothesis implements the paper's §IV: significance predicates
// for decision making over probability distributions with limited accuracy.
//
// Three basic predicates are provided as built-ins, mirroring the paper's
// syntax:
//
//   - mTest(X, op, c, α)      — mean test: H0: E(X) = c vs H1: E(X) op c
//   - mdTest(X, Y, op, c, α)  — mean difference test:
//     H0: E(X) − E(Y) = c vs H1: E(X) − E(Y) op c
//   - pTest(pred, τ, α)       — probability test:
//     H0: Pr[pred] = τ vs H1: Pr[pred] op τ
//
// Each basic test controls only the false positive (type I) rate at the
// significance level α. Algorithm COUPLED-TESTS (§IV-C) runs the original
// test coupled with its inverse so that both the false positive rate (α₁)
// and the false negative rate (α₂) are controlled, at the cost of a third
// possible answer, Unsure (Theorem 3).
package hypothesis

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/stat"
)

// Op is the comparison operator of a significance predicate's alternative
// hypothesis: one of "<", ">", and "<>" (§IV-B).
type Op int

const (
	// Less is the alternative hypothesis "parameter < c".
	Less Op = iota
	// Greater is the alternative hypothesis "parameter > c".
	Greater
	// NotEqual is the two-sided alternative "parameter <> c".
	NotEqual
)

// ParseOp converts the SQL spelling of an operator into an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "<":
		return Less, nil
	case ">":
		return Greater, nil
	case "<>", "!=":
		return NotEqual, nil
	}
	return 0, fmt.Errorf("hypothesis: unknown operator %q (want <, >, or <>)", s)
}

// Inverse returns the inverse operator: '>' and '<' are inverse of each
// other (line 9 of COUPLED-TESTS). NotEqual has no inverse; COUPLED-TESTS
// handles it by splitting into two one-sided tests instead.
func (op Op) Inverse() (Op, error) {
	switch op {
	case Less:
		return Greater, nil
	case Greater:
		return Less, nil
	}
	return 0, errors.New("hypothesis: '<>' has no inverse operator")
}

func (op Op) String() string {
	switch op {
	case Less:
		return "<"
	case Greater:
		return ">"
	case NotEqual:
		return "<>"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Result is the three-state answer of a coupled significance predicate
// (§IV-C): True, False, or Unsure when neither error-rate bound can be met.
type Result int

const (
	// False: the inverse test accepted the opposite alternative; the
	// false negative rate of reporting False is bounded by α₂.
	False Result = iota
	// True: the original test rejected H0; the false positive rate is
	// bounded by α₁.
	True
	// Unsure: the data does not support a decision at the requested
	// error rates; acquire more observations.
	Unsure
)

func (r Result) String() string {
	switch r {
	case False:
		return "FALSE"
	case True:
		return "TRUE"
	case Unsure:
		return "UNSURE"
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// Stats summarizes a probabilistic field for testing: the (estimated) mean,
// standard deviation, and the (d.f.) sample size the distribution was
// learned from. The tests operate directly on these statistics — the
// efficiency the paper stresses ("very efficient by directly operating on
// the probability distributions using the accuracy information").
type Stats struct {
	Mean float64
	SD   float64
	N    int
}

// StatsFromSample extracts test statistics from a raw sample.
func StatsFromSample(s *learn.Sample) (Stats, error) {
	mean, err := s.Mean()
	if err != nil {
		return Stats{}, err
	}
	sd, err := s.StdDev()
	if err != nil {
		return Stats{}, err
	}
	return Stats{Mean: mean, SD: sd, N: s.Size()}, nil
}

// StatsFromDistribution extracts test statistics from a learned distribution
// and its (d.f.) sample size n.
func StatsFromDistribution(d dist.Distribution, n int) (Stats, error) {
	if d == nil {
		return Stats{}, errors.New("hypothesis: nil distribution")
	}
	if n < 2 {
		return Stats{}, fmt.Errorf("hypothesis: sample size %d, need ≥ 2", n)
	}
	return Stats{Mean: d.Mean(), SD: math.Sqrt(d.Variance()), N: n}, nil
}

func (s Stats) validate() error {
	if s.N < 2 {
		return fmt.Errorf("hypothesis: sample size %d, need ≥ 2", s.N)
	}
	if s.SD < 0 || math.IsNaN(s.SD) || math.IsNaN(s.Mean) {
		return fmt.Errorf("hypothesis: invalid statistics mean=%v sd=%v", s.Mean, s.SD)
	}
	return nil
}

func checkAlpha(alpha float64) error {
	if err := stat.CheckProb(alpha); err != nil {
		return fmt.Errorf("hypothesis: significance level %v outside (0,1)", alpha)
	}
	return nil
}

// critCache memoizes critical values: a streaming query evaluates the same
// (α, n) pair on every tuple, and the Student-t quantile costs Newton
// iterations on the incomplete beta function. The cache is bounded; once
// full, new pairs are computed without caching (no eviction churn).
var critCache sync.Map // critKey -> float64

type critKey struct {
	a float64
	n int
}

var critCacheSize int64

const critCacheMax = 4096

// tCritical returns the upper-a critical value, using Student's t with df
// degrees of freedom for small samples and the normal approximation for
// n ≥ 30 — the same switch as Lemma 2.
func tCritical(a float64, n int) (float64, error) {
	key := critKey{a: a, n: n}
	if v, ok := critCache.Load(key); ok {
		return v.(float64), nil
	}
	var crit float64
	if n < 30 {
		t, err := stat.TUpper(a, float64(n-1))
		if err != nil {
			return 0, err
		}
		crit = t
	} else {
		crit = stat.ZUpper(a)
	}
	if atomic.LoadInt64(&critCacheSize) < critCacheMax {
		if _, loaded := critCache.LoadOrStore(key, crit); !loaded {
			atomic.AddInt64(&critCacheSize, 1)
		}
	}
	return crit, nil
}

// decide compares a test statistic against the critical region for op at
// level alpha with n the sample size behind the statistic. It reports
// whether H0 is rejected in favor of H1.
func decide(tstat float64, op Op, alpha float64, n int) (bool, error) {
	switch op {
	case Greater:
		crit, err := tCritical(alpha, n)
		if err != nil {
			return false, err
		}
		return tstat > crit, nil
	case Less:
		crit, err := tCritical(alpha, n)
		if err != nil {
			return false, err
		}
		return tstat < -crit, nil
	case NotEqual:
		crit, err := tCritical(alpha/2, n)
		if err != nil {
			return false, err
		}
		return math.Abs(tstat) > crit, nil
	}
	return false, fmt.Errorf("hypothesis: unknown operator %v", op)
}

// MTest is the basic mean test (§IV-B): it rejects H0: E(X) = c in favor of
// H1: E(X) op c at significance level alpha, returning true when H1 is
// accepted. Only the false positive rate is controlled; use CoupledMTest to
// bound both error rates.
func MTest(x Stats, op Op, c, alpha float64) (bool, error) {
	if err := x.validate(); err != nil {
		return false, err
	}
	if err := checkAlpha(alpha); err != nil {
		return false, err
	}
	if x.SD == 0 {
		// Degenerate sample: the mean is known exactly.
		switch op {
		case Greater:
			return x.Mean > c, nil
		case Less:
			return x.Mean < c, nil
		default:
			return x.Mean != c, nil
		}
	}
	tstat := (x.Mean - c) / (x.SD / math.Sqrt(float64(x.N)))
	return decide(tstat, op, alpha, x.N)
}

// MDTest is the basic mean difference test (§IV-B): it rejects
// H0: E(X) − E(Y) = c in favor of H1: E(X) − E(Y) op c, using Welch's
// two-sample statistic with the Welch–Satterthwaite degrees of freedom.
// The most common usage is c = 0, comparing E(X) with E(Y).
func MDTest(x, y Stats, op Op, c, alpha float64) (bool, error) {
	if err := x.validate(); err != nil {
		return false, err
	}
	if err := y.validate(); err != nil {
		return false, err
	}
	if err := checkAlpha(alpha); err != nil {
		return false, err
	}
	vx := x.SD * x.SD / float64(x.N)
	vy := y.SD * y.SD / float64(y.N)
	se := math.Sqrt(vx + vy)
	if se == 0 {
		diff := x.Mean - y.Mean
		switch op {
		case Greater:
			return diff > c, nil
		case Less:
			return diff < c, nil
		default:
			return diff != c, nil
		}
	}
	tstat := (x.Mean - y.Mean - c) / se
	// Welch–Satterthwaite effective degrees of freedom, floored at 1.
	df := (vx + vy) * (vx + vy) /
		(vx*vx/float64(x.N-1) + vy*vy/float64(y.N-1))
	n := int(math.Max(2, math.Round(df+1))) // decide() subtracts 1 again
	return decide(tstat, op, alpha, n)
}

// PTest is the basic probability test (§IV-B): given the observed
// proportion phat of n observations satisfying a predicate, it rejects
// H0: Pr[pred] = tau in favor of H1: Pr[pred] op tau using the population
// proportion test. A probabilistic threshold query "Pr[pred] > τ" is the
// special case op = Greater without the significance level.
func PTest(phat float64, n int, op Op, tau, alpha float64) (bool, error) {
	if n < 1 {
		return false, fmt.Errorf("hypothesis: pTest needs n ≥ 1, have %d", n)
	}
	if phat < 0 || phat > 1 || math.IsNaN(phat) {
		return false, fmt.Errorf("hypothesis: proportion %v outside [0,1]", phat)
	}
	if tau <= 0 || tau >= 1 || math.IsNaN(tau) {
		return false, fmt.Errorf("hypothesis: threshold τ=%v outside (0,1)", tau)
	}
	if err := checkAlpha(alpha); err != nil {
		return false, err
	}
	// Under H0 the proportion's standard error is sqrt(τ(1−τ)/n); the
	// normal approximation is the standard population proportion test.
	z := (phat - tau) / math.Sqrt(tau*(1-tau)/float64(n))
	switch op {
	case Greater:
		return z > stat.ZUpper(alpha), nil
	case Less:
		return z < -stat.ZUpper(alpha), nil
	case NotEqual:
		return math.Abs(z) > stat.ZUpper(alpha/2), nil
	}
	return false, fmt.Errorf("hypothesis: unknown operator %v", op)
}

// TestFunc runs a basic significance test with the given alternative
// operator and significance level, reporting whether H1 was accepted.
// COUPLED-TESTS is expressed over this abstraction so it applies uniformly
// to mTest, mdTest, and pTest (all three "have a hypothesis test
// component").
type TestFunc func(op Op, alpha float64) (bool, error)

// Coupled is algorithm COUPLED-TESTS (§IV-C): it runs the basic test under
// the original operator op and its inverse so that the false positive rate
// is at most alpha1 and the false negative rate at most alpha2 (Theorem 3).
//
// For one-sided op: T₁ = (op, α₁); if T₁ accepts → True. Otherwise
// T₂ = (inverse op, α₂); if T₂ accepts → False; otherwise Unsure.
//
// For op = NotEqual: T₁ = (<, α₁/2) and T₂ = (>, α₁/2); True when either
// accepts, Unsure otherwise (never False — the false negative rate is 0,
// and the union bound keeps false positives ≤ α₁).
func Coupled(test TestFunc, op Op, alpha1, alpha2 float64) (Result, error) {
	if err := checkAlpha(alpha1); err != nil {
		return Unsure, err
	}
	if err := checkAlpha(alpha2); err != nil {
		return Unsure, err
	}
	if op == NotEqual { // lines 3–7, 19
		r1, err := test(Less, alpha1/2)
		if err != nil {
			return Unsure, err
		}
		if r1 {
			return True, nil
		}
		r2, err := test(Greater, alpha1/2)
		if err != nil {
			return Unsure, err
		}
		if r2 {
			return True, nil
		}
		return Unsure, nil
	}
	inv, err := op.Inverse()
	if err != nil {
		return Unsure, err
	}
	r1, err := test(op, alpha1) // line 13: run T₁
	if err != nil {
		return Unsure, err
	}
	if r1 {
		return True, nil
	}
	r2, err := test(inv, alpha2) // line 17: run T₂
	if err != nil {
		return Unsure, err
	}
	if r2 {
		return False, nil
	}
	return Unsure, nil
}

// CoupledMTest runs mTest(X, op, c, α₁, α₂) with coupled tests.
func CoupledMTest(x Stats, op Op, c, alpha1, alpha2 float64) (Result, error) {
	return Coupled(func(o Op, a float64) (bool, error) {
		return MTest(x, o, c, a)
	}, op, alpha1, alpha2)
}

// CoupledMDTest runs mdTest(X, Y, op, c, α₁, α₂) with coupled tests.
func CoupledMDTest(x, y Stats, op Op, c, alpha1, alpha2 float64) (Result, error) {
	return Coupled(func(o Op, a float64) (bool, error) {
		return MDTest(x, y, o, c, a)
	}, op, alpha1, alpha2)
}

// CoupledPTest runs pTest(pred, τ, α₁, α₂) with coupled tests, where phat is
// the observed proportion of the n observations satisfying pred.
func CoupledPTest(phat float64, n int, op Op, tau, alpha1, alpha2 float64) (Result, error) {
	return Coupled(func(o Op, a float64) (bool, error) {
		return PTest(phat, n, o, tau, a)
	}, op, alpha1, alpha2)
}

// MTestPower returns the (approximate, normal-theory) power function γ(μ)
// of the one-sided mTest(X, >, c, α) when the true mean is mu and the true
// standard deviation sigma: the probability the test accepts H1
// ("Pr[return TRUE | E(X) > c]", §IV-C). Used to sanity-check the
// experimental power curves of Fig 5(g).
func MTestPower(mu, sigma, c float64, n int, alpha float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("hypothesis: power needs n ≥ 2, have %d", n)
	}
	if sigma <= 0 {
		return 0, errors.New("hypothesis: power needs σ > 0")
	}
	if err := checkAlpha(alpha); err != nil {
		return 0, err
	}
	crit, err := tCritical(alpha, n)
	if err != nil {
		return 0, err
	}
	// Reject when (x̄−c)/(σ/√n) > crit; x̄ ~ N(μ, σ²/n).
	shift := (mu - c) / (sigma / math.Sqrt(float64(n)))
	return 1 - stat.NormCDF(crit-shift), nil
}

// MDTestPower returns the (approximate, normal-theory) power of the
// one-sided mdTest(X, Y, >, c, α) when the true parameters are
// (mux, sigmax, nx) and (muy, sigmay, ny): the probability the Welch test
// accepts H1: E(X) − E(Y) > c. The critical value uses the
// Welch–Satterthwaite degrees of freedom evaluated at the true variances —
// the same approximation MDTest itself makes with sample variances.
func MDTestPower(mux, sigmax float64, nx int, muy, sigmay float64, ny int, c, alpha float64) (float64, error) {
	if nx < 2 || ny < 2 {
		return 0, fmt.Errorf("hypothesis: power needs n ≥ 2, have %d and %d", nx, ny)
	}
	if sigmax <= 0 || sigmay <= 0 {
		return 0, errors.New("hypothesis: power needs σ > 0")
	}
	if err := checkAlpha(alpha); err != nil {
		return 0, err
	}
	vx := sigmax * sigmax / float64(nx)
	vy := sigmay * sigmay / float64(ny)
	se := math.Sqrt(vx + vy)
	df := (vx + vy) * (vx + vy) /
		(vx*vx/float64(nx-1) + vy*vy/float64(ny-1))
	n := int(math.Max(2, math.Round(df+1))) // mirror MDTest's df handling
	crit, err := tCritical(alpha, n)
	if err != nil {
		return 0, err
	}
	shift := (mux - muy - c) / se
	return 1 - stat.NormCDF(crit-shift), nil
}

// PTestPower returns the (approximate, normal-theory) power of the
// one-sided pTest(pred, >, τ, α) when the true proportion is p: the test
// rejects when p̂ > τ + z_α·sqrt(τ(1−τ)/n), and p̂ ≈ N(p, p(1−p)/n).
func PTestPower(p float64, n int, tau, alpha float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("hypothesis: power needs n ≥ 1, have %d", n)
	}
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("hypothesis: true proportion %v outside (0,1)", p)
	}
	if tau <= 0 || tau >= 1 || math.IsNaN(tau) {
		return 0, fmt.Errorf("hypothesis: threshold τ=%v outside (0,1)", tau)
	}
	if err := checkAlpha(alpha); err != nil {
		return 0, err
	}
	seH0 := math.Sqrt(tau * (1 - tau) / float64(n))
	seTrue := math.Sqrt(p * (1 - p) / float64(n))
	crit := tau + stat.ZUpper(alpha)*seH0
	return 1 - stat.NormCDF((crit-p)/seTrue), nil
}
