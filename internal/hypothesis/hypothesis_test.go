package hypothesis

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/learn"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

// exampleX is the paper's Example 8 field X: a raw sample of size 5.
func exampleX(t *testing.T) Stats {
	t.Helper()
	s, err := StatsFromSample(learn.NewSample([]float64{82, 86, 105, 110, 119}))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// exampleY builds Example 8's field Y: same mean as X (100.4), n = 100,
// with 40 observations below 100 and 60 above.
func exampleY(t *testing.T) (Stats, *learn.Sample) {
	t.Helper()
	obs := make([]float64, 100)
	for i := 0; i < 40; i++ {
		obs[i] = 91.0 // below 100
	}
	for i := 40; i < 100; i++ {
		obs[i] = 106.66666666666667 // above 100; overall mean 100.4
	}
	sample := learn.NewSample(obs)
	s, err := StatsFromSample(sample)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Y mean", s.Mean, 100.4, 1e-9)
	return s, sample
}

// TestExample9MTest verifies the paper's Example 9: with
// mTest(temperature, ">", 97, 0.05), only Y satisfies the predicate.
func TestExample9MTest(t *testing.T) {
	x := exampleX(t)
	y, _ := exampleY(t)
	gotX, err := MTest(x, Greater, 97, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if gotX {
		t.Error("X (n=5) should NOT pass mTest at α=0.05")
	}
	gotY, err := MTest(y, Greater, 97, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !gotY {
		t.Error("Y (n=100) should pass mTest at α=0.05")
	}
}

// TestExample9PTest verifies pTest("temperature > 100", 0.5, 0.05): X's
// proportion 0.6 of 5 observations is not significant; Y's 0.6 of 100 is.
func TestExample9PTest(t *testing.T) {
	gotX, err := PTest(0.6, 5, Greater, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if gotX {
		t.Error("X (n=5) should NOT pass pTest")
	}
	gotY, err := PTest(0.6, 100, Greater, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !gotY {
		t.Error("Y (n=100) should pass pTest")
	}
}

func TestParseOp(t *testing.T) {
	cases := map[string]Op{"<": Less, ">": Greater, "<>": NotEqual, "!=": NotEqual}
	for s, want := range cases {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseOp(">="); err == nil {
		t.Error("ParseOp(>=): want error")
	}
}

func TestOpInverse(t *testing.T) {
	if inv, err := Greater.Inverse(); err != nil || inv != Less {
		t.Errorf("Greater.Inverse() = %v, %v", inv, err)
	}
	if inv, err := Less.Inverse(); err != nil || inv != Greater {
		t.Errorf("Less.Inverse() = %v, %v", inv, err)
	}
	if _, err := NotEqual.Inverse(); err == nil {
		t.Error("NotEqual.Inverse(): want error")
	}
}

func TestStringers(t *testing.T) {
	if Less.String() != "<" || Greater.String() != ">" || NotEqual.String() != "<>" {
		t.Error("Op.String wrong")
	}
	if True.String() != "TRUE" || False.String() != "FALSE" || Unsure.String() != "UNSURE" {
		t.Error("Result.String wrong")
	}
	if Op(9).String() == "" || Result(9).String() == "" {
		t.Error("out-of-range stringers must not be empty")
	}
}

func TestMTestValidation(t *testing.T) {
	good := Stats{Mean: 0, SD: 1, N: 10}
	if _, err := MTest(Stats{Mean: 0, SD: 1, N: 1}, Greater, 0, 0.05); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := MTest(Stats{Mean: 0, SD: -1, N: 10}, Greater, 0, 0.05); err == nil {
		t.Error("sd<0: want error")
	}
	if _, err := MTest(good, Greater, 0, 0); err == nil {
		t.Error("alpha=0: want error")
	}
	if _, err := MTest(good, Op(9), 0, 0.05); err == nil {
		t.Error("bad op: want error")
	}
}

func TestMTestDegenerateSD(t *testing.T) {
	x := Stats{Mean: 5, SD: 0, N: 10}
	for _, c := range []struct {
		op   Op
		c    float64
		want bool
	}{
		{Greater, 4, true}, {Greater, 6, false},
		{Less, 6, true}, {Less, 4, false},
		{NotEqual, 4, true}, {NotEqual, 5, false},
	} {
		got, err := MTest(x, c.op, c.c, 0.05)
		if err != nil || got != c.want {
			t.Errorf("MTest(sd=0, %v, %v) = %v, %v; want %v", c.op, c.c, got, err, c.want)
		}
	}
}

func TestMTestTwoSided(t *testing.T) {
	// Strong evidence the mean differs from 0 in either direction.
	x := Stats{Mean: 3, SD: 1, N: 25}
	got, err := MTest(x, NotEqual, 0, 0.05)
	if err != nil || !got {
		t.Errorf("two-sided test should reject: %v, %v", got, err)
	}
	got, err = MTest(Stats{Mean: 0.01, SD: 1, N: 25}, NotEqual, 0, 0.05)
	if err != nil || got {
		t.Errorf("two-sided test should not reject near H0: %v, %v", got, err)
	}
}

// TestMTestFalsePositiveRate simulates H0-true data and verifies the
// empirical type I error stays at or below α (the guarantee of §IV-A).
func TestMTestFalsePositiveRate(t *testing.T) {
	r := dist.NewRand(55)
	nd, _ := dist.NewNormal(50, 25)
	const trials = 4000
	fp := 0
	for i := 0; i < trials; i++ {
		s, err := StatsFromSample(learn.NewSample(dist.SampleN(nd, 20, r)))
		if err != nil {
			t.Fatal(err)
		}
		reject, err := MTest(s, Greater, 50, 0.05) // H0 is exactly true
		if err != nil {
			t.Fatal(err)
		}
		if reject {
			fp++
		}
	}
	rate := float64(fp) / trials
	if rate > 0.065 {
		t.Errorf("false positive rate %g exceeds α=0.05", rate)
	}
}

func TestMDTestWelch(t *testing.T) {
	// Clearly separated means with ample data.
	x := Stats{Mean: 10, SD: 2, N: 50}
	y := Stats{Mean: 8, SD: 2, N: 50}
	got, err := MDTest(x, y, Greater, 0, 0.05)
	if err != nil || !got {
		t.Errorf("MDTest separated means = %v, %v; want true", got, err)
	}
	// Same means: should not reject.
	got, err = MDTest(x, x, Greater, 0, 0.05)
	if err != nil || got {
		t.Errorf("MDTest equal means = %v, %v; want false", got, err)
	}
	// c shifts the null: E(X)−E(Y) = 2, test "> 3" must fail.
	got, err = MDTest(x, y, Greater, 3, 0.05)
	if err != nil || got {
		t.Errorf("MDTest with c=3 = %v, %v; want false", got, err)
	}
	// Degenerate zero-variance pair decides deterministically.
	got, err = MDTest(Stats{Mean: 4, SD: 0, N: 5}, Stats{Mean: 3, SD: 0, N: 5}, Greater, 0, 0.05)
	if err != nil || !got {
		t.Errorf("degenerate MDTest = %v, %v; want true", got, err)
	}
}

func TestMDTestValidation(t *testing.T) {
	good := Stats{Mean: 0, SD: 1, N: 10}
	bad := Stats{Mean: 0, SD: 1, N: 0}
	if _, err := MDTest(bad, good, Greater, 0, 0.05); err == nil {
		t.Error("bad x: want error")
	}
	if _, err := MDTest(good, bad, Greater, 0, 0.05); err == nil {
		t.Error("bad y: want error")
	}
	if _, err := MDTest(good, good, Greater, 0, 2); err == nil {
		t.Error("alpha=2: want error")
	}
}

func TestPTestValidation(t *testing.T) {
	if _, err := PTest(0.5, 0, Greater, 0.5, 0.05); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := PTest(1.5, 10, Greater, 0.5, 0.05); err == nil {
		t.Error("phat>1: want error")
	}
	if _, err := PTest(0.5, 10, Greater, 0, 0.05); err == nil {
		t.Error("tau=0: want error")
	}
	if _, err := PTest(0.5, 10, Greater, 0.5, 0); err == nil {
		t.Error("alpha=0: want error")
	}
	if _, err := PTest(0.5, 10, Op(9), 0.5, 0.05); err == nil {
		t.Error("bad op: want error")
	}
}

func TestPTestDirections(t *testing.T) {
	// phat far below τ: Less accepts, Greater doesn't, NotEqual accepts.
	if got, _ := PTest(0.1, 100, Less, 0.5, 0.05); !got {
		t.Error("Less should accept for phat=0.1, τ=0.5")
	}
	if got, _ := PTest(0.1, 100, Greater, 0.5, 0.05); got {
		t.Error("Greater should reject for phat=0.1, τ=0.5")
	}
	if got, _ := PTest(0.1, 100, NotEqual, 0.5, 0.05); !got {
		t.Error("NotEqual should accept for phat=0.1, τ=0.5")
	}
}

func TestCoupledBasic(t *testing.T) {
	// Strong positive evidence → True.
	x := Stats{Mean: 10, SD: 1, N: 30}
	res, err := CoupledMTest(x, Greater, 5, 0.05, 0.05)
	if err != nil || res != True {
		t.Errorf("coupled strong positive = %v, %v; want TRUE", res, err)
	}
	// Strong negative evidence → False.
	res, err = CoupledMTest(x, Greater, 15, 0.05, 0.05)
	if err != nil || res != False {
		t.Errorf("coupled strong negative = %v, %v; want FALSE", res, err)
	}
	// Borderline evidence → Unsure.
	weak := Stats{Mean: 10.1, SD: 5, N: 5}
	res, err = CoupledMTest(weak, Greater, 10, 0.05, 0.05)
	if err != nil || res != Unsure {
		t.Errorf("coupled weak = %v, %v; want UNSURE", res, err)
	}
}

func TestCoupledTwoSided(t *testing.T) {
	// '<>' never returns False (Theorem 3: false negative rate 0).
	far := Stats{Mean: 10, SD: 1, N: 30}
	res, err := CoupledMTest(far, NotEqual, 5, 0.05, 0.05)
	if err != nil || res != True {
		t.Errorf("two-sided far = %v, %v; want TRUE", res, err)
	}
	near := Stats{Mean: 5.01, SD: 1, N: 5}
	res, err = CoupledMTest(near, NotEqual, 5, 0.05, 0.05)
	if err != nil || res != Unsure {
		t.Errorf("two-sided near = %v, %v; want UNSURE (never FALSE)", res, err)
	}
}

func TestCoupledValidation(t *testing.T) {
	x := Stats{Mean: 0, SD: 1, N: 10}
	if _, err := CoupledMTest(x, Greater, 0, 0, 0.05); err == nil {
		t.Error("alpha1=0: want error")
	}
	if _, err := CoupledMTest(x, Greater, 0, 0.05, 1); err == nil {
		t.Error("alpha2=1: want error")
	}
}

// TestCoupledErrorRates reproduces the Fig 5(e) guarantee in miniature:
// with α₁ = α₂ = 0.05, both empirical error rates stay below their bounds,
// with hard decisions replaced by Unsure when the data is insufficient.
func TestCoupledErrorRates(t *testing.T) {
	r := dist.NewRand(88)
	base, _ := dist.NewNormal(100, 100)
	const trials = 2000
	const n = 20
	fp, fn, unsure := 0, 0, 0
	for i := 0; i < trials; i++ {
		s, err := StatsFromSample(learn.NewSample(dist.SampleN(base, n, r)))
		if err != nil {
			t.Fatal(err)
		}
		// H0 true case: true mean is exactly 100, predicate "mean > 100".
		res, err := CoupledMTest(s, Greater, 100, 0.05, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res == True {
			fp++
		}
		// H1 true case: true mean 100 > 95.
		res, err = CoupledMTest(s, Greater, 95, 0.05, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res == False {
			fn++
		}
		if res == Unsure {
			unsure++
		}
	}
	if rate := float64(fp) / trials; rate > 0.065 {
		t.Errorf("coupled false positive rate %g exceeds 0.05", rate)
	}
	if rate := float64(fn) / trials; rate > 0.065 {
		t.Errorf("coupled false negative rate %g exceeds 0.05", rate)
	}
	t.Logf("unsure rate on H1-true: %g", float64(unsure)/trials)
}

// TestUnsureShrinksWithN mirrors Fig 5(e): the number of Unsure answers
// decreases as the sample size grows.
func TestUnsureShrinksWithN(t *testing.T) {
	r := dist.NewRand(13)
	base, _ := dist.NewNormal(100, 100)
	unsureAt := func(n int) int {
		count := 0
		const trials = 800
		for i := 0; i < trials; i++ {
			s, err := StatsFromSample(learn.NewSample(dist.SampleN(base, n, r)))
			if err != nil {
				t.Fatal(err)
			}
			res, err := CoupledMTest(s, Greater, 97, 0.05, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if res == Unsure {
				count++
			}
		}
		return count
	}
	u10, u80 := unsureAt(10), unsureAt(80)
	if u80 >= u10 {
		t.Errorf("unsure count did not shrink: n=10 → %d, n=80 → %d", u10, u80)
	}
}

func TestMTestPower(t *testing.T) {
	// Power at the null is ≈ α; power grows with effect size and n.
	p0, err := MTestPower(100, 10, 100, 30, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "power at null", p0, 0.05, 0.01)
	p1, _ := MTestPower(105, 10, 100, 30, 0.05)
	p2, _ := MTestPower(110, 10, 100, 30, 0.05)
	if !(p0 < p1 && p1 < p2) {
		t.Errorf("power not increasing: %g, %g, %g", p0, p1, p2)
	}
	p3, _ := MTestPower(105, 10, 100, 120, 0.05)
	if p3 <= p1 {
		t.Errorf("power should grow with n: n=30 → %g, n=120 → %g", p1, p3)
	}
	if _, err := MTestPower(0, 0, 0, 30, 0.05); err == nil {
		t.Error("σ=0: want error")
	}
	if _, err := MTestPower(0, 1, 0, 1, 0.05); err == nil {
		t.Error("n=1: want error")
	}
}

// TestMTestPowerMatchesSimulation cross-checks the analytic power function
// against Monte Carlo (the Fig 5(g) machinery).
func TestMTestPowerMatchesSimulation(t *testing.T) {
	r := dist.NewRand(31)
	const n = 30
	const mu, sigma, c = 104.0, 10.0, 100.0
	want, err := MTestPower(mu, sigma, c, n, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	nd, _ := dist.NewNormal(mu, sigma*sigma)
	accept := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		s, err := StatsFromSample(learn.NewSample(dist.SampleN(nd, n, r)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := MTest(s, Greater, c, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			accept++
		}
	}
	approx(t, "simulated power", float64(accept)/trials, want, 0.03)
}

func TestStatsFromDistribution(t *testing.T) {
	nd, _ := dist.NewNormal(3, 16)
	s, err := StatsFromDistribution(nd, 25)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 3 || s.SD != 4 || s.N != 25 {
		t.Errorf("stats = %+v", s)
	}
	if _, err := StatsFromDistribution(nil, 25); err == nil {
		t.Error("nil distribution: want error")
	}
	if _, err := StatsFromDistribution(nd, 1); err == nil {
		t.Error("n=1: want error")
	}
}
