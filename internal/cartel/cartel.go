// Package cartel simulates the CarTel road-delay dataset the paper
// evaluates on (§V-A). The real dataset (vehicular probe measurements of
// traffic delays in greater Boston) is not publicly distributable, so this
// package generates a synthetic equivalent that preserves the properties
// the experiments exercise:
//
//   - per-segment delay distributions are lognormal — the standard
//     heavy-tailed model of travel times — with segment-specific medians
//     derived from length and speed limit plus a congestion factor;
//   - per-segment observation counts vary wildly (few probes on side
//     streets, many on arterials), the paper's motivating accuracy gap
//     (Example 1: 3 observations for road 19, 50 for road 20);
//   - routes are sequences of ~20 segments whose total delay is the
//     quantity queried (§V-C: "queries that ask for the total delays of a
//     number of routes. On average, there are around 20 road segments per
//     route");
//   - pairs of routes with close true mean delays make mdTest comparisons
//     hard at small n (§V-D: "We intentionally choose pairs of routes whose
//     true mean values are close").
//
// Because the generator knows each segment's true distribution, experiment
// code can score confidence-interval misses exactly instead of estimating
// truth from a large held-out sample.
package cartel

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/learn"
)

// Segment is one road segment.
type Segment struct {
	ID         int
	Length     float64 // meters
	SpeedLimit float64 // mph, Fig 1 style
	// Delay is the true current-delay distribution (seconds).
	Delay dist.Lognormal
	// Rate weights how often probe vehicles traverse this segment;
	// observation counts in generated batches are proportional to it.
	Rate float64
}

// Network is a generated road network.
type Network struct {
	Segments []Segment
	rng      *dist.Rand
}

// NewNetwork generates numSegments segments deterministically from seed.
func NewNetwork(numSegments int, seed uint64) (*Network, error) {
	if numSegments < 1 {
		return nil, fmt.Errorf("cartel: need ≥ 1 segment, got %d", numSegments)
	}
	rng := dist.NewRand(seed)
	n := &Network{Segments: make([]Segment, numSegments), rng: rng}
	for i := range n.Segments {
		length := 100 + rng.Float64()*900 // 100–1000 m
		speed := []float64{25, 30, 35, 45, 55}[rng.Intn(5)]
		// Free-flow time in seconds (speed in mph ≈ 0.447 m/s per unit).
		freeFlow := length / (speed * 0.447)
		congestion := 1 + rng.ExpFloat64()*0.8 // heavy-tailed congestion
		median := freeFlow * congestion
		sigma2 := 0.1 + rng.Float64()*0.4 // log-variance 0.1–0.5
		ln, err := dist.NewLognormal(math.Log(median), sigma2)
		if err != nil {
			return nil, err
		}
		n.Segments[i] = Segment{
			ID:         i + 1,
			Length:     length,
			SpeedLimit: speed,
			Delay:      ln,
			Rate:       0.1 + rng.ExpFloat64(), // most segments sparse, some busy
		}
	}
	return n, nil
}

// Segment returns the segment with the given ID.
func (n *Network) Segment(id int) (*Segment, error) {
	if id < 1 || id > len(n.Segments) {
		return nil, fmt.Errorf("cartel: no segment %d", id)
	}
	return &n.Segments[id-1], nil
}

// Observe draws count iid delay observations for a segment — the raw rows
// of Figure 1 from which the database learns a distribution.
func (n *Network) Observe(segID, count int) ([]float64, error) {
	seg, err := n.Segment(segID)
	if err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("cartel: negative observation count %d", count)
	}
	return dist.SampleN(seg.Delay, count, n.rng), nil
}

// Observation is one raw probe report (Figure 1's row shape).
type Observation struct {
	SegmentID  int
	Length     float64
	TimeSec    int64 // seconds since window start
	Delay      float64
	SpeedLimit float64
}

// ObserveWindow simulates one reporting window: each probe report picks a
// segment with probability proportional to Rate and measures its delay.
// total is the number of reports in the window.
func (n *Network) ObserveWindow(total int, windowSec int64) ([]Observation, error) {
	if total < 0 {
		return nil, fmt.Errorf("cartel: negative report count %d", total)
	}
	sumRate := 0.0
	for i := range n.Segments {
		sumRate += n.Segments[i].Rate
	}
	out := make([]Observation, total)
	for k := 0; k < total; k++ {
		u := n.rng.Float64() * sumRate
		idx := 0
		for ; idx < len(n.Segments)-1; idx++ {
			u -= n.Segments[idx].Rate
			if u < 0 {
				break
			}
		}
		seg := &n.Segments[idx]
		out[k] = Observation{
			SegmentID:  seg.ID,
			Length:     seg.Length,
			TimeSec:    int64(n.rng.Float64() * float64(windowSec)),
			Delay:      seg.Delay.Sample(n.rng),
			SpeedLimit: seg.SpeedLimit,
		}
	}
	return out, nil
}

// GroupBySegment buckets raw observations per segment id — the learning
// system's grouping step before fitting per-segment distributions.
func GroupBySegment(obs []Observation) map[int]*learn.Sample {
	out := make(map[int]*learn.Sample)
	for _, o := range obs {
		s, ok := out[o.SegmentID]
		if !ok {
			s = learn.NewSample(nil)
			out[o.SegmentID] = s
		}
		s.Add(o.Delay)
	}
	return out
}

// Route is a sequence of segment IDs traveled in order.
type Route struct {
	SegmentIDs []int
}

// RandomRoute draws a route of the given number of distinct segments.
func (n *Network) RandomRoute(segments int) (Route, error) {
	if segments < 1 || segments > len(n.Segments) {
		return Route{}, fmt.Errorf("cartel: route of %d segments from %d", segments, len(n.Segments))
	}
	perm := n.rng.Perm(len(n.Segments))[:segments]
	ids := make([]int, segments)
	for i, p := range perm {
		ids[i] = p + 1
	}
	return Route{SegmentIDs: ids}, nil
}

// TrueMeanDelay returns the exact expected total delay of the route.
func (n *Network) TrueMeanDelay(r Route) (float64, error) {
	total := 0.0
	for _, id := range r.SegmentIDs {
		seg, err := n.Segment(id)
		if err != nil {
			return 0, err
		}
		total += seg.Delay.Mean()
	}
	return total, nil
}

// TrueVarianceDelay returns the exact variance of the route's total delay
// (segments are independent).
func (n *Network) TrueVarianceDelay(r Route) (float64, error) {
	total := 0.0
	for _, id := range r.SegmentIDs {
		seg, err := n.Segment(id)
		if err != nil {
			return 0, err
		}
		total += seg.Delay.Variance()
	}
	return total, nil
}

// ObserveRoute draws count iid observations of the route's total delay
// (each observation sums one fresh draw per segment — a d.f. observation of
// the route delay in the paper's Definition 2 sense).
func (n *Network) ObserveRoute(r Route, count int) ([]float64, error) {
	if count < 0 {
		return nil, fmt.Errorf("cartel: negative observation count %d", count)
	}
	out := make([]float64, count)
	for k := range out {
		total := 0.0
		for _, id := range r.SegmentIDs {
			seg, err := n.Segment(id)
			if err != nil {
				return nil, err
			}
			total += seg.Delay.Sample(n.rng)
		}
		out[k] = total
	}
	return out, nil
}

// RoutePair is a pair of routes with close true mean delays, the §V-D
// workload: comparing their means at small sample sizes is intentionally
// hard. FirstMean ≤ SecondMean always holds (callers arrange H0/H1 truth by
// choosing the comparison direction).
type RoutePair struct {
	First, Second         Route
	FirstMean, SecondMean float64
}

// ClosePairs generates count route pairs whose true mean delays differ by
// at most maxRelGap (relative to the smaller mean). Pairs are built by
// searching random routes of the given length; an error is returned when
// the network is too small to find enough pairs.
func (n *Network) ClosePairs(count, routeLen int, maxRelGap float64) ([]RoutePair, error) {
	if count < 1 {
		return nil, fmt.Errorf("cartel: need ≥ 1 pair, got %d", count)
	}
	if maxRelGap <= 0 {
		return nil, errors.New("cartel: maxRelGap must be positive")
	}
	var out []RoutePair
	const maxTries = 50000
	type cand struct {
		r    Route
		mean float64
	}
	// pool is kept sorted by mean so each new candidate only needs to
	// inspect its two nearest neighbours.
	var pool []cand
	for tries := 0; len(out) < count && tries < maxTries; tries++ {
		r, err := n.RandomRoute(routeLen)
		if err != nil {
			return nil, err
		}
		m, err := n.TrueMeanDelay(r)
		if err != nil {
			return nil, err
		}
		pos := sort.Search(len(pool), func(i int) bool { return pool[i].mean >= m })
		best := -1
		for _, i := range []int{pos - 1, pos} {
			if i < 0 || i >= len(pool) {
				continue
			}
			c := pool[i]
			lo, hi := math.Min(c.mean, m), math.Max(c.mean, m)
			if lo > 0 && hi != lo && (hi-lo)/lo <= maxRelGap {
				best = i
				break
			}
		}
		if best >= 0 {
			c := pool[best]
			first, second := c.r, r
			fm, sm := c.mean, m
			if fm > sm {
				first, second = second, first
				fm, sm = sm, fm
			}
			out = append(out, RoutePair{First: first, Second: second, FirstMean: fm, SecondMean: sm})
			pool = append(pool[:best], pool[best+1:]...)
			continue
		}
		pool = append(pool, cand{})
		copy(pool[pos+1:], pool[pos:])
		pool[pos] = cand{r: r, mean: m}
	}
	if len(out) < count {
		return nil, fmt.Errorf("cartel: found only %d/%d close pairs; widen maxRelGap or grow the network",
			len(out), count)
	}
	return out, nil
}

// TrueBinHeights returns the exact probability of each histogram bucket
// under the segment's true delay distribution — ground truth for bin-height
// miss-rate experiments (Fig 4c).
func TrueBinHeights(d dist.Distribution, edges []float64) ([]float64, error) {
	if len(edges) < 2 {
		return nil, errors.New("cartel: need at least 2 edges")
	}
	out := make([]float64, len(edges)-1)
	for i := range out {
		out[i] = d.CDF(edges[i+1]) - d.CDF(edges[i])
	}
	return out, nil
}
