package cartel

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestNewNetworkDeterministic(t *testing.T) {
	a, err := NewNetwork(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNetwork(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Segments {
		if a.Segments[i].Delay != b.Segments[i].Delay {
			t.Fatal("same seed produced different networks")
		}
	}
	c, _ := NewNetwork(50, 8)
	same := true
	for i := range a.Segments {
		if a.Segments[i].Delay != c.Segments[i].Delay {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical networks")
	}
	if _, err := NewNetwork(0, 1); err == nil {
		t.Error("0 segments: want error")
	}
}

func TestSegmentProperties(t *testing.T) {
	n, err := NewNetwork(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range n.Segments {
		if s.Length < 100 || s.Length > 1000 {
			t.Errorf("segment %d length %g out of range", s.ID, s.Length)
		}
		if s.Delay.Mean() <= 0 {
			t.Errorf("segment %d non-positive mean delay", s.ID)
		}
		if s.Rate <= 0 {
			t.Errorf("segment %d non-positive rate", s.ID)
		}
	}
	if _, err := n.Segment(0); err == nil {
		t.Error("segment 0: want error")
	}
	if _, err := n.Segment(101); err == nil {
		t.Error("segment 101: want error")
	}
}

func TestObserveMatchesTruth(t *testing.T) {
	n, _ := NewNetwork(10, 5)
	obs, err := n.Observe(1, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 50000 {
		t.Fatalf("len = %d", len(obs))
	}
	sum := 0.0
	for _, x := range obs {
		if x <= 0 {
			t.Fatal("non-positive delay")
		}
		sum += x
	}
	seg, _ := n.Segment(1)
	mean := sum / float64(len(obs))
	sd := math.Sqrt(seg.Delay.Variance())
	if math.Abs(mean-seg.Delay.Mean()) > 6*sd/math.Sqrt(float64(len(obs))) {
		t.Errorf("observed mean %g, true %g", mean, seg.Delay.Mean())
	}
	if _, err := n.Observe(1, -1); err == nil {
		t.Error("negative count: want error")
	}
	if _, err := n.Observe(999, 5); err == nil {
		t.Error("bad segment: want error")
	}
}

func TestObserveWindowAndGrouping(t *testing.T) {
	n, _ := NewNetwork(30, 11)
	obs, err := n.ObserveWindow(5000, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 5000 {
		t.Fatalf("len = %d", len(obs))
	}
	groups := GroupBySegment(obs)
	total := 0
	for id, s := range groups {
		if id < 1 || id > 30 {
			t.Fatalf("observation for unknown segment %d", id)
		}
		total += s.Size()
	}
	if total != 5000 {
		t.Errorf("grouped %d observations, want 5000", total)
	}
	// Rates vary; the busiest segment should see far more reports than
	// the quietest (Example 1's 3-vs-50 asymmetry).
	min, max := 1<<30, 0
	for _, s := range groups {
		if s.Size() < min {
			min = s.Size()
		}
		if s.Size() > max {
			max = s.Size()
		}
	}
	if max < 3*min {
		t.Errorf("observation counts too uniform: min %d, max %d", min, max)
	}
	for _, o := range obs[:10] {
		if o.TimeSec < 0 || o.TimeSec >= 120 {
			t.Errorf("TimeSec %d outside window", o.TimeSec)
		}
	}
	if _, err := n.ObserveWindow(-1, 60); err == nil {
		t.Error("negative total: want error")
	}
}

func TestRoutes(t *testing.T) {
	n, _ := NewNetwork(50, 13)
	r, err := n.RandomRoute(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SegmentIDs) != 20 {
		t.Fatalf("route length %d", len(r.SegmentIDs))
	}
	seen := map[int]bool{}
	for _, id := range r.SegmentIDs {
		if seen[id] {
			t.Fatalf("duplicate segment %d in route", id)
		}
		seen[id] = true
	}
	mean, err := n.TrueMeanDelay(r)
	if err != nil || mean <= 0 {
		t.Fatalf("TrueMeanDelay = %g, %v", mean, err)
	}
	variance, err := n.TrueVarianceDelay(r)
	if err != nil || variance <= 0 {
		t.Fatalf("TrueVarianceDelay = %g, %v", variance, err)
	}
	// Route observations center on the true mean.
	obs, err := n.ObserveRoute(r, 20000)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range obs {
		sum += x
	}
	got := sum / float64(len(obs))
	if math.Abs(got-mean) > 6*math.Sqrt(variance/float64(len(obs))) {
		t.Errorf("observed route mean %g, true %g", got, mean)
	}
	if _, err := n.RandomRoute(0); err == nil {
		t.Error("empty route: want error")
	}
	if _, err := n.RandomRoute(51); err == nil {
		t.Error("oversized route: want error")
	}
	if _, err := n.ObserveRoute(r, -1); err == nil {
		t.Error("negative count: want error")
	}
}

func TestClosePairs(t *testing.T) {
	n, _ := NewNetwork(200, 17)
	pairs, err := n.ClosePairs(20, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 20 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for i, p := range pairs {
		if p.FirstMean > p.SecondMean {
			t.Errorf("pair %d not ordered: %g > %g", i, p.FirstMean, p.SecondMean)
		}
		gap := (p.SecondMean - p.FirstMean) / p.FirstMean
		if gap > 0.05 {
			t.Errorf("pair %d gap %g exceeds 0.05", i, gap)
		}
	}
	if _, err := n.ClosePairs(0, 10, 0.05); err == nil {
		t.Error("0 pairs: want error")
	}
	if _, err := n.ClosePairs(5, 10, 0); err == nil {
		t.Error("zero gap: want error")
	}
	// Impossible demand errors rather than spinning forever.
	tiny, _ := NewNetwork(2, 1)
	if _, err := tiny.ClosePairs(50, 2, 1e-12); err == nil {
		t.Error("unsatisfiable pairs: want error")
	}
}

func TestTrueBinHeights(t *testing.T) {
	nd, _ := dist.NewNormal(0, 1)
	heights, err := TrueBinHeights(nd, []float64{-1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "bin1", heights[0], 0.3413, 0.0001)
	approx(t, "bin2", heights[1], 0.3413, 0.0001)
	if _, err := TrueBinHeights(nd, []float64{0}); err == nil {
		t.Error("single edge: want error")
	}
}
