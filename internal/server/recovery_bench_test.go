package server

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkRecoveryReplay measures end-to-end crash recovery: NewDurable
// on a data directory holding one stream, one windowed aggregate query,
// and a WAL of journaled inserts. The seeding server is crashed (no final
// checkpoint), so every insert replays through the engine.
func BenchmarkRecoveryReplay(b *testing.B) {
	for _, inserts := range []int{100, 1000} {
		b.Run(fmt.Sprintf("inserts=%d", inserts), func(b *testing.B) {
			dir := b.TempDir()
			cfg := durableConfig(dir, 1, 1<<30) // never checkpoint: pure replay
			cfg.FsyncPolicy = "none"
			s, addr := startDurableServer(b, cfg)
			tc := dialServer(b, addr)
			tc.mustOK(crashStreamCmd)
			tc.mustOK(crashQueryCmd)
			for i := 0; i < inserts; i++ {
				tc.mustOK(crashInsertCmd(i))
			}
			crash(s)
			tc.c.Close()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := core.NewEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rs, err := NewDurable(eng, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if w := rs.wal.Swap(nil); w != nil { // skip the final checkpoint: keep the WAL replayable
					w.Close()
				}
				b.StartTimer()
			}
		})
	}
}
