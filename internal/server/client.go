package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// Data is one asynchronous query result delivered to a client.
type Data struct {
	QueryID string
	Result  ResultJSON
}

// ServerError is an ERR reply: the request reached the server and was
// rejected. It is never retried — only transport failures (broken or timed
// out connections) are, and only for idempotent operations.
type ServerError string

func (e ServerError) Error() string { return string(e) }

// DialOptions tunes the client's fault handling. The zero value keeps the
// historical behavior: one connection, one attempt per operation, a 30s
// per-operation deadline.
type DialOptions struct {
	// DialTimeout bounds each TCP dial, including redials (default 5s).
	DialTimeout time.Duration
	// OpTimeout bounds one request/reply exchange (default 30s). A timed
	// out exchange closes the connection — the late reply can never be
	// matched to a later request.
	OpTimeout time.Duration
	// Retries is how many extra attempts idempotent operations get after a
	// transport failure (default 0 = fail fast). Retried inserts carry a
	// request id, so a retry whose original was applied — reply lost on the
	// wire — is answered from the server's dedup window, not re-applied.
	Retries int
	// RetryBase and RetryMax shape the exponential backoff between
	// attempts: base·2^(attempt-1), capped at max, with ±50% jitter
	// (defaults 50ms and 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed makes request ids and backoff jitter deterministic for tests;
	// 0 derives a per-client seed from the clock.
	Seed uint64
}

func (o DialOptions) normalize() DialOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 30 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = uint64(time.Now().UnixNano()) | 1
	}
	return o
}

// Client is a Go client for the line protocol. Safe for concurrent use;
// requests are serialized and DATA lines are delivered on the Data channel.
// With Retries > 0 it redials on transport failures and resends idempotent
// requests (tagged with request ids, so inserts apply exactly once).
type Client struct {
	addr string
	opts DialOptions

	data     chan Data
	dataOnce sync.Once

	mu     sync.Mutex // serializes exchanges, redials, and backoff state
	cc     *clientConn
	closed bool
	rng    uint64
	idPfx  string
	reqSeq uint64
}

// clientConn is one live TCP connection; redials replace it wholesale so a
// stale reader can never feed replies into a new connection's exchange.
type clientConn struct {
	c       net.Conn
	w       *bufio.Writer
	replies chan reply
	done    chan struct{}
	readErr error
}

type reply struct {
	ok      bool
	payload string
}

// Dial connects to a server with defaults (no retries).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOpts(addr, DialOptions{DialTimeout: timeout})
}

// DialOpts connects with explicit fault-handling options.
func DialOpts(addr string, o DialOptions) (*Client, error) {
	o = o.normalize()
	cl := &Client{
		addr: addr,
		opts: o,
		data: make(chan Data, 1024),
		rng:  o.Seed,
	}
	cl.idPfx = fmt.Sprintf("c%x", splitmix64(o.Seed)&0xffffffff)
	cl.mu.Lock()
	err := cl.redialLocked()
	cl.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return cl, nil
}

// Addr returns the server address the client dials.
func (cl *Client) Addr() string { return cl.addr }

// Data returns the channel of asynchronous query results. It closes when
// the client is closed or — without retries — when the connection ends;
// results are dropped if the channel backs up.
func (cl *Client) Data() <-chan Data { return cl.data }

func (cl *Client) closeData() { cl.dataOnce.Do(func() { close(cl.data) }) }

// Close terminates the connection and stops any retrying.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	cc := cl.cc
	cl.cc = nil
	cl.mu.Unlock()
	var err error
	if cc != nil {
		err = cc.c.Close()
		<-cc.done
	}
	cl.closeData()
	return err
}

// Err returns the terminal read error, if the current connection has
// failed.
func (cl *Client) Err() error {
	cl.mu.Lock()
	cc := cl.cc
	cl.mu.Unlock()
	if cc == nil {
		return nil
	}
	select {
	case <-cc.done:
		return cc.readErr
	default:
		return nil
	}
}

func (cl *Client) redialLocked() error {
	nc, err := net.DialTimeout("tcp", cl.addr, cl.opts.DialTimeout)
	if err != nil {
		return err
	}
	cc := &clientConn{
		c:       nc,
		w:       bufio.NewWriter(nc),
		replies: make(chan reply, 1),
		done:    make(chan struct{}),
	}
	cl.cc = cc
	go cl.readLoop(cc)
	return nil
}

func (cl *Client) ensureConnLocked() error {
	if cl.closed {
		return errors.New("server: client closed")
	}
	if cl.cc != nil {
		return nil
	}
	return cl.redialLocked()
}

func (cl *Client) dropConnLocked() {
	if cl.cc != nil {
		cl.cc.c.Close()
		cl.cc = nil
	}
}

func (cl *Client) readLoop(cc *clientConn) {
	r := bufio.NewReaderSize(cc.c, 64*1024)
	for {
		line, err := readLine(r, maxLineBytes)
		if err != nil {
			// readLine surfaces a torn final line (connection died mid-reply)
			// as io.ErrUnexpectedEOF instead of the fragment, so a truncated
			// "OK ..." can never parse as a successful answer — the exchange
			// fails and, with retries enabled, the request id makes the
			// resend safe.
			if err != io.EOF {
				cc.readErr = err
			}
			break
		}
		switch {
		case strings.HasPrefix(line, "DATA "):
			rest := line[len("DATA "):]
			idx := strings.IndexByte(rest, ' ')
			if idx < 0 {
				continue
			}
			var rj ResultJSON
			if err := json.Unmarshal([]byte(rest[idx+1:]), &rj); err != nil {
				continue
			}
			select {
			case cl.data <- Data{QueryID: rest[:idx], Result: rj}:
			default: // drop on backpressure rather than deadlock
			}
		case strings.HasPrefix(line, "OK"):
			payload := strings.TrimSpace(strings.TrimPrefix(line, "OK"))
			cc.replies <- reply{ok: true, payload: payload}
		case strings.HasPrefix(line, "ERR "):
			cc.replies <- reply{ok: false, payload: line[len("ERR "):]}
		}
	}
	close(cc.done)
	// Without retries a dead connection is terminal, matching the original
	// client contract; with retries the data channel survives redials.
	if cl.opts.Retries == 0 {
		cl.closeData()
	}
}

// exchangeLocked performs one request/reply exchange on the current
// connection. Transport failures (including an OpTimeout) poison the
// connection — it is closed and dropped so a late reply cannot desync the
// next exchange.
func (cl *Client) exchangeLocked(line string) (string, error) {
	cc := cl.cc
	if _, err := cc.w.WriteString(line + "\n"); err != nil {
		cl.dropConnLocked()
		return "", err
	}
	if err := cc.w.Flush(); err != nil {
		cl.dropConnLocked()
		return "", err
	}
	timer := time.NewTimer(cl.opts.OpTimeout)
	defer timer.Stop()
	select {
	case r := <-cc.replies:
		if !r.ok {
			return "", ServerError(r.payload)
		}
		return r.payload, nil
	case <-cc.done:
		cl.dropConnLocked()
		if cc.readErr != nil {
			return "", cc.readErr
		}
		return "", errors.New("server: connection closed")
	case <-timer.C:
		cl.dropConnLocked()
		return "", errors.New("server: request timed out")
	}
}

// roundTrip sends one non-idempotent request: a single attempt, because a
// lost reply leaves the outcome unknown and re-sending could double-apply.
func (cl *Client) roundTrip(line string) (string, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err := cl.ensureConnLocked(); err != nil {
		return "", err
	}
	return cl.exchangeLocked(line)
}

// roundTripIdem sends an idempotent request, retrying transport failures
// with exponential backoff and jitter. ERR replies are returned as-is: the
// server answered, so retrying cannot help.
func (cl *Client) roundTripIdem(line string) (string, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= cl.opts.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(cl.backoffLocked(attempt))
		}
		if err := cl.ensureConnLocked(); err != nil {
			lastErr = err
			continue
		}
		payload, err := cl.exchangeLocked(line)
		if err == nil {
			return payload, nil
		}
		var se ServerError
		if errors.As(err, &se) {
			return "", err
		}
		lastErr = err
	}
	return "", lastErr
}

// backoffLocked computes base·2^(attempt-1) capped at RetryMax, jittered to
// [d/2, d] so synchronized clients fan out.
func (cl *Client) backoffLocked(attempt int) time.Duration {
	d := cl.opts.RetryBase << (attempt - 1)
	if d > cl.opts.RetryMax || d <= 0 {
		d = cl.opts.RetryMax
	}
	cl.rng ^= cl.rng << 13
	cl.rng ^= cl.rng >> 7
	cl.rng ^= cl.rng << 17
	half := d / 2
	return half + time.Duration(cl.rng%uint64(half+1))
}

// nextReqIDLocked mints a request id unique within this client; the prefix
// separates clients sharing a server's dedup window.
func (cl *Client) nextReqIDLocked() string {
	cl.reqSeq++
	return fmt.Sprintf("%s-%d", cl.idPfx, cl.reqSeq)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Do sends one raw protocol line and returns the OK payload: a single
// attempt, no request-id minting. The cluster routing layer uses it to
// relay commands whose retry policy it manages itself (it decides which
// node — primary or promoted replica — each attempt targets).
func (cl *Client) Do(line string) (string, error) {
	return cl.roundTrip(line)
}

// Ping checks liveness.
func (cl *Client) Ping() error {
	_, err := cl.roundTripIdem("PING")
	return err
}

// RegisterStream declares a stream schema.
func (cl *Client) RegisterStream(schema *stream.Schema) error {
	parts := make([]string, 0, schema.Arity()+2)
	parts = append(parts, "STREAM", schema.Name)
	for _, col := range schema.Columns {
		if col.Probabilistic {
			parts = append(parts, col.Name+":dist")
		} else {
			parts = append(parts, col.Name)
		}
	}
	_, err := cl.roundTrip(strings.Join(parts, " "))
	return err
}

// Query registers a continuous query under the given id; results arrive on
// Data().
func (cl *Client) Query(id, sqlText string) error {
	if strings.ContainsAny(id, " \n") {
		return fmt.Errorf("server: query id %q contains whitespace", id)
	}
	_, err := cl.roundTrip("QUERY " + id + " " + sqlText)
	return err
}

// insertLine finalizes an ingest request: with retries enabled it appends a
// request id, making the retry loop exactly-once end to end.
func (cl *Client) ingestRoundTrip(parts []string) (string, error) {
	if cl.opts.Retries == 0 {
		return cl.roundTrip(strings.Join(parts, " "))
	}
	cl.mu.Lock()
	id := cl.nextReqIDLocked()
	cl.mu.Unlock()
	return cl.roundTripIdem(strings.Join(parts, " ") + " @" + id)
}

// Insert pushes one tuple; the returned count is the number of query
// results the insert produced server-side.
func (cl *Client) Insert(streamName string, fields ...randvar.Field) (int, error) {
	parts := make([]string, 0, len(fields)+2)
	parts = append(parts, "INSERT", streamName)
	for _, f := range fields {
		parts = append(parts, FormatFieldSpec(f))
	}
	payload, err := cl.ingestRoundTrip(parts)
	if err != nil {
		return 0, err
	}
	n := 0
	fmt.Sscanf(payload, "inserted results=%d", &n)
	return n, nil
}

// InsertBatch pushes several tuples in one round trip (and, with
// durability on, one WAL record and at most one fsync). Returns the number
// of query results the batch produced server-side.
func (cl *Client) InsertBatch(streamName string, rows ...[]randvar.Field) (int, error) {
	if len(rows) == 0 {
		return 0, errors.New("server: empty batch")
	}
	parts := make([]string, 0, 2+2*len(rows))
	parts = append(parts, "INSERTBATCH", streamName)
	for i, fields := range rows {
		if i > 0 {
			parts = append(parts, "|")
		}
		for _, f := range fields {
			parts = append(parts, FormatFieldSpec(f))
		}
	}
	payload, err := cl.ingestRoundTrip(parts)
	if err != nil {
		return 0, err
	}
	tuples, results := 0, 0
	fmt.Sscanf(payload, "inserted tuples=%d results=%d", &tuples, &results)
	return results, nil
}

// Stats fetches a query's counters.
func (cl *Client) Stats(id string) (core.QueryStats, error) {
	payload, err := cl.roundTripIdem("STATS " + id)
	if err != nil {
		return core.QueryStats{}, err
	}
	var st core.QueryStats
	if err := json.Unmarshal([]byte(payload), &st); err != nil {
		return core.QueryStats{}, err
	}
	return st, nil
}

// Metrics fetches the server's process-wide metrics snapshot.
func (cl *Client) Metrics() (metrics.Snapshot, error) {
	payload, err := cl.roundTripIdem("METRICS")
	if err != nil {
		return metrics.Snapshot{}, err
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(payload), &snap); err != nil {
		return metrics.Snapshot{}, err
	}
	return snap, nil
}

// QueryMetrics is one query's counters plus its accuracy telemetry as
// returned by METRICS <id>.
type QueryMetrics struct {
	ID        string          `json:"id"`
	Stats     core.QueryStats `json:"stats"`
	Telemetry core.Telemetry  `json:"telemetry"`
}

// QueryMetrics fetches one query's counters and accuracy telemetry.
func (cl *Client) QueryMetrics(id string) (QueryMetrics, error) {
	payload, err := cl.roundTripIdem("METRICS " + id)
	if err != nil {
		return QueryMetrics{}, err
	}
	var qm QueryMetrics
	if err := json.Unmarshal([]byte(payload), &qm); err != nil {
		return QueryMetrics{}, err
	}
	return qm, nil
}

// Explain fetches a query's compiled plan.
func (cl *Client) Explain(id string) (string, error) {
	payload, err := cl.roundTripIdem("EXPLAIN " + id)
	if err != nil {
		return "", err
	}
	plan, err := strconv.Unquote(payload)
	if err != nil {
		return "", fmt.Errorf("server: malformed EXPLAIN payload: %w", err)
	}
	return plan, nil
}

// Shed reports the server's current degrade level, or forces one when
// level >= 0 (journaled server-side, like controller transitions).
func (cl *Client) Shed(level int) (int, error) {
	line := "SHED"
	if level >= 0 {
		line = "SHED " + strconv.Itoa(level)
	}
	payload, err := cl.roundTrip(line)
	if err != nil {
		return 0, err
	}
	got := 0
	fmt.Sscanf(payload, "shed level=%d", &got)
	return got, nil
}

// CloseQuery drops a continuous query.
func (cl *Client) CloseQuery(id string) error {
	_, err := cl.roundTrip("CLOSE " + id)
	return err
}

// RoleInfo is the parsed reply of the ROLE command: the node's failover
// state as one consistent observation.
type RoleInfo struct {
	// Role is "primary", "follower", or "fenced" (a deposed primary
	// rejecting writes until it rejoins).
	Role string
	// Epoch is the replication term the node believes is current.
	Epoch uint64
	// Followers is the number of live replication connections the node is
	// serving (0 on pure followers).
	Followers int
	// LastLSN is the newest record in the node's local WAL (0 without
	// durability).
	LastLSN uint64
	// LagRecords is the node's replication lag behind its primary in
	// records (0 on primaries).
	LagRecords int64
	// ReplAddr is the node's replication (WAL-ship) listener address, when
	// it runs one; empty otherwise. Survivors of a failover follow the
	// promoted node at this address.
	ReplAddr string
}

// Role reports the node's failover state (idempotent; safe to retry).
func (cl *Client) Role() (RoleInfo, error) {
	payload, err := cl.roundTripIdem("ROLE")
	if err != nil {
		return RoleInfo{}, err
	}
	var info RoleInfo
	if _, err := fmt.Sscanf(payload, "role=%s epoch=%d followers=%d last_lsn=%d lag_records=%d",
		&info.Role, &info.Epoch, &info.Followers, &info.LastLSN, &info.LagRecords); err != nil {
		return RoleInfo{}, fmt.Errorf("server: malformed ROLE reply %q: %w", payload, err)
	}
	// repl= is optional (only nodes running a ship listener report it) and
	// deliberately trailing, past what Sscanf consumes.
	if i := strings.Index(payload, " repl="); i >= 0 {
		info.ReplAddr = strings.TrimSpace(payload[i+len(" repl="):])
	}
	return info, nil
}

// Subscribe adds this connection as an additional DATA recipient for a
// query owned by another connection. Results arrive on the Data channel.
func (cl *Client) Subscribe(id string) error {
	_, err := cl.roundTrip("SUBSCRIBE " + id)
	return err
}

// Quit asks the server to close the connection gracefully.
func (cl *Client) Quit() error {
	_, err := cl.roundTrip("QUIT")
	if err == nil {
		return cl.Close()
	}
	return err
}
