package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// Data is one asynchronous query result delivered to a client.
type Data struct {
	QueryID string
	Result  ResultJSON
}

// Client is a Go client for the line protocol. Safe for concurrent use;
// requests are serialized and DATA lines are delivered on the Data channel.
type Client struct {
	c    net.Conn
	w    *bufio.Writer
	data chan Data

	mu      sync.Mutex // serializes request/response exchanges
	replies chan reply
	closed  chan struct{}
	once    sync.Once
	readErr error
}

type reply struct {
	ok      bool
	payload string
}

// Dial connects to a server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		c:       nc,
		w:       bufio.NewWriter(nc),
		data:    make(chan Data, 1024),
		replies: make(chan reply, 1),
		closed:  make(chan struct{}),
	}
	go cl.readLoop()
	return cl, nil
}

// Data returns the channel of asynchronous query results. It is closed
// when the connection ends; results are dropped if the channel backs up.
func (cl *Client) Data() <-chan Data { return cl.data }

// Close terminates the connection.
func (cl *Client) Close() error {
	var err error
	cl.once.Do(func() {
		err = cl.c.Close()
	})
	return err
}

// Err returns the terminal read error, if the connection has failed.
func (cl *Client) Err() error {
	select {
	case <-cl.closed:
		return cl.readErr
	default:
		return nil
	}
}

func (cl *Client) readLoop() {
	scanner := bufio.NewScanner(cl.c)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "DATA "):
			rest := line[len("DATA "):]
			idx := strings.IndexByte(rest, ' ')
			if idx < 0 {
				continue
			}
			var rj ResultJSON
			if err := json.Unmarshal([]byte(rest[idx+1:]), &rj); err != nil {
				continue
			}
			select {
			case cl.data <- Data{QueryID: rest[:idx], Result: rj}:
			default: // drop on backpressure rather than deadlock
			}
		case strings.HasPrefix(line, "OK"):
			payload := strings.TrimSpace(strings.TrimPrefix(line, "OK"))
			cl.replies <- reply{ok: true, payload: payload}
		case strings.HasPrefix(line, "ERR "):
			cl.replies <- reply{ok: false, payload: line[len("ERR "):]}
		}
	}
	cl.readErr = scanner.Err()
	close(cl.closed)
	close(cl.data)
}

// roundTrip sends one request line and waits for its OK/ERR reply.
func (cl *Client) roundTrip(line string) (string, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if _, err := cl.w.WriteString(line + "\n"); err != nil {
		return "", err
	}
	if err := cl.w.Flush(); err != nil {
		return "", err
	}
	select {
	case r := <-cl.replies:
		if !r.ok {
			return "", errors.New(r.payload)
		}
		return r.payload, nil
	case <-cl.closed:
		if cl.readErr != nil {
			return "", cl.readErr
		}
		return "", errors.New("server: connection closed")
	case <-time.After(30 * time.Second):
		return "", errors.New("server: request timed out")
	}
}

// Ping checks liveness.
func (cl *Client) Ping() error {
	_, err := cl.roundTrip("PING")
	return err
}

// RegisterStream declares a stream schema.
func (cl *Client) RegisterStream(schema *stream.Schema) error {
	parts := make([]string, 0, schema.Arity()+2)
	parts = append(parts, "STREAM", schema.Name)
	for _, col := range schema.Columns {
		if col.Probabilistic {
			parts = append(parts, col.Name+":dist")
		} else {
			parts = append(parts, col.Name)
		}
	}
	_, err := cl.roundTrip(strings.Join(parts, " "))
	return err
}

// Query registers a continuous query under the given id; results arrive on
// Data().
func (cl *Client) Query(id, sqlText string) error {
	if strings.ContainsAny(id, " \n") {
		return fmt.Errorf("server: query id %q contains whitespace", id)
	}
	_, err := cl.roundTrip("QUERY " + id + " " + sqlText)
	return err
}

// Insert pushes one tuple; the returned count is the number of query
// results the insert produced server-side.
func (cl *Client) Insert(streamName string, fields ...randvar.Field) (int, error) {
	parts := make([]string, 0, len(fields)+2)
	parts = append(parts, "INSERT", streamName)
	for _, f := range fields {
		parts = append(parts, FormatFieldSpec(f))
	}
	payload, err := cl.roundTrip(strings.Join(parts, " "))
	if err != nil {
		return 0, err
	}
	n := 0
	fmt.Sscanf(payload, "inserted results=%d", &n)
	return n, nil
}

// InsertBatch pushes several tuples in one round trip (and, with
// durability on, one WAL record and at most one fsync). Returns the number
// of query results the batch produced server-side.
func (cl *Client) InsertBatch(streamName string, rows ...[]randvar.Field) (int, error) {
	if len(rows) == 0 {
		return 0, errors.New("server: empty batch")
	}
	parts := make([]string, 0, 2+2*len(rows))
	parts = append(parts, "INSERTBATCH", streamName)
	for i, fields := range rows {
		if i > 0 {
			parts = append(parts, "|")
		}
		for _, f := range fields {
			parts = append(parts, FormatFieldSpec(f))
		}
	}
	payload, err := cl.roundTrip(strings.Join(parts, " "))
	if err != nil {
		return 0, err
	}
	tuples, results := 0, 0
	fmt.Sscanf(payload, "inserted tuples=%d results=%d", &tuples, &results)
	return results, nil
}

// Stats fetches a query's counters.
func (cl *Client) Stats(id string) (core.QueryStats, error) {
	payload, err := cl.roundTrip("STATS " + id)
	if err != nil {
		return core.QueryStats{}, err
	}
	var st core.QueryStats
	if err := json.Unmarshal([]byte(payload), &st); err != nil {
		return core.QueryStats{}, err
	}
	return st, nil
}

// Metrics fetches the server's process-wide metrics snapshot.
func (cl *Client) Metrics() (metrics.Snapshot, error) {
	payload, err := cl.roundTrip("METRICS")
	if err != nil {
		return metrics.Snapshot{}, err
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(payload), &snap); err != nil {
		return metrics.Snapshot{}, err
	}
	return snap, nil
}

// QueryMetrics is one query's counters plus its accuracy telemetry as
// returned by METRICS <id>.
type QueryMetrics struct {
	ID        string          `json:"id"`
	Stats     core.QueryStats `json:"stats"`
	Telemetry core.Telemetry  `json:"telemetry"`
}

// QueryMetrics fetches one query's counters and accuracy telemetry.
func (cl *Client) QueryMetrics(id string) (QueryMetrics, error) {
	payload, err := cl.roundTrip("METRICS " + id)
	if err != nil {
		return QueryMetrics{}, err
	}
	var qm QueryMetrics
	if err := json.Unmarshal([]byte(payload), &qm); err != nil {
		return QueryMetrics{}, err
	}
	return qm, nil
}

// Explain fetches a query's compiled plan.
func (cl *Client) Explain(id string) (string, error) {
	payload, err := cl.roundTrip("EXPLAIN " + id)
	if err != nil {
		return "", err
	}
	plan, err := strconv.Unquote(payload)
	if err != nil {
		return "", fmt.Errorf("server: malformed EXPLAIN payload: %w", err)
	}
	return plan, nil
}

// CloseQuery drops a continuous query.
func (cl *Client) CloseQuery(id string) error {
	_, err := cl.roundTrip("CLOSE " + id)
	return err
}

// Quit asks the server to close the connection gracefully.
func (cl *Client) Quit() error {
	_, err := cl.roundTrip("QUIT")
	if err == nil {
		return cl.Close()
	}
	return err
}
