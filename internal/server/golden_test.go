package server

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestGoldenSession drives a scripted client session against a live durable
// daemon and byte-compares the full transcript — every OK, ERR, and DATA
// line, in order — against testdata/golden_session.txt. The engine is
// pinned (seed, workers=1, analytical accuracy, fsync=none) so DATA
// payloads, STATS, and per-query METRICS telemetry are bit-reproducible;
// any change to result decoration, JSON encoding, or protocol framing
// shows up as a transcript diff.
//
// The global METRICS reply is the one part normalized to shape: its
// *values* accumulate across the whole test process (the registry is
// process-global), but its *key set* is fixed at package init, so the
// transcript records the sorted metric names and masks the numbers.
//
// Regenerate after an intentional protocol change with:
//
//	go test ./internal/server/ -run TestGoldenSession -update
var updateGolden = flag.Bool("update", false, "rewrite golden transcripts")

// goldenScript is the request side of the session. Comments become
// transcript section markers.
var goldenScript = []string{
	"PING",
	"STREAM readings sensor temp:dist",
	"QUERY q1 SELECT temp FROM readings WHERE temp > 50",
	"QUERY q2 SELECT AVG(temp) AS avg_temp FROM readings WINDOW 3 ROWS",
	"INSERT readings 1 N(60,4,25)",
	"INSERT readings 2 N(40,9,16)",
	"INSERT readings 3 N(75,16,9)",
	"INSERT readings 4 S(55;52;58;61)",
	"STATS q1",
	"STATS q2",
	"METRICS q1",
	"METRICS q2",
	"METRICS",
	"EXPLAIN q1",
	"STATS nosuch",
	"BOGUS",
	"CLOSE q1",
	"QUIT",
}

func TestGoldenSession(t *testing.T) {
	runGoldenSession(t, false)
}

// TestGoldenSessionRowEngine replays the identical script against an engine
// forced onto the legacy row-window storage and compares against the same
// golden file — the byte-level proof that the columnar layout and the
// render-once serving path change no observable output.
func TestGoldenSessionRowEngine(t *testing.T) {
	runGoldenSession(t, true)
}

func runGoldenSession(t *testing.T, rowWindows bool) {
	eng, err := core.NewEngine(core.Config{
		Seed:       7,
		Method:     core.AccuracyAnalytical,
		Level:      0.9,
		Workers:    1,
		RowWindows: rowWindows,
		DataDir:    t.TempDir(),
		// fsync=none keeps the transcript free of timing-dependent fsync
		// scheduling; durability correctness has its own tests.
		FsyncPolicy: "none",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewDurable(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	nc, err := net.DialTimeout("tcp", addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(30 * time.Second))

	// The dispatch loop is synchronous per connection and DATA lines are
	// written before the insert's OK, so reading until the post-QUIT EOF
	// yields a deterministic interleaving.
	var transcript strings.Builder
	scanner := bufio.NewScanner(nc)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	w := bufio.NewWriter(nc)
	for _, req := range goldenScript {
		fmt.Fprintf(&transcript, ">> %s\n", req)
		if _, err := w.WriteString(req + "\n"); err != nil {
			t.Fatalf("send %q: %v", req, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("send %q: %v", req, err)
		}
		// Each request yields exactly one OK/ERR reply, preceded by any
		// DATA lines it triggered.
		for scanner.Scan() {
			line := scanner.Text()
			transcript.WriteString(normalizeGoldenLine(t, req, line))
			transcript.WriteByte('\n')
			if strings.HasPrefix(line, "OK") || strings.HasPrefix(line, "ERR ") {
				break
			}
		}
		if err := scanner.Err(); err != nil {
			t.Fatalf("read after %q: %v", req, err)
		}
	}

	got := transcript.String()
	goldenPath := filepath.Join("testdata", "golden_session.txt")
	// -update regenerates from the default (columnar) engine only; the row
	// variant always compares, so a layout divergence cannot be recorded.
	if *updateGolden && !rowWindows {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden transcript (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("session transcript diverged from %s (regenerate with -update if intentional)\n%s",
			goldenPath, transcriptDiff(string(want), got))
	}
}

// normalizeGoldenLine masks the process-global METRICS payload down to its
// stable shape; every other line passes through byte-exact.
func normalizeGoldenLine(t *testing.T, req, line string) string {
	t.Helper()
	if req != "METRICS" || !strings.HasPrefix(line, "OK ") {
		return line
	}
	var snap struct {
		Counters   map[string]json.RawMessage `json:"counters"`
		Gauges     map[string]json.RawMessage `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(line[len("OK "):]), &snap); err != nil {
		t.Fatalf("global METRICS payload is not valid JSON: %v\n%s", err, line)
	}
	names := func(m map[string]json.RawMessage) string {
		out := make([]string, 0, len(m))
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return strings.Join(out, ",")
	}
	return fmt.Sprintf("OK <metrics counters=[%s] gauges=[%s] histograms=[%s]>",
		names(snap.Counters), names(snap.Gauges), names(snap.Histograms))
}

// transcriptDiff renders the first divergent line with context.
func transcriptDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("first divergence at line %d:\n want: %s\n  got: %s", i+1, w, g)
		}
	}
	return "transcripts have identical lines but differ (trailing bytes?)"
}
