package server

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// startServer spins up a server on a random port and returns a connected
// client; both are torn down with the test.
func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	eng, err := core.NewEngine(core.Config{Method: core.AccuracyAnalytical})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	cl, err := Dial(addr.String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
	})
	return srv, cl
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil engine: want error")
	}
}

func TestPing(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndQuery(t *testing.T) {
	_, cl := startServer(t)
	schema, err := stream.NewSchema("traffic",
		stream.Column{Name: "road_id"},
		stream.Column{Name: "delay", Probabilistic: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	if err := cl.Query("q1", "SELECT road_id, delay FROM traffic WHERE delay > 50"); err != nil {
		t.Fatal(err)
	}
	nd, _ := dist.NewNormal(60, 100)
	n, err := cl.Insert("traffic", randvar.Det(19), randvar.Field{Dist: nd, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("insert produced %d results, want 1", n)
	}
	select {
	case d := <-cl.Data():
		if d.QueryID != "q1" {
			t.Fatalf("result for %q", d.QueryID)
		}
		f, ok := d.Result.Fields["delay"]
		if !ok {
			t.Fatalf("fields = %v", d.Result.Fields)
		}
		if math.Abs(f.Mean-60) > 1e-9 || f.N != 20 {
			t.Errorf("delay field = %+v", f)
		}
		if f.MeanIv == nil || f.MeanIv.Level != 0.9 {
			t.Errorf("missing mean interval: %+v", f)
		}
		// P(delay>50) = 0.841; the membership probability shrinks.
		if math.Abs(d.Result.Prob-0.8413) > 0.001 {
			t.Errorf("prob = %v", d.Result.Prob)
		}
		if d.Result.ProbIv == nil {
			t.Error("missing tuple probability interval")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no DATA within 2s")
	}
	// Stats reflect the push.
	st, err := cl.Stats("q1")
	if err != nil {
		t.Fatal(err)
	}
	if st.In != 1 || st.Out != 1 {
		t.Errorf("stats = %+v", st)
	}
	if err := cl.CloseQuery("q1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stats("q1"); err == nil {
		t.Error("stats after close: want error")
	}
}

func TestInsertFieldKinds(t *testing.T) {
	_, cl := startServer(t)
	schema, _ := stream.NewSchema("s",
		stream.Column{Name: "a", Probabilistic: true},
		stream.Column{Name: "b", Probabilistic: true},
		stream.Column{Name: "c"},
	)
	if err := cl.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	// Raw protocol exercise: S() learning and H() histogram.
	if err := cl.Query("q", "SELECT a, b, c FROM s"); err != nil {
		t.Fatal(err)
	}
	h, _ := dist.HistogramFromCounts([]float64{0, 10, 20}, []int{3, 7})
	n, err := cl.Insert("s",
		randvar.Field{Dist: h, N: 10},
		mustParse(t, "S(1;2;3;4;5)"),
		randvar.Det(7),
	)
	if err != nil || n != 1 {
		t.Fatalf("insert: %d, %v", n, err)
	}
	select {
	case d := <-cl.Data():
		a := d.Result.Fields["a"]
		if len(a.Bins) != 2 {
			t.Errorf("histogram bins = %+v", a.Bins)
		}
		b := d.Result.Fields["b"]
		if math.Abs(b.Mean-3) > 1e-9 || b.N != 5 {
			t.Errorf("learned field = %+v", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no DATA within 2s")
	}
}

func mustParse(t *testing.T, spec string) randvar.Field {
	t.Helper()
	f, err := ParseFieldSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestServerErrors(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Query("bad id", "SELECT x FROM s"); err == nil {
		t.Error("whitespace id: want client-side error")
	}
	if err := cl.Query("q", "SELECT x FROM nosuch"); err == nil {
		t.Error("unknown stream: want error")
	}
	if _, err := cl.Insert("nosuch", randvar.Det(1)); err == nil {
		t.Error("insert into unknown stream: want error")
	}
	if _, err := cl.Stats("nosuch"); err == nil {
		t.Error("stats of unknown query: want error")
	}
	if err := cl.CloseQuery("nosuch"); err == nil {
		t.Error("close of unknown query: want error")
	}
	// Duplicate query ids are rejected.
	schema, _ := stream.NewSchema("s", stream.Column{Name: "x", Probabilistic: true})
	if err := cl.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	if err := cl.Query("dup", "SELECT x FROM s"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Query("dup", "SELECT x FROM s"); err == nil {
		t.Error("duplicate id: want error")
	}
	// Duplicate stream registration is rejected.
	if err := cl.RegisterStream(schema); err == nil {
		t.Error("duplicate stream: want error")
	}
}

func TestParseFieldSpec(t *testing.T) {
	f := mustParse(t, "12.5")
	if !f.IsDet() || f.Dist.Mean() != 12.5 {
		t.Errorf("det field = %+v", f)
	}
	f = mustParse(t, "N(60,100,20)")
	nd, ok := f.Dist.(dist.Normal)
	if !ok || nd.Mu != 60 || nd.Sigma2 != 100 || f.N != 20 {
		t.Errorf("normal field = %+v", f)
	}
	f = mustParse(t, "H(0,10,20|3,7)")
	h, ok := f.Dist.(*dist.Histogram)
	if !ok || h.NumBuckets() != 2 || f.N != 10 {
		t.Errorf("hist field = %+v", f)
	}
	bad := []string{"x", "N(1,2)", "N(a,b,c)", "S(1)", "S(a;b)", "H(0,1)", "H(0,1|x)", "N(1,-2,5)"}
	for _, spec := range bad {
		if _, err := ParseFieldSpec(spec); err == nil {
			t.Errorf("ParseFieldSpec(%q): want error", spec)
		}
	}
}

func TestFormatFieldSpecRoundTrip(t *testing.T) {
	nd, _ := dist.NewNormal(60, 100)
	h, _ := dist.HistogramFromCounts([]float64{0, 10, 20}, []int{3, 7})
	cases := []randvar.Field{
		randvar.Det(3.5),
		{Dist: nd, N: 20},
		{Dist: h, N: 10},
	}
	for _, f := range cases {
		spec := FormatFieldSpec(f)
		back, err := ParseFieldSpec(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if math.Abs(back.Dist.Mean()-f.Dist.Mean()) > 1e-9 {
			t.Errorf("round trip %q: mean %g vs %g", spec, back.Dist.Mean(), f.Dist.Mean())
		}
		if back.N != f.N {
			t.Errorf("round trip %q: n %d vs %d", spec, back.N, f.N)
		}
	}
	// Other distribution kinds travel losslessly as codec JSON.
	exp, _ := dist.NewExponential(1)
	spec := FormatFieldSpec(randvar.Field{Dist: exp, N: 5})
	if !strings.HasPrefix(spec, "J{") {
		t.Fatalf("codec spec = %q", spec)
	}
	if strings.ContainsAny(spec, " \n") {
		t.Fatalf("codec spec must be a single token: %q", spec)
	}
	back, err := ParseFieldSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Dist.(dist.Exponential); !ok || back.N != 5 {
		t.Errorf("lossless round trip failed: %+v", back)
	}
}

func TestParseStreamDef(t *testing.T) {
	s, err := ParseStreamDef("t", []string{"id", "delay:dist", "speed:prob", "len:det"})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false}
	for i, w := range want {
		if s.Columns[i].Probabilistic != w {
			t.Errorf("column %d probabilistic = %v, want %v", i, s.Columns[i].Probabilistic, w)
		}
	}
	if _, err := ParseStreamDef("t", []string{"x:banana"}); err == nil {
		t.Error("unknown kind: want error")
	}
	if _, err := ParseStreamDef("t", nil); err == nil {
		t.Error("no columns: want error")
	}
}

func TestWindowQueryOverProtocol(t *testing.T) {
	_, cl := startServer(t)
	schema, _ := stream.NewSchema("sensor", stream.Column{Name: "val", Probabilistic: true})
	if err := cl.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	if err := cl.Query("agg", "SELECT AVG(val) FROM sensor WINDOW 3 ROWS"); err != nil {
		t.Fatal(err)
	}
	nd, _ := dist.NewNormal(50, 9)
	total := 0
	for i := 0; i < 5; i++ {
		n, err := cl.Insert("sensor", randvar.Field{Dist: nd, N: 20})
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 3 {
		t.Fatalf("window emitted %d results, want 3", total)
	}
	for i := 0; i < 3; i++ {
		select {
		case d := <-cl.Data():
			f := d.Result.Fields["avg_val"]
			if math.Abs(f.Mean-50) > 1e-6 {
				t.Errorf("AVG mean = %v", f.Mean)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("missing window result")
		}
	}
}

// TestProtocolGarbage: malformed protocol lines yield ERR responses, never
// crashes or hangs.
func TestProtocolGarbage(t *testing.T) {
	_, cl := startServer(t)
	garbage := []string{
		"FROB x y z",
		"STREAM",
		"STREAM onlyname",
		"QUERY",
		"QUERY justid",
		"INSERT",
		"INSERT s",
		"STATS",
		"CLOSE",
		"STREAM s x:banana",
		"INSERT nosuch N(",
	}
	for _, g := range garbage {
		if _, err := cl.roundTrip(g); err == nil {
			t.Errorf("%q: want ERR", g)
		}
	}
	// The connection still works afterwards.
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unusable after garbage: %v", err)
	}
}

// TestAbruptDisconnectCleansQueries: a dropped connection removes its
// queries so later inserts don't write to a dead socket.
func TestAbruptDisconnectCleansQueries(t *testing.T) {
	srv, cl := startServer(t)
	schema, _ := stream.NewSchema("s", stream.Column{Name: "x", Probabilistic: true})
	if err := cl.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	if err := cl.Query("q", "SELECT x FROM s"); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	// Wait for the server to observe the close and clean up.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		srv.mu.Lock()
		n := len(srv.queries)
		srv.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("queries not cleaned up after disconnect")
}

// TestConcurrentClients: several clients registering and inserting at once
// exercise the locking paths under the race detector.
func TestConcurrentClients(t *testing.T) {
	srv, cl := startServer(t)
	_ = srv
	schema, _ := stream.NewSchema("cc", stream.Column{Name: "x", Probabilistic: true})
	if err := cl.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	if err := cl.Query("agg", "SELECT AVG(x) FROM cc WINDOW 5 ROWS"); err != nil {
		t.Fatal(err)
	}
	addr := cl.Addr()
	const workers = 4
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			wc, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer wc.Close()
			nd, _ := dist.NewNormal(float64(50+seed), 25)
			for i := 0; i < 25; i++ {
				if _, err := wc.Insert("cc", randvar.Field{Dist: nd, N: 20}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(int64(w))
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats("agg")
	if err != nil {
		t.Fatal(err)
	}
	if st.In != 100 {
		t.Errorf("stats.In = %d, want 100", st.In)
	}
	// 100 inserts into a 5-row window → 96 aggregate results delivered to
	// this connection.
	if st.Out != 96 {
		t.Errorf("stats.Out = %d, want 96", st.Out)
	}
}

// TestJoinOverProtocol: a join query receives inserts from both streams.
func TestJoinOverProtocol(t *testing.T) {
	_, cl := startServer(t)
	roads, _ := stream.NewSchema("roads",
		stream.Column{Name: "rid"}, stream.Column{Name: "delay", Probabilistic: true})
	weather, _ := stream.NewSchema("weather",
		stream.Column{Name: "rid"}, stream.Column{Name: "rain", Probabilistic: true})
	if err := cl.RegisterStream(roads); err != nil {
		t.Fatal(err)
	}
	if err := cl.RegisterStream(weather); err != nil {
		t.Fatal(err)
	}
	if err := cl.Query("j", "SELECT roads.delay, weather.rain FROM roads JOIN weather ON rid = rid"); err != nil {
		t.Fatal(err)
	}
	nd, _ := dist.NewNormal(60, 100)
	if n, err := cl.Insert("roads", randvar.Det(5), randvar.Field{Dist: nd, N: 20}); err != nil || n != 0 {
		t.Fatalf("left insert: %d, %v", n, err)
	}
	rain, _ := dist.NewNormal(2, 1)
	n, err := cl.Insert("weather", randvar.Det(5), randvar.Field{Dist: rain, N: 15})
	if err != nil || n != 1 {
		t.Fatalf("right insert should join: %d, %v", n, err)
	}
	select {
	case d := <-cl.Data():
		if d.QueryID != "j" {
			t.Fatalf("data for %q", d.QueryID)
		}
		if _, ok := d.Result.Fields["roads.delay"]; !ok {
			t.Errorf("fields = %v", d.Result.Fields)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no join DATA within 2s")
	}
}

// TestExplainOverProtocol round-trips a compiled plan.
func TestExplainOverProtocol(t *testing.T) {
	_, cl := startServer(t)
	schema, _ := stream.NewSchema("s", stream.Column{Name: "x", Probabilistic: true})
	if err := cl.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	if err := cl.Query("q", "SELECT AVG(x) FROM s WINDOW 7 ROWS"); err != nil {
		t.Fatal(err)
	}
	plan, err := cl.Explain("q")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "count window of 7 rows") {
		t.Errorf("plan = %q", plan)
	}
	if _, err := cl.Explain("nosuch"); err == nil {
		t.Error("unknown query: want error")
	}
}

// TestJSONFieldSpecAndRepr: J{} specs parse, bad ones error, and DATA
// results carry the lossless repr.
func TestJSONFieldSpecAndRepr(t *testing.T) {
	if _, err := ParseFieldSpec(`J{"dist":{"type":"weibull","a":1,"b":2},"n":7}`); err != nil {
		t.Fatalf("J spec: %v", err)
	}
	if _, err := ParseFieldSpec(`J{broken`); err == nil {
		t.Error("bad J spec: want error")
	}
	_, cl := startServer(t)
	schema, _ := stream.NewSchema("s", stream.Column{Name: "x", Probabilistic: true})
	if err := cl.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	if err := cl.Query("q", "SELECT x FROM s"); err != nil {
		t.Fatal(err)
	}
	exp, _ := dist.NewExponential(2)
	if _, err := cl.Insert("s", randvar.Field{Dist: exp, N: 9}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-cl.Data():
		f := d.Result.Fields["x"]
		if len(f.Repr) == 0 {
			t.Fatal("missing repr")
		}
		back, err := codec.DecodeDistribution(f.Repr)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := back.(dist.Exponential); !ok {
			t.Errorf("repr decoded to %T", back)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no DATA within 2s")
	}
}
