package server

// Planner durability tests: shared per-(stream, field, window) state must
// survive the crash path — checkpoint capture, WAL-suffix replay, shared-
// group re-admission at re-bind — byte-identically, and statements the
// planner rejects must be refused at REGISTER, before they reach the WAL.

import (
	"fmt"
	"strings"
	"testing"
)

var planQueryCmds = []string{
	"QUERY p1 SELECT AVG(val) AS a FROM temps WINDOW 3 ROWS",
	"QUERY p2 SELECT AVG(val) AS a FROM temps WINDOW 3 ROWS",
	"QUERY p3 SELECT AVG(val) AS a FROM temps WINDOW 3 ROWS",
	"QUERY p4 SELECT AVG(val) AS a FROM temps WINDOW 3 ROWS",
	"QUERY p5 SELECT MIN(val) AS lo, MAX(val) AS hi FROM temps WHERE val > 5 WINDOW 2 ROWS",
}

// runPlanReference executes the shared-state workload uninterrupted.
func runPlanReference(t *testing.T, workers, total int) (data []string, stats []string) {
	t.Helper()
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, workers, 1024))
	defer s.Close()
	tc := dialServer(t, addr)
	defer tc.c.Close()
	tc.mustOK(crashStreamCmd)
	for _, q := range planQueryCmds {
		tc.mustOK(q)
	}
	for i := 0; i < total; i++ {
		data = append(data, tc.mustOK(crashInsertCmd(i))...)
	}
	for i := 1; i <= len(planQueryCmds); i++ {
		reply, _ := tc.cmd(fmt.Sprintf("STATS p%d", i))
		stats = append(stats, reply)
	}
	return data, stats
}

// TestCrashRecoverySharedState kills a server whose queries share planner
// state mid-stream — with the crash point landing between a checkpoint and
// the WAL tail, so recovery replays shared-cache invalidation through both
// layers — and demands the recovered server (at a different worker count)
// continues byte-identically and re-forms its shared groups.
func TestCrashRecoverySharedState(t *testing.T) {
	const phase1, total = 7, 16
	refData, refStats := runPlanReference(t, 1, total)

	dir := t.TempDir()
	// ckEvery 4: the crash at insert 7 leaves checkpoint state (through
	// insert 4) plus a live WAL suffix (5..7).
	s, addr := startDurableServer(t, durableConfig(dir, 2, 4))
	tc := dialServer(t, addr)
	tc.mustOK(crashStreamCmd)
	for _, q := range planQueryCmds {
		tc.mustOK(q)
	}
	for i := 0; i < phase1; i++ {
		tc.mustOK(crashInsertCmd(i))
	}
	crash(s)
	tc.c.Close()

	s2, addr2 := startDurableServer(t, durableConfig(dir, 4, 4))
	defer s2.Close()
	tc2 := dialServer(t, addr2)
	defer tc2.c.Close()
	var gotData []string
	for i := 1; i <= len(planQueryCmds); i++ {
		tc2.mustOK(fmt.Sprintf("ATTACH p%d", i))
	}
	// Re-bound after recovery, the identical quartet must have re-merged
	// into one shared group via content-equality admission.
	reply, _ := tc2.cmd("EXPLAIN p1")
	if !strings.HasPrefix(reply, "OK") || !strings.Contains(reply, "4 sharer(s)") {
		t.Fatalf("recovered EXPLAIN p1 lost the shared group: %q", reply)
	}
	for i := phase1; i < total; i++ {
		gotData = append(gotData, tc2.mustOK(crashInsertCmd(i))...)
	}
	var gotStats []string
	for i := 1; i <= len(planQueryCmds); i++ {
		r, _ := tc2.cmd(fmt.Sprintf("STATS p%d", i))
		gotStats = append(gotStats, r)
	}

	if len(gotData) == 0 || len(gotData) > len(refData) {
		t.Fatalf("recovered run emitted %d DATA lines, reference %d", len(gotData), len(refData))
	}
	tail := refData[len(refData)-len(gotData):]
	for i := range gotData {
		if gotData[i] != tail[i] {
			t.Fatalf("DATA line %d diverged after recovery:\nreference: %s\nrecovered: %s",
				i, tail[i], gotData[i])
		}
	}
	for i := range refStats {
		if gotStats[i] != refStats[i] {
			t.Fatalf("STATS p%d diverged: reference %q, recovered %q", i+1, refStats[i], gotStats[i])
		}
	}
}

// TestRejectedStatementNeverJournaled is the regression test for the
// validation-seam bugfix: a statement that fails plan-time validation is
// refused at REGISTER — it must not reach the WAL, and recovery from the
// directory it would have polluted must succeed without it.
func TestRejectedStatementNeverJournaled(t *testing.T) {
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, 1, 1024))
	tc := dialServer(t, addr)
	tc.mustOK(crashStreamCmd)
	rejected := []string{
		// Deterministic column under a significance test: previously
		// accepted, journaled, and then failing on every tuple.
		"QUERY bad1 SELECT val FROM temps WHERE MTEST(key, '>', 1, 0.05)",
		"QUERY bad2 SELECT val FROM temps WHERE PTEST(key > 1, 0.5, 0.05)",
		"QUERY bad3 SELECT key, AVG(val) FROM temps GROUP BY key WINDOW 64 ROWS BACKEND SKETCH",
	}
	for _, cmd := range rejected {
		if reply, _ := tc.cmd(cmd); !strings.HasPrefix(reply, "ERR") {
			t.Fatalf("%q: got %q, want ERR at REGISTER", cmd, reply)
		}
	}
	tc.mustOK(crashQueryCmd) // q1, the healthy control
	for i := 0; i < 5; i++ {
		tc.mustOK(crashInsertCmd(i))
	}
	crash(s)
	tc.c.Close()

	// Recovery replays the WAL; a journaled-but-invalid statement would
	// fail the boot. The healthy query must be back, the rejected ones
	// absent.
	s2, addr2 := startDurableServer(t, durableConfig(dir, 1, 1024))
	defer s2.Close()
	tc2 := dialServer(t, addr2)
	defer tc2.c.Close()
	tc2.mustOK("ATTACH q1")
	tc2.mustOK("EXPLAIN q1")
	for _, id := range []string{"bad1", "bad2", "bad3"} {
		if reply, _ := tc2.cmd("EXPLAIN " + id); !strings.HasPrefix(reply, "ERR") {
			t.Fatalf("rejected statement %s resurfaced after recovery: %q", id, reply)
		}
	}
	tc2.mustOK(crashInsertCmd(5))
}
