package server

import (
	"bufio"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
)

// Native fuzz targets for the protocol surface: the field-spec parser, the
// stream-definition parser, and full command dispatch. All three must never
// panic on arbitrary input, and values that parse must survive a
// format→parse round trip.
//
// Run with: make fuzz   (or go test -fuzz=FuzzParseFieldSpec ./internal/server)

// FuzzParseFieldSpec checks that any input yields a field or an error, and
// that parseable fields round-trip through FormatFieldSpec with identical
// distribution moments and sample size.
func FuzzParseFieldSpec(f *testing.F) {
	seeds := []string{
		"12.5",
		"-3e8",
		"N(10,4,25)",
		"N(-1.5,0.25,3)",
		"S(1;2;3;4)",
		"S(97.5;96;103.2)",
		"H(0,1,2|3,4)",
		"H(-5,0,5,10|1,2,3)",
		`J{"dist":{"kind":"normal","mu":1,"sigma2":2},"n":7}`,
		"N(,,)",
		"H(|)",
		"S()",
		"NaN",
		"Inf",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		fld, err := ParseFieldSpec(spec)
		if err != nil {
			return
		}
		if fld.Dist == nil {
			t.Fatalf("ParseFieldSpec(%q) returned nil distribution without error", spec)
		}
		rendered := FormatFieldSpec(fld)
		if strings.ContainsAny(rendered, " \n") {
			t.Fatalf("FormatFieldSpec(%q) = %q contains whitespace (breaks the line protocol)", spec, rendered)
		}
		back, err := ParseFieldSpec(rendered)
		if err != nil {
			t.Fatalf("round trip of %q failed: rendered %q: %v", spec, rendered, err)
		}
		if back.N != fld.N {
			t.Fatalf("round trip of %q changed n: %d → %d (via %q)", spec, fld.N, back.N, rendered)
		}
		if m1, m2 := fld.Dist.Mean(), back.Dist.Mean(); !floatEqualOrBothNaN(m1, m2) {
			t.Fatalf("round trip of %q changed mean: %v → %v (via %q)", spec, m1, m2, rendered)
		}
		if v1, v2 := fld.Dist.Variance(), back.Dist.Variance(); !floatEqualOrBothNaN(v1, v2) {
			t.Fatalf("round trip of %q changed variance: %v → %v (via %q)", spec, v1, v2, rendered)
		}
	})
}

func floatEqualOrBothNaN(a, b float64) bool {
	return a == b || (a != a && b != b)
}

// FuzzParseStreamDef checks the STREAM column-definition parser: any
// name/spec input must produce a schema or an error without panicking, and
// accepted schemas must have one column per spec.
func FuzzParseStreamDef(f *testing.F) {
	f.Add("readings", "sensor", "temp:dist")
	f.Add("t", "a:det", "b:prob")
	f.Add("s", "x", "x")
	f.Add("", "col", "col2:dist")
	f.Add("s", "a:bogus", "b")
	f.Add("ストリーム", "温度:dist", "場所")
	f.Fuzz(func(t *testing.T, name, spec1, spec2 string) {
		schema, err := ParseStreamDef(name, []string{spec1, spec2})
		if err != nil {
			return
		}
		if schema.Arity() != 2 {
			t.Fatalf("ParseStreamDef(%q, %q, %q) accepted with arity %d, want 2",
				name, spec1, spec2, schema.Arity())
		}
	})
}

// FuzzProtocolDispatch drives full command lines through a live server's
// dispatcher (writes discarded): no input may panic or corrupt the engine.
// A fixed prelude registers a stream and a query so INSERT/STATS/METRICS
// lines can reach the deeper code paths.
func FuzzProtocolDispatch(f *testing.F) {
	seeds := []string{
		"PING",
		"STREAM s2 a b:dist",
		"QUERY q2 SELECT v FROM readings",
		"INSERT readings 1 N(10,4,25)",
		"INSERT readings 2 S(1;2;3)",
		"STATS q1",
		"METRICS",
		"METRICS q1",
		"EXPLAIN q1",
		"ATTACH q1",
		"CLOSE q1",
		"BOGUS command",
		"INSERT readings",
		"QUERY",
		"STREAM",
		"INSERT readings N(,,) 7",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n\r") {
			return // the transport delivers single lines by construction
		}
		eng, err := core.NewEngine(core.Config{Seed: 1, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(eng, nil)
		if err != nil {
			t.Fatal(err)
		}
		c := &conn{id: 1, w: bufio.NewWriter(io.Discard)}
		// Prelude mirrors the seed corpus's assumptions.
		if _, err := s.dispatch(c, "STREAM readings k v:dist"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.dispatch(c, "QUERY q1 SELECT v FROM readings WHERE v > 0"); err != nil {
			t.Fatal(err)
		}
		quit, _ := s.dispatch(c, line)
		if quit && !strings.EqualFold(strings.TrimSpace(line), "QUIT") &&
			!strings.HasPrefix(strings.ToUpper(strings.TrimSpace(line)), "QUIT ") {
			t.Fatalf("dispatch(%q) requested quit", line)
		}
		// The engine must stay usable after arbitrary input.
		if _, err := s.dispatch(c, "INSERT readings 1 N(10,4,25)"); err != nil {
			t.Fatalf("engine unusable after dispatch(%q): %v", line, err)
		}
	})
}
