package server

import (
	"bufio"
	"errors"
	"io"
)

// maxLineBytes caps one protocol line, requests and replies alike.
const maxLineBytes = 16 << 20

var errLineTooLong = errors.New("protocol line exceeds 16MiB")

// readLine reads one newline-terminated line, stripping the terminator (and
// a trailing \r). A fragment not followed by its newline — the peer or the
// link died mid-line — returns io.ErrUnexpectedEOF rather than the
// fragment: a torn request must never execute (a truncated INSERTBATCH can
// parse as a valid, shorter batch) and a torn reply must never parse as an
// answer.
func readLine(r *bufio.Reader, max int) (string, error) {
	var buf []byte
	for {
		frag, err := r.ReadSlice('\n')
		buf = append(buf, frag...)
		switch err {
		case nil:
			line := buf[:len(buf)-1]
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
			return string(line), nil
		case bufio.ErrBufferFull:
			if max > 0 && len(buf) > max {
				return "", errLineTooLong
			}
		case io.EOF:
			if len(buf) > 0 {
				return "", io.ErrUnexpectedEOF
			}
			return "", io.EOF
		default:
			return "", err
		}
	}
}
