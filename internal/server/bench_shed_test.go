package server

// BenchmarkOverloadShed (ISSUE 5 acceptance): a bootstrap-accuracy server
// is driven flat out with an accuracy budget (800 resamples) far past the
// controller's latency target — a sustained overload. With the controller
// off, every push pays the full budget. With it on, the observed p99
// crosses the target within a few intervals, the degrade level climbs, and
// each level halves the resample budget: per-tuple cost drops while the
// emitted confidence intervals widen honestly (Method "bootstrap-shed";
// see TestShedWidensIntervals). Recovery back to level 0 after the load
// stops is asserted by TestShedControllerDegradesAndRecovers.
//
// Reported metrics: p99_push_us is the interval p99 of the engine's push
// histogram over the timed region; degrade_level is the level reached by
// the controller ("0" with shed=off).

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

func BenchmarkOverloadShed(b *testing.B) {
	for _, mode := range []struct {
		name string
		shed bool
	}{{"shed=off", false}, {"shed=on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng, err := core.NewEngine(core.Config{
				Method:             core.AccuracyBootstrap,
				Seed:               5,
				BootstrapResamples: 800,
			})
			if err != nil {
				b.Fatal(err)
			}
			srv, err := New(eng, nil)
			if err != nil {
				b.Fatal(err)
			}
			srv.SetOptions(Options{Shed: ShedConfig{
				Enabled:      mode.shed,
				Interval:     5 * time.Millisecond,
				TargetP99:    200 * time.Microsecond,
				MinEvals:     4,
				RecoverAfter: 1 << 20, // hold the degraded level for the whole run
			}})
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve()
			defer srv.Close()
			tc := dialServer(b, addr.String())
			defer tc.c.Close()
			tc.mustOK(crashStreamCmd)
			tc.mustOK("QUERY q1 SELECT AVG(val) FROM temps WINDOW 8 ROWS")

			prev := pushLatency().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.mustOK(fmt.Sprintf("INSERT temps %d N(%d.5,2.25,%d)", i, 10+i%50, 20+i%30))
			}
			b.StopTimer()
			cur := pushLatency().Snapshot()
			if _, p99 := intervalP99(prev, cur); p99 > 0 {
				b.ReportMetric(float64(p99)/float64(time.Microsecond), "p99_push_us")
			}
			b.ReportMetric(float64(eng.DegradeLevel()), "degrade_level")
		})
	}
}
