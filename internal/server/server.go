package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/randvar"
	"repro/internal/wal"
)

// Server hosts one Engine over TCP. Safe for concurrent connections.
//
// Ingest is sharded: INSERT/INSERTBATCH go through core.Engine.IngestBatch,
// which serializes per stream-shard group rather than globally, so clients
// feeding different streams push tuples in parallel. Control-plane commands
// (STREAM, QUERY, CLOSE, disconnect-driven drops, checkpoints) quiesce the
// engine with Engine.Exclusive and then take s.mu, which guards the query
// registry and connection table. Lock order is therefore
// Exclusive (ctl + all shards) → s.mu; no path takes engine locks while
// holding s.mu.
//
// With durability enabled (see NewDurable), every state-changing command is
// journaled: ingest journals inside the engine's sequencing critical
// section (the commit hook of IngestBatch), so WAL order provably equals
// engine sequence order even with concurrent writers, and replay is
// deterministic. Under fsync=always the WAL uses group commit — the append
// happens inside the critical section, the fsync wait outside it — so
// concurrent committers and whole batches share fsyncs.
type Server struct {
	engine *core.Engine
	logger *log.Logger

	opts  Options      // robustness limits; set before Serve
	dedup *dedupWindow // idempotent-request window (see dedup.go)

	// readOnly rejects state-changing commands (replication follower mode);
	// atomic so failover promotion can flip it while connections are live.
	readOnly atomic.Bool
	// repl is a connection-less *conn lending its delivery scratch to
	// ApplyReplicated, which runs on the single follower apply goroutine.
	repl conn

	mu       sync.Mutex
	ln       net.Listener
	queries  map[string]*registeredQuery
	conns    map[uint64]net.Conn
	closed   bool
	connWG   sync.WaitGroup
	nextConn uint64
	shed     *shedController

	// Durability (nil wal pointer disables). wal is an atomic pointer so
	// the ingest commit hook — which runs under engine shard locks, never
	// s.mu — can journal without inverting the lock order. sinceCk counts
	// WAL records since the last checkpoint; ck/ckEvery are set once
	// before Serve and read-only afterwards.
	wal     atomic.Pointer[wal.Log]
	ck      *checkpoint.Manager
	ckEvery int
	sinceCk atomic.Int64

	// Replication-epoch (fencing) state; see epoch.go. epoch is the
	// current term (1 until a failover bumps it); fenced marks a deposed
	// primary that must reject writes with the stale-epoch sentinel.
	// epochMu guards epochHist, the known term transitions.
	epoch     atomic.Uint64
	fenced    atomic.Bool
	epochMu   sync.Mutex
	epochHist []checkpoint.EpochBound

	// roleFollowers/roleLag are injected by the cluster layer so ROLE can
	// report follower count and replication lag without the server package
	// importing cluster state.
	roleFollowers atomic.Pointer[func() int]
	roleLag       atomic.Pointer[func() int64]
	roleRepl      atomic.Pointer[func() string]
}

type registeredQuery struct {
	id      string
	sqlText string
	query   *core.Query
	// owner is the connection results are delivered to; nil for detached
	// queries (recovered after a crash, until a client ATTACHes).
	owner *conn
	// subs are additional connections that SUBSCRIBEd to this query's DATA
	// lines; every recipient shares the single rendered frame. Invariant:
	// owner never appears in subs (ATTACH and SUBSCRIBE maintain it).
	subs []*conn
}

// New returns a server over the given engine. logger may be nil (logging
// disabled). Durability is off; use NewDurable to honor Config.DataDir.
func New(engine *core.Engine, logger *log.Logger) (*Server, error) {
	if engine == nil {
		return nil, errors.New("server: nil engine")
	}
	opts := Options{}.Normalize()
	srv := &Server{
		engine:  engine,
		logger:  logger,
		opts:    opts,
		dedup:   newDedupWindow(opts.DedupWindow),
		queries: make(map[string]*registeredQuery),
		conns:   make(map[uint64]net.Conn),
	}
	srv.epoch.Store(1)
	return srv, nil
}

// Listen binds addr (e.g. "127.0.0.1:7433"; port 0 picks a free port) and
// returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections until Close. Call after Listen. Transient
// Accept failures (FD exhaustion, ECONNABORTED, ...) are retried with
// capped exponential backoff instead of killing the accept loop; only a
// closed listener ends it.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	s.startShed()
	var backoff time.Duration
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			mAcceptRetries.Inc()
			s.logf("accept: %v; retrying in %v", err, backoff)
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handle(c)
		}()
	}
}

// Close stops accepting, closes the listener, waits for connections to
// finish, and finalizes durability (final checkpoint, WAL sync+close).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.connWG.Wait()
	s.stopShed()
	if derr := s.finalizeDurable(); err == nil {
		err = derr
	}
	return err
}

// Shutdown is the graceful-stop used on SIGINT/SIGTERM: it stops
// accepting, then drains — existing connections get up to
// Options.DrainTimeout to finish and disconnect on their own before being
// force-closed (in-flight commands always finish; command dispatch is
// synchronous). It then writes a final checkpoint and fsyncs and closes the
// WAL.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	drained := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(drained)
	}()
	if s.opts.DrainTimeout > 0 {
		select {
		case <-drained:
		case <-time.After(s.opts.DrainTimeout):
			s.logf("shutdown: drain timeout after %v, closing %d connections",
				s.opts.DrainTimeout, len(s.conns))
		}
	}
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for _, nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	for _, nc := range conns {
		nc.Close()
	}
	<-drained
	s.stopShed()
	if derr := s.finalizeDurable(); err == nil {
		err = derr
	}
	return err
}

// Detach stops the server WITHOUT the shutdown checkpoint: listener and
// connections close immediately, then the WAL is synced and closed as-is.
// The fenced-rejoin path needs this — a shutdown checkpoint here would
// capture the diverged suffix at the WAL tail and prune the records below
// it that re-recovery at the truncation point depends on. On-disk state is
// left exactly as the last durable append and checkpoint wrote it.
func (s *Server) Detach() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for _, nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	s.connWG.Wait()
	s.stopShed()
	w := s.wal.Swap(nil)
	if w == nil {
		return err
	}
	if serr := w.Sync(); err == nil {
		err = serr
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// conn is one client connection. Writes are serialized by wmu because the
// handler goroutine (command responses), the outbox drainer (cross-conn
// DATA pushes), and — with the outbox disabled — insert paths of other
// connections all write.
type conn struct {
	id           uint64
	c            net.Conn
	writeTimeout time.Duration
	wmu          sync.Mutex
	w            *bufio.Writer

	// outbox buffers rendered DATA frames produced by OTHER connections'
	// inserts; a dedicated goroutine drains it so a slow subscriber never
	// blocks the inserting connection. nil when Options.OutboxLines < 0
	// (cross-conn delivery then writes synchronously, pre-hardening
	// behavior). Every frame handed to the outbox carries one reference
	// owned by the conn, released after the write (or on drop/drain).
	outbox     chan *frame
	outboxStop chan struct{}
	outboxDone chan struct{}
	dead       atomic.Bool // outbox overflow or write failure; conn is being torn down

	// deliv is the handler-goroutine-local delivery scratch reused across
	// ingests, keeping the steady-state push path allocation-free.
	deliv []delivery
}

func (c *conn) writeLine(line string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.writeTimeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	if _, err := c.w.WriteString(line); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	return c.w.Flush()
}

// writeFrame writes a rendered frame buffer plus newline. The caller keeps
// its frame reference across the call and releases afterwards.
func (c *conn) writeFrame(buf []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.writeTimeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	if _, err := c.w.Write(buf); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	return c.w.Flush()
}

// queueFrame hands one cross-connection DATA frame to the conn, consuming
// the caller's reference on every path (written, queued, or dropped). With
// the outbox enabled the call never blocks: overflow means the subscriber
// is not keeping up, and the conn is disconnected rather than letting its
// backlog stall ingest. Reports whether the frame was delivered or queued.
func (c *conn) queueFrame(f *frame) bool {
	if c.outbox == nil {
		err := c.writeFrame(f.buf)
		f.release()
		if err != nil {
			return false
		}
		mDataLines.Inc()
		return true
	}
	if c.dead.Load() {
		f.release()
		return false
	}
	select {
	case c.outbox <- f:
		return true
	default:
		f.release()
		if c.dead.CompareAndSwap(false, true) {
			mSlowClientDrops.Inc()
			c.c.Close() // unblocks the handler's read loop; cleanup follows
		}
		return false
	}
}

// outboxLoop drains queued DATA frames until the handler exits. On a write
// failure the conn is marked dead and closed; the loop keeps consuming (and
// releasing) so queueFrame never wedges.
func (c *conn) outboxLoop() {
	defer close(c.outboxDone)
	for {
		select {
		case f := <-c.outbox:
			if c.dead.Load() {
				f.release()
				continue
			}
			err := c.writeFrame(f.buf)
			f.release()
			if err != nil {
				if c.dead.CompareAndSwap(false, true) {
					c.c.Close()
				}
				continue
			}
			mDataLines.Inc()
		case <-c.outboxStop:
			return
		}
	}
}

func (c *conn) stopOutbox() {
	if c.outbox == nil {
		return
	}
	close(c.outboxStop)
	<-c.outboxDone
	// Release any frames still queued; late queueFrame racers that slip in
	// after this drain keep their own reference accounting (the frame is
	// simply never pooled — garbage collected instead), so no frame is
	// ever double-released.
	for {
		select {
		case f := <-c.outbox:
			f.release()
		default:
			return
		}
	}
}

func (s *Server) handle(nc net.Conn) {
	// Registered first so it runs last: the registry/outbox cleanup defers
	// below still execute while a panic unwinds, and only this connection
	// dies — the server keeps serving everyone else.
	defer func() {
		if r := recover(); r != nil {
			mConnPanics.Inc()
			s.logf("conn from %s: panic: %v\n%s", nc.RemoteAddr(), r, debug.Stack())
		}
	}()
	defer nc.Close()
	s.mu.Lock()
	if s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns {
		limit := s.opts.MaxConns
		s.mu.Unlock()
		mConnsRejected.Inc()
		s.logf("conn from %s: rejected, at connection limit (%d)", nc.RemoteAddr(), limit)
		if s.opts.WriteTimeout > 0 {
			nc.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		fmt.Fprintf(nc, "ERR server at connection limit (%d)\n", limit)
		return
	}
	s.nextConn++
	c := &conn{id: s.nextConn, c: nc, w: bufio.NewWriter(nc), writeTimeout: s.opts.WriteTimeout}
	if s.opts.OutboxLines > 0 {
		c.outbox = make(chan *frame, s.opts.OutboxLines)
		c.outboxStop = make(chan struct{})
		c.outboxDone = make(chan struct{})
		go c.outboxLoop()
	}
	s.conns[c.id] = nc
	s.mu.Unlock()
	mConnsOpened.Inc()
	gConnsActive.Inc()
	s.logf("conn %d: open from %s", c.id, nc.RemoteAddr())
	defer func() {
		s.dropConnQueries(c)
		s.mu.Lock()
		delete(s.conns, c.id)
		s.mu.Unlock()
		c.stopOutbox()
		gConnsActive.Dec()
	}()
	r := bufio.NewReaderSize(nc, 64*1024)
	var readErr error
	for {
		if s.opts.IdleTimeout > 0 {
			nc.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		raw, err := readLine(r, maxLineBytes)
		if err != nil {
			readErr = err
			break
		}
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		quit, err := s.dispatch(c, line)
		if err != nil {
			mCmdErrs.Inc()
			if werr := c.writeLine("ERR " + err.Error()); werr != nil {
				s.logf("conn %d: write: %v", c.id, werr)
				return
			}
			continue
		}
		if quit {
			return
		}
	}
	if readErr != nil && readErr != io.EOF {
		var ne net.Error
		if errors.As(readErr, &ne) && ne.Timeout() {
			mIdleTimeouts.Inc()
			s.logf("conn %d: idle timeout", c.id)
			return
		}
		s.logf("conn %d: read: %v", c.id, readErr)
		return
	}
	s.logf("conn %d: closed", c.id)
}

// testHookDispatch, when non-nil, runs at the top of every dispatch; the
// chaos suite uses it to inject handler panics.
var testHookDispatch func(verb string)

// dispatch executes one request line; returns quit=true for QUIT.
func (s *Server) dispatch(c *conn, line string) (bool, error) {
	cmd := line
	rest := ""
	if idx := strings.IndexByte(line, ' '); idx >= 0 {
		cmd, rest = line[:idx], strings.TrimSpace(line[idx+1:])
	}
	verb := strings.ToUpper(cmd)
	if testHookDispatch != nil {
		testHookDispatch(verb)
	}
	countCmd(verb)
	defer timeCmd(time.Now())
	// A fenced node is a deposed primary: a newer epoch exists, so any
	// write accepted here would diverge from the cluster's history. The
	// sentinel is distinct from the read-only one — clients retry both, but
	// operators must be able to tell "replica by design" from "superseded".
	if s.fenced.Load() {
		switch verb {
		case "STREAM", "QUERY", "INSERT", "INSERTBATCH", "CLOSE":
			if FencedRejectHook != nil {
				FencedRejectHook()
			}
			return false, errFencedStaleEpoch
		}
	}
	if s.readOnly.Load() {
		switch verb {
		case "STREAM", "QUERY", "INSERT", "INSERTBATCH", "CLOSE":
			return false, errReadOnlyReplica
		}
	}
	switch verb {
	case "PING":
		return false, c.writeLine("OK pong")
	case "QUIT":
		_ = c.writeLine("OK bye")
		return true, nil
	case "STREAM":
		return false, s.cmdStream(c, rest)
	case "QUERY":
		return false, s.cmdQuery(c, rest)
	case "INSERT":
		return false, s.cmdInsert(c, rest)
	case "INSERTBATCH":
		return false, s.cmdInsertBatch(c, rest)
	case "STATS":
		return false, s.cmdStats(c, rest)
	case "METRICS":
		return false, s.cmdMetrics(c, rest)
	case "EXPLAIN":
		return false, s.cmdExplain(c, rest)
	case "ATTACH":
		return false, s.cmdAttach(c, rest)
	case "SUBSCRIBE":
		return false, s.cmdSubscribe(c, rest)
	case "CLOSE":
		return false, s.cmdClose(c, rest)
	case "SHED":
		return false, s.cmdShed(c, rest)
	case "ROLE":
		return false, s.cmdRole(c, rest)
	}
	return false, fmt.Errorf("unknown command %q", cmd)
}

// applyStream registers a stream from a STREAM command payload. Caller
// holds Exclusive (or is the single-threaded replay loop).
func (s *Server) applyStream(rest string) (string, error) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", errors.New("usage: STREAM <name> <col>[:dist] ...")
	}
	schema, err := ParseStreamDef(fields[0], fields[1:])
	if err != nil {
		return "", err
	}
	if err := s.engine.RegisterStream(schema); err != nil {
		return "", err
	}
	s.logf("stream %s registered (%d columns)", schema.Name, schema.Arity())
	return schema.Name, nil
}

func (s *Server) cmdStream(c *conn, rest string) error {
	release := s.engine.Exclusive()
	name, err := s.applyStream(rest)
	var lsn uint64
	if err == nil {
		lsn, err = s.journal(wal.RecStream, rest)
	}
	release()
	if err != nil {
		return err
	}
	if err := s.waitDurable(lsn); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return c.writeLine("OK stream " + name)
}

// applyQueryLocked compiles, binds, and registers a query. The
// duplicate-id check runs before compilation so a rejected registration
// consumes no engine sequence number (WAL replay must see identical seq
// evolution). Caller holds s.mu plus Exclusive (or is the single-threaded
// replay loop).
func (s *Server) applyQueryLocked(id, sqlText string, owner *conn) error {
	if id == "" || sqlText == "" {
		return errors.New("usage: QUERY <id> <sql>")
	}
	if _, dup := s.queries[id]; dup {
		return fmt.Errorf("query id %q already in use", id)
	}
	q, err := s.engine.Compile(sqlText)
	if err != nil {
		return err
	}
	if err := s.engine.Bind(id, q); err != nil {
		return err
	}
	s.queries[id] = &registeredQuery{id: id, sqlText: sqlText, query: q, owner: owner}
	s.logf("query %s registered: %s", id, sqlText)
	return nil
}

func (s *Server) cmdQuery(c *conn, rest string) error {
	idx := strings.IndexByte(rest, ' ')
	if idx < 0 {
		return errors.New("usage: QUERY <id> <sql>")
	}
	id, sqlText := rest[:idx], strings.TrimSpace(rest[idx+1:])
	release := s.engine.Exclusive()
	s.mu.Lock()
	err := s.applyQueryLocked(id, sqlText, c)
	var lsn uint64
	if err == nil {
		lsn, err = s.journal(wal.RecQuery, id+" "+sqlText)
	}
	s.mu.Unlock()
	release()
	if err != nil {
		return err
	}
	if err := s.waitDurable(lsn); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return c.writeLine("OK query " + id)
}

// parseInsertRows parses an ingest payload: "<stream> <field> ..." for a
// single tuple, or — with batch set — "<stream> <field> ... | <field> ..."
// where "|" separates tuples. Field specs never contain spaces or bare
// "|", so the framing is unambiguous.
func parseInsertRows(rest string, batch bool) (string, []core.IngestRow, error) {
	usage := "usage: INSERT <stream> <field> ..."
	if batch {
		usage = "usage: INSERTBATCH <stream> <field> ... [| <field> ...]"
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", nil, errors.New(usage)
	}
	streamName := fields[0]
	var rows []core.IngestRow
	cur := make([]randvar.Field, 0, len(fields)-1)
	for _, tok := range fields[1:] {
		if batch && tok == "|" {
			if len(cur) == 0 {
				return "", nil, errors.New("empty tuple in batch")
			}
			rows = append(rows, core.IngestRow{Fields: cur})
			cur = make([]randvar.Field, 0, cap(cur))
			continue
		}
		f, err := ParseFieldSpec(tok)
		if err != nil {
			return "", nil, err
		}
		cur = append(cur, f)
	}
	if len(cur) == 0 {
		return "", nil, errors.New("empty tuple in batch")
	}
	rows = append(rows, core.IngestRow{Fields: cur})
	return streamName, rows, nil
}

// ingest applies a parsed batch through the engine, journaling the raw
// payload inside the engine's sequencing critical section (so WAL order
// equals engine sequence order). A journal failure aborts the batch with
// the engine untouched. The returned lsn is 0 when journaling is off.
func (s *Server) ingest(typ wal.RecordType, payload, streamName string, rows []core.IngestRow) ([]core.QueryResults, uint64, error) {
	var lsn uint64
	commit := func() error {
		var err error
		lsn, err = s.journal(typ, payload)
		return err
	}
	results, err := s.engine.IngestBatch(streamName, rows, commit)
	return results, lsn, err
}

// delivery is one planned DATA frame bound for a connection. The frame is
// shared across recipients; each delivery owns one of its references.
type delivery struct {
	target *conn
	f      *frame
}

// planDeliveries routes engine results to their recipients under s.mu
// (owner/subscriber lookup); writing happens later in sendDeliveries,
// outside the lock and after the WAL fsync. Each DATA line is rendered
// exactly once into a pooled frame whose reference count equals the number
// of recipients. emitted counts results produced (delivered or discarded
// for recipient-less queries); the error aggregates per-query push
// failures, sorted for deterministic messages. items reuses the inserting
// conn's scratch slice.
func (s *Server) planDeliveries(c *conn, results []core.QueryResults) (int, []delivery, error) {
	var (
		items    = c.deliv[:0]
		pushErrs []string
		emitted  int
	)
	s.mu.Lock()
	for _, qr := range results {
		if qr.Err != nil {
			pushErrs = append(pushErrs, fmt.Sprintf("query %s: %v", qr.ID, qr.Err))
		}
		rq := s.queries[qr.ID]
		var targets int
		if rq != nil {
			targets = len(rq.subs)
			if rq.owner != nil {
				targets++
			}
		}
		for _, r := range qr.Results {
			if targets == 0 {
				emitted++
				continue
			}
			f := newFrame()
			var rerr error
			if f.buf, rerr = appendDataLine(f.buf, qr.ID, r); rerr != nil {
				pushErrs = append(pushErrs, fmt.Sprintf("query %s: %v", qr.ID, rerr))
				f.release()
				continue
			}
			f.refs.Store(int32(targets))
			if rq.owner != nil {
				items = append(items, delivery{rq.owner, f})
			}
			for _, sub := range rq.subs {
				items = append(items, delivery{sub, f})
			}
			emitted++
		}
	}
	s.mu.Unlock()
	c.deliv = items
	if len(pushErrs) > 0 {
		sort.Strings(pushErrs)
		return emitted, items, errors.New(strings.Join(pushErrs, "; "))
	}
	return emitted, items, nil
}

// sendDeliveries writes planned DATA frames. Frames for the inserting
// connection itself stay synchronous — same-connection clients observe
// DATA before the command's OK, a protocol invariant — while frames for
// other connections go through their bounded outboxes so one slow
// subscriber cannot stall this insert. Every delivery's frame reference is
// consumed here or inside queueFrame.
func (s *Server) sendDeliveries(from *conn, items []delivery) {
	for _, it := range items {
		if it.target == from {
			err := from.writeFrame(it.f.buf)
			it.f.release()
			if err != nil {
				s.logf("deliver: %v", err)
				continue
			}
			mDataLines.Inc()
			continue
		}
		if !it.target.queueFrame(it.f) {
			s.logf("deliver: conn %d dropped (slow or closed)", it.target.id)
		}
	}
	// Drop frame pointers so the scratch slice doesn't pin released frames
	// until the next ingest.
	clear(items)
}

// ingestReply formats the reply line both live execution and WAL replay
// compute for an ingest — replay must reproduce it bit-identically to
// rebuild the idempotency window (see dedup.go).
func ingestReply(batch bool, tuples, emitted int, pushErr error) string {
	if pushErr != nil {
		return "ERR " + pushErr.Error()
	}
	buf := make([]byte, 0, 48)
	if batch {
		buf = append(buf, "OK inserted tuples="...)
		buf = strconv.AppendInt(buf, int64(tuples), 10)
		buf = append(buf, " results="...)
	} else {
		buf = append(buf, "OK inserted results="...)
	}
	buf = strconv.AppendInt(buf, int64(emitted), 10)
	return string(buf)
}

func (s *Server) cmdInsert(c *conn, rest string) error {
	return s.cmdIngest(c, rest, false)
}

func (s *Server) cmdInsertBatch(c *conn, rest string) error {
	return s.cmdIngest(c, rest, true)
}

// cmdIngest executes INSERT/INSERTBATCH. A trailing "@<id>" token makes the
// request idempotent: the dedup window replays the original reply instead
// of re-applying, and because the token is journaled inside the payload,
// the window survives crash recovery (a retry that straddles a crash still
// applies exactly once).
func (s *Server) cmdIngest(c *conn, rest string, batch bool) error {
	payload, reqID := splitReqID(rest)
	if reqID != "" {
		if e, ok := s.dedup.get(reqID); ok {
			mDedupHits.Inc()
			// The original attempt applied and journaled; re-wait its
			// durability (it may have failed between append and fsync) and
			// replay its reply without touching the engine.
			if err := s.waitDurable(e.lsn); err != nil {
				return err
			}
			if msg, ok := strings.CutPrefix(e.reply, "ERR "); ok {
				return errors.New(msg)
			}
			return c.writeLine(e.reply)
		}
	}
	streamName, rows, err := parseInsertRows(payload, batch)
	if err != nil {
		return err
	}
	typ := wal.RecInsert
	if batch {
		typ = wal.RecInsertBatch
	}
	// The journaled payload keeps the @<id> token so replay re-registers
	// the dedup entry at the same LSN.
	results, lsn, err := s.ingest(typ, rest, streamName, rows)
	if err != nil {
		// Pre-apply failure: engine untouched, nothing journaled, so a
		// retry may (and must) re-execute — no dedup entry.
		return err
	}
	emitted, items, pushErr := s.planDeliveries(c, results)
	reply := ingestReply(batch, len(rows), emitted, pushErr)
	if reqID != "" {
		// Registered before the fsync wait: if waitDurable fails the record
		// is still in the log and applied, and the retry must not
		// double-apply — it hits this entry and re-waits durability.
		s.dedup.put(reqID, dedupEntry{reply: reply, lsn: lsn})
	}
	// Durable before externalized: the fsync wait runs outside the shard
	// locks (group commit), and DATA lines go out only after it.
	if err := s.waitDurable(lsn); err != nil {
		return err
	}
	s.sendDeliveries(c, items)
	s.maybeCheckpoint()
	if pushErr != nil {
		return pushErr
	}
	return c.writeLine(reply)
}

// cmdShed reports (bare SHED) or forces (SHED <level>) the degrade level.
// Forced transitions go through the same journaled path the controller
// uses, so operator intervention is as crash-safe as automatic shedding.
func (s *Server) cmdShed(c *conn, rest string) error {
	arg := strings.TrimSpace(rest)
	if arg == "" {
		return c.writeLine(fmt.Sprintf("OK shed level=%d", s.engine.DegradeLevel()))
	}
	if s.fenced.Load() {
		if FencedRejectHook != nil {
			FencedRejectHook()
		}
		return errFencedStaleEpoch
	}
	if s.readOnly.Load() {
		return errReadOnlyReplica
	}
	level, err := strconv.Atoi(arg)
	if err != nil {
		return fmt.Errorf("usage: SHED [level 0..%d]", core.MaxDegradeLevel)
	}
	if level < 0 || level > core.MaxDegradeLevel {
		return fmt.Errorf("shed level %d out of range 0..%d", level, core.MaxDegradeLevel)
	}
	if err := s.setShedLevel(level); err != nil {
		return err
	}
	return c.writeLine(fmt.Sprintf("OK shed level=%d", level))
}

func (s *Server) cmdStats(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	rq, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	st := rq.query.Stats()
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return c.writeLine("OK " + string(payload))
}

// cmdExplain returns the compiled plan as a quoted string (the protocol is
// line-based; clients unquote to recover the multi-line plan). The plan text
// is deterministic; `EXPLAIN <id> TIMING` instead returns per-stage
// wall-clock counters (enabling collection on first use), which are an
// operator tool and inherently non-deterministic.
func (s *Server) cmdExplain(c *conn, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 || (len(fields) == 2 && !strings.EqualFold(fields[1], "TIMING")) {
		return errors.New("usage: EXPLAIN <id> [TIMING]")
	}
	id := fields[0]
	s.mu.Lock()
	rq, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	if len(fields) == 2 {
		return c.writeLine("OK " + strconv.Quote(rq.query.ExplainTiming()))
	}
	return c.writeLine("OK " + strconv.Quote(rq.query.Explain()))
}

// cmdAttach takes delivery ownership of a detached query — one recovered
// from a checkpoint/WAL after a crash, whose results would otherwise be
// computed but not delivered. Ownership is transport state, not engine
// state, so ATTACH is not journaled.
func (s *Server) cmdAttach(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	defer s.mu.Unlock()
	rq, ok := s.queries[id]
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	if rq.owner != nil && rq.owner != c {
		return fmt.Errorf("query %q is owned by another connection", id)
	}
	rq.owner = c
	// A connection is either owner or subscriber, never both; promote.
	for i, sub := range rq.subs {
		if sub == c {
			rq.subs = append(rq.subs[:i], rq.subs[i+1:]...)
			break
		}
	}
	return c.writeLine("OK attached " + id)
}

// cmdSubscribe adds this connection as an additional DATA recipient for a
// query it does not own. Like ATTACH, subscription is transport state and
// is not journaled. Subscribing is idempotent, and a no-op for the owner.
func (s *Server) cmdSubscribe(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	defer s.mu.Unlock()
	rq, ok := s.queries[id]
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	if rq.owner != c {
		found := false
		for _, sub := range rq.subs {
			if sub == c {
				found = true
				break
			}
		}
		if !found {
			rq.subs = append(rq.subs, c)
		}
	}
	return c.writeLine("OK subscribed " + id)
}

// applyCloseLocked drops a query from the registry and its engine shards.
// Caller holds s.mu plus Exclusive (or is the single-threaded replay loop).
func (s *Server) applyCloseLocked(id string) error {
	if _, ok := s.queries[id]; !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	delete(s.queries, id)
	s.engine.Unbind(id)
	return nil
}

func (s *Server) cmdClose(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	release := s.engine.Exclusive()
	s.mu.Lock()
	err := s.applyCloseLocked(id)
	var lsn uint64
	if err == nil {
		lsn, err = s.journal(wal.RecClose, id)
	}
	s.mu.Unlock()
	release()
	if err != nil {
		return err
	}
	if err := s.waitDurable(lsn); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return c.writeLine("OK closed " + id)
}

// dropConnQueries removes queries owned by a departing connection,
// journaling each removal so WAL replay reproduces the registry exactly.
func (s *Server) dropConnQueries(c *conn) {
	release := s.engine.Exclusive()
	s.mu.Lock()
	var dropped []string
	for id, rq := range s.queries {
		for i, sub := range rq.subs {
			if sub == c {
				rq.subs = append(rq.subs[:i], rq.subs[i+1:]...)
				break
			}
		}
		if rq.owner == c {
			dropped = append(dropped, id)
		}
	}
	sort.Strings(dropped)
	var lastLSN uint64
	for _, id := range dropped {
		delete(s.queries, id)
		s.engine.Unbind(id)
		lsn, err := s.journal(wal.RecClose, id)
		if err != nil {
			s.logf("journal close %s: %v", id, err)
			continue
		}
		if lsn > 0 {
			lastLSN = lsn
		}
	}
	s.mu.Unlock()
	release()
	if err := s.waitDurable(lastLSN); err != nil {
		s.logf("drop queries: %v", err)
	}
	if len(dropped) > 0 {
		s.maybeCheckpoint()
	}
}
