package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/randvar"
	"repro/internal/sql"
	"repro/internal/wal"
)

// Server hosts one Engine over TCP. Safe for concurrent connections:
// stream/query registries are guarded by mu, and tuple pushes are
// serialized (the single-writer model of a stream engine).
//
// With durability enabled (see NewDurable), every state-changing command —
// STREAM, QUERY, INSERT, CLOSE, and implicit query drops on disconnect —
// is applied and journaled to the write-ahead log under the same mutex, so
// the WAL order equals the apply order and replay is deterministic.
type Server struct {
	engine *core.Engine
	logger *log.Logger

	mu       sync.Mutex
	ln       net.Listener
	queries  map[string]*registeredQuery
	conns    map[uint64]net.Conn
	closed   bool
	connWG   sync.WaitGroup
	nextConn uint64

	// Durability (nil wal disables). sinceCk counts WAL records since the
	// last checkpoint; at ckEvery a new checkpoint is captured inline.
	wal     *wal.Log
	ck      *checkpoint.Manager
	ckEvery int
	sinceCk int
}

type registeredQuery struct {
	id      string
	sqlText string
	query   *core.Query
	streams map[string]bool // lower-cased source stream names (2 for joins)
	// owner is the connection results are delivered to; nil for detached
	// queries (recovered after a crash, until a client ATTACHes).
	owner *conn
}

// New returns a server over the given engine. logger may be nil (logging
// disabled). Durability is off; use NewDurable to honor Config.DataDir.
func New(engine *core.Engine, logger *log.Logger) (*Server, error) {
	if engine == nil {
		return nil, errors.New("server: nil engine")
	}
	return &Server{
		engine:  engine,
		logger:  logger,
		queries: make(map[string]*registeredQuery),
		conns:   make(map[uint64]net.Conn),
	}, nil
}

// Listen binds addr (e.g. "127.0.0.1:7433"; port 0 picks a free port) and
// returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections until Close. Call after Listen.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handle(c)
		}()
	}
}

// Close stops accepting, closes the listener, waits for connections to
// finish, and finalizes durability (final checkpoint, WAL sync+close).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.connWG.Wait()
	if derr := s.finalizeDurable(); err == nil {
		err = derr
	}
	return err
}

// Shutdown is the graceful-stop used on SIGINT/SIGTERM: it stops
// accepting, closes every live connection (in-flight commands finish —
// command dispatch is synchronous — but idle readers unblock), drains the
// handler goroutines, writes a final checkpoint, and fsyncs and closes the
// WAL.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for _, nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	s.connWG.Wait()
	if derr := s.finalizeDurable(); err == nil {
		err = derr
	}
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// conn is one client connection. Writes are serialized by wmu because the
// handler goroutine (command responses) and insert paths of other
// connections (DATA pushes) both write.
type conn struct {
	id  uint64
	c   net.Conn
	wmu sync.Mutex
	w   *bufio.Writer
}

func (c *conn) writeLine(line string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.WriteString(line); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	return c.w.Flush()
}

func (s *Server) handle(nc net.Conn) {
	defer nc.Close()
	s.mu.Lock()
	s.nextConn++
	c := &conn{id: s.nextConn, c: nc, w: bufio.NewWriter(nc)}
	s.conns[c.id] = nc
	s.mu.Unlock()
	mConnsOpened.Inc()
	gConnsActive.Inc()
	s.logf("conn %d: open from %s", c.id, nc.RemoteAddr())
	defer func() {
		s.dropConnQueries(c)
		s.mu.Lock()
		delete(s.conns, c.id)
		s.mu.Unlock()
		gConnsActive.Dec()
	}()
	scanner := bufio.NewScanner(nc)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		quit, err := s.dispatch(c, line)
		if err != nil {
			mCmdErrs.Inc()
			if werr := c.writeLine("ERR " + err.Error()); werr != nil {
				s.logf("conn %d: write: %v", c.id, werr)
				return
			}
			continue
		}
		if quit {
			return
		}
	}
	s.logf("conn %d: closed", c.id)
}

// dispatch executes one request line; returns quit=true for QUIT.
func (s *Server) dispatch(c *conn, line string) (bool, error) {
	cmd := line
	rest := ""
	if idx := strings.IndexByte(line, ' '); idx >= 0 {
		cmd, rest = line[:idx], strings.TrimSpace(line[idx+1:])
	}
	verb := strings.ToUpper(cmd)
	countCmd(verb)
	defer timeCmd(time.Now())
	switch verb {
	case "PING":
		return false, c.writeLine("OK pong")
	case "QUIT":
		_ = c.writeLine("OK bye")
		return true, nil
	case "STREAM":
		return false, s.cmdStream(c, rest)
	case "QUERY":
		return false, s.cmdQuery(c, rest)
	case "INSERT":
		return false, s.cmdInsert(c, rest)
	case "STATS":
		return false, s.cmdStats(c, rest)
	case "METRICS":
		return false, s.cmdMetrics(c, rest)
	case "EXPLAIN":
		return false, s.cmdExplain(c, rest)
	case "ATTACH":
		return false, s.cmdAttach(c, rest)
	case "CLOSE":
		return false, s.cmdClose(c, rest)
	}
	return false, fmt.Errorf("unknown command %q", cmd)
}

// applyStreamLocked registers a stream from a STREAM command payload.
// Caller holds s.mu.
func (s *Server) applyStreamLocked(rest string) (string, error) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", errors.New("usage: STREAM <name> <col>[:dist] ...")
	}
	schema, err := ParseStreamDef(fields[0], fields[1:])
	if err != nil {
		return "", err
	}
	if err := s.engine.RegisterStream(schema); err != nil {
		return "", err
	}
	s.logf("stream %s registered (%d columns)", schema.Name, schema.Arity())
	return schema.Name, nil
}

func (s *Server) cmdStream(c *conn, rest string) error {
	s.mu.Lock()
	name, err := s.applyStreamLocked(rest)
	if err == nil {
		err = s.journalLocked(wal.RecStream, rest)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return c.writeLine("OK stream " + name)
}

// applyQueryLocked compiles and registers a query. The duplicate-id check
// runs before compilation so a rejected registration consumes no engine
// sequence number (WAL replay must see identical seq evolution). Caller
// holds s.mu.
func (s *Server) applyQueryLocked(id, sqlText string, owner *conn) error {
	if id == "" || sqlText == "" {
		return errors.New("usage: QUERY <id> <sql>")
	}
	if _, dup := s.queries[id]; dup {
		return fmt.Errorf("query id %q already in use", id)
	}
	streams, err := sourceStreams(sqlText)
	if err != nil {
		return err
	}
	q, err := s.engine.Compile(sqlText)
	if err != nil {
		return err
	}
	s.queries[id] = &registeredQuery{id: id, sqlText: sqlText, query: q, streams: streams, owner: owner}
	s.logf("query %s registered: %s", id, sqlText)
	return nil
}

func (s *Server) cmdQuery(c *conn, rest string) error {
	idx := strings.IndexByte(rest, ' ')
	if idx < 0 {
		return errors.New("usage: QUERY <id> <sql>")
	}
	id, sqlText := rest[:idx], strings.TrimSpace(rest[idx+1:])
	s.mu.Lock()
	err := s.applyQueryLocked(id, sqlText, c)
	if err == nil {
		err = s.journalLocked(wal.RecQuery, id+" "+sqlText)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return c.writeLine("OK query " + id)
}

// sourceStreams returns the lower-cased input stream names of a statement
// (one for plain queries, two for joins).
func sourceStreams(sqlText string) (map[string]bool, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{strings.ToLower(stmt.From): true}
	if stmt.Join != nil {
		out[strings.ToLower(stmt.Join.Right)] = true
	}
	return out, nil
}

// applyInsertLocked parses and pushes one tuple through every query on the
// stream. err reports failures before any state changed (bad field spec,
// unknown stream); pushErr reports per-query push failures after the tuple
// entered the engine — the push loop continues through the remaining
// queries so the applied state is independent of map iteration order,
// which WAL replay determinism requires. Deliveries are built only when
// wantDeliveries (replay discards results). Caller holds s.mu.
func (s *Server) applyInsertLocked(rest string, wantDeliveries bool) (deliveries []func() error, emitted int, pushErr, err error) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, 0, nil, errors.New("usage: INSERT <stream> <field> ...")
	}
	streamName := fields[0]
	vals := make([]randvar.Field, 0, len(fields)-1)
	for _, spec := range fields[1:] {
		f, perr := ParseFieldSpec(spec)
		if perr != nil {
			return nil, 0, nil, perr
		}
		vals = append(vals, f)
	}
	t, err := s.engine.NewTuple(streamName, vals)
	if err != nil {
		return nil, 0, nil, err
	}
	want := strings.ToLower(streamName)
	// Pushes run in query-id order so DATA delivery order (and any partial
	// effects of a failing push) are deterministic, not map-iteration order.
	ids := make([]string, 0, len(s.queries))
	for id, rq := range s.queries {
		if rq.streams[want] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	var pushErrs []string
	for _, id := range ids {
		rq := s.queries[id]
		results, perr := rq.query.Push(t)
		if perr != nil {
			pushErrs = append(pushErrs, fmt.Sprintf("query %s: %v", rq.id, perr))
			continue
		}
		if !wantDeliveries || rq.owner == nil {
			emitted += len(results)
			continue
		}
		for _, r := range results {
			payload, merr := json.Marshal(EncodeResult(r))
			if merr != nil {
				pushErrs = append(pushErrs, fmt.Sprintf("query %s: %v", rq.id, merr))
				continue
			}
			owner, qid := rq.owner, rq.id
			deliveries = append(deliveries, func() error {
				return owner.writeLine("DATA " + qid + " " + string(payload))
			})
			emitted++
		}
	}
	if len(pushErrs) > 0 {
		sort.Strings(pushErrs)
		pushErr = errors.New(strings.Join(pushErrs, "; "))
	}
	return deliveries, emitted, pushErr, nil
}

func (s *Server) cmdInsert(c *conn, rest string) error {
	s.mu.Lock()
	deliveries, emitted, pushErr, err := s.applyInsertLocked(rest, true)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	// The tuple entered the engine (and possibly some windows), so it is
	// journaled even when a query's push failed: replay reproduces the
	// same partial effects deterministically.
	jerr := s.journalLocked(wal.RecInsert, rest)
	s.mu.Unlock()
	for _, deliver := range deliveries {
		if derr := deliver(); derr != nil {
			s.logf("deliver: %v", derr)
			continue
		}
		mDataLines.Inc()
	}
	if pushErr != nil {
		return pushErr
	}
	if jerr != nil {
		return jerr
	}
	return c.writeLine(fmt.Sprintf("OK inserted results=%d", emitted))
}

func (s *Server) cmdStats(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	rq, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	st := rq.query.Stats()
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return c.writeLine("OK " + string(payload))
}

// cmdExplain returns the compiled plan as a quoted string (the protocol is
// line-based; clients unquote to recover the multi-line plan).
func (s *Server) cmdExplain(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	rq, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	return c.writeLine("OK " + strconv.Quote(rq.query.Explain()))
}

// cmdAttach takes delivery ownership of a detached query — one recovered
// from a checkpoint/WAL after a crash, whose results would otherwise be
// computed but not delivered. Ownership is transport state, not engine
// state, so ATTACH is not journaled.
func (s *Server) cmdAttach(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	defer s.mu.Unlock()
	rq, ok := s.queries[id]
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	if rq.owner != nil && rq.owner != c {
		return fmt.Errorf("query %q is owned by another connection", id)
	}
	rq.owner = c
	return c.writeLine("OK attached " + id)
}

// applyCloseLocked drops a query. Caller holds s.mu.
func (s *Server) applyCloseLocked(id string) error {
	if _, ok := s.queries[id]; !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	delete(s.queries, id)
	return nil
}

func (s *Server) cmdClose(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	err := s.applyCloseLocked(id)
	if err == nil {
		err = s.journalLocked(wal.RecClose, id)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return c.writeLine("OK closed " + id)
}

// dropConnQueries removes queries owned by a departing connection,
// journaling each removal so WAL replay reproduces the registry exactly.
func (s *Server) dropConnQueries(c *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var dropped []string
	for id, rq := range s.queries {
		if rq.owner == c {
			dropped = append(dropped, id)
		}
	}
	sort.Strings(dropped)
	for _, id := range dropped {
		delete(s.queries, id)
		if err := s.journalLocked(wal.RecClose, id); err != nil {
			s.logf("journal close %s: %v", id, err)
		}
	}
}
