package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/randvar"
	"repro/internal/sql"
)

// Server hosts one Engine over TCP. Safe for concurrent connections:
// stream/query registries are guarded by mu, and tuple pushes are
// serialized (the single-writer model of a stream engine).
type Server struct {
	engine *core.Engine
	logger *log.Logger

	mu       sync.Mutex
	ln       net.Listener
	queries  map[string]*registeredQuery
	closed   bool
	connWG   sync.WaitGroup
	nextConn uint64
}

type registeredQuery struct {
	id      string
	query   *core.Query
	streams map[string]bool // lower-cased source stream names (2 for joins)
	owner   *conn
}

// New returns a server over the given engine. logger may be nil (logging
// disabled).
func New(engine *core.Engine, logger *log.Logger) (*Server, error) {
	if engine == nil {
		return nil, errors.New("server: nil engine")
	}
	return &Server{
		engine:  engine,
		logger:  logger,
		queries: make(map[string]*registeredQuery),
	}, nil
}

// Listen binds addr (e.g. "127.0.0.1:7433"; port 0 picks a free port) and
// returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections until Close. Call after Listen.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handle(c)
		}()
	}
}

// Close stops accepting, closes the listener, and waits for connections to
// finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.connWG.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// conn is one client connection. Writes are serialized by wmu because the
// handler goroutine (command responses) and insert paths of other
// connections (DATA pushes) both write.
type conn struct {
	id  uint64
	c   net.Conn
	wmu sync.Mutex
	w   *bufio.Writer
}

func (c *conn) writeLine(line string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.WriteString(line); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	return c.w.Flush()
}

func (s *Server) handle(nc net.Conn) {
	defer nc.Close()
	s.mu.Lock()
	s.nextConn++
	c := &conn{id: s.nextConn, c: nc, w: bufio.NewWriter(nc)}
	s.mu.Unlock()
	s.logf("conn %d: open from %s", c.id, nc.RemoteAddr())
	defer s.dropConnQueries(c)
	scanner := bufio.NewScanner(nc)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		quit, err := s.dispatch(c, line)
		if err != nil {
			if werr := c.writeLine("ERR " + err.Error()); werr != nil {
				s.logf("conn %d: write: %v", c.id, werr)
				return
			}
			continue
		}
		if quit {
			return
		}
	}
	s.logf("conn %d: closed", c.id)
}

// dispatch executes one request line; returns quit=true for QUIT.
func (s *Server) dispatch(c *conn, line string) (bool, error) {
	cmd := line
	rest := ""
	if idx := strings.IndexByte(line, ' '); idx >= 0 {
		cmd, rest = line[:idx], strings.TrimSpace(line[idx+1:])
	}
	switch strings.ToUpper(cmd) {
	case "PING":
		return false, c.writeLine("OK pong")
	case "QUIT":
		_ = c.writeLine("OK bye")
		return true, nil
	case "STREAM":
		return false, s.cmdStream(c, rest)
	case "QUERY":
		return false, s.cmdQuery(c, rest)
	case "INSERT":
		return false, s.cmdInsert(c, rest)
	case "STATS":
		return false, s.cmdStats(c, rest)
	case "EXPLAIN":
		return false, s.cmdExplain(c, rest)
	case "CLOSE":
		return false, s.cmdClose(c, rest)
	}
	return false, fmt.Errorf("unknown command %q", cmd)
}

func (s *Server) cmdStream(c *conn, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return errors.New("usage: STREAM <name> <col>[:dist] ...")
	}
	schema, err := ParseStreamDef(fields[0], fields[1:])
	if err != nil {
		return err
	}
	if err := s.engine.RegisterStream(schema); err != nil {
		return err
	}
	s.logf("stream %s registered (%d columns)", schema.Name, schema.Arity())
	return c.writeLine("OK stream " + schema.Name)
}

func (s *Server) cmdQuery(c *conn, rest string) error {
	idx := strings.IndexByte(rest, ' ')
	if idx < 0 {
		return errors.New("usage: QUERY <id> <sql>")
	}
	id, sqlText := rest[:idx], strings.TrimSpace(rest[idx+1:])
	if sqlText == "" {
		return errors.New("usage: QUERY <id> <sql>")
	}
	q, err := s.engine.Compile(sqlText)
	if err != nil {
		return err
	}
	streams, err := sourceStreams(sqlText)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.queries[id]; dup {
		return fmt.Errorf("query id %q already in use", id)
	}
	s.queries[id] = &registeredQuery{id: id, query: q, streams: streams, owner: c}
	s.logf("query %s registered: %s", id, sqlText)
	return c.writeLine("OK query " + id)
}

// sourceStreams returns the lower-cased input stream names of a statement
// (one for plain queries, two for joins). The statement already compiled,
// so parsing cannot fail in practice.
func sourceStreams(sqlText string) (map[string]bool, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{strings.ToLower(stmt.From): true}
	if stmt.Join != nil {
		out[strings.ToLower(stmt.Join.Right)] = true
	}
	return out, nil
}

func (s *Server) cmdInsert(c *conn, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return errors.New("usage: INSERT <stream> <field> ...")
	}
	streamName := fields[0]
	vals := make([]randvar.Field, 0, len(fields)-1)
	for _, spec := range fields[1:] {
		f, err := ParseFieldSpec(spec)
		if err != nil {
			return err
		}
		vals = append(vals, f)
	}
	t, err := s.engine.NewTuple(streamName, vals)
	if err != nil {
		return err
	}
	// Push through every query on this stream under the server lock
	// (single-writer execution).
	s.mu.Lock()
	var deliveries []func() error
	want := strings.ToLower(streamName)
	emitted := 0
	for _, rq := range s.queries {
		if !rq.streams[want] {
			continue
		}
		results, err := rq.query.Push(t)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("query %s: %w", rq.id, err)
		}
		for _, r := range results {
			payload, err := json.Marshal(EncodeResult(r))
			if err != nil {
				s.mu.Unlock()
				return err
			}
			owner, qid := rq.owner, rq.id
			deliveries = append(deliveries, func() error {
				return owner.writeLine("DATA " + qid + " " + string(payload))
			})
			emitted++
		}
	}
	s.mu.Unlock()
	for _, deliver := range deliveries {
		if err := deliver(); err != nil {
			s.logf("deliver: %v", err)
		}
	}
	return c.writeLine(fmt.Sprintf("OK inserted results=%d", emitted))
}

func (s *Server) cmdStats(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	rq, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	st := rq.query.Stats()
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return c.writeLine("OK " + string(payload))
}

// cmdExplain returns the compiled plan as a quoted string (the protocol is
// line-based; clients unquote to recover the multi-line plan).
func (s *Server) cmdExplain(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	rq, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	return c.writeLine("OK " + strconv.Quote(rq.query.Explain()))
}

func (s *Server) cmdClose(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	_, ok := s.queries[id]
	if ok {
		delete(s.queries, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	return c.writeLine("OK closed " + id)
}

// dropConnQueries removes queries owned by a departing connection.
func (s *Server) dropConnQueries(c *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, rq := range s.queries {
		if rq.owner == c {
			delete(s.queries, id)
		}
	}
}
